// ATSC broadcast television RF channel plan (post-repack, channels 2-36)
// and broadcast station descriptors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "geo/wgs84.hpp"

namespace speccal::tv {

/// Width of every ATSC channel.
inline constexpr double kChannelWidthHz = 6e6;

/// 8VSB pilot offset above the lower channel edge.
inline constexpr double kPilotOffsetHz = 309441.0;

/// The same pilot expressed relative to the channel centre (the form signal
/// synthesizers need): 309.441 kHz above the edge = 2.690559 MHz below centre.
inline constexpr double kPilotOffsetFromCenterHz = kPilotOffsetHz - kChannelWidthHz / 2.0;

/// Pilot power relative to total signal power.
inline constexpr double kPilotRelDb = -11.3;

/// Lower edge frequency of RF channel `ch` (2..36); nullopt outside plan.
[[nodiscard]] std::optional<double> channel_lower_edge_hz(int ch) noexcept;

/// Centre frequency of RF channel `ch`.
[[nodiscard]] std::optional<double> channel_center_hz(int ch) noexcept;

/// RF channel containing `freq_hz`; nullopt if between bands.
[[nodiscard]] std::optional<int> channel_for_frequency(double freq_hz) noexcept;

/// One full-power broadcast station.
struct BroadcastStation {
  std::string callsign;
  int rf_channel = 14;
  geo::Geodetic position;       // transmitter site (alt = radiator height, m)
  double erp_dbm = 86.0;        // effective radiated power (~400 kW UHF)

  [[nodiscard]] double center_hz() const noexcept {
    return channel_center_hz(rf_channel).value_or(0.0);
  }
};

}  // namespace speccal::tv
