#include "tv/power_meter.hpp"

#include <cmath>

#include "util/units.hpp"

namespace speccal::tv {

ChannelPowerReading PowerMeter::measure_channel(sdr::Device& device,
                                                int rf_channel) const {
  ChannelPowerReading out;
  out.rf_channel = rf_channel;
  const auto center = channel_center_hz(rf_channel);
  if (!center) return out;
  out.center_hz = *center;

  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.fixed_gain_db);
  if (!device.tune(*center, config_.sample_rate_hz)) return out;
  out.tune_ok = true;

  const auto count =
      static_cast<std::size_t>(config_.capture_duration_s * config_.sample_rate_hz);
  const dsp::Buffer capture = device.capture(count);

  // Band-pass the measurement bandwidth around the (baseband-centred) channel.
  dsp::FirFilter filter(dsp::design_bandpass(config_.sample_rate_hz,
                                             -config_.measure_bandwidth_hz / 2.0,
                                             config_.measure_bandwidth_hz / 2.0,
                                             config_.filter_taps));
  const dsp::Buffer filtered = filter.filter(capture);

  // |x|^2 through a long moving average (Parseval: time-domain power equals
  // the in-band spectral power after the band-pass).
  const std::size_t warmup = config_.filter_taps;
  if (filtered.size() <= warmup) return out;
  dsp::MovingAverage avg(filtered.size() - warmup);
  double mean = 0.0;
  for (std::size_t i = warmup; i < filtered.size(); ++i)
    mean = avg.push(static_cast<double>(std::norm(filtered[i])));
  out.samples_used = filtered.size() - warmup;

  out.power_dbfs = mean > 1e-20 ? 10.0 * std::log10(mean) : -200.0;
  // Refer back to the antenna port: dBm = dBFS - gain + full-scale input.
  out.power_dbm = out.power_dbfs - device.gain_db() + device.info().full_scale_input_dbm;
  return out;
}

std::vector<ChannelPowerReading> PowerMeter::sweep(sdr::Device& device,
                                                   const std::vector<int>& channels) const {
  std::vector<ChannelPowerReading> out;
  out.reserve(channels.size());
  for (int ch : channels) out.push_back(measure_channel(device, ch));
  return out;
}

}  // namespace speccal::tv
