#include "tv/power_meter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/iq.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace speccal::tv {

namespace {

/// Floor on gate/skip prefix lengths so abbreviated readings stay well past
/// the FIR warm-up and hold at least a few Welch segments.
constexpr std::size_t kMinPrefixSamples = 4096;

[[nodiscard]] std::size_t prefix_length(std::size_t total, double fraction) noexcept {
  const auto want = static_cast<std::size_t>(fraction * static_cast<double>(total));
  return std::min(total, std::max(kMinPrefixSamples, want));
}

PowerMeterConfig validated(PowerMeterConfig config) {
  if (!(config.sample_rate_hz > 0.0))
    throw std::invalid_argument(
        "PowerMeterConfig.sample_rate_hz must be positive (got " +
        std::to_string(config.sample_rate_hz) + ")");
  if (!(config.capture_duration_s > 0.0))
    throw std::invalid_argument(
        "PowerMeterConfig.capture_duration_s must be positive (got " +
        std::to_string(config.capture_duration_s) + ")");
  if (config.filter_taps < 3)
    throw std::invalid_argument("PowerMeterConfig.filter_taps must be >= 3 (got " +
                                std::to_string(config.filter_taps) + ")");
  if (!(config.measure_bandwidth_hz > 0.0) ||
      config.measure_bandwidth_hz >= config.sample_rate_hz)
    throw std::invalid_argument(
        "PowerMeterConfig.measure_bandwidth_hz must be in (0, sample_rate_hz) "
        "(got " + std::to_string(config.measure_bandwidth_hz) + ")");
  const auto& gate = config.pilot_gate;
  if (!(gate.gate_fraction > 0.0 && gate.gate_fraction <= 1.0))
    throw std::invalid_argument(
        "PilotGateConfig.gate_fraction must be in (0, 1] (got " +
        std::to_string(gate.gate_fraction) + ")");
  if (!(gate.skip_fraction > 0.0 && gate.skip_fraction <= 1.0))
    throw std::invalid_argument(
        "PilotGateConfig.skip_fraction must be in (0, 1] (got " +
        std::to_string(gate.skip_fraction) + ")");
  if (!(gate.ref_spacing_hz > 0.0) ||
      std::abs(gate.pilot_offset_hz) + gate.ref_spacing_hz >=
          config.sample_rate_hz / 2.0)
    throw std::invalid_argument(
        "PilotGateConfig.ref_spacing_hz must be positive with pilot and "
        "reference bins inside Nyquist (got " +
        std::to_string(gate.ref_spacing_hz) + ")");
  return config;
}

}  // namespace

PowerMeter::PowerMeter(PowerMeterConfig config)
    : config_(validated(config)),
      // Designed once per meter; a sweep re-uses the taps for every channel.
      filter_(dsp::design_bandpass(config_.sample_rate_hz,
                                   -config_.measure_bandwidth_hz / 2.0,
                                   config_.measure_bandwidth_hz / 2.0,
                                   config_.filter_taps)),
      welch_(config_.welch),
      // Pilot bin plus one reference bin either side; offsets are relative
      // to the tuned center, so one probe serves every channel.
      pilot_probe_({config_.pilot_gate.pilot_offset_hz,
                    config_.pilot_gate.pilot_offset_hz +
                        config_.pilot_gate.ref_spacing_hz,
                    config_.pilot_gate.pilot_offset_hz -
                        config_.pilot_gate.ref_spacing_hz},
                   config_.sample_rate_hz) {}

// Three-bin Goertzel over the capture prefix, averaged over a few
// sub-segments: pass when the pilot bin clears the mean of the two
// reference bins by min_snr_db. For an occupied ATSC channel the pilot
// concentrates ~7% of the channel power into one bin, >20 dB above the
// per-bin in-band floor even at these shortened segment lengths, so the
// margin is comfortable at the detection threshold (test_dsp_simd bounds
// the false-negative rate there). The sub-segment averaging is for the
// other direction: single-shot noise bins are exponential-distributed and
// would false-pass ~10% of vacant channels; averaging 4 segments drops
// that to ~0.1% without touching the pilot's coherent power.
bool PowerMeter::pilot_present(std::span<const dsp::Sample> capture) const {
  const std::size_t n =
      prefix_length(capture.size(), config_.pilot_gate.gate_fraction);
  if (n == 0) return false;
  constexpr std::size_t kAverages = 4;
  const std::size_t seg = std::max<std::size_t>(1, n / kAverages);
  double pilot = 0.0;
  double floor = 0.0;
  for (std::size_t s = 0; s + 1 <= kAverages && s * seg < n; ++s) {
    const std::size_t len = std::min(seg, n - s * seg);
    pilot_probe_.reset();
    pilot_probe_.feed(capture.subspan(s * seg, len));
    pilot += pilot_probe_.power(0);
    floor += 0.5 * (pilot_probe_.power(1) + pilot_probe_.power(2));
  }
  if (pilot <= 1e-20) return false;
  return pilot >= util::db_to_ratio(config_.pilot_gate.min_snr_db) *
                      std::max(floor, 1e-30);
}

double PowerMeter::integrate_time_domain(std::span<const dsp::Sample> capture,
                                         std::size_t& samples_used) const {
  filter_.reset();
  filtered_.clear();
  filter_.process(capture, filtered_);

  // |x|^2 through a long moving average (Parseval: time-domain power equals
  // the in-band spectral power after the band-pass).
  const std::size_t warmup = config_.filter_taps;
  if (filtered_.size() <= warmup) return 0.0;
  dsp::MovingAverage avg(filtered_.size() - warmup);
  double mean = 0.0;
  for (std::size_t i = warmup; i < filtered_.size(); ++i)
    mean = avg.push(static_cast<double>(std::norm(filtered_[i])));
  samples_used = filtered_.size() - warmup;
  return mean;
}

double PowerMeter::integrate_spectral(std::span<const dsp::Sample> capture,
                                      std::size_t& samples_used) const {
  welch_.estimate_into(capture, config_.sample_rate_hz, psd_);
  if (psd_.segments_averaged == 0) return 0.0;
  samples_used = psd_.segments_averaged * welch_.config().segment_size;
  return dsp::band_power(psd_, config_.sample_rate_hz,
                         -config_.measure_bandwidth_hz / 2.0,
                         config_.measure_bandwidth_hz / 2.0);
}

ChannelPowerReading PowerMeter::measure_channel(sdr::Device& device,
                                                int rf_channel) const {
  ChannelPowerReading out;
  out.rf_channel = rf_channel;
  const auto center = channel_center_hz(rf_channel);
  if (!center) return out;
  out.center_hz = *center;

  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.fixed_gain_db);
  if (!device.tune(*center, config_.sample_rate_hz)) return out;
  out.tune_ok = true;

  const auto count =
      static_cast<std::size_t>(config_.capture_duration_s * config_.sample_rate_hz);
  const dsp::Buffer capture = device.capture(count);
  // Occupancy cross-check over the raw capture (one O(N) pass, no device
  // interaction — the reading itself is untouched).
  out.autocorr_rho = dsp::lag_autocorrelation(capture);

  // Pilot fast-path gate: channels without an ATSC pilot integrate an
  // abbreviated prefix instead of the whole capture (DESIGN.md §14).
  std::span<const dsp::Sample> block(capture);
  if (config_.pilot_gate.enabled) {
    static obs::Counter& gate_pass =
        obs::Registry::global().counter("speccal_gate_tv_pilot_pass_total");
    static obs::Counter& gate_skip =
        obs::Registry::global().counter("speccal_gate_tv_pilot_skip_total");
    if (pilot_present(block)) {
      gate_pass.add();
    } else {
      gate_skip.add();
      out.gated = true;
      block = block.first(
          prefix_length(block.size(), config_.pilot_gate.skip_fraction));
    }
  }

  const double mean =
      config_.method == PowerMeterConfig::Method::kSpectral
          ? integrate_spectral(block, out.samples_used)
          : integrate_time_domain(block, out.samples_used);
  if (out.samples_used == 0) return out;

  out.power_dbfs = mean > 1e-20 ? 10.0 * std::log10(mean) : -200.0;
  // Refer back to the antenna port: dBm = dBFS - gain + full-scale input.
  out.power_dbm = out.power_dbfs - device.gain_db() + device.info().full_scale_input_dbm;
  return out;
}

std::vector<ChannelPowerReading> PowerMeter::sweep(sdr::Device& device,
                                                   const std::vector<int>& channels) const {
  std::vector<ChannelPowerReading> out;
  out.reserve(channels.size());
  for (int ch : channels) out.push_back(measure_channel(device, ch));
  return out;
}

}  // namespace speccal::tv
