#include "tv/power_meter.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace speccal::tv {

namespace {

PowerMeterConfig validated(PowerMeterConfig config) {
  if (!(config.sample_rate_hz > 0.0))
    throw std::invalid_argument(
        "PowerMeterConfig.sample_rate_hz must be positive (got " +
        std::to_string(config.sample_rate_hz) + ")");
  if (!(config.capture_duration_s > 0.0))
    throw std::invalid_argument(
        "PowerMeterConfig.capture_duration_s must be positive (got " +
        std::to_string(config.capture_duration_s) + ")");
  if (config.filter_taps < 3)
    throw std::invalid_argument("PowerMeterConfig.filter_taps must be >= 3 (got " +
                                std::to_string(config.filter_taps) + ")");
  if (!(config.measure_bandwidth_hz > 0.0) ||
      config.measure_bandwidth_hz >= config.sample_rate_hz)
    throw std::invalid_argument(
        "PowerMeterConfig.measure_bandwidth_hz must be in (0, sample_rate_hz) "
        "(got " + std::to_string(config.measure_bandwidth_hz) + ")");
  return config;
}

}  // namespace

PowerMeter::PowerMeter(PowerMeterConfig config)
    : config_(validated(config)),
      // Designed once per meter; a sweep re-uses the taps for every channel.
      filter_(dsp::design_bandpass(config_.sample_rate_hz,
                                   -config_.measure_bandwidth_hz / 2.0,
                                   config_.measure_bandwidth_hz / 2.0,
                                   config_.filter_taps)),
      welch_(config_.welch) {}

double PowerMeter::integrate_time_domain(const dsp::Buffer& capture,
                                         std::size_t& samples_used) const {
  filter_.reset();
  filtered_.clear();
  filter_.process(capture, filtered_);

  // |x|^2 through a long moving average (Parseval: time-domain power equals
  // the in-band spectral power after the band-pass).
  const std::size_t warmup = config_.filter_taps;
  if (filtered_.size() <= warmup) return 0.0;
  dsp::MovingAverage avg(filtered_.size() - warmup);
  double mean = 0.0;
  for (std::size_t i = warmup; i < filtered_.size(); ++i)
    mean = avg.push(static_cast<double>(std::norm(filtered_[i])));
  samples_used = filtered_.size() - warmup;
  return mean;
}

double PowerMeter::integrate_spectral(const dsp::Buffer& capture,
                                      std::size_t& samples_used) const {
  welch_.estimate_into(capture, config_.sample_rate_hz, psd_);
  if (psd_.segments_averaged == 0) return 0.0;
  samples_used = psd_.segments_averaged * welch_.config().segment_size;
  return dsp::band_power(psd_, config_.sample_rate_hz,
                         -config_.measure_bandwidth_hz / 2.0,
                         config_.measure_bandwidth_hz / 2.0);
}

ChannelPowerReading PowerMeter::measure_channel(sdr::Device& device,
                                                int rf_channel) const {
  ChannelPowerReading out;
  out.rf_channel = rf_channel;
  const auto center = channel_center_hz(rf_channel);
  if (!center) return out;
  out.center_hz = *center;

  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.fixed_gain_db);
  if (!device.tune(*center, config_.sample_rate_hz)) return out;
  out.tune_ok = true;

  const auto count =
      static_cast<std::size_t>(config_.capture_duration_s * config_.sample_rate_hz);
  const dsp::Buffer capture = device.capture(count);

  const double mean =
      config_.method == PowerMeterConfig::Method::kSpectral
          ? integrate_spectral(capture, out.samples_used)
          : integrate_time_domain(capture, out.samples_used);
  if (out.samples_used == 0) return out;

  out.power_dbfs = mean > 1e-20 ? 10.0 * std::log10(mean) : -200.0;
  // Refer back to the antenna port: dBm = dBFS - gain + full-scale input.
  out.power_dbm = out.power_dbfs - device.gain_db() + device.info().full_scale_input_dbm;
  return out;
}

std::vector<ChannelPowerReading> PowerMeter::sweep(sdr::Device& device,
                                                   const std::vector<int>& channels) const {
  std::vector<ChannelPowerReading> out;
  out.reserve(channels.size());
  for (int ch : channels) out.push_back(measure_channel(device, ch));
  return out;
}

}  // namespace speccal::tv
