// Broadcast-TV channel power meter — the paper's GNU Radio measurement.
//
// Pipeline (quoting §3.2): fixed SDR gain (no AGC), band-pass filter the
// desired ATSC channel, then "apply Parseval's identity" by running the
// magnitude-squared time-domain samples through a very long moving-average
// filter. The result is reported in dBFS, as in Figure 4.
//
// The meter is plan-based: the band-pass FIR is designed once at
// construction and the filter/scratch buffers are reused across
// measurements, so a sweep's steady state performs no per-channel design
// work. A second integration method (Method::kSpectral) computes the same
// in-band power from a plan-cached Welch PSD — Parseval's identity makes
// the two agree, and the spectral path shares its FFT plan with every
// other measurement in the process.
#pragma once

#include <vector>

#include "dsp/fir.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/welch.hpp"
#include "sdr/device.hpp"
#include "tv/channels.hpp"

namespace speccal::tv {

/// ATSC pilot fast-path gate (DESIGN.md §14): before paying for the full
/// integration, a three-bin Goertzel over a short capture prefix tests the
/// pilot bin against two nearby reference bins. Channels with no pilot
/// (vacant, or not ATSC) short-circuit to an abbreviated integration over
/// `skip_fraction` of the capture — the reading keeps its absolute
/// calibration (same estimator, fewer samples), at a fraction of the cost.
/// Skip rates are published as speccal_gate_tv_pilot_{pass,skip}_total.
struct PilotGateConfig {
  bool enabled = true;
  /// Expected pilot placement relative to the tuned channel center.
  double pilot_offset_hz = kPilotOffsetFromCenterHz;
  /// Reference (noise-floor) bins sit this far either side of the pilot.
  double ref_spacing_hz = 250e3;
  /// Pass when the pilot bin clears the mean reference bin by this margin.
  double min_snr_db = 6.0;
  /// Fraction of the capture the gate inspects.
  double gate_fraction = 0.1;
  /// Fraction of the capture integrated when the gate skips.
  double skip_fraction = 0.1;
};

/// Validation contract (enforced by PowerMeter's constructor; violations
/// throw std::invalid_argument naming the offending parameter):
///   - sample_rate_hz must be positive;
///   - capture_duration_s must be positive;
///   - filter_taps must be >= 3 (the FIR design needs a real prototype);
///   - measure_bandwidth_hz must be positive and smaller than
///     sample_rate_hz (the band-pass must fit inside Nyquist);
///   - welch (used by Method::kSpectral) follows the WelchConfig contract;
///   - pilot_gate.gate_fraction / skip_fraction must be in (0, 1];
///   - pilot_gate.ref_spacing_hz must be positive and the pilot/reference
///     bins must fit inside Nyquist.
struct PowerMeterConfig {
  double sample_rate_hz = 8e6;     // must cover one 6 MHz channel
  double fixed_gain_db = 20.0;     // paper: fixed to keep readings comparable.
                                   // Low enough that strong locals don't clip,
                                   // high enough that weak channels stay above
                                   // the ADC quantization floor.
  std::size_t filter_taps = 129;
  /// Capture length [s]; the moving average spans the whole capture minus
  /// the filter warm-up.
  double capture_duration_s = 0.02;
  /// Pass-band width measured inside the channel (8VSB occupies ~5.38 MHz).
  double measure_bandwidth_hz = 5.38e6;

  /// How the in-band power is integrated.
  enum class Method {
    /// Band-pass FIR + |x|^2 + long moving average — the paper's GNU Radio
    /// pipeline and the default.
    kTimeDomain,
    /// Plan-based Welch PSD + band integration over the measurement
    /// bandwidth. Parseval's identity makes this agree with kTimeDomain;
    /// it reuses the shared FFT plan and is the natural choice when a
    /// node also reports PSDs.
    kSpectral,
  };
  Method method = Method::kTimeDomain;
  /// Welch settings for Method::kSpectral.
  dsp::WelchConfig welch;
  /// Pilot presence fast-path (see PilotGateConfig).
  PilotGateConfig pilot_gate;
};

struct ChannelPowerReading {
  int rf_channel = 0;
  double center_hz = 0.0;
  double power_dbfs = -200.0;   // what Figure 4 plots
  double power_dbm = -200.0;    // referred to the antenna port via gain
  bool tune_ok = false;
  std::size_t samples_used = 0;
  /// True when the pilot gate found no pilot and the reading was integrated
  /// over the abbreviated capture prefix.
  bool gated = false;
  /// Normalized lag-1 autocorrelation of the raw (pre-filter) capture —
  /// the anomaly detector's occupancy cross-check (~0.4 for ATSC, ~1 for a
  /// CW interferer parked in the channel, ~0 for noise or a jammer wider
  /// than the capture). In-memory only: report JSON serializes the same
  /// channel/freq/power triple as always, so clean runs stay byte-stable.
  double autocorr_rho = 0.0;
};

/// Measures one or more ATSC channels through a Device (simulated or real).
/// Filter state and scratch are reused across measurements, so a single
/// instance must not measure concurrently from multiple threads; the
/// fleet engine gives each worker its own meter.
class PowerMeter {
 public:
  /// Validates the config (see PowerMeterConfig) and designs the band-pass
  /// filter once. Throws std::invalid_argument on contract violations.
  explicit PowerMeter(PowerMeterConfig config = {});

  /// Tune, capture, filter, integrate. The device is left in manual gain.
  [[nodiscard]] ChannelPowerReading measure_channel(sdr::Device& device, int rf_channel) const;

  /// Sweep a list of channels.
  [[nodiscard]] std::vector<ChannelPowerReading> sweep(sdr::Device& device,
                                                       const std::vector<int>& channels) const;

  [[nodiscard]] const PowerMeterConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double integrate_time_domain(std::span<const dsp::Sample> capture,
                                             std::size_t& samples_used) const;
  [[nodiscard]] double integrate_spectral(std::span<const dsp::Sample> capture,
                                          std::size_t& samples_used) const;
  [[nodiscard]] bool pilot_present(std::span<const dsp::Sample> capture) const;

  PowerMeterConfig config_;
  // Per-measurement scratch (reset/reused each call); mutable so the
  // measurement API stays const like every other read-only evaluator.
  mutable dsp::FirFilter filter_;
  mutable dsp::Buffer filtered_;
  mutable dsp::WelchEstimator welch_;
  mutable dsp::WelchResult psd_;
  mutable dsp::Goertzel pilot_probe_;
};

}  // namespace speccal::tv
