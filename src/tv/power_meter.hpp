// Broadcast-TV channel power meter — the paper's GNU Radio measurement.
//
// Pipeline (quoting §3.2): fixed SDR gain (no AGC), band-pass filter the
// desired ATSC channel, then "apply Parseval's identity" by running the
// magnitude-squared time-domain samples through a very long moving-average
// filter. The result is reported in dBFS, as in Figure 4.
#pragma once

#include <vector>

#include "dsp/fir.hpp"
#include "sdr/device.hpp"
#include "tv/channels.hpp"

namespace speccal::tv {

struct PowerMeterConfig {
  double sample_rate_hz = 8e6;     // must cover one 6 MHz channel
  double fixed_gain_db = 20.0;     // paper: fixed to keep readings comparable.
                                   // Low enough that strong locals don't clip,
                                   // high enough that weak channels stay above
                                   // the ADC quantization floor.
  std::size_t filter_taps = 129;
  /// Capture length [s]; the moving average spans the whole capture minus
  /// the filter warm-up.
  double capture_duration_s = 0.02;
  /// Pass-band width measured inside the channel (8VSB occupies ~5.38 MHz).
  double measure_bandwidth_hz = 5.38e6;
};

struct ChannelPowerReading {
  int rf_channel = 0;
  double center_hz = 0.0;
  double power_dbfs = -200.0;   // what Figure 4 plots
  double power_dbm = -200.0;    // referred to the antenna port via gain
  bool tune_ok = false;
  std::size_t samples_used = 0;
};

/// Measures one or more ATSC channels through a Device (simulated or real).
class PowerMeter {
 public:
  explicit PowerMeter(PowerMeterConfig config = {}) : config_(config) {}

  /// Tune, capture, filter, integrate. The device is left in manual gain.
  [[nodiscard]] ChannelPowerReading measure_channel(sdr::Device& device, int rf_channel) const;

  /// Sweep a list of channels.
  [[nodiscard]] std::vector<ChannelPowerReading> sweep(sdr::Device& device,
                                                       const std::vector<int>& channels) const;

  [[nodiscard]] const PowerMeterConfig& config() const noexcept { return config_; }

 private:
  PowerMeterConfig config_;
};

}  // namespace speccal::tv
