#include "tv/channels.hpp"

namespace speccal::tv {

std::optional<double> channel_lower_edge_hz(int ch) noexcept {
  // VHF-low 2-4: 54-72, 5-6: 76-88; VHF-high 7-13: 174-216;
  // UHF 14-36: 470-608 (post-2020 repack ends at channel 36).
  if (ch >= 2 && ch <= 4) return 54e6 + (ch - 2) * kChannelWidthHz;
  if (ch >= 5 && ch <= 6) return 76e6 + (ch - 5) * kChannelWidthHz;
  if (ch >= 7 && ch <= 13) return 174e6 + (ch - 7) * kChannelWidthHz;
  if (ch >= 14 && ch <= 36) return 470e6 + (ch - 14) * kChannelWidthHz;
  return std::nullopt;
}

std::optional<double> channel_center_hz(int ch) noexcept {
  const auto edge = channel_lower_edge_hz(ch);
  if (!edge) return std::nullopt;
  return *edge + kChannelWidthHz / 2.0;
}

std::optional<int> channel_for_frequency(double freq_hz) noexcept {
  for (int ch = 2; ch <= 36; ++ch) {
    const auto edge = channel_lower_edge_hz(ch);
    if (edge && freq_hz >= *edge && freq_hz < *edge + kChannelWidthHz) return ch;
  }
  return std::nullopt;
}

}  // namespace speccal::tv
