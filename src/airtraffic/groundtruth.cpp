#include "airtraffic/groundtruth.hpp"

#include <algorithm>

namespace speccal::airtraffic {

std::vector<FlightRecord> GroundTruthService::query(const geo::Geodetic& center,
                                                    double radius_m, double t_s) const {
  const double report_time = std::max(0.0, t_s - latency_s_);
  std::vector<FlightRecord> out;
  for (const auto& spec : sky_.fleet()) {
    const AircraftAt at = aircraft_at(spec, report_time);
    if (geo::haversine_m(center, at.position) > radius_m) continue;
    FlightRecord rec;
    rec.icao = spec.icao;
    rec.callsign = spec.callsign;
    rec.position = at.position;
    rec.ground_speed_kt = at.ground_speed_kt;
    rec.track_deg = at.track_deg;
    rec.report_age_s = t_s - report_time;
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace speccal::airtraffic
