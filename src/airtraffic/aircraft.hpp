// Simulated aircraft: identity, kinematics and squitter schedule.
//
// Aircraft fly great-circle tracks at constant ground speed with an optional
// vertical rate — an adequate model over the paper's 30-second measurement
// windows. Transmit behaviour follows DO-260: airborne position and velocity
// at ~2 Hz each (position alternating even/odd CPR format), identification
// every ~5 s, transmit power between 75 and 500 W depending on the
// transponder class.
#pragma once

#include <cstdint>
#include <string>

#include "geo/wgs84.hpp"

namespace speccal::airtraffic {

struct AircraftSpec {
  std::uint32_t icao = 0;
  std::string callsign;
  geo::Geodetic start;          // position at t = 0 (alt in metres MSL)
  double track_deg = 0.0;       // constant course
  double ground_speed_kt = 0.0;
  double vertical_rate_fpm = 0.0;
  double tx_power_dbm = 54.0;   // 75 W = 48.8 dBm ... 500 W = 57 dBm
  double cfo_hz = 0.0;          // transmitter carrier offset
  /// Schedule phases (seconds) so the fleet does not transmit in lockstep.
  double position_phase_s = 0.0;
  double velocity_phase_s = 0.0;
  double ident_phase_s = 0.0;
  double all_call_phase_s = 0.0;
};

/// DO-260 airborne broadcast intervals.
inline constexpr double kPositionIntervalS = 0.5;   // 2 Hz
inline constexpr double kVelocityIntervalS = 0.5;   // 2 Hz
inline constexpr double kIdentIntervalS = 5.0;
inline constexpr double kAllCallIntervalS = 1.0;    // DF11 acquisition squitter

/// Kinematic state of an aircraft at time t [s].
struct AircraftAt {
  geo::Geodetic position;
  double track_deg = 0.0;
  double ground_speed_kt = 0.0;
  double vertical_rate_fpm = 0.0;
};

/// Propagate the spec to time `t_s`.
[[nodiscard]] AircraftAt aircraft_at(const AircraftSpec& spec, double t_s) noexcept;

[[nodiscard]] constexpr double knots_to_mps(double kt) noexcept { return kt * 0.514444; }

}  // namespace speccal::airtraffic
