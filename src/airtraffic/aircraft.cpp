#include "airtraffic/aircraft.hpp"

#include <algorithm>

namespace speccal::airtraffic {

AircraftAt aircraft_at(const AircraftSpec& spec, double t_s) noexcept {
  AircraftAt out;
  const double distance_m = knots_to_mps(spec.ground_speed_kt) * t_s;
  out.position = geo::destination(spec.start, spec.track_deg, distance_m);
  out.position.alt_m =
      std::max(0.0, spec.start.alt_m + spec.vertical_rate_fpm * 0.3048 / 60.0 * t_s);
  out.track_deg = spec.track_deg;
  out.ground_speed_kt = spec.ground_speed_kt;
  out.vertical_rate_fpm = spec.vertical_rate_fpm;
  return out;
}

}  // namespace speccal::airtraffic
