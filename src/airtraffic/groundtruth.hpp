// Ground-truth flight data service — the FlightRadar24 stand-in.
//
// The paper queries FlightRadar24 for all flights within 100 km of the
// sensor; FR24 reports with ~10 s latency, so reported positions lag truth
// by up to ~2.5 km. This service reproduces both the query semantics and
// the latency so the calibration logic is exercised against realistic
// (slightly stale) ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "airtraffic/sky.hpp"
#include "geo/wgs84.hpp"

namespace speccal::airtraffic {

/// One flight record as the external API would return it.
struct FlightRecord {
  std::uint32_t icao = 0;
  std::string callsign;
  geo::Geodetic position;       // position at (query time - latency)
  double ground_speed_kt = 0.0;
  double track_deg = 0.0;
  double report_age_s = 0.0;    // how stale this record is
};

class GroundTruthService {
 public:
  /// `latency_s` models the feed aggregation delay (paper: 10 s).
  GroundTruthService(const SkySimulator& sky, double latency_s = 10.0) noexcept
      : sky_(sky), latency_s_(latency_s) {}

  /// All flights whose *reported* position lies within `radius_m` of
  /// `center` at query time `t_s`.
  [[nodiscard]] std::vector<FlightRecord> query(const geo::Geodetic& center,
                                                double radius_m, double t_s) const;

  [[nodiscard]] double latency_s() const noexcept { return latency_s_; }

 private:
  const SkySimulator& sky_;
  double latency_s_;
};

}  // namespace speccal::airtraffic
