// Sky simulator: a population of aircraft around a point of interest and
// the exact sequence of ADS-B transmissions they emit.
#pragma once

#include <cstdint>
#include <vector>

#include "adsb/frame.hpp"
#include "airtraffic/aircraft.hpp"
#include "geo/wgs84.hpp"
#include "util/rng.hpp"

namespace speccal::airtraffic {

/// One squitter on the air. Short (56-bit, DF11) frames occupy the first
/// 7 bytes of `frame` with `bit_count` = 56.
struct TransmissionEvent {
  double time_s = 0.0;
  std::uint32_t icao = 0;
  adsb::RawFrame frame{};
  std::size_t bit_count = 112;
  geo::Geodetic tx_position;   // aircraft position when transmitting
  double tx_power_dbm = 54.0;
  double cfo_hz = 0.0;
};

struct SkyConfig {
  geo::Geodetic center;          // the sensor site
  double radius_m = 120e3;       // aircraft generated within this disk
  std::size_t aircraft_count = 60;
  double min_altitude_ft = 3000.0;
  double max_altitude_ft = 40000.0;
  double min_speed_kt = 220.0;
  double max_speed_kt = 490.0;
  /// Fraction of aircraft flying roughly toward/away from the center
  /// (an airport corridor effect); the rest fly uniform random tracks.
  double corridor_fraction = 0.3;
};

/// Deterministic sky: builds the fleet from (config, seed) and can list
/// every transmission in any time window.
class SkySimulator {
 public:
  SkySimulator(SkyConfig config, std::uint64_t seed);

  /// Direct construction from a fixed fleet (tests, handcrafted scenes).
  SkySimulator(geo::Geodetic center, std::vector<AircraftSpec> fleet);

  [[nodiscard]] const std::vector<AircraftSpec>& fleet() const noexcept { return fleet_; }
  [[nodiscard]] const geo::Geodetic& center() const noexcept { return center_; }

  /// All transmissions with time in [t0, t1), sorted by time.
  [[nodiscard]] std::vector<TransmissionEvent> events_between(double t0, double t1) const;

  /// Positions of the whole fleet at time t.
  [[nodiscard]] std::vector<AircraftAt> snapshot(double t_s) const;

 private:
  geo::Geodetic center_;
  std::vector<AircraftSpec> fleet_;
};

}  // namespace speccal::airtraffic
