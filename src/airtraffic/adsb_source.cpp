#include "airtraffic/adsb_source.hpp"

#include <cmath>
#include <numbers>

#include "adsb/ppm.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speccal::airtraffic {

namespace {
/// Deterministic per-event hash for carrier phase and fading keys.
[[nodiscard]] std::uint64_t event_hash(const TransmissionEvent& ev) noexcept {
  std::uint64_t s = static_cast<std::uint64_t>(ev.icao) ^
                    (static_cast<std::uint64_t>(ev.time_s * 1e6) << 20);
  return util::splitmix64(s);
}
}  // namespace

void AdsbSignalSource::render(const sdr::CaptureContext& ctx,
                              std::span<dsp::Sample> accum) {
  // The 1090ES channel must fall inside the capture bandwidth.
  if (std::fabs(ctx.center_freq_hz - adsb::kAdsbFreqHz) > ctx.sample_rate_hz / 2.0)
    return;
  // The PPM modulator is defined at 2 Msps (one sample per half-bit).
  if (std::fabs(ctx.sample_rate_hz - adsb::kPpmSampleRateHz) > 1.0) return;

  const double t0 = ctx.start_time_s;
  const double t1 =
      t0 + static_cast<double>(ctx.sample_count) / ctx.sample_rate_hz;
  constexpr double kFrameDurationS =
      static_cast<double>(adsb::kFrameSamples) / adsb::kPpmSampleRateHz;

  prop::LinkParams params;  // free space (LOS air-to-ground)
  params.model = prop::PathModel::kFreeSpace;

  // Include events that began up to one frame before the window so their
  // tails land in this buffer (the head was rendered into the previous one).
  for (const auto& ev : sky_->events_between(t0 - kFrameDurationS, t1)) {
    prop::LinkInput link;
    link.transmitter = ev.tx_position;
    link.receiver = ctx.rx->position;
    link.freq_hz = adsb::kAdsbFreqHz;
    link.tx_power_dbm = ev.tx_power_dbm;
    link.emitter_id = ev.icao;
    link.message_index = event_hash(ev);
    if (ctx.rx->antenna != nullptr) {
      const double az = geo::bearing_deg(ctx.rx->position, ev.tx_position);
      link.rx_antenna_gain_dbi = ctx.rx->antenna->gain_dbi(adsb::kAdsbFreqHz, az);
    }
    const prop::LinkResult budget =
        prop::evaluate_link(link, params, ctx.rx->obstructions, ctx.rx->fading);

    // sqrt-milliwatt amplitude convention (see SimulatedSdr).
    const double amplitude = util::db_to_amplitude(budget.rx_power_dbm);
    if (amplitude < 1e-9) continue;  // < -180 dBm: unrepresentable, skip

    const double phase =
        2.0 * std::numbers::pi *
        (static_cast<double>(event_hash(ev) & 0xFFFF) / 65536.0);
    const double cfo = ev.cfo_hz + (adsb::kAdsbFreqHz - ctx.center_freq_hz);

    const double offset_f = (ev.time_s - t0) * ctx.sample_rate_hz;
    const auto offset = static_cast<std::ptrdiff_t>(std::floor(offset_f));
    if (ev.bit_count == 56) {
      adsb::ShortFrame short_frame{};
      for (std::size_t i = 0; i < short_frame.size(); ++i)
        short_frame[i] = ev.frame[i];
      adsb::modulate_short_into_signed(short_frame, amplitude, phase, cfo, offset,
                                       accum);
    } else {
      adsb::modulate_into_signed(ev.frame, amplitude, phase, cfo, offset, accum);
    }
  }
}

}  // namespace speccal::airtraffic
