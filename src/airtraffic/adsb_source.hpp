// SignalSource adapter: renders the simulated sky's ADS-B transmissions
// into SDR capture buffers with full link-budget amplitudes.
#pragma once

#include <memory>

#include "airtraffic/sky.hpp"
#include "prop/linkbudget.hpp"
#include "sdr/sim.hpp"

namespace speccal::airtraffic {

class AdsbSignalSource final : public sdr::SignalSource {
 public:
  explicit AdsbSignalSource(std::shared_ptr<const SkySimulator> sky) noexcept
      : sky_(std::move(sky)) {}

  /// Renders every squitter overlapping the capture window. Requires the
  /// capture to run at adsb::kPpmSampleRateHz and cover 1090 MHz; captures
  /// tuned elsewhere see nothing (the signal is narrowband at 1090).
  void render(const sdr::CaptureContext& ctx, std::span<dsp::Sample> accum) override;

 private:
  std::shared_ptr<const SkySimulator> sky_;
};

}  // namespace speccal::airtraffic
