#include "airtraffic/sky.hpp"

#include <algorithm>
#include <cmath>

#include "adsb/altitude.hpp"
#include "util/units.hpp"

namespace speccal::airtraffic {

namespace {

/// Synthesize an airline-style callsign from the fleet index.
[[nodiscard]] std::string make_callsign(util::Rng& rng, std::size_t index) {
  static constexpr const char* kAirlines[] = {"UAL", "DAL", "AAL", "SWA", "JBU",
                                              "ASA", "FDX", "UPS", "SKW", "NKS"};
  const auto airline = kAirlines[rng.uniform_int(0, 9)];
  return std::string(airline) + std::to_string(100 + (index * 7 + rng.uniform_int(0, 99)) % 900);
}

}  // namespace

SkySimulator::SkySimulator(SkyConfig config, std::uint64_t seed) : center_(config.center) {
  util::Rng rng(seed);
  fleet_.reserve(config.aircraft_count);
  for (std::size_t i = 0; i < config.aircraft_count; ++i) {
    AircraftSpec spec;
    spec.icao = static_cast<std::uint32_t>(0xA00000u + rng.uniform_int(0, 0xFFFFF));
    spec.callsign = make_callsign(rng, i);

    // Uniform over the disk: r ~ sqrt(u) * R.
    const double bearing = rng.uniform(0.0, 360.0);
    const double range = std::sqrt(rng.uniform()) * config.radius_m;
    spec.start = geo::destination(config.center, bearing, range);
    spec.start.alt_m = adsb::feet_to_m(
        rng.uniform(config.min_altitude_ft, config.max_altitude_ft));

    if (rng.chance(config.corridor_fraction)) {
      // Fly along the radial (inbound or outbound corridor).
      const double radial = geo::bearing_deg(config.center, spec.start);
      spec.track_deg = util::wrap_degrees(rng.chance(0.5) ? radial : radial + 180.0);
    } else {
      spec.track_deg = rng.uniform(0.0, 360.0);
    }
    spec.track_deg = util::wrap_degrees(spec.track_deg + rng.normal(0.0, 10.0));

    spec.ground_speed_kt = rng.uniform(config.min_speed_kt, config.max_speed_kt);
    spec.vertical_rate_fpm =
        rng.chance(0.25) ? rng.uniform(-2000.0, 2000.0) : 0.0;
    // 75..500 W transponders, uniform in dB.
    spec.tx_power_dbm = rng.uniform(48.8, 57.0);
    spec.cfo_hz = rng.normal(0.0, 20e3);  // within +-1 MHz spec, typically tens of kHz

    spec.position_phase_s = rng.uniform(0.0, kPositionIntervalS);
    spec.velocity_phase_s = rng.uniform(0.0, kVelocityIntervalS);
    spec.ident_phase_s = rng.uniform(0.0, kIdentIntervalS);
    spec.all_call_phase_s = rng.uniform(0.0, kAllCallIntervalS);
    fleet_.push_back(std::move(spec));
  }
}

SkySimulator::SkySimulator(geo::Geodetic center, std::vector<AircraftSpec> fleet)
    : center_(center), fleet_(std::move(fleet)) {}

std::vector<TransmissionEvent> SkySimulator::events_between(double t0, double t1) const {
  std::vector<TransmissionEvent> events;
  for (const auto& spec : fleet_) {
    auto schedule = [&](double phase, double interval, auto&& emit) {
      // First index k with phase + k*interval >= t0.
      const double first = std::ceil((t0 - phase) / interval);
      for (double k = std::max(0.0, first);; k += 1.0) {
        const double t = phase + k * interval;
        if (t >= t1) break;
        emit(t, static_cast<std::uint64_t>(k));
      }
    };

    schedule(spec.position_phase_s, kPositionIntervalS,
             [&](double t, std::uint64_t k) {
               const AircraftAt at = aircraft_at(spec, t);
               TransmissionEvent ev;
               ev.time_s = t;
               ev.icao = spec.icao;
               ev.tx_position = at.position;
               ev.tx_power_dbm = spec.tx_power_dbm;
               ev.cfo_hz = spec.cfo_hz;
               // Alternate even/odd CPR format per transmission.
               ev.frame = adsb::build_position_frame(
                   spec.icao, at.position.lat_deg, at.position.lon_deg,
                   adsb::m_to_feet(at.position.alt_m), (k % 2) == 1);
               events.push_back(std::move(ev));
             });

    schedule(spec.velocity_phase_s, kVelocityIntervalS,
             [&](double t, std::uint64_t) {
               const AircraftAt at = aircraft_at(spec, t);
               TransmissionEvent ev;
               ev.time_s = t;
               ev.icao = spec.icao;
               ev.tx_position = at.position;
               ev.tx_power_dbm = spec.tx_power_dbm;
               ev.cfo_hz = spec.cfo_hz;
               ev.frame = adsb::build_velocity_frame(spec.icao, at.ground_speed_kt,
                                                     at.track_deg, at.vertical_rate_fpm);
               events.push_back(std::move(ev));
             });

    schedule(spec.ident_phase_s, kIdentIntervalS,
             [&](double t, std::uint64_t) {
               const AircraftAt at = aircraft_at(spec, t);
               TransmissionEvent ev;
               ev.time_s = t;
               ev.icao = spec.icao;
               ev.tx_position = at.position;
               ev.tx_power_dbm = spec.tx_power_dbm;
               ev.cfo_hz = spec.cfo_hz;
               ev.frame = adsb::build_ident_frame(spec.icao, spec.callsign);
               events.push_back(std::move(ev));
             });

    schedule(spec.all_call_phase_s, kAllCallIntervalS,
             [&](double t, std::uint64_t) {
               const AircraftAt at = aircraft_at(spec, t);
               TransmissionEvent ev;
               ev.time_s = t;
               ev.icao = spec.icao;
               ev.tx_position = at.position;
               ev.tx_power_dbm = spec.tx_power_dbm;
               ev.cfo_hz = spec.cfo_hz;
               ev.bit_count = 56;
               const adsb::ShortFrame short_frame = adsb::build_all_call(spec.icao);
               for (std::size_t i = 0; i < short_frame.size(); ++i)
                 ev.frame[i] = short_frame[i];
               events.push_back(std::move(ev));
             });
  }
  std::sort(events.begin(), events.end(),
            [](const TransmissionEvent& a, const TransmissionEvent& b) {
              return a.time_s < b.time_s;
            });
  return events;
}

std::vector<AircraftAt> SkySimulator::snapshot(double t_s) const {
  std::vector<AircraftAt> out;
  out.reserve(fleet_.size());
  for (const auto& spec : fleet_) out.push_back(aircraft_at(spec, t_s));
  return out;
}

}  // namespace speccal::airtraffic
