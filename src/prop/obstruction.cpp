#include "prop/obstruction.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace speccal::prop {

namespace {
/// Frequency shaping shared by screens and the omni term: `base` dB at
/// 1 GHz plus `slope` dB per decade of frequency.
[[nodiscard]] double shaped_loss_db(double base_db, double slope_db_per_decade,
                                    double freq_hz) noexcept {
  const double decades = std::log10(std::max(freq_hz, 1e7) / 1e9);
  return std::max(0.0, base_db + slope_db_per_decade * decades);
}
}  // namespace

double Screen::loss_db(double freq_hz) const noexcept {
  return shaped_loss_db(loss_at_1ghz_db, loss_slope_db_per_decade, freq_hz);
}

double ObstructionMap::loss_db(double azimuth_deg, double elevation_deg,
                               double freq_hz) const noexcept {
  double total = shaped_loss_db(omni_loss_at_1ghz_db_, omni_slope_db_per_decade_, freq_hz);
  for (const auto& screen : screens_) {
    if (elevation_deg > screen.max_elevation_deg) continue;
    if (!screen.sector.contains(azimuth_deg)) continue;
    total += screen.loss_db(freq_hz);
  }
  // Multipath/penetration leakage caps the achievable blockage.
  return std::min(total, leakage_ceiling_db_);
}

geo::SectorSet ObstructionMap::obstructed_sectors(double freq_hz,
                                                  double threshold_db) const {
  geo::SectorSet out;
  for (const auto& screen : screens_)
    if (screen.loss_db(freq_hz) >= threshold_db) out.add(screen.sector);
  return out;
}

geo::SectorSet ObstructionMap::clear_sectors(double freq_hz, double threshold_db) const {
  // Sample the horizon at 1-degree resolution, then merge runs of clear
  // azimuths into maximal sectors (handling wrap through north).
  constexpr int kSamples = 360;
  std::array<bool, kSamples> clear{};
  const double omni = shaped_loss_db(omni_loss_at_1ghz_db_, omni_slope_db_per_decade_, freq_hz);
  for (int az = 0; az < kSamples; ++az) {
    double loss = omni;
    for (const auto& screen : screens_)
      if (screen.sector.contains(static_cast<double>(az)))
        loss += screen.loss_db(freq_hz);
    clear[static_cast<std::size_t>(az)] = loss < threshold_db;
  }

  geo::SectorSet out;
  // Find run starts: clear[i] && !clear[i-1].
  bool any_blocked = false;
  for (bool c : clear) any_blocked |= !c;
  if (!any_blocked) {
    out.add(geo::Sector{0.0, 0.0});  // full circle
    return out;
  }
  for (int i = 0; i < kSamples; ++i) {
    const int prev = (i + kSamples - 1) % kSamples;
    if (clear[static_cast<std::size_t>(i)] && !clear[static_cast<std::size_t>(prev)]) {
      int j = i;
      int len = 0;
      while (clear[static_cast<std::size_t>(j)] && len < kSamples) {
        j = (j + 1) % kSamples;
        ++len;
      }
      out.add(geo::Sector{static_cast<double>(i), static_cast<double>((i + len) % kSamples)});
    }
  }
  return out;
}

}  // namespace speccal::prop
