// Site obstruction model.
//
// The paper's three experiment sites differ only in what blocks the antenna:
//   (1) rooftop — open to the west, rooftop structures elsewhere
//   (2) behind a window — narrow clear sector through glass, buildings
//       left and right
//   (3) indoors — walls in every direction
// We model a site as a set of azimuth "screens", each with its own
// frequency-dependent attenuation, an optional omnidirectional base loss
// (e.g. being inside a building), and a multipath leakage bound: reflected
// / penetrating energy limits the effective blockage, which is why the
// paper sees nearby (<20 km) ADS-B from every direction.
#pragma once

#include <string>
#include <vector>

#include "geo/sector.hpp"
#include "prop/pathloss.hpp"

namespace speccal::prop {

/// One angular obstruction: everything inside `sector` and below
/// `max_elevation_deg` suffers `loss_db(freq)` extra attenuation.
struct Screen {
  geo::Sector sector;
  /// Loss at the 1 GHz reference frequency [dB].
  double loss_at_1ghz_db = 20.0;
  /// Additional loss per decade of frequency [dB]; positive = worse at
  /// higher frequency (typical for walls/structures).
  double loss_slope_db_per_decade = 10.0;
  /// Signals arriving above this elevation pass over the screen.
  double max_elevation_deg = 90.0;
  std::string label;

  [[nodiscard]] double loss_db(double freq_hz) const noexcept;
};

/// Complete obstruction environment for a sensor site.
class ObstructionMap {
 public:
  ObstructionMap() = default;

  void add_screen(Screen screen) { screens_.push_back(std::move(screen)); }

  /// Omnidirectional loss applied to every path (e.g. building walls for an
  /// indoor site), modelled with the ITU entry-loss frequency shape scaled
  /// so that `loss_at_1ghz_db` is the 1 GHz value.
  void set_omni_loss(double loss_at_1ghz_db, double slope_db_per_decade) noexcept {
    omni_loss_at_1ghz_db_ = loss_at_1ghz_db;
    omni_slope_db_per_decade_ = slope_db_per_decade;
  }

  /// Bound on how much total obstruction loss can exceed the leakage path:
  /// multipath reflections and wall penetration put a ceiling on blockage.
  /// Default 45 dB. Set lower for leaky environments.
  void set_leakage_ceiling_db(double db) noexcept { leakage_ceiling_db_ = db; }

  /// Total extra loss [dB] for a ray arriving from `azimuth_deg` at
  /// `elevation_deg` on `freq_hz`. Never exceeds the leakage ceiling.
  [[nodiscard]] double loss_db(double azimuth_deg, double elevation_deg,
                               double freq_hz) const noexcept;

  /// Sectors whose screen loss exceeds `threshold_db` at `freq_hz` —
  /// the ground-truth "obstructed" set used to validate FoV estimation.
  /// The 15 dB default marks a direction blocked only when the loss
  /// materially shrinks ADS-B range inside the survey radius (window glass
  /// at ~11 dB does not; building walls at ~38 dB do).
  [[nodiscard]] geo::SectorSet obstructed_sectors(double freq_hz,
                                                  double threshold_db = 15.0) const;

  /// Complement view: azimuths NOT behind any screen stronger than the
  /// threshold (the true field of view). Sampled at 1-degree resolution and
  /// merged into maximal sectors.
  [[nodiscard]] geo::SectorSet clear_sectors(double freq_hz,
                                             double threshold_db = 15.0) const;

  [[nodiscard]] const std::vector<Screen>& screens() const noexcept { return screens_; }
  [[nodiscard]] double leakage_ceiling_db() const noexcept { return leakage_ceiling_db_; }

 private:
  std::vector<Screen> screens_;
  double omni_loss_at_1ghz_db_ = 0.0;
  double omni_slope_db_per_decade_ = 0.0;
  double leakage_ceiling_db_ = 45.0;
};

}  // namespace speccal::prop
