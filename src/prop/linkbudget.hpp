// Link budget evaluation: ties together emitter, geometry, path loss,
// obstructions, fading and the receive antenna into a received power.
//
// Every simulated signal source (aircraft squitter, cell tower, TV tower)
// computes its power at the sensor through this one function, so the
// calibration pipeline sees a consistent world.
#pragma once

#include <cstdint>
#include <optional>

#include "geo/wgs84.hpp"
#include "prop/fading.hpp"
#include "prop/obstruction.hpp"
#include "prop/pathloss.hpp"

namespace speccal::prop {

/// Which large-scale model to use for the link.
enum class PathModel {
  kFreeSpace,    // LOS air-to-ground
  kLogDistance,  // urban terrestrial
  kTwoSlope,     // broadcast with breakpoint
};

struct LinkParams {
  PathModel model = PathModel::kFreeSpace;
  double exponent = 2.0;        // log-distance exponent (kLogDistance)
  double n1 = 2.0;              // two-slope near exponent
  double n2 = 3.5;              // two-slope far exponent
  double breakpoint_m = 5000.0; // two-slope breakpoint
};

struct LinkInput {
  geo::Geodetic transmitter;
  geo::Geodetic receiver;
  double freq_hz = 1090e6;
  double tx_power_dbm = 50.0;  // EIRP toward the receiver
  double rx_antenna_gain_dbi = 0.0;
  std::uint64_t emitter_id = 0;    // for deterministic fading
  std::uint64_t message_index = 0; // for per-message fast fading
};

struct LinkResult {
  double distance_m = 0.0;
  double azimuth_deg = 0.0;    // bearing from receiver to transmitter
  double elevation_deg = 0.0;  // elevation of transmitter at receiver
  double path_loss_db = 0.0;
  double obstruction_db = 0.0;
  double shadowing_db = 0.0;
  double fast_fading_db = 0.0;
  double rx_power_dbm = 0.0;
  bool beyond_radio_horizon = false;
};

/// Evaluate the full budget. `obstructions` and `fading` may be null for an
/// ideal link. When the transmitter is beyond the radio horizon the result
/// reports `beyond_radio_horizon` and an rx power pushed 60 dB below the
/// horizon-free value (diffraction remnant, effectively undecodable).
[[nodiscard]] LinkResult evaluate_link(const LinkInput& in, const LinkParams& params,
                                       const ObstructionMap* obstructions,
                                       const FadingModel* fading) noexcept;

}  // namespace speccal::prop
