// Path-loss models.
//
// Three models cover the paper's links:
//   * free space        — ADS-B air-to-ground (line of sight, 1090 MHz)
//   * log-distance      — urban cellular downlink (exponent ~3 near ground)
//   * two-slope         — TV broadcast (LOS near the tower, steeper beyond
//                         a breakpoint), a common empirical VHF/UHF fit
// plus frequency-dependent building-entry loss (simplified ITU-R P.2109)
// that produces the paper's central observation: 700 MHz penetrates
// buildings far better than 2 GHz+.
#pragma once

namespace speccal::prop {

/// Free-space path loss [dB] at `distance_m`, `freq_hz`. Distances below
/// 1 m are clamped to 1 m to keep the model defined at the antenna.
[[nodiscard]] double free_space_path_loss_db(double distance_m, double freq_hz) noexcept;

/// Log-distance model: FSPL at `reference_m` plus 10*n*log10(d/d0).
[[nodiscard]] double log_distance_path_loss_db(double distance_m, double freq_hz,
                                               double exponent,
                                               double reference_m = 100.0) noexcept;

/// Two-slope model: exponent `n1` out to `breakpoint_m`, `n2` beyond.
[[nodiscard]] double two_slope_path_loss_db(double distance_m, double freq_hz,
                                            double n1, double n2,
                                            double breakpoint_m) noexcept;

/// Okumura-Hata urban macro-cell model (the classical empirical fit the
/// cellmapper-style coverage figures the paper cites are built on).
/// Valid 150-1500 MHz, 1-20 km, base antenna 30-200 m, mobile 1-10 m;
/// inputs are clamped into that envelope.
[[nodiscard]] double hata_urban_path_loss_db(double distance_m, double freq_hz,
                                             double base_height_m,
                                             double mobile_height_m) noexcept;

/// Hata with the standard suburban correction (lower clutter).
[[nodiscard]] double hata_suburban_path_loss_db(double distance_m, double freq_hz,
                                                double base_height_m,
                                                double mobile_height_m) noexcept;

/// Building construction classes for entry-loss modelling.
enum class BuildingClass {
  kTraditional,        // brick/wood, moderate loss
  kThermallyEfficient  // metallised glass / foil insulation, high loss
};

/// Median building-entry loss [dB] at `freq_hz` (simplified ITU-R P.2109
/// horizontal-path median: r + s*log10(f_GHz) + t*log10(f_GHz)^2).
/// Captures the strong frequency dependence the paper exploits.
[[nodiscard]] double building_entry_loss_db(double freq_hz, BuildingClass cls) noexcept;

/// Single exterior-wall / window penetration loss [dB] — lighter than full
/// building entry; used for the "behind a window" site.
[[nodiscard]] double window_penetration_loss_db(double freq_hz) noexcept;

/// Thermal noise floor [dBm] for `bandwidth_hz` and receiver noise figure.
[[nodiscard]] double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) noexcept;

}  // namespace speccal::prop
