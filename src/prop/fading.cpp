#include "prop/fading.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace speccal::prop {

namespace {
/// Map a 64-bit hash to a standard normal variate via inverse-CDF
/// approximation (Acklam's rational approximation; |error| < 1.15e-9).
[[nodiscard]] double hash_to_normal(std::uint64_t h) noexcept {
  // Convert to uniform (0,1), avoiding the exact endpoints.
  const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;

  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (u < p_low) {
    const double q = std::sqrt(-2.0 * std::log(u));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (u > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = u - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

[[nodiscard]] std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ull);
  return speccal::util::splitmix64(s);
}
}  // namespace

double FadingModel::shadowing_db(std::uint64_t emitter_id, double azimuth_deg,
                                 double distance_m) const noexcept {
  if (shadow_sigma_db_ <= 0.0) return 0.0;
  // Quantize geometry so that nearby positions share the shadowing value
  // (spatially correlated shadowing with ~2 deg / ~1 km decorrelation).
  const auto az_bucket = static_cast<std::uint64_t>(azimuth_deg / 2.0 + 720.0);
  const auto rg_bucket = static_cast<std::uint64_t>(distance_m / 1000.0);
  const std::uint64_t h =
      mix(mix(seed_, emitter_id), mix(az_bucket, rg_bucket * 0x517CC1B727220A95ull));
  return shadow_sigma_db_ * hash_to_normal(h);
}

double FadingModel::fast_fading_db(std::uint64_t emitter_id,
                                   std::uint64_t message_index) const noexcept {
  if (fast_sigma_db_ <= 0.0) return 0.0;
  const std::uint64_t h = mix(mix(seed_ ^ 0xABCDEF1234567890ull, emitter_id),
                              message_index * 0x2545F4914F6CDD1Dull);
  return fast_sigma_db_ * hash_to_normal(h);
}

}  // namespace speccal::prop
