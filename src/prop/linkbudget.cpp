#include "prop/linkbudget.hpp"

#include <algorithm>

namespace speccal::prop {

LinkResult evaluate_link(const LinkInput& in, const LinkParams& params,
                         const ObstructionMap* obstructions,
                         const FadingModel* fading) noexcept {
  LinkResult out;
  out.distance_m = geo::slant_range_m(in.receiver, in.transmitter);
  out.azimuth_deg = geo::bearing_deg(in.receiver, in.transmitter);
  out.elevation_deg = geo::elevation_deg(in.receiver, in.transmitter);

  switch (params.model) {
    case PathModel::kFreeSpace:
      out.path_loss_db = free_space_path_loss_db(out.distance_m, in.freq_hz);
      break;
    case PathModel::kLogDistance:
      out.path_loss_db =
          log_distance_path_loss_db(out.distance_m, in.freq_hz, params.exponent);
      break;
    case PathModel::kTwoSlope:
      out.path_loss_db = two_slope_path_loss_db(out.distance_m, in.freq_hz, params.n1,
                                                params.n2, params.breakpoint_m);
      break;
  }

  if (obstructions != nullptr)
    out.obstruction_db =
        obstructions->loss_db(out.azimuth_deg, out.elevation_deg, in.freq_hz);
  if (fading != nullptr) {
    out.shadowing_db = fading->shadowing_db(in.emitter_id, out.azimuth_deg, out.distance_m);
    out.fast_fading_db = fading->fast_fading_db(in.emitter_id, in.message_index);
  }

  out.rx_power_dbm = in.tx_power_dbm + in.rx_antenna_gain_dbi - out.path_loss_db -
                     out.obstruction_db + out.shadowing_db + out.fast_fading_db;

  // Radio horizon check uses the ground distance and both altitudes above
  // local ground (approximated by the altitude fields themselves).
  const double horizon =
      geo::radio_horizon_m(std::max(1.0, in.receiver.alt_m),
                           std::max(1.0, in.transmitter.alt_m));
  if (geo::haversine_m(in.receiver, in.transmitter) > horizon) {
    out.beyond_radio_horizon = true;
    out.rx_power_dbm -= 60.0;
  }
  return out;
}

}  // namespace speccal::prop
