#include "prop/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace speccal::prop {

double free_space_path_loss_db(double distance_m, double freq_hz) noexcept {
  const double d = std::max(distance_m, 1.0);
  // 20 log10(4 pi d f / c)
  return 20.0 * std::log10(4.0 * util::kPi * d * freq_hz /
                           util::kSpeedOfLight);
}

double log_distance_path_loss_db(double distance_m, double freq_hz, double exponent,
                                 double reference_m) noexcept {
  const double d = std::max(distance_m, reference_m);
  return free_space_path_loss_db(reference_m, freq_hz) +
         10.0 * exponent * std::log10(d / reference_m);
}

double two_slope_path_loss_db(double distance_m, double freq_hz, double n1, double n2,
                              double breakpoint_m) noexcept {
  constexpr double kReferenceM = 100.0;
  const double d = std::max(distance_m, kReferenceM);
  const double base = free_space_path_loss_db(kReferenceM, freq_hz);
  if (d <= breakpoint_m)
    return base + 10.0 * n1 * std::log10(d / kReferenceM);
  return base + 10.0 * n1 * std::log10(breakpoint_m / kReferenceM) +
         10.0 * n2 * std::log10(d / breakpoint_m);
}

namespace {
/// Shared Hata kernel; the suburban variant subtracts its correction.
[[nodiscard]] double hata_kernel_db(double distance_m, double freq_hz,
                                    double base_height_m,
                                    double mobile_height_m) noexcept {
  const double f_mhz = std::clamp(freq_hz / 1e6, 150.0, 1500.0);
  const double d_km = std::clamp(distance_m / 1e3, 1.0, 20.0);
  const double hb = std::clamp(base_height_m, 30.0, 200.0);
  const double hm = std::clamp(mobile_height_m, 1.0, 10.0);
  // Small/medium-city mobile antenna correction a(hm).
  const double a_hm = (1.1 * std::log10(f_mhz) - 0.7) * hm -
                      (1.56 * std::log10(f_mhz) - 0.8);
  return 69.55 + 26.16 * std::log10(f_mhz) - 13.82 * std::log10(hb) - a_hm +
         (44.9 - 6.55 * std::log10(hb)) * std::log10(d_km);
}
}  // namespace

double hata_urban_path_loss_db(double distance_m, double freq_hz,
                               double base_height_m,
                               double mobile_height_m) noexcept {
  return hata_kernel_db(distance_m, freq_hz, base_height_m, mobile_height_m);
}

double hata_suburban_path_loss_db(double distance_m, double freq_hz,
                                  double base_height_m,
                                  double mobile_height_m) noexcept {
  const double f_mhz = std::clamp(freq_hz / 1e6, 150.0, 1500.0);
  const double k = std::log10(f_mhz / 28.0);
  return hata_kernel_db(distance_m, freq_hz, base_height_m, mobile_height_m) -
         2.0 * k * k - 5.4;
}

double building_entry_loss_db(double freq_hz, BuildingClass cls) noexcept {
  // ITU-R P.2109 median horizontal-path entry loss:
  //   L = r + s*log10(f) + t*log10(f)^2, f in GHz.
  const double lf = std::log10(std::max(freq_hz, 1e8) / 1e9);
  double r, s, t;
  if (cls == BuildingClass::kTraditional) {
    r = 12.64;
    s = 3.72;
    t = 0.96;
  } else {
    r = 28.19;
    s = -3.00;
    t = 8.48;
  }
  return std::max(0.0, r + s * lf + t * lf * lf);
}

double window_penetration_loss_db(double freq_hz) noexcept {
  // Standard glass: a few dB at UHF rising gently with frequency
  // (coated/IRR glass would be far worse; we model plain glass).
  const double f_ghz = std::max(freq_hz, 1e8) / 1e9;
  return 2.5 + 2.0 * std::log10(f_ghz + 1.0);
}

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) noexcept {
  return util::thermal_noise_dbm(bandwidth_hz) + noise_figure_db;
}

}  // namespace speccal::prop
