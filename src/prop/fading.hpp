// Deterministic shadow fading and per-message fast fading.
//
// Real links vary: shadowing (terrain/clutter, slowly varying with
// geometry) and fast fading (multipath, varying per message). Both are
// made deterministic functions of (seed, emitter id, geometry quantum) via
// hashing so that repeated runs — and the paper's "repeated over 10 times"
// observation — reproduce exactly.
#pragma once

#include <cstdint>

namespace speccal::prop {

class FadingModel {
 public:
  /// `shadowing_sigma_db`: log-normal shadowing std-dev (typ. 4-8 dB urban).
  /// `fast_sigma_db`: per-message variation (Rician-ish spread, typ. 2-4 dB).
  FadingModel(std::uint64_t seed, double shadowing_sigma_db,
              double fast_sigma_db) noexcept
      : seed_(seed), shadow_sigma_db_(shadowing_sigma_db),
        fast_sigma_db_(fast_sigma_db) {}

  /// Shadowing for a given emitter in a given direction bucket. Stable:
  /// the same emitter at the same ~2-degree azimuth and ~1 km range bucket
  /// always sees the same value.
  [[nodiscard]] double shadowing_db(std::uint64_t emitter_id, double azimuth_deg,
                                    double distance_m) const noexcept;

  /// Fast fading sampled per message (keyed by a message counter).
  [[nodiscard]] double fast_fading_db(std::uint64_t emitter_id,
                                      std::uint64_t message_index) const noexcept;

  [[nodiscard]] double shadowing_sigma_db() const noexcept { return shadow_sigma_db_; }
  [[nodiscard]] double fast_sigma_db() const noexcept { return fast_sigma_db_; }

 private:
  std::uint64_t seed_;
  double shadow_sigma_db_;
  double fast_sigma_db_;
};

}  // namespace speccal::prop
