#include "cellular/scanner.hpp"

#include <cmath>

#include "prop/pathloss.hpp"
#include "util/units.hpp"

namespace speccal::cellular {

CellMeasurement CellScanner::measure(const Cell& cell, const sdr::RxEnvironment& rx,
                                     double frontend_loss_db) const noexcept {
  CellMeasurement out;
  out.cell = cell;

  prop::LinkInput link;
  link.transmitter = cell.position;
  link.receiver = rx.position;
  link.freq_hz = cell.dl_freq_hz;
  link.tx_power_dbm = cell.eirp_dbm;
  link.emitter_id = cell.cell_id;
  if (rx.antenna != nullptr) {
    const double az = geo::bearing_deg(rx.position, cell.position);
    link.rx_antenna_gain_dbi = rx.antenna->gain_dbi(cell.dl_freq_hz, az);
  }
  const prop::LinkResult budget =
      prop::evaluate_link(link, config_.link, rx.obstructions, rx.fading);

  out.rssi_dbm = budget.rx_power_dbm - frontend_loss_db;
  // RSRP = wideband power / number of resource elements.
  const double re_count = 12.0 * cell.resource_blocks();
  out.rsrp_dbm = out.rssi_dbm - 10.0 * std::log10(re_count);

  const double noise_re_dbm =
      prop::noise_floor_dbm(kSubcarrierHz, config_.noise_figure_db);
  out.sinr_db = out.rsrp_dbm - noise_re_dbm;
  out.decoded = out.sinr_db >= config_.sync_threshold_db &&
                out.rsrp_dbm >= config_.min_rsrp_dbm;
  return out;
}

std::vector<CellMeasurement> CellScanner::scan(const std::vector<Cell>& cells,
                                               const sdr::RxEnvironment& rx,
                                               double frontend_loss_db) const {
  std::vector<CellMeasurement> out;
  out.reserve(cells.size());
  for (const auto& cell : cells)
    out.push_back(measure(cell, rx, frontend_loss_db));
  return out;
}

}  // namespace speccal::cellular
