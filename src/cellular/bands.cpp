#include "cellular/bands.hpp"

#include <array>
#include <cmath>

namespace speccal::cellular {

namespace {
// 3GPP TS 36.101 Table 5.7.3-1 (downlink), North-American deployments plus
// CBRS. dl_high is dl_low + the band's DL block width.
constexpr std::array<BandInfo, 19> kLteBands = {{
    {1, 2110e6, 2170e6, 0, "2100 IMT"},
    {2, 1930e6, 1990e6, 600, "1900 PCS"},
    {3, 1805e6, 1880e6, 1200, "1800+"},
    {4, 2110e6, 2155e6, 1950, "AWS-1"},
    {5, 869e6, 894e6, 2400, "850 CLR"},
    {7, 2620e6, 2690e6, 2750, "2600 IMT-E"},
    {12, 729e6, 746e6, 5010, "700 a"},
    {13, 746e6, 756e6, 5180, "700 c"},
    {14, 758e6, 768e6, 5280, "700 PS"},
    {17, 734e6, 746e6, 5730, "700 b"},
    {25, 1930e6, 1995e6, 8040, "1900+"},
    {26, 859e6, 894e6, 8690, "850+"},
    {29, 717e6, 728e6, 9660, "700 d (SDL)"},
    {30, 2350e6, 2360e6, 9770, "2300 WCS"},
    {41, 2496e6, 2690e6, 39650, "TD 2500"},
    {46, 5150e6, 5925e6, 46790, "TD Unlicensed"},
    {48, 3550e6, 3700e6, 55240, "TD 3500 CBRS"},
    {66, 2110e6, 2200e6, 66436, "AWS-3"},
    {71, 617e6, 652e6, 68586, "600"},
}};
}  // namespace

std::span<const BandInfo> lte_bands() noexcept { return kLteBands; }

std::optional<BandInfo> band_for_earfcn(std::uint32_t earfcn) noexcept {
  for (const auto& band : kLteBands) {
    const double width_hz = band.dl_high_hz - band.dl_low_hz;
    const auto channels = static_cast<std::uint32_t>(width_hz / 100e3);
    if (earfcn >= band.earfcn_offset && earfcn < band.earfcn_offset + channels)
      return band;
  }
  return std::nullopt;
}

std::optional<double> earfcn_to_dl_freq_hz(std::uint32_t earfcn) noexcept {
  const auto band = band_for_earfcn(earfcn);
  if (!band) return std::nullopt;
  return band->dl_low_hz + 100e3 * static_cast<double>(earfcn - band->earfcn_offset);
}

std::optional<std::uint32_t> dl_freq_to_earfcn(int band_number, double freq_hz) noexcept {
  for (const auto& band : kLteBands) {
    if (band.band != band_number) continue;
    if (freq_hz < band.dl_low_hz || freq_hz > band.dl_high_hz) return std::nullopt;
    return band.earfcn_offset +
           static_cast<std::uint32_t>(std::lround((freq_hz - band.dl_low_hz) / 100e3));
  }
  return std::nullopt;
}

SpectrumClass classify_frequency(double freq_hz) noexcept {
  if (freq_hz < 1e9) return SpectrumClass::kLowBand;
  if (freq_hz < 2.7e9) return SpectrumClass::kMidBand;
  if (freq_hz < 7.125e9) return SpectrumClass::kHighBand;
  return SpectrumClass::kMmWave;
}

std::string to_string(SpectrumClass cls) {
  switch (cls) {
    case SpectrumClass::kLowBand: return "low-band (<1 GHz)";
    case SpectrumClass::kMidBand: return "mid-band (1-2.7 GHz)";
    case SpectrumClass::kHighBand: return "high-band (2.7-7.125 GHz)";
    case SpectrumClass::kMmWave: return "mmWave (>7.125 GHz)";
  }
  return "?";
}

}  // namespace speccal::cellular
