// LTE primary synchronization signal (PSS): generation, transmission and
// waveform-level cell search.
//
// The paper's srsUE "scan" is, physically, PSS detection: a Zadoff-Chu
// sequence of length 62 transmitted twice per frame on the 62 subcarriers
// around DC. The model-level CellScanner (scanner.hpp) predicts *whether*
// sync succeeds from the link budget; this module closes the loop by
// actually transmitting the PSS through the simulated SDR and detecting it
// by cross-correlation, exactly as a UE does during cell search. A
// validation bench/test checks that the two levels agree.
//
// Conventions follow 3GPP TS 36.211 §6.11.1: root indices u ∈ {25, 29, 34}
// for N_ID^(2) ∈ {0, 1, 2}; cell-search runs at the standard 1.92 Msps
// (128-point OFDM symbols, 6-RB bandwidth).
#pragma once

#include <array>
#include <complex>
#include <optional>
#include <vector>

#include "cellular/tower.hpp"
#include "prop/linkbudget.hpp"
#include "sdr/sim.hpp"

namespace speccal::cellular {

/// Cell-search sample rate (6-RB downlink, 128-point FFT).
inline constexpr double kSearchRateHz = 1.92e6;
/// Samples per OFDM symbol at the search rate (no cyclic prefix).
inline constexpr std::size_t kPssFftSize = 128;
/// PSS repeats every half frame.
inline constexpr double kPssPeriodS = 5e-3;

/// Frequency-domain Zadoff-Chu PSS sequence (62 entries) for N_ID^(2).
/// Throws std::invalid_argument for nid2 > 2.
[[nodiscard]] std::array<std::complex<double>, 62> pss_sequence(int nid2);

/// Time-domain PSS symbol (kPssFftSize samples, unit average power):
/// the 62 ZC entries mapped to subcarriers -31..-1, +1..+31 and IFFT'd.
/// `fractional_delay` (in samples, 0..1) applies a frequency-domain phase
/// ramp; the searcher correlates against both a 0 and a 0.5-sample-delayed
/// reference so bursts landing between sample instants still correlate.
[[nodiscard]] std::vector<std::complex<float>> pss_time_domain(
    int nid2, double fractional_delay = 0.0);

/// Signal source transmitting a cell's downlink as PSS bursts every half
/// frame plus band-limited OFDM-like noise carrying the rest of the power.
class CellSignalSource final : public sdr::SignalSource {
 public:
  CellSignalSource(Cell cell, prop::LinkParams link, util::Rng rng);

  void render(const sdr::CaptureContext& ctx, std::span<dsp::Sample> accum) override;

  [[nodiscard]] const Cell& cell() const noexcept { return cell_; }

 private:
  Cell cell_;
  prop::LinkParams link_;
  util::Rng rng_;
  std::array<std::vector<std::complex<float>>, 3> pss_waveforms_;
};

struct PssDetection {
  bool detected = false;
  int nid2 = -1;
  std::size_t timing_offset = 0;   // sample index of the PSS start
  double metric = 0.0;             // peak normalized correlation in [0, 1]
  double cfo_hz = 0.0;             // coarse CFO from the correlation phase
};

struct PssSearchConfig {
  /// Capture length: 20 ms = 4 PSS occurrences, non-coherently combined.
  double capture_duration_s = 20e-3;
  /// Cell search runs under AGC, as a real UE front end does: a macro cell
  /// a few hundred metres away would otherwise clip the ADC and shred the
  /// correlation. (Contrast with the TV power meter, which *must* pin the
  /// gain to keep readings comparable.)
  bool use_agc = true;
  double manual_gain_db = 40.0;
  /// Combined-correlation peak required to declare sync. The PSS carries
  /// 62 of ~600 subcarriers, so even an arbitrarily strong cell tops out
  /// near 0.09 (self-interference from the rest of the grid); the noise
  /// extreme-value tail after 4-occurrence combining stays below ~0.045.
  double detection_threshold = 0.065;
};

/// Correlate a capture against the three PSS roots.
[[nodiscard]] PssDetection pss_search(std::span<const std::complex<float>> capture);

/// Full waveform-level cell search: tune the device to each candidate
/// cell's downlink EARFCN at 1.92 Msps, capture, correlate. The device
/// must carry CellSignalSource entries for the physical world.
[[nodiscard]] std::vector<std::pair<Cell, PssDetection>> waveform_cell_search(
    sdr::Device& device, const std::vector<Cell>& candidates,
    const PssSearchConfig& config = {});

}  // namespace speccal::cellular
