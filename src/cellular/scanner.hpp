// srsUE-style cell scanner.
//
// Reproduces what the paper uses srsUE for: scan a list of channels, try to
// synchronize to each cell, and report RSRP. Synchronization succeeds only
// when the cell's reference signals clear the receiver's sensitivity (a
// missing bar in the paper's Figure 3 is a failed sync, not a zero reading).
//
// RSRP is power per resource element: total received channel power spread
// over 12 * N_RB subcarriers. Sync needs the PSS/SSS SNR above a threshold;
// we model this as RSRP relative to the per-RE noise floor.
#pragma once

#include <optional>
#include <vector>

#include "cellular/tower.hpp"
#include "prop/linkbudget.hpp"
#include "sdr/rx_environment.hpp"

namespace speccal::cellular {

struct ScanConfig {
  /// Minimum SINR per resource element for PSS/SSS sync [dB]. LTE cell
  /// search works slightly below 0 dB; srsUE in practice needs a few dB.
  double sync_threshold_db = 1.0;
  /// Practical cell-search sensitivity of srsUE on an SDR front end [dBm
  /// RSRP]: short dwell, CFO search and quantization lose ~25 dB against a
  /// phone baseband, which is why the paper's missing bars appear at RSRP
  /// levels a handset would still decode.
  double min_rsrp_dbm = -95.0;
  /// Receiver noise figure [dB] (taken from the SDR if scanning a device).
  double noise_figure_db = 7.0;
  /// Large-scale model for the downlink (urban log-distance by default).
  prop::LinkParams link{prop::PathModel::kLogDistance, 2.9, 2.0, 3.5, 5000.0};
};

struct CellMeasurement {
  Cell cell;
  double rsrp_dbm = -200.0;      // reference signal received power
  double rssi_dbm = -200.0;      // wideband received power
  double sinr_db = -50.0;        // per-RE SNR
  bool decoded = false;          // sync succeeded (bar present in Fig. 3)
};

/// Scanner over a receiver environment (model-level: the paper's RSRP
/// numbers are link-budget quantities; the waveform path is exercised by
/// the TV power meter which shares the same emitters).
class CellScanner {
 public:
  explicit CellScanner(ScanConfig config = {}) noexcept : config_(config) {}

  /// Measure one cell at the given receiver. `frontend_loss_db` models the
  /// receiver's own RF-path loss (feedline/connector) that a scan through
  /// the physical device would suffer; the clear-sky *expectation* uses 0.
  [[nodiscard]] CellMeasurement measure(const Cell& cell, const sdr::RxEnvironment& rx,
                                        double frontend_loss_db = 0.0) const noexcept;

  /// Scan a set of cells (e.g. CellDatabase::near output).
  [[nodiscard]] std::vector<CellMeasurement> scan(const std::vector<Cell>& cells,
                                                  const sdr::RxEnvironment& rx,
                                                  double frontend_loss_db = 0.0) const;

  [[nodiscard]] const ScanConfig& config() const noexcept { return config_; }

 private:
  ScanConfig config_;
};

/// LTE subcarrier spacing (per-RE noise bandwidth).
inline constexpr double kSubcarrierHz = 15e3;

}  // namespace speccal::cellular
