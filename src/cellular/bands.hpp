// 3GPP frequency band tables and ARFCN conversions.
//
// Cell databases (cellmapper.net and friends) identify channels by EARFCN;
// the scanner needs the downlink centre frequency. Implemented per 3GPP
// TS 36.101 (F_DL = F_DL_low + 0.1 * (N_DL - N_Offs_DL)) for the LTE bands
// deployed in North America, which the paper's experiment uses, plus the
// CBRS band (48) that §3.3 discusses and 5G NR FR2 examples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace speccal::cellular {

struct BandInfo {
  int band = 0;
  double dl_low_hz = 0.0;     // F_DL_low
  double dl_high_hz = 0.0;    // upper edge of the DL block
  std::uint32_t earfcn_offset = 0;  // N_Offs_DL
  const char* label = "";
};

/// Supported LTE band descriptors (sorted by EARFCN offset).
[[nodiscard]] std::span<const BandInfo> lte_bands() noexcept;

/// Find the band containing a downlink EARFCN.
[[nodiscard]] std::optional<BandInfo> band_for_earfcn(std::uint32_t earfcn) noexcept;

/// Downlink carrier frequency for an EARFCN; nullopt if out of any band.
[[nodiscard]] std::optional<double> earfcn_to_dl_freq_hz(std::uint32_t earfcn) noexcept;

/// EARFCN whose centre is nearest `freq_hz` within `band`; nullopt if the
/// frequency lies outside that band's downlink block.
[[nodiscard]] std::optional<std::uint32_t> dl_freq_to_earfcn(int band,
                                                             double freq_hz) noexcept;

/// Band classification used by the calibration report (the paper reasons
/// about low-band penetration versus mid-band attenuation).
enum class SpectrumClass { kLowBand, kMidBand, kHighBand, kMmWave };

[[nodiscard]] SpectrumClass classify_frequency(double freq_hz) noexcept;
[[nodiscard]] std::string to_string(SpectrumClass cls);

}  // namespace speccal::cellular
