#include "cellular/pss.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/goertzel.hpp"
#include "dsp/plan.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace speccal::cellular {

namespace {
constexpr std::array<int, 3> kRootIndex = {25, 29, 34};

/// Deterministic per-cell frame-timing offset so cells are not frame-aligned.
[[nodiscard]] double frame_offset_s(std::uint64_t cell_id) noexcept {
  std::uint64_t s = cell_id * 0x9E3779B97F4A7C15ull;
  return (static_cast<double>(util::splitmix64(s) & 0xFFFF) / 65536.0) * kPssPeriodS;
}

/// The six correlation references (3 roots x {0, 0.5}-sample delay) are
/// deterministic, so synthesize them once per process instead of once per
/// search call (each synthesis is an IFFT + normalization).
[[nodiscard]] const std::array<std::array<std::vector<std::complex<float>>, 2>, 3>&
search_references() {
  static const auto refs = [] {
    std::array<std::array<std::vector<std::complex<float>>, 2>, 3> r;
    for (int nid2 = 0; nid2 < 3; ++nid2)
      for (int f = 0; f < 2; ++f)
        r[static_cast<std::size_t>(nid2)][static_cast<std::size_t>(f)] =
            pss_time_domain(nid2, f == 0 ? 0.0 : 0.5);
    return r;
  }();
  return refs;
}
}  // namespace

std::array<std::complex<double>, 62> pss_sequence(int nid2) {
  if (nid2 < 0 || nid2 > 2)
    throw std::invalid_argument("pss_sequence: N_ID^(2) must be 0, 1 or 2");
  const double u = static_cast<double>(kRootIndex[static_cast<std::size_t>(nid2)]);
  std::array<std::complex<double>, 62> d{};
  for (int n = 0; n < 31; ++n) {
    const double phase = -std::numbers::pi * u * n * (n + 1) / 63.0;
    d[static_cast<std::size_t>(n)] = {std::cos(phase), std::sin(phase)};
  }
  for (int n = 31; n < 62; ++n) {
    const double phase = -std::numbers::pi * u * (n + 1) * (n + 2) / 63.0;
    d[static_cast<std::size_t>(n)] = {std::cos(phase), std::sin(phase)};
  }
  return d;
}

std::vector<std::complex<float>> pss_time_domain(int nid2, double fractional_delay) {
  const auto d = pss_sequence(nid2);
  std::vector<std::complex<double>> grid(kPssFftSize, {0.0, 0.0});
  // TS 36.211: d(n) occupies subcarriers k = n - 31 (n < 31, negative side)
  // and k = n - 30 (n >= 31, positive side); DC stays empty.
  for (int n = 0; n < 31; ++n)
    grid[kPssFftSize + static_cast<std::size_t>(n - 31)] = d[static_cast<std::size_t>(n)];
  for (int n = 31; n < 62; ++n)
    grid[static_cast<std::size_t>(n - 30)] = d[static_cast<std::size_t>(n)];

  if (fractional_delay != 0.0) {
    // Linear phase in frequency = fractional delay in time.
    for (std::size_t k = 0; k < kPssFftSize; ++k) {
      if (grid[k] == std::complex<double>{}) continue;
      double f = static_cast<double>(k);
      if (f >= kPssFftSize / 2.0) f -= static_cast<double>(kPssFftSize);
      const double ph = -2.0 * std::numbers::pi * f * fractional_delay /
                        static_cast<double>(kPssFftSize);
      grid[k] *= std::complex<double>(std::cos(ph), std::sin(ph));
    }
  }

  // Plan-based inverse transform; the 128-point plan is shared process-wide
  // (every CellSignalSource and searcher hits the same size).
  dsp::PlanCache::shared().plan_f64(kPssFftSize)->inverse(grid);

  // Normalize to unit average power over the symbol.
  double power = 0.0;
  for (const auto& v : grid) power += std::norm(v);
  power /= static_cast<double>(grid.size());
  const double scale = 1.0 / std::sqrt(power);

  std::vector<std::complex<float>> out(kPssFftSize);
  for (std::size_t i = 0; i < kPssFftSize; ++i)
    out[i] = {static_cast<float>(grid[i].real() * scale),
              static_cast<float>(grid[i].imag() * scale)};
  return out;
}

CellSignalSource::CellSignalSource(Cell cell, prop::LinkParams link, util::Rng rng)
    : cell_(std::move(cell)), link_(link), rng_(rng) {
  for (int nid2 = 0; nid2 < 3; ++nid2)
    pss_waveforms_[static_cast<std::size_t>(nid2)] = pss_time_domain(nid2);
}

void CellSignalSource::render(const sdr::CaptureContext& ctx,
                              std::span<dsp::Sample> accum) {
  const double offset_hz = cell_.dl_freq_hz - ctx.center_freq_hz;
  if (std::fabs(offset_hz) > ctx.sample_rate_hz / 2.0) return;

  // Link budget for the whole downlink carrier.
  prop::LinkInput in;
  in.transmitter = cell_.position;
  in.receiver = ctx.rx->position;
  in.freq_hz = cell_.dl_freq_hz;
  in.tx_power_dbm = cell_.eirp_dbm;
  in.emitter_id = cell_.cell_id;
  if (ctx.rx->antenna != nullptr) {
    const double az = geo::bearing_deg(ctx.rx->position, cell_.position);
    in.rx_antenna_gain_dbi = ctx.rx->antenna->gain_dbi(cell_.dl_freq_hz, az);
  }
  const double rx_dbm =
      prop::evaluate_link(in, link_, ctx.rx->obstructions, ctx.rx->fading).rx_power_dbm;
  const double total_mw = util::dbm_to_watts(rx_dbm) * 1e3;
  if (total_mw < 1e-18) return;

  // The PSS occupies 62 of the carrier's 12*N_RB subcarriers at the common
  // per-RE power; the rest of the grid is modelled as wideband noise at the
  // full carrier power (it is on during the PSS symbol too).
  const double re_count = 12.0 * cell_.resource_blocks();
  const double pss_mw = total_mw * 62.0 / re_count;
  const float pss_amp = static_cast<float>(std::sqrt(pss_mw));
  const float noise_amp =
      static_cast<float>(std::sqrt(total_mw / 2.0));  // per component

  for (auto& s : accum)
    s += dsp::Sample(noise_amp * static_cast<float>(rng_.normal()),
                     noise_amp * static_cast<float>(rng_.normal()));

  // PSS bursts every half frame, at this cell's frame phase.
  const int nid2 = static_cast<int>(cell_.pci % 3);
  const auto& pss = pss_waveforms_[static_cast<std::size_t>(nid2)];
  const double t0 = ctx.start_time_s;
  const double t1 = t0 + static_cast<double>(ctx.sample_count) / ctx.sample_rate_hz;
  const double phase0 = frame_offset_s(cell_.cell_id);
  const double first = std::ceil((t0 - phase0 - 1e-12) / kPssPeriodS);

  for (double k = first;; k += 1.0) {
    const double t = phase0 + k * kPssPeriodS;
    if (t >= t1) break;
    if (t < t0 - static_cast<double>(pss.size()) / ctx.sample_rate_hz) continue;
    const auto start = static_cast<std::ptrdiff_t>(
        std::floor((t - t0) * ctx.sample_rate_hz));
    for (std::size_t n = 0; n < pss.size(); ++n) {
      const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(n);
      if (idx < 0) continue;
      if (idx >= static_cast<std::ptrdiff_t>(accum.size())) break;
      // Apply the baseband offset of this carrier within the capture.
      const double ph = 2.0 * std::numbers::pi * offset_hz *
                        static_cast<double>(idx) / ctx.sample_rate_hz;
      const std::complex<float> rot(static_cast<float>(std::cos(ph)),
                                    static_cast<float>(std::sin(ph)));
      accum[static_cast<std::size_t>(idx)] += pss[n] * rot * pss_amp;
    }
  }
}

PssDetection pss_search(std::span<const std::complex<float>> capture) {
  PssDetection best;
  if (capture.size() < 2 * kPssFftSize) return best;

  // Liveness gate (DESIGN.md §14): a Goertzel comb across the PSS band plus
  // a total-power read over the first half frame answers "is there any
  // energy here at all?" before the O(span x refs x 128) correlation
  // search. Decimated or spectral pre-detection is NOT safe for PSS — a
  // weak cell's ZC correlation peak is ~2 samples wide and the symbol is
  // spectrally flat against the in-carrier noise — so the gate only
  // rejects essentially-dead captures (faulted SDRs, disconnected front
  // ends), where the search could only ever return noise.
  {
    static obs::Counter& gate_pass =
        obs::Registry::global().counter("speccal_gate_pss_pass_total");
    static obs::Counter& gate_skip =
        obs::Registry::global().counter("speccal_gate_pss_skip_total");
    const std::size_t probe = std::min<std::size_t>(capture.size(), 9600);
    const double mean_power =
        dsp::simd::sum_power(capture.data(), probe) / static_cast<double>(probe);
    // PSS occupies 62 x 15 kHz subcarriers (+/-465 kHz); teeth inside that.
    dsp::Goertzel comb({-390e3, -195e3, 195e3, 390e3}, kSearchRateHz);
    comb.feed(capture.first(probe));
    double comb_max = 0.0;
    for (std::size_t b = 0; b < comb.bin_count(); ++b)
      comb_max = std::max(comb_max, comb.power(b));
    if (mean_power < 1e-15 && comb_max < 1e-15) {
      gate_skip.add();
      return best;
    }
    gate_pass.add();
  }

  // PSS repeats every half frame = exactly 9600 samples at 1.92 Msps.
  // Non-coherent combining across those occurrences is what separates a
  // self-interference-limited cell (per-symbol metric ~0.09) from the
  // extreme-value tail of pure noise over tens of thousands of offsets.
  const auto period =
      static_cast<std::size_t>(std::lround(kPssPeriodS * kSearchRateHz));
  const std::size_t search_span =
      std::min(period, capture.size() - kPssFftSize + 1);

  // Prefix energy for O(1) window energy.
  std::vector<double> prefix(capture.size() + 1, 0.0);
  for (std::size_t i = 0; i < capture.size(); ++i)
    prefix[i + 1] = prefix[i] + std::norm(capture[i]);

  const std::size_t half = kPssFftSize / 2;
  for (int nid2 = 0; nid2 < 3; ++nid2) {
   for (int frac = 0; frac < 2; ++frac) {
    const auto& ref =
        search_references()[static_cast<std::size_t>(nid2)][static_cast<std::size_t>(frac)];

    for (std::size_t k = 0; k < search_span; ++k) {
      double num = 0.0;
      double window_energy = 0.0;
      std::complex<double> first_c1{}, first_c2{};
      int occurrences = 0;
      for (std::size_t start = k; start + kPssFftSize <= capture.size();
           start += period) {
        // Split correlation tolerates residual CFO. simd::dot_conj computes
        // sum(x * conj(ref)) in float lanes (widened on reduction); the
        // ~1e-7 relative error is far inside the detection margin.
        const std::complex<double> c1 =
            dsp::simd::dot_conj(capture.data() + start, ref.data(), half);
        const std::complex<double> c2 = dsp::simd::dot_conj(
            capture.data() + start + half, ref.data() + half, half);
        num += std::norm(c1) + std::norm(c2);
        window_energy += prefix[start + kPssFftSize] - prefix[start];
        if (occurrences == 0) {
          first_c1 = c1;
          first_c2 = c2;
        }
        ++occurrences;
      }
      if (window_energy <= 1e-20 || occurrences == 0) continue;
      const double metric =
          2.0 * num / (window_energy * static_cast<double>(kPssFftSize));
      if (metric > best.metric) {
        best.metric = metric;
        best.nid2 = nid2;
        best.timing_offset = k;
        const double phase = std::arg(first_c2 * std::conj(first_c1));
        best.cfo_hz = phase / (2.0 * std::numbers::pi) * kSearchRateHz /
                      static_cast<double>(half);
      }
    }
   }
  }
  return best;
}

std::vector<std::pair<Cell, PssDetection>> waveform_cell_search(
    sdr::Device& device, const std::vector<Cell>& candidates,
    const PssSearchConfig& config) {
  std::vector<std::pair<Cell, PssDetection>> out;
  if (config.use_agc) {
    device.set_gain_mode(sdr::GainMode::kAgc);
  } else {
    device.set_gain_mode(sdr::GainMode::kManual);
    device.set_gain_db(config.manual_gain_db);
  }
  const auto samples =
      static_cast<std::size_t>(config.capture_duration_s * kSearchRateHz);

  for (const auto& cell : candidates) {
    PssDetection det;
    if (device.tune(cell.dl_freq_hz, kSearchRateHz)) {
      const dsp::Buffer capture = device.capture(samples);
      det = pss_search(capture);
      det.detected = det.metric >= config.detection_threshold &&
                     det.nid2 == static_cast<int>(cell.pci % 3);
    }
    out.emplace_back(cell, det);
  }
  return out;
}

}  // namespace speccal::cellular
