// Cell towers and the cellmapper-style database.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cellular/bands.hpp"
#include "geo/wgs84.hpp"

namespace speccal::cellular {

enum class RadioAccess { kLte, kNr };

/// One downlink cell (a tower may host several).
struct Cell {
  std::uint64_t cell_id = 0;
  std::string operator_name;
  RadioAccess rat = RadioAccess::kLte;
  int band = 0;
  std::uint32_t earfcn = 0;
  double dl_freq_hz = 0.0;
  double bandwidth_hz = 10e6;
  geo::Geodetic position;     // antenna location (alt = height AGL, m)
  double eirp_dbm = 62.0;     // per-channel EIRP (macro ~58-64 dBm)
  int pci = 0;                // physical cell id

  /// Number of downlink resource blocks for the configured bandwidth.
  [[nodiscard]] int resource_blocks() const noexcept {
    if (bandwidth_hz <= 1.4e6) return 6;
    if (bandwidth_hz <= 3e6) return 15;
    if (bandwidth_hz <= 5e6) return 25;
    if (bandwidth_hz <= 10e6) return 50;
    if (bandwidth_hz <= 15e6) return 75;
    return 100;
  }
};

/// Construct a cell from band + EARFCN (frequency derived), throwing
/// std::invalid_argument when the EARFCN is outside the band.
[[nodiscard]] Cell make_cell(std::uint64_t cell_id, std::string operator_name, int band,
                             std::uint32_t earfcn, geo::Geodetic position,
                             double eirp_dbm, double bandwidth_hz, int pci);

/// Queryable collection of cells.
class CellDatabase {
 public:
  CellDatabase() = default;
  explicit CellDatabase(std::vector<Cell> cells) : cells_(std::move(cells)) {}

  void add(Cell cell) { cells_.push_back(std::move(cell)); }

  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }

  /// Cells within `radius_m` of `center`, nearest first.
  [[nodiscard]] std::vector<Cell> near(const geo::Geodetic& center, double radius_m) const;

  /// Cells in a given LTE band.
  [[nodiscard]] std::vector<Cell> in_band(int band) const;

  [[nodiscard]] std::optional<Cell> by_id(std::uint64_t cell_id) const;

 private:
  std::vector<Cell> cells_;
};

}  // namespace speccal::cellular
