#include "cellular/tower.hpp"

#include <algorithm>
#include <stdexcept>

namespace speccal::cellular {

Cell make_cell(std::uint64_t cell_id, std::string operator_name, int band,
               std::uint32_t earfcn, geo::Geodetic position, double eirp_dbm,
               double bandwidth_hz, int pci) {
  const auto freq = earfcn_to_dl_freq_hz(earfcn);
  const auto band_info = band_for_earfcn(earfcn);
  if (!freq || !band_info || band_info->band != band)
    throw std::invalid_argument("make_cell: EARFCN does not belong to band " +
                                std::to_string(band));
  Cell cell;
  cell.cell_id = cell_id;
  cell.operator_name = std::move(operator_name);
  cell.band = band;
  cell.earfcn = earfcn;
  cell.dl_freq_hz = *freq;
  cell.bandwidth_hz = bandwidth_hz;
  cell.position = position;
  cell.eirp_dbm = eirp_dbm;
  cell.pci = pci;
  return cell;
}

std::vector<Cell> CellDatabase::near(const geo::Geodetic& center, double radius_m) const {
  std::vector<Cell> out;
  for (const auto& cell : cells_)
    if (geo::haversine_m(center, cell.position) <= radius_m) out.push_back(cell);
  std::sort(out.begin(), out.end(), [&](const Cell& a, const Cell& b) {
    return geo::haversine_m(center, a.position) < geo::haversine_m(center, b.position);
  });
  return out;
}

std::vector<Cell> CellDatabase::in_band(int band) const {
  std::vector<Cell> out;
  for (const auto& cell : cells_)
    if (cell.band == band) out.push_back(cell);
  return out;
}

std::optional<Cell> CellDatabase::by_id(std::uint64_t cell_id) const {
  for (const auto& cell : cells_)
    if (cell.cell_id == cell_id) return cell;
  return std::nullopt;
}

}  // namespace speccal::cellular
