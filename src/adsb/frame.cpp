#include "adsb/frame.hpp"

#include <cmath>
#include <span>

#include "adsb/altitude.hpp"
#include "adsb/callsign.hpp"
#include "adsb/crc.hpp"
#include "util/units.hpp"

namespace speccal::adsb {

namespace {

/// MSB-first bit writer over a byte array.
class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> bytes) : bytes_(bytes) {}

  void put(std::uint32_t value, int bits) noexcept {
    for (int b = bits - 1; b >= 0; --b) {
      const bool set = (value >> b) & 1u;
      if (set)
        bytes_[static_cast<std::size_t>(pos_) / 8] |=
            static_cast<std::uint8_t>(0x80u >> (pos_ % 8));
      ++pos_;
    }
  }

 private:
  std::span<std::uint8_t> bytes_;
  int pos_ = 0;
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t get(int bits) noexcept {
    std::uint32_t v = 0;
    for (int b = 0; b < bits; ++b) {
      const std::uint8_t byte = bytes_[static_cast<std::size_t>(pos_) / 8];
      v = (v << 1) | ((byte >> (7 - pos_ % 8)) & 1u);
      ++pos_;
    }
    return v;
  }

  void skip(int bits) noexcept { pos_ += bits; }

 private:
  std::span<const std::uint8_t> bytes_;
  int pos_ = 0;
};

constexpr std::uint8_t kDf17 = 17;
constexpr std::uint8_t kCapability = 5;  // airborne-capable transponder

RawFrame start_frame(std::uint32_t icao) noexcept {
  RawFrame raw{};
  BitWriter w(raw);
  w.put(kDf17, 5);
  w.put(kCapability, 3);
  w.put(icao & 0xFFFFFF, 24);
  return raw;
}

}  // namespace

RawFrame build_position_frame(std::uint32_t icao, double lat_deg, double lon_deg,
                              double altitude_ft, bool odd) noexcept {
  RawFrame raw = start_frame(icao);
  const CprEncoded cpr = cpr_encode(lat_deg, lon_deg, odd);
  BitWriter me(std::span<std::uint8_t>(raw).subspan(4));  // ME starts at byte 4 (bit 32)
  me.put(11, 5);                             // TC 11: airborne position, baro
  me.put(0, 2);                              // surveillance status
  me.put(0, 1);                              // NIC supplement-B
  me.put(encode_altitude_ft(altitude_ft), 12);
  me.put(0, 1);                              // time sync flag
  me.put(odd ? 1 : 0, 1);                    // CPR format
  me.put(cpr.lat, 17);
  me.put(cpr.lon, 17);
  attach_crc(raw);
  return raw;
}

RawFrame build_velocity_frame(std::uint32_t icao, double ground_speed_kt,
                              double track_deg, double vertical_rate_fpm) noexcept {
  RawFrame raw = start_frame(icao);

  // Decompose ground speed into east/north components.
  const double track_rad = util::deg_to_rad(track_deg);
  const double v_east = ground_speed_kt * std::sin(track_rad);
  const double v_north = ground_speed_kt * std::cos(track_rad);
  const bool west = v_east < 0.0;
  const bool south = v_north < 0.0;
  const auto ew = static_cast<std::uint32_t>(
      std::min(1022.0, std::round(std::fabs(v_east))) + 1);
  const auto ns = static_cast<std::uint32_t>(
      std::min(1022.0, std::round(std::fabs(v_north))) + 1);

  const bool descending = vertical_rate_fpm < 0.0;
  const auto vr = static_cast<std::uint32_t>(
      std::min(510.0, std::round(std::fabs(vertical_rate_fpm) / 64.0)) + 1);

  BitWriter me(std::span<std::uint8_t>(raw).subspan(4));
  me.put(19, 5);  // TC 19: airborne velocity
  me.put(1, 3);   // subtype 1: ground speed
  me.put(0, 1);   // intent change
  me.put(0, 1);   // IFR capability
  me.put(0, 3);   // NACv
  me.put(west ? 1 : 0, 1);
  me.put(ew, 10);
  me.put(south ? 1 : 0, 1);
  me.put(ns, 10);
  me.put(1, 1);   // vertical rate source: barometric
  me.put(descending ? 1 : 0, 1);
  me.put(vr, 9);
  me.put(0, 2);   // reserved
  me.put(0, 1);   // GNSS/baro diff sign
  me.put(0, 7);   // GNSS/baro diff (n/a)
  attach_crc(raw);
  return raw;
}

RawFrame build_ident_frame(std::uint32_t icao, std::string_view callsign) noexcept {
  RawFrame raw = start_frame(icao);
  const auto codes = encode_callsign(callsign);
  BitWriter me(std::span<std::uint8_t>(raw).subspan(4));
  me.put(4, 5);  // TC 4: identification, category set A
  me.put(3, 3);  // category A3 (large aircraft)
  for (std::uint8_t code : codes) me.put(code, 6);
  attach_crc(raw);
  return raw;
}

RawFrame build_surface_frame(std::uint32_t icao, double lat_deg, double lon_deg,
                             double ground_speed_kt, double track_deg,
                             bool odd) noexcept {
  RawFrame raw = start_frame(icao);
  const CprEncoded cpr = cpr_surface_encode(lat_deg, lon_deg, odd);
  BitWriter me(std::span<std::uint8_t>(raw).subspan(4));
  me.put(7, 5);                                     // TC 7: surface position
  me.put(encode_movement_kt(ground_speed_kt), 7);   // movement
  me.put(1, 1);                                     // track status: valid
  // Track in 360/128-degree steps.
  me.put(static_cast<std::uint32_t>(
             std::lround(util::wrap_degrees(track_deg) / 360.0 * 128.0)) & 0x7F,
         7);
  me.put(0, 1);                                     // time
  me.put(odd ? 1 : 0, 1);                           // CPR format
  me.put(cpr.lat, 17);
  me.put(cpr.lon, 17);
  attach_crc(raw);
  return raw;
}

std::optional<Frame> parse_frame(const RawFrame& raw) noexcept {
  BitReader r(raw);
  const auto df = static_cast<std::uint8_t>(r.get(5));
  if (df != kDf17) return std::nullopt;

  Frame out;
  out.capability = static_cast<std::uint8_t>(r.get(3));
  out.icao = r.get(24);
  out.type_code = static_cast<std::uint8_t>(r.get(5));

  if (out.type_code >= 1 && out.type_code <= 4) {
    IdentPayload ident;
    ident.category = static_cast<std::uint8_t>(r.get(3));
    std::array<std::uint8_t, 8> codes{};
    for (auto& code : codes) code = static_cast<std::uint8_t>(r.get(6));
    ident.callsign = decode_callsign(codes);
    out.payload = std::move(ident);
  } else if (out.type_code >= 5 && out.type_code <= 8) {
    SurfacePayload surf;
    surf.ground_speed_kt =
        decode_movement_kt(static_cast<std::uint8_t>(r.get(7)));
    const bool track_valid = r.get(1) != 0;
    const std::uint32_t track_raw = r.get(7);
    if (track_valid)
      surf.track_deg = static_cast<double>(track_raw) * 360.0 / 128.0;
    r.skip(1);  // time
    surf.cpr.odd = r.get(1) != 0;
    surf.cpr.lat = r.get(17);
    surf.cpr.lon = r.get(17);
    out.payload = surf;
  } else if (out.type_code >= 9 && out.type_code <= 18) {
    PositionPayload pos;
    r.skip(2);  // surveillance status
    r.skip(1);  // NIC-B
    pos.ac12 = static_cast<std::uint16_t>(r.get(12));
    r.skip(1);  // time
    pos.cpr.odd = r.get(1) != 0;
    pos.cpr.lat = r.get(17);
    pos.cpr.lon = r.get(17);
    out.payload = pos;
  } else if (out.type_code == 19) {
    const std::uint32_t subtype = r.get(3);
    if (subtype == 1 || subtype == 2) {
      VelocityPayload vel;
      r.skip(5);  // intent, IFR, NACv
      const bool west = r.get(1) != 0;
      const std::uint32_t ew = r.get(10);
      const bool south = r.get(1) != 0;
      const std::uint32_t ns = r.get(10);
      r.skip(1);  // vrate source
      const bool descending = r.get(1) != 0;
      const std::uint32_t vr = r.get(9);

      if (ew != 0 && ns != 0) {
        double v_east = static_cast<double>(ew - 1);
        double v_north = static_cast<double>(ns - 1);
        if (subtype == 2) {  // supersonic: 4 kt LSB
          v_east *= 4.0;
          v_north *= 4.0;
        }
        if (west) v_east = -v_east;
        if (south) v_north = -v_north;
        vel.ground_speed_kt = std::hypot(v_east, v_north);
        vel.track_deg = util::wrap_degrees(util::rad_to_deg(std::atan2(v_east, v_north)));
      }
      if (vr != 0) {
        vel.vertical_rate_fpm = static_cast<double>(vr - 1) * 64.0;
        if (descending) vel.vertical_rate_fpm = -vel.vertical_rate_fpm;
      }
      out.payload = vel;
    }
  }
  return out;
}

ShortFrame build_all_call(std::uint32_t icao, std::uint8_t capability) noexcept {
  ShortFrame raw{};
  BitWriter w(raw);
  w.put(11, 5);  // DF11
  w.put(capability, 3);
  w.put(icao & 0xFFFFFF, 24);
  attach_crc(raw);  // interrogator code 0: PI is the plain parity
  return raw;
}

std::optional<AllCall> parse_all_call(const ShortFrame& raw) noexcept {
  BitReader r(raw);
  if (r.get(5) != 11) return std::nullopt;
  AllCall out;
  out.capability = static_cast<std::uint8_t>(r.get(3));
  out.icao = r.get(24);
  return out;
}

std::uint8_t encode_movement_kt(double speed_kt) noexcept {
  // DO-260 Table 2-25 nonlinear ground-speed quantization.
  if (speed_kt < 0.0) return 0;                      // no information
  if (speed_kt < 0.125) return 1;                    // stopped
  if (speed_kt < 1.0)
    return static_cast<std::uint8_t>(2 + std::lround((speed_kt - 0.125) / 0.125));
  if (speed_kt < 2.0)
    return static_cast<std::uint8_t>(9 + std::lround((speed_kt - 1.0) / 0.25));
  if (speed_kt < 15.0)
    return static_cast<std::uint8_t>(13 + std::lround((speed_kt - 2.0) / 0.5));
  if (speed_kt < 70.0)
    return static_cast<std::uint8_t>(39 + std::lround(speed_kt - 15.0));
  if (speed_kt < 100.0)
    return static_cast<std::uint8_t>(94 + std::lround((speed_kt - 70.0) / 2.0));
  if (speed_kt < 175.0)
    return static_cast<std::uint8_t>(109 + std::lround((speed_kt - 100.0) / 5.0));
  return 124;                                        // >= 175 kt
}

std::optional<double> decode_movement_kt(std::uint8_t code) noexcept {
  if (code == 0 || code > 124) return std::nullopt;  // no info / reserved
  if (code == 1) return 0.0;
  if (code <= 8) return 0.125 + (code - 2) * 0.125;
  if (code <= 12) return 1.0 + (code - 9) * 0.25;
  if (code <= 38) return 2.0 + (code - 13) * 0.5;
  if (code <= 93) return 15.0 + (code - 39) * 1.0;
  if (code <= 108) return 70.0 + (code - 94) * 2.0;
  if (code <= 123) return 100.0 + (code - 109) * 5.0;
  return 175.0;
}

}  // namespace speccal::adsb
