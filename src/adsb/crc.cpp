#include "adsb/crc.hpp"

#include <array>

namespace speccal::adsb {

namespace {

/// Mode S generator polynomial (25 bits, MSB implicit): x^24 + ... + 1.
constexpr std::uint32_t kPoly = 0xFFF409;

/// Byte-at-a-time CRC table.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t byte = 0; byte < 256; ++byte) {
    std::uint32_t crc = byte << 16;
    for (int bit = 0; bit < 8; ++bit) {
      crc <<= 1;
      if (crc & 0x1000000) crc ^= kPoly;
    }
    table[byte] = crc & 0xFFFFFF;
  }
  return table;
}

constexpr auto kTable = make_table();

/// Syndrome produced by flipping a single bit of an n-byte frame.
std::uint32_t single_bit_syndrome(std::size_t frame_bytes, int bit_index) {
  std::vector<std::uint8_t> err(frame_bytes, 0);
  err[static_cast<std::size_t>(bit_index) / 8] =
      static_cast<std::uint8_t>(0x80u >> (bit_index % 8));
  return crc24(err);
}

/// Cached single-bit syndrome table for long frames.
const std::vector<std::uint32_t>& long_frame_syndromes() {
  static const std::vector<std::uint32_t> table = [] {
    std::vector<std::uint32_t> t(kLongFrameBytes * 8);
    for (int i = 0; i < static_cast<int>(t.size()); ++i)
      t[static_cast<std::size_t>(i)] = single_bit_syndrome(kLongFrameBytes, i);
    return t;
  }();
  return table;
}

void flip_bit(std::span<std::uint8_t> frame, int bit_index) noexcept {
  frame[static_cast<std::size_t>(bit_index) / 8] ^=
      static_cast<std::uint8_t>(0x80u >> (bit_index % 8));
}

}  // namespace

std::uint32_t crc24(std::span<const std::uint8_t> frame) noexcept {
  std::uint32_t crc = 0;
  for (std::uint8_t byte : frame)
    crc = ((crc << 8) & 0xFFFFFF) ^ kTable[((crc >> 16) ^ byte) & 0xFF];
  return crc;
}

void attach_crc(std::span<std::uint8_t> frame) noexcept {
  const std::size_t n = frame.size();
  // Parity is the CRC remainder over the message body (first n-3 bytes);
  // appending it makes the full-frame remainder zero.
  const std::uint32_t parity = crc24(frame.first(n - 3));
  frame[n - 3] = static_cast<std::uint8_t>(parity >> 16);
  frame[n - 2] = static_cast<std::uint8_t>(parity >> 8);
  frame[n - 1] = static_cast<std::uint8_t>(parity);
}

bool check_crc(std::span<const std::uint8_t> frame) noexcept {
  return crc24(frame) == 0;
}

std::optional<std::vector<int>> repair_frame(std::span<std::uint8_t> frame,
                                             int max_bits) noexcept {
  if (frame.size() != kLongFrameBytes || max_bits <= 0) return std::nullopt;
  const std::uint32_t syndrome = crc24(frame);
  if (syndrome == 0) return std::vector<int>{};

  const auto& table = long_frame_syndromes();
  const int nbits = static_cast<int>(table.size());

  // Single-bit repair.
  for (int i = 0; i < nbits; ++i) {
    if (table[static_cast<std::size_t>(i)] == syndrome) {
      flip_bit(frame, i);
      return std::vector<int>{i};
    }
  }
  if (max_bits < 2) return std::nullopt;

  // Two-bit repair: syndrome must be the XOR of two single-bit syndromes.
  for (int i = 0; i < nbits; ++i) {
    const std::uint32_t remainder = syndrome ^ table[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < nbits; ++j) {
      if (table[static_cast<std::size_t>(j)] == remainder) {
        flip_bit(frame, i);
        flip_bit(frame, j);
        return std::vector<int>{i, j};
      }
    }
  }
  return std::nullopt;
}

}  // namespace speccal::adsb
