// Compact Position Reporting (CPR) — the ADS-B position encoding.
//
// Airborne positions are broadcast as 17-bit latitude/longitude fractions
// in alternating "even" and "odd" zone grids (NZ = 15). A receiver needs
// one message of each parity (within ~10 s) to solve the global position
// unambiguously, or one message plus a reference within 180 NM for local
// decoding. Implemented per RTCA DO-260B / ICAO Doc 9871.
#pragma once

#include <cstdint>
#include <optional>

namespace speccal::adsb {

/// Number of latitude zones per hemisphere pair (airborne).
inline constexpr int kNz = 15;
inline constexpr double kCprScale = 131072.0;  // 2^17

/// Raw 17-bit encoded CPR pair.
struct CprEncoded {
  std::uint32_t lat = 0;  // YZ
  std::uint32_t lon = 0;  // XZ
  bool odd = false;       // CPR format flag (F)
};

/// Encode a position in the given parity grid.
[[nodiscard]] CprEncoded cpr_encode(double lat_deg, double lon_deg, bool odd) noexcept;

/// Number of longitude zones at latitude `lat_deg` (the "NL" function).
[[nodiscard]] int cpr_nl(double lat_deg) noexcept;

struct CprDecoded {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Global decode from an even/odd pair. `most_recent_odd` selects which
/// message's zones fix the final position (use the newer one). Returns
/// nullopt when the pair straddles an NL boundary (positions inconsistent).
[[nodiscard]] std::optional<CprDecoded> cpr_global_decode(const CprEncoded& even,
                                                          const CprEncoded& odd,
                                                          bool most_recent_odd) noexcept;

/// Local decode relative to a reference position within one zone
/// (~180 NM for airborne).
[[nodiscard]] CprDecoded cpr_local_decode(const CprEncoded& msg, double ref_lat_deg,
                                          double ref_lon_deg) noexcept;

// --- Surface CPR (TC 5-8) --------------------------------------------------
// Surface positions use quarter-size zones (dlat = 90/60 or 90/59): four
// times the resolution, at the cost of a 90-degree ambiguity that only a
// receiver-side reference position can resolve — which is why surface
// decoding is always local.

/// Encode a surface position in the given parity grid.
[[nodiscard]] CprEncoded cpr_surface_encode(double lat_deg, double lon_deg,
                                            bool odd) noexcept;

/// Local surface decode relative to a reference within ~45 NM.
[[nodiscard]] CprDecoded cpr_surface_local_decode(const CprEncoded& msg,
                                                  double ref_lat_deg,
                                                  double ref_lon_deg) noexcept;

}  // namespace speccal::adsb
