#include "adsb/ppm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "adsb/crc.hpp"
#include "obs/metrics.hpp"

namespace speccal::adsb {

namespace {
/// Preamble pulse / quiet sample positions within the 16-sample preamble.
constexpr std::array<std::size_t, 4> kPulseIdx = {0, 2, 7, 9};
constexpr std::array<std::size_t, 6> kQuietIdx = {1, 3, 5, 11, 13, 15};

[[nodiscard]] bool bit_of(std::span<const std::uint8_t> frame, std::size_t bit) noexcept {
  return (frame[bit / 8] >> (7 - bit % 8)) & 1u;
}

[[nodiscard]] std::vector<float> envelope_impl(std::span<const std::uint8_t> bytes,
                                               std::size_t bits) {
  std::vector<float> env(kPreambleSamples + 2 * bits, 0.0f);
  for (std::size_t p : kPulseIdx) env[p] = 1.0f;
  for (std::size_t bit = 0; bit < bits; ++bit) {
    const std::size_t base = kPreambleSamples + 2 * bit;
    if (bit_of(bytes, bit))
      env[base] = 1.0f;
    else
      env[base + 1] = 1.0f;
  }
  return env;
}

void modulate_env_signed(const std::vector<float>& env, double amplitude,
                         double carrier_phase, double cfo_hz, std::ptrdiff_t offset,
                         std::span<speccal::dsp::Sample> accum) noexcept {
  const double phase_step = 2.0 * std::numbers::pi * cfo_hz / kPpmSampleRateHz;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const std::ptrdiff_t idx = offset + static_cast<std::ptrdiff_t>(i);
    if (idx < 0) continue;
    if (idx >= static_cast<std::ptrdiff_t>(accum.size())) break;
    if (env[i] == 0.0f) continue;
    const double phase = carrier_phase + phase_step * static_cast<double>(i);
    accum[static_cast<std::size_t>(idx)] +=
        speccal::dsp::Sample(static_cast<float>(amplitude * std::cos(phase)),
                             static_cast<float>(amplitude * std::sin(phase)));
  }
}
}  // namespace

std::vector<float> ppm_envelope(const RawFrame& frame) {
  return envelope_impl(frame, kLongFrameBits);
}

std::vector<float> ppm_envelope_short(const ShortFrame& frame) {
  return envelope_impl(frame, kShortFrameBits);
}

void modulate_into(const RawFrame& frame, double amplitude, double carrier_phase,
                   double cfo_hz, std::size_t offset,
                   std::span<dsp::Sample> accum) noexcept {
  modulate_into_signed(frame, amplitude, carrier_phase, cfo_hz,
                       static_cast<std::ptrdiff_t>(offset), accum);
}

void modulate_into_signed(const RawFrame& frame, double amplitude, double carrier_phase,
                          double cfo_hz, std::ptrdiff_t offset,
                          std::span<dsp::Sample> accum) noexcept {
  modulate_env_signed(ppm_envelope(frame), amplitude, carrier_phase, cfo_hz, offset,
                      accum);
}

void modulate_short_into_signed(const ShortFrame& frame, double amplitude,
                                double carrier_phase, double cfo_hz,
                                std::ptrdiff_t offset,
                                std::span<dsp::Sample> accum) noexcept {
  modulate_env_signed(ppm_envelope_short(frame), amplitude, carrier_phase, cfo_hz,
                      offset, accum);
}

std::vector<Detection> PpmDemodulator::process(std::span<const dsp::Sample> samples) const {
  std::vector<Detection> out;
  if (samples.size() < kFrameSamples) return out;

  // Magnitude-squared stream (power); all decisions are power comparisons.
  std::vector<float> mag(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) mag[i] = std::norm(samples[i]);

  const std::size_t last_start = samples.size() - kFrameSamples;
  for (std::size_t i = 0; i <= last_start; ++i) {
    // --- Preamble gate -----------------------------------------------------
    float pulse_sum = 0.0f;
    float pulse_min = mag[i + kPulseIdx[0]];
    for (std::size_t p : kPulseIdx) {
      const float v = mag[i + p];
      pulse_sum += v;
      pulse_min = std::min(pulse_min, v);
    }
    float quiet_sum = 0.0f;
    float quiet_max = 0.0f;
    for (std::size_t q : kQuietIdx) {
      const float v = mag[i + q];
      quiet_sum += v;
      quiet_max = std::max(quiet_max, v);
    }
    const float pulse_avg = pulse_sum / static_cast<float>(kPulseIdx.size());
    const float quiet_avg = quiet_sum / static_cast<float>(kQuietIdx.size());
    // Every pulse must rise above the loudest quiet sample, and the average
    // pulse power must clear the configured ratio over the quiet floor.
    if (pulse_min <= quiet_max) continue;
    if (pulse_avg < static_cast<float>(config_.preamble_snr_ratio) *
                        std::max(quiet_avg, 1e-12f))
      continue;

    // --- Bit slicing ---------------------------------------------------------
    RawFrame frame{};
    auto slice = [&](std::size_t bits) {
      for (std::size_t bit = 0; bit < bits; ++bit) {
        const std::size_t base = i + kPreambleSamples + 2 * bit;
        if (mag[base] > mag[base + 1])
          frame[bit / 8] |= static_cast<std::uint8_t>(0x80u >> (bit % 8));
      }
    };
    slice(5);  // downlink format decides the frame length
    const std::uint8_t df = static_cast<std::uint8_t>(frame[0] >> 3);

    std::size_t bits;
    if (df == 11) {
      bits = kShortFrameBits;
    } else if (df >= 17 && df <= 19) {
      bits = kLongFrameBits;
    } else {
      continue;  // other Mode S formats are not extended squitters
    }
    slice(bits);

    // Candidates that pass the preamble + DF gates count as decode
    // attempts; the ones the CRC (and its repair) rejects are the fleet's
    // link-quality signal. Relaxed atomic adds, rare relative to samples.
    static obs::Counter& attempted = obs::Registry::global().counter(
        "speccal_adsb_frames_attempted_total");
    static obs::Counter& crc_failed = obs::Registry::global().counter(
        "speccal_adsb_frames_crc_failed_total");
    attempted.add();

    int repaired = 0;
    const std::span<std::uint8_t> frame_bytes(frame.data(), bits / 8);
    if (!check_crc(frame_bytes)) {
      // Syndrome repair is only attempted on long frames (short-frame
      // syndromes are too ambiguous to repair safely; dump1090 agrees).
      if (bits != kLongFrameBits || config_.max_crc_repair_bits <= 0) {
        crc_failed.add();
        continue;
      }
      auto fixed = repair_frame(frame, config_.max_crc_repair_bits);
      if (!fixed) {
        crc_failed.add();
        continue;
      }
      repaired = static_cast<int>(fixed->size());
    }

    Detection det;
    det.frame = frame;
    det.bit_count = bits;
    det.sample_index = i;
    det.repaired_bits = repaired;
    // RSSI: mean power over the pulse halves of all data bits.
    double signal = 0.0;
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::size_t base = i + kPreambleSamples + 2 * bit;
      signal += std::max(mag[base], mag[base + 1]);
    }
    signal /= static_cast<double>(bits);
    det.rssi_dbfs = signal > 1e-20 ? 10.0 * std::log10(signal) : -200.0;
    out.push_back(det);

    i += kPreambleSamples + 2 * bits - 1;  // skip past this frame
  }
  return out;
}

}  // namespace speccal::adsb
