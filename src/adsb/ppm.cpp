#include "adsb/ppm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "adsb/crc.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"

namespace speccal::adsb {

namespace {
/// Preamble pulse / quiet sample positions within the 16-sample preamble.
constexpr std::array<std::size_t, 4> kPulseIdx = {0, 2, 7, 9};
constexpr std::array<std::size_t, 6> kQuietIdx = {1, 3, 5, 11, 13, 15};

[[nodiscard]] bool bit_of(std::span<const std::uint8_t> frame, std::size_t bit) noexcept {
  return (frame[bit / 8] >> (7 - bit % 8)) & 1u;
}

[[nodiscard]] std::vector<float> envelope_impl(std::span<const std::uint8_t> bytes,
                                               std::size_t bits) {
  std::vector<float> env(kPreambleSamples + 2 * bits, 0.0f);
  for (std::size_t p : kPulseIdx) env[p] = 1.0f;
  for (std::size_t bit = 0; bit < bits; ++bit) {
    const std::size_t base = kPreambleSamples + 2 * bit;
    if (bit_of(bytes, bit))
      env[base] = 1.0f;
    else
      env[base + 1] = 1.0f;
  }
  return env;
}

void modulate_env_signed(const std::vector<float>& env, double amplitude,
                         double carrier_phase, double cfo_hz, std::ptrdiff_t offset,
                         std::span<speccal::dsp::Sample> accum) noexcept {
  const double phase_step = 2.0 * std::numbers::pi * cfo_hz / kPpmSampleRateHz;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const std::ptrdiff_t idx = offset + static_cast<std::ptrdiff_t>(i);
    if (idx < 0) continue;
    if (idx >= static_cast<std::ptrdiff_t>(accum.size())) break;
    if (env[i] == 0.0f) continue;
    const double phase = carrier_phase + phase_step * static_cast<double>(i);
    accum[static_cast<std::size_t>(idx)] +=
        speccal::dsp::Sample(static_cast<float>(amplitude * std::cos(phase)),
                             static_cast<float>(amplitude * std::sin(phase)));
  }
}
}  // namespace

std::vector<float> ppm_envelope(const RawFrame& frame) {
  return envelope_impl(frame, kLongFrameBits);
}

std::vector<float> ppm_envelope_short(const ShortFrame& frame) {
  return envelope_impl(frame, kShortFrameBits);
}

void modulate_into(const RawFrame& frame, double amplitude, double carrier_phase,
                   double cfo_hz, std::size_t offset,
                   std::span<dsp::Sample> accum) noexcept {
  modulate_into_signed(frame, amplitude, carrier_phase, cfo_hz,
                       static_cast<std::ptrdiff_t>(offset), accum);
}

void modulate_into_signed(const RawFrame& frame, double amplitude, double carrier_phase,
                          double cfo_hz, std::ptrdiff_t offset,
                          std::span<dsp::Sample> accum) noexcept {
  modulate_env_signed(ppm_envelope(frame), amplitude, carrier_phase, cfo_hz, offset,
                      accum);
}

void modulate_short_into_signed(const ShortFrame& frame, double amplitude,
                                double carrier_phase, double cfo_hz,
                                std::ptrdiff_t offset,
                                std::span<dsp::Sample> accum) noexcept {
  modulate_env_signed(ppm_envelope_short(frame), amplitude, carrier_phase, cfo_hz,
                      offset, accum);
}

std::vector<Detection> PpmDemodulator::process(std::span<const dsp::Sample> samples) const {
  std::vector<Detection> out;
  if (samples.size() < kFrameSamples) return out;

  // Magnitude-squared stream (power); all decisions are power comparisons.
  std::vector<float> mag(samples.size());
  dsp::simd::magnitude_squared(samples.data(), mag.data(), samples.size());

  const std::size_t last_start = samples.size() - kFrameSamples;

  // --- Preamble pre-gate ---------------------------------------------------
  // The vectorized candidate bitmap applies the strict first-stage test
  // (every pulse above the loudest quiet sample) to every start position in
  // one SIMD sweep. Pure min/max compares, so the bitmap is bit-identical to
  // the scalar per-position check — zero false negatives by construction;
  // the expensive ratio/slice/CRC stages run only where it fires.
  std::vector<std::uint8_t> candidate(last_start + 1);
  dsp::simd::preamble_candidates(mag.data(), last_start + 1, candidate.data());

  std::uint64_t gate_pass = 0;
  std::uint64_t gate_skip = 0;
  for (std::size_t i = 0; i <= last_start; ++i) {
    if (!candidate[i]) {
      ++gate_skip;
      continue;
    }
    ++gate_pass;
    float pulse_sum = 0.0f;
    for (std::size_t p : kPulseIdx) pulse_sum += mag[i + p];
    float quiet_sum = 0.0f;
    for (std::size_t q : kQuietIdx) quiet_sum += mag[i + q];
    const float pulse_avg = pulse_sum / static_cast<float>(kPulseIdx.size());
    const float quiet_avg = quiet_sum / static_cast<float>(kQuietIdx.size());
    // The average pulse power must clear the configured ratio over the
    // quiet floor.
    if (pulse_avg < static_cast<float>(config_.preamble_snr_ratio) *
                        std::max(quiet_avg, 1e-12f))
      continue;

    // --- Bit slicing ---------------------------------------------------------
    RawFrame frame{};
    auto slice = [&](std::size_t bits) {
      for (std::size_t bit = 0; bit < bits; ++bit) {
        const std::size_t base = i + kPreambleSamples + 2 * bit;
        if (mag[base] > mag[base + 1])
          frame[bit / 8] |= static_cast<std::uint8_t>(0x80u >> (bit % 8));
      }
    };
    slice(5);  // downlink format decides the frame length
    const std::uint8_t df = static_cast<std::uint8_t>(frame[0] >> 3);

    std::size_t bits;
    if (df == 11) {
      bits = kShortFrameBits;
    } else if (df >= 17 && df <= 19) {
      bits = kLongFrameBits;
    } else {
      continue;  // other Mode S formats are not extended squitters
    }
    slice(bits);

    // Candidates that pass the preamble + DF gates count as decode
    // attempts; the ones the CRC (and its repair) rejects are the fleet's
    // link-quality signal. Relaxed atomic adds, rare relative to samples.
    static obs::Counter& attempted = obs::Registry::global().counter(
        "speccal_adsb_frames_attempted_total");
    static obs::Counter& crc_failed = obs::Registry::global().counter(
        "speccal_adsb_frames_crc_failed_total");
    attempted.add();

    int repaired = 0;
    const std::span<std::uint8_t> frame_bytes(frame.data(), bits / 8);
    if (!check_crc(frame_bytes)) {
      // Syndrome repair is only attempted on long frames (short-frame
      // syndromes are too ambiguous to repair safely; dump1090 agrees).
      if (bits != kLongFrameBits || config_.max_crc_repair_bits <= 0) {
        crc_failed.add();
        continue;
      }
      auto fixed = repair_frame(frame, config_.max_crc_repair_bits);
      if (!fixed) {
        crc_failed.add();
        continue;
      }
      repaired = static_cast<int>(fixed->size());
    }

    Detection det;
    det.frame = frame;
    det.bit_count = bits;
    det.sample_index = i;
    det.repaired_bits = repaired;
    // RSSI: mean power over the pulse halves of all data bits.
    double signal = 0.0;
    for (std::size_t bit = 0; bit < bits; ++bit) {
      const std::size_t base = i + kPreambleSamples + 2 * bit;
      signal += std::max(mag[base], mag[base + 1]);
    }
    signal /= static_cast<double>(bits);
    det.rssi_dbfs = signal > 1e-20 ? 10.0 * std::log10(signal) : -200.0;
    out.push_back(det);

    i += kPreambleSamples + 2 * bits - 1;  // skip past this frame
  }

  // Gate skip rates feed the fleet dashboards (DESIGN.md §14).
  static obs::Counter& gate_pass_total = obs::Registry::global().counter(
      "speccal_gate_adsb_preamble_pass_total");
  static obs::Counter& gate_skip_total = obs::Registry::global().counter(
      "speccal_gate_adsb_preamble_skip_total");
  gate_pass_total.add(gate_pass);
  gate_skip_total.add(gate_skip);
  return out;
}

}  // namespace speccal::adsb
