// 1090ES pulse-position modulation physical layer at 2 Msps.
//
// Wire format (RTCA DO-260): an 8 us preamble with pulses at 0, 1.0, 3.5
// and 4.5 us, then 112 data bits of 1 us each — a '1' puts the 0.5 us pulse
// in the first half of the bit, a '0' in the second half. At the classic
// dump1090 rate of 2 Msps each half-bit is exactly one sample:
//   preamble pulses at sample indices {0, 2, 7, 9} of 16,
//   bit k occupies samples {16 + 2k, 16 + 2k + 1}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "adsb/frame.hpp"
#include "dsp/iq.hpp"

namespace speccal::adsb {

inline constexpr double kAdsbFreqHz = 1090e6;
inline constexpr double kUatFreqHz = 978e6;
inline constexpr double kPpmSampleRateHz = 2e6;
inline constexpr std::size_t kPreambleSamples = 16;
inline constexpr std::size_t kLongFrameBits = 112;
inline constexpr std::size_t kShortFrameBits = 56;
inline constexpr std::size_t kFrameSamples = kPreambleSamples + 2 * kLongFrameBits;  // 240
inline constexpr std::size_t kShortFrameSamples =
    kPreambleSamples + 2 * kShortFrameBits;  // 128

/// 0/1 envelope of a modulated frame (kFrameSamples entries).
[[nodiscard]] std::vector<float> ppm_envelope(const RawFrame& frame);

/// Add the modulated frame into `accum` (length >= offset + kFrameSamples
/// portions are written; anything extending past the buffer is clipped).
/// `amplitude` is the RMS pulse amplitude; `carrier_phase` and
/// `cfo_hz` model oscillator offset of the transmitter.
void modulate_into(const RawFrame& frame, double amplitude, double carrier_phase,
                   double cfo_hz, std::size_t offset,
                   std::span<dsp::Sample> accum) noexcept;

/// Same, but the frame may start before the buffer (negative offset): only
/// the in-buffer portion is written, with phase computed from the true frame
/// start so split renders across adjacent buffers are seamless.
void modulate_into_signed(const RawFrame& frame, double amplitude, double carrier_phase,
                          double cfo_hz, std::ptrdiff_t offset,
                          std::span<dsp::Sample> accum) noexcept;

/// 56-bit (DF11) variants.
[[nodiscard]] std::vector<float> ppm_envelope_short(const ShortFrame& frame);
void modulate_short_into_signed(const ShortFrame& frame, double amplitude,
                                double carrier_phase, double cfo_hz,
                                std::ptrdiff_t offset,
                                std::span<dsp::Sample> accum) noexcept;

/// One detected (CRC-valid) frame in a sample stream.
struct Detection {
  RawFrame frame{};              // short frames occupy the first 7 bytes
  std::size_t bit_count = kLongFrameBits;  // 112 (DF17-19) or 56 (DF11)
  std::size_t sample_index = 0;  // index of the preamble start
  double rssi_dbfs = 0.0;        // mean pulse power
  int repaired_bits = 0;         // 0 = clean CRC

  [[nodiscard]] bool long_frame() const noexcept { return bit_count == kLongFrameBits; }
  [[nodiscard]] ShortFrame short_frame() const noexcept {
    ShortFrame out{};
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = frame[i];
    return out;
  }
};

struct DemodConfig {
  /// Maximum bit errors the CRC repair may fix (0 disables repair).
  int max_crc_repair_bits = 1;
  /// Preamble pulses must exceed this multiple of the gap power.
  double preamble_snr_ratio = 2.0;
};

/// Stateless block demodulator: scans a magnitude-squared stream for
/// preambles, slices bits, validates CRC (with optional repair).
class PpmDemodulator {
 public:
  explicit PpmDemodulator(DemodConfig config = {}) noexcept : config_(config) {}

  /// Demodulate one block. Detections near the tail that would extend past
  /// the block are ignored (the caller overlaps blocks by kFrameSamples).
  [[nodiscard]] std::vector<Detection> process(std::span<const dsp::Sample> samples) const;

  [[nodiscard]] const DemodConfig& config() const noexcept { return config_; }

 private:
  DemodConfig config_;
};

}  // namespace speccal::adsb
