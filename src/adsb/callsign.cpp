#include "adsb/callsign.hpp"

namespace speccal::adsb {

namespace {
constexpr std::string_view kCharset =
    "#ABCDEFGHIJKLMNOPQRSTUVWXYZ##### ###############0123456789######";
}  // namespace

std::array<std::uint8_t, 8> encode_callsign(std::string_view callsign) noexcept {
  std::array<std::uint8_t, 8> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    char c = i < callsign.size() ? callsign[i] : ' ';
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    std::uint8_t code = 32;  // space
    if (c >= 'A' && c <= 'Z')
      code = static_cast<std::uint8_t>(c - 'A' + 1);
    else if (c >= '0' && c <= '9')
      code = static_cast<std::uint8_t>(c - '0' + 48);
    else if (c == ' ')
      code = 32;
    out[i] = code;
  }
  return out;
}

std::string decode_callsign(const std::array<std::uint8_t, 8>& codes) {
  std::string out;
  out.reserve(codes.size());
  for (std::uint8_t code : codes) out.push_back(kCharset[code & 0x3F]);
  // Trim trailing spaces.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace speccal::adsb
