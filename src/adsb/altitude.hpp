// Barometric altitude coding for airborne position messages (AC12 field).
//
// Two encodings share the field, selected by the Q bit:
//   Q = 1 — 25 ft increments offset by -1000 ft (all modern traffic below
//           50,175 ft; what the simulator transmits).
//   Q = 0 — the legacy Gillham / Mode C code: a Gray-coded 500 ft ladder
//           (D2 D4 A1 A2 A4 B1 B2 B4) with a reflected 100 ft sub-code
//           (C1 C2 C4). Decoded for completeness so captures of older
//           transponders parse.
#pragma once

#include <cstdint>
#include <optional>

namespace speccal::adsb {

/// Encode altitude [ft] into the 12-bit AC field (Q = 1, 25 ft LSB).
/// Altitudes are clamped to the encodable range [-1000, 50175] ft.
[[nodiscard]] std::uint16_t encode_altitude_ft(double altitude_ft) noexcept;

/// Decode a 12-bit AC field (either Q encoding). Returns nullopt for
/// AC = 0 (no altitude available) or an invalid Gillham pattern.
[[nodiscard]] std::optional<double> decode_altitude_ft(std::uint16_t ac12) noexcept;

/// Encode altitude [ft] as a Q = 0 Gillham AC12 field (100 ft resolution,
/// -1000..126,700 ft in the 500 ft ladder; used for codec tests and legacy
/// transponder simulation).
[[nodiscard]] std::uint16_t encode_altitude_gillham_ft(double altitude_ft) noexcept;

/// Feet <-> metres helpers (ADS-B is feet-native; geodesy is metres).
[[nodiscard]] constexpr double feet_to_m(double ft) noexcept { return ft * 0.3048; }
[[nodiscard]] constexpr double m_to_feet(double m) noexcept { return m / 0.3048; }

}  // namespace speccal::adsb
