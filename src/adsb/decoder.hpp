// Stateful ADS-B receiver: demodulation + frame parsing + aircraft tracking.
//
// Plays the role dump1090 plays in the paper: it consumes raw I/Q from the
// SDR, maintains a table of aircraft keyed by ICAO address, resolves CPR
// even/odd pairs into latitude/longitude, and reports per-aircraft message
// statistics (count, RSSI, decoded position/velocity/callsign).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "adsb/ppm.hpp"
#include "dsp/iq.hpp"
#include "geo/wgs84.hpp"

namespace speccal::adsb {

/// Tracked state for one aircraft.
struct AircraftState {
  std::uint32_t icao = 0;
  std::string callsign;
  std::uint32_t message_count = 0;
  std::uint32_t clean_message_count = 0;  // frames that passed CRC unrepaired
  std::uint32_t position_count = 0;
  double first_seen_s = 0.0;
  double last_seen_s = 0.0;
  double last_rssi_dbfs = -200.0;
  double max_rssi_dbfs = -200.0;

  std::optional<geo::Geodetic> position;   // resolved via CPR

  /// A track is credible once it produced a clean-CRC frame or multiple
  /// messages; single bit-repaired frames can be miscorrected noise, and
  /// dump1090 applies the same acceptance policy.
  [[nodiscard]] bool credible() const noexcept {
    return clean_message_count >= 1 || message_count >= 2;
  }
  std::optional<double> ground_speed_kt;
  std::optional<double> track_deg;
  std::optional<double> vertical_rate_fpm;

  // CPR pairing state.
  std::optional<CprEncoded> last_even;
  std::optional<CprEncoded> last_odd;
  double last_even_time_s = -1e9;
  double last_odd_time_s = -1e9;
  std::uint16_t last_ac12 = 0;
};

struct DecoderConfig {
  DemodConfig demod;
  /// Even/odd messages further apart than this cannot be paired (DO-260
  /// uses 10 s for airborne decoding).
  double cpr_pair_max_age_s = 10.0;
  /// Forget aircraft unseen for this long.
  double aircraft_timeout_s = 120.0;
};

/// Streaming decoder. Feed I/Q blocks with their capture timestamps; the
/// decoder handles frames that straddle block boundaries via overlap.
class Decoder {
 public:
  explicit Decoder(DecoderConfig config = {});

  /// Process one block captured at `start_time_s` (seconds, stream clock)
  /// with the given sample rate (must be kPpmSampleRateHz).
  /// Returns the frames decoded from this block.
  std::vector<Frame> feed(std::span<const dsp::Sample> samples, double start_time_s);

  /// All aircraft currently tracked (insertion order by ICAO).
  [[nodiscard]] std::vector<AircraftState> aircraft() const;

  /// Look up one aircraft.
  [[nodiscard]] const AircraftState* find(std::uint32_t icao) const noexcept;

  /// Aggregate counters.
  [[nodiscard]] std::uint64_t total_frames() const noexcept { return total_frames_; }
  [[nodiscard]] std::uint64_t crc_repaired_frames() const noexcept { return repaired_frames_; }

  /// Drop aircraft unseen for longer than the configured timeout.
  void prune(double now_s);

  void reset();

 private:
  void ingest(const Frame& frame, const Detection& det, double time_s);

  DecoderConfig config_;
  PpmDemodulator demod_;
  std::map<std::uint32_t, AircraftState> table_;
  dsp::Buffer overlap_;        // tail of the previous block
  double overlap_time_s_ = 0.0;
  bool has_overlap_ = false;
  std::uint64_t total_frames_ = 0;
  std::uint64_t repaired_frames_ = 0;
};

}  // namespace speccal::adsb
