#include "adsb/altitude.hpp"

#include <algorithm>
#include <cmath>

namespace speccal::adsb {

namespace {

// AC12 bit positions, LSB = bit 0:
//   MSB -> LSB: C1 A1 C2 A2 C4 A4 B1 Q B2 D2 B4 D4
enum : unsigned {
  kD4 = 0, kB4 = 1, kD2 = 2, kB2 = 3, kQ = 4, kB1 = 5,
  kA4 = 6, kC4 = 7, kA2 = 8, kC2 = 9, kA1 = 10, kC1 = 11,
};

[[nodiscard]] unsigned bit(std::uint16_t v, unsigned index) noexcept {
  return (v >> index) & 1u;
}

[[nodiscard]] std::uint32_t gray_to_binary(std::uint32_t gray) noexcept {
  std::uint32_t bin = gray;
  for (std::uint32_t shift = 1; shift < 16; shift <<= 1) bin ^= bin >> shift;
  return bin;
}

[[nodiscard]] std::uint32_t binary_to_gray(std::uint32_t bin) noexcept {
  return bin ^ (bin >> 1);
}

}  // namespace

std::uint16_t encode_altitude_ft(double altitude_ft) noexcept {
  const double clamped = std::clamp(altitude_ft, -1000.0, 50175.0);
  const auto n = static_cast<std::uint32_t>(std::lround((clamped + 1000.0) / 25.0));
  // AC12 layout: N[10:4] Q N[3:0] with Q at bit 4.
  const std::uint32_t high = (n >> 4) & 0x7F;
  const std::uint32_t low = n & 0x0F;
  return static_cast<std::uint16_t>((high << 5) | (1u << 4) | low);
}

std::optional<double> decode_altitude_ft(std::uint16_t ac12) noexcept {
  if (ac12 == 0) return std::nullopt;  // altitude unavailable

  if (bit(ac12, kQ)) {
    const std::uint32_t n = ((ac12 >> 5) << 4) | (ac12 & 0x0F);
    return static_cast<double>(n) * 25.0 - 1000.0;
  }

  // Gillham (Mode C) decode. 500 ft Gray ladder: D2 D4 A1 A2 A4 B1 B2 B4.
  const std::uint32_t gray500 =
      (bit(ac12, kD2) << 7) | (bit(ac12, kD4) << 6) | (bit(ac12, kA1) << 5) |
      (bit(ac12, kA2) << 4) | (bit(ac12, kA4) << 3) | (bit(ac12, kB1) << 2) |
      (bit(ac12, kB2) << 1) | bit(ac12, kB4);
  const std::uint32_t gray100 =
      (bit(ac12, kC1) << 2) | (bit(ac12, kC2) << 1) | bit(ac12, kC4);

  const std::uint32_t n500 = gray_to_binary(gray500);
  std::uint32_t n100 = gray_to_binary(gray100);
  if (n100 == 0 || n100 == 6) return std::nullopt;  // invalid sub-code
  if (n100 == 7) n100 = 5;
  if (n500 % 2 == 1) n100 = 6 - n100;  // reflected within odd 500 ft rungs
  return static_cast<double>(n500) * 500.0 + static_cast<double>(n100) * 100.0 -
         1300.0;
}

std::uint16_t encode_altitude_gillham_ft(double altitude_ft) noexcept {
  // Quantize to the nearest 100 ft inside the code's range.
  const double clamped = std::clamp(altitude_ft, -1200.0, 126'700.0);
  const auto v = static_cast<std::uint32_t>(std::lround((clamped + 1200.0) / 100.0));
  const std::uint32_t n500 = v / 5;
  std::uint32_t n100 = v % 5 + 1;  // 1..5
  if (n500 % 2 == 1) n100 = 6 - n100;

  const std::uint32_t gray500 = binary_to_gray(n500);
  const std::uint32_t gray100 = binary_to_gray(n100 == 5 ? 7 : n100);

  std::uint16_t ac12 = 0;
  auto set = [&](unsigned index, std::uint32_t value) {
    if (value) ac12 |= static_cast<std::uint16_t>(1u << index);
  };
  set(kD2, (gray500 >> 7) & 1u);
  set(kD4, (gray500 >> 6) & 1u);
  set(kA1, (gray500 >> 5) & 1u);
  set(kA2, (gray500 >> 4) & 1u);
  set(kA4, (gray500 >> 3) & 1u);
  set(kB1, (gray500 >> 2) & 1u);
  set(kB2, (gray500 >> 1) & 1u);
  set(kB4, gray500 & 1u);
  set(kC1, (gray100 >> 2) & 1u);
  set(kC2, (gray100 >> 1) & 1u);
  set(kC4, gray100 & 1u);
  // Q (bit 4) deliberately left 0.
  return ac12;
}

}  // namespace speccal::adsb
