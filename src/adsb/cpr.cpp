#include "adsb/cpr.hpp"

#include <cmath>
#include <numbers>

namespace speccal::adsb {

namespace {

/// floor-based positive modulo used throughout CPR.
[[nodiscard]] double mod_pos(double a, double b) noexcept {
  return a - b * std::floor(a / b);
}

[[nodiscard]] double dlat(bool odd) noexcept {
  return 360.0 / (4.0 * kNz - (odd ? 1.0 : 0.0));
}

[[nodiscard]] double dlat_surface(bool odd) noexcept {
  return 90.0 / (4.0 * kNz - (odd ? 1.0 : 0.0));
}

/// Shared encode kernel parameterized by the latitude zone size and the
/// longitude circle span (360 airborne, 90 surface).
[[nodiscard]] CprEncoded encode_impl(double lat_deg, double lon_deg, bool odd,
                                     double d_lat, double lon_span) noexcept {
  const auto yz = static_cast<std::int64_t>(
      std::floor(kCprScale * mod_pos(lat_deg, d_lat) / d_lat + 0.5));
  const double rlat =
      d_lat * (static_cast<double>(yz) / kCprScale + std::floor(lat_deg / d_lat));
  const int nl = cpr_nl(rlat);
  const double d_lon = lon_span / std::max(nl - (odd ? 1 : 0), 1);
  const auto xz = static_cast<std::int64_t>(
      std::floor(kCprScale * mod_pos(lon_deg, d_lon) / d_lon + 0.5));
  CprEncoded out;
  out.lat = static_cast<std::uint32_t>(mod_pos(static_cast<double>(yz), kCprScale));
  out.lon = static_cast<std::uint32_t>(mod_pos(static_cast<double>(xz), kCprScale));
  out.odd = odd;
  return out;
}

/// Shared local-decode kernel.
[[nodiscard]] CprDecoded local_decode_impl(const CprEncoded& msg, double ref_lat_deg,
                                           double ref_lon_deg, double d_lat,
                                           double lon_span) noexcept {
  const double lat_frac = static_cast<double>(msg.lat) / kCprScale;
  const double j = std::floor(ref_lat_deg / d_lat) +
                   std::floor(0.5 + mod_pos(ref_lat_deg, d_lat) / d_lat - lat_frac);
  const double rlat = d_lat * (j + lat_frac);
  const int nl = cpr_nl(rlat);
  const double d_lon = lon_span / std::max(nl - (msg.odd ? 1 : 0), 1);
  const double lon_frac = static_cast<double>(msg.lon) / kCprScale;
  const double m = std::floor(ref_lon_deg / d_lon) +
                   std::floor(0.5 + mod_pos(ref_lon_deg, d_lon) / d_lon - lon_frac);
  return CprDecoded{rlat, d_lon * (m + lon_frac)};
}

}  // namespace

int cpr_nl(double lat_deg) noexcept {
  // ICAO Doc 9871 closed form. Degenerate latitudes use the limits.
  const double abs_lat = std::fabs(lat_deg);
  if (abs_lat >= 87.0) return abs_lat > 87.0 ? 1 : 2;
  if (abs_lat < 1e-9) return 59;
  const double pi = std::numbers::pi;
  const double a = 1.0 - std::cos(pi / (2.0 * kNz));
  const double c = std::cos(pi / 180.0 * abs_lat);
  const double arg = 1.0 - a / (c * c);
  if (arg <= -1.0) return 1;
  return static_cast<int>(std::floor(2.0 * pi / std::acos(arg)));
}

CprEncoded cpr_encode(double lat_deg, double lon_deg, bool odd) noexcept {
  return encode_impl(lat_deg, lon_deg, odd, dlat(odd), 360.0);
}

std::optional<CprDecoded> cpr_global_decode(const CprEncoded& even, const CprEncoded& odd,
                                            bool most_recent_odd) noexcept {
  const double lat_even = static_cast<double>(even.lat) / kCprScale;
  const double lat_odd = static_cast<double>(odd.lat) / kCprScale;

  // Latitude zone index.
  const double j = std::floor(59.0 * lat_even - 60.0 * lat_odd + 0.5);

  double rlat_even = dlat(false) * (mod_pos(j, 60.0) + lat_even);
  double rlat_odd = dlat(true) * (mod_pos(j, 59.0) + lat_odd);
  if (rlat_even >= 270.0) rlat_even -= 360.0;
  if (rlat_odd >= 270.0) rlat_odd -= 360.0;

  // Both must land in the same longitude-zone band or the pair is stale.
  if (cpr_nl(rlat_even) != cpr_nl(rlat_odd)) return std::nullopt;
  if (rlat_even < -90.0 || rlat_even > 90.0) return std::nullopt;

  const double rlat = most_recent_odd ? rlat_odd : rlat_even;
  const int nl = cpr_nl(rlat);

  const double lon_even = static_cast<double>(even.lon) / kCprScale;
  const double lon_odd = static_cast<double>(odd.lon) / kCprScale;

  const double m =
      std::floor(lon_even * (nl - 1) - lon_odd * nl + 0.5);  // longitude index
  const int ni = std::max(nl - (most_recent_odd ? 1 : 0), 1);
  const double d_lon = 360.0 / ni;
  const double lon_recent = most_recent_odd ? lon_odd : lon_even;

  double lon = d_lon * (mod_pos(m, static_cast<double>(ni)) + lon_recent);
  if (lon >= 180.0) lon -= 360.0;

  return CprDecoded{rlat, lon};
}

CprDecoded cpr_local_decode(const CprEncoded& msg, double ref_lat_deg,
                            double ref_lon_deg) noexcept {
  return local_decode_impl(msg, ref_lat_deg, ref_lon_deg, dlat(msg.odd), 360.0);
}

CprEncoded cpr_surface_encode(double lat_deg, double lon_deg, bool odd) noexcept {
  return encode_impl(lat_deg, lon_deg, odd, dlat_surface(odd), 90.0);
}

CprDecoded cpr_surface_local_decode(const CprEncoded& msg, double ref_lat_deg,
                                    double ref_lon_deg) noexcept {
  return local_decode_impl(msg, ref_lat_deg, ref_lon_deg, dlat_surface(msg.odd),
                           90.0);
}

}  // namespace speccal::adsb
