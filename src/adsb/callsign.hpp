// Aircraft identification (callsign) 6-bit character coding, ICAO Annex 10.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace speccal::adsb {

/// Encode up to 8 characters (A-Z, 0-9, space) into eight 6-bit codes.
/// Unsupported characters map to space; short callsigns are space-padded.
[[nodiscard]] std::array<std::uint8_t, 8> encode_callsign(std::string_view callsign) noexcept;

/// Decode eight 6-bit codes to a trimmed string ('#' for invalid codes).
[[nodiscard]] std::string decode_callsign(const std::array<std::uint8_t, 8>& codes);

}  // namespace speccal::adsb
