// Mode S CRC-24 parity (ICAO Annex 10 / RTCA DO-260).
//
// Every Mode S frame carries a 24-bit parity field computed with the
// generator polynomial 0x1FFF409. For DF17 extended squitter the parity is
// transmitted as-is (PI field, no address overlay), so a receiver validates
// a frame by recomputing the CRC over the first N-24 bits and comparing.
// dump1090 additionally *repairs* frames with 1-2 bit errors by matching
// the error syndrome; we implement the same (ablatable) mechanism.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace speccal::adsb {

/// Frame lengths in bytes.
inline constexpr std::size_t kShortFrameBytes = 7;   // 56-bit squitter
inline constexpr std::size_t kLongFrameBytes = 14;   // 112-bit extended squitter

/// CRC-24 remainder of `bits` bytes interpreted MSB-first. For checking a
/// received frame, pass the entire frame: a valid frame has remainder 0.
[[nodiscard]] std::uint32_t crc24(std::span<const std::uint8_t> frame) noexcept;

/// Compute the parity over the message body and write it into the last
/// three bytes of `frame` (frame must be 7 or 14 bytes).
void attach_crc(std::span<std::uint8_t> frame) noexcept;

/// True if the frame's parity is consistent (syndrome zero).
[[nodiscard]] bool check_crc(std::span<const std::uint8_t> frame) noexcept;

/// Attempt to repair up to `max_bits` flipped bits (1 or 2) in a long frame
/// by syndrome matching. Returns the indices of repaired bits, or
/// std::nullopt if no correction with <= max_bits flips produces a zero
/// syndrome. Mutates `frame` on success.
[[nodiscard]] std::optional<std::vector<int>> repair_frame(
    std::span<std::uint8_t> frame, int max_bits) noexcept;

}  // namespace speccal::adsb
