// Interchange formats for decoded Mode S traffic.
//
// Real deployments pipe dump1090's output into aggregators; emitting the
// same formats makes this decoder a drop-in source:
//   * AVR    — "*8D4840D6...;" raw frames in hex (readable by dump1090,
//              readsb, Wireshark).
//   * SBS-1  — "MSG,3,..." BaseStation CSV consumed by practically every
//              plane-tracking tool.
// AVR parsing is also provided so recorded dumps can be replayed through
// the tracker.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "adsb/decoder.hpp"
#include "adsb/frame.hpp"

namespace speccal::adsb {

/// Raw frame in AVR format: '*' + uppercase hex + ';'.
[[nodiscard]] std::string to_avr(const RawFrame& frame);
[[nodiscard]] std::string to_avr(const ShortFrame& frame);

/// Parse an AVR line (7- or 14-byte frames). Whitespace is trimmed;
/// returns nullopt for malformed input or unexpected lengths.
[[nodiscard]] std::optional<std::variant<ShortFrame, RawFrame>> from_avr(
    std::string_view line);

/// One decoded frame as an SBS-1 / BaseStation CSV line. The transmission
/// type follows the usual mapping: ident -> MSG,1; airborne position ->
/// MSG,3; velocity -> MSG,4; surface position -> MSG,2; anything else ->
/// MSG,8. `track` supplies resolved position/callsign state when available.
[[nodiscard]] std::string to_sbs(const Frame& frame, const AircraftState* track,
                                 double timestamp_s);

}  // namespace speccal::adsb
