// DF17 (1090ES extended squitter) frame construction and parsing.
//
// Supported message classes (covering what the paper's methodology needs —
// identity, position, velocity — and what dump1090 reports):
//   TC 1-4   aircraft identification (callsign + emitter category)
//   TC 9-18  airborne position (barometric altitude + CPR)
//   TC 19/1  airborne velocity (ground speed decomposition)
// Frames are 14 bytes; the last 3 carry the Mode S CRC (PI field).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "adsb/cpr.hpp"

namespace speccal::adsb {

using RawFrame = std::array<std::uint8_t, 14>;
using ShortFrame = std::array<std::uint8_t, 7>;  // 56-bit Mode S frames

/// Parsed airborne-position payload (TC 9-18).
struct PositionPayload {
  std::uint16_t ac12 = 0;  // altitude field (decode with decode_altitude_ft)
  CprEncoded cpr;
};

/// Parsed airborne-velocity payload (TC 19 subtype 1).
struct VelocityPayload {
  double ground_speed_kt = 0.0;
  double track_deg = 0.0;          // direction of motion, 0 = north
  double vertical_rate_fpm = 0.0;  // positive = climbing
};

/// Parsed identification payload (TC 1-4).
struct IdentPayload {
  std::string callsign;
  std::uint8_t category = 0;
};

/// Parsed surface-position payload (TC 5-8). Positions use surface CPR and
/// must be decoded against a receiver reference (cpr_surface_local_decode).
struct SurfacePayload {
  std::optional<double> ground_speed_kt;  // from the movement field
  std::optional<double> track_deg;        // nullopt when the status bit is 0
  CprEncoded cpr;                         // surface grid
};

/// One decoded DF17 frame.
struct Frame {
  std::uint32_t icao = 0;
  std::uint8_t capability = 0;
  std::uint8_t type_code = 0;
  std::variant<std::monostate, PositionPayload, VelocityPayload, IdentPayload,
               SurfacePayload>
      payload;

  [[nodiscard]] bool has_position() const noexcept {
    return std::holds_alternative<PositionPayload>(payload);
  }
  [[nodiscard]] bool has_velocity() const noexcept {
    return std::holds_alternative<VelocityPayload>(payload);
  }
  [[nodiscard]] bool has_ident() const noexcept {
    return std::holds_alternative<IdentPayload>(payload);
  }
  [[nodiscard]] bool has_surface() const noexcept {
    return std::holds_alternative<SurfacePayload>(payload);
  }
};

/// Build an airborne position frame (TC 11: baro altitude, NUCp per TC).
[[nodiscard]] RawFrame build_position_frame(std::uint32_t icao, double lat_deg,
                                            double lon_deg, double altitude_ft,
                                            bool odd) noexcept;

/// Build an airborne velocity frame (TC 19 subtype 1).
[[nodiscard]] RawFrame build_velocity_frame(std::uint32_t icao, double ground_speed_kt,
                                            double track_deg,
                                            double vertical_rate_fpm) noexcept;

/// Build an identification frame (TC 4, category A3 "large").
[[nodiscard]] RawFrame build_ident_frame(std::uint32_t icao,
                                         std::string_view callsign) noexcept;

/// Build a surface position frame (TC 7).
[[nodiscard]] RawFrame build_surface_frame(std::uint32_t icao, double lat_deg,
                                           double lon_deg, double ground_speed_kt,
                                           double track_deg, bool odd) noexcept;

/// Parse a CRC-valid DF17 frame. Returns nullopt for non-DF17 frames or
/// unsupported type codes (payload left monostate is used for supported DF17
/// frames whose TC we do not interpret).
[[nodiscard]] std::optional<Frame> parse_frame(const RawFrame& raw) noexcept;

// --- DF11 all-call / acquisition squitter (56-bit) ---------------------------

/// Build an acquisition squitter (DF11, interrogator code 0 so the PI field
/// is the plain CRC).
[[nodiscard]] ShortFrame build_all_call(std::uint32_t icao,
                                        std::uint8_t capability = 5) noexcept;

struct AllCall {
  std::uint32_t icao = 0;
  std::uint8_t capability = 0;
};

/// Parse a CRC-valid DF11 frame; nullopt for other downlink formats.
[[nodiscard]] std::optional<AllCall> parse_all_call(const ShortFrame& raw) noexcept;

// --- Surface movement field (DO-260 nonlinear speed code) --------------------

/// Encode ground speed [kt] into the 7-bit movement field (1..124;
/// 0 = no information).
[[nodiscard]] std::uint8_t encode_movement_kt(double speed_kt) noexcept;

/// Decode the movement field; nullopt for "no information" / reserved.
[[nodiscard]] std::optional<double> decode_movement_kt(std::uint8_t code) noexcept;

}  // namespace speccal::adsb
