#include "adsb/io.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "adsb/altitude.hpp"

namespace speccal::adsb {

namespace {

constexpr char kHex[] = "0123456789ABCDEF";

template <std::size_t N>
[[nodiscard]] std::string bytes_to_avr(const std::array<std::uint8_t, N>& bytes) {
  std::string out;
  out.reserve(2 + 2 * N);
  out.push_back('*');
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0F]);
  }
  out.push_back(';');
  return out;
}

[[nodiscard]] int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string to_avr(const RawFrame& frame) { return bytes_to_avr(frame); }
std::string to_avr(const ShortFrame& frame) { return bytes_to_avr(frame); }

std::optional<std::variant<ShortFrame, RawFrame>> from_avr(std::string_view line) {
  // Trim whitespace / CRLF.
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
    line.remove_prefix(1);
  while (!line.empty() &&
         (line.back() == ' ' || line.back() == '\r' || line.back() == '\n'))
    line.remove_suffix(1);

  if (line.size() < 4 || line.front() != '*' || line.back() != ';')
    return std::nullopt;
  const std::string_view hex = line.substr(1, line.size() - 2);
  if (hex.size() != 14 && hex.size() != 28) return std::nullopt;

  std::array<std::uint8_t, 14> bytes{};
  for (std::size_t i = 0; i < hex.size() / 2; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  if (hex.size() == 14) {
    ShortFrame out{};
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = bytes[i];
    return out;
  }
  RawFrame out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = bytes[i];
  return out;
}

std::string to_sbs(const Frame& frame, const AircraftState* track,
                   double timestamp_s) {
  int msg_type = 8;
  if (frame.has_ident()) msg_type = 1;
  else if (frame.has_surface()) msg_type = 2;
  else if (frame.has_position()) msg_type = 3;
  else if (frame.has_velocity()) msg_type = 4;

  char icao_hex[8];
  std::snprintf(icao_hex, sizeof icao_hex, "%06X", frame.icao);

  // Timestamp columns: SBS uses date,time twice (generated/logged); the
  // simulation clock renders as seconds with millisecond precision.
  char clock[32];
  std::snprintf(clock, sizeof clock, "%.3f", timestamp_s);

  std::ostringstream os;
  os << "MSG," << msg_type << ",1,1," << icao_hex << ",1," << clock << ","
     << clock << ",";

  // Callsign.
  if (frame.has_ident())
    os << std::get<IdentPayload>(frame.payload).callsign;
  else if (track != nullptr)
    os << track->callsign;
  os << ",";

  // Altitude.
  if (const auto* pos = std::get_if<PositionPayload>(&frame.payload)) {
    if (const auto alt = decode_altitude_ft(pos->ac12))
      os << static_cast<long>(std::lround(*alt));
  }
  os << ",";

  // Ground speed / track.
  if (const auto* vel = std::get_if<VelocityPayload>(&frame.payload)) {
    os << std::lround(vel->ground_speed_kt) << "," << std::lround(vel->track_deg);
  } else {
    os << ",";
  }
  os << ",";

  // Latitude / longitude (resolved track state).
  if (track != nullptr && track->position) {
    char lat[24], lon[24];
    std::snprintf(lat, sizeof lat, "%.5f", track->position->lat_deg);
    std::snprintf(lon, sizeof lon, "%.5f", track->position->lon_deg);
    os << lat << "," << lon;
  } else {
    os << ",";
  }
  os << ",";

  // Vertical rate.
  if (const auto* vel = std::get_if<VelocityPayload>(&frame.payload))
    os << std::lround(vel->vertical_rate_fpm);
  os << ",,,,,";
  return os.str();
}

}  // namespace speccal::adsb
