#include "adsb/decoder.hpp"

#include <algorithm>
#include <cmath>

#include "adsb/altitude.hpp"
#include "obs/metrics.hpp"

namespace speccal::adsb {

Decoder::Decoder(DecoderConfig config)
    : config_(config), demod_(config.demod) {}

std::vector<Frame> Decoder::feed(std::span<const dsp::Sample> samples,
                                 double start_time_s) {
  static obs::Counter& decoded_metric =
      obs::Registry::global().counter("speccal_adsb_frames_decoded_total");
  static obs::Counter& repaired_metric =
      obs::Registry::global().counter("speccal_adsb_frames_crc_repaired_total");
  // Prepend the overlap tail so frames straddling block boundaries decode.
  dsp::Buffer work;
  double work_time = start_time_s;
  std::span<const dsp::Sample> view = samples;
  if (has_overlap_ && !overlap_.empty()) {
    work.reserve(overlap_.size() + samples.size());
    work.insert(work.end(), overlap_.begin(), overlap_.end());
    work.insert(work.end(), samples.begin(), samples.end());
    work_time = overlap_time_s_;
    view = work;
  }

  std::vector<Frame> decoded;
  for (const Detection& det : demod_.process(view)) {
    const double t = work_time + static_cast<double>(det.sample_index) / kPpmSampleRateHz;
    if (!det.long_frame()) {
      // DF11 acquisition squitter: identity only, but it keeps the track
      // alive and counts as a clean reception.
      const auto all_call = parse_all_call(det.short_frame());
      if (!all_call) continue;
      ++total_frames_;
      decoded_metric.add();
      Frame frame;
      frame.icao = all_call->icao;
      frame.capability = all_call->capability;
      ingest(frame, det, t);
      decoded.push_back(std::move(frame));
      continue;
    }
    auto frame = parse_frame(det.frame);
    if (!frame) continue;
    ++total_frames_;
    decoded_metric.add();
    if (det.repaired_bits > 0) {
      ++repaired_frames_;
      repaired_metric.add();
    }
    ingest(*frame, det, t);
    decoded.push_back(std::move(*frame));
  }

  // Keep the final (frame length - 1) samples for the next block.
  const std::size_t keep = std::min(view.size(), kFrameSamples - 1);
  overlap_.assign(view.end() - static_cast<std::ptrdiff_t>(keep), view.end());
  overlap_time_s_ =
      work_time + static_cast<double>(view.size() - keep) / kPpmSampleRateHz;
  has_overlap_ = true;
  return decoded;
}

void Decoder::ingest(const Frame& frame, const Detection& det, double time_s) {
  AircraftState& ac = table_[frame.icao];
  if (ac.message_count == 0) {
    ac.icao = frame.icao;
    ac.first_seen_s = time_s;
  }
  ++ac.message_count;
  if (det.repaired_bits == 0) ++ac.clean_message_count;
  ac.last_seen_s = time_s;
  ac.last_rssi_dbfs = det.rssi_dbfs;
  ac.max_rssi_dbfs = std::max(ac.max_rssi_dbfs, det.rssi_dbfs);

  if (const auto* pos = std::get_if<PositionPayload>(&frame.payload)) {
    ac.last_ac12 = pos->ac12;
    if (pos->cpr.odd) {
      ac.last_odd = pos->cpr;
      ac.last_odd_time_s = time_s;
    } else {
      ac.last_even = pos->cpr;
      ac.last_even_time_s = time_s;
    }
    // Global decode when we hold a fresh even/odd pair.
    if (ac.last_even && ac.last_odd &&
        std::fabs(ac.last_even_time_s - ac.last_odd_time_s) <=
            config_.cpr_pair_max_age_s) {
      const bool recent_odd = ac.last_odd_time_s >= ac.last_even_time_s;
      if (auto fix = cpr_global_decode(*ac.last_even, *ac.last_odd, recent_odd)) {
        geo::Geodetic p{fix->lat_deg, fix->lon_deg, 0.0};
        if (auto alt_ft = decode_altitude_ft(pos->ac12))
          p.alt_m = feet_to_m(*alt_ft);
        ac.position = p;
        ++ac.position_count;
      }
    } else if (ac.position) {
      // Local decode keeps the track alive between pairs.
      const CprDecoded fix =
          cpr_local_decode(pos->cpr, ac.position->lat_deg, ac.position->lon_deg);
      ac.position->lat_deg = fix.lat_deg;
      ac.position->lon_deg = fix.lon_deg;
      if (auto alt_ft = decode_altitude_ft(pos->ac12))
        ac.position->alt_m = feet_to_m(*alt_ft);
      ++ac.position_count;
    }
  } else if (const auto* vel = std::get_if<VelocityPayload>(&frame.payload)) {
    ac.ground_speed_kt = vel->ground_speed_kt;
    ac.track_deg = vel->track_deg;
    ac.vertical_rate_fpm = vel->vertical_rate_fpm;
  } else if (const auto* ident = std::get_if<IdentPayload>(&frame.payload)) {
    ac.callsign = ident->callsign;
  }
}

std::vector<AircraftState> Decoder::aircraft() const {
  std::vector<AircraftState> out;
  out.reserve(table_.size());
  for (const auto& [icao, state] : table_) out.push_back(state);
  return out;
}

const AircraftState* Decoder::find(std::uint32_t icao) const noexcept {
  const auto it = table_.find(icao);
  return it == table_.end() ? nullptr : &it->second;
}

void Decoder::prune(double now_s) {
  std::erase_if(table_, [&](const auto& entry) {
    return now_s - entry.second.last_seen_s > config_.aircraft_timeout_s;
  });
}

void Decoder::reset() {
  table_.clear();
  overlap_.clear();
  has_overlap_ = false;
  overlap_time_s_ = 0.0;
  total_frames_ = 0;
  repaired_frames_ = 0;
}

}  // namespace speccal::adsb
