#include "net/queue.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace speccal::net {

SegmentQueue::SegmentQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SegmentQueue.capacity must be >= 1");
  }
  ring_.resize(capacity_);
}

bool SegmentQueue::push_locked(Segment&& segment) {
  ring_[(head_ + count_) % capacity_] = std::move(segment);
  ++count_;
  ++stats_.pushed;
  if (count_ > stats_.peak_depth) stats_.peak_depth = count_;
  return true;
}

void SegmentQueue::pop_locked(Segment& out) {
  out = std::move(ring_[head_]);
  head_ = (head_ + 1) % capacity_;
  --count_;
  ++stats_.popped;
}

bool SegmentQueue::push(Segment&& segment) {
  {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || count_ < capacity_; });
    if (closed_) {
      ++stats_.rejected;
      return false;
    }
    push_locked(std::move(segment));
  }
  obs::Registry::global().counter("speccal_net_queue_pushed_total").add();
  not_empty_.notify_one();
  return true;
}

bool SegmentQueue::try_push(Segment&& segment) {
  {
    std::unique_lock lock(mutex_);
    if (closed_ || count_ == capacity_) {
      ++stats_.rejected;
      return false;
    }
    push_locked(std::move(segment));
  }
  obs::Registry::global().counter("speccal_net_queue_pushed_total").add();
  not_empty_.notify_one();
  return true;
}

std::optional<Segment> SegmentQueue::pop() {
  Segment out;
  {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    pop_locked(out);
  }
  obs::Registry::global().counter("speccal_net_queue_popped_total").add();
  not_full_.notify_one();
  return out;
}

bool SegmentQueue::try_pop(Segment& out) {
  {
    std::unique_lock lock(mutex_);
    if (count_ == 0) return false;
    pop_locked(out);
  }
  obs::Registry::global().counter("speccal_net_queue_popped_total").add();
  not_full_.notify_one();
  return true;
}

void SegmentQueue::close() {
  {
    std::unique_lock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool SegmentQueue::closed() const {
  std::unique_lock lock(mutex_);
  return closed_;
}

std::size_t SegmentQueue::size() const {
  std::unique_lock lock(mutex_);
  return count_;
}

SegmentQueue::Stats SegmentQueue::stats() const {
  std::unique_lock lock(mutex_);
  return stats_;
}

}  // namespace speccal::net
