#include "net/queue.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace speccal::net {

namespace {

// Backpressure visibility (DESIGN.md §13/§15): queue state is mirrored into
// process-wide gauges after every mutation, so --metrics-out / Prometheus
// exposition shows ingest pressure without polling stats() in-process. One
// ingest queue per process in every current deployment; with several, the
// series reflect the most recently mutated queue.
obs::Gauge& depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("speccal_net_queue_depth");
  return g;
}
obs::Gauge& high_watermark_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("speccal_net_queue_high_watermark");
  return g;
}
obs::Gauge& closed_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("speccal_net_queue_closed");
  return g;
}
obs::Counter& rejected_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("speccal_net_queue_rejected_total");
  return c;
}

}  // namespace

SegmentQueue::SegmentQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SegmentQueue.capacity must be >= 1");
  }
  ring_.resize(capacity_);
  // A fresh queue owns the series from here on.
  depth_gauge().set(0.0);
  closed_gauge().set(0.0);
}

bool SegmentQueue::push_locked(Segment&& segment) {
  ring_[(head_ + count_) % capacity_] = std::move(segment);
  ++count_;
  ++stats_.pushed;
  if (count_ > stats_.peak_depth) stats_.peak_depth = count_;
  return true;
}

void SegmentQueue::pop_locked(Segment& out) {
  out = std::move(ring_[head_]);
  head_ = (head_ + 1) % capacity_;
  --count_;
  ++stats_.popped;
}

bool SegmentQueue::push(Segment&& segment) {
  std::size_t depth = 0, peak = 0;
  {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || count_ < capacity_; });
    if (closed_) {
      ++stats_.rejected;
      rejected_counter().add();
      return false;
    }
    push_locked(std::move(segment));
    depth = count_;
    peak = stats_.peak_depth;
  }
  obs::Registry::global().counter("speccal_net_queue_pushed_total").add();
  depth_gauge().set(static_cast<double>(depth));
  high_watermark_gauge().set(static_cast<double>(peak));
  not_empty_.notify_one();
  return true;
}

bool SegmentQueue::try_push(Segment&& segment) {
  std::size_t depth = 0, peak = 0;
  {
    std::unique_lock lock(mutex_);
    if (closed_ || count_ == capacity_) {
      ++stats_.rejected;
      rejected_counter().add();
      return false;
    }
    push_locked(std::move(segment));
    depth = count_;
    peak = stats_.peak_depth;
  }
  obs::Registry::global().counter("speccal_net_queue_pushed_total").add();
  depth_gauge().set(static_cast<double>(depth));
  high_watermark_gauge().set(static_cast<double>(peak));
  not_empty_.notify_one();
  return true;
}

std::optional<Segment> SegmentQueue::pop() {
  Segment out;
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;  // closed and drained
    pop_locked(out);
    depth = count_;
  }
  obs::Registry::global().counter("speccal_net_queue_popped_total").add();
  depth_gauge().set(static_cast<double>(depth));
  not_full_.notify_one();
  return out;
}

bool SegmentQueue::try_pop(Segment& out) {
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    if (count_ == 0) return false;
    pop_locked(out);
    depth = count_;
  }
  obs::Registry::global().counter("speccal_net_queue_popped_total").add();
  depth_gauge().set(static_cast<double>(depth));
  not_full_.notify_one();
  return true;
}

void SegmentQueue::close() {
  {
    std::unique_lock lock(mutex_);
    closed_ = true;
  }
  closed_gauge().set(1.0);
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool SegmentQueue::closed() const {
  std::unique_lock lock(mutex_);
  return closed_;
}

std::size_t SegmentQueue::size() const {
  std::unique_lock lock(mutex_);
  return count_;
}

SegmentQueue::Stats SegmentQueue::stats() const {
  std::unique_lock lock(mutex_);
  return stats_;
}

}  // namespace speccal::net
