#include "net/segment.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace speccal::net {

namespace {

// Little-endian field access. memcpy keeps every read/write in-bounds and
// alignment-safe; the compiler folds these into plain loads/stores.
template <typename T>
void put(std::uint8_t* base, std::size_t offset, T value) noexcept {
  std::memcpy(base + offset, &value, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(const std::uint8_t* base, std::size_t offset) noexcept {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}

[[nodiscard]] const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Fixed-point quantization: symmetric two's-complement range [-qmax, qmax]
// scaled so `scale` maps to qmax. Encoder and decoder share these so the
// documented error bound (scale / (2 * qmax)) is exact.
[[nodiscard]] std::int32_t quantize_fixed(float v, float scale,
                                          std::int32_t qmax) noexcept {
  const float unit = scale > 0.0f ? v / scale : 0.0f;
  // NaN / inf components (a chaos-injected NaN burst is a legal capture)
  // quantize to zero rather than tripping lround's undefined behaviour.
  if (!std::isfinite(unit)) return 0;
  const auto q = static_cast<std::int32_t>(
      std::lround(std::clamp(unit, -1.0f, 1.0f) * static_cast<float>(qmax)));
  return std::clamp(q, -qmax, qmax);
}

[[nodiscard]] float dequantize_fixed(std::int32_t q, float scale,
                                     std::int32_t qmax) noexcept {
  return static_cast<float>(q) * scale / static_cast<float>(qmax);
}

/// Per-segment fixed-point full scale: the largest component magnitude, or
/// 1.0 for an all-zero block (any positive value reconstructs zeros).
[[nodiscard]] float fixed_scale(std::span<const dsp::Sample> samples) noexcept {
  float peak = 0.0f;
  for (const dsp::Sample& s : samples)
    peak = std::max({peak, std::abs(s.real()), std::abs(s.imag())});
  return (peak > 0.0f && std::isfinite(peak)) ? peak : 1.0f;
}

[[nodiscard]] std::int32_t sign_extend_12(std::uint32_t raw) noexcept {
  return static_cast<std::int32_t>((raw ^ 0x800u)) - 0x800;
}

}  // namespace

const char* to_string(Encoding encoding) noexcept {
  switch (encoding) {
    case Encoding::kFloat32: return "float32";
    case Encoding::kFloat16: return "float16";
    case Encoding::kFixed8: return "fixed8";
    case Encoding::kFixed12: return "fixed12";
  }
  return "unknown";
}

std::size_t bytes_per_sample(Encoding encoding) noexcept {
  switch (encoding) {
    case Encoding::kFloat32: return 8;
    case Encoding::kFloat16: return 4;
    case Encoding::kFixed8: return 2;
    case Encoding::kFixed12: return 3;
  }
  return 0;
}

std::size_t encoded_payload_bytes(Encoding encoding, std::size_t samples) noexcept {
  return bytes_per_sample(encoding) * samples;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes)
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTooShort: return "too_short";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadEncoding: return "bad_encoding";
    case DecodeStatus::kReservedFlags: return "reserved_flags";
    case DecodeStatus::kBadSampleCount: return "bad_sample_count";
    case DecodeStatus::kLengthMismatch: return "length_mismatch";
    case DecodeStatus::kBadScale: return "bad_scale";
    case DecodeStatus::kCrcMismatch: return "crc_mismatch";
  }
  return "unknown";
}

std::uint16_t float_to_half(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mantissa = bits & 0x007FFFFFu;

  if (((bits >> 23) & 0xFFu) == 0xFFu) {
    // Inf / NaN: keep the class (NaN payload truncated to the top bits).
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (mantissa != 0 ? (mantissa >> 13) | 0x1u : 0u));
  }
  if (exponent >= 0x1F) {
    // Overflow: saturate to the largest finite half (+-65504), not inf, so
    // a lossy segment never injects infinities into the DSP chain.
    return static_cast<std::uint16_t>(sign | 0x7BFFu);
  }
  if (exponent <= 0) {
    // Subnormal half (or underflow to zero), with round-to-nearest-even.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x00800000u;  // implicit leading 1
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exponent);
    const std::uint32_t rounded =
        (mantissa + (1u << (shift - 1)) - 1u + ((mantissa >> shift) & 1u)) >> shift;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal: round mantissa to 10 bits, nearest-even; carry may bump the
  // exponent (handled naturally because the mantissa overflows into it).
  const std::uint32_t half =
      (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  const std::uint32_t round_bit = (mantissa >> 12) & 1u;
  const std::uint32_t sticky = (mantissa & 0x0FFFu) != 0 ? 1u : 0u;
  std::uint32_t out = half;
  if (round_bit && (sticky || (half & 1u))) ++out;
  if (out >= 0x7C00u) out = 0x7BFFu;  // rounding crossed into inf: saturate
  return static_cast<std::uint16_t>(sign | out);
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  const std::uint32_t mantissa = half & 0x3FFu;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1Fu) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

DecodeStatus parse_segment(std::span<const std::uint8_t> bytes,
                           SegmentView& out) noexcept {
  if (bytes.size() < kHeaderSize + kCrcSize) return DecodeStatus::kTooShort;
  const std::uint8_t* p = bytes.data();

  if (get<std::uint32_t>(p, 0) != kMagic) return DecodeStatus::kBadMagic;

  SegmentHeader h;
  h.version = get<std::uint16_t>(p, 4);
  if (h.version != kWireVersion) return DecodeStatus::kBadVersion;

  const std::uint8_t encoding_byte = get<std::uint8_t>(p, 6);
  if (encoding_byte > static_cast<std::uint8_t>(Encoding::kFixed12))
    return DecodeStatus::kBadEncoding;
  h.encoding = static_cast<Encoding>(encoding_byte);

  h.flags = get<std::uint8_t>(p, 7);
  if ((h.flags & flags::kReservedMask) != 0) return DecodeStatus::kReservedFlags;

  h.stream_id = get<std::uint32_t>(p, 8);
  h.sequence = get<std::uint32_t>(p, 12);
  h.capture_index = get<std::uint32_t>(p, 16);
  h.sample_count = get<std::uint32_t>(p, 20);
  h.payload_bytes = get<std::uint32_t>(p, 24);
  h.center_freq_hz = get<double>(p, 28);
  h.sample_rate_hz = get<double>(p, 36);
  h.gain_db = get<double>(p, 44);
  h.timestamp_s = get<double>(p, 52);
  h.scale = get<float>(p, 60);

  if (h.sample_count > kMaxSegmentSamples ||
      (h.sample_count == 0 && !h.end_of_stream()))
    return DecodeStatus::kBadSampleCount;

  // The payload length must be derivable from (encoding, sample_count) AND
  // match the segment size exactly — a lying payload_bytes can neither
  // shrink nor grow what the decoder will read.
  const std::uint64_t expected_payload =
      encoded_payload_bytes(h.encoding, h.sample_count);
  if (h.payload_bytes != expected_payload) return DecodeStatus::kLengthMismatch;
  if (bytes.size() != kHeaderSize + expected_payload + kCrcSize)
    return DecodeStatus::kLengthMismatch;

  if ((h.encoding == Encoding::kFixed8 || h.encoding == Encoding::kFixed12) &&
      (!std::isfinite(h.scale) || h.scale <= 0.0f))
    return DecodeStatus::kBadScale;

  const std::uint32_t stored_crc =
      get<std::uint32_t>(p, bytes.size() - kCrcSize);
  if (crc32(bytes.first(bytes.size() - kCrcSize)) != stored_crc)
    return DecodeStatus::kCrcMismatch;

  out.header = h;
  out.payload = bytes.subspan(kHeaderSize, h.payload_bytes);
  return DecodeStatus::kOk;
}

void decode_payload(const SegmentView& view, dsp::Buffer& out) {
  const SegmentHeader& h = view.header;
  out.resize(h.sample_count);
  const std::uint8_t* p = view.payload.data();
  switch (h.encoding) {
    case Encoding::kFloat32:
      for (std::uint32_t i = 0; i < h.sample_count; ++i)
        out[i] = dsp::Sample(get<float>(p, 8 * i), get<float>(p, 8 * i + 4));
      break;
    case Encoding::kFloat16:
      for (std::uint32_t i = 0; i < h.sample_count; ++i)
        out[i] = dsp::Sample(half_to_float(get<std::uint16_t>(p, 4 * i)),
                             half_to_float(get<std::uint16_t>(p, 4 * i + 2)));
      break;
    case Encoding::kFixed8:
      for (std::uint32_t i = 0; i < h.sample_count; ++i) {
        const auto re = static_cast<std::int8_t>(get<std::uint8_t>(p, 2 * i));
        const auto im = static_cast<std::int8_t>(get<std::uint8_t>(p, 2 * i + 1));
        out[i] = dsp::Sample(dequantize_fixed(re, h.scale, 127),
                             dequantize_fixed(im, h.scale, 127));
      }
      break;
    case Encoding::kFixed12:
      for (std::uint32_t i = 0; i < h.sample_count; ++i) {
        const std::uint32_t b0 = get<std::uint8_t>(p, 3 * i);
        const std::uint32_t b1 = get<std::uint8_t>(p, 3 * i + 1);
        const std::uint32_t b2 = get<std::uint8_t>(p, 3 * i + 2);
        const std::uint32_t raw_i = b0 | ((b1 & 0x0Fu) << 8);
        const std::uint32_t raw_q = ((b1 >> 4) & 0x0Fu) | (b2 << 4);
        out[i] = dsp::Sample(
            dequantize_fixed(sign_extend_12(raw_i), h.scale, 2047),
            dequantize_fixed(sign_extend_12(raw_q), h.scale, 2047));
      }
      break;
  }
}

void SegmentWriterConfig::validate() const {
  if (static_cast<std::uint8_t>(encoding) >
      static_cast<std::uint8_t>(Encoding::kFixed12))
    throw std::invalid_argument(
        "SegmentWriterConfig.encoding must be a defined Encoding value");
  if (max_samples_per_segment < 1 ||
      max_samples_per_segment > kMaxSegmentSamples)
    throw std::invalid_argument(
        "SegmentWriterConfig.max_samples_per_segment must be in [1, " +
        std::to_string(kMaxSegmentSamples) + "]");
}

SegmentWriter::SegmentWriter(SegmentWriterConfig config, std::uint32_t stream_id)
    : config_(config), stream_id_(stream_id) {
  config_.validate();
}

Segment SegmentWriter::encode(const CaptureMeta& meta, std::uint8_t seg_flags,
                              std::span<const dsp::Sample> samples) {
  const std::size_t payload = encoded_payload_bytes(config_.encoding, samples.size());
  Segment segment;
  segment.bytes.resize(kHeaderSize + payload + kCrcSize);
  std::uint8_t* p = segment.bytes.data();

  const float scale = (config_.encoding == Encoding::kFixed8 ||
                       config_.encoding == Encoding::kFixed12)
                          ? fixed_scale(samples)
                          : 1.0f;

  put<std::uint32_t>(p, 0, kMagic);
  put<std::uint16_t>(p, 4, kWireVersion);
  put<std::uint8_t>(p, 6, static_cast<std::uint8_t>(config_.encoding));
  put<std::uint8_t>(p, 7, seg_flags);
  put<std::uint32_t>(p, 8, stream_id_);
  put<std::uint32_t>(p, 12, sequence_);
  put<std::uint32_t>(p, 16, capture_index_);
  put<std::uint32_t>(p, 20, static_cast<std::uint32_t>(samples.size()));
  put<std::uint32_t>(p, 24, static_cast<std::uint32_t>(payload));
  put<double>(p, 28, meta.center_freq_hz);
  put<double>(p, 36, meta.sample_rate_hz);
  put<double>(p, 44, meta.gain_db);
  put<double>(p, 52, meta.timestamp_s);
  put<float>(p, 60, scale);

  std::uint8_t* body = p + kHeaderSize;
  switch (config_.encoding) {
    case Encoding::kFloat32:
      for (std::size_t i = 0; i < samples.size(); ++i) {
        put<float>(body, 8 * i, samples[i].real());
        put<float>(body, 8 * i + 4, samples[i].imag());
      }
      break;
    case Encoding::kFloat16:
      for (std::size_t i = 0; i < samples.size(); ++i) {
        put<std::uint16_t>(body, 4 * i, float_to_half(samples[i].real()));
        put<std::uint16_t>(body, 4 * i + 2, float_to_half(samples[i].imag()));
      }
      break;
    case Encoding::kFixed8:
      for (std::size_t i = 0; i < samples.size(); ++i) {
        put<std::uint8_t>(body, 2 * i,
                          static_cast<std::uint8_t>(static_cast<std::int8_t>(
                              quantize_fixed(samples[i].real(), scale, 127))));
        put<std::uint8_t>(body, 2 * i + 1,
                          static_cast<std::uint8_t>(static_cast<std::int8_t>(
                              quantize_fixed(samples[i].imag(), scale, 127))));
      }
      break;
    case Encoding::kFixed12:
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const std::uint32_t raw_i = static_cast<std::uint32_t>(
                                        quantize_fixed(samples[i].real(), scale, 2047)) &
                                    0xFFFu;
        const std::uint32_t raw_q = static_cast<std::uint32_t>(
                                        quantize_fixed(samples[i].imag(), scale, 2047)) &
                                    0xFFFu;
        put<std::uint8_t>(body, 3 * i, static_cast<std::uint8_t>(raw_i & 0xFFu));
        put<std::uint8_t>(body, 3 * i + 1,
                          static_cast<std::uint8_t>(((raw_i >> 8) & 0x0Fu) |
                                                    ((raw_q & 0x0Fu) << 4)));
        put<std::uint8_t>(body, 3 * i + 2,
                          static_cast<std::uint8_t>((raw_q >> 4) & 0xFFu));
      }
      break;
  }

  put<std::uint32_t>(p, segment.bytes.size() - kCrcSize,
                     crc32(std::span<const std::uint8_t>(
                         segment.bytes.data(), segment.bytes.size() - kCrcSize)));

  ++sequence_;
  bytes_ += segment.bytes.size();
  static obs::Counter& segments =
      obs::Registry::global().counter("speccal_net_segments_encoded_total");
  static obs::Counter& wire_bytes =
      obs::Registry::global().counter("speccal_net_bytes_encoded_total");
  segments.add();
  wire_bytes.add(segment.bytes.size());
  return segment;
}

void SegmentWriter::write_capture(const CaptureMeta& meta,
                                  std::span<const dsp::Sample> samples,
                                  const std::function<void(Segment&&)>& sink) {
  CaptureMeta chunk_meta = meta;
  std::size_t offset = 0;
  // A zero-sample data segment is invalid on the wire, so an empty capture
  // records nothing (it carries no information to replay).
  while (offset < samples.size()) {
    const std::size_t n =
        std::min(config_.max_samples_per_segment, samples.size() - offset);
    chunk_meta.timestamp_s =
        meta.timestamp_s +
        (meta.sample_rate_hz > 0.0
             ? static_cast<double>(offset) / meta.sample_rate_hz
             : 0.0);
    sink(encode(chunk_meta, 0, samples.subspan(offset, n)));
    offset += n;
  }
  if (!samples.empty()) ++capture_index_;
}

void SegmentWriter::finish(const CaptureMeta& meta,
                           const std::function<void(Segment&&)>& sink) {
  sink(encode(meta, flags::kEndOfStream, {}));
}

}  // namespace speccal::net
