// Bounded in-process segment transport — the decode farm's ingest edge.
//
// SegmentQueue is a fixed-capacity MPMC ring buffer of wire segments.
// Producers (sensor streams) block when the ring is full — natural
// backpressure onto cheap nodes — and consumers (decode workers) block when
// it is empty. close() is the shutdown contract: producers are refused from
// that point on, consumers drain whatever is still buffered and then see
// end-of-queue. The same contract a socket-backed transport will offer, so
// the decode farm is written against this interface only (DESIGN.md §13).
//
// Thread-safe throughout; one mutex + two condvars (classic bounded buffer).
// Segments move in and out — the queue never copies payload bytes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "net/segment.hpp"

namespace speccal::net {

class SegmentQueue {
 public:
  /// Throws std::invalid_argument ("SegmentQueue.capacity ...") when
  /// capacity is 0.
  explicit SegmentQueue(std::size_t capacity);

  SegmentQueue(const SegmentQueue&) = delete;
  SegmentQueue& operator=(const SegmentQueue&) = delete;

  /// Blocking push. Waits while full; returns false (segment dropped) once
  /// the queue is closed.
  bool push(Segment&& segment);

  /// Non-blocking push: false when full or closed.
  bool try_push(Segment&& segment);

  /// Blocking pop. Waits while empty; returns nullopt only after close()
  /// AND the buffer has drained.
  [[nodiscard]] std::optional<Segment> pop();

  /// Non-blocking pop: false when nothing is buffered (closed or not).
  bool try_pop(Segment& out);

  /// Refuse new segments and wake every waiter. Buffered segments remain
  /// poppable; idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t rejected = 0;    // try_push full + any push after close
    std::size_t peak_depth = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  [[nodiscard]] bool push_locked(Segment&& segment);
  void pop_locked(Segment& out);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Segment> ring_;
  std::size_t head_ = 0;  // next pop position
  std::size_t count_ = 0;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace speccal::net
