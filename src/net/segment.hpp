// Versioned binary IQ segment wire format — the Electrosense+ split.
//
// Cheap crowd-sourced sensors ship raw-ish IQ; a backend decode farm does
// the heavy lifting. This header defines the wire contract between the two:
// a fixed 64-byte little-endian header (magic / version / stream id /
// sequence / capture metadata), a payload in one of four encodings, and a
// CRC-32 trailer over everything before it.
//
//   offset size field            notes
//   ------ ---- ---------------- -------------------------------------------
//        0    4 magic            bytes "SCSG" (0x47534353 read as LE u32)
//        4    2 version          wire version, currently 1
//        6    1 encoding         Encoding enum (0/1/2/3)
//        7    1 flags            bit0 = end-of-stream; other bits reserved,
//                                must be zero in v1 (decoder rejects)
//        8    4 stream_id        producer node stream (backend manifest key)
//       12    4 sequence         per-stream counter, contiguous from 0
//       16    4 capture_index    which capture this segment belongs to
//       20    4 sample_count     IQ samples in THIS segment
//       24    4 payload_bytes    must equal encoded_payload_bytes(...)
//       28    8 center_freq_hz   f64 — tuner state when captured
//       36    8 sample_rate_hz   f64
//       44    8 gain_db          f64 — gain applied to the recorded samples
//       52    8 timestamp_s      f64 — device stream time at segment start
//       60    4 scale            f32 — fixed-point full scale (1.0 for float
//                                encodings); finite and > 0 or rejected
//       64  ... payload          sample_count samples, encoding-dependent
//      end    4 crc32            IEEE 802.3 (poly 0xEDB88320) over
//                                header + payload, stored LE
//
// Versioning / compatibility policy (DESIGN.md §13): the version field is
// bumped on any layout or semantics change; a v1 decoder rejects every
// other version and every reserved flag bit rather than guessing. The
// decoder is strict and total: any input — truncated, corrupted, lying
// about lengths — produces a DecodeStatus, never UB (tests/test_net.cpp
// runs it under ASan/UBSan against adversarial mutations).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dsp/iq.hpp"

namespace speccal::net {

inline constexpr std::uint32_t kMagic = 0x47534353u;  // "SCSG" byte order
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 64;
inline constexpr std::size_t kCrcSize = 4;
/// Hard ceiling on samples per segment: bounds every size computation well
/// below u32 overflow and caps a single segment's memory at ~128 MiB.
inline constexpr std::uint32_t kMaxSegmentSamples = 1u << 24;

/// Payload encodings. Float32 is the lossless passthrough (bitwise
/// round-trip); the others trade fidelity for wire bytes, with documented
/// worst-case error per reconstructed component (DESIGN.md §13).
enum class Encoding : std::uint8_t {
  kFloat32 = 0,  // 8 B/sample, exact
  kFloat16 = 1,  // 4 B/sample, |err| <= 2^-11 for |v| <= 1
  kFixed8 = 2,   // 2 B/sample, |err| <= scale / 254
  kFixed12 = 3,  // 3 B/sample, |err| <= scale / 4094
  // Fixed-point bounds are the real-arithmetic quantization bounds; the
  // float32 encode/decode arithmetic adds at most a couple of ULPs of the
  // reconstructed component on top.
};

[[nodiscard]] const char* to_string(Encoding encoding) noexcept;
/// Wire bytes per sample for `encoding`.
[[nodiscard]] std::size_t bytes_per_sample(Encoding encoding) noexcept;
/// Exact payload size for `samples` samples (no padding in any encoding).
[[nodiscard]] std::size_t encoded_payload_bytes(Encoding encoding,
                                                std::size_t samples) noexcept;

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320, init/final 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

namespace flags {
inline constexpr std::uint8_t kEndOfStream = 0x01;
inline constexpr std::uint8_t kReservedMask = static_cast<std::uint8_t>(~kEndOfStream);
}  // namespace flags

/// One wire segment, exactly as transported.
struct Segment {
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
};

/// Decoded header fields (host order).
struct SegmentHeader {
  std::uint16_t version = kWireVersion;
  Encoding encoding = Encoding::kFloat32;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  std::uint32_t sequence = 0;
  std::uint32_t capture_index = 0;
  std::uint32_t sample_count = 0;
  std::uint32_t payload_bytes = 0;
  double center_freq_hz = 0.0;
  double sample_rate_hz = 0.0;
  double gain_db = 0.0;
  double timestamp_s = 0.0;
  float scale = 1.0f;

  [[nodiscard]] bool end_of_stream() const noexcept {
    return (flags & flags::kEndOfStream) != 0;
  }
};

/// Why a segment was rejected. kOk is the only accepting status; everything
/// else leaves the output untouched.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTooShort,        // fewer bytes than header + CRC trailer
  kBadMagic,
  kBadVersion,      // any version != kWireVersion (strict v1 policy)
  kBadEncoding,     // encoding byte outside the enum
  kReservedFlags,   // reserved flag bits set
  kBadSampleCount,  // > kMaxSegmentSamples, or 0 without end-of-stream
  kLengthMismatch,  // payload_bytes lies about the encoding/sample_count,
                    // or total size != header + payload + CRC
  kBadScale,        // fixed-point scale not finite or <= 0
  kCrcMismatch,
};

[[nodiscard]] const char* to_string(DecodeStatus status) noexcept;

/// Validated view over one wire segment: header in host order plus a span
/// of the (CRC-checked) payload inside `bytes`. Valid only while the
/// underlying bytes live.
struct SegmentView {
  SegmentHeader header;
  std::span<const std::uint8_t> payload;
};

/// Strict bounds-checked parse of one wire segment. Every field is
/// validated (in the DecodeStatus order above) before the payload span is
/// exposed; on any failure `out` is untouched and the function returns the
/// reason. Never throws, never reads out of bounds.
[[nodiscard]] DecodeStatus parse_segment(std::span<const std::uint8_t> bytes,
                                         SegmentView& out) noexcept;

/// Reconstruct the IQ samples of a parsed segment into `out` (resized to
/// header.sample_count; reuse one buffer across calls for the zero-alloc
/// steady state). The view must come from parse_segment.
void decode_payload(const SegmentView& view, dsp::Buffer& out);

/// What a segment records about the producing device at capture time.
struct CaptureMeta {
  double center_freq_hz = 0.0;
  double sample_rate_hz = 0.0;
  double gain_db = 0.0;
  double timestamp_s = 0.0;
};

struct SegmentWriterConfig {
  Encoding encoding = Encoding::kFloat32;
  /// Captures larger than this are split across consecutive segments with
  /// the same capture_index (the decode farm reassembles them).
  std::size_t max_samples_per_segment = 65536;

  /// Throws std::invalid_argument naming the field on out-of-range values
  /// (the shared config-validation convention, DESIGN.md §13).
  void validate() const;
};

/// Encodes one node's capture stream into wire segments. Owns the
/// per-stream sequence/capture counters; one writer per producer stream
/// (not thread-safe, like the device it records).
class SegmentWriter {
 public:
  /// Validates `config` (throws std::invalid_argument naming the field).
  SegmentWriter(SegmentWriterConfig config, std::uint32_t stream_id);

  /// Encode one capture (split into >= 1 segments) and hand each segment to
  /// `sink`. Samples must describe one contiguous device capture.
  void write_capture(const CaptureMeta& meta, std::span<const dsp::Sample> samples,
                     const std::function<void(Segment&&)>& sink);

  /// Emit the end-of-stream marker (zero samples, kEndOfStream flag). Call
  /// exactly once, after the last capture.
  void finish(const CaptureMeta& meta, const std::function<void(Segment&&)>& sink);

  [[nodiscard]] std::uint32_t stream_id() const noexcept { return stream_id_; }
  [[nodiscard]] std::uint32_t segments_written() const noexcept { return sequence_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  [[nodiscard]] const SegmentWriterConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] Segment encode(const CaptureMeta& meta, std::uint8_t seg_flags,
                               std::span<const dsp::Sample> samples);

  SegmentWriterConfig config_;
  std::uint32_t stream_id_ = 0;
  std::uint32_t sequence_ = 0;
  std::uint32_t capture_index_ = 0;
  std::uint64_t bytes_ = 0;
};

/// IEEE 754 binary16 conversions (round-to-nearest-even; values beyond
/// half range saturate to +-65504). Exposed for tests.
[[nodiscard]] std::uint16_t float_to_half(float value) noexcept;
[[nodiscard]] float half_to_float(std::uint16_t half) noexcept;

}  // namespace speccal::net
