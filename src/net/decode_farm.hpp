// Backend decode farm: wire segments in, calibration reports out.
//
// The Electrosense+ backend in miniature. A pool of decode workers pulls
// segments off a SegmentQueue, validates and decodes them (strict parser,
// per-worker reusable buffers — the zero-alloc steady state), and
// reassembles each stream's captures in sequence order even though workers
// race on the queue. When the transport closes and every stream has been
// drained, the farm hands the completed streams (those that delivered
// their end-of-stream marker and have a registered manifest) to the
// ordinary fleet engine as replay jobs — the same stage-graph executor,
// retry machinery and registry as an in-process run, just fed from the
// wire. With float32 segments the resulting reports are bitwise-identical
// to the producer's own calibration (the round-trip gate in
// examples/decode_farm.cpp and CI).
//
// Node metadata travels out of band: the wire carries only stream_id, and
// register_node() binds that id to a NodeManifest (claims, device
// capabilities, site models). Segments for unregistered streams are
// counted and dropped — a real ingest tier would quarantine them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "calib/ingest.hpp"
#include "net/queue.hpp"
#include "net/segment.hpp"

namespace speccal::net {

struct DecodeFarmConfig {
  /// Decode worker threads pulling from the queue (the calibration phase is
  /// parallelized separately, by RunConfig::executor.threads).
  unsigned decode_threads = 1;
  /// Segments larger than this are rejected before parsing (transport-level
  /// sanity bound; must hold at least an empty segment).
  std::size_t max_segment_bytes = kHeaderSize + kCrcSize + (std::size_t{1} << 27);

  /// Throws std::invalid_argument naming the field on out-of-range values
  /// (the shared config-validation convention, DESIGN.md §13).
  void validate() const;
};

/// Out-of-band description of one producer stream: everything the backend
/// needs to calibrate the node besides its samples. The models `rx` points
/// into must outlive the farm run.
struct NodeManifest {
  calib::NodeClaims claims;
  sdr::DeviceInfo info;
  geo::Geodetic position;
  std::optional<sdr::RxEnvironment> rx;
};

/// What one farm run did. Counters cover the decode phase; the fault tally
/// is the shared calib::FaultTally from the calibration phase (the same
/// struct FleetSummary carries — no third spelling).
struct DecodeFarmStats {
  std::uint64_t segments = 0;        // accepted wire segments
  std::uint64_t bytes = 0;           // wire bytes of accepted segments
  std::uint64_t captures = 0;        // captures reassembled
  std::uint64_t samples = 0;         // IQ samples decoded
  std::uint64_t decode_errors = 0;   // segments rejected by the parser
  std::uint64_t unknown_streams = 0; // segments for unregistered stream ids
  std::size_t nodes_ready = 0;       // streams that delivered end-of-stream
  std::size_t nodes_incomplete = 0;  // streams with data but no end-of-stream
  std::size_t nodes_calibrated = 0;  // reports recorded
  std::size_t nodes_failed = 0;      // aborted reports among those
  calib::FaultTally faults;
  double decode_wall_s = 0.0;        // queue open -> drained
  double wall_s = 0.0;               // run() total (decode + calibrate)
  double segments_per_s = 0.0;       // decode-phase throughput
  double mbytes_per_s = 0.0;
};

class DecodeFarm {
 public:
  /// `world` + `run` define the calibration the farm applies to every
  /// completed stream (RunConfig is validated here — throws
  /// std::invalid_argument naming the field).
  DecodeFarm(calib::WorldModel world, calib::RunConfig run,
             DecodeFarmConfig config = {});

  /// Bind `stream_id` to a node manifest. Call before run(); re-registering
  /// an id replaces its manifest.
  void register_node(std::uint32_t stream_id, NodeManifest manifest);

  /// Drain `queue` until it is closed and empty, then calibrate every
  /// completed stream into `registry`. Blocks; one run at a time per farm.
  DecodeFarmStats run(SegmentQueue& queue, calib::NodeRegistry& registry);

  [[nodiscard]] const DecodeFarmConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t registered_nodes() const noexcept {
    return manifests_.size();
  }

 private:
  struct StreamState;

  calib::WorldModel world_;
  calib::RunConfig run_;
  DecodeFarmConfig config_;
  std::map<std::uint32_t, NodeManifest> manifests_;
};

}  // namespace speccal::net
