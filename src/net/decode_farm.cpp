#include "net/decode_farm.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "calib/fleet.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"

namespace speccal::net {

void DecodeFarmConfig::validate() const {
  if (decode_threads < 1) {
    throw std::invalid_argument("DecodeFarmConfig.decode_threads must be >= 1");
  }
  if (max_segment_bytes < kHeaderSize + kCrcSize) {
    throw std::invalid_argument(
        "DecodeFarmConfig.max_segment_bytes must be >= header + CRC size");
  }
}

/// One decoded segment held aside until its predecessors arrive. Workers
/// race on the queue, so a stream's segments can reach the farm out of
/// order even over an in-order transport.
namespace {
struct DecodedPiece {
  SegmentHeader header;
  dsp::Buffer samples;
};
}  // namespace

/// Per-stream reassembly state. `mutex` serializes appends from different
/// decode workers; payload decoding itself happens outside the lock.
struct DecodeFarm::StreamState {
  std::mutex mutex;
  std::uint32_t next_seq = 0;
  std::map<std::uint32_t, DecodedPiece> stash;
  std::shared_ptr<std::vector<sdr::CaptureRecord>> records =
      std::make_shared<std::vector<sdr::CaptureRecord>>();
  std::uint32_t open_capture_index = 0;
  bool capture_open = false;
  bool eos = false;
  std::uint64_t captures = 0;
  std::uint64_t samples = 0;

  /// Fold one in-sequence piece into the capture list. Consecutive
  /// segments sharing a capture_index are chunks of one split capture.
  void apply(const SegmentHeader& h, std::span<const dsp::Sample> block) {
    if (h.sample_count == 0) {  // end-of-stream marker (parser enforces flag)
      eos = true;
      capture_open = false;
      return;
    }
    if (!capture_open || h.capture_index != open_capture_index) {
      sdr::CaptureRecord rec;
      rec.center_freq_hz = h.center_freq_hz;
      rec.sample_rate_hz = h.sample_rate_hz;
      rec.gain_db = h.gain_db;
      rec.timestamp_s = h.timestamp_s;  // first chunk = capture start time
      records->push_back(std::move(rec));
      capture_open = true;
      open_capture_index = h.capture_index;
      ++captures;
    }
    dsp::Buffer& dst = records->back().samples;
    dst.insert(dst.end(), block.begin(), block.end());
    samples += block.size();
  }
};

DecodeFarm::DecodeFarm(calib::WorldModel world, calib::RunConfig run,
                       DecodeFarmConfig config)
    : world_(std::move(world)), run_(std::move(run)), config_(config) {
  config_.validate();
  run_.validate();
}

void DecodeFarm::register_node(std::uint32_t stream_id, NodeManifest manifest) {
  manifests_[stream_id] = std::move(manifest);
}

DecodeFarmStats DecodeFarm::run(SegmentQueue& queue,
                                calib::NodeRegistry& registry) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();

  DecodeFarmStats stats;
  std::atomic<std::uint64_t> segments{0}, bytes{0}, decode_errors{0},
      unknown_streams{0};

  std::mutex streams_mutex;
  std::map<std::uint32_t, std::unique_ptr<StreamState>> streams;

  obs::Counter& decoded_counter =
      obs::Registry::global().counter("speccal_net_segments_decoded_total");
  obs::Counter& error_counter =
      obs::Registry::global().counter("speccal_net_decode_errors_total");

  const auto worker = [&] {
    dsp::Buffer scratch;  // reused across segments: zero-alloc steady state
    while (auto segment = queue.pop()) {
      if (segment->size() > config_.max_segment_bytes) {
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        error_counter.add();
        obs::EventLog::global().log(
            obs::EventSeverity::kError, "segment_rejected", {}, {},
            {obs::SpanArg::str("reason", "oversize"),
             obs::SpanArg::integer("bytes",
                                   static_cast<std::int64_t>(segment->size()))});
        continue;
      }
      SegmentView view;
      const DecodeStatus status = parse_segment(segment->bytes, view);
      if (status != DecodeStatus::kOk) {
        decode_errors.fetch_add(1, std::memory_order_relaxed);
        error_counter.add();
        obs::EventLog::global().log(
            obs::EventSeverity::kError, "segment_rejected", {}, {},
            {obs::SpanArg::str("reason", to_string(status)),
             obs::SpanArg::integer("bytes",
                                   static_cast<std::int64_t>(segment->size()))});
        continue;
      }
      if (manifests_.find(view.header.stream_id) == manifests_.end()) {
        unknown_streams.fetch_add(1, std::memory_order_relaxed);
        obs::EventLog::global().log(
            obs::EventSeverity::kWarning, "unknown_stream_dropped", {}, {},
            {obs::SpanArg::integer(
                "stream_id", static_cast<std::int64_t>(view.header.stream_id))});
        continue;
      }
      decode_payload(view, scratch);
      segments.fetch_add(1, std::memory_order_relaxed);
      bytes.fetch_add(segment->size(), std::memory_order_relaxed);
      decoded_counter.add();

      StreamState* stream;
      {
        const std::scoped_lock lock(streams_mutex);
        auto& slot = streams[view.header.stream_id];
        if (!slot) slot = std::make_unique<StreamState>();
        stream = slot.get();
      }
      const std::scoped_lock lock(stream->mutex);
      if (view.header.sequence == stream->next_seq) {
        stream->apply(view.header, scratch);
        ++stream->next_seq;
        // Drain everything this arrival unblocked.
        for (auto it = stream->stash.find(stream->next_seq);
             it != stream->stash.end();
             it = stream->stash.find(stream->next_seq)) {
          stream->apply(it->second.header, it->second.samples);
          stream->stash.erase(it);
          ++stream->next_seq;
        }
      } else if (view.header.sequence > stream->next_seq) {
        stream->stash.emplace(
            view.header.sequence,
            DecodedPiece{view.header,
                         dsp::Buffer(scratch.begin(), scratch.end())});
      }
      // A sequence below next_seq is a duplicate: already applied, drop it.
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(config_.decode_threads);
  for (unsigned i = 0; i < config_.decode_threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  stats.segments = segments.load();
  stats.bytes = bytes.load();
  stats.decode_errors = decode_errors.load();
  stats.unknown_streams = unknown_streams.load();
  stats.decode_wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  if (stats.decode_wall_s > 0.0) {
    stats.segments_per_s =
        static_cast<double>(stats.segments) / stats.decode_wall_s;
    stats.mbytes_per_s =
        static_cast<double>(stats.bytes) / 1e6 / stats.decode_wall_s;
  }

  // Decode phase done (queue closed and drained): calibrate every stream
  // that completed. std::map order makes the job list deterministic.
  std::vector<calib::FleetJob> jobs;
  for (auto& [stream_id, stream] : streams) {
    stats.captures += stream->captures;
    stats.samples += stream->samples;
    if (!stream->eos || !stream->stash.empty()) {
      ++stats.nodes_incomplete;  // missing EOS or gaps in the sequence
      continue;
    }
    ++stats.nodes_ready;
    const NodeManifest& manifest = manifests_.at(stream_id);
    calib::ReplayNodeData data;
    data.claims = manifest.claims;
    data.info = manifest.info;
    data.position = manifest.position;
    data.rx = manifest.rx;
    data.records = stream->records;
    jobs.push_back(calib::make_replay_job(std::move(data)));
  }

  if (!jobs.empty()) {
    calib::FleetCalibrator calibrator(world_, run_);
    const calib::FleetSummary summary =
        calibrator.run(std::move(jobs), registry);
    stats.nodes_calibrated = summary.calibrated;
    stats.nodes_failed = summary.failed;
    stats.faults = summary.faults;
  }

  stats.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  return stats;
}

}  // namespace speccal::net
