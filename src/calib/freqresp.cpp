#include "calib/freqresp.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace speccal::calib {

std::string to_string(SignalKind kind) {
  switch (kind) {
    case SignalKind::kAdsb: return "ADS-B";
    case SignalKind::kCellular: return "cellular";
    case SignalKind::kTv: return "TV";
  }
  return "?";
}

FrequencyResponseReport evaluate_frequency_response(
    std::vector<BandMeasurement> measurements, const FrequencyResponseConfig& config) {
  FrequencyResponseReport report;

  // Per-class aggregation.
  std::map<cellular::SpectrumClass, BandQuality> classes;
  double atten_sum = 0.0;
  std::size_t atten_count = 0;

  // For the slope fit: x = log10(freq), y = attenuation.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t n_fit = 0;

  for (const auto& m : measurements) {
    const auto cls = cellular::classify_frequency(m.freq_hz);
    BandQuality& bq = classes[cls];
    bq.band_class = cls;
    ++bq.sources_total;

    const double attenuation = m.measured_dbm
                                   ? std::max(0.0, m.expected_dbm - *m.measured_dbm)
                                   : config.lost_penalty_db;
    if (m.measured_dbm) {
      ++bq.sources_received;
      bq.mean_attenuation_db += attenuation;
    }
    bq.worst_attenuation_db = std::max(bq.worst_attenuation_db, attenuation);

    atten_sum += attenuation;
    ++atten_count;

    const double x = std::log10(std::max(m.freq_hz, 1e6));
    sx += x;
    sy += attenuation;
    sxx += x * x;
    sxy += x * attenuation;
    ++n_fit;
  }

  for (auto& [cls, bq] : classes) {
    if (bq.sources_received > 0)
      bq.mean_attenuation_db /= static_cast<double>(bq.sources_received);
    std::size_t good = 0;
    for (const auto& m : measurements) {
      if (cellular::classify_frequency(m.freq_hz) != cls) continue;
      if (m.measured_dbm &&
          m.expected_dbm - *m.measured_dbm < config.degraded_threshold_db)
        ++good;
    }
    bq.usable = static_cast<double>(good) >=
                config.usable_fraction * static_cast<double>(bq.sources_total);
    report.bands.push_back(bq);
  }
  std::sort(report.bands.begin(), report.bands.end(),
            [](const BandQuality& a, const BandQuality& b) {
              return static_cast<int>(a.band_class) < static_cast<int>(b.band_class);
            });

  if (n_fit >= 2) {
    const double n = static_cast<double>(n_fit);
    const double denom = n * sxx - sx * sx;
    if (std::fabs(denom) > 1e-12)
      report.attenuation_slope_db_per_decade = (n * sxy - sx * sy) / denom;
  }
  report.mean_attenuation_db = atten_count ? atten_sum / static_cast<double>(atten_count) : 0.0;
  report.measurements = std::move(measurements);
  return report;
}

}  // namespace speccal::calib
