// Field-of-view estimation from ADS-B observations.
//
// Two estimators over the survey's (azimuth, range, received) points:
//   * SectorFovEstimator — histogram of fixed azimuth bins; a bin is "open"
//     when enough far aircraft were received there (the visual judgement
//     one makes from the paper's Figure 1).
//   * KnnFovEstimator — the k-nearest-neighbours classifier the paper's §5
//     proposes for the end-to-end system: each azimuth is classified by its
//     k nearest (in angle) range-gated observations, distance-weighted.
// Both ignore aircraft closer than `near_field_km`: the paper observes that
// within ~20 km messages get through regardless of direction (multipath /
// penetration), so near traffic carries no directional information.
#pragma once

#include <vector>

#include "calib/survey.hpp"
#include "geo/sector.hpp"

namespace speccal::calib {

struct FovConfig {
  double near_field_km = 25.0;
  /// Azimuth histogram bin width (SectorFovEstimator).
  double bin_width_deg = 10.0;
  /// Minimum fraction of received-vs-present far aircraft for an open bin.
  double open_fraction = 0.34;
  /// Bins with fewer far aircraft than this are interpolated from their
  /// neighbours (no traffic != blocked — the paper is explicit about this).
  std::size_t min_samples = 1;
  /// KNN parameters.
  int knn_k = 7;
  double knn_range_weight = 0.5;  // how strongly far receptions dominate
};

/// Per-bin diagnostics (rendered by the Figure-1 bench).
struct AzimuthBin {
  double center_deg = 0.0;
  std::size_t present = 0;      // far aircraft in ground truth
  std::size_t received = 0;     // of which decoded
  double max_received_km = 0.0; // farthest decoded aircraft
  bool open = false;
  bool interpolated = false;    // verdict borrowed from neighbours
};

struct FovEstimate {
  geo::SectorSet open_sectors;
  std::vector<AzimuthBin> bins;
  double open_fraction_deg = 0.0;       // fraction of the circle deemed open
  std::size_t usable_observations = 0;  // beyond the near field
};

/// Histogram estimator.
[[nodiscard]] FovEstimate estimate_fov_sectors(const SurveyResult& survey,
                                               const FovConfig& config = {});

/// KNN estimator (1-degree resolution classification of the horizon).
[[nodiscard]] FovEstimate estimate_fov_knn(const SurveyResult& survey,
                                           const FovConfig& config = {});

/// Agreement between an estimate and ground truth clear sectors, in [0,1]
/// (Jaccard overlap of open azimuth sets).
[[nodiscard]] double fov_accuracy(const FovEstimate& estimate,
                                  const geo::SectorSet& truth_clear) noexcept;

}  // namespace speccal::calib
