// End-to-end calibration pipeline and node registry — the paper's §5
// "end-to-end system", assembled from the building blocks:
//   ADS-B survey -> FoV estimate
//   cellular scan + TV sweep -> frequency response
//   fuse -> installation classification -> claim verification -> trust
// One CalibrationReport per node; a NodeRegistry ranks the fleet.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "calib/classify.hpp"
#include "calib/fov.hpp"
#include "calib/freqresp.hpp"
#include "calib/hardware.hpp"
#include "calib/lo_calibration.hpp"
#include "calib/survey.hpp"
#include "calib/trust.hpp"
#include "cellular/scanner.hpp"
#include "sdr/emitter.hpp"
#include "tv/power_meter.hpp"

namespace speccal::calib {

/// Everything that exists around the sensors (shared across nodes).
struct WorldModel {
  std::shared_ptr<const airtraffic::SkySimulator> sky;
  double ground_truth_latency_s = 10.0;
  cellular::CellDatabase cells;
  /// Broadcast TV emitters (same configs used to build device sources).
  std::vector<sdr::EmitterConfig> tv_channels;
};

struct PipelineConfig {
  SurveyConfig survey;
  FovConfig fov;
  cellular::ScanConfig cell_scan;
  tv::PowerMeterConfig tv_meter;
  FrequencyResponseConfig freqresp;
  ClassifierConfig classifier;
  TrustConfig trust;
  /// Cells considered "nearby" for the scan list.
  double cell_search_radius_m = 30e3;
  /// Use the KNN FoV estimator (paper §5) instead of plain sectors.
  bool use_knn_fov = true;
  /// TV reading below noise floor + margin counts as lost.
  double tv_detect_margin_db = 2.0;
  /// Hardware-fault separation thresholds.
  HardwareDiagnosisConfig hardware;
  /// Reference-oscillator calibration against receivable TV pilots.
  LoCalibrationConfig lo;
  bool run_lo_calibration = true;
};

/// Complete evaluation of one node.
struct CalibrationReport {
  NodeClaims claims;
  SurveyResult survey;
  FovEstimate fov;
  std::vector<cellular::CellMeasurement> cell_scan;
  std::vector<tv::ChannelPowerReading> tv_readings;
  FrequencyResponseReport frequency_response;
  Classification classification;
  TrustReport trust;
  HardwareDiagnosis hardware;
  LoCalibrationResult lo_calibration;

  /// Machine-readable export for downstream tooling.
  void write_json(std::ostream& os) const;
};

class CalibrationPipeline {
 public:
  CalibrationPipeline(WorldModel world, PipelineConfig config = {});

  /// Run the full evaluation. The device must already carry the world's
  /// signal sources (ADS-B sky + TV emitters).
  [[nodiscard]] CalibrationReport calibrate(sdr::SimulatedSdr& device,
                                            const NodeClaims& claims) const;

  [[nodiscard]] const WorldModel& world() const noexcept { return world_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  WorldModel world_;
  PipelineConfig config_;
};

/// Fleet bookkeeping: stores reports, ranks nodes by trust, answers
/// "which nodes can monitor band X from direction Y" queries.
class NodeRegistry {
 public:
  void record(CalibrationReport report);

  [[nodiscard]] const CalibrationReport* find(const std::string& node_id) const noexcept;

  /// Node ids ordered by descending trust score.
  [[nodiscard]] std::vector<std::string> ranked_by_trust() const;

  /// Nodes whose calibration shows `freq_hz` usable and (optionally) the
  /// azimuth open.
  [[nodiscard]] std::vector<std::string> usable_for(double freq_hz,
                                                    std::optional<double> azimuth_deg) const;

  [[nodiscard]] std::size_t size() const noexcept { return reports_.size(); }

 private:
  std::map<std::string, CalibrationReport> reports_;
};

}  // namespace speccal::calib
