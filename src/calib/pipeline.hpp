// End-to-end calibration pipeline and node registry — the paper's §5
// "end-to-end system", assembled from the building blocks:
//   ADS-B survey -> FoV estimate
//   cellular scan + TV sweep -> frequency response
//   fuse -> installation classification -> claim verification -> trust
// One CalibrationReport per node; a NodeRegistry ranks the fleet.
//
// The pipeline exposes two granularities:
//   calibrate()/calibrate_into() — run all stages serially (unchanged API).
//   plan()                       — decompose one node's calibration into a
//     NodeTaskSet of independent stage tasks with declared dependencies
//     (stage_plan()), which the fleet engine wires into a TaskGraph so a
//     StageExecutor can interleave stages across nodes. Both paths execute
//     the same stage bodies; calibrate_into() is literally plan()+run_all().
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "calib/classify.hpp"
#include "calib/fov.hpp"
#include "calib/freqresp.hpp"
#include "calib/hardware.hpp"
#include "calib/lo_calibration.hpp"
#include "calib/metrics.hpp"
#include "calib/retry.hpp"
#include "calib/survey.hpp"
#include "calib/trust.hpp"
#include "cellular/scanner.hpp"
#include "geo/wgs84.hpp"
#include "sdr/emitter.hpp"
#include "tv/power_meter.hpp"

namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

/// Everything that exists around the sensors (shared across nodes).
struct WorldModel {
  std::shared_ptr<const airtraffic::SkySimulator> sky;
  double ground_truth_latency_s = 10.0;
  cellular::CellDatabase cells;
  /// Broadcast TV emitters (same configs used to build device sources).
  std::vector<sdr::EmitterConfig> tv_channels;
  /// Seed of the *world* (transmitters, sky). Node factories derive emitter
  /// waveform RNGs from this — never from a per-node seed — so every node
  /// hears the same physical transmitters and fleet-consensus residuals
  /// compare like with like (scenario::make_world threads it through).
  std::uint64_t seed = 0;
};

/// One entry of the anomaly-scan watchlist: a band the scan stage tunes,
/// captures and summarizes so the fleet-consensus anomaly detector can
/// compare it across nodes. The calibration bands (TV channels) come free
/// from the tv_sweep stage; the watchlist covers bands calibration never
/// captures at RF — ADS-B 1090 MHz and the cellular downlink centers.
struct WatchBand {
  std::string label;            // band id, e.g. "adsb-1090" or "cell-2145"
  double center_hz = 0.0;
  double sample_rate_hz = 2e6;
  double capture_duration_s = 0.02;
};

/// Config for the optional kAnomalyScan stage. Disabled by default: the
/// stage captures extra spectrum, so plain calibration runs stay bitwise
/// identical to builds that predate it.
struct AnomalyScanConfig {
  bool enabled = false;
  double gain_db = 40.0;
  std::vector<WatchBand> bands;

  /// Throws std::invalid_argument naming the field (shared validation
  /// convention, DESIGN.md §13). Only checked when enabled.
  void validate() const;
};

/// Per-band summary captured by the anomaly scan stage.
struct WatchObservation {
  std::string label;
  double center_hz = 0.0;
  double power_dbfs = -200.0;
  /// Normalized lag-1 autocorrelation of the capture (dsp::lag_autocorrelation)
  /// — the occupancy second opinion: ~0 noise/wideband, ~1 CW.
  double autocorr_rho = 0.0;
  bool tune_ok = false;
};

/// In-memory result of the anomaly scan stage. Deliberately NOT part of the
/// report's JSON export: clean-run reports must stay byte-identical whether
/// or not the scan is armed (the detector annotates flagged nodes only).
struct AnomalyScanResult {
  bool ran = false;
  /// Receiver position, recorded so the detector can weight consensus
  /// neighbors geographically without a side-channel lookup.
  geo::Geodetic position;
  std::vector<WatchObservation> bands;
};

struct PipelineConfig {
  SurveyConfig survey;
  FovConfig fov;
  cellular::ScanConfig cell_scan;
  tv::PowerMeterConfig tv_meter;
  FrequencyResponseConfig freqresp;
  ClassifierConfig classifier;
  TrustConfig trust;
  /// Cells considered "nearby" for the scan list.
  double cell_search_radius_m = 30e3;
  /// Use the KNN FoV estimator (paper §5) instead of plain sectors.
  bool use_knn_fov = true;
  /// TV reading below noise floor + margin counts as lost.
  double tv_detect_margin_db = 2.0;
  /// Hardware-fault separation thresholds.
  HardwareDiagnosisConfig hardware;
  /// Reference-oscillator calibration against receivable TV pilots.
  LoCalibrationConfig lo;
  bool run_lo_calibration = true;
  /// Per-stage retry/backoff/deadline/quarantine policy. The default is a
  /// strict passthrough (one attempt, exceptions propagate — the fleet
  /// engine then aborts the node); chaos runs and hardware deployments
  /// raise max_attempts and enable quarantine.
  RetryPolicy retry;
  /// Optional anomaly-detection watchlist sweep (off by default; appended
  /// after every other device stage so it never perturbs calibration
  /// captures). scenario::standard_watchlist() fills the testbed bands.
  AnomalyScanConfig anomaly_scan;
};

/// Complete evaluation of one node.
struct CalibrationReport {
  NodeClaims claims;
  SurveyResult survey;
  FovEstimate fov;
  std::vector<cellular::CellMeasurement> cell_scan;
  std::vector<tv::ChannelPowerReading> tv_readings;
  FrequencyResponseReport frequency_response;
  Classification classification;
  TrustReport trust;
  HardwareDiagnosis hardware;
  LoCalibrationResult lo_calibration;
  /// Watchlist band summaries for the anomaly detector (in-memory only —
  /// never serialized, see AnomalyScanResult).
  AnomalyScanResult anomaly_scan;
  /// Where each stage's wall time / sample budget went.
  StageMetrics metrics;
  /// Per-stage fault history (retries, quarantines). Empty for a clean run;
  /// a stage only appears here when it failed at least once, so fault-free
  /// reports are byte-identical whether or not retry is enabled.
  std::vector<FaultRecord> fault_records;
  /// Non-empty when the run aborted partway (device threw, tune storm, ...);
  /// fields populated before the abort point remain valid. The fleet engine
  /// fills this so one broken node never takes down a batch.
  std::string abort_reason;

  [[nodiscard]] bool aborted() const noexcept { return !abort_reason.empty(); }

  /// True when at least one stage was quarantined (persistent fault or
  /// deadline expiry) — the report is valid but degraded.
  [[nodiscard]] bool quarantined() const noexcept {
    for (const FaultRecord& fr : fault_records)
      if (fr.outcome != FaultOutcome::kRecovered) return true;
    return false;
  }

  /// Machine-readable export for downstream tooling. With
  /// `include_stage_metrics` false the wall-clock stage timings are
  /// omitted, leaving only deterministic measurement content — two runs
  /// over the same samples then serialize byte-identically, which is what
  /// the decode farm's float32 round-trip gate compares.
  void write_json(std::ostream& os, bool include_stage_metrics = true) const;
};

/// One entry of CalibrationPipeline::stage_plan(): a stage the pipeline
/// will run for the current config, its declared prerequisites, and whether
/// it touches the device. Stages with `uses_device` are additionally
/// serialized against each other by the fleet engine (sdr::Device is not
/// thread-safe), in declaration order.
struct StageSpec {
  Stage stage{};
  bool uses_device = false;
  std::vector<Stage> deps;
};

class CalibrationPipeline;

/// One node's calibration, decomposed into runnable stage tasks. Created by
/// CalibrationPipeline::plan(); move-only (tasks capture the internal
/// context by pointer). Run every task (in any order consistent with
/// stage_plan() dependencies — run_all() does it serially), then call
/// finalize() exactly once to merge fault records and apply the
/// quarantine-to-trust feedback. The device, report and trace session given
/// to plan() must outlive the task set.
class NodeTaskSet {
 public:
  struct Task {
    Stage stage{};
    std::function<void()> run;
  };

  NodeTaskSet(NodeTaskSet&&) noexcept;
  NodeTaskSet& operator=(NodeTaskSet&&) noexcept;
  NodeTaskSet(const NodeTaskSet&) = delete;
  NodeTaskSet& operator=(const NodeTaskSet&) = delete;
  ~NodeTaskSet();

  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }

  /// Run every task in declaration order (the serial stage order), then
  /// finalize. Exceptions propagate after a merge-only finalize, so fault
  /// records gathered before the abort survive in the report.
  void run_all();

  /// Merge per-stage fault records into the report (stage-enum order, same
  /// as the serial pipeline appended them) and — unless `aborted` — apply
  /// the quarantine trust feedback. Call exactly once, after every task ran
  /// (or after deciding to abandon the node).
  void finalize(bool aborted = false);

 private:
  friend class CalibrationPipeline;
  struct Context;
  NodeTaskSet();

  std::unique_ptr<Context> ctx_;
  std::vector<Task> tasks_;
};

class CalibrationPipeline {
 public:
  CalibrationPipeline(WorldModel world, PipelineConfig config = {});

  /// Run the full evaluation through the device-agnostic interface. The
  /// device must already carry the world's signal sources (simulation:
  /// ADS-B sky + TV emitters) or receive them off the air (hardware).
  /// When `trace` is non-null, every stage emits one Chrome-trace span
  /// (tagged with the node id) into the session; the report's StageMetrics
  /// are a view over the same clock readings.
  [[nodiscard]] CalibrationReport calibrate(
      sdr::Device& device, const NodeClaims& claims,
      obs::TraceSession* trace = nullptr) const;

  /// Same evaluation, writing into caller-owned storage (the fleet engine
  /// reuses per-worker report slots). `report` is reset first.
  void calibrate_into(sdr::Device& device, const NodeClaims& claims,
                      CalibrationReport& report,
                      obs::TraceSession* trace = nullptr) const;

  /// Decompose one node's calibration into stage tasks. Resets `report`,
  /// records the claims, and runs the (cheap) environment preamble
  /// immediately; the returned tasks carry the per-stage work. Tasks for
  /// the same node must respect stage_plan() dependencies but may otherwise
  /// run on any thread; tasks of *different* plans are fully independent.
  /// `device`, `report` and `trace` must outlive the returned set.
  [[nodiscard]] NodeTaskSet plan(sdr::Device& device, const NodeClaims& claims,
                                 CalibrationReport& report,
                                 obs::TraceSession* trace = nullptr) const;

  /// The stages plan() will emit for this config, in serial execution
  /// order, with their dependencies. Mirrors the tasks of any plan() made
  /// with the same config (index k of stage_plan() describes task k).
  [[nodiscard]] std::vector<StageSpec> stage_plan() const;

  [[nodiscard]] const WorldModel& world() const noexcept { return world_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  WorldModel world_;
  PipelineConfig config_;
};

/// Fleet bookkeeping: stores reports, ranks nodes by trust, answers
/// "which nodes can monitor band X from direction Y" queries.
///
/// Thread-safe: all members take an internal lock, so fleet workers can
/// record results while readers query. Query methods deliberately return
/// snapshot *copies* of the id lists — a view would dangle the moment
/// another thread records — so hold the result, not the registry, in loops.
class NodeRegistry {
 public:
  NodeRegistry() = default;

  /// Takes the report by value; move in to avoid the copy.
  void record(CalibrationReport report);

  /// Pointer into the registry, or nullptr. Stable across later record()
  /// calls (std::map nodes don't move) *except* re-recording the same id,
  /// which replaces the pointee. Don't cache across re-calibrations.
  [[nodiscard]] const CalibrationReport* find(const std::string& node_id) const noexcept;

  /// Node ids ordered by descending trust score (snapshot copy).
  [[nodiscard]] std::vector<std::string> ranked_by_trust() const;

  /// Nodes whose calibration shows `freq_hz` usable and (optionally) the
  /// azimuth open (snapshot copy).
  [[nodiscard]] std::vector<std::string> usable_for(double freq_hz,
                                                    std::optional<double> azimuth_deg) const;

  /// Visit every report (id order) under the registry lock — replaces
  /// find-per-id loops. Don't call registry methods from `fn` (deadlock).
  void for_each_report(const std::function<void(const CalibrationReport&)>& fn) const;

  /// Mutable visit, id order, under the registry lock — how the
  /// HealthMonitor merges health findings into flagged reports. Same rule
  /// as for_each_report: don't call registry methods from `fn`.
  void for_each_report_mutable(const std::function<void(CalibrationReport&)>& fn);

  [[nodiscard]] std::size_t size() const noexcept;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CalibrationReport> reports_;
};

}  // namespace speccal::calib
