#include "calib/runconfig.hpp"

#include <stdexcept>

namespace speccal::calib {

namespace {

void check_retry(const char* prefix, const RetryPolicy& retry) {
  const auto fail = [&](const char* field, const char* what) {
    throw std::invalid_argument(std::string(prefix) + field + " " + what);
  };
  if (retry.max_attempts < 1) fail(".max_attempts", "must be >= 1");
  if (retry.initial_backoff_s < 0.0) fail(".initial_backoff_s", "must be >= 0");
  if (retry.backoff_multiplier < 1.0)
    fail(".backoff_multiplier", "must be >= 1.0");
  if (retry.jitter_fraction < 0.0 || retry.jitter_fraction > 1.0)
    fail(".jitter_fraction", "must be in [0, 1]");
  if (retry.stage_deadline_s < 0.0) fail(".stage_deadline_s", "must be >= 0");
}

}  // namespace

void RunConfig::validate() const {
  check_retry("RunConfig.retry", retry);
  check_retry("RunConfig.pipeline.retry", pipeline.retry);
  if (!(pipeline.survey.duration_s > 0.0))
    throw std::invalid_argument(
        "RunConfig.pipeline.survey.duration_s must be > 0");
  if (!(pipeline.cell_search_radius_m > 0.0))
    throw std::invalid_argument(
        "RunConfig.pipeline.cell_search_radius_m must be > 0");
  if (pipeline.tv_detect_margin_db < 0.0)
    throw std::invalid_argument(
        "RunConfig.pipeline.tv_detect_margin_db must be >= 0");
}

PipelineConfig RunConfig::resolved_pipeline() const {
  PipelineConfig resolved = pipeline;
  if (retry != RetryPolicy{}) resolved.retry = retry;
  return resolved;
}

}  // namespace speccal::calib
