#include "calib/window_planner.hpp"

#include <algorithm>
#include <cmath>

namespace speccal::calib {

double expected_sector_coverage(double aircraft, int sectors) noexcept {
  if (sectors <= 0) return 0.0;
  if (aircraft <= 0.0) return 0.0;
  // P(sector untouched) = (1 - 1/S)^n for n aircraft uniform over S sectors.
  const double p_missed =
      std::pow(1.0 - 1.0 / static_cast<double>(sectors), aircraft);
  return 1.0 - p_missed;
}

Schedule WindowPlanner::plan(const std::vector<TrafficForecast>& forecast) const {
  Schedule out;
  if (forecast.empty()) return out;

  // Aircraft visible during one window: arrival-rate * window plus the
  // standing population already airborne (flights within the radius stay
  // visible for several minutes; approximate the standing count as
  // flights_per_hour * 0.2 — a 12-minute mean transit through the disk).
  auto aircraft_in_window = [&](const TrafficForecast& f) {
    return f.flights_per_hour * (config_.window_s / 3600.0) + f.flights_per_hour * 0.2;
  };

  // Coverage composes as independent misses: after windows with coverages
  // c_i, the union covers 1 - prod(1 - c_i).
  std::vector<bool> used(forecast.size(), false);
  double miss_prob = 1.0;  // probability a sector is still uncovered

  for (std::size_t round = 0; round < config_.max_windows; ++round) {
    double best_gain = 0.0;
    std::size_t best_idx = forecast.size();
    for (std::size_t i = 0; i < forecast.size(); ++i) {
      if (used[i]) continue;
      const double c = expected_sector_coverage(aircraft_in_window(forecast[i]),
                                                config_.azimuth_sectors);
      const double gain = miss_prob * c;
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx >= forecast.size() || best_gain < config_.min_marginal_gain) break;

    const double c = expected_sector_coverage(aircraft_in_window(forecast[best_idx]),
                                              config_.azimuth_sectors);
    ScheduledWindow w;
    w.hour_of_day = forecast[best_idx].hour_of_day;
    w.expected_aircraft = aircraft_in_window(forecast[best_idx]);
    w.expected_new_coverage = best_gain;
    out.windows.push_back(w);
    used[best_idx] = true;
    miss_prob *= 1.0 - c;
  }
  out.expected_total_coverage = 1.0 - miss_prob;
  std::sort(out.windows.begin(), out.windows.end(),
            [](const ScheduledWindow& a, const ScheduledWindow& b) {
              return a.hour_of_day < b.hour_of_day;
            });
  return out;
}

}  // namespace speccal::calib
