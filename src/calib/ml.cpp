#include "calib/ml.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speccal::calib {

namespace {
[[nodiscard]] double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

[[nodiscard]] const BandQuality* find_class(const FrequencyResponseReport& freq,
                                            cellular::SpectrumClass cls) noexcept {
  for (const auto& band : freq.bands)
    if (band.band_class == cls) return &band;
  return nullptr;
}
}  // namespace

MlFeatures MlFeatures::from_report(const CalibrationReport& report) {
  MlFeatures f;
  f.values[0] = std::clamp(report.fov.open_fraction_deg, 0.0, 1.0);
  f.values[1] =
      report.survey.observations.empty()
          ? 0.0
          : static_cast<double>(report.survey.received_count()) /
                static_cast<double>(report.survey.observations.size());

  const auto* low = find_class(report.frequency_response,
                               cellular::SpectrumClass::kLowBand);
  const auto* mid = find_class(report.frequency_response,
                               cellular::SpectrumClass::kMidBand);
  f.values[2] = low && low->sources_received > 0
                    ? std::clamp(low->mean_attenuation_db / 50.0, 0.0, 1.0)
                    : 1.0;
  f.values[3] = mid && mid->sources_received > 0
                    ? std::clamp(mid->mean_attenuation_db / 50.0, 0.0, 1.0)
                    : 1.0;
  f.values[4] = mid && mid->sources_total > 0
                    ? static_cast<double>(mid->sources_received) /
                          static_cast<double>(mid->sources_total)
                    : 0.0;
  f.values[5] = std::clamp(
      report.frequency_response.attenuation_slope_db_per_decade / 50.0, -1.0, 1.0);
  return f;
}

const char* MlFeatures::name(std::size_t index) noexcept {
  static constexpr const char* kNames[kCount] = {
      "fov_open_fraction",   "adsb_received_fraction", "low_band_attenuation",
      "mid_band_attenuation", "mid_band_received",      "attenuation_slope",
  };
  return index < kCount ? kNames[index] : "?";
}

double IndoorClassifier::train(std::span<const MlFeatures> examples,
                               const std::vector<bool>& labels,
                               const TrainConfig& config) {
  if (examples.size() != labels.size() || examples.empty())
    throw std::invalid_argument("IndoorClassifier::train: bad dataset");

  weights_.fill(0.0);
  bias_ = 0.0;
  const double n = static_cast<double>(examples.size());
  double loss = 0.0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::array<double, MlFeatures::kCount> grad{};
    double grad_bias = 0.0;
    loss = 0.0;
    for (std::size_t i = 0; i < examples.size(); ++i) {
      const double p = predict_probability(examples[i]);
      const double y = labels[i] ? 1.0 : 0.0;
      const double err = p - y;
      for (std::size_t k = 0; k < MlFeatures::kCount; ++k)
        grad[k] += err * examples[i].values[k];
      grad_bias += err;
      loss -= y * std::log(std::max(p, 1e-12)) +
              (1.0 - y) * std::log(std::max(1.0 - p, 1e-12));
    }
    loss /= n;
    for (std::size_t k = 0; k < MlFeatures::kCount; ++k) {
      loss += config.l2 * weights_[k] * weights_[k] / 2.0;
      weights_[k] -= config.learning_rate *
                     (grad[k] / n + config.l2 * weights_[k]);
    }
    bias_ -= config.learning_rate * grad_bias / n;
  }
  return loss;
}

double IndoorClassifier::predict_probability(const MlFeatures& features) const noexcept {
  double z = bias_;
  for (std::size_t k = 0; k < MlFeatures::kCount; ++k)
    z += weights_[k] * features.values[k];
  return sigmoid(z);
}

}  // namespace speccal::calib
