// Per-node fleet health scoring — fault history plus consensus divergence.
//
// A crowd-sourced monitoring network is operated on derived signals: which
// nodes are drifting away from the fleet, not just which ones crashed.
// HealthMonitor folds both views into one 0..100 score per node:
//
//   score = max(0, 100 - fault_penalty - crc_penalty - divergence_penalty)
//
//   fault_penalty       retry_penalty (20) once if the node has ANY fault
//                       records, + quarantine_penalty (45) per quarantined
//                       or deadline-expired stage, + abort_penalty (100) if
//                       the run aborted. Zero for a fault-free node.
//   crc_penalty         crc_penalty_max (8) scaled by the node's ADS-B CRC
//                       repair rate (frames_crc_repaired / frames_decoded).
//   divergence_penalty  divergence_penalty_max (7) scaled by the node's
//                       mean per-band TV-power residual against the fleet
//                       median (the consensus-divergence primitive from
//                       "Crowdsourced wireless spectrum anomaly detection"),
//                       saturating at divergence_full_scale_db.
//
// Separation guarantee (locked by tests/test_health.cpp): the two
// clean-node penalties sum to at most 15, strictly less than the smallest
// fault-class penalty (20) — so every node with a fault record scores <= 80
// while every fault-free node scores >= 85, no matter how noisy its
// spectra. unhealthy_threshold sits exactly on that gap.
//
// Outputs: a worst-first HealthReport with JSON export (schema v1),
// `speccal_node_health{node="..."}` gauges, and optional report annotation
// (a kWarning finding appended to flagged nodes only — clean reports stay
// byte-identical, preserving the bitwise parallel==serial invariant).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "calib/pipeline.hpp"

namespace speccal::obs {
class Registry;
}

namespace speccal::calib {

struct HealthConfig {
  double retry_penalty = 20.0;
  double quarantine_penalty = 45.0;
  double abort_penalty = 100.0;
  double crc_penalty_max = 8.0;
  double divergence_penalty_max = 7.0;
  /// Mean |residual| vs the fleet median [dB] at which the divergence
  /// penalty saturates.
  double divergence_full_scale_db = 12.0;
  /// Scores strictly below this are flagged unhealthy. The default sits on
  /// the separation gap: clean floor (85) > threshold-eligible fault
  /// ceiling (80).
  double unhealthy_threshold = 85.0;
  /// Minimum nodes reporting a band before its median counts as consensus.
  std::size_t min_band_population = 3;

  /// Throws std::invalid_argument naming the field (shared validation
  /// convention, DESIGN.md §13). Rejects weight layouts that break the
  /// separation guarantee (crc_penalty_max + divergence_penalty_max must be
  /// < retry_penalty).
  void validate() const;
};

/// One node's health evaluation.
struct NodeHealth {
  std::string node_id;
  double score = 100.0;
  bool unhealthy = false;
  bool aborted = false;
  int recovered_stages = 0;
  int quarantined_stages = 0;  // incl. deadline-expired
  double crc_repair_rate = 0.0;
  double divergence_db = 0.0;  // mean |residual| vs fleet band medians
  double fault_penalty = 0.0;
  double crc_penalty = 0.0;
  double divergence_penalty = 0.0;
};

/// Fleet health snapshot, nodes ordered worst-first (score ascending,
/// node id as the tiebreak so exports are deterministic).
struct HealthReport {
  std::vector<NodeHealth> nodes;
  std::size_t unhealthy_count = 0;
  double unhealthy_threshold = 0.0;

  [[nodiscard]] const NodeHealth* find(const std::string& node_id) const noexcept;

  /// Machine-readable export (golden schema locked by tests):
  ///   {"schema_version":1,"unhealthy_threshold":85,"unhealthy_count":N,
  ///    "nodes":[{"node":...,"score":...,"unhealthy":...,"aborted":...,
  ///              "recovered_stages":...,"quarantined_stages":...,
  ///              "crc_repair_rate":...,"divergence_db":...,
  ///              "penalties":{"fault":...,"crc":...,"divergence":...}}]}
  void write_json(std::ostream& os) const;
};

class HealthMonitor {
 public:
  /// Throws if `config` fails validate().
  explicit HealthMonitor(HealthConfig config = {});

  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

  /// Score every node currently in the registry. Pure read: the registry
  /// and its reports are unchanged.
  [[nodiscard]] HealthReport evaluate(const NodeRegistry& registry) const;

  /// Publish `speccal_node_health{node="..."}` gauges (one per node) plus
  /// the `speccal_health_unhealthy_nodes` fleet gauge.
  void publish(const HealthReport& health, obs::Registry& registry) const;

  /// Append a kWarning health finding to every *flagged* node's trust
  /// findings. Clean nodes are never touched, so fault-free reports stay
  /// byte-identical to a run without health monitoring.
  void annotate(NodeRegistry& registry, const HealthReport& health) const;

 private:
  HealthConfig config_;
};

}  // namespace speccal::calib
