#include "calib/health.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace speccal::calib {

void HealthConfig::validate() const {
  if (retry_penalty < 0.0)
    throw std::invalid_argument("HealthConfig.retry_penalty must be >= 0");
  if (quarantine_penalty < 0.0)
    throw std::invalid_argument("HealthConfig.quarantine_penalty must be >= 0");
  if (abort_penalty < 0.0)
    throw std::invalid_argument("HealthConfig.abort_penalty must be >= 0");
  if (crc_penalty_max < 0.0)
    throw std::invalid_argument("HealthConfig.crc_penalty_max must be >= 0");
  if (divergence_penalty_max < 0.0)
    throw std::invalid_argument(
        "HealthConfig.divergence_penalty_max must be >= 0");
  if (divergence_full_scale_db <= 0.0)
    throw std::invalid_argument(
        "HealthConfig.divergence_full_scale_db must be > 0");
  if (min_band_population < 2)
    throw std::invalid_argument("HealthConfig.min_band_population must be >= 2");
  // The separation guarantee (header): any faulted node must score strictly
  // below any clean node, so the clean-node penalty ceiling has to stay
  // under the smallest fault penalty.
  if (crc_penalty_max + divergence_penalty_max >= retry_penalty)
    throw std::invalid_argument(
        "HealthConfig.crc_penalty_max + divergence_penalty_max must be < "
        "retry_penalty (separation guarantee)");
}

const NodeHealth* HealthReport::find(const std::string& node_id) const noexcept {
  for (const NodeHealth& n : nodes)
    if (n.node_id == node_id) return &n;
  return nullptr;
}

void HealthReport::write_json(std::ostream& os) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::int64_t{1});
  w.key("unhealthy_threshold");
  w.value(unhealthy_threshold);
  w.key("unhealthy_count");
  w.value(static_cast<std::int64_t>(unhealthy_count));
  w.key("nodes");
  w.begin_array();
  for (const NodeHealth& n : nodes) {
    w.begin_object();
    w.key("node");
    w.value(n.node_id);
    w.key("score");
    w.value(n.score);
    w.key("unhealthy");
    w.value(n.unhealthy);
    w.key("aborted");
    w.value(n.aborted);
    w.key("recovered_stages");
    w.value(static_cast<std::int64_t>(n.recovered_stages));
    w.key("quarantined_stages");
    w.value(static_cast<std::int64_t>(n.quarantined_stages));
    w.key("crc_repair_rate");
    w.value(n.crc_repair_rate);
    w.key("divergence_db");
    w.value(n.divergence_db);
    w.key("penalties");
    w.begin_object();
    w.key("fault");
    w.value(n.fault_penalty);
    w.key("crc");
    w.value(n.crc_penalty);
    w.key("divergence");
    w.value(n.divergence_penalty);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  config_.validate();
}

namespace {

double median_of(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

HealthReport HealthMonitor::evaluate(const NodeRegistry& registry) const {
  HealthReport out;
  out.unhealthy_threshold = config_.unhealthy_threshold;

  // Pass 1: fleet consensus — per-RF-channel median TV power across every
  // node that tuned the channel successfully.
  std::map<int, std::vector<double>> band_powers;
  registry.for_each_report([&](const CalibrationReport& report) {
    for (const auto& reading : report.tv_readings)
      if (reading.tune_ok) band_powers[reading.rf_channel].push_back(reading.power_dbfs);
  });
  std::map<int, double> band_median;
  for (auto& [channel, powers] : band_powers)
    if (powers.size() >= config_.min_band_population)
      band_median[channel] = median_of(powers);

  // Pass 2: score each node against its fault history and the consensus.
  registry.for_each_report([&](const CalibrationReport& report) {
    NodeHealth h;
    h.node_id = report.claims.node_id;
    h.aborted = report.aborted();
    for (const FaultRecord& fr : report.fault_records) {
      if (fr.outcome == FaultOutcome::kRecovered) ++h.recovered_stages;
      else ++h.quarantined_stages;
    }
    if (report.survey.total_frames_decoded > 0)
      h.crc_repair_rate =
          static_cast<double>(report.survey.frames_crc_repaired) /
          static_cast<double>(report.survey.total_frames_decoded);
    double residual_sum = 0.0;
    std::size_t residual_bands = 0;
    for (const auto& reading : report.tv_readings) {
      if (!reading.tune_ok) continue;
      const auto it = band_median.find(reading.rf_channel);
      if (it == band_median.end()) continue;
      residual_sum += std::abs(reading.power_dbfs - it->second);
      ++residual_bands;
    }
    if (residual_bands > 0)
      h.divergence_db = residual_sum / static_cast<double>(residual_bands);

    if (!report.fault_records.empty()) h.fault_penalty += config_.retry_penalty;
    h.fault_penalty +=
        config_.quarantine_penalty * static_cast<double>(h.quarantined_stages);
    if (h.aborted) h.fault_penalty += config_.abort_penalty;
    h.crc_penalty =
        config_.crc_penalty_max * std::clamp(h.crc_repair_rate, 0.0, 1.0);
    h.divergence_penalty =
        config_.divergence_penalty_max *
        std::clamp(h.divergence_db / config_.divergence_full_scale_db, 0.0, 1.0);

    h.score = std::max(
        0.0, 100.0 - h.fault_penalty - h.crc_penalty - h.divergence_penalty);
    h.unhealthy = h.score < config_.unhealthy_threshold;
    if (h.unhealthy) ++out.unhealthy_count;
    out.nodes.push_back(std::move(h));
  });

  // Worst-first; node id tiebreak keeps the export deterministic.
  std::sort(out.nodes.begin(), out.nodes.end(),
            [](const NodeHealth& a, const NodeHealth& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.node_id < b.node_id;
            });
  return out;
}

void HealthMonitor::publish(const HealthReport& health,
                            obs::Registry& registry) const {
  for (const NodeHealth& n : health.nodes)
    registry.gauge("speccal_node_health", {{"node", n.node_id}}).set(n.score);
  registry.gauge("speccal_health_unhealthy_nodes")
      .set(static_cast<double>(health.unhealthy_count));
}

void HealthMonitor::annotate(NodeRegistry& registry,
                             const HealthReport& health) const {
  registry.for_each_report_mutable([&](CalibrationReport& report) {
    const NodeHealth* h = health.find(report.claims.node_id);
    if (h == nullptr || !h->unhealthy) return;
    std::ostringstream oss;
    oss << "health score " << util::format_fixed(h->score, 1) << " below "
        << util::format_fixed(health.unhealthy_threshold, 1) << " ("
        << h->quarantined_stages << " quarantined stage(s), "
        << h->recovered_stages << " recovered, divergence "
        << util::format_fixed(h->divergence_db, 2) << " dB)";
    report.trust.findings.push_back({Severity::kWarning, oss.str()});
  });
}

}  // namespace speccal::calib
