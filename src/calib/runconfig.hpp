// Task-oriented run configuration for fleet calibration.
//
// RunConfig gathers what used to be scattered across PipelineConfig::retry
// and FleetConfig::threads into one validated value: what to compute
// (pipeline), how to survive faults (retry), and how to schedule it
// (executor). FleetCalibrator's RunConfig constructor is the preferred
// entry point; the old fields keep working as documented aliases —
// PipelineConfig::retry when RunConfig::retry is default-constructed, and
// FleetConfig::threads when RunConfig::executor.threads is 0.
#pragma once

#include "calib/executor.hpp"
#include "calib/pipeline.hpp"
#include "calib/retry.hpp"

namespace speccal::calib {

struct RunConfig {
  /// What each node's calibration computes (stages, thresholds, world
  /// interaction). Its `retry` member is a deprecated alias — see below.
  PipelineConfig pipeline;
  /// Per-stage fault policy. When left default-constructed, the alias
  /// `pipeline.retry` applies instead (so configs written against the old
  /// API keep their meaning); any non-default value here wins.
  RetryPolicy retry;
  /// Stage-graph executor: thread count and trace sink. `executor.threads`
  /// of 0 defers to the deprecated alias FleetConfig::threads (and then to
  /// hardware concurrency).
  ExecutorConfig executor;

  /// Throws std::invalid_argument naming the offending field (e.g.
  /// "RunConfig.retry.max_attempts must be >= 1") when a value is out of
  /// range. FleetCalibrator's RunConfig constructor calls this.
  void validate() const;

  /// The PipelineConfig a calibrator should actually run: `pipeline` with
  /// the canonical `retry` folded in (unless `retry` is default — then the
  /// alias `pipeline.retry` is kept as-is).
  [[nodiscard]] PipelineConfig resolved_pipeline() const;
};

}  // namespace speccal::calib
