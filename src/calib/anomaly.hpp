// Fleet-consensus RF anomaly detection (DESIGN.md §16).
//
// A crowd-sourced network's best interference detector is the crowd: a
// jammer, spoofer or rogue transmitter is *local*, so the victim's band
// powers diverge from what geographically close, healthy peers measure.
// AnomalyDetector turns that into a typed report:
//
//   1. Consensus — for every measured band (the six TV channels plus the
//      anomaly-scan watchlist), each node's reference level is the
//      *neighbor-weighted median* of the other nodes' powers, weighted by
//      a Gaussian distance kernel exp(-d^2 / 2 sigma^2) over the scan
//      stage's recorded positions. Weighting by proximity keeps a dense
//      fleet's site-to-site propagation differences (rooftop vs indoor)
//      from masquerading as interference; when positions are unavailable
//      the detector degrades to the plain fleet median.
//   2. Residual — one-sided: only a node *hotter* than its consensus by
//      residual_threshold_db flags (a cold band is a sensitivity/health
//      problem, HealthMonitor's beat).
//   3. Typing — flagged bands are classified with the lag-1
//      autocorrelation occupancy cross-check (monitor::, dsp::):
//        * any "adsb-*" watch band hot            -> kGhostAdsb
//        * any "cell-*" watch band hot            -> kRoguePss
//        * >= jammer_min_bands TV channels hot    -> kWidebandJammer
//        * exactly 2 TV channels hot, coherent    -> kIntermodPair
//        * 1 TV channel hot                       -> kSpuriousEmitter
//      (rho ~1 = coherent carrier; ATSC sits near 0.4; wideband noise
//      near 0 — see tv::ChannelPowerReading::autocorr_rho.)
//
// Clean-fleet guarantee (the HealthMonitor convention, locked by
// tests/test_anomaly.cpp): evaluate() is a pure read, annotate() touches
// flagged nodes only, and a fault-free fleet produces zero findings — so
// an armed clean run's reports stay byte-identical to an unarmed one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "calib/pipeline.hpp"

namespace speccal::obs {
class Registry;
}

namespace speccal::calib {

struct AnomalyConfig {
  /// One-sided residual above the neighbor consensus that flags a band.
  double residual_threshold_db = 6.0;
  /// Gaussian distance kernel scale for neighbor weighting [m]. The
  /// testbed's sites sit 22-25 m apart; sigma = 5 makes co-sited peers
  /// (shared multipath environment) dominate the consensus so the large
  /// rooftop-vs-indoor propagation spread never reads as an anomaly.
  double distance_sigma_m = 5.0;
  /// Minimum nodes reporting a band before its consensus counts
  /// (HealthMonitor convention), and minimum summed neighbor weight per
  /// node when geographic weighting is active.
  std::size_t min_band_population = 3;
  double min_neighbor_weight = 1.5;
  /// Lag-1 |rho| at or above which a flagged TV band counts as coherent.
  double cw_rho_threshold = 0.6;
  /// Hot TV channels at or above which a node types as a wideband jammer.
  std::size_t jammer_min_bands = 3;

  /// Throws std::invalid_argument naming the field (shared validation
  /// convention, DESIGN.md §13).
  void validate() const;
};

enum class AnomalyKind : std::uint8_t {
  kWidebandJammer,
  kSpuriousEmitter,
  kIntermodPair,
  kGhostAdsb,
  kRoguePss,
};

[[nodiscard]] const char* to_string(AnomalyKind kind) noexcept;

/// One typed detection on one node. `bands` lists the flagged band keys
/// ("tv:22", "watch:adsb-1090", ...), worst_residual_db the largest
/// excursion over consensus among them, max_rho the strongest coherence.
struct AnomalyFinding {
  AnomalyKind kind = AnomalyKind::kSpuriousEmitter;
  std::string node_id;
  std::vector<std::string> bands;
  double worst_residual_db = 0.0;
  double max_rho = 0.0;
};

/// Fleet anomaly snapshot, findings ordered worst-first (residual
/// descending; node id, then kind as tiebreaks so exports are
/// deterministic).
struct AnomalyReport {
  std::vector<AnomalyFinding> findings;
  std::size_t nodes_evaluated = 0;
  std::size_t flagged_nodes = 0;
  /// Distinct band keys that reached consensus population.
  std::size_t bands_evaluated = 0;
  /// True when every node carried a scan position and the Gaussian
  /// neighbor weighting was applied (false = plain fleet median).
  bool geo_weighted = false;
  double residual_threshold_db = 0.0;

  [[nodiscard]] const AnomalyFinding* find(const std::string& node_id) const noexcept;
  [[nodiscard]] bool flagged(const std::string& node_id) const noexcept;

  /// Machine-readable export (golden schema locked by tests):
  ///   {"schema_version":1,"residual_threshold_db":6,"geo_weighted":true,
  ///    "nodes_evaluated":N,"bands_evaluated":B,"flagged_nodes":M,
  ///    "findings":[{"node":...,"kind":"wideband-jammer",
  ///                 "worst_residual_db":...,"max_rho":...,
  ///                 "bands":["tv:14",...]}]}
  void write_json(std::ostream& os) const;
};

class AnomalyDetector {
 public:
  /// Throws if `config` fails validate().
  explicit AnomalyDetector(AnomalyConfig config = {});

  [[nodiscard]] const AnomalyConfig& config() const noexcept { return config_; }

  /// Evaluate every node currently in the registry against the fleet
  /// consensus. Pure read: the registry and its reports are unchanged.
  [[nodiscard]] AnomalyReport evaluate(const NodeRegistry& registry) const;

  /// Publish speccal_anomaly_* metrics: the findings counter, the flagged
  /// node gauge and one per-kind findings gauge.
  void publish(const AnomalyReport& report, obs::Registry& registry) const;

  /// Append a kWarning anomaly finding to every *flagged* node's trust
  /// findings and journal an "anomaly_flagged" event per finding. Clean
  /// nodes are never touched, so a clean fleet's reports stay
  /// byte-identical to a run without anomaly detection.
  void annotate(NodeRegistry& registry, const AnomalyReport& report) const;

 private:
  AnomalyConfig config_;
};

}  // namespace speccal::calib
