#include "calib/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "adsb/ppm.hpp"
#include "dsp/iq.hpp"
#include "obs/metrics.hpp"
#include "prop/pathloss.hpp"
#include "sdr/rx_environment.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace speccal::calib {

// The fleet engine copies these freely across worker threads; keep them
// value types.
static_assert(std::is_copy_constructible_v<WorldModel>);
static_assert(std::is_copy_constructible_v<PipelineConfig>);

void AnomalyScanConfig::validate() const {
  if (!enabled) return;
  if (!(gain_db >= 0.0 && gain_db <= 90.0))
    throw std::invalid_argument(
        "AnomalyScanConfig.gain_db must be in [0, 90] (got " +
        std::to_string(gain_db) + ")");
  if (bands.empty())
    throw std::invalid_argument(
        "AnomalyScanConfig.bands must be non-empty when enabled");
  for (const WatchBand& band : bands) {
    if (band.label.empty())
      throw std::invalid_argument("WatchBand.label must be non-empty");
    if (!(band.center_hz > 0.0))
      throw std::invalid_argument("WatchBand.center_hz must be positive (band " +
                                  band.label + ")");
    if (!(band.sample_rate_hz > 0.0))
      throw std::invalid_argument(
          "WatchBand.sample_rate_hz must be positive (band " + band.label + ")");
    if (!(band.capture_duration_s > 0.0))
      throw std::invalid_argument(
          "WatchBand.capture_duration_s must be positive (band " + band.label +
          ")");
  }
}

CalibrationPipeline::CalibrationPipeline(WorldModel world, PipelineConfig config)
    : world_(std::move(world)), config_(config) {
  config_.anomaly_scan.validate();
}

// Everything a node's stage tasks share. Owned by the NodeTaskSet; tasks
// capture it by raw pointer, so the set must outlive every task execution.
// Fault records are segregated per stage (stages of one node may run on
// different threads under the executor) and merged by finalize() in stage
// enum order — exactly the order the serial pipeline appended them.
struct NodeTaskSet::Context {
  const CalibrationPipeline* pipeline = nullptr;
  sdr::Device* device = nullptr;
  CalibrationReport* report = nullptr;
  obs::TraceSession* trace = nullptr;
  sdr::RxEnvironment rx;
  sdr::RxEnvironment clear;
  double tv_noise_dbm = 0.0;
  std::vector<BandMeasurement> cell_measurements;
  std::vector<BandMeasurement> tv_measurements;
  std::array<std::vector<FaultRecord>, kStageCount> records;
  bool finalized = false;
};

NodeTaskSet::NodeTaskSet() : ctx_(std::make_unique<Context>()) {}
NodeTaskSet::NodeTaskSet(NodeTaskSet&&) noexcept = default;
NodeTaskSet& NodeTaskSet::operator=(NodeTaskSet&&) noexcept = default;
NodeTaskSet::~NodeTaskSet() = default;

void NodeTaskSet::run_all() {
  try {
    for (const Task& task : tasks_) task.run();
  } catch (...) {
    finalize(/*aborted=*/true);  // keep fault records gathered before the abort
    throw;
  }
  finalize(/*aborted=*/false);
}

void NodeTaskSet::finalize(bool aborted) {
  if (ctx_->finalized) return;
  ctx_->finalized = true;
  CalibrationReport& report = *ctx_->report;
  for (auto& stage_records : ctx_->records)
    for (FaultRecord& fr : stage_records)
      report.fault_records.push_back(std::move(fr));
  if (aborted) return;

  // Quarantined stages feed back into trust: the marketplace must see a
  // node that could not complete a stage as strictly less dependable.
  std::size_t quarantined_stages = 0;
  for (const FaultRecord& fr : report.fault_records) {
    if (fr.outcome == FaultOutcome::kRecovered) continue;
    ++quarantined_stages;
    report.trust.findings.push_back(
        {Severity::kViolation,
         std::string("stage ") + to_string(fr.stage) + " quarantined after " +
             std::to_string(fr.attempts) + " attempt(s): " + fr.last_error});
  }
  for (std::size_t i = 0; i < quarantined_stages; ++i)
    report.trust.score *= 0.5;  // each lost stage halves the trust score
}

CalibrationReport CalibrationPipeline::calibrate(sdr::Device& device,
                                                 const NodeClaims& claims,
                                                 obs::TraceSession* trace) const {
  CalibrationReport report;
  calibrate_into(device, claims, report, trace);
  return report;
}

void CalibrationPipeline::calibrate_into(sdr::Device& device,
                                         const NodeClaims& claims,
                                         CalibrationReport& report,
                                         obs::TraceSession* trace) const {
  plan(device, claims, report, trace).run_all();
}

std::vector<StageSpec> CalibrationPipeline::stage_plan() const {
  // Device-touching stages (survey, cell_scan, tv_sweep, lo_cal) form a
  // dependency chain: sdr::Device is not thread-safe, and chaining them also
  // pins the order of device I/O so parallel runs replay the exact serial
  // capture sequence (the bitwise-determinism gate). Pure stages (fov, fuse)
  // hang off their data inputs only.
  std::vector<StageSpec> specs;
  const bool have_sky = static_cast<bool>(world_.sky);
  const std::vector<Stage> after_survey =
      have_sky ? std::vector<Stage>{Stage::kSurvey} : std::vector<Stage>{};
  if (have_sky) specs.push_back({Stage::kSurvey, /*uses_device=*/true, {}});
  specs.push_back({Stage::kFov, /*uses_device=*/false, after_survey});
  specs.push_back({Stage::kCellScan, /*uses_device=*/true, after_survey});
  specs.push_back({Stage::kTvSweep, /*uses_device=*/true, {Stage::kCellScan}});
  specs.push_back({Stage::kFuse, /*uses_device=*/false,
                   {Stage::kFov, Stage::kCellScan, Stage::kTvSweep}});
  if (config_.run_lo_calibration)
    specs.push_back({Stage::kLoCal, /*uses_device=*/true, {Stage::kTvSweep}});
  // The watchlist sweep runs after every calibration capture, so arming it
  // cannot perturb the measurements earlier stages would otherwise take —
  // the clean-run bitwise guarantee the anomaly tests lock.
  if (config_.anomaly_scan.enabled)
    specs.push_back({Stage::kAnomalyScan, /*uses_device=*/true,
                     {config_.run_lo_calibration ? Stage::kLoCal
                                                 : Stage::kTvSweep}});
  return specs;
}

NodeTaskSet CalibrationPipeline::plan(sdr::Device& device,
                                      const NodeClaims& claims,
                                      CalibrationReport& report,
                                      obs::TraceSession* trace) const {
  report = CalibrationReport{};
  report.claims = claims;
  obs::Registry::global().counter("speccal_calib_runs_total").add();

  NodeTaskSet set;
  NodeTaskSet::Context* ctx = set.ctx_.get();
  ctx->pipeline = this;
  ctx->device = &device;
  ctx->report = &report;
  ctx->trace = trace;

  // Receiver surroundings: simulation-backed devices expose their ground
  // truth through the SimControl capability; real hardware contributes its
  // position only, and the model-level expectations below then assume an
  // unobstructed site.
  if (sdr::SimControl* sim = device.sim_control()) ctx->rx = sim->rx_environment();
  else ctx->rx.position = device.position();
  // Clear-sky twin of this receiver: same place/antenna, no obstructions.
  ctx->clear = ctx->rx;
  ctx->clear.obstructions = nullptr;
  ctx->clear.fading = nullptr;
  ctx->tv_noise_dbm = prop::noise_floor_dbm(
      config_.tv_meter.measure_bandwidth_hz, device.info().noise_figure_db);

  // Each task wraps its stage body in the same StageTimer + RetryRunner
  // sandwich the serial pipeline used. Runners get the device only for
  // device-touching stages, so a retried pure stage can never advance the
  // simulated stream clock. Each attempt starts from the stage's reset
  // closure, so a retried (or quarantined) stage never leaks a partial
  // attempt into the report.
  const auto make_task = [this, ctx](Stage stage, bool uses_device,
                                     std::function<void()> reset,
                                     std::function<void()> body) {
    NodeTaskSet::Task task;
    task.stage = stage;
    task.run = [this, ctx, stage, uses_device, reset = std::move(reset),
                body = std::move(body)] {
      StageTimer timer(ctx->report->metrics, stage, ctx->trace,
                       ctx->report->claims.node_id);
      RetryRunner runner(config_.retry, ctx->report->claims.node_id,
                         uses_device ? ctx->device : nullptr, ctx->trace);
      runner.run(stage, ctx->records[static_cast<std::size_t>(stage)], reset,
                 body);
    };
    return task;
  };

  for (const StageSpec& spec : stage_plan()) {
    switch (spec.stage) {
      case Stage::kSurvey:
        // --- 1. ADS-B directional survey --------------------------------
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->survey = SurveyResult{};
              ctx->report->metrics.at(Stage::kSurvey) = StageSample{};
            },
            [this, ctx] {
              airtraffic::GroundTruthService gt(*world_.sky,
                                                world_.ground_truth_latency_s);
              AdsbSurvey survey(config_.survey);
              ctx->report->survey = survey.run(*ctx->device, *world_.sky, gt);
              StageSample& sample = ctx->report->metrics.at(Stage::kSurvey);
              sample.frames_decoded = ctx->report->survey.total_frames_decoded;
              if (config_.survey.fidelity == Fidelity::kWaveform)
                sample.samples_captured = static_cast<std::uint64_t>(
                    config_.survey.duration_s * adsb::kPpmSampleRateHz);
            }));
        break;
      case Stage::kFov:
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] { ctx->report->fov = FovEstimate{}; },
            [this, ctx] {
              ctx->report->fov =
                  config_.use_knn_fov
                      ? estimate_fov_knn(ctx->report->survey, config_.fov)
                      : estimate_fov_sectors(ctx->report->survey, config_.fov);
            }));
        break;
      case Stage::kCellScan:
        // --- 2. Cellular scan -------------------------------------------
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->cell_scan.clear();
              ctx->cell_measurements.clear();
            },
            [this, ctx] {
              cellular::CellScanner scanner(config_.cell_scan);
              const auto nearby = world_.cells.near(ctx->rx.position,
                                                    config_.cell_search_radius_m);
              ctx->report->cell_scan = scanner.scan(
                  nearby, ctx->rx, ctx->device->info().frontend_loss_db);
              for (const auto& meas : ctx->report->cell_scan) {
                const auto expected = scanner.measure(meas.cell, ctx->clear);
                BandMeasurement bm;
                bm.kind = SignalKind::kCellular;
                std::ostringstream label;
                label << meas.cell.operator_name << " B" << meas.cell.band
                      << " (" << meas.cell.dl_freq_hz / 1e6 << " MHz)";
                bm.source_label = label.str();
                bm.freq_hz = meas.cell.dl_freq_hz;
                bm.expected_dbm = expected.rsrp_dbm;
                if (meas.decoded) bm.measured_dbm = meas.rsrp_dbm;
                bm.azimuth_deg =
                    geo::bearing_deg(ctx->rx.position, meas.cell.position);
                ctx->cell_measurements.push_back(std::move(bm));
              }
            }));
        break;
      case Stage::kTvSweep:
        // --- 3. Broadcast TV sweep --------------------------------------
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->tv_readings.clear();
              ctx->tv_measurements.clear();
              ctx->report->metrics.at(Stage::kTvSweep) = StageSample{};
            },
            [this, ctx] {
              tv::PowerMeter meter(config_.tv_meter);
              for (const auto& emitter : world_.tv_channels) {
                const auto channel =
                    tv::channel_for_frequency(emitter.carrier_hz);
                if (!channel) continue;
                const auto reading = meter.measure_channel(*ctx->device, *channel);
                ctx->report->metrics.at(Stage::kTvSweep).samples_captured +=
                    reading.samples_used;
                ctx->report->tv_readings.push_back(reading);

                // Clear-sky expectation straight from the link budget.
                sdr::FixedEmitterSource probe(emitter, util::Rng(1));
                BandMeasurement bm;
                bm.kind = SignalKind::kTv;
                std::ostringstream label;
                label << "TV ch " << *channel << " ("
                      << emitter.carrier_hz / 1e6 << " MHz)";
                bm.source_label = label.str();
                bm.freq_hz = emitter.carrier_hz;
                bm.expected_dbm = probe.received_power_dbm(ctx->clear);
                if (reading.tune_ok &&
                    reading.power_dbm >
                        ctx->tv_noise_dbm + config_.tv_detect_margin_db)
                  bm.measured_dbm = reading.power_dbm;
                bm.azimuth_deg =
                    geo::bearing_deg(ctx->rx.position, emitter.position);
                ctx->tv_measurements.push_back(std::move(bm));
              }
            }));
        break;
      case Stage::kFuse:
        // --- 4. Fuse, classify, verify ----------------------------------
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->frequency_response = FrequencyResponseReport{};
              ctx->report->classification = Classification{};
              ctx->report->trust = TrustReport{};
              ctx->report->hardware = HardwareDiagnosis{};
            },
            [this, ctx] {
              CalibrationReport& report = *ctx->report;
              std::vector<BandMeasurement> measurements;
              measurements.reserve(ctx->cell_measurements.size() +
                                   ctx->tv_measurements.size());
              measurements.insert(measurements.end(),
                                  ctx->cell_measurements.begin(),
                                  ctx->cell_measurements.end());
              measurements.insert(measurements.end(),
                                  ctx->tv_measurements.begin(),
                                  ctx->tv_measurements.end());
              report.frequency_response = evaluate_frequency_response(
                  std::move(measurements), config_.freqresp);
              report.classification = classify_installation(
                  report.fov, report.frequency_response, config_.classifier);
              report.trust = evaluate_trust(report.claims, report.survey,
                                            report.fov,
                                            report.frequency_response,
                                            report.classification,
                                            config_.trust);

              // --- 5. Hardware separation -------------------------------
              report.hardware = diagnose_hardware(report.frequency_response,
                                                  report.fov, config_.hardware);
            }));
        break;
      case Stage::kLoCal:
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->lo_calibration = LoCalibrationResult{};
              ctx->report->metrics.at(Stage::kLoCal) = StageSample{};
            },
            [this, ctx] {
              // Only pilot-hunt on channels the sweep showed as receivable.
              CalibrationReport& report = *ctx->report;
              std::vector<int> receivable;
              for (const auto& reading : report.tv_readings)
                if (reading.tune_ok &&
                    reading.power_dbm >
                        ctx->tv_noise_dbm + config_.tv_detect_margin_db)
                  receivable.push_back(reading.rf_channel);
              report.lo_calibration =
                  calibrate_lo(*ctx->device, receivable, config_.lo);
              report.metrics.at(Stage::kLoCal).samples_captured +=
                  static_cast<std::uint64_t>(
                      report.lo_calibration.pilots.size()) *
                  static_cast<std::uint64_t>(config_.lo.sample_rate_hz *
                                             config_.lo.capture_duration_s);
            }));
        break;
      case Stage::kAnomalyScan:
        // --- 6. Anomaly watchlist sweep ---------------------------------
        set.tasks_.push_back(make_task(
            spec.stage, spec.uses_device,
            [ctx] {
              ctx->report->anomaly_scan = AnomalyScanResult{};
              ctx->report->metrics.at(Stage::kAnomalyScan) = StageSample{};
            },
            [this, ctx] {
              CalibrationReport& report = *ctx->report;
              report.anomaly_scan.position = ctx->rx.position;
              for (const WatchBand& band : config_.anomaly_scan.bands) {
                WatchObservation obs;
                obs.label = band.label;
                obs.center_hz = band.center_hz;
                ctx->device->set_gain_mode(sdr::GainMode::kManual);
                ctx->device->set_gain_db(config_.anomaly_scan.gain_db);
                obs.tune_ok =
                    ctx->device->tune(band.center_hz, band.sample_rate_hz);
                if (obs.tune_ok) {
                  const auto count = static_cast<std::size_t>(
                      band.capture_duration_s * band.sample_rate_hz);
                  const dsp::Buffer capture = ctx->device->capture(count);
                  obs.power_dbfs = dsp::mean_power_dbfs(capture);
                  obs.autocorr_rho = dsp::lag_autocorrelation(capture);
                  report.metrics.at(Stage::kAnomalyScan).samples_captured +=
                      capture.size();
                }
                report.anomaly_scan.bands.push_back(std::move(obs));
              }
              report.anomaly_scan.ran = true;
            }));
        break;
    }
  }
  return set;
}

void CalibrationReport::write_json(std::ostream& os,
                                   bool include_stage_metrics) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("node_id");
  w.value(claims.node_id);
  w.key("aborted");
  w.value(aborted());
  if (aborted()) {
    w.key("abort_reason");
    w.value(abort_reason);
  }
  w.key("quarantined");
  w.value(quarantined());
  if (!fault_records.empty()) {
    w.key("fault_records");
    w.begin_array();
    for (const auto& fr : fault_records) {
      w.begin_object();
      w.key("stage");
      w.value(to_string(fr.stage));
      w.key("attempts");
      w.value(static_cast<std::int64_t>(fr.attempts));
      w.key("outcome");
      w.value(to_string(fr.outcome));
      w.key("degraded");
      w.value(fr.degraded);
      w.key("backoff_total_s");
      w.value(fr.backoff_total_s);
      w.key("error");
      w.value(fr.last_error);
      w.end_object();
    }
    w.end_array();
  }

  w.key("survey");
  w.begin_object();
  w.key("aircraft_in_truth");
  w.value(survey.observations.size());
  w.key("aircraft_received");
  w.value(survey.received_count());
  w.key("frames_decoded");
  w.value(static_cast<std::int64_t>(survey.total_frames_decoded));
  w.key("frames_crc_repaired");
  w.value(static_cast<std::int64_t>(survey.frames_crc_repaired));
  w.key("unmatched_receptions");
  w.value(static_cast<std::int64_t>(survey.unmatched_receptions));
  w.end_object();

  w.key("field_of_view");
  w.begin_object();
  w.key("open_fraction");
  w.value(fov.open_fraction_deg);
  w.key("open_sectors");
  w.value(fov.open_sectors.to_string());
  w.key("usable_observations");
  w.value(fov.usable_observations);
  w.end_object();

  w.key("cell_scan");
  w.begin_array();
  for (const auto& m : cell_scan) {
    w.begin_object();
    w.key("band");
    w.value(m.cell.band);
    w.key("earfcn");
    w.value(static_cast<std::int64_t>(m.cell.earfcn));
    w.key("freq_mhz");
    w.value(m.cell.dl_freq_hz / 1e6);
    w.key("decoded");
    w.value(m.decoded);
    if (m.decoded) {
      w.key("rsrp_dbm");
      w.value(m.rsrp_dbm);
    }
    w.end_object();
  }
  w.end_array();

  w.key("tv_sweep");
  w.begin_array();
  for (const auto& r : tv_readings) {
    w.begin_object();
    w.key("channel");
    w.value(r.rf_channel);
    w.key("freq_mhz");
    w.value(r.center_hz / 1e6);
    w.key("power_dbfs");
    w.value(r.power_dbfs);
    w.end_object();
  }
  w.end_array();

  w.key("frequency_response");
  w.begin_object();
  w.key("mean_attenuation_db");
  w.value(frequency_response.mean_attenuation_db);
  w.key("slope_db_per_decade");
  w.value(frequency_response.attenuation_slope_db_per_decade);
  w.key("bands");
  w.begin_array();
  for (const auto& b : frequency_response.bands) {
    w.begin_object();
    w.key("class");
    w.value(cellular::to_string(b.band_class));
    w.key("usable");
    w.value(b.usable);
    w.key("mean_attenuation_db");
    w.value(b.mean_attenuation_db);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("classification");
  w.begin_object();
  w.key("type");
  w.value(to_string(classification.type));
  w.key("confidence");
  w.value(classification.confidence);
  w.key("rationale");
  w.begin_array();
  for (const auto& reason : classification.rationale) w.value(reason);
  w.end_array();
  w.end_object();

  w.key("hardware");
  w.begin_object();
  w.key("cable_fault_suspected");
  w.value(hardware.cable_fault_suspected);
  w.key("estimated_cable_loss_db");
  w.value(hardware.estimated_cable_loss_db);
  w.key("antenna_band_mismatch");
  w.value(hardware.antenna_band_mismatch);
  w.key("notes");
  w.begin_array();
  for (const auto& note : hardware.notes) w.value(note);
  w.end_array();
  w.end_object();

  w.key("lo_calibration");
  w.begin_object();
  w.key("usable");
  w.value(lo_calibration.usable());
  w.key("ppm");
  w.value(lo_calibration.ppm);
  w.key("pilots_used");
  w.value(lo_calibration.valid_count);
  w.end_object();

  w.key("trust");
  w.begin_object();
  w.key("score");
  w.value(trust.score);
  w.key("findings");
  w.begin_array();
  for (const auto& f : trust.findings) {
    w.begin_object();
    w.key("severity");
    w.value(f.severity == Severity::kViolation
                ? "violation"
                : (f.severity == Severity::kWarning ? "warning" : "info"));
    w.key("description");
    w.value(f.description);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  if (include_stage_metrics) {
    w.key("stage_metrics");
    metrics.write_json(w);
  }

  w.end_object();
}

void NodeRegistry::record(CalibrationReport report) {
  const std::scoped_lock lock(mutex_);
  reports_.insert_or_assign(report.claims.node_id, std::move(report));
}

const CalibrationReport* NodeRegistry::find(const std::string& node_id) const noexcept {
  const std::scoped_lock lock(mutex_);
  const auto it = reports_.find(node_id);
  return it == reports_.end() ? nullptr : &it->second;
}

std::vector<std::string> NodeRegistry::ranked_by_trust() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(reports_.size());
  for (const auto& [id, report] : reports_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [&](const std::string& a, const std::string& b) {
    return reports_.at(a).trust.score > reports_.at(b).trust.score;
  });
  return ids;
}

std::vector<std::string> NodeRegistry::usable_for(double freq_hz,
                                                  std::optional<double> azimuth_deg) const {
  const auto cls = cellular::classify_frequency(freq_hz);
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [id, report] : reports_) {
    bool band_ok = false;
    for (const auto& b : report.frequency_response.bands)
      if (b.band_class == cls && b.usable) band_ok = true;
    if (!band_ok) continue;
    if (azimuth_deg && !report.fov.open_sectors.contains(*azimuth_deg)) continue;
    out.push_back(id);
  }
  return out;
}

void NodeRegistry::for_each_report(
    const std::function<void(const CalibrationReport&)>& fn) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [id, report] : reports_) fn(report);
}

void NodeRegistry::for_each_report_mutable(
    const std::function<void(CalibrationReport&)>& fn) {
  const std::scoped_lock lock(mutex_);
  for (auto& [id, report] : reports_) fn(report);
}

std::size_t NodeRegistry::size() const noexcept {
  const std::scoped_lock lock(mutex_);
  return reports_.size();
}

}  // namespace speccal::calib
