#include "calib/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace speccal::calib {

namespace {

/// Reject graphs the executor cannot drain, before any thread spawns:
/// tasks with no body, and dependency cycles (Kahn's algorithm — if the
/// zero-prerequisite frontier can't reach every task, some subset is
/// mutually blocked).
void validate_graph(const TaskGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::size_t> remaining(n);
  std::vector<TaskGraph::TaskId> frontier;
  for (TaskGraph::TaskId id = 0; id < n; ++id) {
    if (!graph.body(id))
      throw std::invalid_argument("StageExecutor: task '" + graph.label(id) +
                                  "' has no body");
    remaining[id] = graph.prerequisite_count(id);
    if (remaining[id] == 0) frontier.push_back(id);
  }
  std::size_t drained = 0;
  while (!frontier.empty()) {
    const TaskGraph::TaskId id = frontier.back();
    frontier.pop_back();
    ++drained;
    for (const TaskGraph::TaskId succ : graph.successors(id))
      if (--remaining[succ] == 0) frontier.push_back(succ);
  }
  if (drained != n)
    throw std::invalid_argument(
        "StageExecutor: task graph has a dependency cycle");
}

void record_failure(ExecutorStats& stats, const char* what) {
  ++stats.tasks_failed;
  if (stats.first_error.empty()) stats.first_error = what;
}

/// Run one task body, tracing and failure-counting. Returns nothing the
/// scheduler cares about: failures are counted, never propagated, so the
/// graph always drains.
void execute_task(const TaskGraph& graph, TaskGraph::TaskId id,
                  obs::TraceSession* trace, bool stolen, ExecutorStats& stats) {
  obs::Span span;
  if (trace != nullptr) {
    span = obs::Span(trace, graph.label(id), "task");
    if (stolen) span.arg("stolen", static_cast<std::int64_t>(1));
  }
  ++stats.tasks_run;
  if (stolen) ++stats.tasks_stolen;
  try {
    graph.body(id)();
  } catch (const std::exception& e) {
    record_failure(stats, e.what());
    if (span.active()) span.arg("error", e.what());
  } catch (...) {
    record_failure(stats, "unknown exception");
    if (span.active()) span.arg("error", "unknown exception");
  }
}

}  // namespace

StageExecutor::StageExecutor(ExecutorConfig config) : config_(config) {}

unsigned StageExecutor::effective_threads(std::size_t tasks) const noexcept {
  unsigned threads = config_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  const std::size_t cap = tasks > 0 ? tasks : 1;
  if (threads > cap) threads = static_cast<unsigned>(cap);
  return threads;
}

ExecutorStats StageExecutor::run_inline(const TaskGraph& graph) {
  ExecutorStats stats;
  stats.threads_used = 1;
  const std::size_t n = graph.size();
  std::vector<std::size_t> remaining(n);
  // LIFO stack, roots pushed in reverse id order: the lowest-id root runs
  // first and its subgraph is explored depth-first, which on the fleet graph
  // reproduces the serial per-node stage order exactly.
  std::vector<TaskGraph::TaskId> stack;
  for (TaskGraph::TaskId id = n; id-- > 0;) {
    remaining[id] = graph.prerequisite_count(id);
    if (remaining[id] == 0) stack.push_back(id);
  }
  while (!stack.empty()) {
    const TaskGraph::TaskId id = stack.back();
    stack.pop_back();
    execute_task(graph, id, config_.trace, /*stolen=*/false, stats);
    const auto& succs = graph.successors(id);
    for (std::size_t k = succs.size(); k-- > 0;) {
      if (--remaining[succs[k]] == 0) stack.push_back(succs[k]);
    }
  }
  return stats;
}

ExecutorStats StageExecutor::run(const TaskGraph& graph) {
  validate_graph(graph);
  obs::Registry::global().counter("speccal_executor_runs_total").add();
  // The coordinating thread keeps lane 0.
  if (config_.trace != nullptr) config_.trace->name_thread("main", 0);

  const unsigned threads = effective_threads(graph.size());
  ExecutorStats stats;
  if (graph.empty()) {
    stats.threads_used = threads;
  } else if (threads <= 1) {
    stats = run_inline(graph);
  } else {
    const std::size_t n = graph.size();

    struct Worker {
      std::mutex mutex;
      std::deque<TaskGraph::TaskId> queue;  // back = owner end, front = steal end
      ExecutorStats tally;
    };
    auto workers = std::make_unique<Worker[]>(threads);

    std::vector<std::atomic<std::size_t>> remaining(n);
    std::atomic<std::size_t> tasks_left{n};
    std::atomic<bool> finished{false};
    std::mutex cv_mutex;
    std::condition_variable cv;
    std::size_t wake_epoch = 0;  // guarded by cv_mutex

    // Deal the roots round-robin so every worker starts with local work.
    std::size_t next_worker = 0;
    for (TaskGraph::TaskId id = 0; id < n; ++id) {
      remaining[id].store(graph.prerequisite_count(id),
                          std::memory_order_relaxed);
      if (graph.prerequisite_count(id) == 0) {
        workers[next_worker % threads].queue.push_back(id);
        ++next_worker;
      }
    }

    auto worker_loop = [&](unsigned self) {
      Worker& me = workers[self];
      if (config_.trace != nullptr) {
        // Label this lane `worker-<pool index>` (sorted after main's 0) so
        // the Perfetto view reads in pool order, not registration order.
        config_.trace->name_thread("worker-" + std::to_string(self),
                                   static_cast<int>(self) + 1);
      }
      for (;;) {
        TaskGraph::TaskId id = 0;
        bool have = false;
        bool stolen = false;
        {
          std::lock_guard<std::mutex> lock(me.mutex);
          if (!me.queue.empty()) {
            id = me.queue.back();
            me.queue.pop_back();
            have = true;
          }
        }
        if (!have) {
          // Steal from the front (oldest, most independent work) of the
          // first non-empty victim, scanning from our right neighbour.
          for (unsigned hop = 1; hop < threads && !have; ++hop) {
            Worker& victim = workers[(self + hop) % threads];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.queue.empty()) {
              id = victim.queue.front();
              victim.queue.pop_front();
              have = true;
              stolen = true;
            }
          }
        }
        if (!have) {
          std::unique_lock<std::mutex> lock(cv_mutex);
          if (finished.load(std::memory_order_acquire)) return;
          const std::size_t epoch = wake_epoch;
          lock.unlock();
          // Recheck all queues after snapshotting the epoch: an enqueue that
          // raced our scan bumped the epoch, so the wait below won't block.
          bool any = false;
          for (unsigned w = 0; w < threads && !any; ++w) {
            std::lock_guard<std::mutex> qlock(workers[w].mutex);
            any = !workers[w].queue.empty();
          }
          if (any) continue;
          lock.lock();
          if (finished.load(std::memory_order_acquire)) return;
          if (wake_epoch == epoch) cv.wait(lock);
          continue;
        }

        execute_task(graph, id, config_.trace, stolen, me.tally);

        // Release ready successors to our own back (LIFO), then publish.
        std::size_t released = 0;
        {
          std::lock_guard<std::mutex> lock(me.mutex);
          for (const TaskGraph::TaskId succ : graph.successors(id)) {
            if (remaining[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
              me.queue.push_back(succ);
              ++released;
            }
          }
        }
        if (released > 0) {
          std::lock_guard<std::mutex> lock(cv_mutex);
          ++wake_epoch;
          cv.notify_all();
        }
        if (tasks_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(cv_mutex);
          finished.store(true, std::memory_order_release);
          cv.notify_all();
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker_loop, t);
    for (std::thread& t : pool) t.join();

    stats.threads_used = threads;
    for (unsigned t = 0; t < threads; ++t) {
      const ExecutorStats& tally = workers[t].tally;
      stats.tasks_run += tally.tasks_run;
      stats.tasks_stolen += tally.tasks_stolen;
      stats.tasks_failed += tally.tasks_failed;
      if (stats.first_error.empty() && !tally.first_error.empty())
        stats.first_error = tally.first_error;
    }
  }

  auto& registry = obs::Registry::global();
  registry.counter("speccal_executor_tasks_total").add(stats.tasks_run);
  if (stats.tasks_stolen > 0)
    registry.counter("speccal_executor_steals_total").add(stats.tasks_stolen);
  if (stats.tasks_failed > 0)
    registry.counter("speccal_executor_failures_total").add(stats.tasks_failed);
  return stats;
}

}  // namespace speccal::calib
