// Receiver frequency-reference calibration from broadcast pilots.
//
// The paper's §5 "Other types of calibration" and its related work
// (kalibrate-rtl [21], CalibrateSDR [1]) calibrate a cheap SDR's oscillator
// against signals whose carrier frequency is known to broadcast tolerance.
// We use the ATSC pilot: every 8VSB station carries a CW pilot 309.441 kHz
// above its lower channel edge, held to tight tolerance by the station's
// reference. The apparent offset of that pilot in a capture measures the
// receiver's own LO error in parts per million — and a node whose ppm
// error drifts wildly is another calibration failure worth flagging.
#pragma once

#include <optional>
#include <vector>

#include "sdr/device.hpp"

namespace speccal::calib {

struct LoCalibrationConfig {
  double sample_rate_hz = 2e6;
  double capture_duration_s = 0.02;
  double gain_db = 20.0;
  /// Pilot search window around the expected offset [Hz]: +-20 ppm at
  /// 600 MHz is +-12 kHz. The search runs on a zero-padded FFT and refines
  /// the peak bin by parabolic interpolation.
  double search_span_hz = 25e3;
  /// Minimum pilot power over the local floor to accept a measurement.
  double min_pilot_snr_db = 15.0;
};

struct PilotMeasurement {
  double station_pilot_hz = 0.0;   // true pilot frequency (channel table)
  double measured_offset_hz = 0.0; // apparent offset from expected position
  double ppm = 0.0;                // implied receiver reference error
  double pilot_snr_db = 0.0;
  bool valid = false;
};

struct LoCalibrationResult {
  std::vector<PilotMeasurement> pilots;
  /// Median ppm across valid pilots (robust to one bad station).
  double ppm = 0.0;
  std::size_t valid_count = 0;

  [[nodiscard]] bool usable() const noexcept { return valid_count >= 1; }
};

/// Measure the device's LO error against a list of ATSC channels known to
/// be receivable at the site (from the TV sweep).
[[nodiscard]] LoCalibrationResult calibrate_lo(sdr::Device& device,
                                               const std::vector<int>& rf_channels,
                                               const LoCalibrationConfig& config = {});

}  // namespace speccal::calib
