#include "calib/lo_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/plan.hpp"
#include "obs/metrics.hpp"
#include "tv/channels.hpp"

namespace speccal::calib {

namespace {
/// Offset at which we park the pilot in baseband (off DC, where real
/// receivers have an offset spike).
constexpr double kPilotParkHz = -250e3;

/// Goertzel refinement around a coarse peak estimate: evaluate the unpadded
/// DFT power on a fine grid (quarter-bin spacing, +/- one bin) and take a
/// parabolic fit through the grid maximum. Unlike the zero-padded FFT grid,
/// Goertzel evaluates at arbitrary fractional frequencies, so the fit is
/// centred on the tone rather than the nearest padded bin.
[[nodiscard]] double goertzel_refine_peak(std::span<const dsp::Sample> capture,
                                          double coarse_hz, double bin_hz,
                                          double sample_rate_hz) {
  constexpr std::size_t kGridPoints = 9;
  const double step = bin_hz / 4.0;
  std::vector<double> freqs(kGridPoints);
  for (std::size_t k = 0; k < kGridPoints; ++k)
    freqs[k] = coarse_hz + (static_cast<double>(k) - 4.0) * step;
  if (freqs.front() <= -sample_rate_hz / 2.0 || freqs.back() >= sample_rate_hz / 2.0)
    return coarse_hz;

  dsp::Goertzel comb(freqs, sample_rate_hz);
  comb.feed(capture);
  std::size_t best = 0;
  double best_power = -1.0;
  for (std::size_t k = 0; k < kGridPoints; ++k) {
    const double p = comb.power(k);
    if (p > best_power) {
      best_power = p;
      best = k;
    }
  }
  double refine = 0.0;
  if (best > 0 && best + 1 < kGridPoints) {
    const double prev = comb.power(best - 1);
    const double next = comb.power(best + 1);
    const double denom = prev - 2.0 * best_power + next;
    if (std::fabs(denom) > 1e-30) refine = 0.5 * (prev - next) / denom * step;
  }
  return freqs[best] + refine;
}
}  // namespace

LoCalibrationResult calibrate_lo(sdr::Device& device,
                                 const std::vector<int>& rf_channels,
                                 const LoCalibrationConfig& config) {
  LoCalibrationResult out;
  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config.gain_db);

  const auto samples =
      static_cast<std::size_t>(config.capture_duration_s * config.sample_rate_hz);

  // One plan-based estimator for all channels: every capture has the same
  // length, so the zero-padded FFT plan and scratch are built once and the
  // per-channel spectrum lands in a reused buffer.
  dsp::SpectrumEstimator estimator(dsp::next_power_of_two(std::max<std::size_t>(1, samples)));
  std::vector<double> spectrum;

  for (int channel : rf_channels) {
    const auto edge = tv::channel_lower_edge_hz(channel);
    if (!edge) continue;
    PilotMeasurement meas;
    meas.station_pilot_hz = *edge + tv::kPilotOffsetHz;

    if (!device.tune(meas.station_pilot_hz - kPilotParkHz, config.sample_rate_hz)) {
      out.pilots.push_back(meas);
      continue;
    }
    const dsp::Buffer capture = device.capture(samples);

    // Zero-padded FFT peak search inside the expected window. (A Goertzel
    // comb covering the whole window at this resolution would cost ~1000x
    // more than the FFT, so Goertzel enters only after the peak is found —
    // as a fine-grid refinement around it, gated on the SNR test below.)
    estimator.estimate(capture, spectrum);
    const double fft_size = static_cast<double>(spectrum.size());
    const double bin_hz = config.sample_rate_hz / fft_size;

    std::size_t peak = 0;
    double peak_power = 0.0;
    std::vector<double> window_powers;
    for (double f = kPilotParkHz - config.search_span_hz;
         f <= kPilotParkHz + config.search_span_hz; f += bin_hz) {
      const std::size_t bin =
          dsp::bin_for_frequency(f, config.sample_rate_hz, spectrum.size());
      window_powers.push_back(spectrum[bin]);
      if (spectrum[bin] > peak_power) {
        peak_power = spectrum[bin];
        peak = bin;
      }
    }
    if (window_powers.empty()) {
      out.pilots.push_back(meas);
      continue;
    }

    // Local floor: median over the search window (the pilot is ~1 bin).
    std::vector<double> sorted = window_powers;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2, sorted.end());
    const double floor = std::max(sorted[sorted.size() / 2], 1e-20);
    meas.pilot_snr_db = 10.0 * std::log10(peak_power / floor);

    // The Goertzel refinement stage is gated on the SNR test: channels with
    // no detectable pilot skip it (their FFT verdict — invalid — stands).
    static obs::Counter& refine_pass = obs::Registry::global().counter(
        "speccal_gate_lo_refine_pass_total");
    static obs::Counter& refine_skip = obs::Registry::global().counter(
        "speccal_gate_lo_refine_skip_total");
    if (meas.pilot_snr_db >= config.min_pilot_snr_db) {
      refine_pass.add();
      // Parabolic interpolation over the peak bin and its neighbours.
      double refine = 0.0;
      if (peak > 0 && peak + 1 < spectrum.size()) {
        const double prev = spectrum[peak - 1];
        const double next = spectrum[peak + 1];
        const double denom = prev - 2.0 * peak_power + next;
        if (std::fabs(denom) > 1e-20)
          refine = 0.5 * (prev - next) / denom * bin_hz;
      }
      double peak_freq = static_cast<double>(peak) * bin_hz;
      if (peak_freq >= config.sample_rate_hz / 2.0) peak_freq -= config.sample_rate_hz;
      // Goertzel fine grid around the parabolic estimate (the lo_calibration
      // TODO this PR closes): fractional-frequency DFT evaluation on the
      // unpadded capture pins the pilot tighter than the padded-bin fit.
      const double measured = goertzel_refine_peak(
          capture, peak_freq + refine, bin_hz, config.sample_rate_hz);
      meas.measured_offset_hz = measured - kPilotParkHz;
      // offset = -ppm * f_pilot / 1e6  =>  ppm = -offset / f_pilot * 1e6.
      meas.ppm = -meas.measured_offset_hz / meas.station_pilot_hz * 1e6;
      meas.valid = true;
      ++out.valid_count;
    } else {
      refine_skip.add();
    }
    out.pilots.push_back(meas);
  }

  // Robust aggregate: median over valid pilots.
  std::vector<double> ppms;
  for (const auto& p : out.pilots)
    if (p.valid) ppms.push_back(p.ppm);
  if (!ppms.empty()) {
    std::nth_element(ppms.begin(), ppms.begin() + ppms.size() / 2, ppms.end());
    out.ppm = ppms[ppms.size() / 2];
  }
  return out;
}

}  // namespace speccal::calib
