// Calibration entry point for decoded capture streams.
//
// The decode farm (net::DecodeFarm) reconstructs each node's capture
// sequence from wire segments; this header turns one reconstructed stream
// plus its out-of-band node manifest (claims, device capabilities, site
// models) into a calib::FleetJob that runs through the ordinary
// FleetCalibrator — the backend reuses the whole fleet engine, stage graph
// and retry machinery unchanged, it just swaps the device for a
// sdr::ReplayDevice.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "calib/fleet.hpp"
#include "sdr/replay.hpp"

namespace speccal::calib {

/// One node's decoded stream plus the manifest the backend registered for
/// it. The models `rx` points into must outlive the calibration run.
struct ReplayNodeData {
  NodeClaims claims;
  sdr::DeviceInfo info;
  geo::Geodetic position;
  /// Receiver surroundings for model-only stages (survey, cell scan).
  /// Without it the replay device has no SimControl and those stages fail
  /// the same way they would on unknown real hardware.
  std::optional<sdr::RxEnvironment> rx;
  std::shared_ptr<const std::vector<sdr::CaptureRecord>> records;
};

/// Fleet job whose device replays `data.records`. Throws
/// std::invalid_argument when `data.records` is null.
[[nodiscard]] FleetJob make_replay_job(ReplayNodeData data);

}  // namespace speccal::calib
