// Frequency-response evaluation — the paper's §3.2 technique.
//
// Fuses measurements of known signals (ADS-B at 1090 MHz, cellular RSRP
// across bands, broadcast TV below 600 MHz) into a per-band picture of how
// much a node's siting attenuates reception. "Expected" levels come from
// the same link budget evaluated without site obstructions — the reception
// an unobstructed outdoor installation at the same coordinates would see —
// so attenuation isolates exactly what the paper wants: the siting penalty.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cellular/bands.hpp"

namespace speccal::calib {

enum class SignalKind { kAdsb, kCellular, kTv };

[[nodiscard]] std::string to_string(SignalKind kind);

/// One known-signal measurement joined with its clear-sky expectation.
struct BandMeasurement {
  SignalKind kind = SignalKind::kCellular;
  std::string source_label;      // "Tower 2 (1970 MHz)", "Ch 22", ...
  double freq_hz = 0.0;
  double expected_dbm = 0.0;     // unobstructed link-budget level
  std::optional<double> measured_dbm;  // nullopt = not decodable / lost
  double azimuth_deg = 0.0;      // direction toward the source
};

/// Aggregated verdict for one spectrum class.
struct BandQuality {
  cellular::SpectrumClass band_class{};
  std::size_t sources_total = 0;
  std::size_t sources_received = 0;
  double mean_attenuation_db = 0.0;  // over received sources
  double worst_attenuation_db = 0.0;
  bool usable = false;               // node can monitor this class
};

struct FrequencyResponseConfig {
  /// Attenuation above this marks a source as badly degraded even if
  /// still detectable. Calibrated so the paper's conclusion holds: the
  /// window and indoor sites (~25 dB down at sub-600 MHz) remain usable
  /// for low-band monitoring.
  double degraded_threshold_db = 28.0;
  /// A band class is usable if at least this fraction of its sources was
  /// received with attenuation below the degraded threshold.
  double usable_fraction = 0.5;
  /// Lost sources (no measurement) are assigned this attenuation for the
  /// mean (a floor on how bad it must have been).
  double lost_penalty_db = 50.0;
};

struct FrequencyResponseReport {
  std::vector<BandMeasurement> measurements;
  std::vector<BandQuality> bands;
  /// Least-squares slope of attenuation versus log10(frequency) — positive
  /// means reception worsens with frequency (the indoor signature).
  double attenuation_slope_db_per_decade = 0.0;
  double mean_attenuation_db = 0.0;
};

/// Build the report from joined measurements.
[[nodiscard]] FrequencyResponseReport evaluate_frequency_response(
    std::vector<BandMeasurement> measurements,
    const FrequencyResponseConfig& config = {});

}  // namespace speccal::calib
