#include "calib/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace speccal::calib {

FleetCalibrator::FleetCalibrator(CalibrationPipeline pipeline, FleetConfig config)
    : pipeline_(std::move(pipeline)), config_(std::move(config)) {}

unsigned FleetCalibrator::effective_threads(std::size_t jobs) const noexcept {
  unsigned threads = config_.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(jobs, 1)));
}

FleetSummary FleetCalibrator::run(std::vector<FleetJob> jobs, NodeRegistry& registry) {
  using clock = std::chrono::steady_clock;
  cancel_.store(false, std::memory_order_relaxed);

  FleetSummary summary;
  summary.total = jobs.size();
  if (jobs.empty()) return summary;

  obs::Registry::global().counter("speccal_fleet_batches_total").add();
  obs::Span run_span(config_.trace, "fleet_run", "fleet");
  run_span.arg("jobs", static_cast<std::int64_t>(jobs.size()));
  run_span.arg("threads",
               static_cast<std::int64_t>(effective_threads(jobs.size())));

  const auto t0 = clock::now();
  std::atomic<std::size_t> next{0};

  // Guards the batch bookkeeping below and serializes the progress callback.
  std::mutex book_mutex;
  std::size_t completed = 0;
  std::vector<StageMetrics> fleet_metrics;
  fleet_metrics.reserve(jobs.size());

  auto worker = [&]() {
    for (;;) {
      if (cancel_.load(std::memory_order_relaxed)) break;
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) break;
      FleetJob& job = jobs[index];

      CalibrationReport report;
      std::string error;
      {
        // Node span on this worker's track; the stage spans emitted by the
        // pipeline nest inside it by time containment. Ends (and records)
        // even when the device throws.
        obs::Span node_span(config_.trace, job.claims.node_id, "node");
        try {
          if (!job.make_device)
            throw std::invalid_argument("fleet job carries no device factory");
          const std::unique_ptr<sdr::Device> device = job.make_device();
          if (device == nullptr)
            throw std::runtime_error("device factory returned null");
          pipeline_.calibrate_into(*device, job.claims, report, config_.trace);
        } catch (const std::exception& e) {
          error = e.what();
        } catch (...) {
          error = "unknown exception during calibration";
        }
        node_span.arg("ok", error.empty());
        if (!error.empty()) node_span.arg("error", error);
      }
      obs::Registry::global().counter("speccal_fleet_nodes_total").add();
      if (!error.empty()) {
        obs::Registry::global().counter("speccal_fleet_aborts_total").add();
        // Failure isolation: the node still gets a (flagged, zero-trust)
        // report; the batch carries on.
        report.claims = job.claims;
        report.abort_reason = error;
        report.trust.score = 0.0;
        report.trust.findings.push_back(
            {Severity::kViolation, "calibration aborted: " + error});
      }

      const StageMetrics metrics = report.metrics;
      const bool ok = error.empty();
      const bool node_quarantined = report.quarantined();
      bool node_recovered = false;
      for (const FaultRecord& fr : report.fault_records)
        if (fr.outcome == FaultOutcome::kRecovered) node_recovered = true;
      if (node_quarantined)
        obs::Registry::global()
            .counter("speccal_fault_quarantined_nodes_total")
            .add();
      registry.record(std::move(report));

      {
        const std::scoped_lock lock(book_mutex);
        ++completed;
        fleet_metrics.push_back(metrics);
        if (!ok) {
          ++summary.failed;
          summary.failures.push_back({job.claims.node_id, error});
        }
        if (node_quarantined) ++summary.quarantined;
        if (node_recovered && !node_quarantined) ++summary.recovered;
        if (config_.on_progress) {
          FleetProgress progress;
          progress.completed = completed;
          progress.total = jobs.size();
          progress.node_id = job.claims.node_id;
          progress.ok = ok;
          progress.quarantined = node_quarantined;
          config_.on_progress(progress);
        }
      }
    }
  };

  const unsigned threads = effective_threads(jobs.size());
  if (threads <= 1) {
    worker();  // serial fallback: no thread spawned, deterministic order
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  summary.calibrated = completed;
  summary.skipped = jobs.size() - completed;
  summary.wall_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  summary.nodes_per_s =
      summary.wall_s > 0.0 ? static_cast<double>(completed) / summary.wall_s : 0.0;

  std::vector<const StageMetrics*> views;
  views.reserve(fleet_metrics.size());
  for (const StageMetrics& m : fleet_metrics) views.push_back(&m);
  summary.stage_stats = aggregate_stage_metrics(views);
  return summary;
}

}  // namespace speccal::calib
