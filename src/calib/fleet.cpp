#include "calib/fleet.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace speccal::calib {

namespace {

PipelineConfig validate_and_resolve(const RunConfig& run) {
  run.validate();
  return run.resolved_pipeline();
}

}  // namespace

FleetCalibrator::FleetCalibrator(CalibrationPipeline pipeline, FleetConfig config)
    : pipeline_(std::move(pipeline)), config_(std::move(config)) {}

FleetCalibrator::FleetCalibrator(WorldModel world, RunConfig run,
                                 FleetConfig fleet)
    : pipeline_(std::move(world), validate_and_resolve(run)),
      config_(std::move(fleet)),
      threads_(run.executor.threads) {
  if (config_.trace == nullptr) config_.trace = run.executor.trace;
}

unsigned FleetCalibrator::effective_threads(std::size_t jobs) const noexcept {
  unsigned threads = threads_;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(jobs, 1)));
}

FleetSummary FleetCalibrator::run(std::vector<FleetJob> jobs, NodeRegistry& registry) {
  using clock = std::chrono::steady_clock;
  cancel_.store(false, std::memory_order_relaxed);

  FleetSummary summary;
  summary.total = jobs.size();
  if (jobs.empty()) return summary;

  obs::Registry::global().counter("speccal_fleet_batches_total").add();
  const unsigned threads = effective_threads(jobs.size());
  obs::Span run_span(config_.trace, "fleet_run", "fleet");
  run_span.arg("jobs", static_cast<std::int64_t>(jobs.size()));
  run_span.arg("threads", static_cast<std::int64_t>(threads));

  const auto t0 = clock::now();

  // Per-node mutable state, owned here so task closures can capture raw
  // references. `failed` is the only field two stage tasks of one node can
  // touch concurrently (e.g. fov ∥ cell_scan both racing to report an
  // error): the first CAS winner writes `error`, everyone else only reads
  // the flag. `skipped`/`plan`/`device` are written by the acquire task,
  // which every other task of the node orders after via graph edges.
  struct NodeState {
    std::unique_ptr<sdr::Device> device;
    CalibrationReport report;
    std::optional<NodeTaskSet> plan;
    std::atomic<bool> failed{false};
    std::string error;
    bool skipped = false;
  };
  std::vector<NodeState> states(jobs.size());
  const auto fail = [](NodeState& st, std::string what) {
    bool expected = false;
    if (st.failed.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
      st.error = std::move(what);
  };

  // Guards the batch bookkeeping below and serializes the progress callback.
  std::mutex book_mutex;
  std::size_t completed = 0;
  std::vector<StageMetrics> fleet_metrics;
  fleet_metrics.reserve(jobs.size());

  const std::vector<StageSpec> specs = pipeline_.stage_plan();

  // One subgraph per node: acquire -> stage tasks (stage_plan edges) ->
  // finalize. The admission window chains acquire_i after
  // finalize_{i - 2*threads}: at most ~2 devices per worker are ever live,
  // cancellation (checked in acquire) takes effect promptly, and the
  // executor still always has a window's worth of nodes to interleave.
  TaskGraph graph;
  std::vector<TaskGraph::TaskId> finalize_ids(jobs.size());
  const std::size_t admit_window = std::size_t{2} * threads;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    FleetJob& job = jobs[i];
    NodeState& st = states[i];

    const TaskGraph::TaskId acquire = graph.add(
        job.claims.node_id + "/acquire", [this, &job, &st, &fail] {
          if (cancel_.load(std::memory_order_relaxed)) {
            st.skipped = true;
            return;
          }
          try {
            if (!job.make_device)
              throw std::invalid_argument("fleet job carries no device factory");
            st.device = job.make_device();
            if (st.device == nullptr)
              throw std::runtime_error("device factory returned null");
            st.plan.emplace(
                pipeline_.plan(*st.device, job.claims, st.report, config_.trace));
          } catch (const std::exception& e) {
            fail(st, e.what());
          } catch (...) {
            fail(st, "unknown exception during calibration");
          }
        });
    if (i >= admit_window) graph.depends(acquire, finalize_ids[i - admit_window]);

    std::array<TaskGraph::TaskId, kStageCount> stage_ids{};
    for (std::size_t k = 0; k < specs.size(); ++k) {
      const StageSpec& spec = specs[k];
      const TaskGraph::TaskId tid = graph.add(
          job.claims.node_id + "/" + to_string(spec.stage), [&st, &fail, k] {
            if (st.skipped || !st.plan ||
                st.failed.load(std::memory_order_acquire))
              return;
            try {
              st.plan->tasks()[k].run();
            } catch (const std::exception& e) {
              fail(st, e.what());
            } catch (...) {
              fail(st, "unknown exception during calibration");
            }
          });
      stage_ids[static_cast<std::size_t>(spec.stage)] = tid;
      graph.depends(tid, acquire);
      for (const Stage dep : spec.deps)
        graph.depends(tid, stage_ids[static_cast<std::size_t>(dep)]);
    }

    finalize_ids[i] = graph.add(
        job.claims.node_id + "/finalize",
        [&job, &st, &registry, &book_mutex, &completed, &fleet_metrics,
         &summary, &config = config_, total = jobs.size()] {
          if (st.skipped) {
            st.plan.reset();
            st.device.reset();
            return;
          }
          const bool ok = !st.failed.load(std::memory_order_acquire);
          if (st.plan) st.plan->finalize(/*aborted=*/!ok);
          obs::Registry::global().counter("speccal_fleet_nodes_total").add();
          if (!ok) {
            obs::Registry::global().counter("speccal_fleet_aborts_total").add();
            obs::EventLog::global().log(
                obs::EventSeverity::kError, "node_aborted", job.claims.node_id,
                {}, {obs::SpanArg::str("error", st.error)});
            // Failure isolation: the node still gets a (flagged, zero-trust)
            // report; the batch carries on.
            st.report.claims = job.claims;
            st.report.abort_reason = st.error;
            st.report.trust.score = 0.0;
            st.report.trust.findings.push_back(
                {Severity::kViolation, "calibration aborted: " + st.error});
          }

          const StageMetrics metrics = st.report.metrics;
          const bool node_quarantined = st.report.quarantined();
          FaultTally node_tally;
          node_tally.note(st.report.fault_records);
          if (node_quarantined) {
            obs::Registry::global()
                .counter("speccal_fault_quarantined_nodes_total")
                .add();
            obs::EventLog::global().log(
                obs::EventSeverity::kError, "node_quarantined",
                job.claims.node_id, {},
                {obs::SpanArg::integer(
                    "fault_records",
                    static_cast<std::int64_t>(st.report.fault_records.size()))});
          }
          registry.record(std::move(st.report));
          st.plan.reset();
          st.device.reset();

          const std::scoped_lock lock(book_mutex);
          ++completed;
          fleet_metrics.push_back(metrics);
          if (!ok) {
            ++summary.failed;
            summary.failures.push_back({job.claims.node_id, st.error});
          }
          summary.faults += node_tally;
          if (config.on_progress) {
            FleetProgress progress;
            progress.completed = completed;
            progress.total = total;
            progress.node_id = job.claims.node_id;
            progress.ok = ok;
            progress.quarantined = node_quarantined;
            config.on_progress(progress);
          }
        });
    graph.depends(finalize_ids[i], acquire);
    for (std::size_t k = 0; k < specs.size(); ++k)
      graph.depends(finalize_ids[i],
                    stage_ids[static_cast<std::size_t>(specs[k].stage)]);
  }

  StageExecutor executor(ExecutorConfig{threads, config_.trace});
  summary.executor = executor.run(graph);

  summary.calibrated = completed;
  summary.skipped = jobs.size() - completed;
  summary.wall_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  summary.nodes_per_s =
      summary.wall_s > 0.0 ? static_cast<double>(completed) / summary.wall_s : 0.0;

  std::vector<const StageMetrics*> views;
  views.reserve(fleet_metrics.size());
  for (const StageMetrics& m : fleet_metrics) views.push_back(&m);
  summary.stage_stats = aggregate_stage_metrics(views);
  return summary;
}

}  // namespace speccal::calib
