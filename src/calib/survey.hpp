// ADS-B directional survey — the paper's §3.1 procedure.
//
// Runs the receiver for a measurement window (paper: 30 s), queries the
// ground-truth flight feed mid-window (paper: at 15 s, 100 km radius,
// 10 s feed latency), then joins the two by ICAO address:
//   * ground-truth aircraft with >= 1 decoded message  -> "observed" (blue)
//   * ground-truth aircraft never decoded              -> "missed" (gray)
// The resulting observation set is the input to field-of-view estimation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adsb/ppm.hpp"
#include "airtraffic/groundtruth.hpp"
#include "airtraffic/sky.hpp"
#include "sdr/device.hpp"

namespace speccal::calib {

/// How faithfully to simulate reception.
enum class Fidelity {
  /// Full physical pipeline: waveforms through the simulated SDR into the
  /// Mode S demodulator/decoder (what the paper's hardware did).
  kWaveform,
  /// Link-budget Monte Carlo: per-message decode decided by SNR through a
  /// calibrated error model. ~100x faster; used for sweeps and ablations.
  kLinkBudget,
};

struct SurveyConfig {
  double duration_s = 30.0;
  double ground_truth_radius_m = 100e3;
  /// When during the window to snapshot ground truth (paper: 15 s in).
  double ground_truth_query_at_s = 15.0;
  Fidelity fidelity = Fidelity::kWaveform;
  /// Waveform-mode processing chunk [samples at 2 Msps].
  std::size_t chunk_samples = 1u << 18;
  /// Link-budget mode: SNR (over the 2 MHz channel) at which half of the
  /// messages decode, and the logistic width of the transition. Calibrated
  /// against the waveform demodulator (preamble gate + CRC over 112 bits),
  /// whose soft threshold sits near 10-11 dB with a ~1 dB transition.
  double decode_snr50_db = 10.5;
  double decode_snr_width_db = 0.9;
  /// Receiver gain while surveying.
  double gain_db = 40.0;
  /// Demodulator settings for waveform mode (CRC repair budget, preamble
  /// gate) — the knobs the decoder ablation sweeps.
  adsb::DemodConfig demod_override{};
};

/// One ground-truth aircraft joined with reception results.
struct AirplaneObservation {
  std::uint32_t icao = 0;
  std::string callsign;
  geo::Geodetic position;     // ground-truth position at the query time
  double range_km = 0.0;      // from the sensor
  double azimuth_deg = 0.0;   // from the sensor toward the aircraft
  bool received = false;
  std::uint32_t messages = 0;
  double best_rssi_dbfs = -200.0;
  /// Position decoded on-air (only when received); allows checking decode
  /// accuracy against ground truth.
  std::optional<geo::Geodetic> decoded_position;
};

struct SurveyResult {
  std::vector<AirplaneObservation> observations;
  std::uint64_t total_frames_decoded = 0;
  std::uint64_t frames_crc_repaired = 0;
  /// Aircraft decoded on-air but absent from ground truth (fabrication or
  /// feed gaps; should be ~0 in honest setups).
  std::uint32_t unmatched_receptions = 0;
  double duration_s = 0.0;

  [[nodiscard]] std::size_t received_count() const noexcept;
  [[nodiscard]] std::size_t missed_count() const noexcept;
};

/// Runs the survey. The device must already carry an AdsbSignalSource for
/// the same sky that `ground_truth` reports on (simulation), or receive
/// 1090 MHz off the air (hardware). Waveform fidelity works on any
/// `sdr::Device`; link-budget fidelity is a simulation shortcut and
/// requires `Device::sim_control()` (throws std::runtime_error otherwise).
class AdsbSurvey {
 public:
  explicit AdsbSurvey(SurveyConfig config = {}) noexcept : config_(config) {}

  [[nodiscard]] SurveyResult run(sdr::Device& device,
                                 const airtraffic::SkySimulator& sky,
                                 const airtraffic::GroundTruthService& ground_truth) const;

  [[nodiscard]] const SurveyConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] SurveyResult run_waveform(sdr::Device& device,
                                          const airtraffic::SkySimulator& sky,
                                          const airtraffic::GroundTruthService& gt) const;
  [[nodiscard]] SurveyResult run_linkbudget(sdr::Device& device,
                                            const airtraffic::SkySimulator& sky,
                                            const airtraffic::GroundTruthService& gt) const;

  SurveyConfig config_;
};

}  // namespace speccal::calib
