// DEPRECATED forwarding shim — the measurement scheduler now lives in
// calib/window_planner.hpp as calib::WindowPlanner ("scheduler" collided
// with the stage-graph executor's task scheduling). Include that header
// directly; this one only forwards and will eventually disappear.
#pragma once

#include "calib/window_planner.hpp"
