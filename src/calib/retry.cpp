#include "calib/retry.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sdr/device.hpp"

namespace speccal::calib {

namespace {

/// Stable per-node seed: chains every node-id byte through SplitMix64 so
/// "node-1"/"node-2" land in unrelated jitter streams regardless of which
/// worker thread runs them.
std::uint64_t jitter_seed_for(std::uint64_t seed, std::string_view node_id) {
  std::uint64_t state = seed;
  for (const char c : node_id) {
    state ^= static_cast<unsigned char>(c);
    (void)util::splitmix64(state);
  }
  return util::splitmix64(state);
}

/// Per-(node, stage) stream: chaining the stage index through another
/// SplitMix64 round keeps each stage's jitter independent of how many other
/// stages of the node faulted before it — required now that stages of one
/// node can execute in any order (or concurrently) under the executor.
std::uint64_t stage_jitter_seed(std::uint64_t node_seed, Stage stage) {
  std::uint64_t state = node_seed ^ (static_cast<std::uint64_t>(stage) + 1);
  return util::splitmix64(state);
}

}  // namespace

void FaultTally::note(const std::vector<FaultRecord>& records) noexcept {
  // Quarantine wins: a node with both a quarantined and a recovered stage
  // is degraded, not recovered (same rule as CalibrationReport::quarantined).
  for (const FaultRecord& fr : records) {
    if (fr.outcome != FaultOutcome::kRecovered) {
      ++quarantined;
      return;
    }
  }
  if (!records.empty()) ++recovered;
}

const char* to_string(FaultOutcome outcome) noexcept {
  switch (outcome) {
    case FaultOutcome::kRecovered: return "recovered";
    case FaultOutcome::kQuarantined: return "quarantined";
    case FaultOutcome::kDeadlineExpired: return "deadline_expired";
  }
  return "?";
}

RetryRunner::RetryRunner(const RetryPolicy& policy, std::string_view node_id,
                         sdr::Device* device, obs::TraceSession* trace)
    : policy_(policy),
      node_id_(node_id),
      device_(device),
      trace_(trace),
      node_seed_(jitter_seed_for(policy.jitter_seed, node_id)) {}

double RetryRunner::next_backoff_s(int failed_attempt,
                                   util::Rng& jitter_rng) const noexcept {
  double backoff = policy_.initial_backoff_s *
                   std::pow(policy_.backoff_multiplier, failed_attempt - 1);
  if (policy_.jitter_fraction > 0.0)
    backoff *= 1.0 + policy_.jitter_fraction * (2.0 * jitter_rng.uniform() - 1.0);
  return std::max(0.0, backoff);
}

bool RetryRunner::run(Stage stage, std::vector<FaultRecord>& records,
                      const std::function<void()>& reset,
                      const std::function<void()>& body) {
  if (policy_.passthrough()) {
    reset();
    body();
    return true;
  }

  util::Rng jitter_rng(stage_jitter_seed(node_seed_, stage));
  const auto stage_start = std::chrono::steady_clock::now();
  FaultRecord record;
  record.stage = stage;
  std::exception_ptr last_exception;
  const int max_attempts = std::max(1, policy_.max_attempts);

  for (int attempt = 1;; ++attempt) {
    record.attempts = attempt;
    try {
      obs::Span retry_span;
      if (attempt > 1) {
        obs::Registry::global().counter("speccal_retry_attempts_total").add();
        if (trace_ != nullptr) {
          retry_span = obs::Span(trace_, "retry", "retry");
          retry_span.arg("stage", to_string(stage));
          retry_span.arg("attempt", static_cast<std::int64_t>(attempt));
          if (!node_id_.empty()) retry_span.arg("node", node_id_);
        }
      }
      reset();
      body();
      if (attempt > 1) {
        record.outcome = FaultOutcome::kRecovered;
        obs::Registry::global().counter("speccal_retry_recovered_total").add();
        obs::EventLog::global().log(
            obs::EventSeverity::kWarning, "stage_recovered", node_id_,
            to_string(stage),
            {obs::SpanArg::integer("attempts", attempt),
             obs::SpanArg::str("last_error", record.last_error)});
        records.push_back(std::move(record));
      }
      return true;
    } catch (const std::exception& e) {
      last_exception = std::current_exception();
      record.last_error = e.what();
    } catch (...) {
      last_exception = std::current_exception();
      record.last_error = "unknown exception";
    }

    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stage_start)
            .count();
    const bool deadline_hit = policy_.stage_deadline_s > 0.0 &&
                              elapsed_s >= policy_.stage_deadline_s;
    if (attempt >= max_attempts || deadline_hit) {
      if (!policy_.quarantine) std::rethrow_exception(last_exception);
      reset();  // drop the failed attempt's partial outputs
      record.outcome = deadline_hit ? FaultOutcome::kDeadlineExpired
                                    : FaultOutcome::kQuarantined;
      record.degraded = true;
      obs::Registry::global()
          .counter("speccal_fault_quarantined_stages_total")
          .add();
      obs::EventLog::global().log(
          obs::EventSeverity::kError,
          deadline_hit ? "stage_deadline_expired" : "stage_quarantined",
          node_id_, to_string(stage),
          {obs::SpanArg::integer("attempts", attempt),
           obs::SpanArg::str("last_error", record.last_error)});
      records.push_back(std::move(record));
      return false;
    }

    const double backoff_s = next_backoff_s(attempt, jitter_rng);
    record.backoff_total_s += backoff_s;
    obs::Registry::global()
        .histogram("speccal_retry_backoff_ms", obs::default_duration_bounds_ms())
        .observe(backoff_s * 1e3);
    if (policy_.sleep_on_backoff) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    } else if (device_ != nullptr) {
      // Simulated deployments: backoff consumes stream time, not wall time —
      // deterministic, and the world genuinely moves on while we wait. Pure
      // stages (null device) advance nothing.
      if (sdr::SimControl* sim = device_->sim_control()) sim->advance_time(backoff_s);
    }
  }
}

}  // namespace speccal::calib
