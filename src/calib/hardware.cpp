#include "calib/hardware.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace speccal::calib {

namespace {
[[nodiscard]] double median(std::vector<double> values) noexcept {
  if (values.empty()) return 0.0;
  const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
  std::nth_element(values.begin(), mid, values.end());
  return *mid;
}
}  // namespace

HardwareDiagnosis diagnose_hardware(const FrequencyResponseReport& freq,
                                    const FovEstimate& fov,
                                    const HardwareDiagnosisConfig& config) {
  HardwareDiagnosis out;

  std::vector<double> attenuations;
  for (const auto& m : freq.measurements)
    if (m.measured_dbm) attenuations.push_back(m.expected_dbm - *m.measured_dbm);
  if (attenuations.empty()) {
    out.notes.push_back("no received sources: cannot separate hardware from siting");
    return out;
  }
  const double flat_offset = median(attenuations);

  // --- cable / connector fault ---------------------------------------------
  const bool flat = std::fabs(freq.attenuation_slope_db_per_decade) <
                    config.flat_slope_db_per_decade;
  const bool open_sky = fov.open_fraction_deg >= config.open_fov_fraction;
  if (flat && open_sky && flat_offset >= config.cable_fault_floor_db) {
    out.cable_fault_suspected = true;
    out.estimated_cable_loss_db = flat_offset;
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << "uniform " << flat_offset
       << " dB loss across bands and directions: check feedline/connectors";
    out.notes.push_back(os.str());
  }

  // --- antenna narrower than claimed ----------------------------------------
  // Sources whose attenuation exceeds the fleet-median by a wide margin,
  // clustered at the spectrum edges, indicate antenna roll-off.
  for (const auto& m : freq.measurements) {
    const double atten =
        m.measured_dbm ? m.expected_dbm - *m.measured_dbm : 1e9;
    if (atten - flat_offset >= config.band_edge_excess_db)
      out.deaf_frequencies_hz.push_back(m.freq_hz);
  }
  if (!out.deaf_frequencies_hz.empty() && open_sky) {
    // Edge clustering: all deaf sources sit below the lowest healthy source
    // or above the highest healthy one.
    double healthy_min = 1e12, healthy_max = 0.0;
    for (const auto& m : freq.measurements) {
      if (!m.measured_dbm) continue;
      const double atten = m.expected_dbm - *m.measured_dbm;
      if (atten - flat_offset < config.band_edge_excess_db) {
        healthy_min = std::min(healthy_min, m.freq_hz);
        healthy_max = std::max(healthy_max, m.freq_hz);
      }
    }
    const bool clustered = std::all_of(
        out.deaf_frequencies_hz.begin(), out.deaf_frequencies_hz.end(),
        [&](double f) { return f < healthy_min || f > healthy_max; });
    if (clustered && healthy_max > healthy_min) {
      out.antenna_band_mismatch = true;
      std::ostringstream os;
      os << "antenna appears deaf outside ~" << healthy_min / 1e6 << "-"
         << healthy_max / 1e6 << " MHz despite an open sky: rated range "
         << "narrower than claimed";
      out.notes.push_back(os.str());
    } else {
      out.deaf_frequencies_hz.clear();  // scattered: siting, not hardware
    }
  } else {
    out.deaf_frequencies_hz.clear();
  }

  if (out.healthy()) out.notes.push_back("no hardware fault signature");
  return out;
}

}  // namespace speccal::calib
