// Retry, backoff and quarantine for calibration stages.
//
// The fleet engine's failure model before this layer was all-or-nothing: a
// device exception anywhere aborted the whole node. Real crowd-sourced
// sensors fail *transiently* far more often than terminally (USB hiccups,
// stream timeouts, momentary PLL unlock), so each pipeline stage now runs
// under a RetryPolicy: failed attempts are retried with exponential backoff
// (jitter drawn from a per-node util::Rng stream, so parallel and serial
// fleet runs stay bitwise identical), a per-stage deadline bounds how long
// a stalling device can hold a worker, and — when quarantine is enabled —
// a stage that never recovers is recorded as a FaultRecord in the report
// while the rest of the calibration carries on.
//
// The default policy is a strict passthrough (one attempt, exceptions
// propagate): existing behaviour, to the bit. Chaos runs and hardware
// deployments opt in via PipelineConfig::retry.
//
// Determinism contract (DESIGN.md §11, §12): the backoff jitter stream is
// a stable function of (jitter_seed, node_id, stage) only — never of wall
// time, the worker thread, or the order stages happen to execute in — so
// same seed + same fault schedule => same attempt counts, same simulated
// backoff, same report, whether the stages ran serially or interleaved
// across the stage-graph executor's workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "calib/metrics.hpp"
#include "util/rng.hpp"

namespace speccal::sdr {
class Device;
}
namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

struct RetryPolicy {
  /// Total attempts per stage (1 = never retry — the seed behaviour).
  int max_attempts = 1;
  /// Backoff before retry k (1-based) is
  ///   initial_backoff_s * backoff_multiplier^(k-1), jittered by
  ///   ±jitter_fraction (uniform, from the per-node stream).
  double initial_backoff_s = 0.01;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.1;
  /// Wall-clock budget per stage, checked after every failed attempt;
  /// exceeding it gives up immediately (FaultOutcome::kDeadlineExpired).
  /// 0 disables the deadline.
  double stage_deadline_s = 0.0;
  /// When true, a stage that exhausts its attempts (or its deadline) is
  /// recorded as a FaultRecord and skipped — the node completes degraded
  /// instead of aborting. When false, the last exception propagates
  /// (pre-retry behaviour, which the fleet engine turns into an abort).
  bool quarantine = false;
  /// Backoff handling: true sleeps for real (hardware deployments); false
  /// only advances the simulated stream clock (SimControl::advance_time),
  /// keeping tests and chaos runs fast and deterministic.
  bool sleep_on_backoff = false;
  std::uint64_t jitter_seed = 0x5eedf001u;

  /// True when this policy changes nothing: run the stage once, let
  /// exceptions fly. The runner takes a zero-cost path.
  [[nodiscard]] bool passthrough() const noexcept {
    return max_attempts <= 1 && !quarantine;
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

enum class FaultOutcome {
  kRecovered,        // failed at least once, then a retry succeeded
  kQuarantined,      // attempts exhausted; stage output dropped
  kDeadlineExpired,  // per-stage deadline hit; stage output dropped
};

[[nodiscard]] const char* to_string(FaultOutcome outcome) noexcept;

/// Fleet-level tally of how fault handling ended per node. The one shared
/// spelling for these counts: FleetSummary carries it, net::DecodeFarmStats
/// embeds the same struct, and anything downstream aggregates with +=.
/// `quarantined` = nodes that completed degraded (>= 1 stage quarantined or
/// deadline-expired); `recovered` = nodes that needed retries somewhere but
/// completed clean. A node counts in at most one bucket.
struct FaultTally {
  std::size_t quarantined = 0;
  std::size_t recovered = 0;

  /// Classify one node's fault records into the tally (no records = clean
  /// node, counted in neither bucket).
  void note(const std::vector<struct FaultRecord>& records) noexcept;

  FaultTally& operator+=(const FaultTally& other) noexcept {
    quarantined += other.quarantined;
    recovered += other.recovered;
    return *this;
  }
  friend bool operator==(const FaultTally&, const FaultTally&) = default;
};

/// One stage's fault history inside a CalibrationReport. Only recorded when
/// something actually went wrong — a clean stage leaves no record, so a
/// fault-free node's report is byte-identical with or without faults
/// elsewhere in the fleet.
struct FaultRecord {
  Stage stage{};
  int attempts = 1;                 // attempts consumed (including the last)
  FaultOutcome outcome = FaultOutcome::kRecovered;
  std::string last_error;           // what() of the final failure
  double backoff_total_s = 0.0;     // total backoff injected between attempts
  bool degraded = false;            // stage output missing from the report
};

/// Executes stage bodies under a RetryPolicy for one node. Cheap to
/// construct (the stage-graph executor builds one per stage task); not
/// thread-safe — one runner per concurrently-executing stage.
///
/// `device` may be null for stages that never touch hardware (fov, fuse):
/// their backoff then advances neither the simulated stream clock nor any
/// device state, so a retried pure stage cannot perturb the device-op
/// ordering that the bitwise determinism gate depends on.
///
/// Observability: every retry attempt bumps speccal_retry_attempts_total
/// and (with a trace session) emits a "retry" span nested inside the stage
/// span; recoveries bump speccal_retry_recovered_total, quarantines
/// speccal_fault_quarantined_stages_total, and each backoff lands in the
/// speccal_retry_backoff_ms histogram.
class RetryRunner {
 public:
  RetryRunner(const RetryPolicy& policy, std::string_view node_id,
              sdr::Device* device, obs::TraceSession* trace);

  /// Run `body` under the policy. `reset` restores the stage's outputs to a
  /// clean slate; it is invoked before every attempt and once more after a
  /// final failure (so a quarantined stage never leaks a partial attempt
  /// into the report). Returns true when the stage completed, false when it
  /// was quarantined. Appends to `records` only when a fault occurred.
  /// The jitter stream is reseeded per call from (jitter_seed, node_id,
  /// stage), so the same stage of the same node always draws the same
  /// backoff sequence regardless of what else ran in between.
  bool run(Stage stage, std::vector<FaultRecord>& records,
           const std::function<void()>& reset,
           const std::function<void()>& body);

 private:
  [[nodiscard]] double next_backoff_s(int failed_attempt,
                                      util::Rng& jitter_rng) const noexcept;

  const RetryPolicy& policy_;
  std::string node_id_;
  sdr::Device* device_;
  obs::TraceSession* trace_;
  std::uint64_t node_seed_;
};

}  // namespace speccal::calib
