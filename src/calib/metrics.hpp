// Lightweight stage-timing instrumentation for the calibration pipeline.
//
// Every calibration run records, per pipeline stage, the wall time spent,
// the number of I/Q samples captured, and the number of frames decoded.
// One `StageMetrics` travels inside each `CalibrationReport` (and its JSON
// export); `aggregate_stage_metrics` folds a fleet's worth of them into
// per-stage percentiles so `fleet_audit` and the scaling bench can show
// where calibration time actually goes.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace speccal::util {
class JsonWriter;
}
namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

/// Pipeline stages in execution order (§5 end-to-end system).
enum class Stage {
  kSurvey,       // ADS-B directional survey
  kFov,          // field-of-view estimation
  kCellScan,     // cellular RSRP scan
  kTvSweep,      // broadcast TV power sweep
  kFuse,         // frequency response + classification + trust
  kLoCal,        // reference-oscillator calibration
  kAnomalyScan,  // watchlist band sweep feeding the anomaly detector
};
inline constexpr std::size_t kStageCount = 7;

[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// What one stage of one node's calibration cost.
struct StageSample {
  double wall_ms = 0.0;
  std::uint64_t samples_captured = 0;
  std::uint64_t frames_decoded = 0;
  bool ran = false;
};

/// Per-node instrumentation record (one per CalibrationReport).
struct StageMetrics {
  std::array<StageSample, kStageCount> stages{};

  [[nodiscard]] StageSample& at(Stage stage) noexcept {
    return stages[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] const StageSample& at(Stage stage) const noexcept {
    return stages[static_cast<std::size_t>(stage)];
  }

  [[nodiscard]] double total_wall_ms() const noexcept;
  [[nodiscard]] std::uint64_t total_samples_captured() const noexcept;

  /// Emits the "stage_metrics" value (an object) on an open writer; the
  /// caller provides the surrounding key.
  void write_json(util::JsonWriter& w) const;
};

/// RAII stopwatch: records wall time into a stage sample on destruction
/// (or at an explicit stop()). The single source of truth for stage timing:
/// one steady_clock read pair feeds the StageSample, the per-stage
/// histogram in obs::Registry::global() (speccal_calib_stage_<stage>_ms),
/// and — when a trace session is attached — the stage's Chrome-trace span,
/// so StageMetrics is a per-run view over the same observations the
/// observability layer exports.
///
/// Exception-safe: the destructor records on unwind too (a device that
/// throws mid-stage still leaves its partial wall time in the report), and
/// all timing uses std::chrono::steady_clock — wall-clock time never enters
/// a duration.
class StageTimer {
 public:
  /// `trace` may be null (no span). `node_id` tags the span's args; it is
  /// only copied when a session is attached.
  StageTimer(StageMetrics& metrics, Stage stage,
             obs::TraceSession* trace = nullptr,
             std::string_view node_id = {});
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Stop early and record; idempotent, the destructor then does nothing.
  void stop() noexcept;

 private:
  StageMetrics& metrics_;
  Stage stage_;
  obs::TraceSession* trace_;
  std::string node_id_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// Fleet-wide aggregation of per-node stage timings.
struct FleetStageStats {
  struct Row {
    Stage stage{};
    std::size_t nodes = 0;          // nodes where the stage ran
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double max_ms = 0.0;
    double mean_ms = 0.0;
    std::uint64_t samples_captured = 0;  // fleet total
    std::uint64_t frames_decoded = 0;    // fleet total
  };
  std::vector<Row> rows;  // one per stage that ran on >= 1 node
};

[[nodiscard]] FleetStageStats aggregate_stage_metrics(
    const std::vector<const StageMetrics*>& fleet);

}  // namespace speccal::calib
