#include "calib/ingest.hpp"

#include <stdexcept>
#include <utility>

namespace speccal::calib {

FleetJob make_replay_job(ReplayNodeData data) {
  if (!data.records) {
    throw std::invalid_argument("ReplayNodeData.records must not be null");
  }
  FleetJob job;
  job.claims = data.claims;
  job.make_device = [info = std::move(data.info), position = data.position,
                     rx = data.rx, records = std::move(data.records)] {
    return std::make_unique<sdr::ReplayDevice>(info, position, records, rx);
  };
  return job;
}

}  // namespace speccal::calib
