// Parallel fleet calibration engine — the paper's §2 marketplace at scale.
//
// Electrosense-class deployments calibrate hundreds of nodes against the
// same world model; one node at a time does not cut it. FleetCalibrator
// builds one stage-task subgraph per node (acquire -> pipeline stages ->
// finalize, edges from CalibrationPipeline::stage_plan()) and runs the
// whole batch through a work-stealing StageExecutor, so short stages of
// one node interleave with another node's long tv_sweep:
//   * each job carries a device *factory*, invoked on the worker thread
//     that claims the node's acquire task, so no device state is ever
//     shared, and per-node RNG seeding keeps parallel output
//     bitwise-identical to a serial run;
//   * a failure in one node (device exception, factory error) marks that
//     node's state; its remaining stage tasks turn into no-ops and its
//     finalize task records a flagged report (abort_reason, trust 0) —
//     one broken node never takes down the batch;
//   * results land in the thread-safe NodeRegistry as they complete, so
//     readers can watch the fleet fill in;
//   * cancellation is checked at node admission (the acquire task), so
//     queued jobs drain as skips after in-flight nodes finish;
//   * an admission window (2× threads) bounds how many devices are live
//     at once regardless of fleet size.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "calib/executor.hpp"
#include "calib/metrics.hpp"
#include "calib/pipeline.hpp"
#include "calib/retry.hpp"
#include "calib/runconfig.hpp"

namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

/// One unit of fleet work. `make_device` must be self-contained: it runs on
/// whichever worker thread claims the job.
struct FleetJob {
  NodeClaims claims;
  std::function<std::unique_ptr<sdr::Device>()> make_device;
};

/// Progress ping after each node completes. Invoked from worker threads but
/// serialized by the engine; keep the callback cheap and do not call back
/// into FleetCalibrator::run (request_cancel is fine).
struct FleetProgress {
  std::size_t completed = 0;  // nodes finished so far (this batch)
  std::size_t total = 0;      // jobs in the batch
  std::string node_id;
  bool ok = true;             // false when the node's calibration aborted
  bool quarantined = false;   // >= 1 stage quarantined (degraded report)
};

/// Fleet-side knobs that are not part of the calibration recipe. The
/// thread count is NOT here: scheduling belongs to RunConfig::executor
/// (one spelling per concept), so use the RunConfig constructor to control
/// parallelism.
struct FleetConfig {
  std::function<void(const FleetProgress&)> on_progress;
  /// Optional trace collector (caller-owned, must outlive run()). When set,
  /// each run() records a root "fleet_run" span, one "task" span per graph
  /// task (acquire/stage/finalize, labelled "<node>/<stage>", on the worker
  /// thread that ran it, with a "stolen" flag) and one "stage" span per
  /// pipeline stage nested inside its task by time containment — the
  /// Chrome-trace export drops into Perfetto. Null disables tracing at
  /// zero cost.
  obs::TraceSession* trace = nullptr;
};

struct FleetFailure {
  std::string node_id;
  std::string error;
};

/// What a batch did, plus fleet-wide stage timing percentiles.
struct FleetSummary {
  std::size_t total = 0;       // jobs submitted
  std::size_t calibrated = 0;  // reports recorded (aborted ones included)
  std::size_t failed = 0;      // aborted reports among `calibrated`
  std::size_t skipped = 0;     // jobs never started (cancellation)
  /// Quarantined/recovered node counts — the shared calib::FaultTally
  /// spelling (net::DecodeFarmStats embeds the same struct).
  FaultTally faults;
  double wall_s = 0.0;
  double nodes_per_s = 0.0;
  std::vector<FleetFailure> failures;
  FleetStageStats stage_stats;
  /// What the stage-graph executor did for this batch (threads used, tasks
  /// run/stolen/failed). tasks_run always covers the whole graph — skipped
  /// nodes still execute their (no-op) tasks, so no task is ever orphaned.
  ExecutorStats executor;
};

class FleetCalibrator {
 public:
  /// Pre-built-pipeline entry point. Runs at hardware concurrency; use the
  /// RunConfig constructor to control the thread count.
  explicit FleetCalibrator(CalibrationPipeline pipeline, FleetConfig config = {});

  /// Preferred entry point: build the pipeline from `world` and a
  /// validated RunConfig (throws std::invalid_argument, naming the field,
  /// on bad values). RunConfig::executor.threads sets the worker count
  /// (0 = hardware concurrency, 1 = inline deterministic execution);
  /// RunConfig::executor.trace fills FleetConfig::trace when the latter is
  /// null.
  FleetCalibrator(WorldModel world, RunConfig run, FleetConfig fleet = {});

  /// Calibrate every job, recording each report into `registry` as it
  /// completes. Blocks until the batch finishes (or cancellation drains
  /// the queue). One batch at a time per calibrator.
  FleetSummary run(std::vector<FleetJob> jobs, NodeRegistry& registry);

  /// Ask a running batch to stop after in-flight nodes finish; queued jobs
  /// are skipped. Callable from any thread, including the progress
  /// callback. Cleared at the start of the next run().
  void request_cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const CalibrationPipeline& pipeline() const noexcept { return pipeline_; }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// Configured worker count (RunConfig::executor.threads; 0 = hardware
  /// concurrency).
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Threads run() will actually use for a batch of `jobs` jobs.
  [[nodiscard]] unsigned effective_threads(std::size_t jobs) const noexcept;

 private:
  CalibrationPipeline pipeline_;
  FleetConfig config_;
  unsigned threads_ = 0;
  std::atomic<bool> cancel_{false};
};

}  // namespace speccal::calib
