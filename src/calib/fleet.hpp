// Parallel fleet calibration engine — the paper's §2 marketplace at scale.
//
// Electrosense-class deployments calibrate hundreds of nodes against the
// same world model; one node at a time does not cut it. FleetCalibrator
// runs N calibrations concurrently over a job queue:
//   * each job carries a device *factory*, invoked on the worker thread
//     that picks the job up, so no device state is ever shared and
//     per-node RNG seeding keeps parallel output bitwise-identical to a
//     serial run;
//   * a failure in one node (device exception, factory error) is captured
//     into that node's report (`CalibrationReport::abort_reason`, trust 0)
//     and never takes down the batch;
//   * results land in the thread-safe NodeRegistry as they complete, so
//     readers can watch the fleet fill in;
//   * cancellation drains the queue after in-flight nodes finish.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "calib/metrics.hpp"
#include "calib/pipeline.hpp"

namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

/// One unit of fleet work. `make_device` must be self-contained: it runs on
/// whichever worker thread claims the job.
struct FleetJob {
  NodeClaims claims;
  std::function<std::unique_ptr<sdr::Device>()> make_device;
};

/// Progress ping after each node completes. Invoked from worker threads but
/// serialized by the engine; keep the callback cheap and do not call back
/// into FleetCalibrator::run (request_cancel is fine).
struct FleetProgress {
  std::size_t completed = 0;  // nodes finished so far (this batch)
  std::size_t total = 0;      // jobs in the batch
  std::string node_id;
  bool ok = true;             // false when the node's calibration aborted
  bool quarantined = false;   // >= 1 stage quarantined (degraded report)
};

struct FleetConfig {
  /// Worker threads. 0 = hardware concurrency; 1 = serial fallback, runs
  /// every job inline on the calling thread without spawning.
  unsigned threads = 0;
  std::function<void(const FleetProgress&)> on_progress;
  /// Optional trace collector (caller-owned, must outlive run()). When set,
  /// each run() records a root "fleet_run" span, one span per node (named
  /// by its node id, on the worker thread's track) and one nested span per
  /// pipeline stage — the Chrome-trace export drops into Perfetto. Null
  /// disables tracing at zero cost.
  obs::TraceSession* trace = nullptr;
};

struct FleetFailure {
  std::string node_id;
  std::string error;
};

/// What a batch did, plus fleet-wide stage timing percentiles.
struct FleetSummary {
  std::size_t total = 0;       // jobs submitted
  std::size_t calibrated = 0;  // reports recorded (aborted ones included)
  std::size_t failed = 0;      // aborted reports among `calibrated`
  std::size_t skipped = 0;     // jobs never started (cancellation)
  std::size_t quarantined = 0; // nodes with >= 1 quarantined stage
  std::size_t recovered = 0;   // nodes that needed retries but completed clean
  double wall_s = 0.0;
  double nodes_per_s = 0.0;
  std::vector<FleetFailure> failures;
  FleetStageStats stage_stats;
};

class FleetCalibrator {
 public:
  explicit FleetCalibrator(CalibrationPipeline pipeline, FleetConfig config = {});

  /// Calibrate every job, recording each report into `registry` as it
  /// completes. Blocks until the batch finishes (or cancellation drains
  /// the queue). One batch at a time per calibrator.
  FleetSummary run(std::vector<FleetJob> jobs, NodeRegistry& registry);

  /// Ask a running batch to stop after in-flight nodes finish; queued jobs
  /// are skipped. Callable from any thread, including the progress
  /// callback. Cleared at the start of the next run().
  void request_cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const CalibrationPipeline& pipeline() const noexcept { return pipeline_; }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  /// Threads run() will actually use for a batch of `jobs` jobs.
  [[nodiscard]] unsigned effective_threads(std::size_t jobs) const noexcept;

 private:
  CalibrationPipeline pipeline_;
  FleetConfig config_;
  std::atomic<bool> cancel_{false};
};

}  // namespace speccal::calib
