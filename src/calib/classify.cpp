#include "calib/classify.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <utility>

namespace speccal::calib {

std::string to_string(InstallationType type) {
  switch (type) {
    case InstallationType::kOutdoorOpen: return "outdoor (open sky)";
    case InstallationType::kOutdoorPartial: return "outdoor (partially screened)";
    case InstallationType::kIndoorWindow: return "indoor (behind window)";
    case InstallationType::kIndoorDeep: return "indoor (interior)";
  }
  return "?";
}

namespace {
[[nodiscard]] const BandQuality* find_class(const FrequencyResponseReport& freq,
                                            cellular::SpectrumClass cls) noexcept {
  for (const auto& bq : freq.bands)
    if (bq.band_class == cls) return &bq;
  return nullptr;
}

[[nodiscard]] std::string format_db(double db) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << db << " dB";
  return os.str();
}
}  // namespace

Classification classify_installation(const FovEstimate& fov,
                                     const FrequencyResponseReport& freq,
                                     const ClassifierConfig& config) {
  Classification out;

  const double open_frac = fov.open_fraction_deg;
  const BandQuality* low = find_class(freq, cellular::SpectrumClass::kLowBand);
  const BandQuality* mid = find_class(freq, cellular::SpectrumClass::kMidBand);

  const double low_atten = low && low->sources_received > 0
                               ? low->mean_attenuation_db
                               : (low ? 60.0 : 0.0);
  const double mid_atten = mid && mid->sources_received > 0
                               ? mid->mean_attenuation_db
                               : (mid ? 60.0 : 0.0);
  const bool mid_dead = mid != nullptr &&
                        (mid->sources_received == 0 ||
                         mid->mean_attenuation_db >= config.mid_band_dead_db);
  const bool rising_slope =
      freq.attenuation_slope_db_per_decade >= config.indoor_slope_db_per_decade;

  // Evidence scores per hypothesis; the max wins, the margin is confidence.
  double outdoor_open = 0.0, outdoor_partial = 0.0, window = 0.0, deep = 0.0;

  if (open_frac >= config.open_fov_fraction) {
    outdoor_open += 2.0;
    out.rationale.push_back("wide ADS-B field of view (" +
                            std::to_string(static_cast<int>(open_frac * 100.0)) +
                            "% of horizon open)");
  } else if (open_frac <= config.narrow_fov_fraction) {
    window += 1.0;
    deep += 1.5;
    out.rationale.push_back("narrow ADS-B field of view");
  } else {
    outdoor_partial += 1.5;
    out.rationale.push_back("partially open ADS-B field of view");
  }

  if (low_atten <= config.low_band_ok_db) {
    outdoor_open += 1.0;
    outdoor_partial += 1.0;
    window += 0.5;  // low band often survives glass/walls
    out.rationale.push_back("low-band reception near clear-sky level (" +
                            format_db(low_atten) + " attenuation)");
  } else {
    deep += 1.0;
    out.rationale.push_back("low-band attenuated by " + format_db(low_atten));
  }

  if (mid_dead) {
    deep += 2.0;
    window += 1.0;
    out.rationale.push_back("mid-band sources undecodable or heavily attenuated");
  } else if (mid_atten > config.low_band_ok_db) {
    window += 1.5;
    out.rationale.push_back("mid-band attenuated by " + format_db(mid_atten) +
                            " (glass/penetration signature)");
  } else {
    outdoor_open += 1.0;
    outdoor_partial += 0.5;
    out.rationale.push_back("mid-band reception near clear-sky level");
  }

  if (rising_slope) {
    window += 1.0;
    deep += 1.0;
    out.rationale.push_back(
        "attenuation rises with frequency (" +
        format_db(freq.attenuation_slope_db_per_decade) + "/decade)");
  }

  // Distinguish window from deep indoor: a window keeps a usable slice of
  // the horizon together with the glass's mid-band attenuation signature;
  // deep indoor loses the horizon entirely.
  if (open_frac > 0.03 && open_frac <= config.narrow_fov_fraction &&
      mid_atten > config.low_band_ok_db)
    window += 1.0;
  if (open_frac <= 0.03) deep += 1.0;

  // A screened-but-clean node (narrow ADS-B view yet clear-sky reception in
  // both bands) is an outdoor installation behind structures, not an indoor
  // one — indoor siting always leaves a spectral fingerprint.
  if (!mid_dead && mid_atten <= config.low_band_ok_db &&
      low_atten <= config.low_band_ok_db)
    outdoor_partial += 1.0;

  const std::array<std::pair<InstallationType, double>, 4> scores = {{
      {InstallationType::kOutdoorOpen, outdoor_open},
      {InstallationType::kOutdoorPartial, outdoor_partial},
      {InstallationType::kIndoorWindow, window},
      {InstallationType::kIndoorDeep, deep},
  }};
  auto best = std::max_element(scores.begin(), scores.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                               });
  double second = 0.0;
  double total = 0.0;
  for (const auto& [type, score] : scores) {
    total += score;
    if (type != best->first) second = std::max(second, score);
  }
  out.type = best->first;
  out.confidence = total > 0.0 ? std::clamp((best->second - second) / total + 0.5, 0.0, 1.0)
                               : 0.0;
  return out;
}

}  // namespace speccal::calib
