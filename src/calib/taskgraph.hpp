// Static task graph for the stage-graph fleet executor.
//
// A TaskGraph is a plain DAG of labelled closures: build it once (add tasks,
// declare dependencies), hand it to a StageExecutor to run. The graph itself
// owns no threads and carries no runtime state — the executor materializes
// per-run atomic prerequisite counters, so one graph could in principle be
// executed twice, and building a graph is cheap enough to do per batch.
//
// The fleet engine builds one subgraph per node (acquire -> pipeline stages
// -> finalize) with the pipeline's declared stage dependencies as edges, so
// short stages of one node interleave with another node's long tv_sweep
// instead of queueing behind it.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace speccal::calib {

class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Add a task. `label` names the task in trace spans and error reports;
  /// `body` runs exactly once, on whichever worker claims the task. Bodies
  /// that throw are caught by the executor (the task still counts as
  /// completed for dependency purposes — see StageExecutor).
  TaskId add(std::string label, std::function<void()> body);

  /// Declare that `task` must not start before `prerequisite` finished.
  /// Both ids must come from add() on this graph; self-edges are rejected.
  /// Throws std::invalid_argument on an unknown id or a self-edge. Duplicate
  /// edges are allowed (counted once per call — keep them unique).
  void depends(TaskId task, TaskId prerequisite);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  [[nodiscard]] const std::string& label(TaskId id) const { return nodes_.at(id).label; }
  [[nodiscard]] const std::function<void()>& body(TaskId id) const {
    return nodes_.at(id).body;
  }
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const {
    return nodes_.at(id).successors;
  }
  [[nodiscard]] std::size_t prerequisite_count(TaskId id) const {
    return nodes_.at(id).prerequisites;
  }

 private:
  struct Node {
    std::string label;
    std::function<void()> body;
    std::vector<TaskId> successors;
    std::size_t prerequisites = 0;
  };
  std::vector<Node> nodes_;
};

}  // namespace speccal::calib
