#include "calib/trust.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

namespace speccal::calib {

std::size_t TrustReport::violations() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const ClaimFinding& f) {
        return f.severity == Severity::kViolation;
      }));
}

std::vector<ClaimFinding> detect_fabrication(const SurveyResult& survey,
                                             const TrustConfig& config) {
  std::vector<ClaimFinding> findings;

  // 1. Receptions with no ground-truth counterpart.
  const std::size_t received = survey.received_count();
  const std::size_t reported = received + survey.unmatched_receptions;
  if (reported > 0) {
    const double unmatched_frac =
        static_cast<double>(survey.unmatched_receptions) / static_cast<double>(reported);
    if (unmatched_frac > config.max_unmatched_fraction) {
      std::ostringstream os;
      os << survey.unmatched_receptions << " of " << reported
         << " reported aircraft do not exist in the ground-truth feed";
      findings.push_back({Severity::kViolation, os.str()});
    }
  }

  // 2. RSSI should fall with range (free-space ADS-B). The check must be
  //    computed per azimuth sector: at an obstructed site, near aircraft
  //    arrive through walls (weak) while far ones arrive through the clear
  //    direction (strong), so the *global* range-RSSI correlation can be
  //    legitimately positive. Within one sector the environment is
  //    consistent and RSSI must decay.
  constexpr int kSectors = 8;
  struct Accum {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    std::size_t n = 0;
  };
  std::array<Accum, kSectors> sectors{};
  for (const auto& obs : survey.observations) {
    if (!obs.received || obs.range_km <= 0.0) continue;
    auto& acc = sectors[static_cast<std::size_t>(
        std::fmod(obs.azimuth_deg + 360.0, 360.0) / (360.0 / kSectors))];
    const double x = std::log10(obs.range_km);
    const double y = obs.best_rssi_dbfs;
    acc.sx += x; acc.sy += y; acc.sxx += x * x; acc.syy += y * y;
    acc.sxy += x * y;
    ++acc.n;
  }
  double corr_sum = 0.0;
  std::size_t corr_weight = 0;
  for (const auto& acc : sectors) {
    if (acc.n < 6) continue;  // too few samples for a stable estimate
    const double nf = static_cast<double>(acc.n);
    const double cov = acc.sxy / nf - (acc.sx / nf) * (acc.sy / nf);
    const double vx = acc.sxx / nf - (acc.sx / nf) * (acc.sx / nf);
    const double vy = acc.syy / nf - (acc.sy / nf) * (acc.sy / nf);
    if (vx <= 1e-12 || vy <= 1e-12) continue;
    corr_sum += (cov / std::sqrt(vx * vy)) * nf;
    corr_weight += acc.n;
  }
  if (corr_weight >= 8) {
    const double corr = corr_sum / static_cast<double>(corr_weight);
    if (corr > 0.3) {
      std::ostringstream os;
      os << "RSSI increases with range within azimuth sectors (corr=" << corr
         << "): power readings inconsistent with radio physics";
      findings.push_back({Severity::kViolation, os.str()});
    } else if (corr > -0.05) {
      findings.push_back({Severity::kWarning,
                          "RSSI shows no decay with range; power readings suspicious"});
    }
  }

  // 3. Decoded positions should match ground truth within feed staleness
  //    (paper: <= 2.5 km for a 10 s feed latency, plus aircraft motion).
  std::size_t position_checked = 0, position_bad = 0;
  for (const auto& obs : survey.observations) {
    if (!obs.received || !obs.decoded_position) continue;
    ++position_checked;
    const double err_m = geo::haversine_m(obs.position, *obs.decoded_position);
    if (err_m > 6000.0) ++position_bad;
  }
  if (position_checked >= 4 && position_bad * 2 > position_checked) {
    findings.push_back({Severity::kViolation,
                        "majority of decoded aircraft positions disagree with ground truth"});
  }
  return findings;
}

TrustReport evaluate_trust(const NodeClaims& claims, const SurveyResult& survey,
                           const FovEstimate& fov, const FrequencyResponseReport& freq,
                           const Classification& classification,
                           const TrustConfig& config) {
  TrustReport report;
  double score = 100.0;

  // Claim: omnidirectional / unobstructed view.
  if (claims.claims_omnidirectional) {
    if (fov.open_fraction_deg < config.omni_min_open_fraction) {
      std::ostringstream os;
      os << "claims unobstructed view but only "
         << static_cast<int>(fov.open_fraction_deg * 100.0)
         << "% of the horizon receives distant ADS-B";
      report.findings.push_back({Severity::kViolation, os.str()});
      score -= 25.0;
    } else {
      report.findings.push_back({Severity::kInfo, "omnidirectional claim verified by ADS-B"});
    }
  }

  // Claim: outdoor installation.
  if (claims.claims_outdoor && classification.indoor() &&
      classification.confidence >= config.indoor_confidence_cutoff) {
    report.findings.push_back(
        {Severity::kViolation,
         "claims outdoor installation but evidence indicates " +
             to_string(classification.type)});
    score -= 25.0;
  }

  // Claim: frequency range. Each measured source inside the claimed range
  // with catastrophic attenuation counts against the claim.
  std::size_t in_range = 0, failed = 0;
  for (const auto& m : freq.measurements) {
    if (m.freq_hz < claims.min_freq_hz || m.freq_hz > claims.max_freq_hz) continue;
    ++in_range;
    const double atten = m.measured_dbm ? m.expected_dbm - *m.measured_dbm : 1e9;
    if (atten > config.band_failure_db) ++failed;
  }
  if (in_range > 0 && failed > 0) {
    std::ostringstream os;
    os << failed << " of " << in_range
       << " known sources inside the claimed frequency range are effectively unreceivable";
    report.findings.push_back(
        {failed * 2 >= in_range ? Severity::kViolation : Severity::kWarning, os.str()});
    score -= 30.0 * static_cast<double>(failed) / static_cast<double>(in_range);
  }

  // Fabrication checks.
  for (auto& finding : detect_fabrication(survey, config)) {
    score -= finding.severity == Severity::kViolation ? 40.0 : 10.0;
    report.findings.push_back(std::move(finding));
  }

  report.score = std::clamp(score, 0.0, 100.0);
  return report;
}

}  // namespace speccal::calib
