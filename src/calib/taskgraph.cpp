#include "calib/taskgraph.hpp"

#include <stdexcept>

namespace speccal::calib {

TaskGraph::TaskId TaskGraph::add(std::string label, std::function<void()> body) {
  Node node;
  node.label = std::move(label);
  node.body = std::move(body);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void TaskGraph::depends(TaskId task, TaskId prerequisite) {
  if (task >= nodes_.size())
    throw std::invalid_argument("TaskGraph::depends: unknown task id");
  if (prerequisite >= nodes_.size())
    throw std::invalid_argument("TaskGraph::depends: unknown prerequisite id");
  if (task == prerequisite)
    throw std::invalid_argument("TaskGraph::depends: task cannot depend on itself");
  nodes_[prerequisite].successors.push_back(task);
  ++nodes_[task].prerequisites;
}

}  // namespace speccal::calib
