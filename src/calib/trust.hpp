// Trust scoring and claim verification.
//
// The paper's motivation: operators are paid per measurement, so a node's
// self-description (frequency range, siting, antenna) cannot be taken at
// face value, and fabricated data must be detectable. This module compares
// operator claims against calibration evidence and runs consistency checks
// on the reported receptions themselves.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "calib/classify.hpp"
#include "calib/fov.hpp"
#include "calib/freqresp.hpp"
#include "calib/survey.hpp"

namespace speccal::calib {

/// What the operator advertises about the node.
struct NodeClaims {
  std::string node_id;
  double min_freq_hz = 100e6;
  double max_freq_hz = 6e9;
  bool claims_outdoor = false;
  bool claims_omnidirectional = true;  // unobstructed 360 degree view
};

enum class Severity { kInfo, kWarning, kViolation };

struct ClaimFinding {
  Severity severity = Severity::kInfo;
  std::string description;
};

struct TrustReport {
  double score = 0.0;  // 0 (untrustworthy) .. 100 (verified)
  std::vector<ClaimFinding> findings;

  [[nodiscard]] std::size_t violations() const noexcept;
};

struct TrustConfig {
  /// Omnidirectional claim fails below this open fraction.
  double omni_min_open_fraction = 0.85;
  /// Outdoor claim fails when classified indoor with at least this confidence.
  double indoor_confidence_cutoff = 0.4;
  /// A claimed band is unsupported if its sources show worse attenuation.
  double band_failure_db = 35.0;
  /// Fabrication: fraction of receptions not present in ground truth above
  /// which the node's data stream is considered manufactured.
  double max_unmatched_fraction = 0.05;
};

/// Verify the claims against calibration evidence and produce a score.
[[nodiscard]] TrustReport evaluate_trust(const NodeClaims& claims,
                                         const SurveyResult& survey,
                                         const FovEstimate& fov,
                                         const FrequencyResponseReport& freq,
                                         const Classification& classification,
                                         const TrustConfig& config = {});

/// Standalone fabrication test on a survey: receptions that ground truth
/// cannot account for, and physically impossible RSSI/range combinations.
/// Returns findings only (no score).
[[nodiscard]] std::vector<ClaimFinding> detect_fabrication(const SurveyResult& survey,
                                                           const TrustConfig& config = {});

}  // namespace speccal::calib
