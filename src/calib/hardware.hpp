// Hardware fault diagnosis — §5 "Other types of calibration".
//
// Siting problems (the paper's focus) leave frequency- and direction-
// dependent fingerprints. Hardware problems look different:
//   * a damaged cable / corroded connector attenuates every band and every
//     direction by roughly the same amount (flat offset, low slope, wide
//     field of view),
//   * an antenna narrower than the operator claims shows attenuation
//     concentrated outside its rated band while the in-band sources are
//     healthy.
// This module separates those signatures so the operator gets an
// actionable diagnosis ("replace the cable") instead of a trust penalty.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "calib/fov.hpp"
#include "calib/freqresp.hpp"

namespace speccal::calib {

struct HardwareDiagnosisConfig {
  /// A flat attenuation above this, with low slope and a wide FoV, points
  /// at the RF plumbing rather than the siting.
  double cable_fault_floor_db = 6.0;
  /// |attenuation slope| below this counts as frequency-flat.
  double flat_slope_db_per_decade = 6.0;
  /// FoV open fraction above this rules out heavy siting obstruction
  /// (window/indoor sites sit well below 0.15; even a partially screened
  /// outdoor install keeps a quarter of the horizon).
  double open_fov_fraction = 0.2;
  /// Per-band-edge attenuation above the in-band median by this margin
  /// indicates the antenna does not cover the claimed range.
  double band_edge_excess_db = 12.0;
};

struct HardwareDiagnosis {
  bool cable_fault_suspected = false;
  /// Estimated flat loss attributable to the RF path [dB].
  double estimated_cable_loss_db = 0.0;
  bool antenna_band_mismatch = false;
  /// Frequencies (of measured sources) the antenna appears deaf to.
  std::vector<double> deaf_frequencies_hz;
  std::vector<std::string> notes;

  [[nodiscard]] bool healthy() const noexcept {
    return !cable_fault_suspected && !antenna_band_mismatch;
  }
};

/// Diagnose hardware from the frequency response and field-of-view evidence.
[[nodiscard]] HardwareDiagnosis diagnose_hardware(
    const FrequencyResponseReport& freq, const FovEstimate& fov,
    const HardwareDiagnosisConfig& config = {});

}  // namespace speccal::calib
