// ML-based installation classification — the paper's §5 direction:
// "Some recent studies have started looking at ML-based techniques to
//  obtain different types of information from signals of opportunity, such
//  as using Wi-Fi and cellular signals to determine if a device is indoor
//  or outdoor."
//
// A compact logistic-regression classifier over calibration-derived
// features. Training runs in-library (batch gradient descent with L2
// regularization) so a deployment can retrain on its own labeled fleet;
// the rule-based classifier in classify.hpp remains the zero-data
// baseline it is benchmarked against.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "calib/pipeline.hpp"

namespace speccal::calib {

/// Feature vector extracted from one calibration report.
struct MlFeatures {
  static constexpr std::size_t kCount = 6;
  std::array<double, kCount> values{};

  /// Feature order (all scaled to roughly [0, 1]):
  ///  0 ADS-B open horizon fraction
  ///  1 ADS-B received fraction of ground-truth aircraft
  ///  2 low-band mean attenuation / 50 dB
  ///  3 mid-band mean attenuation / 50 dB (lost sources -> 1.0)
  ///  4 mid-band received fraction
  ///  5 attenuation slope / 50 dB-per-decade (clamped)
  [[nodiscard]] static MlFeatures from_report(const CalibrationReport& report);

  [[nodiscard]] static const char* name(std::size_t index) noexcept;
};

struct TrainConfig {
  double learning_rate = 0.5;
  int epochs = 2000;
  double l2 = 1e-3;
};

/// Binary logistic regression: P(indoor | features).
class IndoorClassifier {
 public:
  /// Train on labeled examples (label true = indoor). Returns the final
  /// training loss (mean cross-entropy + L2 term).
  double train(std::span<const MlFeatures> examples, const std::vector<bool>& labels,
               const TrainConfig& config = {});

  [[nodiscard]] double predict_probability(const MlFeatures& features) const noexcept;
  [[nodiscard]] bool predict_indoor(const MlFeatures& features,
                                    double threshold = 0.5) const noexcept {
    return predict_probability(features) >= threshold;
  }

  [[nodiscard]] const std::array<double, MlFeatures::kCount>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double bias() const noexcept { return bias_; }

 private:
  std::array<double, MlFeatures::kCount> weights_{};
  double bias_ = 0.0;
};

}  // namespace speccal::calib
