#include "calib/fov.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace speccal::calib {

namespace {

/// Merge consecutive open bins (wrapping) into maximal sectors.
geo::SectorSet bins_to_sectors(const std::vector<AzimuthBin>& bins, double bin_width) {
  geo::SectorSet out;
  const std::size_t n = bins.size();
  if (n == 0) return out;
  bool any_closed = false;
  for (const auto& b : bins) any_closed |= !b.open;
  if (!any_closed) {
    out.add(geo::Sector{0.0, 0.0});
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t prev = (i + n - 1) % n;
    if (bins[i].open && !bins[prev].open) {
      std::size_t j = i;
      std::size_t len = 0;
      while (bins[j].open && len < n) {
        j = (j + 1) % n;
        ++len;
      }
      const double start = bins[i].center_deg - bin_width / 2.0;
      out.add(geo::Sector{util::wrap_degrees(start),
                          util::wrap_degrees(start + static_cast<double>(len) * bin_width)});
    }
  }
  return out;
}

void finalize(FovEstimate& est, double bin_width) {
  est.open_sectors = bins_to_sectors(est.bins, bin_width);
  est.open_fraction_deg = est.open_sectors.coverage_deg() / 360.0;
}

}  // namespace

FovEstimate estimate_fov_sectors(const SurveyResult& survey, const FovConfig& config) {
  FovEstimate est;
  const auto bin_count =
      static_cast<std::size_t>(std::lround(360.0 / config.bin_width_deg));
  est.bins.resize(bin_count);
  for (std::size_t i = 0; i < bin_count; ++i)
    est.bins[i].center_deg = (static_cast<double>(i) + 0.5) * config.bin_width_deg;

  for (const auto& obs : survey.observations) {
    if (obs.range_km < config.near_field_km) continue;
    ++est.usable_observations;
    auto idx = static_cast<std::size_t>(util::wrap_degrees(obs.azimuth_deg) /
                                        config.bin_width_deg);
    idx = std::min(idx, bin_count - 1);
    AzimuthBin& bin = est.bins[idx];
    ++bin.present;
    if (obs.received) {
      ++bin.received;
      bin.max_received_km = std::max(bin.max_received_km, obs.range_km);
    }
  }

  // First pass: verdicts for bins with enough traffic.
  for (auto& bin : est.bins) {
    if (bin.present >= config.min_samples) {
      bin.open = static_cast<double>(bin.received) >=
                 config.open_fraction * static_cast<double>(bin.present);
    }
  }
  // Second pass: interpolate empty bins from the nearest decided ones
  // (absence of traffic is not evidence of blockage).
  for (std::size_t i = 0; i < bin_count; ++i) {
    AzimuthBin& bin = est.bins[i];
    if (bin.present >= config.min_samples) continue;
    bin.interpolated = true;
    for (std::size_t step = 1; step <= bin_count / 2; ++step) {
      const AzimuthBin& left = est.bins[(i + bin_count - step) % bin_count];
      const AzimuthBin& right = est.bins[(i + step) % bin_count];
      const bool left_decided = left.present >= config.min_samples;
      const bool right_decided = right.present >= config.min_samples;
      if (left_decided || right_decided) {
        if (left_decided && right_decided)
          bin.open = left.open || right.open;  // optimistic tie-break
        else
          bin.open = left_decided ? left.open : right.open;
        break;
      }
    }
  }

  finalize(est, config.bin_width_deg);
  return est;
}

FovEstimate estimate_fov_knn(const SurveyResult& survey, const FovConfig& config) {
  FovEstimate est;

  // Range-gated training points.
  struct Point {
    double azimuth;
    double weight;   // larger = stronger evidence
    bool received;
  };
  std::vector<Point> points;
  for (const auto& obs : survey.observations) {
    if (obs.range_km < config.near_field_km) continue;
    ++est.usable_observations;
    // Far receptions are strong evidence of openness; far misses are strong
    // evidence of blockage. Weight grows with range.
    const double w = 1.0 + config.knn_range_weight * (obs.range_km / 50.0);
    points.push_back({util::wrap_degrees(obs.azimuth_deg), w, obs.received});
  }

  // Classify each degree of the horizon with distance-weighted KNN.
  constexpr std::size_t kBins = 360;
  est.bins.resize(kBins);
  std::vector<std::pair<double, std::size_t>> dist;  // (angular distance, point index)
  dist.reserve(points.size());
  for (std::size_t az = 0; az < kBins; ++az) {
    AzimuthBin& bin = est.bins[az];
    bin.center_deg = static_cast<double>(az) + 0.5;
    if (points.empty()) continue;

    dist.clear();
    for (std::size_t p = 0; p < points.size(); ++p)
      dist.emplace_back(util::angular_distance_deg(bin.center_deg, points[p].azimuth), p);
    const auto k = std::min<std::size_t>(static_cast<std::size_t>(config.knn_k),
                                         dist.size());
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                      dist.end());

    double open_vote = 0.0;
    double closed_vote = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const Point& pt = points[dist[j].second];
      // Inverse-distance weighting in angle, floored to avoid singularities.
      const double w = pt.weight / (1.0 + dist[j].first / 10.0);
      if (pt.received)
        open_vote += w;
      else
        closed_vote += w;
      ++bin.present;
      if (pt.received) ++bin.received;
    }
    bin.open = open_vote > closed_vote;
  }

  finalize(est, 1.0);
  return est;
}

double fov_accuracy(const FovEstimate& estimate, const geo::SectorSet& truth_clear) noexcept {
  return geo::coverage_similarity(estimate.open_sectors, truth_clear);
}

}  // namespace speccal::calib
