#include "calib/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "geo/wgs84.hpp"
#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace speccal::calib {

void AnomalyConfig::validate() const {
  if (residual_threshold_db <= 0.0)
    throw std::invalid_argument(
        "AnomalyConfig.residual_threshold_db must be > 0");
  if (distance_sigma_m <= 0.0)
    throw std::invalid_argument("AnomalyConfig.distance_sigma_m must be > 0");
  if (min_band_population < 2)
    throw std::invalid_argument(
        "AnomalyConfig.min_band_population must be >= 2");
  if (min_neighbor_weight <= 0.0)
    throw std::invalid_argument(
        "AnomalyConfig.min_neighbor_weight must be > 0");
  if (cw_rho_threshold <= 0.0 || cw_rho_threshold > 1.0)
    throw std::invalid_argument(
        "AnomalyConfig.cw_rho_threshold must be in (0, 1]");
  if (jammer_min_bands < 2)
    throw std::invalid_argument("AnomalyConfig.jammer_min_bands must be >= 2");
}

const char* to_string(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kWidebandJammer: return "wideband-jammer";
    case AnomalyKind::kSpuriousEmitter: return "spurious-emitter";
    case AnomalyKind::kIntermodPair: return "intermod-pair";
    case AnomalyKind::kGhostAdsb: return "ghost-adsb";
    case AnomalyKind::kRoguePss: return "rogue-pss";
  }
  return "?";
}

const AnomalyFinding* AnomalyReport::find(
    const std::string& node_id) const noexcept {
  for (const AnomalyFinding& f : findings)
    if (f.node_id == node_id) return &f;
  return nullptr;
}

bool AnomalyReport::flagged(const std::string& node_id) const noexcept {
  return find(node_id) != nullptr;
}

void AnomalyReport::write_json(std::ostream& os) const {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::int64_t{1});
  w.key("residual_threshold_db");
  w.value(residual_threshold_db);
  w.key("geo_weighted");
  w.value(geo_weighted);
  w.key("nodes_evaluated");
  w.value(static_cast<std::int64_t>(nodes_evaluated));
  w.key("bands_evaluated");
  w.value(static_cast<std::int64_t>(bands_evaluated));
  w.key("flagged_nodes");
  w.value(static_cast<std::int64_t>(flagged_nodes));
  w.key("findings");
  w.begin_array();
  for (const AnomalyFinding& f : findings) {
    w.begin_object();
    w.key("node");
    w.value(f.node_id);
    w.key("kind");
    w.value(to_string(f.kind));
    w.key("worst_residual_db");
    w.value(f.worst_residual_db);
    w.key("max_rho");
    w.value(f.max_rho);
    w.key("bands");
    w.begin_array();
    for (const std::string& b : f.bands) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

AnomalyDetector::AnomalyDetector(AnomalyConfig config) : config_(config) {
  config_.validate();
}

namespace {

/// Which typing group a band key belongs to.
enum class BandGroup { kTv, kAdsb, kCell };

struct BandObs {
  std::string key;
  BandGroup group = BandGroup::kTv;
  double power_dbfs = -200.0;
  double rho = 0.0;
};

struct NodeData {
  std::string id;
  geo::Geodetic position;
  bool has_position = false;
  std::vector<BandObs> bands;
};

BandGroup classify_watch(const std::string& label) {
  if (label.rfind("adsb", 0) == 0) return BandGroup::kAdsb;
  if (label.rfind("cell", 0) == 0) return BandGroup::kCell;
  // Unknown watch labels participate like a narrow TV-style band.
  return BandGroup::kTv;
}

/// Weighted median of (value, weight) pairs: the smallest value whose
/// cumulative weight reaches half the total. Reduces to the lower-median
/// for uniform weights, which is all the determinism the residual test
/// needs (clean same-site peers are byte-identical anyway).
double weighted_median(std::vector<std::pair<double, double>>& entries) {
  std::sort(entries.begin(), entries.end());
  double total = 0.0;
  for (const auto& [value, weight] : entries) total += weight;
  double cum = 0.0;
  for (const auto& [value, weight] : entries) {
    cum += weight;
    if (cum >= 0.5 * total) return value;
  }
  return entries.back().first;
}

struct FlaggedBand {
  const BandObs* obs = nullptr;
  double residual_db = 0.0;
};

}  // namespace

AnomalyReport AnomalyDetector::evaluate(const NodeRegistry& registry) const {
  AnomalyReport out;
  out.residual_threshold_db = config_.residual_threshold_db;

  // Pass 1: gather every node's measured bands — the TV sweep plus the
  // anomaly scan's watchlist — and its scan position.
  std::vector<NodeData> nodes;
  registry.for_each_report([&](const CalibrationReport& report) {
    NodeData node;
    node.id = report.claims.node_id;
    if (report.anomaly_scan.ran) {
      node.position = report.anomaly_scan.position;
      node.has_position = true;
    }
    for (const auto& reading : report.tv_readings) {
      if (!reading.tune_ok) continue;
      node.bands.push_back({"tv:" + std::to_string(reading.rf_channel),
                            BandGroup::kTv, reading.power_dbfs,
                            reading.autocorr_rho});
    }
    for (const auto& band : report.anomaly_scan.bands) {
      if (!band.tune_ok) continue;
      node.bands.push_back({"watch:" + band.label, classify_watch(band.label),
                            band.power_dbfs, band.autocorr_rho});
    }
    nodes.push_back(std::move(node));
  });
  out.nodes_evaluated = nodes.size();
  if (nodes.size() < 2) return out;

  out.geo_weighted = std::all_of(nodes.begin(), nodes.end(),
                                 [](const NodeData& n) { return n.has_position; });

  // Per-band fleet samples (node index, power), population-gated.
  std::map<std::string, std::vector<std::pair<std::size_t, double>>> band_samples;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (const BandObs& b : nodes[i].bands)
      band_samples[b.key].push_back({i, b.power_dbfs});
  for (auto it = band_samples.begin(); it != band_samples.end();)
    it = it->second.size() < config_.min_band_population
             ? band_samples.erase(it)
             : std::next(it);
  out.bands_evaluated = band_samples.size();

  // Pairwise distance -> neighbor weight (computed lazily per node pair).
  const double two_sigma_sq =
      2.0 * config_.distance_sigma_m * config_.distance_sigma_m;
  const auto neighbor_weight = [&](std::size_t i, std::size_t j) {
    if (!out.geo_weighted) return 1.0;
    const double d = geo::slant_range_m(nodes[i].position, nodes[j].position);
    return std::exp(-(d * d) / two_sigma_sq);
  };

  // Pass 2: each node's bands against the neighbor-weighted consensus of
  // everyone else, then type the flagged set.
  std::vector<std::pair<double, double>> entries;  // (power, weight) scratch
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<FlaggedBand> tv, adsb, cell;
    for (const BandObs& b : nodes[i].bands) {
      const auto it = band_samples.find(b.key);
      if (it == band_samples.end()) continue;
      entries.clear();
      double total_weight = 0.0;
      for (const auto& [j, power] : it->second) {
        if (j == i) continue;
        const double w = neighbor_weight(i, j);
        entries.push_back({power, w});
        total_weight += w;
      }
      if (entries.empty()) continue;
      if (out.geo_weighted && total_weight < config_.min_neighbor_weight)
        continue;  // node too isolated for a trustworthy consensus
      const double consensus = weighted_median(entries);
      const double residual = b.power_dbfs - consensus;
      if (residual < config_.residual_threshold_db) continue;
      FlaggedBand flagged{&b, residual};
      switch (b.group) {
        case BandGroup::kTv: tv.push_back(flagged); break;
        case BandGroup::kAdsb: adsb.push_back(flagged); break;
        case BandGroup::kCell: cell.push_back(flagged); break;
      }
    }
    if (tv.empty() && adsb.empty() && cell.empty()) continue;

    const auto make_finding = [&](AnomalyKind kind,
                                  const std::vector<FlaggedBand>& bands) {
      AnomalyFinding f;
      f.kind = kind;
      f.node_id = nodes[i].id;
      for (const FlaggedBand& fb : bands) {
        f.bands.push_back(fb.obs->key);
        f.worst_residual_db = std::max(f.worst_residual_db, fb.residual_db);
        f.max_rho = std::max(f.max_rho, fb.obs->rho);
      }
      std::sort(f.bands.begin(), f.bands.end());
      out.findings.push_back(std::move(f));
    };

    if (!adsb.empty()) make_finding(AnomalyKind::kGhostAdsb, adsb);
    if (!cell.empty()) make_finding(AnomalyKind::kRoguePss, cell);
    if (!tv.empty()) {
      const bool all_coherent =
          std::all_of(tv.begin(), tv.end(), [&](const FlaggedBand& fb) {
            return fb.obs->rho >= config_.cw_rho_threshold;
          });
      AnomalyKind kind;
      if (tv.size() >= config_.jammer_min_bands)
        kind = AnomalyKind::kWidebandJammer;
      else if (tv.size() == 2)
        kind = all_coherent ? AnomalyKind::kIntermodPair
                            : AnomalyKind::kWidebandJammer;
      else
        kind = AnomalyKind::kSpuriousEmitter;
      make_finding(kind, tv);
    }
    ++out.flagged_nodes;
  }

  // Worst-first; node id and kind tiebreaks keep the export deterministic.
  std::sort(out.findings.begin(), out.findings.end(),
            [](const AnomalyFinding& a, const AnomalyFinding& b) {
              if (a.worst_residual_db != b.worst_residual_db)
                return a.worst_residual_db > b.worst_residual_db;
              if (a.node_id != b.node_id) return a.node_id < b.node_id;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return out;
}

void AnomalyDetector::publish(const AnomalyReport& report,
                              obs::Registry& registry) const {
  registry.counter("speccal_anomaly_findings_total")
      .add(report.findings.size());
  registry.gauge("speccal_anomaly_flagged_nodes")
      .set(static_cast<double>(report.flagged_nodes));
  registry.gauge("speccal_anomaly_bands_evaluated")
      .set(static_cast<double>(report.bands_evaluated));
  // One series per kind, zeroed when absent, so dashboards and the CI
  // smoke assertions see a stable set.
  constexpr AnomalyKind kKinds[] = {
      AnomalyKind::kWidebandJammer, AnomalyKind::kSpuriousEmitter,
      AnomalyKind::kIntermodPair, AnomalyKind::kGhostAdsb,
      AnomalyKind::kRoguePss};
  for (AnomalyKind kind : kKinds) {
    std::size_t count = 0;
    for (const AnomalyFinding& f : report.findings)
      if (f.kind == kind) ++count;
    registry.gauge("speccal_anomaly_findings", {{"kind", to_string(kind)}})
        .set(static_cast<double>(count));
  }
}

void AnomalyDetector::annotate(NodeRegistry& registry,
                               const AnomalyReport& report) const {
  registry.for_each_report_mutable([&](CalibrationReport& node_report) {
    for (const AnomalyFinding& f : report.findings) {
      if (f.node_id != node_report.claims.node_id) continue;
      std::ostringstream oss;
      oss << "anomaly: " << to_string(f.kind) << " on ";
      for (std::size_t b = 0; b < f.bands.size(); ++b)
        oss << (b == 0 ? "" : ", ") << f.bands[b];
      oss << " (+" << util::format_fixed(f.worst_residual_db, 1)
          << " dB over consensus, rho "
          << util::format_fixed(f.max_rho, 2) << ")";
      node_report.trust.findings.push_back({Severity::kWarning, oss.str()});
      obs::EventLog::global().log(
          obs::EventSeverity::kWarning, "anomaly_flagged", f.node_id, {},
          {obs::SpanArg::str("kind", to_string(f.kind)),
           obs::SpanArg::number("worst_residual_db", f.worst_residual_db),
           obs::SpanArg::integer("bands",
                                 static_cast<std::int64_t>(f.bands.size()))});
    }
  });
}

}  // namespace speccal::calib
