// Measurement-window planning — the paper's §5 "end-to-end system" item:
// "decide when to perform ADS-B measurements to gain as much information
//  as possible, as flight schedules vary over time."
//
// Given an hourly traffic forecast, WindowPlanner estimates the angular
// information each candidate window would contribute and greedily picks
// windows until the marginal gain flattens. (Formerly "the scheduler";
// renamed so the name stops colliding with the stage-graph executor's task
// scheduling.)
#pragma once

#include <cstdint>
#include <vector>

namespace speccal::calib {

/// Expected traffic for one candidate measurement window.
struct TrafficForecast {
  double hour_of_day = 0.0;     // window start
  double flights_per_hour = 0.0;
};

struct ScheduleConfig {
  double window_s = 30.0;              // paper's measurement length
  double messages_per_flight_hz = 2.0; // position squitter rate
  int azimuth_sectors = 36;            // information resolution
  std::size_t max_windows = 12;
  /// Stop adding windows when the expected newly-covered fraction of the
  /// horizon drops below this.
  double min_marginal_gain = 0.01;
};

struct ScheduledWindow {
  double hour_of_day = 0.0;
  double expected_aircraft = 0.0;
  double expected_new_coverage = 0.0;  // horizon fraction gained
};

struct Schedule {
  std::vector<ScheduledWindow> windows;
  double expected_total_coverage = 0.0;  // of the horizon, [0, 1]
};

/// Expected fraction of `sectors` azimuth sectors touched by `aircraft`
/// randomly-placed aircraft (coupon-collector coverage).
[[nodiscard]] double expected_sector_coverage(double aircraft, int sectors) noexcept;

/// Greedy measurement-window planner: repeatedly picks the hour with the
/// best marginal coverage gain, accounting for what is already covered.
class WindowPlanner {
 public:
  explicit WindowPlanner(ScheduleConfig config = {}) : config_(config) {}

  [[nodiscard]] Schedule plan(const std::vector<TrafficForecast>& forecast) const;

  [[nodiscard]] const ScheduleConfig& config() const noexcept { return config_; }

 private:
  ScheduleConfig config_;
};

}  // namespace speccal::calib
