// Installation classification — the paper's §3.2 deduction step.
//
// "Combining the results from multiple experiments, including ADS-B,
//  cellular networks, and broadcast TV, can provide additional insights
//  such as determining whether an installation is indoor or outdoor."
// The classifier fuses the FoV estimate with the frequency response into an
// installation verdict plus a human-readable rationale, usable to verify
// operator claims (and CBRS-style self-reports, §3.3).
#pragma once

#include <string>
#include <vector>

#include "calib/fov.hpp"
#include "calib/freqresp.hpp"

namespace speccal::calib {

enum class InstallationType {
  kOutdoorOpen,     // rooftop-like: wide FoV, little attenuation anywhere
  kOutdoorPartial,  // outdoor but screened (rooftop with structures)
  kIndoorWindow,    // behind glass: narrow FoV, mid-band attenuated
  kIndoorDeep,      // interior: tiny FoV, mid/high bands gone
};

[[nodiscard]] std::string to_string(InstallationType type);

struct Classification {
  InstallationType type = InstallationType::kIndoorDeep;
  double confidence = 0.0;  // [0, 1]
  std::vector<std::string> rationale;

  [[nodiscard]] bool indoor() const noexcept {
    return type == InstallationType::kIndoorWindow ||
           type == InstallationType::kIndoorDeep;
  }
};

struct ClassifierConfig {
  double open_fov_fraction = 0.6;     // >= this open fraction looks outdoor-open
  double narrow_fov_fraction = 0.25;  // <= this looks window/indoor
  double low_band_ok_db = 15.0;       // low band attenuation of an outdoor node
  double mid_band_dead_db = 30.0;     // mid band attenuation typical of indoor
  double indoor_slope_db_per_decade = 8.0;  // rising attenuation vs frequency
};

/// Rule-based fusion of both evidence sources.
[[nodiscard]] Classification classify_installation(const FovEstimate& fov,
                                                   const FrequencyResponseReport& freq,
                                                   const ClassifierConfig& config = {});

}  // namespace speccal::calib
