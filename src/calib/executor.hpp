// Work-stealing executor for calibration task graphs.
//
// StageExecutor runs a TaskGraph on a small pool of workers. Each worker
// owns a deque: newly-ready successors are pushed to the owner's back and
// popped from the back (LIFO — depth-first, cache-warm, and on a per-node
// subgraph it reproduces the serial stage order), while idle workers steal
// from the *front* of a victim's deque (FIFO — they take the oldest, most
// independent work, typically another node's root). Root tasks are dealt
// round-robin across the workers before the pool starts.
//
// threads <= 1 runs the whole graph inline on the calling thread with no
// pool, no locks on the hot path, and a deterministic depth-first order:
// the single-thread execution of the fleet graph is statement-for-statement
// the serial calibration loop, which is what makes the fleet engine's
// "parallel == serial, bitwise" gate testable.
//
// Failure model: a task body that throws is caught and counted
// (ExecutorStats::tasks_failed, first_error keeps the earliest message);
// its successors still run. Calibration task bodies guard themselves on
// their node's error state, so one broken node never wedges the graph —
// every task always executes, and run() always drains.
//
// Determinism contract (DESIGN.md §12): the executor controls *when* tasks
// run, never *what* they compute. Any schedule — serial, stolen, or
// oversubscribed — must produce bitwise-identical reports; everything
// order-dependent (device I/O chains, retry jitter) is pinned by the graph's
// edges and by per-(node, stage) seeding, not by execution order.
#pragma once

#include <cstddef>
#include <string>

#include "calib/taskgraph.hpp"

namespace speccal::obs {
class TraceSession;
}

namespace speccal::calib {

struct ExecutorConfig {
  /// Worker threads. 0 = hardware concurrency; 1 = inline (no pool).
  unsigned threads = 0;
  /// Optional trace collector (caller-owned, must outlive run()). Each task
  /// emits one "task" span on the worker thread that ran it, labelled with
  /// the task's graph label and a "stolen" flag. Null = zero cost.
  obs::TraceSession* trace = nullptr;
};

/// What one run() did. Steal counts are a scheduling diagnostic, not a
/// correctness signal: zero steals just means the load was balanced.
struct ExecutorStats {
  unsigned threads_used = 0;
  std::size_t tasks_run = 0;     // always equals graph.size() after run()
  std::size_t tasks_stolen = 0;  // tasks executed by a non-owning worker
  std::size_t tasks_failed = 0;  // bodies that threw (caught, counted)
  std::string first_error;       // what() of the earliest failure, if any
};

class StageExecutor {
 public:
  explicit StageExecutor(ExecutorConfig config = {});

  /// Execute every task in `graph`, respecting its edges. Blocks until the
  /// graph drains. Throws std::invalid_argument if the graph has a task
  /// with no body or a dependency cycle (detected as a non-draining graph
  /// before any thread is spawned).
  ExecutorStats run(const TaskGraph& graph);

  [[nodiscard]] const ExecutorConfig& config() const noexcept { return config_; }

  /// Threads run() will actually use for a graph of `tasks` tasks.
  [[nodiscard]] unsigned effective_threads(std::size_t tasks) const noexcept;

 private:
  ExecutorStats run_inline(const TaskGraph& graph);

  ExecutorConfig config_;
};

}  // namespace speccal::calib
