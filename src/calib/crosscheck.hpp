// Cross-node mutual verification.
//
// A single node's survey is checked against external ground truth; a fleet
// allows a second, independent line of defence (§5 "Establishing trust"):
// nodes observing the same sky corroborate each other. A node that claims
// an open direction yet systematically misses aircraft its peers decode
// there is either mis-calibrated or misreporting; a node "decoding"
// aircraft no peer can see corroborates the fabrication detector.
#pragma once

#include <string>
#include <vector>

#include "calib/fov.hpp"
#include "calib/survey.hpp"

namespace speccal::calib {

/// One node's contribution to the cross-check: its survey over a shared
/// measurement window plus its estimated field of view.
struct NodeSurvey {
  std::string node_id;
  SurveyResult survey;
  FovEstimate fov;
};

struct CrossCheckConfig {
  /// Only aircraft inside this range band carry cross-check evidence
  /// (nearer: received regardless; farther: marginal for everyone).
  double min_range_km = 25.0;
  double max_range_km = 85.0;
  /// An aircraft is "corroborated" when at least this many peers saw it.
  std::size_t min_corroborators = 1;
  /// Suspicion above this marks the node an outlier.
  double outlier_threshold = 0.5;
};

struct NodeConsistency {
  std::string node_id;
  /// Aircraft in the node's open sectors + range band that >= 1 peer saw.
  std::size_t expected = 0;
  /// Of those, how many this node missed.
  std::size_t missed = 0;
  /// missed / expected (0 when nothing was expected).
  double suspicion = 0.0;
  bool outlier = false;
};

struct CrossCheckReport {
  std::vector<NodeConsistency> nodes;
  /// ICAOs decoded by exactly one node and absent from its peers' ground
  /// truth views — corroboration for fabrication.
  std::vector<std::uint32_t> unconfirmed_icaos;
};

/// Run the mutual check over surveys taken against the same sky/window.
[[nodiscard]] CrossCheckReport cross_check(const std::vector<NodeSurvey>& nodes,
                                           const CrossCheckConfig& config = {});

}  // namespace speccal::calib
