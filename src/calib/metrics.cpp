#include "calib/metrics.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace speccal::calib {

namespace {

/// One histogram per pipeline stage in the global registry
/// (speccal_calib_stage_<stage>_ms — naming convention DESIGN.md §10).
obs::Histogram& stage_histogram(Stage stage) {
  static std::array<obs::Histogram*, kStageCount>* hists = [] {
    auto* out = new std::array<obs::Histogram*, kStageCount>();
    for (std::size_t i = 0; i < kStageCount; ++i)
      (*out)[i] = &obs::Registry::global().histogram(
          std::string("speccal_calib_stage_") +
              to_string(static_cast<Stage>(i)) + "_ms",
          obs::default_duration_bounds_ms());
    return out;
  }();
  return *(*hists)[static_cast<std::size_t>(stage)];
}

/// Nearest-rank percentile over a sorted sample set.
double percentile(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kSurvey: return "survey";
    case Stage::kFov: return "fov";
    case Stage::kCellScan: return "cell_scan";
    case Stage::kTvSweep: return "tv_sweep";
    case Stage::kFuse: return "fuse";
    case Stage::kLoCal: return "lo_calibration";
    case Stage::kAnomalyScan: return "anomaly_scan";
  }
  return "?";
}

double StageMetrics::total_wall_ms() const noexcept {
  double total = 0.0;
  for (const auto& s : stages) total += s.wall_ms;
  return total;
}

std::uint64_t StageMetrics::total_samples_captured() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stages) total += s.samples_captured;
  return total;
}

void StageMetrics::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.key("total_wall_ms");
  w.value(total_wall_ms());
  w.key("stages");
  w.begin_array();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageSample& s = stages[i];
    if (!s.ran) continue;
    w.begin_object();
    w.key("stage");
    w.value(to_string(static_cast<Stage>(i)));
    w.key("wall_ms");
    w.value(s.wall_ms);
    w.key("samples_captured");
    w.value(static_cast<std::int64_t>(s.samples_captured));
    w.key("frames_decoded");
    w.value(static_cast<std::int64_t>(s.frames_decoded));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

StageTimer::StageTimer(StageMetrics& metrics, Stage stage,
                       obs::TraceSession* trace, std::string_view node_id)
    : metrics_(metrics),
      stage_(stage),
      trace_(trace),
      node_id_(trace != nullptr ? node_id : std::string_view{}),
      start_(std::chrono::steady_clock::now()) {}

StageTimer::~StageTimer() {
  // Record on unwind too; stop() swallows nothing today, but a destructor
  // that could propagate during stack unwinding would terminate.
  stop();
}

void StageTimer::stop() noexcept {
  if (stopped_) return;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  StageSample& s = metrics_.at(stage_);
  s.wall_ms += wall_ms;
  s.ran = true;
  stage_histogram(stage_).observe(wall_ms);
  try {
    // One relaxed load unless a per-stage latency budget is armed
    // (obs/sampler.hpp); then budget/breach/burn-rate accounting.
    obs::SloTracker::global().observe(to_string(stage_), wall_ms);
  } catch (...) {
    // SLO bookkeeping must never take down a calibration.
  }
  if (trace_ != nullptr) {
    // Same clock readings as the sample above: the trace span, the
    // histogram observation and the report wall time can never disagree.
    try {
      std::vector<obs::SpanArg> args;
      if (!node_id_.empty()) args.push_back(obs::SpanArg::str("node", node_id_));
      trace_->record_complete(to_string(stage_), "stage", start_, end,
                              std::move(args));
    } catch (...) {
      // Tracing must never take down a calibration (allocation failure).
    }
  }
}

FleetStageStats aggregate_stage_metrics(
    const std::vector<const StageMetrics*>& fleet) {
  FleetStageStats out;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::vector<double> walls;
    FleetStageStats::Row row;
    row.stage = static_cast<Stage>(i);
    for (const StageMetrics* m : fleet) {
      if (m == nullptr) continue;
      const StageSample& s = m->stages[i];
      if (!s.ran) continue;
      walls.push_back(s.wall_ms);
      row.samples_captured += s.samples_captured;
      row.frames_decoded += s.frames_decoded;
    }
    if (walls.empty()) continue;
    std::sort(walls.begin(), walls.end());
    row.nodes = walls.size();
    row.p50_ms = percentile(walls, 0.50);
    row.p90_ms = percentile(walls, 0.90);
    row.max_ms = walls.back();
    double sum = 0.0;
    for (double w : walls) sum += w;
    row.mean_ms = sum / static_cast<double>(walls.size());
    out.rows.push_back(row);
  }
  return out;
}

}  // namespace speccal::calib
