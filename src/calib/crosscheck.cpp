#include "calib/crosscheck.hpp"

#include <map>
#include <set>

namespace speccal::calib {

CrossCheckReport cross_check(const std::vector<NodeSurvey>& nodes,
                             const CrossCheckConfig& config) {
  CrossCheckReport report;

  // Which nodes received each aircraft (by ICAO).
  std::map<std::uint32_t, std::set<std::size_t>> receivers;
  for (std::size_t n = 0; n < nodes.size(); ++n)
    for (const auto& obs : nodes[n].survey.observations)
      if (obs.received) receivers[obs.icao].insert(n);

  for (std::size_t n = 0; n < nodes.size(); ++n) {
    NodeConsistency consistency;
    consistency.node_id = nodes[n].node_id;

    for (const auto& obs : nodes[n].survey.observations) {
      if (obs.range_km < config.min_range_km || obs.range_km > config.max_range_km)
        continue;
      // Only directions this node itself claims to see are checked.
      if (!nodes[n].fov.open_sectors.contains(obs.azimuth_deg)) continue;
      // Peer corroboration: someone else saw this aircraft.
      std::size_t peers = 0;
      if (const auto it = receivers.find(obs.icao); it != receivers.end())
        for (std::size_t other : it->second)
          if (other != n) ++peers;
      if (peers < config.min_corroborators) continue;

      ++consistency.expected;
      if (!obs.received) ++consistency.missed;
    }

    if (consistency.expected > 0)
      consistency.suspicion = static_cast<double>(consistency.missed) /
                              static_cast<double>(consistency.expected);
    consistency.outlier = consistency.expected >= 3 &&
                          consistency.suspicion > config.outlier_threshold;
    report.nodes.push_back(std::move(consistency));
  }

  // Receptions only one node ever produced, and which do not appear in any
  // peer's ground-truth join (i.e. not merely out of the others' radius).
  for (const auto& [icao, who] : receivers) {
    if (who.size() != 1) continue;
    bool known_to_peer = false;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (who.contains(n)) continue;
      for (const auto& obs : nodes[n].survey.observations)
        if (obs.icao == icao) known_to_peer = true;
    }
    if (!known_to_peer && nodes.size() >= 2) report.unconfirmed_icaos.push_back(icao);
  }
  return report;
}

}  // namespace speccal::calib
