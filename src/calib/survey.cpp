#include "calib/survey.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "adsb/decoder.hpp"
#include "adsb/ppm.hpp"
#include "airtraffic/adsb_source.hpp"
#include "prop/pathloss.hpp"
#include "sdr/rx_environment.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace speccal::calib {

std::size_t SurveyResult::received_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(observations.begin(), observations.end(),
                    [](const AirplaneObservation& o) { return o.received; }));
}

std::size_t SurveyResult::missed_count() const noexcept {
  return observations.size() - received_count();
}

namespace {

/// Reception stats accumulated per aircraft during the window.
struct Reception {
  std::uint32_t messages = 0;
  double best_rssi_dbfs = -200.0;
  std::optional<geo::Geodetic> decoded_position;
};

/// Join ground truth with receptions into the survey result. The
/// ground-truth query is radius-limited, so a legitimately-decoded aircraft
/// just outside the radius is not evidence of fabrication: `extended_truth`
/// (a wider query) and decoded positions both clear such receptions.
SurveyResult join(const std::vector<airtraffic::FlightRecord>& truth,
                  const std::vector<airtraffic::FlightRecord>& extended_truth,
                  const std::map<std::uint32_t, Reception>& received,
                  const geo::Geodetic& sensor, double truth_radius_m) {
  SurveyResult out;
  std::set<std::uint32_t> truth_icaos;
  std::set<std::uint32_t> extended_icaos;
  for (const auto& rec : extended_truth) extended_icaos.insert(rec.icao);
  for (const auto& rec : truth) {
    truth_icaos.insert(rec.icao);
    AirplaneObservation obs;
    obs.icao = rec.icao;
    obs.callsign = rec.callsign;
    obs.position = rec.position;
    obs.range_km = geo::haversine_m(sensor, rec.position) / 1000.0;
    obs.azimuth_deg = geo::bearing_deg(sensor, rec.position);
    if (const auto it = received.find(rec.icao); it != received.end()) {
      obs.received = it->second.messages > 0;
      obs.messages = it->second.messages;
      obs.best_rssi_dbfs = it->second.best_rssi_dbfs;
      obs.decoded_position = it->second.decoded_position;
    }
    out.observations.push_back(std::move(obs));
  }
  for (const auto& [icao, rx] : received) {
    if (truth_icaos.contains(icao)) continue;
    if (extended_icaos.contains(icao)) continue;  // real, just outside radius
    if (rx.decoded_position &&
        geo::haversine_m(sensor, *rx.decoded_position) > truth_radius_m)
      continue;  // decoded position itself shows it was out of the query
    ++out.unmatched_receptions;
  }
  return out;
}

}  // namespace

SurveyResult AdsbSurvey::run(sdr::Device& device,
                             const airtraffic::SkySimulator& sky,
                             const airtraffic::GroundTruthService& gt) const {
  return config_.fidelity == Fidelity::kWaveform ? run_waveform(device, sky, gt)
                                                 : run_linkbudget(device, sky, gt);
}

SurveyResult AdsbSurvey::run_waveform(sdr::Device& device,
                                      const airtraffic::SkySimulator& sky,
                                      const airtraffic::GroundTruthService& gt) const {
  (void)sky;  // the device's AdsbSignalSource already references the sky
  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.gain_db);
  device.tune(adsb::kAdsbFreqHz, adsb::kPpmSampleRateHz);

  const double t_start = device.stream_time_s();
  adsb::DecoderConfig decoder_config;
  decoder_config.demod = config_.demod_override;
  adsb::Decoder decoder(decoder_config);

  const auto total_samples = static_cast<std::size_t>(
      config_.duration_s * adsb::kPpmSampleRateHz);
  std::size_t processed = 0;
  while (processed < total_samples) {
    const std::size_t n = std::min(config_.chunk_samples, total_samples - processed);
    const double chunk_time = device.stream_time_s();
    const dsp::Buffer buf = device.capture(n);
    decoder.feed(buf, chunk_time);
    processed += n;
  }

  const double query_t = t_start + config_.ground_truth_query_at_s;
  const geo::Geodetic sensor_pos = device.position();
  const auto truth = gt.query(sensor_pos, config_.ground_truth_radius_m, query_t);
  const auto extended =
      gt.query(sensor_pos, config_.ground_truth_radius_m * 1.5, query_t);

  std::map<std::uint32_t, Reception> received;
  for (const auto& ac : decoder.aircraft()) {
    if (!ac.credible()) continue;  // lone bit-repaired frames may be noise
    Reception r;
    r.messages = ac.message_count;
    r.best_rssi_dbfs = ac.max_rssi_dbfs;
    r.decoded_position = ac.position;
    received[ac.icao] = r;
  }

  SurveyResult out = join(truth, extended, received, sensor_pos,
                          config_.ground_truth_radius_m);
  out.total_frames_decoded = decoder.total_frames();
  out.frames_crc_repaired = decoder.crc_repaired_frames();
  out.duration_s = config_.duration_s;
  return out;
}

SurveyResult AdsbSurvey::run_linkbudget(sdr::Device& device,
                                        const airtraffic::SkySimulator& sky,
                                        const airtraffic::GroundTruthService& gt) const {
  sdr::SimControl* sim = device.sim_control();
  if (sim == nullptr)
    throw std::runtime_error(
        "link-budget survey fidelity requires a simulation-backed device; "
        "use Fidelity::kWaveform on hardware");
  const sdr::RxEnvironment& rx = sim->rx_environment();
  const double t_start = device.stream_time_s();
  const double noise_dbm = prop::noise_floor_dbm(adsb::kPpmSampleRateHz,
                                                 device.info().noise_figure_db);

  prop::LinkParams params;
  params.model = prop::PathModel::kFreeSpace;

  std::map<std::uint32_t, Reception> received;
  for (const auto& ev : sky.events_between(t_start, t_start + config_.duration_s)) {
    prop::LinkInput link;
    link.transmitter = ev.tx_position;
    link.receiver = rx.position;
    link.freq_hz = adsb::kAdsbFreqHz;
    link.tx_power_dbm = ev.tx_power_dbm;
    link.emitter_id = ev.icao;
    std::uint64_t h = static_cast<std::uint64_t>(ev.icao) ^
                      (static_cast<std::uint64_t>(ev.time_s * 1e6) << 20);
    link.message_index = util::splitmix64(h);
    if (rx.antenna != nullptr) {
      const double az = geo::bearing_deg(rx.position, ev.tx_position);
      link.rx_antenna_gain_dbi = rx.antenna->gain_dbi(adsb::kAdsbFreqHz, az);
    }
    const prop::LinkResult budget =
        prop::evaluate_link(link, params, rx.obstructions, rx.fading);

    const double snr_db = budget.rx_power_dbm - noise_dbm;
    const double p_decode =
        1.0 / (1.0 + std::exp(-(snr_db - config_.decode_snr50_db) /
                              config_.decode_snr_width_db));
    // Deterministic Bernoulli keyed by the event.
    util::Rng coin(link.message_index ^ 0x5bd1e995u);
    if (!coin.chance(p_decode)) continue;

    Reception& r = received[ev.icao];
    ++r.messages;
    const double rssi = budget.rx_power_dbm + config_.gain_db -
                        device.info().full_scale_input_dbm;
    r.best_rssi_dbfs = std::max(r.best_rssi_dbfs, rssi);
    r.decoded_position = ev.tx_position;
  }

  const double query_t = t_start + config_.ground_truth_query_at_s;
  const auto truth = gt.query(rx.position, config_.ground_truth_radius_m, query_t);
  const auto extended =
      gt.query(rx.position, config_.ground_truth_radius_m * 1.5, query_t);
  SurveyResult out = join(truth, extended, received, rx.position,
                          config_.ground_truth_radius_m);
  for (const auto& [icao, r] : received) out.total_frames_decoded += r.messages;
  out.duration_s = config_.duration_s;
  sim->advance_time(config_.duration_s);
  return out;
}

}  // namespace speccal::calib
