#include "dsp/convolver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/simd.hpp"

namespace speccal::dsp {

bool prefer_fft_convolution(std::size_t taps, std::size_t block_size) noexcept {
  if (taps < 16 || block_size < taps) return false;
  // Direct: one complex MAC per tap per output sample, accumulated in
  // double — ~8 real ops each.
  const double direct_ops = 8.0 * static_cast<double>(taps) *
                            static_cast<double>(block_size);
  // Overlap-save with the auto-selected FFT size: two float transforms
  // (~5 N log2 N real ops each) plus one spectral product (6 N) per block
  // of L = N - taps + 1 fresh samples.
  const std::size_t n = next_power_of_two(std::max<std::size_t>(4 * taps, 256));
  const double l = static_cast<double>(n - taps + 1);
  const double blocks = std::ceil(static_cast<double>(block_size) / l);
  const double log2n = std::log2(static_cast<double>(n));
  const double fft_ops =
      blocks * (2.0 * 5.0 * static_cast<double>(n) * log2n + 6.0 * static_cast<double>(n));
  return fft_ops < direct_ops;
}

FftConvolver::FftConvolver(std::span<const std::complex<double>> taps,
                           std::size_t fft_size)
    : taps_(taps.size()) {
  if (taps.empty()) throw std::invalid_argument("FftConvolver: empty taps");
  std::size_t n = fft_size;
  if (n == 0) n = next_power_of_two(std::max<std::size_t>(4 * taps_, 256));
  if (!is_power_of_two(n))
    throw std::invalid_argument("FftConvolver: fft_size must be a power of two (got " +
                                std::to_string(n) + ")");
  if (n < taps_)
    throw std::invalid_argument("FftConvolver: fft_size " + std::to_string(n) +
                                " must be >= tap count " + std::to_string(taps_));
  plan_ = PlanCache::shared().plan_f32(n);

  // Tap spectrum in double precision, narrowed once — keeps the filter's
  // own rounding out of the per-block float budget.
  const auto plan_d = PlanCache::shared().plan_f64(n);
  std::vector<std::complex<double>> h(n, {0.0, 0.0});
  std::copy(taps.begin(), taps.end(), h.begin());
  plan_d->forward(h);
  freq_taps_.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    freq_taps_[k] = {static_cast<float>(h[k].real()), static_cast<float>(h[k].imag())};

  history_.assign(taps_ - 1, Sample{0.0f, 0.0f});
}

void FftConvolver::filter_into(std::span<const Sample> in, std::span<Sample> out) {
  if (out.size() != in.size())
    throw std::invalid_argument("FftConvolver: out size " + std::to_string(out.size()) +
                                " does not match in size " + std::to_string(in.size()));
  const std::size_t n = plan_->size();
  const std::size_t overlap = taps_ - 1;
  const std::size_t fresh_max = n - overlap;  // L fresh samples per block
  auto work = scratch_.complex_f32(n);

  std::size_t pos = 0;
  while (pos < in.size()) {
    const std::size_t m = std::min(fresh_max, in.size() - pos);
    // Block layout: [history | m fresh inputs | zero pad].
    std::copy(history_.begin(), history_.end(), work.begin());
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + m),
              work.begin() + static_cast<std::ptrdiff_t>(overlap));
    std::fill(work.begin() + static_cast<std::ptrdiff_t>(overlap + m), work.end(),
              Sample{0.0f, 0.0f});

    plan_->forward(work);
    // Spectral product via the SIMD complex-multiply kernel. The explicit
    // formula drops operator*'s Annex-G NaN recovery, identically to the
    // butterfly convention — finite values are unchanged.
    simd::cmul_inplace(work.data(), freq_taps_.data(), n);
    plan_->inverse(work);

    // Overlap-save: the first `overlap` outputs are circular garbage.
    std::copy(work.begin() + static_cast<std::ptrdiff_t>(overlap),
              work.begin() + static_cast<std::ptrdiff_t>(overlap + m),
              out.begin() + static_cast<std::ptrdiff_t>(pos));

    if (overlap > 0) {
      if (m >= overlap) {
        std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos + m - overlap),
                  in.begin() + static_cast<std::ptrdiff_t>(pos + m), history_.begin());
      } else {
        // Fewer fresh samples than the history length: shift, then append.
        std::move(history_.begin() + static_cast<std::ptrdiff_t>(m), history_.end(),
                  history_.begin());
        std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
                  in.begin() + static_cast<std::ptrdiff_t>(pos + m),
                  history_.end() - static_cast<std::ptrdiff_t>(m));
      }
    }
    pos += m;
  }
}

Buffer FftConvolver::filter(std::span<const Sample> in) {
  Buffer out(in.size());
  filter_into(in, out);
  return out;
}

void FftConvolver::reset() noexcept {
  std::fill(history_.begin(), history_.end(), Sample{0.0f, 0.0f});
}

}  // namespace speccal::dsp
