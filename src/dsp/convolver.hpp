// Overlap-save FFT convolution for long FIR filters on capture blocks.
//
// The emitter render path pushes every simulated capture through a 127-tap
// channel shaper; direct time-domain convolution costs taps x samples MACs
// per block and dominated per-node calibration wall time. FftConvolver
// applies the same filter as a frequency-domain product over overlap-save
// blocks built on the shared PlanCache, turning the per-sample cost into
// O(log N). State (the taps-1 sample history) carries across filter_into
// calls exactly like FirFilter::process, so the two are drop-in
// equivalents within the documented float tolerance.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/iq.hpp"
#include "dsp/plan.hpp"

namespace speccal::dsp {

/// Equivalence contract against FirFilter (double-accumulation direct
/// convolution): for inputs with RMS amplitude <= 1 and unity-gain-scale
/// taps, every output sample of FftConvolver is within this absolute
/// distance of the direct result. Enforced by tests/test_convolver.cpp and
/// the bench/capture_path self-check; see DESIGN.md "Capture-path
/// performance" for the derivation.
inline constexpr float kConvolverEquivalenceTolerance = 1e-4f;

/// Crossover heuristic: true when overlap-save FFT convolution is expected
/// to beat direct time-domain convolution for `taps` filter taps applied to
/// a block of `block_size` samples. Compares estimated real-op counts
/// (direct: 8 ops per tap per sample in double; FFT: two float transforms
/// plus a spectral product per overlap-save block).
[[nodiscard]] bool prefer_fft_convolution(std::size_t taps,
                                          std::size_t block_size) noexcept;

/// Streaming overlap-save convolver for complex float samples with complex
/// double taps. Not thread-safe: one instance per stream (the fleet engine
/// gives every worker its own device and sources). Steady-state
/// filter_into() performs zero heap allocations once the internal scratch
/// has grown to the working block size.
class FftConvolver {
 public:
  /// `fft_size` 0 picks the smallest power of two >= max(4 * taps, 256) —
  /// a good throughput/latency balance for 100-odd-tap channel shapers.
  /// Throws std::invalid_argument for empty taps, a non-power-of-two
  /// fft_size, or fft_size < taps (overlap-save needs at least one fresh
  /// sample per block).
  explicit FftConvolver(std::span<const std::complex<double>> taps,
                        std::size_t fft_size = 0);

  /// Filter a block; `out.size()` must equal `in.size()` (one output per
  /// input, same alignment as FirFilter::process). History carries across
  /// calls. `in` and `out` may not overlap.
  void filter_into(std::span<const Sample> in, std::span<Sample> out);

  /// Allocating convenience overload.
  [[nodiscard]] Buffer filter(std::span<const Sample> in);

  /// Clear the streaming history (start a new stream).
  void reset() noexcept;

  [[nodiscard]] std::size_t tap_count() const noexcept { return taps_; }
  [[nodiscard]] std::size_t fft_size() const noexcept { return plan_->size(); }
  /// Fresh input samples consumed per overlap-save block (fft_size - taps + 1).
  [[nodiscard]] std::size_t block_size() const noexcept {
    return plan_->size() - taps_ + 1;
  }
  /// Bytes reserved by the internal scratch (monotone; for zero-allocation
  /// assertions in tests).
  [[nodiscard]] std::size_t scratch_capacity_bytes() const noexcept {
    return scratch_.capacity_bytes();
  }

 private:
  std::size_t taps_ = 0;
  std::shared_ptr<const FftPlan> plan_;
  std::vector<std::complex<float>> freq_taps_;  // FFT of zero-padded taps
  std::vector<Sample> history_;                 // last taps-1 inputs
  ScratchArena scratch_;
};

}  // namespace speccal::dsp
