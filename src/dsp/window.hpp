// Window functions for spectral analysis and FIR design.
#pragma once

#include <cstddef>
#include <vector>

namespace speccal::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris,
};

/// Generate an n-point symmetric window.
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t n);

/// Sum of window coefficients (coherent gain * n).
[[nodiscard]] double window_sum(const std::vector<double>& w) noexcept;

/// Sum of squared coefficients (noise-equivalent gain * n).
[[nodiscard]] double window_power(const std::vector<double>& w) noexcept;

}  // namespace speccal::dsp
