// Portable-SIMD kernels for the DSP hot loops (DESIGN.md §14).
//
// One compile-time dispatch point (`kBackend`) selects SSE2/AVX2/NEON bodies
// or the scalar fallback; every kernel keeps a scalar reference sibling in
// `simd::scalar` so tests and benches can compare the dispatched path against
// the reference on any build. `-DSPECCAL_DISABLE_SIMD` forces the scalar tier
// everywhere (CI runs the full suite on both tiers).
//
// Numerical contract, per kernel:
//   * Elementwise kernels (magnitude_squared, apply_window, accumulate_power,
//     power_scaled, cmul_inplace, fft_radix2_stage, preamble_candidates) do
//     the same IEEE float ops per element as the scalar sibling — results are
//     bit-identical on every backend (no FMA contraction is used).
//   * Reduction kernels (sum_power, cdot, dot_conj) split the accumulator
//     across lanes, which reorders the additions. They are held to the
//     documented equivalence tolerance kSimdEquivalenceTolerance (1e-4,
//     relative); observed error is ~1e-6 or better (test_dsp_simd).
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>

#if !defined(SPECCAL_DISABLE_SIMD)
#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif
#endif

namespace speccal::dsp::simd {

/// Relative tolerance for SIMD-vs-scalar reduction kernels (and for library
/// paths whose accumulation order changed when they moved onto these
/// kernels). Expected error is ~1e-6; the gate is deliberately loose.
inline constexpr double kSimdEquivalenceTolerance = 1e-4;

enum class Backend { kScalar, kSse2, kAvx2, kNeon };

// The single dispatch point: compile-time detection, no runtime probing.
// Default x86-64 builds (no -march flags) land on SSE2, which is part of the
// base ISA; AVX2 bodies compile only under -mavx2/-march=native.
#if defined(SPECCAL_DISABLE_SIMD)
inline constexpr Backend kBackend = Backend::kScalar;
#elif defined(__AVX2__)
inline constexpr Backend kBackend = Backend::kAvx2;
#elif defined(__SSE2__)
inline constexpr Backend kBackend = Backend::kSse2;
#elif defined(__ARM_NEON)
inline constexpr Backend kBackend = Backend::kNeon;
#else
inline constexpr Backend kBackend = Backend::kScalar;
#endif

[[nodiscard]] inline constexpr const char* backend_name() noexcept {
  switch (kBackend) {
    case Backend::kSse2: return "sse2";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
    case Backend::kScalar: return "scalar";
  }
  return "scalar";
}

// ------------------------------------------------------ scalar references ----

namespace scalar {

/// out[i] = |in[i]|^2 in float (re*re + im*im).
inline void magnitude_squared(const std::complex<float>* in, float* out,
                              std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float re = in[i].real(), im = in[i].imag();
    out[i] = re * re + im * im;
  }
}

/// out[i] = in[i] * win[i] (complex float x real float).
inline void apply_window(const std::complex<float>* in, const float* win,
                         std::complex<float>* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = in[i] * win[i];
}

/// acc[i] += double(|in[i]|^2) * scale, the Welch PSD accumulation step.
/// The magnitude is squared in float (matching the historical
/// static_cast<double>(std::norm(work[k])) form) before the double scale.
inline void accumulate_power(const std::complex<float>* in, double scale,
                             double* acc, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float re = in[i].real(), im = in[i].imag();
    acc[i] += static_cast<double>(re * re + im * im) * scale;
  }
}

/// out[i] = double(|in[i]|^2) * scale (assignment variant, SpectrumEstimator).
inline void power_scaled(const std::complex<float>* in, double scale,
                         double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float re = in[i].real(), im = in[i].imag();
    out[i] = static_cast<double>(re * re + im * im) * scale;
  }
}

/// sum over i of double(|in[i]|^2); sequential double accumulation.
[[nodiscard]] inline double sum_power(const std::complex<float>* in,
                                      std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float re = in[i].real(), im = in[i].imag();
    acc += static_cast<double>(re * re + im * im);
  }
  return acc;
}

/// a[i] *= b[i], explicit formula (no Annex-G NaN recovery, matching the
/// FFT butterfly convention).
inline void cmul_inplace(std::complex<float>* a, const std::complex<float>* b,
                         std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const float ar = a[i].real(), ai = a[i].imag();
    const float br = b[i].real(), bi = b[i].imag();
    a[i] = {ar * br - ai * bi, ar * bi + ai * br};
  }
}

/// Plain (non-conjugated) complex-double dot product: sum a[i]*b[i].
[[nodiscard]] inline std::complex<double> cdot(const std::complex<double>* a,
                                               const std::complex<double>* b,
                                               std::size_t n) noexcept {
  double accr = 0.0, acci = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    accr += ar * br - ai * bi;
    acci += ar * bi + ai * br;
  }
  return {accr, acci};
}

/// Conjugated correlation dot: sum x[i]*conj(ref[i]), accumulated in double.
[[nodiscard]] inline std::complex<double> dot_conj(
    const std::complex<float>* x, const std::complex<float>* ref,
    std::size_t n) noexcept {
  double accr = 0.0, acci = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[i].real(), xi = x[i].imag();
    const double rr = ref[i].real(), ri = ref[i].imag();
    accr += xr * rr + xi * ri;
    acci += xi * rr - xr * ri;
  }
  return {accr, acci};
}

/// One radix-2 DIT stage over interleaved complex float data (2n floats):
/// for each `len`-wide block, butterfly the lo/hi halves with the stage's
/// `half` twiddles (interleaved at tw, wi multiplied by `sign`). Mirrors the
/// historical BasicFftPlan inner loop exactly.
inline void fft_radix2_stage(float* data, std::size_t n, std::size_t len,
                             const float* tw, float sign) noexcept {
  const std::size_t half = len >> 1;
  for (std::size_t i = 0; i < n; i += len) {
    float* lo = data + 2 * i;
    float* hi = data + 2 * (i + half);
    for (std::size_t k = 0; k < half; ++k) {
      const float wr = tw[2 * k];
      const float wi = sign * tw[2 * k + 1];
      const float xr = hi[2 * k], xi = hi[2 * k + 1];
      const float vr = xr * wr - xi * wi;
      const float vi = xr * wi + xi * wr;
      const float ur = lo[2 * k], ui = lo[2 * k + 1];
      lo[2 * k] = ur + vr;
      lo[2 * k + 1] = ui + vi;
      hi[2 * k] = ur - vr;
      hi[2 * k + 1] = ui - vi;
    }
  }
}

/// ADS-B preamble candidate bitmap: out[i] = 1 iff
///   min(mag[i], mag[i+2], mag[i+7], mag[i+9]) >
///   max(mag[i+1], mag[i+3], mag[i+5], mag[i+11], mag[i+13], mag[i+15])
/// for i in [0, n_positions). Caller guarantees mag has n_positions + 15
/// readable entries. Pure min/max/compare, so every backend is bit-identical.
inline void preamble_candidates(const float* mag, std::size_t n_positions,
                                std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < n_positions; ++i) {
    const float pulse_min =
        std::min(std::min(mag[i], mag[i + 2]), std::min(mag[i + 7], mag[i + 9]));
    const float quiet_max = std::max(
        std::max(std::max(mag[i + 1], mag[i + 3]), mag[i + 5]),
        std::max(std::max(mag[i + 11], mag[i + 13]), mag[i + 15]));
    out[i] = pulse_min > quiet_max ? 1 : 0;
  }
}

}  // namespace scalar

// ------------------------------------------------------- dispatched bodies ----

#if !defined(SPECCAL_DISABLE_SIMD) && (defined(__SSE2__) || defined(__AVX2__))

namespace detail {

// [p0, p0, p1, p1] lane powers for two packed complex floats.
[[nodiscard]] inline __m128 pair_powers(__m128 v) noexcept {
  const __m128 sq = _mm_mul_ps(v, v);
  const __m128 sw = _mm_shuffle_ps(sq, sq, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_add_ps(sq, sw);
}

// Sign mask that negates lanes 0 and 2 (the real lanes of two packed
// complex floats) on xor.
[[nodiscard]] inline __m128 negate_even_mask() noexcept {
  return _mm_castsi128_ps(
      _mm_setr_epi32(INT32_C(0x80000000), 0, INT32_C(0x80000000), 0));
}

// Two packed complex-float multiplies: lanes [ar,ai,br,bi] * [cr,ci,dr,di].
[[nodiscard]] inline __m128 cmul2(__m128 x, __m128 w) noexcept {
  const __m128 wr = _mm_shuffle_ps(w, w, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 wi = _mm_shuffle_ps(w, w, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 xsw = _mm_shuffle_ps(x, x, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 t1 = _mm_mul_ps(x, wr);
  const __m128 t2 = _mm_xor_ps(_mm_mul_ps(xsw, wi), negate_even_mask());
  return _mm_add_ps(t1, t2);
}

#if defined(__AVX2__)
[[nodiscard]] inline __m256 negate_even_mask256() noexcept {
  return _mm256_castsi256_ps(_mm256_setr_epi32(
      INT32_C(0x80000000), 0, INT32_C(0x80000000), 0, INT32_C(0x80000000), 0,
      INT32_C(0x80000000), 0));
}

// Four packed complex-float multiplies (shuffles are 128-lane-local, and the
// interleaved pair pattern is lane-local too, so the SSE2 recipe lifts
// straight to 256 bits).
[[nodiscard]] inline __m256 cmul4(__m256 x, __m256 w) noexcept {
  const __m256 wr = _mm256_shuffle_ps(w, w, _MM_SHUFFLE(2, 2, 0, 0));
  const __m256 wi = _mm256_shuffle_ps(w, w, _MM_SHUFFLE(3, 3, 1, 1));
  const __m256 xsw = _mm256_shuffle_ps(x, x, _MM_SHUFFLE(2, 3, 0, 1));
  const __m256 t1 = _mm256_mul_ps(x, wr);
  const __m256 t2 = _mm256_xor_ps(_mm256_mul_ps(xsw, wi), negate_even_mask256());
  return _mm256_add_ps(t1, t2);
}
#endif

}  // namespace detail

inline void magnitude_squared(const std::complex<float>* in, float* out,
                              std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(f + 2 * i);      // c0..c3 interleaved
    const __m256 b = _mm256_loadu_ps(f + 2 * i + 8);  // c4..c7 interleaved
    const __m256 sa = _mm256_mul_ps(a, a);
    const __m256 sb = _mm256_mul_ps(b, b);
    // Per-128-lane horizontal pair sums, then compact lanes {0,2} of each.
    const __m256 ta =
        _mm256_add_ps(sa, _mm256_shuffle_ps(sa, sa, _MM_SHUFFLE(2, 3, 0, 1)));
    const __m256 tb =
        _mm256_add_ps(sb, _mm256_shuffle_ps(sb, sb, _MM_SHUFFLE(2, 3, 0, 1)));
    const __m256 packed = _mm256_shuffle_ps(ta, tb, _MM_SHUFFLE(2, 0, 2, 0));
    // packed lane order is [p0 p1 p4 p5 | p2 p3 p6 p7]; restore with a
    // 64-bit permute.
    _mm256_storeu_ps(
        out + i, _mm256_castpd_ps(_mm256_permute4x64_pd(
                     _mm256_castps_pd(packed), _MM_SHUFFLE(3, 1, 2, 0))));
  }
#endif
  for (; i + 4 <= n; i += 4) {
    const __m128 p01 = detail::pair_powers(_mm_loadu_ps(f + 2 * i));
    const __m128 p23 = detail::pair_powers(_mm_loadu_ps(f + 2 * i + 4));
    _mm_storeu_ps(out + i, _mm_shuffle_ps(p01, p23, _MM_SHUFFLE(2, 0, 2, 0)));
  }
  if (i < n) scalar::magnitude_squared(in + i, out + i, n - i);
}

inline void apply_window(const std::complex<float>* in, const float* win,
                         std::complex<float>* out, std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  float* o = reinterpret_cast<float*>(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 v = _mm_loadu_ps(f + 2 * i);
    const __m128 w2 = _mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(win + i)));
    _mm_storeu_ps(o + 2 * i, _mm_mul_ps(v, _mm_unpacklo_ps(w2, w2)));
  }
  if (i < n) scalar::apply_window(in + i, win + i, out + i, n - i);
}

inline void accumulate_power(const std::complex<float>* in, double scale,
                             double* acc, std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  const __m128d s = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 p = detail::pair_powers(_mm_loadu_ps(f + 2 * i));
    // Lanes [p0, p0, p1, p1] -> [p0, p1] as doubles.
    const __m128d pd =
        _mm_cvtps_pd(_mm_shuffle_ps(p, p, _MM_SHUFFLE(2, 2, 2, 0)));
    const __m128d prev = _mm_loadu_pd(acc + i);
    _mm_storeu_pd(acc + i, _mm_add_pd(prev, _mm_mul_pd(pd, s)));
  }
  if (i < n) scalar::accumulate_power(in + i, scale, acc + i, n - i);
}

inline void power_scaled(const std::complex<float>* in, double scale,
                         double* out, std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  const __m128d s = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 p = detail::pair_powers(_mm_loadu_ps(f + 2 * i));
    const __m128d pd =
        _mm_cvtps_pd(_mm_shuffle_ps(p, p, _MM_SHUFFLE(2, 2, 2, 0)));
    _mm_storeu_pd(out + i, _mm_mul_pd(pd, s));
  }
  if (i < n) scalar::power_scaled(in + i, scale, out + i, n - i);
}

[[nodiscard]] inline double sum_power(const std::complex<float>* in,
                                      std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 pa = detail::pair_powers(_mm_loadu_ps(f + 2 * i));
    const __m128 pb = detail::pair_powers(_mm_loadu_ps(f + 2 * i + 4));
    acc0 = _mm_add_pd(
        acc0, _mm_cvtps_pd(_mm_shuffle_ps(pa, pa, _MM_SHUFFLE(2, 2, 2, 0))));
    acc1 = _mm_add_pd(
        acc1, _mm_cvtps_pd(_mm_shuffle_ps(pb, pb, _MM_SHUFFLE(2, 2, 2, 0))));
  }
  const __m128d acc = _mm_add_pd(acc0, acc1);
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  double total = lanes[0] + lanes[1];
  if (i < n) total += scalar::sum_power(in + i, n - i);
  return total;
}

inline void cmul_inplace(std::complex<float>* a, const std::complex<float>* b,
                         std::size_t n) noexcept {
  float* fa = reinterpret_cast<float*>(a);
  const float* fb = reinterpret_cast<const float*>(b);
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(fa + 2 * i);
    const __m256 vb = _mm256_loadu_ps(fb + 2 * i);
    _mm256_storeu_ps(fa + 2 * i, detail::cmul4(va, vb));
  }
#endif
  for (; i + 2 <= n; i += 2) {
    const __m128 va = _mm_loadu_ps(fa + 2 * i);
    const __m128 vb = _mm_loadu_ps(fb + 2 * i);
    _mm_storeu_ps(fa + 2 * i, detail::cmul2(va, vb));
  }
  if (i < n) scalar::cmul_inplace(a + i, b + i, n - i);
}

[[nodiscard]] inline std::complex<double> cdot(const std::complex<double>* a,
                                               const std::complex<double>* b,
                                               std::size_t n) noexcept {
  const double* da = reinterpret_cast<const double*>(a);
  const double* db = reinterpret_cast<const double*>(b);
  // Two independent [re, im] accumulators to break the add dependency chain.
  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  const __m128d neg_even =
      _mm_castsi128_pd(_mm_setr_epi32(0, INT32_C(0x80000000), 0, 0));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d va0 = _mm_loadu_pd(da + 2 * i);      // [ar, ai]
    const __m128d vb0 = _mm_loadu_pd(db + 2 * i);      // [br, bi]
    const __m128d va1 = _mm_loadu_pd(da + 2 * i + 2);
    const __m128d vb1 = _mm_loadu_pd(db + 2 * i + 2);
    // [ar*br - ai*bi, ar*bi + ai*br]
    const __m128d t0r = _mm_mul_pd(_mm_unpacklo_pd(va0, va0), vb0);
    const __m128d t0i = _mm_xor_pd(
        _mm_mul_pd(_mm_unpackhi_pd(va0, va0),
                   _mm_shuffle_pd(vb0, vb0, 0x1)),
        neg_even);
    acc0 = _mm_add_pd(acc0, _mm_add_pd(t0r, t0i));
    const __m128d t1r = _mm_mul_pd(_mm_unpacklo_pd(va1, va1), vb1);
    const __m128d t1i = _mm_xor_pd(
        _mm_mul_pd(_mm_unpackhi_pd(va1, va1),
                   _mm_shuffle_pd(vb1, vb1, 0x1)),
        neg_even);
    acc1 = _mm_add_pd(acc1, _mm_add_pd(t1r, t1i));
  }
  const __m128d acc = _mm_add_pd(acc0, acc1);
  double lanes[2];
  _mm_storeu_pd(lanes, acc);
  std::complex<double> total(lanes[0], lanes[1]);
  if (i < n) total += scalar::cdot(a + i, b + i, n - i);
  return total;
}

[[nodiscard]] inline std::complex<double> dot_conj(
    const std::complex<float>* x, const std::complex<float>* ref,
    std::size_t n) noexcept {
  const float* fx = reinterpret_cast<const float*>(x);
  const float* fr = reinterpret_cast<const float*>(ref);
  // Accumulate x*conj(ref) in two packed-complex float lanes, widening to
  // double at the end — fine for the short correlation windows this serves
  // (documented tolerance; observed ~1e-6 relative for n <= 4096).
  __m128 acc = _mm_setzero_ps();
  const __m128 neg_odd = _mm_castsi128_ps(
      _mm_setr_epi32(0, INT32_C(0x80000000), 0, INT32_C(0x80000000)));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 vx = _mm_loadu_ps(fx + 2 * i);
    // conj(ref): negate imaginary lanes (1 and 3).
    const __m128 vr = _mm_xor_ps(_mm_loadu_ps(fr + 2 * i), neg_odd);
    acc = _mm_add_ps(acc, detail::cmul2(vx, vr));
  }
  float lanes[4];
  _mm_storeu_ps(lanes, acc);
  std::complex<double> total(static_cast<double>(lanes[0]) + lanes[2],
                             static_cast<double>(lanes[1]) + lanes[3]);
  if (i < n) total += scalar::dot_conj(x + i, ref + i, n - i);
  return total;
}

inline void fft_radix2_stage(float* data, std::size_t n, std::size_t len,
                             const float* tw, float sign) noexcept {
  const std::size_t half = len >> 1;
  if (half < 2) {
    scalar::fft_radix2_stage(data, n, len, tw, sign);
    return;
  }
  const __m128 vsign = _mm_set1_ps(sign);
#if defined(__AVX2__)
  const __m256 vsign8 = _mm256_set1_ps(sign);
#endif
  for (std::size_t i = 0; i < n; i += len) {
    float* lo = data + 2 * i;
    float* hi = data + 2 * (i + half);
    std::size_t k0 = 0;
#if defined(__AVX2__)
    for (; k0 + 4 <= half; k0 += 4) {
      const __m256 w = _mm256_loadu_ps(tw + 2 * k0);
      const __m256 x = _mm256_loadu_ps(hi + 2 * k0);
      const __m256 wr = _mm256_shuffle_ps(w, w, _MM_SHUFFLE(2, 2, 0, 0));
      const __m256 wi = _mm256_mul_ps(
          _mm256_shuffle_ps(w, w, _MM_SHUFFLE(3, 3, 1, 1)), vsign8);
      const __m256 xsw = _mm256_shuffle_ps(x, x, _MM_SHUFFLE(2, 3, 0, 1));
      const __m256 v = _mm256_add_ps(
          _mm256_mul_ps(x, wr),
          _mm256_xor_ps(_mm256_mul_ps(xsw, wi), detail::negate_even_mask256()));
      const __m256 u = _mm256_loadu_ps(lo + 2 * k0);
      _mm256_storeu_ps(lo + 2 * k0, _mm256_add_ps(u, v));
      _mm256_storeu_ps(hi + 2 * k0, _mm256_sub_ps(u, v));
    }
#endif
    for (std::size_t k = k0; k + 2 <= half; k += 2) {
      const __m128 w = _mm_loadu_ps(tw + 2 * k);
      const __m128 x = _mm_loadu_ps(hi + 2 * k);
      const __m128 wr = _mm_shuffle_ps(w, w, _MM_SHUFFLE(2, 2, 0, 0));
      const __m128 wi =
          _mm_mul_ps(_mm_shuffle_ps(w, w, _MM_SHUFFLE(3, 3, 1, 1)), vsign);
      const __m128 xsw = _mm_shuffle_ps(x, x, _MM_SHUFFLE(2, 3, 0, 1));
      // v = [xr*wr - xi*wi, xi*wr + xr*wi]; the imaginary lane exploits
      // float-add commutativity to stay bit-identical to the scalar form.
      const __m128 v =
          _mm_add_ps(_mm_mul_ps(x, wr),
                     _mm_xor_ps(_mm_mul_ps(xsw, wi), detail::negate_even_mask()));
      const __m128 u = _mm_loadu_ps(lo + 2 * k);
      _mm_storeu_ps(lo + 2 * k, _mm_add_ps(u, v));
      _mm_storeu_ps(hi + 2 * k, _mm_sub_ps(u, v));
    }
  }
}

inline void preamble_candidates(const float* mag, std::size_t n_positions,
                                std::uint8_t* out) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n_positions; i += 4) {
    const __m128 pulse_min = _mm_min_ps(
        _mm_min_ps(_mm_loadu_ps(mag + i), _mm_loadu_ps(mag + i + 2)),
        _mm_min_ps(_mm_loadu_ps(mag + i + 7), _mm_loadu_ps(mag + i + 9)));
    const __m128 quiet_max = _mm_max_ps(
        _mm_max_ps(_mm_max_ps(_mm_loadu_ps(mag + i + 1),
                              _mm_loadu_ps(mag + i + 3)),
                   _mm_loadu_ps(mag + i + 5)),
        _mm_max_ps(_mm_max_ps(_mm_loadu_ps(mag + i + 11),
                              _mm_loadu_ps(mag + i + 13)),
                   _mm_loadu_ps(mag + i + 15)));
    const int mask = _mm_movemask_ps(_mm_cmpgt_ps(pulse_min, quiet_max));
    out[i] = static_cast<std::uint8_t>(mask & 1);
    out[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    out[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    out[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  if (i < n_positions) scalar::preamble_candidates(mag + i, n_positions - i, out + i);
}

#elif !defined(SPECCAL_DISABLE_SIMD) && defined(__ARM_NEON)

// NEON tier: the widest-impact elementwise kernels use vld2 deinterleaved
// loads; the remaining kernels fall through to the scalar reference (still
// correct, just unvectorized) — extend as ARM hosts join the fleet.

inline void magnitude_squared(const std::complex<float>* in, float* out,
                              std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4x2_t v = vld2q_f32(f + 2 * i);
    vst1q_f32(out + i, vaddq_f32(vmulq_f32(v.val[0], v.val[0]),
                                 vmulq_f32(v.val[1], v.val[1])));
  }
  if (i < n) scalar::magnitude_squared(in + i, out + i, n - i);
}

inline void apply_window(const std::complex<float>* in, const float* win,
                         std::complex<float>* out, std::size_t n) noexcept {
  const float* f = reinterpret_cast<const float*>(in);
  float* o = reinterpret_cast<float*>(out);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4x2_t v = vld2q_f32(f + 2 * i);
    const float32x4_t w = vld1q_f32(win + i);
    v.val[0] = vmulq_f32(v.val[0], w);
    v.val[1] = vmulq_f32(v.val[1], w);
    vst2q_f32(o + 2 * i, v);
  }
  if (i < n) scalar::apply_window(in + i, win + i, out + i, n - i);
}

inline void accumulate_power(const std::complex<float>* in, double scale,
                             double* acc, std::size_t n) noexcept {
  scalar::accumulate_power(in, scale, acc, n);
}

inline void power_scaled(const std::complex<float>* in, double scale,
                         double* out, std::size_t n) noexcept {
  scalar::power_scaled(in, scale, out, n);
}

[[nodiscard]] inline double sum_power(const std::complex<float>* in,
                                      std::size_t n) noexcept {
  return scalar::sum_power(in, n);
}

inline void cmul_inplace(std::complex<float>* a, const std::complex<float>* b,
                         std::size_t n) noexcept {
  scalar::cmul_inplace(a, b, n);
}

[[nodiscard]] inline std::complex<double> cdot(const std::complex<double>* a,
                                               const std::complex<double>* b,
                                               std::size_t n) noexcept {
  return scalar::cdot(a, b, n);
}

[[nodiscard]] inline std::complex<double> dot_conj(
    const std::complex<float>* x, const std::complex<float>* ref,
    std::size_t n) noexcept {
  return scalar::dot_conj(x, ref, n);
}

inline void fft_radix2_stage(float* data, std::size_t n, std::size_t len,
                             const float* tw, float sign) noexcept {
  scalar::fft_radix2_stage(data, n, len, tw, sign);
}

inline void preamble_candidates(const float* mag, std::size_t n_positions,
                                std::uint8_t* out) noexcept {
  scalar::preamble_candidates(mag, n_positions, out);
}

#else  // forced scalar or unknown ISA

inline void magnitude_squared(const std::complex<float>* in, float* out,
                              std::size_t n) noexcept {
  scalar::magnitude_squared(in, out, n);
}

inline void apply_window(const std::complex<float>* in, const float* win,
                         std::complex<float>* out, std::size_t n) noexcept {
  scalar::apply_window(in, win, out, n);
}

inline void accumulate_power(const std::complex<float>* in, double scale,
                             double* acc, std::size_t n) noexcept {
  scalar::accumulate_power(in, scale, acc, n);
}

inline void power_scaled(const std::complex<float>* in, double scale,
                         double* out, std::size_t n) noexcept {
  scalar::power_scaled(in, scale, out, n);
}

[[nodiscard]] inline double sum_power(const std::complex<float>* in,
                                      std::size_t n) noexcept {
  return scalar::sum_power(in, n);
}

inline void cmul_inplace(std::complex<float>* a, const std::complex<float>* b,
                         std::size_t n) noexcept {
  scalar::cmul_inplace(a, b, n);
}

[[nodiscard]] inline std::complex<double> cdot(const std::complex<double>* a,
                                               const std::complex<double>* b,
                                               std::size_t n) noexcept {
  return scalar::cdot(a, b, n);
}

[[nodiscard]] inline std::complex<double> dot_conj(
    const std::complex<float>* x, const std::complex<float>* ref,
    std::size_t n) noexcept {
  return scalar::dot_conj(x, ref, n);
}

inline void fft_radix2_stage(float* data, std::size_t n, std::size_t len,
                             const float* tw, float sign) noexcept {
  scalar::fft_radix2_stage(data, n, len, tw, sign);
}

inline void preamble_candidates(const float* mag, std::size_t n_positions,
                                std::uint8_t* out) noexcept {
  scalar::preamble_candidates(mag, n_positions, out);
}

#endif

}  // namespace speccal::dsp::simd
