#include "dsp/plan.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "dsp/simd.hpp"
#include "obs/metrics.hpp"

namespace speccal::dsp {

// ------------------------------------------------------------------ plan ----

template <typename Real>
BasicFftPlan<Real>::BasicFftPlan(std::size_t n) : n_(n) {
  if (!is_power_of_two(n))
    throw std::invalid_argument("FftPlan: size must be a power of two (got " +
                                std::to_string(n) + ")");
  bitrev_.resize(n);
  bitrev_[0] = 0;
  for (std::size_t i = 1; i < n; ++i)
    bitrev_[i] = static_cast<std::uint32_t>((bitrev_[i >> 1] >> 1) |
                                            ((i & 1) ? (n >> 1) : 0));
  if (n > 1) twiddle_.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(len);
      twiddle_.emplace_back(static_cast<Real>(std::cos(angle)),
                            static_cast<Real>(std::sin(angle)));
    }
  }
}

template <typename Real>
void BasicFftPlan<Real>::execute(std::span<std::complex<Real>> data,
                                 bool inverse) const {
  if (data.size() != n_)
    throw std::invalid_argument("FftPlan: data size " +
                                std::to_string(data.size()) +
                                " does not match plan size " + std::to_string(n_));
  if (n_ == 1) return;

  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies on raw real/imag pairs. std::complex guarantees the
  // array-compatible {re, im} layout, and the explicit butterfly formula is
  // bit-identical to operator* for finite values — but unlike operator* it
  // carries no Annex-G NaN-recovery branch. The float specialization (the
  // per-capture hot path) runs each stage through the dispatched SIMD stage
  // kernel (dsp/simd.hpp, bit-identical to the scalar sibling); the double
  // specialization (used once per filter design) stays on the scalar form.
  Real* __restrict d = reinterpret_cast<Real*>(data.data());
  const Real* __restrict tw = reinterpret_cast<const Real*>(twiddle_.data());
  const Real sign = inverse ? Real(-1) : Real(1);  // conjugates the twiddles
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    if constexpr (std::is_same_v<Real, float>) {
      simd::fft_radix2_stage(d, n_, len, tw, sign);
    } else {
      const std::size_t half = len >> 1;
      for (std::size_t i = 0; i < n_; i += len) {
        Real* __restrict lo = d + 2 * i;
        Real* __restrict hi = d + 2 * (i + half);
        for (std::size_t k = 0; k < half; ++k) {
          const Real wr = tw[2 * k];
          const Real wi = sign * tw[2 * k + 1];
          const Real xr = hi[2 * k], xi = hi[2 * k + 1];
          const Real vr = xr * wr - xi * wi;
          const Real vi = xr * wi + xi * wr;
          const Real ur = lo[2 * k], ui = lo[2 * k + 1];
          lo[2 * k] = ur + vr;
          lo[2 * k + 1] = ui + vi;
          hi[2 * k] = ur - vr;
          hi[2 * k + 1] = ui - vi;
        }
      }
    }
    tw += len;  // each stage holds `half` complex twiddles = `len` Reals
  }

  if (inverse) {
    const Real inv_n = Real(1) / static_cast<Real>(n_);
    for (auto& x : data) x *= inv_n;
  }
}

template <typename Real>
void BasicFftPlan<Real>::forward(std::span<std::complex<Real>> data) const {
  execute(data, false);
}

template <typename Real>
void BasicFftPlan<Real>::inverse(std::span<std::complex<Real>> data) const {
  execute(data, true);
}

template class BasicFftPlan<float>;
template class BasicFftPlan<double>;

// ----------------------------------------------------------------- cache ----

struct PlanCache::Impl {
  mutable std::mutex mutex;
  std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> f32;
  std::unordered_map<std::size_t, std::shared_ptr<const FftPlanD>> f64;
  std::size_t hits = 0;
  std::size_t misses = 0;
  // Registry-backed twins of the counters above (DESIGN.md §10). The local
  // fields feed the deprecated stats() snapshot; these feed the fleet-wide
  // exposition endpoints.
  obs::Counter& hits_metric =
      obs::Registry::global().counter("speccal_dsp_plan_cache_hits_total");
  obs::Counter& misses_metric =
      obs::Registry::global().counter("speccal_dsp_plan_cache_misses_total");
  obs::Gauge& entries_metric =
      obs::Registry::global().gauge("speccal_dsp_plan_cache_entries");

  void publish_locked() noexcept {
    entries_metric.set(static_cast<double>(f32.size() + f64.size()));
  }
};

PlanCache::PlanCache() : impl_(std::make_unique<Impl>()) {}

PlanCache& PlanCache::shared() {
  static PlanCache cache;
  return cache;
}

namespace {
template <typename Plan, typename Map>
std::shared_ptr<const Plan> get_or_build(Map& map, std::size_t n,
                                         std::size_t& hits, std::size_t& misses,
                                         obs::Counter& hits_metric,
                                         obs::Counter& misses_metric) {
  auto it = map.find(n);
  if (it != map.end()) {
    ++hits;
    hits_metric.add();
    return it->second;
  }
  // Built under the lock: plans are shared by construction, and the build
  // cost is paid once per (size, process), so contention is a non-issue.
  auto plan = std::make_shared<const Plan>(n);
  map.emplace(n, plan);
  ++misses;
  misses_metric.add();
  return plan;
}
}  // namespace

std::shared_ptr<const FftPlan> PlanCache::plan_f32(std::size_t n) {
  std::lock_guard lock(impl_->mutex);
  auto plan = get_or_build<FftPlan>(impl_->f32, n, impl_->hits, impl_->misses,
                                    impl_->hits_metric, impl_->misses_metric);
  impl_->publish_locked();
  return plan;
}

std::shared_ptr<const FftPlanD> PlanCache::plan_f64(std::size_t n) {
  std::lock_guard lock(impl_->mutex);
  auto plan = get_or_build<FftPlanD>(impl_->f64, n, impl_->hits, impl_->misses,
                                     impl_->hits_metric, impl_->misses_metric);
  impl_->publish_locked();
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(impl_->mutex);
  return {impl_->hits, impl_->misses, impl_->f32.size() + impl_->f64.size()};
}

void PlanCache::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->f32.clear();
  impl_->f64.clear();
  impl_->hits = 0;
  impl_->misses = 0;
  // Registry counters are monotonic by contract and deliberately survive a
  // clear(); only the entries gauge tracks the emptied cache.
  impl_->publish_locked();
}

// ----------------------------------------------------------------- arena ----

namespace {
template <typename Vec>
auto pool_span(Vec& pool, std::size_t n) {
  if (pool.capacity() < n) {
    // Grow events are the signal that a "zero steady-state allocation" loop
    // is not actually steady; fleet dashboards watch this stay flat.
    static obs::Counter& grows =
        obs::Registry::global().counter("speccal_dsp_scratch_grow_events_total");
    grows.add();
  }
  if (pool.size() < n) pool.resize(n);
  return std::span(pool.data(), n);
}
}  // namespace

std::span<std::complex<float>> ScratchArena::complex_f32(std::size_t n) {
  return pool_span(c32_, n);
}

std::span<std::complex<double>> ScratchArena::complex_f64(std::size_t n) {
  return pool_span(c64_, n);
}

std::span<double> ScratchArena::real_f64(std::size_t n) {
  return pool_span(r64_, n);
}

std::size_t ScratchArena::capacity_bytes() const noexcept {
  return c32_.capacity() * sizeof(std::complex<float>) +
         c64_.capacity() * sizeof(std::complex<double>) +
         r64_.capacity() * sizeof(double);
}

// ------------------------------------------------------------- estimator ----

SpectrumEstimator::SpectrumEstimator(std::size_t fft_size,
                                     std::span<const double> window) {
  if (!is_power_of_two(fft_size))
    throw std::invalid_argument(
        "SpectrumEstimator: fft_size must be a power of two (got " +
        std::to_string(fft_size) + ")");
  if (window.size() > fft_size)
    throw std::invalid_argument(
        "SpectrumEstimator: window length " + std::to_string(window.size()) +
        " exceeds fft_size " + std::to_string(fft_size));
  plan_ = PlanCache::shared().plan_f32(fft_size);
  window_.assign(window.begin(), window.end());
}

void SpectrumEstimator::estimate(std::span<const std::complex<float>> block,
                                 std::vector<double>& out) {
  const std::size_t n = plan_->size();
  if (block.size() > n)
    throw std::invalid_argument("SpectrumEstimator: block length " +
                                std::to_string(block.size()) +
                                " exceeds fft_size " + std::to_string(n));
  out.resize(n);
  if (block.empty()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }

  auto work = scratch_.complex_f32(n);
  const std::size_t windowed = std::min(block.size(), window_.size());
  double window_power = 0.0;
  for (std::size_t i = 0; i < windowed; ++i)
    window_power += static_cast<double>(window_[i]) * static_cast<double>(window_[i]);
  window_power += static_cast<double>(block.size() - windowed);  // implicit w = 1
  simd::apply_window(block.data(), window_.data(), work.data(), windowed);
  for (std::size_t i = windowed; i < block.size(); ++i) work[i] = block[i];
  for (std::size_t i = block.size(); i < n; ++i) work[i] = {0.0f, 0.0f};

  plan_->forward(work);

  // Same normalization as the legacy free function: coherent-gain-corrected
  // power per bin, full-scale tone ~ 1.0 regardless of window.
  const double scale = 1.0 / (window_power * static_cast<double>(block.size()));
  simd::power_scaled(work.data(), scale, out.data(), n);
}

std::vector<double> SpectrumEstimator::estimate(
    std::span<const std::complex<float>> block) {
  std::vector<double> out;
  estimate(block, out);
  return out;
}

}  // namespace speccal::dsp
