#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace speccal::dsp {

namespace {

void transform(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson-Lanczos butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

}  // namespace

void fft_inplace(std::span<std::complex<double>> data) { transform(data, false); }
void ifft_inplace(std::span<std::complex<double>> data) { transform(data, true); }

std::vector<std::complex<double>> fft(std::span<const std::complex<double>> data) {
  std::vector<std::complex<double>> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> data) {
  std::vector<std::complex<double>> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<double> power_spectrum(std::span<const std::complex<float>> block,
                                   std::span<const double> window) {
  if (block.empty()) return {};
  std::size_t n = 1;
  while (n < block.size()) n <<= 1;

  std::vector<std::complex<double>> work(n, {0.0, 0.0});
  double window_power = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const double w = (i < window.size()) ? window[i] : 1.0;
    window_power += w * w;
    work[i] = std::complex<double>(block[i].real(), block[i].imag()) * w;
  }
  if (window.empty()) window_power = static_cast<double>(block.size());

  fft_inplace(work);

  // Normalize so a full-scale tone lands near 1.0 regardless of window:
  // |X[k]|^2 / (sum w^2 * N_block) puts coherent-gain-corrected power per bin.
  const double scale = 1.0 / (window_power * static_cast<double>(block.size()));
  std::vector<double> spectrum(n);
  for (std::size_t k = 0; k < n; ++k) spectrum[k] = std::norm(work[k]) * scale;
  return spectrum;
}

std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                              std::size_t fft_size) noexcept {
  const double resolution = sample_rate_hz / static_cast<double>(fft_size);
  long bin = std::lround(freq_hz / resolution);
  const long n = static_cast<long>(fft_size);
  bin %= n;
  if (bin < 0) bin += n;
  return static_cast<std::size_t>(bin);
}

}  // namespace speccal::dsp
