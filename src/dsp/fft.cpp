#include "dsp/fft.hpp"

#include <cmath>

namespace speccal::dsp {

void fft_inplace(std::span<std::complex<double>> data) {
  PlanCache::shared().plan_f64(data.size())->forward(data);
}

void ifft_inplace(std::span<std::complex<double>> data) {
  PlanCache::shared().plan_f64(data.size())->inverse(data);
}

std::vector<std::complex<double>> fft(std::span<const std::complex<double>> data) {
  std::vector<std::complex<double>> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> data) {
  std::vector<std::complex<double>> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<double> power_spectrum(std::span<const std::complex<float>> block,
                                   std::span<const double> window) {
  if (block.empty()) return {};
  SpectrumEstimator estimator(next_power_of_two(block.size()), window);
  return estimator.estimate(block);
}

std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                              std::size_t fft_size) noexcept {
  if (fft_size == 0 || !(sample_rate_hz > 0.0)) return 0;
  const double resolution = sample_rate_hz / static_cast<double>(fft_size);
  // floor(x + 0.5), not lround: lround ties away from zero, which sent a
  // negative frequency exactly on a bin edge to the lower-index bin while
  // the same edge on the positive side went up — an off-by-one across DC.
  // Rounding half toward +inf keeps the contract uniform: edges belong to
  // the more-positive-frequency bin.
  long bin = static_cast<long>(std::floor(freq_hz / resolution + 0.5));
  const long n = static_cast<long>(fft_size);
  bin %= n;
  if (bin < 0) bin += n;
  return static_cast<std::size_t>(bin);
}

}  // namespace speccal::dsp
