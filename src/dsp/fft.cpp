#include "dsp/fft.hpp"

#include <cmath>

namespace speccal::dsp {

std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                              std::size_t fft_size) noexcept {
  if (fft_size == 0 || !(sample_rate_hz > 0.0)) return 0;
  const double resolution = sample_rate_hz / static_cast<double>(fft_size);
  // floor(x + 0.5), not lround: lround ties away from zero, which sent a
  // negative frequency exactly on a bin edge to the lower-index bin while
  // the same edge on the positive side went up — an off-by-one across DC.
  // Rounding half toward +inf keeps the contract uniform: edges belong to
  // the more-positive-frequency bin.
  long bin = static_cast<long>(std::floor(freq_hz / resolution + 0.5));
  const long n = static_cast<long>(fft_size);
  bin %= n;
  if (bin < 0) bin += n;
  return static_cast<std::size_t>(bin);
}

}  // namespace speccal::dsp
