#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

namespace speccal::dsp {

std::vector<double> make_window(WindowType type, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;  // 0..1
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2.0 * kTwoPi * x);
        break;
      case WindowType::kBlackmanHarris:
        w[i] = 0.35875 - 0.48829 * std::cos(kTwoPi * x) +
               0.14128 * std::cos(2.0 * kTwoPi * x) -
               0.01168 * std::cos(3.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

double window_sum(const std::vector<double>& w) noexcept {
  double acc = 0.0;
  for (double v : w) acc += v;
  return acc;
}

double window_power(const std::vector<double>& w) noexcept {
  double acc = 0.0;
  for (double v : w) acc += v * v;
  return acc;
}

}  // namespace speccal::dsp
