// Common I/Q sample types.
//
// SDR capture buffers are complex float32 (the native wire format of most
// SDR drivers, "cf32"); analysis code promotes to double where numerical
// accuracy matters (FFT verification, Parseval sums).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace speccal::dsp {

using Sample = std::complex<float>;
using Buffer = std::vector<Sample>;

/// Mean power (|x|^2 average) of a sample block; 0 for an empty block.
[[nodiscard]] inline double mean_power(std::span<const Sample> block) noexcept {
  if (block.empty()) return 0.0;
  double acc = 0.0;
  for (const Sample& s : block) acc += static_cast<double>(std::norm(s));
  return acc / static_cast<double>(block.size());
}

/// Mean power in dB relative to full scale (|x| = 1.0 is full scale).
/// Empty or silent blocks report -200 dBFS (an effective floor).
[[nodiscard]] inline double mean_power_dbfs(std::span<const Sample> block) noexcept {
  const double p = mean_power(block);
  if (p <= 1e-20) return -200.0;
  return 10.0 * std::log10(p);
}

}  // namespace speccal::dsp
