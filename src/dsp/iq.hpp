// Common I/Q sample types.
//
// SDR capture buffers are complex float32 (the native wire format of most
// SDR drivers, "cf32"); analysis code promotes to double where numerical
// accuracy matters (FFT verification, Parseval sums).
#pragma once

#include <algorithm>
#include <complex>
#include <span>
#include <vector>

namespace speccal::dsp {

using Sample = std::complex<float>;
using Buffer = std::vector<Sample>;

/// Mean power (|x|^2 average) of a sample block; 0 for an empty block.
[[nodiscard]] inline double mean_power(std::span<const Sample> block) noexcept {
  if (block.empty()) return 0.0;
  double acc = 0.0;
  for (const Sample& s : block) acc += static_cast<double>(std::norm(s));
  return acc / static_cast<double>(block.size());
}

/// Mean power in dB relative to full scale (|x| = 1.0 is full scale).
/// Empty or silent blocks report -200 dBFS (an effective floor).
[[nodiscard]] inline double mean_power_dbfs(std::span<const Sample> block) noexcept {
  const double p = mean_power(block);
  if (p <= 1e-20) return -200.0;
  return 10.0 * std::log10(p);
}

/// Normalized lag autocorrelation |R(lag)| / R(0) in [0, 1].
///
/// The cheap occupancy discriminant from USRP scanning receivers: white
/// noise decorrelates at one sample (rho ~ 1/sqrt(N)), a band-limited
/// signal occupying fraction B/fs of the capture keeps rho ~ sinc(B/fs)
/// (~0.4 for an ATSC channel in an 8 Msps capture), and a CW tone holds
/// rho ~ 1. Blocks shorter than lag+2 samples report 0.
[[nodiscard]] inline double lag_autocorrelation(std::span<const Sample> block,
                                                std::size_t lag = 1) noexcept {
  if (lag == 0 || block.size() < lag + 2) return 0.0;
  const std::size_t n = block.size() - lag;
  std::complex<double> r_lag{0.0, 0.0};
  double r0 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> a(block[i]);
    const std::complex<double> b(block[i + lag]);
    r_lag += std::conj(a) * b;
    r0 += std::norm(a);
  }
  if (r0 <= 1e-20) return 0.0;
  return std::min(1.0, std::abs(r_lag) / r0);
}

}  // namespace speccal::dsp
