// Integer-factor FIR decimator.
//
// Wide captures are decimated to per-channel rates before narrowband
// processing (e.g. an 8 Msps TV capture down to 2 Msps for inspection).
// Decimation = anti-alias low-pass + keep-every-Mth; the polyphase form
// computes only the retained outputs.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fir.hpp"

namespace speccal::dsp {

class Decimator {
 public:
  /// Decimate by `factor` (>= 1). The anti-alias cutoff sits at 80% of the
  /// output Nyquist; `taps_per_phase` controls filter sharpness.
  Decimator(unsigned factor, double input_rate_hz, std::size_t taps_per_phase = 24);

  /// Process a block; output length ~ input/factor (streaming, carries
  /// state across calls).
  void process(std::span<const std::complex<float>> in,
               std::vector<std::complex<float>>& out);

  [[nodiscard]] std::vector<std::complex<float>> decimate(
      std::span<const std::complex<float>> in);

  [[nodiscard]] unsigned factor() const noexcept { return factor_; }
  [[nodiscard]] double output_rate_hz() const noexcept { return output_rate_hz_; }

  void reset() noexcept;

 private:
  unsigned factor_;
  double output_rate_hz_;
  std::vector<double> taps_;             // prototype low-pass
  std::vector<std::complex<double>> history_;  // delay line (taps_.size())
  std::size_t head_ = 0;
  unsigned phase_ = 0;  // samples consumed since the last retained output
};

}  // namespace speccal::dsp
