// Numerically controlled oscillator / complex mixer.
//
// Emitter synthesizers place each signal at its frequency offset inside the
// SDR's capture bandwidth by mixing baseband waveforms with an NCO.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>
#include <span>
#include <vector>

namespace speccal::dsp {

/// Phase-accumulating complex oscillator. Phase continuity is preserved
/// across blocks, so multi-block captures have no spectral seams.
///
/// Samples are produced by a phasor recurrence (one complex multiply per
/// sample) rather than a sin/cos pair; the double-precision phasor is
/// renormalized to the unit circle every kRenormInterval samples, which
/// bounds the amplitude drift well below float resolution for any
/// realistic capture length.
class Nco {
 public:
  Nco(double freq_hz, double sample_rate_hz) noexcept {
    const double step = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
    step_ = {std::cos(step), std::sin(step)};
  }

  /// Next oscillator sample e^{j phase}.
  [[nodiscard]] std::complex<float> next() noexcept {
    const std::complex<float> out(static_cast<float>(phasor_.real()),
                                  static_cast<float>(phasor_.imag()));
    phasor_ *= step_;
    if (++since_renorm_ >= kRenormInterval) renormalize();
    return out;
  }

  /// Mix a block up/down by the NCO frequency, adding into `accum`
  /// scaled by `amplitude`. `accum` must be at least as long as `in`.
  void mix_add(std::span<const std::complex<float>> in, float amplitude,
               std::span<std::complex<float>> accum) noexcept {
    const std::size_t n = std::min(in.size(), accum.size());
    for (std::size_t i = 0; i < n; ++i) accum[i] += in[i] * next() * amplitude;
  }

  /// Tone synthesis: accum[i] += e^{j phase_i} * amplitude for the whole
  /// block, advancing the oscillator by accum.size() samples (phase
  /// continuity preserved, same as repeated next()).
  ///
  /// Four phasor lanes advance by step^4 per iteration, breaking the
  /// sequential complex-multiply dependency chain of the per-sample path.
  /// The lane recurrence rounds differently from repeated next() and is
  /// renormalized once per block instead of every kRenormInterval samples:
  /// equivalent within simd::kSimdEquivalenceTolerance (observed ~1e-9
  /// relative per block; test_dsp_simd holds the line).
  void add_tone(std::span<std::complex<float>> accum, float amplitude) noexcept {
    const std::size_t n = accum.size();
    if (n < 16) {
      for (auto& s : accum) s += next() * amplitude;
      return;
    }
    const std::complex<double> s1 = step_;
    const std::complex<double> s2 = s1 * s1;
    const std::complex<double> s4 = s2 * s2;
    std::complex<double> p0 = phasor_;
    std::complex<double> p1 = phasor_ * s1;
    std::complex<double> p2 = phasor_ * s2;
    std::complex<double> p3 = p1 * s2;
    const float amp = amplitude;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      accum[i] += std::complex<float>(static_cast<float>(p0.real()),
                                      static_cast<float>(p0.imag())) * amp;
      accum[i + 1] += std::complex<float>(static_cast<float>(p1.real()),
                                          static_cast<float>(p1.imag())) * amp;
      accum[i + 2] += std::complex<float>(static_cast<float>(p2.real()),
                                          static_cast<float>(p2.imag())) * amp;
      accum[i + 3] += std::complex<float>(static_cast<float>(p3.real()),
                                          static_cast<float>(p3.imag())) * amp;
      p0 *= s4;
      p1 *= s4;
      p2 *= s4;
      p3 *= s4;
    }
    phasor_ = p0;  // lane 0 carries the phase of the first unemitted sample
    renormalize();
    for (; i < n; ++i) accum[i] += next() * amplitude;
  }

  void set_phase(double radians) noexcept {
    phasor_ = {std::cos(radians), std::sin(radians)};
    since_renorm_ = 0;
  }
  /// Current phase as a principal value in (-pi, pi].
  [[nodiscard]] double phase() const noexcept {
    return std::atan2(phasor_.imag(), phasor_.real());
  }

 private:
  static constexpr int kRenormInterval = 1024;

  void renormalize() noexcept {
    phasor_ /= std::abs(phasor_);
    since_renorm_ = 0;
  }

  std::complex<double> step_{1.0, 0.0};
  std::complex<double> phasor_{1.0, 0.0};
  int since_renorm_ = 0;
};

}  // namespace speccal::dsp
