// Numerically controlled oscillator / complex mixer.
//
// Emitter synthesizers place each signal at its frequency offset inside the
// SDR's capture bandwidth by mixing baseband waveforms with an NCO.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>
#include <span>
#include <vector>

namespace speccal::dsp {

/// Phase-accumulating complex oscillator. Phase continuity is preserved
/// across blocks, so multi-block captures have no spectral seams.
///
/// Samples are produced by a phasor recurrence (one complex multiply per
/// sample) rather than a sin/cos pair; the double-precision phasor is
/// renormalized to the unit circle every kRenormInterval samples, which
/// bounds the amplitude drift well below float resolution for any
/// realistic capture length.
class Nco {
 public:
  Nco(double freq_hz, double sample_rate_hz) noexcept {
    const double step = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
    step_ = {std::cos(step), std::sin(step)};
  }

  /// Next oscillator sample e^{j phase}.
  [[nodiscard]] std::complex<float> next() noexcept {
    const std::complex<float> out(static_cast<float>(phasor_.real()),
                                  static_cast<float>(phasor_.imag()));
    phasor_ *= step_;
    if (++since_renorm_ >= kRenormInterval) renormalize();
    return out;
  }

  /// Mix a block up/down by the NCO frequency, adding into `accum`
  /// scaled by `amplitude`. `accum` must be at least as long as `in`.
  void mix_add(std::span<const std::complex<float>> in, float amplitude,
               std::span<std::complex<float>> accum) noexcept {
    const std::size_t n = std::min(in.size(), accum.size());
    for (std::size_t i = 0; i < n; ++i) accum[i] += in[i] * next() * amplitude;
  }

  void set_phase(double radians) noexcept {
    phasor_ = {std::cos(radians), std::sin(radians)};
    since_renorm_ = 0;
  }
  /// Current phase as a principal value in (-pi, pi].
  [[nodiscard]] double phase() const noexcept {
    return std::atan2(phasor_.imag(), phasor_.real());
  }

 private:
  static constexpr int kRenormInterval = 1024;

  void renormalize() noexcept {
    phasor_ /= std::abs(phasor_);
    since_renorm_ = 0;
  }

  std::complex<double> step_{1.0, 0.0};
  std::complex<double> phasor_{1.0, 0.0};
  int since_renorm_ = 0;
};

}  // namespace speccal::dsp
