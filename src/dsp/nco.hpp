// Numerically controlled oscillator / complex mixer.
//
// Emitter synthesizers place each signal at its frequency offset inside the
// SDR's capture bandwidth by mixing baseband waveforms with an NCO.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>
#include <span>
#include <vector>

namespace speccal::dsp {

/// Phase-accumulating complex oscillator. Phase continuity is preserved
/// across blocks, so multi-block captures have no spectral seams.
class Nco {
 public:
  Nco(double freq_hz, double sample_rate_hz) noexcept
      : phase_step_(2.0 * std::numbers::pi * freq_hz / sample_rate_hz) {}

  /// Next oscillator sample e^{j phase}.
  [[nodiscard]] std::complex<float> next() noexcept {
    const std::complex<float> out(static_cast<float>(std::cos(phase_)),
                                  static_cast<float>(std::sin(phase_)));
    phase_ += phase_step_;
    if (phase_ > std::numbers::pi * 2.0) phase_ -= std::numbers::pi * 2.0;
    if (phase_ < -std::numbers::pi * 2.0) phase_ += std::numbers::pi * 2.0;
    return out;
  }

  /// Mix a block up/down by the NCO frequency, adding into `accum`
  /// scaled by `amplitude`. `accum` must be at least as long as `in`.
  void mix_add(std::span<const std::complex<float>> in, float amplitude,
               std::span<std::complex<float>> accum) noexcept {
    const std::size_t n = std::min(in.size(), accum.size());
    for (std::size_t i = 0; i < n; ++i) accum[i] += in[i] * next() * amplitude;
  }

  void set_phase(double radians) noexcept { phase_ = radians; }
  [[nodiscard]] double phase() const noexcept { return phase_; }

 private:
  double phase_step_;
  double phase_ = 0.0;
};

}  // namespace speccal::dsp
