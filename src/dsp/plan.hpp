// Plan-based FFT engine: precomputed twiddle/bit-reversal tables, a
// process-wide thread-safe plan cache, and caller-owned scratch arenas so
// the steady-state hot path performs zero allocations.
//
// Every power measurement in the system (Welch PSD, Parseval band power,
// PSS synthesis, pilot search) runs through here. The design follows the
// convention FFTW and liquid-dsp converged on for streaming measurement
// loops: build a plan once per transform size, execute it many times.
// Transforms are float-native on the capture path — I/Q blocks are
// windowed and transformed as complex<float>, and only per-bin powers
// accumulate in double — which halves the memory traffic of the legacy
// double-widening free functions in fft.hpp (kept as shims; see DESIGN.md
// for the deprecation policy).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace speccal::dsp {

/// True if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n must be nonzero and representable).
[[nodiscard]] constexpr std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// An immutable radix-2 FFT plan for one transform size: the bit-reversal
/// permutation and the per-stage twiddle factors are computed once at
/// construction and shared by every execution. A plan is stateless after
/// construction, so one instance may execute concurrently from many
/// threads (each on its own data).
template <typename Real>
class BasicFftPlan {
 public:
  /// Throws std::invalid_argument unless `n` is a power of two.
  explicit BasicFftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT. `data.size()` must equal size(); throws
  /// std::invalid_argument otherwise.
  void forward(std::span<std::complex<Real>> data) const;

  /// In-place inverse DFT (includes the 1/N normalization).
  void inverse(std::span<std::complex<Real>> data) const;

 private:
  void execute(std::span<std::complex<Real>> data, bool inverse) const;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> bitrev_;
  /// Forward twiddles exp(-2*pi*i*k/len), concatenated per stage: the
  /// stage with butterfly span `len` contributes len/2 entries, so the
  /// total is n-1. The inverse transform conjugates on load.
  std::vector<std::complex<Real>> twiddle_;
};

extern template class BasicFftPlan<float>;
extern template class BasicFftPlan<double>;

/// The float-native plan used on capture hot paths.
using FftPlan = BasicFftPlan<float>;
/// Double-precision plan for setup/verification paths (PSS synthesis,
/// reference checks, the legacy double shims).
using FftPlanD = BasicFftPlan<double>;

/// Thread-safe cache of immutable plans keyed by transform size. Fleet
/// workers calibrating nodes in parallel hit the same handful of sizes
/// (TV sweep, Welch segments, pilot search), so the twiddle tables are
/// built once per process instead of once per node. Returned plans are
/// shared_ptr<const>: safe to hold across clear() and to execute
/// concurrently.
class PlanCache {
 public:
  /// The process-wide instance.
  [[nodiscard]] static PlanCache& shared();

  /// Get-or-build a plan. Throws std::invalid_argument for non-power-of-two n.
  [[nodiscard]] std::shared_ptr<const FftPlan> plan_f32(std::size_t n);
  [[nodiscard]] std::shared_ptr<const FftPlanD> plan_f64(std::size_t n);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t plans = 0;  // currently cached (both precisions)
  };
  /// One atomically-consistent snapshot: all three fields are read under
  /// the same lock that every plan_* call takes, so hits + misses always
  /// equals the number of lookups and `plans` can never lag a concurrent
  /// build.
  ///
  /// Deprecated (DESIGN.md §10 deprecation policy): the cache also
  /// publishes speccal_dsp_plan_cache_{hits,misses}_total and
  /// speccal_dsp_plan_cache_entries into obs::Registry::global(); new code
  /// should read those — they aggregate across every consumer and export
  /// through the standard exposition endpoints. This accessor remains for
  /// in-process tests that need the locked snapshot.
  [[nodiscard]] Stats stats() const;

  /// Drop cached plans (outstanding shared_ptrs stay valid) and reset stats.
  void clear();

 private:
  struct Impl;
  PlanCache();
  std::unique_ptr<Impl> impl_;
};

/// Caller-owned reusable scratch memory for plan execution. Pools grow
/// monotonically and never shrink, so a steady-state measurement loop
/// allocates only on its first iteration. Spans returned by an accessor
/// are invalidated by the next request from the same pool. Not
/// thread-safe: keep one arena per worker.
class ScratchArena {
 public:
  [[nodiscard]] std::span<std::complex<float>> complex_f32(std::size_t n);
  [[nodiscard]] std::span<std::complex<double>> complex_f64(std::size_t n);
  [[nodiscard]] std::span<double> real_f64(std::size_t n);

  /// Bytes currently reserved across all pools (monotone; for tests and
  /// capacity accounting).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

 private:
  std::vector<std::complex<float>> c32_;
  std::vector<std::complex<double>> c64_;
  std::vector<double> r64_;
};

/// Plan-based windowed power spectrum |X[k]|^2, full scale = 1.0 — the
/// engine behind the legacy power_spectrum() free function. Holds a cached
/// plan, a float-native copy of the window and a scratch arena, so
/// estimate() into a reused output vector allocates nothing in the steady
/// state.
class SpectrumEstimator {
 public:
  /// `fft_size` must be a power of two; `window` (empty = rectangular)
  /// must not be longer than fft_size. Throws std::invalid_argument with
  /// the offending parameter named.
  explicit SpectrumEstimator(std::size_t fft_size,
                             std::span<const double> window = {});

  [[nodiscard]] std::size_t fft_size() const noexcept { return plan_->size(); }

  /// Windowed power spectrum of `block` (block.size() <= fft_size; the
  /// tail is zero-padded; window entries beyond the window length count
  /// as 1.0, matching the legacy free function). `out` is resized to
  /// fft_size. Throws std::invalid_argument if the block is too long.
  void estimate(std::span<const std::complex<float>> block,
                std::vector<double>& out);

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<double> estimate(
      std::span<const std::complex<float>> block);

 private:
  std::shared_ptr<const FftPlan> plan_;
  std::vector<float> window_;
  ScratchArena scratch_;
};

}  // namespace speccal::dsp
