// Linear-feedback shift register pseudo-random bit sequences.
//
// Used for synthesizing data-like RF payloads (8VSB symbol stream for the
// TV emitter, squitter payload bits) with a deterministic, seedable source
// that has the flat spectrum of real scrambled broadcast data.
#pragma once

#include <cstdint>

namespace speccal::dsp {

/// Fibonacci LFSR. Output is the LSB of the register; feedback is the XOR
/// parity of the tapped stages shifted into the top bit.
class Lfsr {
 public:
  /// `taps` is the feedback mask over register bits [0, length); `length`
  /// the register length in bits (<= 32). A zero seed is coerced to 1
  /// (the all-zeros state is a fixed point of the recurrence).
  Lfsr(std::uint32_t taps, unsigned length, std::uint32_t seed = 1) noexcept
      : taps_(taps), length_(length),
        mask_((length >= 32) ? 0xFFFFFFFFu : ((1u << length) - 1u)),
        state_(seed & mask_) {
    if (state_ == 0) state_ = 1;
  }

  /// Next output bit (0/1).
  [[nodiscard]] unsigned next_bit() noexcept {
    const unsigned out = state_ & 1u;
    std::uint32_t fb = state_ & taps_;
    fb ^= fb >> 16;
    fb ^= fb >> 8;
    fb ^= fb >> 4;
    fb ^= fb >> 2;
    fb ^= fb >> 1;
    state_ = ((state_ >> 1) | ((fb & 1u) << (length_ - 1))) & mask_;
    return out;
  }

  /// Next n bits packed MSB-first (n <= 32).
  [[nodiscard]] std::uint32_t next_bits(unsigned n) noexcept {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < n; ++i) v = (v << 1) | next_bit();
    return v;
  }

  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

 private:
  std::uint32_t taps_;
  unsigned length_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

/// PRBS-9 (x^9 + x^5 + 1), period 511 — ITU O.150. For a right-shift
/// register holding s_n..s_{n+8}, the recurrence s_{n+9} = s_{n+4} + s_n
/// taps bits 0 and 4.
[[nodiscard]] inline Lfsr make_prbs9(std::uint32_t seed = 1) noexcept {
  return Lfsr{(1u << 0) | (1u << 4), 9, seed};
}

/// PRBS-15 (x^15 + x^14 + 1), period 32767: s_{n+15} = s_{n+14} + s_n.
[[nodiscard]] inline Lfsr make_prbs15(std::uint32_t seed = 1) noexcept {
  return Lfsr{(1u << 0) | (1u << 14), 15, seed};
}

}  // namespace speccal::dsp
