// Spectrum-bin geometry helpers.
//
// The transform engine itself lives in dsp/plan.hpp (FftPlan/FftPlanD,
// PlanCache, SpectrumEstimator) and dsp/welch.hpp (WelchEstimator); the
// deprecated free-function shims that used to live here (fft_inplace, fft,
// power_spectrum, ...) completed their one-release grace period and were
// removed — hold a plan or estimator directly.
#pragma once

#include <cstddef>

namespace speccal::dsp {

/// Index of the spectrum bin whose centre is nearest `freq_hz` given
/// `sample_rate_hz` (negative frequencies map to the upper half, standard
/// FFT layout; frequencies beyond +-Nyquist alias modulo the sample rate).
/// A frequency exactly on the edge between two bins belongs to the bin of
/// the higher (more positive) frequency; +-Nyquist itself maps to bin
/// fft_size/2. Returns 0 when fft_size or sample_rate_hz is zero/negative.
[[nodiscard]] std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                                            std::size_t fft_size) noexcept;

}  // namespace speccal::dsp
