// Iterative radix-2 FFT.
//
// The TV power meter and the spectrum snapshot tooling need forward
// transforms of power-of-two blocks; tests verify against a direct DFT and
// Parseval's identity (the measurement principle the paper's GNU Radio
// program relies on).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace speccal::dsp {

/// True if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward FFT. `data.size()` must be a power of two.
/// Throws std::invalid_argument otherwise.
void fft_inplace(std::span<std::complex<double>> data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(std::span<std::complex<double>> data);

/// Out-of-place convenience wrappers.
[[nodiscard]] std::vector<std::complex<double>> fft(std::span<const std::complex<double>> data);
[[nodiscard]] std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> data);

/// Power spectrum |X[k]|^2 / N^2 of a float I/Q block after applying
/// `window` (empty window = rectangular). Input is zero-padded to the next
/// power of two. Result is linear power per bin, full scale = 1.0.
[[nodiscard]] std::vector<double> power_spectrum(std::span<const std::complex<float>> block,
                                                 std::span<const double> window = {});

/// Index of the spectrum bin for `freq_hz` given `sample_rate_hz`
/// (negative frequencies map to the upper half, standard FFT layout).
[[nodiscard]] std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                                            std::size_t fft_size) noexcept;

}  // namespace speccal::dsp
