// Legacy free-function FFT API — thin shims over the plan-based engine.
//
// DEPRECATED (see DESIGN.md §8 for the policy): every call looks up a
// cached dsp::FftPlan/FftPlanD in dsp::PlanCache and, for power_spectrum,
// builds a fresh SpectrumEstimator (allocating output each call). New code
// — and any code on a hot path — should hold a plan / estimator directly
// (dsp/plan.hpp, dsp/welch.hpp) so twiddle tables and scratch are reused.
// These shims remain for one release for out-of-tree callers and for the
// verification tests that pin the transform's numerics.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/plan.hpp"

namespace speccal::dsp {

/// In-place forward FFT. `data.size()` must be a power of two.
/// Throws std::invalid_argument otherwise.
/// Deprecated shim: equivalent to PlanCache::shared().plan_f64(n)->forward().
void fft_inplace(std::span<std::complex<double>> data);

/// In-place inverse FFT (includes the 1/N normalization). Deprecated shim.
void ifft_inplace(std::span<std::complex<double>> data);

/// Out-of-place convenience wrappers. Deprecated shims.
[[nodiscard]] std::vector<std::complex<double>> fft(std::span<const std::complex<double>> data);
[[nodiscard]] std::vector<std::complex<double>> ifft(std::span<const std::complex<double>> data);

/// Power spectrum |X[k]|^2 / N^2 of a float I/Q block after applying
/// `window` (empty window = rectangular). Input is zero-padded to the next
/// power of two. Result is linear power per bin, full scale = 1.0.
/// Deprecated shim over SpectrumEstimator (which reuses plan + scratch).
[[nodiscard]] std::vector<double> power_spectrum(std::span<const std::complex<float>> block,
                                                 std::span<const double> window = {});

/// Index of the spectrum bin whose centre is nearest `freq_hz` given
/// `sample_rate_hz` (negative frequencies map to the upper half, standard
/// FFT layout; frequencies beyond +-Nyquist alias modulo the sample rate).
/// A frequency exactly on the edge between two bins belongs to the bin of
/// the higher (more positive) frequency; +-Nyquist itself maps to bin
/// fft_size/2. Returns 0 when fft_size or sample_rate_hz is zero/negative.
[[nodiscard]] std::size_t bin_for_frequency(double freq_hz, double sample_rate_hz,
                                            std::size_t fft_size) noexcept;

}  // namespace speccal::dsp
