#include "dsp/resampler.hpp"

#include <stdexcept>

namespace speccal::dsp {

Decimator::Decimator(unsigned factor, double input_rate_hz, std::size_t taps_per_phase)
    : factor_(factor), output_rate_hz_(input_rate_hz / std::max(1u, factor)) {
  if (factor == 0) throw std::invalid_argument("Decimator: zero factor");
  if (factor == 1) {
    taps_ = {1.0};
  } else {
    const double cutoff = 0.4 * input_rate_hz / factor;  // 80% of output Nyquist
    taps_ = design_lowpass(input_rate_hz, cutoff, taps_per_phase * factor);
  }
  history_.assign(taps_.size(), {0.0, 0.0});
}

void Decimator::process(std::span<const std::complex<float>> in,
                        std::vector<std::complex<float>>& out) {
  out.reserve(out.size() + in.size() / factor_ + 1);
  const std::size_t n = taps_.size();
  for (const auto& sample : in) {
    history_[head_] = std::complex<double>(sample.real(), sample.imag());
    const std::size_t write_head = head_;
    head_ = (head_ + 1) % n;
    if (++phase_ < factor_) continue;
    phase_ = 0;
    // Convolve only when emitting an output (polyphase saving).
    std::complex<double> acc{};
    std::size_t idx = write_head;
    for (std::size_t t = 0; t < n; ++t) {
      acc += taps_[t] * history_[idx];
      idx = (idx == 0) ? n - 1 : idx - 1;
    }
    out.emplace_back(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
}

std::vector<std::complex<float>> Decimator::decimate(
    std::span<const std::complex<float>> in) {
  std::vector<std::complex<float>> out;
  process(in, out);
  return out;
}

void Decimator::reset() noexcept {
  for (auto& v : history_) v = {0.0, 0.0};
  head_ = 0;
  phase_ = 0;
}

}  // namespace speccal::dsp
