// FIR filter design (windowed sinc) and streaming application.
//
// The TV power meter band-pass-filters one ATSC channel out of a wide
// capture before integrating power (Parseval), exactly like the paper's
// GNU Radio flowgraph. Filters are designed at runtime from the channel
// edges, so the design code is part of the library proper.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace speccal::dsp {

/// Windowed-sinc low-pass prototype. `cutoff_hz` < `sample_rate_hz`/2,
/// `taps` odd (enforced by rounding up). Unity DC gain.
[[nodiscard]] std::vector<double> design_lowpass(double sample_rate_hz, double cutoff_hz,
                                                 std::size_t taps,
                                                 WindowType window = WindowType::kHamming);

/// Complex band-pass for [low_hz, high_hz] (may span negative frequencies
/// in the complex baseband sense). Built by modulating a low-pass prototype
/// to the band centre; coefficients are complex.
[[nodiscard]] std::vector<std::complex<double>> design_bandpass(
    double sample_rate_hz, double low_hz, double high_hz, std::size_t taps,
    WindowType window = WindowType::kHamming);

/// Streaming FIR for complex float samples with complex double taps.
/// process() can be called repeatedly; state carries across calls.
///
/// The delay line is stored doubled (each sample written twice, n apart) so
/// every output is one contiguous complex-double dot product of the
/// reversed taps against the history window — the dispatched SIMD cdot
/// kernel (dsp/simd.hpp). The lane-split accumulator reorders the additions
/// relative to the historical newest-first scalar loop; held to
/// simd::kSimdEquivalenceTolerance (observed ~1e-15 relative).
class FirFilter {
 public:
  explicit FirFilter(std::vector<std::complex<double>> taps);

  /// Filter a block, appending outputs (one per input) to `out`.
  void process(std::span<const std::complex<float>> in,
               std::vector<std::complex<float>>& out);

  /// Allocation-free variant: filter a block into a caller-owned span of
  /// the same length (one output per input; `in` and `out` may not
  /// overlap). Same streaming state as process(). The fast path for short
  /// blocks where FFT convolution does not pay off — see
  /// dsp::prefer_fft_convolution.
  void filter_into(std::span<const std::complex<float>> in,
                   std::span<std::complex<float>> out);

  /// Convenience: filter a whole block and return the result.
  [[nodiscard]] std::vector<std::complex<float>> filter(
      std::span<const std::complex<float>> in);

  void reset() noexcept;

  [[nodiscard]] std::size_t tap_count() const noexcept { return taps_.size(); }

  /// Magnitude response (linear) at `freq_hz` for `sample_rate_hz`.
  [[nodiscard]] double magnitude_at(double freq_hz, double sample_rate_hz) const noexcept;

 private:
  [[nodiscard]] std::complex<double> step(std::complex<float> s) noexcept;

  std::vector<std::complex<double>> taps_;      // design order (magnitude_at)
  std::vector<std::complex<double>> rev_taps_;  // reversed, for the dot kernel
  std::vector<std::complex<double>> delay_;     // doubled circular history (2n)
  std::size_t pos_ = 0;                         // write slot in [0, n)
};

/// Running mean over a fixed-length rectangular window ("very long moving
/// average filter" from the paper, applied to |x|^2). Uses a double
/// accumulator plus periodic exact recomputation to bound float drift.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t length);

  /// Push one value, returns the current mean over the last `length`
  /// values (partial mean until the window has filled).
  double push(double value) noexcept;

  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] bool full() const noexcept { return count_ >= window_.size(); }
  [[nodiscard]] std::size_t length() const noexcept { return window_.size(); }
  void reset() noexcept;

 private:
  void recompute() noexcept;

  std::vector<double> window_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t pushes_since_recompute_ = 0;
  double sum_ = 0.0;
};

}  // namespace speccal::dsp
