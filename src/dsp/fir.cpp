#include "dsp/fir.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/simd.hpp"

namespace speccal::dsp {

namespace {
[[nodiscard]] double sinc(double x) noexcept {
  if (std::fabs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}
}  // namespace

std::vector<double> design_lowpass(double sample_rate_hz, double cutoff_hz,
                                   std::size_t taps, WindowType window) {
  if (sample_rate_hz <= 0.0 || cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, fs/2)");
  if (taps < 3) throw std::invalid_argument("design_lowpass: need >= 3 taps");
  if (taps % 2 == 0) ++taps;  // force odd length for a symmetric type-I filter

  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto win = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;

  std::vector<double> h(taps);
  double gain = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * n) * win[i];
    gain += h[i];
  }
  for (auto& v : h) v /= gain;  // unity DC gain
  return h;
}

std::vector<std::complex<double>> design_bandpass(double sample_rate_hz, double low_hz,
                                                  double high_hz, std::size_t taps,
                                                  WindowType window) {
  if (high_hz <= low_hz)
    throw std::invalid_argument("design_bandpass: high must exceed low");
  const double width = high_hz - low_hz;
  const double center = (high_hz + low_hz) / 2.0;
  if (width / 2.0 >= sample_rate_hz / 2.0)
    throw std::invalid_argument("design_bandpass: band wider than Nyquist");

  const auto proto = design_lowpass(sample_rate_hz, width / 2.0, taps, window);
  const double mid = static_cast<double>(proto.size() - 1) / 2.0;
  const double w0 = 2.0 * std::numbers::pi * center / sample_rate_hz;

  std::vector<std::complex<double>> h(proto.size());
  for (std::size_t i = 0; i < proto.size(); ++i) {
    const double phase = w0 * (static_cast<double>(i) - mid);
    h[i] = proto[i] * std::complex<double>(std::cos(phase), std::sin(phase));
  }
  return h;
}

FirFilter::FirFilter(std::vector<std::complex<double>> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  rev_taps_.assign(taps_.rbegin(), taps_.rend());
  delay_.assign(2 * taps_.size(), {0.0, 0.0});
}

// One streaming step: write the sample into both images of the doubled
// delay line, then take the contiguous window [pos_+1, pos_+n] (oldest to
// newest) against the reversed taps.
std::complex<double> FirFilter::step(std::complex<float> s) noexcept {
  const std::size_t n = rev_taps_.size();
  const std::complex<double> x(s.real(), s.imag());
  delay_[pos_] = x;
  delay_[pos_ + n] = x;
  const auto acc = simd::cdot(rev_taps_.data(), delay_.data() + pos_ + 1, n);
  pos_ = (pos_ + 1 == n) ? 0 : pos_ + 1;
  return acc;
}

void FirFilter::process(std::span<const std::complex<float>> in,
                        std::vector<std::complex<float>>& out) {
  out.reserve(out.size() + in.size());
  for (const auto& s : in) {
    const auto acc = step(s);
    out.emplace_back(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
}

void FirFilter::filter_into(std::span<const std::complex<float>> in,
                            std::span<std::complex<float>> out) {
  if (out.size() != in.size())
    throw std::invalid_argument("FirFilter::filter_into: out size must match in size");
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto acc = step(in[i]);
    out[i] = {static_cast<float>(acc.real()), static_cast<float>(acc.imag())};
  }
}

std::vector<std::complex<float>> FirFilter::filter(std::span<const std::complex<float>> in) {
  std::vector<std::complex<float>> out;
  process(in, out);
  return out;
}

void FirFilter::reset() noexcept {
  for (auto& v : delay_) v = {0.0, 0.0};
  pos_ = 0;
}

double FirFilter::magnitude_at(double freq_hz, double sample_rate_hz) const noexcept {
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t t = 0; t < taps_.size(); ++t) {
    const double phase = -w * static_cast<double>(t);
    acc += taps_[t] * std::complex<double>(std::cos(phase), std::sin(phase));
  }
  return std::abs(acc);
}

MovingAverage::MovingAverage(std::size_t length) {
  if (length == 0) throw std::invalid_argument("MovingAverage: zero length");
  window_.assign(length, 0.0);
}

double MovingAverage::push(double value) noexcept {
  sum_ -= window_[head_];
  window_[head_] = value;
  sum_ += value;
  head_ = (head_ + 1) % window_.size();
  if (count_ < window_.size()) ++count_;
  // Re-sum exactly once per window length to cancel accumulated rounding.
  if (++pushes_since_recompute_ >= window_.size() * 16) recompute();
  return this->value();
}

double MovingAverage::value() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void MovingAverage::reset() noexcept {
  for (auto& v : window_) v = 0.0;
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
  pushes_since_recompute_ = 0;
}

void MovingAverage::recompute() noexcept {
  double acc = 0.0;
  for (double v : window_) acc += v;
  sum_ = acc;
  pushes_since_recompute_ = 0;
}

}  // namespace speccal::dsp
