// Streaming multi-frequency Goertzel DFT.
//
// Detecting a handful of known tones (the ATSC pilot, a carrier marker, a
// preamble band) does not need a full FFT; a Goertzel recurrence computes
// each bin in O(N) with two real multiplies per sample per component —
// cheap enough to run continuously on an embedded host, and the basis of
// the detector fast-path gates (DESIGN.md §14).
//
// Accuracy note (the "nrsc5 form"): the recurrence
//     s[n] = x[n] + coeff * s[n-1] - s[n-2],   coeff = 2 cos(w)
// replaces the historical per-sample complex rotate-accumulate (a full
// double-precision complex multiply per sample, 8 real multiplies) with two
// real multiply-adds per component. Both forms carry O(N * eps) rounding
// growth — the rotation form through phasor drift, the recurrence through
// the |s| ~ N state magnitude on an on-bin tone — so double state keeps the
// relative power error under ~N^2 * 2^-53 (≈3e-6 at N = 160k, comfortably
// inside the documented 1e-4 equivalence tolerance; see test_dsp_simd for
// the FFT-bin cross-checks).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace speccal::dsp {

/// Streaming Goertzel over K simultaneous frequency bins sharing one pass
/// of the samples. Feed blocks as they arrive; read power()/output() at any
/// point; reset() to reuse the instance (and its bin tables) across captures.
class Goertzel {
 public:
  /// Bins at `freqs_hz` (each in (-fs/2, fs/2]) for complex input sampled at
  /// `sample_rate_hz`. Throws std::invalid_argument on an empty frequency
  /// list or a non-positive sample rate.
  Goertzel(std::span<const double> freqs_hz, double sample_rate_hz);
  Goertzel(std::initializer_list<double> freqs_hz, double sample_rate_hz);

  /// Clears the recurrence state and the sample count; bin tables persist.
  void reset() noexcept;

  /// Advances every bin over `block` (one shared pass, chunked for cache
  /// locality). Streaming: consecutive feeds are equivalent to one feed of
  /// the concatenated blocks.
  void feed(std::span<const std::complex<float>> block) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] double freq_hz(std::size_t bin) const { return bins_[bin].freq_hz; }
  [[nodiscard]] std::uint64_t samples_fed() const noexcept { return n_; }

  /// |X(f)|^2 / N^2, full scale = 1.0 for a full-scale tone at the bin
  /// frequency (same convention as the historical goertzel_power). 0.0
  /// before any samples are fed.
  [[nodiscard]] double power(std::size_t bin) const noexcept;

  /// X(f) / N, the normalized complex DFT sum (a full-scale on-bin tone
  /// yields magnitude ~1.0). {0, 0} before any samples are fed.
  [[nodiscard]] std::complex<double> output(std::size_t bin) const noexcept;

 private:
  struct BinState {
    double freq_hz = 0.0;
    double w = 0.0;       // 2*pi*f/fs
    double coeff = 0.0;   // 2*cos(w)
    double cos_w = 0.0;   // components of e^{-jw} for finalization
    double sin_w = 0.0;
    // Complex recurrence state as two independent real recurrences.
    double s1r = 0.0, s2r = 0.0;
    double s1i = 0.0, s2i = 0.0;
  };

  // y = s1 - e^{-jw} * s2, the unrotated DFT sum (|y| == |X|).
  [[nodiscard]] std::complex<double> unrotated(const BinState& b) const noexcept;

  std::vector<BinState> bins_;
  std::uint64_t n_ = 0;
};

/// Power at a single frequency in one shot. Thin wrapper over a one-bin
/// Goertzel, kept per the DESIGN.md §8 shim policy: existing one-shot
/// callers keep working; new streaming/multi-bin callers use the class.
[[nodiscard]] double goertzel_power(std::span<const std::complex<float>> block,
                                    double freq_hz, double sample_rate_hz);

}  // namespace speccal::dsp
