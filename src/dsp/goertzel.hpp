// Goertzel single-bin DFT.
//
// Detecting one known tone (the ATSC pilot, a carrier marker) does not need
// a full FFT; Goertzel computes one bin in O(N) with two multiplies per
// sample — cheap enough to run continuously on an embedded host.
#pragma once

#include <cmath>
#include <complex>
#include <numbers>
#include <span>

namespace speccal::dsp {

/// Power (|X(f)|^2 / N^2, full scale = 1.0 for a full-scale tone) at
/// `freq_hz` in `block` sampled at `sample_rate_hz`.
[[nodiscard]] inline double goertzel_power(std::span<const std::complex<float>> block,
                                           double freq_hz,
                                           double sample_rate_hz) noexcept {
  if (block.empty()) return 0.0;
  const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
  const std::complex<double> coeff(std::cos(w), std::sin(w));
  // Complex-input Goertzel reduces to a running rotation-accumulate.
  std::complex<double> acc{};
  std::complex<double> phasor(1.0, 0.0);
  for (const auto& s : block) {
    acc += std::complex<double>(s.real(), s.imag()) * std::conj(phasor);
    phasor *= coeff;
  }
  const double n = static_cast<double>(block.size());
  return std::norm(acc) / (n * n);
}

}  // namespace speccal::dsp
