// Welch power-spectral-density estimation.
//
// The spectrum-monitoring service (the actual product a calibrated node
// sells, §2 of the paper) reports PSDs to the cloud. Welch's method —
// averaged modified periodograms over overlapping windowed segments —
// trades resolution for variance, which is what occupancy detection needs.
//
// The hot path is WelchEstimator: it holds a cached FFT plan, a
// float-native window and a scratch arena, so estimate_into() on a reused
// result performs zero allocations per block. (The deprecated welch_psd
// one-shot shim finished its grace period and was removed — construct a
// WelchEstimator instead; see DESIGN.md §8.)
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/plan.hpp"
#include "dsp/window.hpp"

namespace speccal::dsp {

/// Validation contract (enforced by WelchEstimator's constructor;
/// violations throw std::invalid_argument naming the offending parameter):
///   - segment_size must be a power of two (radix-2 plan);
///   - overlap must lie in [0, 1) — 0.99 is legal (hop clamps to >= 1
///     sample), 1.0 would never advance.
struct WelchConfig {
  std::size_t segment_size = 1024;   // must be a power of two
  double overlap = 0.5;              // fraction of segment_size, in [0, 1)
  WindowType window = WindowType::kHann;
};

struct WelchResult {
  /// Power per bin, linear, full scale = 1.0; FFT bin order
  /// (bin 0 = DC, upper half = negative frequencies).
  std::vector<double> psd;
  std::size_t segments_averaged = 0;
  double bin_width_hz = 0.0;
};

/// Plan-based Welch estimator. Construct once per configuration, call
/// estimate()/estimate_into() per capture block; the FFT plan comes from
/// the shared PlanCache and segment scratch is reused across calls. Not
/// thread-safe for concurrent estimates on one instance (the plan itself
/// is shared and immutable) — keep one estimator per worker.
class WelchEstimator {
 public:
  /// Validates `config` per the WelchConfig contract.
  explicit WelchEstimator(WelchConfig config = {});

  [[nodiscard]] const WelchConfig& config() const noexcept { return config_; }

  /// Estimate the PSD of an I/Q block. Returns an empty result (psd empty,
  /// bin_width set) when the block is shorter than one segment.
  [[nodiscard]] WelchResult estimate(std::span<const std::complex<float>> block,
                                     double sample_rate_hz);

  /// Zero-steady-state-allocation variant: reuses `out.psd`'s storage.
  void estimate_into(std::span<const std::complex<float>> block,
                     double sample_rate_hz, WelchResult& out);

 private:
  WelchConfig config_;
  std::shared_ptr<const FftPlan> plan_;
  std::vector<float> window_;
  double window_power_ = 0.0;
  std::size_t hop_ = 1;
  ScratchArena scratch_;
};

/// Total power (linear) in [low_hz, high_hz] of a Welch result (frequencies
/// relative to the capture centre; negative = below centre).
[[nodiscard]] double band_power(const WelchResult& psd, double sample_rate_hz,
                                double low_hz, double high_hz) noexcept;

/// Robust noise-floor estimate: the median PSD bin (occupied channels are a
/// minority of bins in a wide capture), scaled to per-bin linear power.
[[nodiscard]] double median_floor(const WelchResult& psd);

/// Quantile-based floor for captures where a wideband signal fills most of
/// the bandwidth (a 6 MHz TV channel inside an 8 MHz hop leaves only ~25%
/// of the bins for noise — the median would land inside the signal).
[[nodiscard]] double percentile_floor(const WelchResult& psd, double quantile);

}  // namespace speccal::dsp
