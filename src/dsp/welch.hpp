// Welch power-spectral-density estimation.
//
// The spectrum-monitoring service (the actual product a calibrated node
// sells, §2 of the paper) reports PSDs to the cloud. Welch's method —
// averaged modified periodograms over overlapping windowed segments —
// trades resolution for variance, which is what occupancy detection needs.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace speccal::dsp {

struct WelchConfig {
  std::size_t segment_size = 1024;   // must be a power of two
  double overlap = 0.5;              // fraction of segment_size
  WindowType window = WindowType::kHann;
};

struct WelchResult {
  /// Power per bin, linear, full scale = 1.0; FFT bin order
  /// (bin 0 = DC, upper half = negative frequencies).
  std::vector<double> psd;
  std::size_t segments_averaged = 0;
  double bin_width_hz = 0.0;
};

/// Estimate the PSD of an I/Q block. Throws std::invalid_argument for a
/// non-power-of-two segment size; returns an empty result when the block
/// is shorter than one segment.
[[nodiscard]] WelchResult welch_psd(std::span<const std::complex<float>> block,
                                    double sample_rate_hz,
                                    const WelchConfig& config = {});

/// Total power (linear) in [low_hz, high_hz] of a Welch result (frequencies
/// relative to the capture centre; negative = below centre).
[[nodiscard]] double band_power(const WelchResult& psd, double sample_rate_hz,
                                double low_hz, double high_hz) noexcept;

/// Robust noise-floor estimate: the median PSD bin (occupied channels are a
/// minority of bins in a wide capture), scaled to per-bin linear power.
[[nodiscard]] double median_floor(const WelchResult& psd);

/// Quantile-based floor for captures where a wideband signal fills most of
/// the bandwidth (a 6 MHz TV channel inside an 8 MHz hop leaves only ~25%
/// of the bins for noise — the median would land inside the signal).
[[nodiscard]] double percentile_floor(const WelchResult& psd, double quantile);

}  // namespace speccal::dsp
