#include "dsp/goertzel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace speccal::dsp {

namespace {
// Chunk the shared pass so all bins revisit the same samples while they are
// hot in cache (K passes over a 32 KiB chunk, not K passes over the capture).
constexpr std::size_t kChunkSamples = 4096;
}  // namespace

Goertzel::Goertzel(std::span<const double> freqs_hz, double sample_rate_hz) {
  if (freqs_hz.empty())
    throw std::invalid_argument("Goertzel: need at least one frequency");
  if (!(sample_rate_hz > 0.0))
    throw std::invalid_argument("Goertzel: sample rate must be positive (got " +
                                std::to_string(sample_rate_hz) + ")");
  bins_.reserve(freqs_hz.size());
  for (const double f : freqs_hz) {
    BinState b;
    b.freq_hz = f;
    b.w = 2.0 * std::numbers::pi * f / sample_rate_hz;
    b.coeff = 2.0 * std::cos(b.w);
    b.cos_w = std::cos(b.w);
    b.sin_w = std::sin(b.w);
    bins_.push_back(b);
  }
}

Goertzel::Goertzel(std::initializer_list<double> freqs_hz, double sample_rate_hz)
    : Goertzel(std::span<const double>(freqs_hz.begin(), freqs_hz.size()),
               sample_rate_hz) {}

void Goertzel::reset() noexcept {
  for (auto& b : bins_) b.s1r = b.s2r = b.s1i = b.s2i = 0.0;
  n_ = 0;
}

void Goertzel::feed(std::span<const std::complex<float>> block) noexcept {
  const std::complex<float>* p = block.data();
  std::size_t remaining = block.size();
  while (remaining > 0) {
    const std::size_t chunk = remaining < kChunkSamples ? remaining : kChunkSamples;
    for (auto& b : bins_) {
      const double c = b.coeff;
      double s1r = b.s1r, s2r = b.s2r;
      double s1i = b.s1i, s2i = b.s2i;
      for (std::size_t i = 0; i < chunk; ++i) {
        const double xr = static_cast<double>(p[i].real());
        const double xi = static_cast<double>(p[i].imag());
        const double tr = xr + c * s1r - s2r;
        const double ti = xi + c * s1i - s2i;
        s2r = s1r;
        s1r = tr;
        s2i = s1i;
        s1i = ti;
      }
      b.s1r = s1r;
      b.s2r = s2r;
      b.s1i = s1i;
      b.s2i = s2i;
    }
    p += chunk;
    remaining -= chunk;
    n_ += chunk;
  }
}

std::complex<double> Goertzel::unrotated(const BinState& b) const noexcept {
  // y = s1 - e^{-jw} s2; |y| equals |sum x[m] e^{-jwm}| (the residual phase
  // factor e^{-jw(N-1)} is unit-magnitude and applied only in output()).
  const double yr = b.s1r - (b.cos_w * b.s2r + b.sin_w * b.s2i);
  const double yi = b.s1i - (b.cos_w * b.s2i - b.sin_w * b.s2r);
  return {yr, yi};
}

double Goertzel::power(std::size_t bin) const noexcept {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::norm(unrotated(bins_[bin])) / (n * n);
}

std::complex<double> Goertzel::output(std::size_t bin) const noexcept {
  if (n_ == 0) return {0.0, 0.0};
  const BinState& b = bins_[bin];
  const double n = static_cast<double>(n_);
  const std::complex<double> rot =
      std::polar(1.0, -b.w * (n - 1.0));
  return rot * unrotated(b) / n;
}

double goertzel_power(std::span<const std::complex<float>> block, double freq_hz,
                      double sample_rate_hz) {
  if (block.empty()) return 0.0;
  Goertzel g({freq_hz}, sample_rate_hz);
  g.feed(block);
  return g.power(0);
}

}  // namespace speccal::dsp
