#include "dsp/welch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/simd.hpp"

namespace speccal::dsp {

WelchEstimator::WelchEstimator(WelchConfig config) : config_(config) {
  if (!is_power_of_two(config.segment_size))
    throw std::invalid_argument(
        "WelchConfig.segment_size must be a power of two (got " +
        std::to_string(config.segment_size) + ")");
  if (!(config.overlap >= 0.0 && config.overlap < 1.0))
    throw std::invalid_argument("WelchConfig.overlap must be in [0, 1) (got " +
                                std::to_string(config.overlap) + ")");
  plan_ = PlanCache::shared().plan_f32(config.segment_size);
  const auto window = make_window(config.window, config.segment_size);
  window_power_ = dsp::window_power(window);
  window_.assign(window.begin(), window.end());
  hop_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(config.segment_size) *
                                  (1.0 - config.overlap)));
}

void WelchEstimator::estimate_into(std::span<const std::complex<float>> block,
                                   double sample_rate_hz, WelchResult& out) {
  const std::size_t seg = config_.segment_size;
  out.psd.clear();
  out.segments_averaged = 0;
  out.bin_width_hz = sample_rate_hz / static_cast<double>(seg);
  if (block.size() < seg) return;

  out.psd.assign(seg, 0.0);
  auto work = scratch_.complex_f32(seg);
  // Modified periodogram normalized by the window power so that the sum
  // over bins equals the segment's mean power (Parseval-consistent). Window
  // multiply and power accumulation run through the elementwise SIMD
  // kernels (bit-identical to the scalar siblings, dsp/simd.hpp).
  const double scale = 1.0 / (window_power_ * static_cast<double>(seg));
  for (std::size_t start = 0; start + seg <= block.size(); start += hop_) {
    simd::apply_window(block.data() + start, window_.data(), work.data(), seg);
    plan_->forward(work);
    simd::accumulate_power(work.data(), scale, out.psd.data(), seg);
    ++out.segments_averaged;
  }
  if (out.segments_averaged > 0) {
    const double inv = 1.0 / static_cast<double>(out.segments_averaged);
    for (auto& v : out.psd) v *= inv;
  }
}

WelchResult WelchEstimator::estimate(std::span<const std::complex<float>> block,
                                     double sample_rate_hz) {
  WelchResult out;
  estimate_into(block, sample_rate_hz, out);
  return out;
}

double band_power(const WelchResult& psd, double sample_rate_hz, double low_hz,
                  double high_hz) noexcept {
  if (psd.psd.empty() || high_hz <= low_hz) return 0.0;
  const auto n = psd.psd.size();
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Bin frequency in [-fs/2, fs/2).
    double f = static_cast<double>(k) * sample_rate_hz / static_cast<double>(n);
    if (f >= sample_rate_hz / 2.0) f -= sample_rate_hz;
    if (f >= low_hz && f < high_hz) total += psd.psd[k];
  }
  return total;
}

double median_floor(const WelchResult& psd) { return percentile_floor(psd, 0.5); }

double percentile_floor(const WelchResult& psd, double quantile) {
  if (psd.psd.empty()) return 0.0;
  std::vector<double> sorted = psd.psd;
  const auto idx = std::min(sorted.size() - 1,
                            static_cast<std::size_t>(quantile *
                                                     static_cast<double>(sorted.size())));
  const auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(sorted.begin(), nth, sorted.end());
  return *nth;
}

}  // namespace speccal::dsp
