#include "dsp/welch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace speccal::dsp {

WelchResult welch_psd(std::span<const std::complex<float>> block,
                      double sample_rate_hz, const WelchConfig& config) {
  if (!is_power_of_two(config.segment_size))
    throw std::invalid_argument("welch_psd: segment size must be a power of two");
  if (config.overlap < 0.0 || config.overlap >= 1.0)
    throw std::invalid_argument("welch_psd: overlap must be in [0, 1)");

  WelchResult out;
  out.bin_width_hz = sample_rate_hz / static_cast<double>(config.segment_size);
  if (block.size() < config.segment_size) return out;

  const auto window = make_window(config.window, config.segment_size);
  const double window_power = dsp::window_power(window);
  const auto hop = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(config.segment_size) *
                                  (1.0 - config.overlap)));

  out.psd.assign(config.segment_size, 0.0);
  std::vector<std::complex<double>> work(config.segment_size);
  for (std::size_t start = 0; start + config.segment_size <= block.size();
       start += hop) {
    for (std::size_t i = 0; i < config.segment_size; ++i) {
      const auto& s = block[start + i];
      work[i] = std::complex<double>(s.real(), s.imag()) * window[i];
    }
    fft_inplace(work);
    // Modified periodogram normalized by the window power so that the sum
    // over bins equals the segment's mean power (Parseval-consistent).
    const double scale = 1.0 / (window_power * static_cast<double>(config.segment_size));
    for (std::size_t k = 0; k < config.segment_size; ++k)
      out.psd[k] += std::norm(work[k]) * scale;
    ++out.segments_averaged;
  }
  if (out.segments_averaged > 0) {
    const double inv = 1.0 / static_cast<double>(out.segments_averaged);
    for (auto& v : out.psd) v *= inv;
  }
  return out;
}

double band_power(const WelchResult& psd, double sample_rate_hz, double low_hz,
                  double high_hz) noexcept {
  if (psd.psd.empty() || high_hz <= low_hz) return 0.0;
  const auto n = psd.psd.size();
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Bin frequency in [-fs/2, fs/2).
    double f = static_cast<double>(k) * sample_rate_hz / static_cast<double>(n);
    if (f >= sample_rate_hz / 2.0) f -= sample_rate_hz;
    if (f >= low_hz && f < high_hz) total += psd.psd[k];
  }
  return total;
}

double median_floor(const WelchResult& psd) { return percentile_floor(psd, 0.5); }

double percentile_floor(const WelchResult& psd, double quantile) {
  if (psd.psd.empty()) return 0.0;
  std::vector<double> sorted = psd.psd;
  const auto idx = std::min(sorted.size() - 1,
                            static_cast<std::size_t>(quantile *
                                                     static_cast<double>(sorted.size())));
  const auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(sorted.begin(), nth, sorted.end());
  return *nth;
}

}  // namespace speccal::dsp
