// Structured event journal — the "what happened" companion to the "how
// much" metrics registry.
//
// A million-node crowd-sourced deployment is operated off discrete signals:
// node X quarantined stage Y after N attempts, the decode farm rejected a
// malformed segment, a fault fired on capture op 3. Counters aggregate
// those away; the EventLog keeps the last `capacity` of them as structured
// records (timestamp, severity, event name, node id, stage, key/value args)
// in a bounded ring, so a crashed or killed run still leaves a forensic
// tail behind and a live run can be tailed without unbounded memory.
//
// Contract:
//   * append() is thread-safe (one mutex — events are cold-path by design:
//     faults, retries, rejects; never per-sample or per-block). The
//     bench/obs_overhead "event_append" row keeps the cost honest.
//   * The ring holds the *newest* `capacity` events; older ones are
//     overwritten and counted in dropped(). seq numbers are assigned at
//     append and survive wrap-around, so a reader can tell how much of the
//     history is missing.
//   * `set_events_enabled(false)` silences every append at the cost of one
//     relaxed atomic load (mirrors obs::set_metrics_enabled).
//   * Export is JSON-lines (one object per event) — greppable, streamable,
//     and append-friendly for the fleet_audit --events-out artifact.
//
// Args reuse obs::SpanArg, so an instrumentation point can feed the same
// key/values to its trace span and its journal event.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace speccal::obs {

namespace detail {
inline std::atomic<bool> g_events_enabled{true};
}  // namespace detail

/// Process-wide kill switch for event journaling (one relaxed load per
/// append when off; bench/obs_overhead measures the on/off delta).
inline void set_events_enabled(bool enabled) noexcept {
  detail::g_events_enabled.store(enabled, std::memory_order_relaxed);
}
[[nodiscard]] inline bool events_enabled() noexcept {
  return detail::g_events_enabled.load(std::memory_order_relaxed);
}

enum class EventSeverity : std::uint8_t { kInfo, kWarning, kError };

[[nodiscard]] const char* to_string(EventSeverity severity) noexcept;

/// One journal entry. `seq` is assigned at append time and monotonically
/// increases for the log's lifetime (wrap-around drops old events, never
/// renumbers); `t_ms` is steady-clock milliseconds since the log was
/// constructed — wall-clock time never enters the journal (same rule as
/// trace spans).
struct Event {
  std::uint64_t seq = 0;
  double t_ms = 0.0;
  EventSeverity severity = EventSeverity::kInfo;
  std::string name;     // machine-readable event kind, e.g. "stage_quarantined"
  std::string node_id;  // empty when the emitter has no node context
  std::string stage;    // pipeline stage name, empty outside the pipeline
  std::vector<SpanArg> args;
};

/// Bounded, thread-safe structured event journal with JSON-lines export.
class EventLog {
 public:
  /// Throws std::invalid_argument ("EventLog.capacity ...") when capacity
  /// is 0.
  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide journal every library layer appends into.
  /// Intentionally leaked (same lifetime rule as Registry::global()).
  [[nodiscard]] static EventLog& global();

  /// Append one event; seq and t_ms are assigned here (caller-provided
  /// values are overwritten). No-op when events are disabled.
  void append(Event event);

  /// Convenience: build and append in one call.
  void log(EventSeverity severity, std::string_view name,
           std::string_view node_id = {}, std::string_view stage = {},
           std::vector<SpanArg> args = {});

  /// Oldest-to-newest snapshot of the ring's current contents.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events ever appended / overwritten by wrap-around.
  [[nodiscard]] std::uint64_t total_appended() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop every buffered event (counters and seq numbering keep going).
  void clear();

  /// JSON-lines export, oldest first:
  ///   {"seq":12,"t_ms":34.5,"severity":"error","event":"stage_quarantined",
  ///    "node":"dave-rooftop","stage":"survey","args":{"attempts":4}}
  /// "node"/"stage"/"args" are omitted when empty.
  void write_jsonl(std::ostream& os) const;

  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;     // next write position once full
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace speccal::obs
