#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace speccal::obs {

// ------------------------------------------------------------- histogram ----

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bucket bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  // First bound >= v (le semantics); everything above lands in +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::span<const double> default_duration_bounds_ms() noexcept {
  static constexpr std::array<double, 13> kBounds = {
      1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
      5000.0, 10000.0};
  return kBounds;
}

// -------------------------------------------------------------- registry ----

namespace {

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

const char* kind_name(int kind) noexcept {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
  }
  return "?";
}

}  // namespace

Registry& Registry::global() {
  // Leaked on purpose: instrumented layers cache handles in function-local
  // statics, and those must outlive every other static destructor.
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry& Registry::entry_for(std::string_view name, Kind kind,
                                     std::span<const double> bounds) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("Registry: invalid metric name \"" +
                                std::string(name) +
                                "\" (allowed: [a-zA-Z0-9_:])");
  const std::scoped_lock lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument(
          "Registry: metric \"" + std::string(name) + "\" already registered as " +
          kind_name(static_cast<int>(it->second.kind)) + ", requested as " +
          kind_name(static_cast<int>(kind)));
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter: entry.counter.reset(new Counter()); break;
    case Kind::kGauge: entry.gauge.reset(new Gauge()); break;
    case Kind::kHistogram: entry.histogram.reset(new Histogram(bounds)); break;
  }
  return metrics_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_for(name, Kind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_for(name, Kind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  return *entry_for(name, Kind::kHistogram, bounds).histogram;
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return metrics_.size();
}

void Registry::write_json(util::JsonWriter& w) const {
  const std::scoped_lock lock(mutex_);
  w.begin_object();
  w.key("metrics");
  w.begin_array();
  for (const auto& [name, entry] : metrics_) {
    w.begin_object();
    w.key("name");
    w.value(name);
    w.key("type");
    w.value(kind_name(static_cast<int>(entry.kind)));
    switch (entry.kind) {
      case Kind::kCounter:
        w.key("value");
        w.value(static_cast<std::int64_t>(entry.counter->value()));
        break;
      case Kind::kGauge:
        w.key("value");
        w.value(entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        w.key("count");
        w.value(static_cast<std::int64_t>(h.count()));
        w.key("sum");
        w.value(h.sum());
        w.key("buckets");
        w.begin_array();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          w.begin_object();
          w.key("le");
          if (i < h.bounds().size()) w.value(h.bounds()[i]);
          else w.value("+Inf");
          w.key("count");
          w.value(static_cast<std::int64_t>(cumulative));
          w.end_object();
        }
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Registry::write_json(std::ostream& os) const {
  util::JsonWriter w(os);
  write_json(w);
  os << "\n";
}

void Registry::write_text(std::ostream& os) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    os << "# TYPE " << name << ' ' << kind_name(static_cast<int>(entry.kind))
       << "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        os << name << ' ' << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << name << ' ' << entry.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          os << name << "_bucket{le=\"";
          if (i < h.bounds().size()) os << h.bounds()[i];
          else os << "+Inf";
          os << "\"} " << cumulative << "\n";
        }
        os << name << "_sum " << h.sum() << "\n";
        os << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

}  // namespace speccal::obs
