#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace speccal::obs {

// ------------------------------------------------------------- histogram ----

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bucket bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  // First bound >= v (le semantics); everything above lands in +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::span<const double> default_duration_bounds_ms() noexcept {
  static constexpr std::array<double, 13> kBounds = {
      1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
      5000.0, 10000.0};
  return kBounds;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// -------------------------------------------------------------- registry ----

namespace {

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool ok = alpha || c == '_' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

// Prometheus text-format label-value escaping: backslash, double quote and
// newline are the only characters the spec escapes.
void write_escaped_label_value(std::ostream& os, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

void write_label_set(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) os << ',';
    os << labels[i].name << "=\"";
    write_escaped_label_value(os, labels[i].value);
    os << '"';
  }
  os << '}';
}

std::string render_series(std::string_view name, const Labels& labels) {
  std::ostringstream oss;
  oss << name;
  if (!labels.empty()) write_label_set(oss, labels);
  return oss.str();
}

// The Prometheus text format spells non-finite values NaN / +Inf / -Inf;
// ostream would print nan / inf, which scrapers reject.
void write_prom_double(std::ostream& os, double v) {
  if (std::isnan(v)) os << "NaN";
  else if (std::isinf(v)) os << (v > 0 ? "+Inf" : "-Inf");
  else os << v;
}

}  // namespace

Registry& Registry::global() {
  // Leaked on purpose: instrumented layers cache handles in function-local
  // statics, and those must outlive every other static destructor.
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Entry& Registry::entry_for(std::string_view name, Labels labels,
                                     MetricKind kind,
                                     std::span<const double> bounds) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("Registry: invalid metric name \"" +
                                std::string(name) +
                                "\" (allowed: [a-zA-Z0-9_:])");
  // Canonicalize: sort by label name so {a,b} and {b,a} are one series.
  std::sort(labels.begin(), labels.end(),
            [](const Label& x, const Label& y) { return x.name < y.name; });
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_label_name(labels[i].name))
      throw std::invalid_argument("Registry: invalid label name \"" +
                                  labels[i].name +
                                  "\" (allowed: [a-zA-Z_][a-zA-Z0-9_]*)");
    if (i > 0 && labels[i - 1].name == labels[i].name)
      throw std::invalid_argument("Registry: duplicate label name \"" +
                                  labels[i].name + "\" on metric \"" +
                                  std::string(name) + "\"");
  }
  // '\x01' sorts below every valid name character, so all label sets of one
  // name stay contiguous in the map (see header comment). The escaped label
  // rendering is injective, which makes the key unique per label set.
  std::string key(name);
  if (!labels.empty()) {
    std::ostringstream oss;
    write_label_set(oss, labels);
    key += '\x01';
    key += oss.str();
  }
  const std::scoped_lock lock(mutex_);
  if (auto kit = kinds_.find(name); kit != kinds_.end()) {
    if (kit->second != kind)
      throw std::invalid_argument(
          "Registry: metric \"" + std::string(name) + "\" already registered as " +
          to_string(kit->second) + ", requested as " + to_string(kind));
  } else {
    kinds_.emplace(std::string(name), kind);
  }
  auto it = metrics_.find(key);
  if (it != metrics_.end()) return it->second;
  Entry entry;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter: entry.counter.reset(new Counter()); break;
    case MetricKind::kGauge: entry.gauge.reset(new Gauge()); break;
    case MetricKind::kHistogram:
      entry.histogram.reset(new Histogram(bounds));
      break;
  }
  return metrics_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_for(name, {}, MetricKind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_for(name, {}, MetricKind::kGauge, {}).gauge;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *entry_for(name, std::move(labels), MetricKind::kCounter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *entry_for(name, std::move(labels), MetricKind::kGauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  return *entry_for(name, {}, MetricKind::kHistogram, bounds).histogram;
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return metrics_.size();
}

std::vector<ScalarSample> Registry::scalar_samples() const {
  const std::scoped_lock lock(mutex_);
  std::vector<ScalarSample> out;
  out.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    const std::string series = render_series(entry.name, entry.labels);
    switch (entry.kind) {
      case MetricKind::kCounter:
        out.push_back({series, MetricKind::kCounter,
                       static_cast<double>(entry.counter->value())});
        break;
      case MetricKind::kGauge:
        out.push_back({series, MetricKind::kGauge, entry.gauge->value()});
        break;
      case MetricKind::kHistogram:
        // Flattened to the two monotonic scalars a sampler can delta.
        out.push_back({series + "_count", MetricKind::kCounter,
                       static_cast<double>(entry.histogram->count())});
        out.push_back(
            {series + "_sum", MetricKind::kCounter, entry.histogram->sum()});
        break;
    }
  }
  return out;
}

void Registry::write_json(util::JsonWriter& w) const {
  const std::scoped_lock lock(mutex_);
  w.begin_object();
  w.key("metrics");
  w.begin_array();
  for (const auto& [key, entry] : metrics_) {
    w.begin_object();
    w.key("name");
    w.value(entry.name);
    if (!entry.labels.empty()) {
      w.key("labels");
      w.begin_object();
      for (const Label& label : entry.labels) {
        w.key(label.name);
        w.value(label.value);
      }
      w.end_object();
    }
    w.key("type");
    w.value(to_string(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        w.key("value");
        w.value(static_cast<std::int64_t>(entry.counter->value()));
        break;
      case MetricKind::kGauge:
        w.key("value");
        w.value(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        w.key("count");
        w.value(static_cast<std::int64_t>(h.count()));
        w.key("sum");
        w.value(h.sum());
        w.key("buckets");
        w.begin_array();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          w.begin_object();
          w.key("le");
          if (i < h.bounds().size()) w.value(h.bounds()[i]);
          else w.value("+Inf");
          w.key("count");
          w.value(static_cast<std::int64_t>(cumulative));
          w.end_object();
        }
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Registry::write_json(std::ostream& os) const {
  util::JsonWriter w(os);
  write_json(w);
  os << "\n";
}

void Registry::write_text(std::ostream& os) const {
  const std::scoped_lock lock(mutex_);
  // Map order keeps every label set of one name contiguous (see the key
  // scheme in the header), so one TYPE line per name needs only a
  // last-name check, not a seen-set.
  std::string_view last_name;
  for (const auto& [key, entry] : metrics_) {
    if (entry.name != last_name) {
      os << "# TYPE " << entry.name << ' ' << to_string(entry.kind) << "\n";
      last_name = entry.name;
    }
    switch (entry.kind) {
      case MetricKind::kCounter:
        os << entry.name;
        if (!entry.labels.empty()) write_label_set(os, entry.labels);
        os << ' ' << entry.counter->value() << "\n";
        break;
      case MetricKind::kGauge:
        os << entry.name;
        if (!entry.labels.empty()) write_label_set(os, entry.labels);
        os << ' ';
        write_prom_double(os, entry.gauge->value());
        os << "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          os << entry.name << "_bucket{le=\"";
          if (i < h.bounds().size()) os << h.bounds()[i];
          else os << "+Inf";
          os << "\"} " << cumulative << "\n";
        }
        os << entry.name << "_sum ";
        write_prom_double(os, h.sum());
        os << "\n";
        os << entry.name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

}  // namespace speccal::obs
