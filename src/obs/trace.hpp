// Trace spans with Chrome trace_event JSON export.
//
// A TraceSession collects completed spans from any number of threads; the
// export is the Chrome `trace_event` "complete event" (ph:"X") format, so a
// fleet calibration run drops straight into chrome://tracing or Perfetto:
// each worker thread becomes a track, each node a span on that track, and
// each pipeline stage a nested child (nesting is by time containment per
// thread, which RAII scoping guarantees).
//
// Overhead contract (DESIGN.md §10): a Span constructed with a null session
// does nothing at all — no clock read, no allocation — so instrumentation
// points cost one pointer test when tracing is off. With a session attached,
// a span costs two steady-clock reads plus one mutex-guarded append at
// destruction; spans therefore belong at stage/node granularity, never
// inside per-sample loops (counters cover those — obs/metrics.hpp).
//
// Timestamps come from std::chrono::steady_clock exclusively (monotonic;
// wall-clock time never enters the trace), measured relative to the
// session's construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace speccal::obs {

/// One key/value annotation on a span ("args" in the Chrome format).
struct SpanArg {
  enum class Kind { kString, kInt, kDouble, kBool };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;

  [[nodiscard]] static SpanArg str(std::string_view key, std::string_view value);
  [[nodiscard]] static SpanArg integer(std::string_view key, std::int64_t value);
  [[nodiscard]] static SpanArg number(std::string_view key, double value);
  [[nodiscard]] static SpanArg boolean(std::string_view key, bool value);
};

/// Thread-safe collector of completed spans for one run.
class TraceSession {
 public:
  using clock = std::chrono::steady_clock;

  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Record a finished span. The calling thread determines the track (tid);
  /// timestamps are clamped to the session start. Callable from any thread.
  void record_complete(std::string_view name, std::string_view category,
                       clock::time_point start, clock::time_point end,
                       std::vector<SpanArg> args = {});

  /// Label the *calling* thread's track in the export (and pin its lane
  /// order when sort_index >= 0 — Perfetto sorts unpinned lanes by raw
  /// tid). Executor workers call this once at startup so their lanes read
  /// `worker-0..N-1` in pool order instead of registration order; unnamed
  /// threads keep the "main"/"worker-<tid>" fallback.
  void name_thread(std::string_view name, int sort_index = -1);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] clock::time_point start_time() const noexcept { return t0_; }

  /// Full Chrome trace document:
  ///   {"traceEvents":[...metadata + X events...],"displayTimeUnit":"ms"}
  /// Events are sorted by start timestamp; thread_name metadata events label
  /// each worker track.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    double ts_us = 0.0;   // since session start
    double dur_us = 0.0;
    int tid = 0;
    std::vector<SpanArg> args;
  };
  struct ThreadLabel {
    std::string name;
    int sort_index = -1;  // < 0: let the viewer sort by tid
  };
  int tid_for_locked(std::thread::id id);

  mutable std::mutex mutex_;
  clock::time_point t0_;
  std::vector<Event> events_;
  std::vector<std::thread::id> threads_;  // index == tid
  std::map<int, ThreadLabel> thread_labels_;
};

/// RAII span. Constructed against a session (or nullptr = disabled); records
/// itself into the session when it ends (scope exit, move-from, or an
/// explicit end()). Exception-safe: unwinding ends the span.
class Span {
 public:
  Span() noexcept = default;  // inactive
  Span(TraceSession* session, std::string name,
       std::string category = "speccal");

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attach an annotation (no-op on an inactive span).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, bool value);

  /// Close and record now; idempotent.
  void end() noexcept;

  [[nodiscard]] bool active() const noexcept { return session_ != nullptr; }

 private:
  TraceSession* session_ = nullptr;
  std::string name_;
  std::string category_;
  std::vector<SpanArg> args_;
  TraceSession::clock::time_point start_{};
};

}  // namespace speccal::obs
