// Fleet-wide metrics registry — the backend-visibility layer the paper's
// crowd-sourced deployment model presumes (Electrosense keeps per-node
// health series for exactly this reason).
//
// Three instrument kinds, all with a lock-free fast path:
//   * Counter   — monotonic uint64 (speccal_sdr_captures_total),
//   * Gauge     — last-written double (speccal_dsp_plan_cache_entries),
//   * Histogram — fixed-bucket distribution (speccal_calib_stage_*_ms).
// Handles returned by a Registry are stable references valid for the
// registry's lifetime; updating one is a relaxed atomic op, so hot paths
// (capture loops, demodulators, plan cache) publish without taking a lock.
// Registration and exposition take a mutex — both are cold.
//
// `Registry::global()` is the process-wide instance every library layer
// publishes into; tests that need isolation construct their own Registry
// and read deltas, or flip `set_metrics_enabled(false)` to silence the
// fast path entirely (one relaxed load + branch per update — this is what
// bench/obs_overhead measures).
//
// Naming convention (DESIGN.md §10): speccal_<area>_<name>_<unit>, where
// <unit> is `total` for counters, a unit like `ms`/`bytes` for histograms
// and gauges. Names are validated at registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace speccal::util {
class JsonWriter;
}

namespace speccal::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

/// Process-wide kill switch for every metric fast path (used by
/// bench/obs_overhead to measure the instrumented-vs-uninstrumented delta).
inline void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event count. add() is a relaxed fetch_add — safe from any
/// thread, never locks.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (cache entries, bytes reserved, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Relaxed read-modify-write via CAS (atomic<double>::fetch_add is not
  /// guaranteed pre-C++20 libs; the CAS loop is portable and uncontended
  /// in practice).
  void add(double delta) noexcept {
    if (!metrics_enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation v
/// lands in the first bucket whose upper bound satisfies v <= bound, or in
/// the implicit +Inf overflow bucket. Bounds are fixed at registration.
/// observe() is two relaxed atomic ops plus a CAS for the sum; exposition
/// reads are a best-effort snapshot (buckets are independent atomics).
class Histogram {
 public:
  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::span<const double> bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::span<const double> bounds);
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Upper bounds suited to pipeline-stage wall times (1 ms .. 10 s).
[[nodiscard]] std::span<const double> default_duration_bounds_ms() noexcept;

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind) noexcept;

/// One label on a metric series. Label names follow Prometheus rules
/// ([a-zA-Z_][a-zA-Z0-9_]*); values are arbitrary UTF-8 and get escaped at
/// exposition time — this is how per-node series (`speccal_node_health`)
/// carry node ids like "dave-rooftop" that are illegal in metric names.
struct Label {
  std::string name;
  std::string value;
};
using Labels = std::vector<Label>;

/// Flat scalar view of one exposition row, for samplers that track series
/// over time. Histograms flatten to two monotonic rows (`<name>_count`,
/// `<name>_sum`, both reported as kCounter). `series` is the full
/// Prometheus-rendered identity (`name{k="v"}`), unique per row.
struct ScalarSample {
  std::string series;
  MetricKind kind{};
  double value = 0.0;
};

/// Thread-safe name -> metric registry with text and JSON exposition.
///
/// counter()/gauge()/histogram() get-or-create: the same (name, labels)
/// always returns the same handle, so independent call sites share one
/// series. Requesting an existing name as a different kind throws
/// std::invalid_argument (as does a name outside [a-zA-Z0-9_:], a label
/// name outside [a-zA-Z_][a-zA-Z0-9_]*, or a duplicated label name).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance every library layer publishes into.
  /// Intentionally leaked so handles cached in function-local statics stay
  /// valid through shutdown.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Labeled variants: label order is irrelevant (sets are canonicalized by
  /// sorting on label name); every label set of one metric name must agree
  /// on kind. Histograms are deliberately unlabeled — per-node cardinality
  /// belongs on cheap scalars, not bucket arrays.
  [[nodiscard]] Counter& counter(std::string_view name, Labels labels);
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels);
  /// Bounds must be strictly increasing and non-empty; they are fixed by
  /// the first registration (later calls with the same name return the
  /// existing histogram and ignore `bounds`).
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds);

  [[nodiscard]] std::size_t size() const;

  /// Iteration API for obs::Sampler: every series flattened to scalars,
  /// ordered by series identity (stable across calls as long as no new
  /// series register in between).
  [[nodiscard]] std::vector<ScalarSample> scalar_samples() const;

  /// JSON exposition:
  ///   {"metrics":[{"name":...,"type":"counter","value":N}, ...]}
  /// Labeled series additionally carry {"labels":{...}}. Histograms carry
  /// cumulative `le` buckets plus sum/count. Emits onto an open writer so
  /// callers can embed the object in a larger document.
  void write_json(util::JsonWriter& w) const;
  /// Standalone-document convenience.
  void write_json(std::ostream& os) const;

  /// Prometheus-style text exposition (# TYPE lines once per metric name,
  /// `name{k="v"}` series, `_bucket{le="..."}`; non-finite values render as
  /// NaN/+Inf/-Inf per the text-format spec, not ostream's nan/inf).
  void write_text(std::ostream& os) const;

 private:
  struct Entry {
    std::string name;  // base metric name (key also encodes labels)
    Labels labels;     // canonically sorted; empty for unlabeled series
    MetricKind kind{};
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry_for(std::string_view name, Labels labels, MetricKind kind,
                   std::span<const double> bounds);

  mutable std::mutex mutex_;
  // Keyed so every label set of one name sorts contiguously, right after
  // the unlabeled series and before any longer name ("name" < "name\x01.."
  // < "name_sub"): exposition stays name-grouped with one pass.
  std::map<std::string, Entry, std::less<>> metrics_;
  std::map<std::string, MetricKind, std::less<>> kinds_;  // name -> kind
};

}  // namespace speccal::obs
