// Rolling metric snapshots and stage-latency SLO tracking.
//
// obs::Sampler turns the registry's monotonically-growing counters into a
// delta time-series: each sample() tick flattens every series to a scalar
// (Registry::scalar_samples()), diffs it against the previous tick, and
// keeps a bounded ring of frames recording only the series that moved.
// That is the signal a fleet operator actually watches — "quarantines per
// heartbeat", "queue rejects this interval" — and it is what
// fleet_audit --metrics-out flushes periodically so a killed 10k-node run
// still leaves a telemetry tail behind.
//
// obs::SloTracker holds per-stage latency budgets (survey has 50 ms, ...)
// and is fed by calib::StageTimer on every stage completion. When no
// budget is configured — the default — observe() is one relaxed atomic
// load, so the tracker costs nothing on uninstrumented runs (the
// bench/obs_overhead gate covers the enabled path). With budgets set it
// maintains, per stage: observations, breaches (actual > budget), total
// actual and over-budget milliseconds, and a burn rate published as
//   speccal_slo_stage_observed_total{stage="..."}
//   speccal_slo_stage_breaches_total{stage="..."}
//   speccal_slo_stage_burn_rate{stage="..."}   (gauge)
// where burn_rate = total_actual_ms / (budget_ms * observed): 1.0 means
// running exactly at budget, >1 means the error budget is burning.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace speccal::obs {

/// One changed series inside a sampler frame.
struct SamplePoint {
  std::string series;  // Prometheus-rendered identity, e.g. name{k="v"}
  MetricKind kind{};
  double value = 0.0;  // absolute value at this tick
  double delta = 0.0;  // change since the previous tick (== value on first)
};

/// One sample() tick: steady-clock timestamp plus every series that moved.
struct SamplerFrame {
  std::uint64_t tick = 0;  // 0-based, survives frame eviction
  double t_ms = 0.0;       // steady ms since Sampler construction
  std::vector<SamplePoint> points;
};

/// Bounded delta-time-series recorder over a Registry. sample() is
/// thread-safe; the intended shape is one caller ticking it on a heartbeat
/// (fleet_audit's progress callback) while workers keep publishing.
class Sampler {
 public:
  /// Throws std::invalid_argument ("Sampler.max_frames ...") when
  /// max_frames is 0.
  explicit Sampler(Registry& registry, std::size_t max_frames = kDefaultMaxFrames);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Take one snapshot. Frame 0 records every nonzero series; later frames
  /// record only series whose value changed. Returns the number of points
  /// recorded in this frame.
  std::size_t sample();

  [[nodiscard]] std::size_t frame_count() const;
  /// Frames evicted by the ring bound (oldest-first).
  [[nodiscard]] std::uint64_t dropped_frames() const;
  [[nodiscard]] std::vector<SamplerFrame> frames() const;

  /// {"schema_version":1,"max_frames":N,"dropped_frames":N,"frames":[
  ///    {"tick":0,"t_ms":1.5,"points":[
  ///       {"series":"speccal_x_total","kind":"counter","value":3,"delta":3}]}]}
  void write_json(std::ostream& os) const;

  static constexpr std::size_t kDefaultMaxFrames = 512;

 private:
  Registry& registry_;
  const std::size_t max_frames_;
  const std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, double> prev_;  // series -> last value
  std::vector<SamplerFrame> frames_;              // ring, oldest at head_
  std::size_t head_ = 0;
  std::uint64_t next_tick_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Per-stage latency budget snapshot row (see snapshot()).
struct StageSlo {
  std::string stage;
  double budget_ms = 0.0;
  std::uint64_t observed = 0;
  std::uint64_t breaches = 0;
  double total_ms = 0.0;
  double total_over_ms = 0.0;  // sum of max(0, actual - budget)
  [[nodiscard]] double burn_rate() const noexcept {
    return observed == 0 ? 0.0 : total_ms / (budget_ms * static_cast<double>(observed));
  }
};

/// Stage-latency SLO tracker fed by calib::StageTimer. Stages are keyed by
/// name string so the obs layer stays ignorant of calib's Stage enum.
class SloTracker {
 public:
  explicit SloTracker(Registry& registry);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// The instance StageTimer publishes into, bound to Registry::global().
  /// Intentionally leaked (same lifetime rule as Registry::global()).
  [[nodiscard]] static SloTracker& global();

  /// Arm a budget for one stage (overwrites any previous budget). Throws
  /// std::invalid_argument when budget_ms <= 0.
  void set_budget(std::string_view stage, double budget_ms);
  /// Disarm everything; observe() returns to its one-atomic-load fast path.
  void clear();

  /// Record one stage completion. No-op (one relaxed load) unless a budget
  /// is armed for `stage`.
  void observe(std::string_view stage, double actual_ms);

  [[nodiscard]] std::vector<StageSlo> snapshot() const;

 private:
  struct Slot {
    StageSlo slo;
    Counter* observed_total = nullptr;
    Counter* breaches_total = nullptr;
    Gauge* burn_rate = nullptr;
  };
  Registry& registry_;
  std::atomic<bool> any_budgets_{false};
  mutable std::mutex mutex_;
  std::map<std::string, Slot, std::less<>> slots_;
};

}  // namespace speccal::obs
