#include "obs/sampler.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace speccal::obs {

// --------------------------------------------------------------- sampler ----

Sampler::Sampler(Registry& registry, std::size_t max_frames)
    : registry_(registry),
      max_frames_(max_frames),
      t0_(std::chrono::steady_clock::now()) {
  if (max_frames == 0)
    throw std::invalid_argument("Sampler.max_frames must be >= 1");
}

std::size_t Sampler::sample() {
  // Read the registry before taking our own lock: scalar_samples() holds
  // the registry mutex and we never want to nest the two.
  const std::vector<ScalarSample> now = registry_.scalar_samples();
  const auto t = std::chrono::steady_clock::now();

  const std::scoped_lock lock(mutex_);
  SamplerFrame frame;
  frame.tick = next_tick_++;
  frame.t_ms = std::chrono::duration<double, std::milli>(t - t0_).count();
  for (const ScalarSample& s : now) {
    const auto it = prev_.find(s.series);
    const double prev = it == prev_.end() ? 0.0 : it->second;
    const double delta = s.value - prev;
    // Record movement; on a series' first appearance a zero value is noise
    // (every just-registered counter would show up), so require nonzero.
    const bool fresh = it == prev_.end();
    if ((fresh && s.value != 0.0) || (!fresh && delta != 0.0))
      frame.points.push_back({s.series, s.kind, s.value, delta});
    if (fresh) prev_.emplace(s.series, s.value);
    else it->second = s.value;
  }
  const std::size_t recorded = frame.points.size();
  if (frames_.size() < max_frames_) {
    frames_.push_back(std::move(frame));
  } else {
    frames_[head_] = std::move(frame);
    head_ = (head_ + 1) % max_frames_;
    ++dropped_;
  }
  return recorded;
}

std::size_t Sampler::frame_count() const {
  const std::scoped_lock lock(mutex_);
  return frames_.size();
}

std::uint64_t Sampler::dropped_frames() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::vector<SamplerFrame> Sampler::frames() const {
  const std::scoped_lock lock(mutex_);
  std::vector<SamplerFrame> out;
  out.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i)
    out.push_back(frames_[(head_ + i) % frames_.size()]);
  return out;
}

void Sampler::write_json(std::ostream& os) const {
  const std::vector<SamplerFrame> snapshot = frames();
  std::uint64_t dropped = 0;
  {
    const std::scoped_lock lock(mutex_);
    dropped = dropped_;
  }
  util::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::int64_t{1});
  w.key("max_frames");
  w.value(static_cast<std::int64_t>(max_frames_));
  w.key("dropped_frames");
  w.value(static_cast<std::int64_t>(dropped));
  w.key("frames");
  w.begin_array();
  for (const SamplerFrame& frame : snapshot) {
    w.begin_object();
    w.key("tick");
    w.value(static_cast<std::int64_t>(frame.tick));
    w.key("t_ms");
    w.value(frame.t_ms);
    w.key("points");
    w.begin_array();
    for (const SamplePoint& p : frame.points) {
      w.begin_object();
      w.key("series");
      w.value(p.series);
      w.key("kind");
      w.value(to_string(p.kind));
      w.key("value");
      w.value(p.value);
      w.key("delta");
      w.value(p.delta);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

// ----------------------------------------------------------- slo tracker ----

SloTracker::SloTracker(Registry& registry) : registry_(registry) {}

SloTracker& SloTracker::global() {
  // Leaked on purpose: StageTimer unwinds may outlive static destructors
  // (same rule as Registry::global()).
  static SloTracker* instance = new SloTracker(Registry::global());
  return *instance;
}

void SloTracker::set_budget(std::string_view stage, double budget_ms) {
  if (!(budget_ms > 0.0))
    throw std::invalid_argument("SloTracker: budget_ms must be > 0");
  const std::scoped_lock lock(mutex_);
  auto [it, inserted] = slots_.try_emplace(std::string(stage));
  Slot& slot = it->second;
  if (inserted) {
    slot.slo.stage = std::string(stage);
    const Labels labels{{"stage", slot.slo.stage}};
    slot.observed_total =
        &registry_.counter("speccal_slo_stage_observed_total", labels);
    slot.breaches_total =
        &registry_.counter("speccal_slo_stage_breaches_total", labels);
    slot.burn_rate = &registry_.gauge("speccal_slo_stage_burn_rate", labels);
  }
  slot.slo.budget_ms = budget_ms;
  any_budgets_.store(true, std::memory_order_relaxed);
}

void SloTracker::clear() {
  const std::scoped_lock lock(mutex_);
  any_budgets_.store(false, std::memory_order_relaxed);
  slots_.clear();
}

void SloTracker::observe(std::string_view stage, double actual_ms) {
  if (!any_budgets_.load(std::memory_order_relaxed)) return;
  const std::scoped_lock lock(mutex_);
  const auto it = slots_.find(stage);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  slot.slo.observed += 1;
  slot.slo.total_ms += actual_ms;
  const double over = actual_ms - slot.slo.budget_ms;
  if (over > 0.0) {
    slot.slo.breaches += 1;
    slot.slo.total_over_ms += over;
    slot.breaches_total->add(1);
  }
  slot.observed_total->add(1);
  slot.burn_rate->set(slot.slo.burn_rate());
}

std::vector<StageSlo> SloTracker::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<StageSlo> out;
  out.reserve(slots_.size());
  for (const auto& [stage, slot] : slots_) out.push_back(slot.slo);
  return out;
}

}  // namespace speccal::obs
