#include "obs/eventlog.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace speccal::obs {

const char* to_string(EventSeverity severity) noexcept {
  switch (severity) {
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarning: return "warning";
    case EventSeverity::kError: return "error";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity), t0_(std::chrono::steady_clock::now()) {
  if (capacity == 0)
    throw std::invalid_argument("EventLog.capacity must be >= 1");
  ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

EventLog& EventLog::global() {
  // Leaked on purpose: emitters cache no handles, but the journal must
  // outlive every static destructor that might still log (mirrors
  // Registry::global()).
  static EventLog* instance = new EventLog();
  return *instance;
}

void EventLog::append(Event event) {
  if (!events_enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  const std::scoped_lock lock(mutex_);
  event.seq = next_seq_++;
  event.t_ms = std::chrono::duration<double, std::milli>(now - t0_).count();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    // Journal overflow surfaced in --metrics-out, not just the JSONL tail.
    // Cold path (only fires once the ring has wrapped); the counter add is
    // a relaxed atomic, safe under the journal mutex.
    static Counter& dropped_total =
        Registry::global().counter("speccal_events_dropped_total");
    dropped_total.add();
  }
}

void EventLog::log(EventSeverity severity, std::string_view name,
                   std::string_view node_id, std::string_view stage,
                   std::vector<SpanArg> args) {
  if (!events_enabled()) return;  // skip the string copies entirely
  Event event;
  event.severity = severity;
  event.name = std::string(name);
  event.node_id = std::string(node_id);
  event.stage = std::string(stage);
  event.args = std::move(args);
  append(std::move(event));
}

std::vector<Event> EventLog::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Once wrapped, head_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::size_t EventLog::size() const {
  const std::scoped_lock lock(mutex_);
  return ring_.size();
}

std::uint64_t EventLog::total_appended() const {
  const std::scoped_lock lock(mutex_);
  return next_seq_;
}

std::uint64_t EventLog::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void EventLog::clear() {
  const std::scoped_lock lock(mutex_);
  ring_.clear();
  head_ = 0;
}

namespace {

void write_event_json(util::JsonWriter& w, const Event& ev) {
  w.begin_object();
  w.key("seq");
  w.value(static_cast<std::int64_t>(ev.seq));
  w.key("t_ms");
  w.value(ev.t_ms);
  w.key("severity");
  w.value(to_string(ev.severity));
  w.key("event");
  w.value(ev.name);
  if (!ev.node_id.empty()) {
    w.key("node");
    w.value(ev.node_id);
  }
  if (!ev.stage.empty()) {
    w.key("stage");
    w.value(ev.stage);
  }
  if (!ev.args.empty()) {
    w.key("args");
    w.begin_object();
    for (const SpanArg& arg : ev.args) {
      w.key(arg.key);
      switch (arg.kind) {
        case SpanArg::Kind::kString: w.value(arg.string_value); break;
        case SpanArg::Kind::kInt: w.value(arg.int_value); break;
        case SpanArg::Kind::kDouble: w.value(arg.double_value); break;
        case SpanArg::Kind::kBool: w.value(arg.bool_value); break;
      }
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void EventLog::write_jsonl(std::ostream& os) const {
  // Snapshot under the lock, serialize outside it: formatting a long tail
  // must not stall concurrent appends.
  const std::vector<Event> events = snapshot();
  for (const Event& ev : events) {
    util::JsonWriter w(os);
    write_event_json(w, ev);
    os << "\n";
  }
}

}  // namespace speccal::obs
