#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "util/json.hpp"

namespace speccal::obs {

// --------------------------------------------------------------- SpanArg ----

SpanArg SpanArg::str(std::string_view key, std::string_view value) {
  SpanArg a;
  a.key = std::string(key);
  a.kind = Kind::kString;
  a.string_value = std::string(value);
  return a;
}

SpanArg SpanArg::integer(std::string_view key, std::int64_t value) {
  SpanArg a;
  a.key = std::string(key);
  a.kind = Kind::kInt;
  a.int_value = value;
  return a;
}

SpanArg SpanArg::number(std::string_view key, double value) {
  SpanArg a;
  a.key = std::string(key);
  a.kind = Kind::kDouble;
  a.double_value = value;
  return a;
}

SpanArg SpanArg::boolean(std::string_view key, bool value) {
  SpanArg a;
  a.key = std::string(key);
  a.kind = Kind::kBool;
  a.bool_value = value;
  return a;
}

namespace {

void write_arg_value(util::JsonWriter& w, const SpanArg& arg) {
  switch (arg.kind) {
    case SpanArg::Kind::kString: w.value(arg.string_value); break;
    case SpanArg::Kind::kInt: w.value(arg.int_value); break;
    case SpanArg::Kind::kDouble: w.value(arg.double_value); break;
    case SpanArg::Kind::kBool: w.value(arg.bool_value); break;
  }
}

}  // namespace

// ---------------------------------------------------------- TraceSession ----

TraceSession::TraceSession() : t0_(clock::now()) {}

int TraceSession::tid_for_locked(std::thread::id id) {
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == id) return static_cast<int>(i);
  threads_.push_back(id);
  return static_cast<int>(threads_.size() - 1);
}

void TraceSession::record_complete(std::string_view name,
                                   std::string_view category,
                                   clock::time_point start,
                                   clock::time_point end,
                                   std::vector<SpanArg> args) {
  if (start < t0_) start = t0_;
  if (end < start) end = start;
  Event ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.ts_us = std::chrono::duration<double, std::micro>(start - t0_).count();
  ev.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  ev.args = std::move(args);
  const std::scoped_lock lock(mutex_);
  ev.tid = tid_for_locked(std::this_thread::get_id());
  events_.push_back(std::move(ev));
}

std::size_t TraceSession::event_count() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

void TraceSession::name_thread(std::string_view name, int sort_index) {
  const std::scoped_lock lock(mutex_);
  const int tid = tid_for_locked(std::this_thread::get_id());
  thread_labels_[tid] = ThreadLabel{std::string(name), sort_index};
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  // Snapshot under the lock, serialize outside event insertion order: the
  // viewer expects stable sort by timestamp for "X" events on one track.
  std::vector<Event> events;
  std::size_t thread_count = 0;
  std::map<int, ThreadLabel> labels;
  {
    const std::scoped_lock lock(mutex_);
    events = events_;
    thread_count = threads_.size();
    labels = thread_labels_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  util::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Track labels first: one process, one named track per recording thread.
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(1);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value("speccal");
  w.end_object();
  w.end_object();
  for (std::size_t tid = 0; tid < thread_count; ++tid) {
    const auto label_it = labels.find(static_cast<int>(tid));
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(static_cast<std::int64_t>(tid));
    w.key("args");
    w.begin_object();
    w.key("name");
    if (label_it != labels.end())
      w.value(label_it->second.name);
    else
      w.value(tid == 0 ? std::string("main") : "worker-" + std::to_string(tid));
    w.end_object();
    w.end_object();
    if (label_it != labels.end() && label_it->second.sort_index >= 0) {
      w.begin_object();
      w.key("name");
      w.value("thread_sort_index");
      w.key("ph");
      w.value("M");
      w.key("pid");
      w.value(1);
      w.key("tid");
      w.value(static_cast<std::int64_t>(tid));
      w.key("args");
      w.begin_object();
      w.key("sort_index");
      w.value(static_cast<std::int64_t>(label_it->second.sort_index));
      w.end_object();
      w.end_object();
    }
  }
  for (const Event& ev : events) {
    w.begin_object();
    w.key("name");
    w.value(ev.name);
    w.key("cat");
    w.value(ev.category);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(ev.ts_us);
    w.key("dur");
    w.value(ev.dur_us);
    w.key("pid");
    w.value(1);
    w.key("tid");
    w.value(ev.tid);
    if (!ev.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const SpanArg& arg : ev.args) {
        w.key(arg.key);
        write_arg_value(w, arg);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.value("ms");
  w.end_object();
  os << "\n";
}

// ------------------------------------------------------------------ Span ----

Span::Span(TraceSession* session, std::string name, std::string category)
    : session_(session) {
  if (session_ == nullptr) return;  // disabled: no clock read, no strings
  name_ = std::move(name);
  category_ = std::move(category);
  start_ = TraceSession::clock::now();
}

Span::Span(Span&& other) noexcept
    : session_(other.session_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      args_(std::move(other.args_)),
      start_(other.start_) {
  other.session_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    session_ = other.session_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    args_ = std::move(other.args_);
    start_ = other.start_;
    other.session_ = nullptr;
  }
  return *this;
}

Span::~Span() { end(); }

void Span::arg(std::string_view key, std::string_view value) {
  if (session_) args_.push_back(SpanArg::str(key, value));
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (session_) args_.push_back(SpanArg::integer(key, value));
}

void Span::arg(std::string_view key, double value) {
  if (session_) args_.push_back(SpanArg::number(key, value));
}

void Span::arg(std::string_view key, bool value) {
  if (session_) args_.push_back(SpanArg::boolean(key, value));
}

void Span::end() noexcept {
  if (session_ == nullptr) return;
  TraceSession* session = session_;
  session_ = nullptr;  // idempotent even if record throws
  try {
    session->record_complete(name_, category_, start_,
                             TraceSession::clock::now(), std::move(args_));
  } catch (...) {
    // Dropping a span beats terminating an unwinding stack (bad_alloc is
    // the only realistic throw here).
  }
}

}  // namespace speccal::obs
