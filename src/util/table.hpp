// Plain-text table rendering for the benchmark harnesses.
//
// Every figure-reproduction binary prints the rows/series the paper reports;
// Table keeps that output aligned and machine-greppable (also exports CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace speccal::util {

/// Column-aligned ASCII table with an optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing separators.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for cells containing separators).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals ("-93.41"); NaN renders as `nan_text`.
[[nodiscard]] std::string format_fixed(double value, int decimals,
                                       const std::string& nan_text = "-");

/// Render a horizontal bar of `#` glyphs scaled so `full_scale` = `width`.
/// Used by the figure benches to sketch the paper's bar charts in text.
[[nodiscard]] std::string ascii_bar(double value, double lo, double hi, int width);

}  // namespace speccal::util
