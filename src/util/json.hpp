// Minimal streaming JSON writer for exporting calibration reports.
//
// Write-only on purpose: the library produces reports for downstream tooling
// (plotting, dashboards) but never needs to parse JSON itself, so we avoid
// pulling in a parser dependency.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace speccal::util {

/// Streaming JSON writer with nesting validation.
///
/// Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("node"); w.value("rooftop");
///   w.key("rsrp_dbm"); w.value(-61.2);
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit a key inside an object; must be followed by a value or container.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(std::size_t number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);
  void null();

  /// True when all containers are closed.
  [[nodiscard]] bool complete() const noexcept { return stack_.empty() && emitted_; }

 private:
  enum class Scope { kObject, kArray };

  void before_value();
  void write_escaped(std::string_view text);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool emitted_ = false;
};

}  // namespace speccal::util
