#include "util/json.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace speccal::util {

void JsonWriter::before_value() {
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject && !pending_key_)
      throw std::logic_error("JsonWriter: value inside object requires key()");
    if (stack_.back() == Scope::kArray) {
      if (!first_in_scope_.back()) os_ << ',';
      first_in_scope_.back() = false;
    }
  } else if (emitted_) {
    throw std::logic_error("JsonWriter: multiple top-level values");
  }
  pending_key_ = false;
  emitted_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_)
    throw std::logic_error("JsonWriter: key() only valid directly inside an object");
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
  write_escaped(name);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
}

void JsonWriter::value(double number) {
  before_value();
  if (std::isnan(number) || std::isinf(number)) {
    os_ << "null";  // JSON has no NaN; reports treat null as "not measured".
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(12) << number;
  os_ << tmp.str();
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  os_ << number;
}

void JsonWriter::value(bool flag) {
  before_value();
  os_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

void JsonWriter::write_escaped(std::string_view text) {
  os_ << '"';
  for (char ch : text) {
    switch (ch) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(ch) << std::dec << std::setfill(' ');
        } else {
          os_ << ch;
        }
    }
  }
  os_ << '"';
}

}  // namespace speccal::util
