#include "util/rng.hpp"

#include <cmath>

#include "util/units.hpp"

namespace speccal::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * kPi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint32_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0u : static_cast<std::uint32_t>(sample + 0.5);
}

bool Rng::chance(double probability) noexcept {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform() < probability;
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  std::uint64_t s = state_[0] ^ rotl(state_[3], 13) ^ (stream_id * 0xD1B54A32D192ED03ull);
  Rng child(0);
  for (auto& word : child.state_) word = splitmix64(s);
  return child;
}

}  // namespace speccal::util
