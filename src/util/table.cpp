#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace speccal::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      os << (c + 1 < cells.size() ? "," : "\n");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double value, int decimals, const std::string& nan_text) {
  if (std::isnan(value)) return nan_text;
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string ascii_bar(double value, double lo, double hi, int width) {
  if (std::isnan(value) || hi <= lo || width <= 0) return {};
  const double frac = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  return std::string(static_cast<std::size_t>(std::lround(frac * width)), '#');
}

}  // namespace speccal::util
