// Deterministic random number generation.
//
// All stochastic behaviour in the simulators (traffic arrivals, fading,
// thermal noise, payload bits) flows through this generator so that every
// experiment in the paper reproduction is bit-for-bit repeatable from a seed.
// The engine is xoshiro256** (Blackman & Vigna) seeded via SplitMix64; it is
// much faster than std::mt19937_64 and has no observable linear artifacts in
// the outputs we use.
#pragma once

#include <array>
#include <cstdint>

namespace speccal::util {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (events per unit).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] std::uint32_t poisson(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Fork an independent child stream (stable function of parent state
  /// and `stream_id`, does not advance this generator).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace speccal::util
