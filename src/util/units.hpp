// Units and dB arithmetic used throughout the library.
//
// Power quantities appear in three reference frames:
//   * dBm  — absolute power referenced to 1 mW (link budgets, RSRP).
//   * dBFS — power relative to the ADC full scale (what a fixed-gain SDR
//            reports; the paper's Figure 4 uses this).
//   * dB   — dimensionless ratios (gains, losses).
// Helpers here convert between linear and logarithmic representations and
// provide the handful of physical constants the propagation code needs.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace speccal::util {

/// The circle constant — the one definition the whole tree uses (no
/// hand-written 3.14159... literals outside this header).
inline constexpr double kPi = std::numbers::pi;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard noise reference temperature [K].
inline constexpr double kT0Kelvin = 290.0;

/// Convert a linear power ratio to decibels. Ratios <= 0 map to -infinity.
[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Convert decibels to a linear power ratio.
[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Convert watts to dBm.
[[nodiscard]] inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts * 1e3);
}

/// Convert dBm to watts.
[[nodiscard]] inline double dbm_to_watts(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0) * 1e-3;
}

/// Convert a field (voltage-like) ratio to dB (20 log10).
[[nodiscard]] inline double amplitude_to_db(double ratio) noexcept {
  return 20.0 * std::log10(ratio);
}

/// Convert dB to a field (voltage-like) ratio.
[[nodiscard]] inline double db_to_amplitude(double db) noexcept {
  return std::pow(10.0, db / 20.0);
}

/// Wavelength [m] of a carrier at `freq_hz`.
[[nodiscard]] inline double wavelength_m(double freq_hz) noexcept {
  return kSpeedOfLight / freq_hz;
}

/// Thermal noise power [dBm] in `bandwidth_hz` at the reference temperature.
/// kTB = -174 dBm/Hz + 10 log10(B).
[[nodiscard]] inline double thermal_noise_dbm(double bandwidth_hz) noexcept {
  return watts_to_dbm(kBoltzmann * kT0Kelvin * bandwidth_hz);
}

/// Sum two powers expressed in dB-like units (e.g. combine signal floors).
[[nodiscard]] inline double power_sum_db(double a_db, double b_db) noexcept {
  return ratio_to_db(db_to_ratio(a_db) + db_to_ratio(b_db));
}

// Frequency literals: 1_MHz, 90_kHz, 2_GHz (integral) for readable tables.
namespace literals {
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(unsigned long long v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_km(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_km(long double v) { return static_cast<double>(v) * 1e3; }
}  // namespace literals

/// Clamp an angle in degrees to [0, 360).
[[nodiscard]] inline double wrap_degrees(double deg) noexcept {
  double d = std::fmod(deg, 360.0);
  if (d < 0) d += 360.0;
  return d;
}

/// Smallest absolute angular difference between two azimuths, in [0, 180].
[[nodiscard]] inline double angular_distance_deg(double a, double b) noexcept {
  double d = std::fabs(wrap_degrees(a) - wrap_degrees(b));
  return d > 180.0 ? 360.0 - d : d;
}

[[nodiscard]] inline constexpr double deg_to_rad(double deg) noexcept {
  return deg * kPi / 180.0;
}

[[nodiscard]] inline constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

}  // namespace speccal::util
