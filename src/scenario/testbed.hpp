// The paper's experiment testbed, reconstructed.
//
// Three sensor sites in one urban block (paper §3.1, Figure 1):
//   (1) kRooftop — 6th-floor rooftop, open field of view to the west,
//       rooftop structures screening the other directions.
//   (2) kWindow  — 5th floor behind a (coated) window facing the open
//       sector; buildings left/right/behind.
//   (3) kIndoor  — 5th-floor interior, >= 8 m from windows.
// Five cellular towers 500-1000 m away (downlinks 731 / 1970 / 2145 /
// 2660 / 2680 MHz — Figure 2/3) and six ATSC stations on the paper's
// Figure-4 channels (213 / 473 / 521 / 545 / 587 / 605 MHz) within 50 km,
// with the 521 MHz tower deliberately inside the window's field of view to
// reproduce the Figure-4 anomaly.
//
// Everything returned here is deterministic; experiments differ only via
// the seed passed to make_sky / attach-node RNGs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "calib/pipeline.hpp"
#include "prop/obstruction.hpp"
#include "sdr/antenna.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"

namespace speccal::scenario {

enum class Site { kRooftop, kWindow, kIndoor };

[[nodiscard]] std::string site_name(Site site);

/// All locations sit in this block; the sky and towers are placed
/// relative to it.
[[nodiscard]] geo::Geodetic testbed_origin() noexcept;

/// Per-site receiver description. The obstruction map and antenna are
/// owned by the returned object; keep it alive while the node runs.
struct SiteSetup {
  Site site{};
  geo::Geodetic position;
  std::shared_ptr<prop::ObstructionMap> obstructions;
  std::shared_ptr<sdr::AntennaModel> antenna;
  std::shared_ptr<prop::FadingModel> fading;

  [[nodiscard]] sdr::RxEnvironment rx_environment() const noexcept {
    return sdr::RxEnvironment{position, obstructions.get(), fading.get(),
                              antenna.get()};
  }
};

[[nodiscard]] SiteSetup make_site(Site site, std::uint64_t seed = 42);

/// The five towers of Figure 2 (all inside the rooftop's open sector, as
/// the paper's uniformly-excellent rooftop RSRP implies).
[[nodiscard]] cellular::CellDatabase make_cell_database();

/// The six ATSC stations of Figure 4.
[[nodiscard]] std::vector<sdr::EmitterConfig> make_tv_stations();

/// Simulated sky around the testbed (paper: aircraft within ~100 km).
[[nodiscard]] std::shared_ptr<airtraffic::SkySimulator> make_sky(
    std::uint64_t seed, std::size_t aircraft_count = 70);

/// Fully-wired world model for the calibration pipeline.
[[nodiscard]] calib::WorldModel make_world(std::uint64_t seed,
                                           std::size_t aircraft_count = 70);

/// A ready-to-calibrate node at a site: simulated SDR with ADS-B and TV
/// sources attached. The SiteSetup must outlive the device.
[[nodiscard]] std::unique_ptr<sdr::SimulatedSdr> make_node(
    const SiteSetup& site, const calib::WorldModel& world, std::uint64_t seed);

/// Self-contained variant for fleet jobs: the returned device co-owns the
/// site models it measures through (obstructions, antenna, fading), so a
/// `calib::FleetJob::make_device` factory can hand it off with no external
/// lifetime to manage. Built entirely from (site, world, seed), it makes
/// parallel and serial fleet runs bitwise-identical.
[[nodiscard]] std::unique_ptr<sdr::Device> make_owned_node(
    Site site, const calib::WorldModel& world, std::uint64_t seed);

/// make_owned_node with additional RF sources on the air at this node —
/// how the adversary scenario pack (scenario/adversary.hpp) injects
/// jammers, spoofers and rogue towers into a fleet factory. An empty list
/// is byte-identical to the plain overload.
[[nodiscard]] std::unique_ptr<sdr::Device> make_owned_node(
    Site site, const calib::WorldModel& world, std::uint64_t seed,
    const std::vector<std::shared_ptr<sdr::SignalSource>>& extra_sources);

/// Paper Figure-4 channel list (RF channels for 213..605 MHz).
[[nodiscard]] std::vector<int> figure4_channels();

}  // namespace speccal::scenario
