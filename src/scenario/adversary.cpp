#include "scenario/adversary.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "adsb/ppm.hpp"
#include "airtraffic/adsb_source.hpp"
#include "cellular/bands.hpp"
#include "cellular/pss.hpp"
#include "dsp/nco.hpp"
#include "geo/wgs84.hpp"
#include "prop/linkbudget.hpp"
#include "scenario/testbed.hpp"
#include "sdr/emitter.hpp"
#include "tv/channels.hpp"
#include "util/units.hpp"

namespace speccal::scenario {

const char* to_string(AdversaryKind kind) noexcept {
  switch (kind) {
    case AdversaryKind::kWidebandJammer: return "wideband-jammer";
    case AdversaryKind::kSweptJammer: return "swept-jammer";
    case AdversaryKind::kSpuriousCw: return "spurious-cw";
    case AdversaryKind::kIntermodPair: return "intermod-pair";
    case AdversaryKind::kGhostAdsb: return "ghost-adsb";
    case AdversaryKind::kRoguePss: return "rogue-pss";
  }
  return "?";
}

namespace {

/// Received power through the full site model, the FixedEmitterSource
/// link convention: free-space large-scale, obstruction screens, antenna
/// azimuth gain and per-emitter fading all included.
double received_dbm(const sdr::RxEnvironment& rx, const geo::Geodetic& tx,
                    double freq_hz, double eirp_dbm, std::uint64_t emitter_id) {
  prop::LinkInput link;
  link.transmitter = tx;
  link.receiver = rx.position;
  link.freq_hz = freq_hz;
  link.tx_power_dbm = eirp_dbm;
  link.emitter_id = emitter_id;
  if (rx.antenna != nullptr)
    link.rx_antenna_gain_dbi =
        rx.antenna->gain_dbi(freq_hz, geo::bearing_deg(rx.position, tx));
  return prop::evaluate_link(link, prop::LinkParams{}, rx.obstructions, rx.fading)
      .rx_power_dbm;
}

/// Bare carrier — the "birdie" of a faulty LO, or one leg of a
/// passive-intermod product pair. Coherent by construction: its lag-1
/// autocorrelation is ~1, which is how the anomaly detector tells it from
/// a jammer of the same strength.
class CwToneSource final : public sdr::SignalSource {
 public:
  CwToneSource(std::uint64_t emitter_id, geo::Geodetic position, double freq_hz,
               double eirp_dbm) noexcept
      : emitter_id_(emitter_id), position_(position), freq_hz_(freq_hz),
        eirp_dbm_(eirp_dbm) {}

  void render(const sdr::CaptureContext& ctx,
              std::span<dsp::Sample> accum) override {
    const double offset = freq_hz_ - ctx.center_freq_hz;
    if (std::abs(offset) > 0.49 * ctx.sample_rate_hz) return;
    const double rx_dbm = received_dbm(*ctx.rx, position_, freq_hz_, eirp_dbm_,
                                       emitter_id_);
    const double mw = util::dbm_to_watts(rx_dbm) * 1e3;
    if (mw < 1e-18) return;
    dsp::Nco nco(offset, ctx.sample_rate_hz);
    // Deterministic start phase tied to capture time (emitter pilot
    // convention): renders stay continuous across adjacent buffers.
    nco.set_phase(2.0 * util::kPi * std::fmod(offset * ctx.start_time_s, 1.0));
    nco.add_tone(accum, static_cast<float>(std::sqrt(mw)));
  }

 private:
  std::uint64_t emitter_id_;
  geo::Geodetic position_;
  double freq_hz_;
  double eirp_dbm_;
};

/// Stepping sweeper: dwells `dwell_s` on each target centre in turn,
/// chirping across `span_hz` within the dwell. A 20 ms channel capture
/// sees a deterministic `dwell / (dwell * centres)` duty of constant-
/// envelope chirp — several channels raised, none coherent (lag-1 rho
/// stays low), the classic swept-jammer signature.
class SweptJammerSource final : public sdr::SignalSource {
 public:
  SweptJammerSource(std::uint64_t emitter_id, geo::Geodetic position,
                    std::vector<double> centers_hz, double span_hz,
                    double dwell_s, double eirp_dbm) noexcept
      : emitter_id_(emitter_id), position_(position),
        centers_hz_(std::move(centers_hz)), span_hz_(span_hz),
        dwell_s_(dwell_s), eirp_dbm_(eirp_dbm) {}

  void render(const sdr::CaptureContext& ctx,
              std::span<dsp::Sample> accum) override {
    if (centers_hz_.empty() || ctx.sample_rate_hz <= 0.0) return;
    // Out of the sweep's reach entirely? Nothing to add.
    double lo = centers_hz_.front(), hi = centers_hz_.front();
    for (double c : centers_hz_) {
      lo = std::min(lo, c - span_hz_ / 2.0);
      hi = std::max(hi, c + span_hz_ / 2.0);
    }
    const double half = ctx.sample_rate_hz / 2.0;
    if (hi < ctx.center_freq_hz - half || lo > ctx.center_freq_hz + half) return;

    const double mid = 0.5 * (lo + hi);
    const double rx_dbm =
        received_dbm(*ctx.rx, position_, mid, eirp_dbm_, emitter_id_);
    const double mw = util::dbm_to_watts(rx_dbm) * 1e3;
    if (mw < 1e-18) return;
    const float amp = static_cast<float>(std::sqrt(mw));

    const double cycle_s = dwell_s_ * static_cast<double>(centers_hz_.size());
    const double dt = 1.0 / ctx.sample_rate_hz;
    double phase = 0.0;  // absolute chirp phase is immaterial; power and
                         // rho only see the in-dwell frequency ramp
    for (std::size_t i = 0; i < accum.size(); ++i) {
      const double t = ctx.start_time_s + static_cast<double>(i) * dt;
      const double tc = std::fmod(t, cycle_s);
      const auto k = std::min(centers_hz_.size() - 1,
                              static_cast<std::size_t>(tc / dwell_s_));
      const double u = (tc - static_cast<double>(k) * dwell_s_) / dwell_s_;
      const double f_inst = centers_hz_[k] - span_hz_ / 2.0 + span_hz_ * u;
      const double offset = f_inst - ctx.center_freq_hz;
      if (std::abs(offset) > 0.49 * ctx.sample_rate_hz) continue;
      phase += 2.0 * util::kPi * offset * dt;
      if (phase > 64.0 * util::kPi) phase = std::fmod(phase, 2.0 * util::kPi);
      if (phase < -64.0 * util::kPi) phase = std::fmod(phase, 2.0 * util::kPi);
      accum[i] += dsp::Sample(static_cast<float>(std::cos(phase)),
                              static_cast<float>(std::sin(phase))) * amp;
    }
  }

 private:
  std::uint64_t emitter_id_;
  geo::Geodetic position_;
  std::vector<double> centers_hz_;
  double span_hz_;
  double dwell_s_;
  double eirp_dbm_;
};

/// UHF channels the jammers target (channel 13 stays clean: sweeping into
/// VHF would triple the sweep span for one more channel).
std::vector<double> uhf_target_centers() {
  std::vector<double> centers;
  for (int ch : {14, 22, 26, 33, 36})
    centers.push_back(tv::channel_center_hz(ch).value());
  return centers;
}

/// A constellation of aircraft that do not exist: CRC-valid DF17 frames
/// from spoofed positions 2-10 km out, through the normal 1090ES
/// modulator. Close and strong so the 1090 band power rises well above
/// the real sky's contribution.
std::shared_ptr<sdr::SignalSource> ghost_adsb_source(util::Rng rng,
                                                     double tx_power_dbm) {
  geo::Geodetic center = testbed_origin();
  center.alt_m = 0.0;
  constexpr std::size_t kGhosts = 64;
  std::vector<airtraffic::AircraftSpec> fleet;
  fleet.reserve(kGhosts);
  for (std::size_t i = 0; i < kGhosts; ++i) {
    airtraffic::AircraftSpec spec;
    spec.icao = static_cast<std::uint32_t>(0xADB000 + i);
    spec.callsign = "GHOST" + std::to_string(i / 10) + std::to_string(i % 10);
    spec.start = geo::destination(center, rng.uniform(0.0, 360.0),
                                  rng.uniform(2000.0, 10000.0));
    spec.start.alt_m = rng.uniform(2500.0, 11000.0);
    spec.track_deg = rng.uniform(0.0, 360.0);
    spec.ground_speed_kt = rng.uniform(260.0, 480.0);
    spec.tx_power_dbm = tx_power_dbm;
    spec.cfo_hz = rng.uniform(-1500.0, 1500.0);
    spec.position_phase_s = rng.uniform(0.0, 0.5);
    spec.velocity_phase_s = rng.uniform(0.0, 0.5);
    spec.ident_phase_s = rng.uniform(0.0, 5.0);
    spec.all_call_phase_s = rng.uniform(0.0, 1.0);
    fleet.push_back(std::move(spec));
  }
  return std::make_shared<airtraffic::AdsbSignalSource>(
      std::make_shared<airtraffic::SkySimulator>(center, std::move(fleet)));
}

/// An LTE cell that is not in the tower database, broadcasting a
/// standards-correct PSS on tower 3's downlink carrier. The PSS searcher
/// syncs to it like any macro; only the fleet's consensus knows the band
/// should not be this hot here.
std::shared_ptr<sdr::SignalSource> rogue_pss_source(geo::Geodetic position,
                                                    double eirp_dbm,
                                                    util::Rng rng) {
  constexpr double kRogueFreqHz = 2145e6;
  const auto earfcn = cellular::dl_freq_to_earfcn(4, kRogueFreqHz);
  if (!earfcn) throw std::logic_error("rogue PSS frequency outside band 4");
  cellular::Cell cell = cellular::make_cell(9006, "RogueCell", 4, *earfcn,
                                            position, eirp_dbm, 10e6, 499);
  return std::make_shared<cellular::CellSignalSource>(cell, prop::LinkParams{},
                                                      rng);
}

struct KindDefaults {
  double eirp_dbm;
  double range_m;
};

/// Built-in tunings: strong enough that the weakest testbed site
/// (indoor, ~26-44 dB of omni loss) still clears the detector's 6 dB
/// residual threshold, weak enough that the rooftop's ADC is not pinned
/// at the TV meter's fixed 20 dB gain.
KindDefaults defaults_for(AdversaryKind kind) noexcept {
  switch (kind) {
    case AdversaryKind::kWidebandJammer: return {34.0, 150.0};
    case AdversaryKind::kSweptJammer: return {40.0, 150.0};
    case AdversaryKind::kSpuriousCw: return {30.0, 150.0};
    case AdversaryKind::kIntermodPair: return {33.0, 150.0};
    case AdversaryKind::kGhostAdsb: return {57.0, 0.0};  // per-aircraft power
    case AdversaryKind::kRoguePss: return {36.0, 120.0};
  }
  return {30.0, 150.0};
}

}  // namespace

void AdversaryProfile::validate() const {
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const auto where = [n](std::size_t a) {
      return "AdversaryProfile.nodes[" + std::to_string(n) + "].adversaries[" +
             std::to_string(a) + "]";
    };
    if (nodes[n].adversaries.empty())
      throw std::invalid_argument("AdversaryProfile.nodes[" +
                                  std::to_string(n) +
                                  "].adversaries must not be empty");
    for (std::size_t a = 0; a < nodes[n].adversaries.size(); ++a) {
      const AdversarySpec& spec = nodes[n].adversaries[a];
      if (!std::isnan(spec.eirp_dbm) &&
          (spec.eirp_dbm < -30.0 || spec.eirp_dbm > 70.0))
        throw std::invalid_argument(where(a) +
                                    ".eirp_dbm must be in [-30, 70]");
      if (spec.range_m < 0.0 || spec.range_m > 100e3)
        throw std::invalid_argument(where(a) +
                                    ".range_m must be in [0, 100000]");
      if (spec.azimuth_deg < 0.0 || spec.azimuth_deg >= 360.0)
        throw std::invalid_argument(where(a) +
                                    ".azimuth_deg must be in [0, 360)");
    }
  }
}

const std::vector<AdversarySpec>* AdversaryProfile::adversaries_for(
    std::size_t node_index) const noexcept {
  for (const NodeAdversaries& n : nodes)
    if (n.index == node_index && !n.adversaries.empty()) return &n.adversaries;
  return nullptr;
}

std::vector<std::shared_ptr<sdr::SignalSource>> AdversaryProfile::sources_for(
    std::size_t node_index) const {
  std::vector<std::shared_ptr<sdr::SignalSource>> out;
  const std::vector<AdversarySpec>* specs = adversaries_for(node_index);
  if (specs == nullptr) return out;

  // Attack waveform state is a stable function of (profile seed, node
  // index) — the fault-injector seeding convention — so rebuilding a
  // node's device on any worker thread reproduces the identical attack.
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ull * (node_index + 1));
  const util::Rng node_rng(util::splitmix64(state));
  std::uint64_t stream = 1;

  const geo::Geodetic origin = testbed_origin();
  for (const AdversarySpec& spec : *specs) {
    const KindDefaults defaults = defaults_for(spec.kind);
    const double eirp =
        std::isnan(spec.eirp_dbm) ? defaults.eirp_dbm : spec.eirp_dbm;
    const double range = spec.range_m > 0.0 ? spec.range_m : defaults.range_m;
    geo::Geodetic pos = geo::destination(origin, spec.azimuth_deg,
                                         std::max(1.0, range));
    pos.alt_m = 12.0;  // street-level mast, below every site
    const std::uint64_t emitter_id =
        9100 + 10 * static_cast<std::uint64_t>(spec.kind) + stream;

    switch (spec.kind) {
      case AdversaryKind::kWidebandJammer: {
        // 148 MHz of shaped noise centred at 539 MHz: covers the five UHF
        // Figure-4 channels (473..605 MHz) in one band.
        sdr::EmitterConfig cfg;
        cfg.emitter_id = emitter_id;
        cfg.position = pos;
        cfg.carrier_hz = 539e6;
        cfg.bandwidth_hz = 148e6;
        cfg.eirp_dbm = eirp;
        cfg.pilot_offset_hz.reset();
        out.push_back(std::make_shared<sdr::FixedEmitterSource>(
            cfg, node_rng.fork(stream)));
        break;
      }
      case AdversaryKind::kSweptJammer:
        out.push_back(std::make_shared<SweptJammerSource>(
            emitter_id, pos, uhf_target_centers(), 6e6, 1e-3, eirp));
        break;
      case AdversaryKind::kSpuriousCw:
        // Parked 250 kHz above the channel-33 centre.
        out.push_back(std::make_shared<CwToneSource>(
            emitter_id, pos, tv::channel_center_hz(33).value() + 250e3, eirp));
        break;
      case AdversaryKind::kIntermodPair:
        // Third-order products of parents at 517.31 / 561.31 MHz:
        // 2*f1 - f2 = 473.31 MHz (channel 14), 2*f2 - f1 = 605.31 MHz
        // (channel 36). The parents themselves fall outside every
        // measured channel, as a real PIM fault's would.
        out.push_back(
            std::make_shared<CwToneSource>(emitter_id, pos, 473.31e6, eirp));
        out.push_back(std::make_shared<CwToneSource>(emitter_id + 1, pos,
                                                     605.31e6, eirp));
        break;
      case AdversaryKind::kGhostAdsb:
        out.push_back(ghost_adsb_source(node_rng.fork(stream), eirp));
        break;
      case AdversaryKind::kRoguePss:
        pos.alt_m = 18.0;
        out.push_back(rogue_pss_source(pos, eirp, node_rng.fork(stream)));
        break;
    }
    ++stream;
  }
  return out;
}

namespace {

/// Minimal JSON reader for adversary profiles, the fault-profile parser
/// convention (sdr/fault.cpp): the library's JSON support stays
/// write-only; operator-supplied scripts are the one place a parse is
/// required, so this is a private, schema-sized subset.
class ProfileParser {
 public:
  explicit ProfileParser(std::string_view text) : text_(text) {}

  AdversaryProfile parse() {
    AdversaryProfile profile;
    profile.name = "custom";
    skip_ws();
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "name") profile.name = parse_string();
      else if (key == "seed") profile.seed = static_cast<std::uint64_t>(parse_number());
      else if (key == "nodes") parse_nodes(profile);
      else fail("unknown profile key '" + key + "'");
      skip_ws();
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after profile");
    return profile;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("adversary profile: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') fail("escapes are not supported in adversary profiles");
      out.push_back(c);
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return v;
  }

  AdversaryKind parse_kind() {
    const std::string s = parse_string();
    if (s == "wideband-jammer") return AdversaryKind::kWidebandJammer;
    if (s == "swept-jammer") return AdversaryKind::kSweptJammer;
    if (s == "spurious-cw") return AdversaryKind::kSpuriousCw;
    if (s == "intermod-pair") return AdversaryKind::kIntermodPair;
    if (s == "ghost-adsb") return AdversaryKind::kGhostAdsb;
    if (s == "rogue-pss") return AdversaryKind::kRoguePss;
    fail("unknown kind '" + s +
         "' (wideband-jammer|swept-jammer|spurious-cw|intermod-pair|"
         "ghost-adsb|rogue-pss)");
  }

  AdversarySpec parse_adversary() {
    AdversarySpec spec;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "kind") spec.kind = parse_kind();
      else if (key == "eirp_dbm") spec.eirp_dbm = parse_number();
      else if (key == "range_m") spec.range_m = parse_number();
      else if (key == "azimuth_deg") spec.azimuth_deg = parse_number();
      else fail("unknown adversary key '" + key + "'");
      skip_ws();
    }
    return spec;
  }

  void parse_nodes(AdversaryProfile& profile) {
    expect('[');
    if (try_consume(']')) return;
    for (;;) {
      AdversaryProfile::NodeAdversaries node;
      expect('{');
      bool first = true;
      while (!try_consume('}')) {
        if (!first) expect(',');
        first = false;
        const std::string key = parse_string();
        expect(':');
        if (key == "index") {
          node.index = static_cast<std::size_t>(parse_number());
        } else if (key == "adversaries") {
          expect('[');
          if (!try_consume(']')) {
            for (;;) {
              node.adversaries.push_back(parse_adversary());
              if (try_consume(']')) break;
              expect(',');
            }
          }
        } else {
          fail("unknown node key '" + key + "'");
        }
        skip_ws();
      }
      profile.nodes.push_back(std::move(node));
      if (try_consume(']')) return;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

AdversaryProfile single_victim(const char* name, std::uint64_t seed,
                               AdversaryKind kind, std::size_t index) {
  AdversaryProfile profile;
  profile.name = name;
  profile.seed = seed;
  profile.nodes.push_back({index, {AdversarySpec{kind}}});
  return profile;
}

/// "mixed": every adversary kind at once, six victims. All indices < 20
/// so the profile scripts correctly on any fleet of 20+ nodes (the CI
/// smoke runs it on 200).
AdversaryProfile mixed_profile() {
  AdversaryProfile profile;
  profile.name = "mixed";
  profile.seed = 4242;
  profile.nodes.push_back({2, {AdversarySpec{AdversaryKind::kWidebandJammer}}});
  profile.nodes.push_back({5, {AdversarySpec{AdversaryKind::kSweptJammer}}});
  profile.nodes.push_back({7, {AdversarySpec{AdversaryKind::kSpuriousCw}}});
  profile.nodes.push_back({11, {AdversarySpec{AdversaryKind::kIntermodPair}}});
  profile.nodes.push_back({13, {AdversarySpec{AdversaryKind::kGhostAdsb}}});
  profile.nodes.push_back({17, {AdversarySpec{AdversaryKind::kRoguePss}}});
  return profile;
}

}  // namespace

AdversaryProfile make_adversary_profile(std::string_view name_or_json) {
  const auto validated = [](AdversaryProfile profile) {
    profile.validate();
    return profile;
  };
  const auto non_ws = name_or_json.find_first_not_of(" \t\r\n");
  if (non_ws != std::string_view::npos && name_or_json[non_ws] == '{')
    return validated(ProfileParser(name_or_json).parse());

  if (name_or_json == "none") return AdversaryProfile{};
  if (name_or_json == "jammer")
    return validated(single_victim("jammer", 101, AdversaryKind::kWidebandJammer, 3));
  if (name_or_json == "swept")
    return validated(single_victim("swept", 102, AdversaryKind::kSweptJammer, 3));
  if (name_or_json == "cw")
    return validated(single_victim("cw", 103, AdversaryKind::kSpuriousCw, 3));
  if (name_or_json == "intermod")
    return validated(single_victim("intermod", 104, AdversaryKind::kIntermodPair, 3));
  if (name_or_json == "ghost-adsb")
    return validated(single_victim("ghost-adsb", 105, AdversaryKind::kGhostAdsb, 3));
  if (name_or_json == "rogue-pss")
    return validated(single_victim("rogue-pss", 106, AdversaryKind::kRoguePss, 3));
  if (name_or_json == "mixed") return validated(mixed_profile());
  throw std::invalid_argument(
      "unknown adversary profile '" + std::string(name_or_json) +
      "' (built-ins: none, jammer, swept, cw, intermod, ghost-adsb, "
      "rogue-pss, mixed; or an inline JSON document)");
}

std::vector<calib::WatchBand> standard_watchlist() {
  std::vector<calib::WatchBand> bands;
  // 1090ES at the decoder's rate, where AdsbSignalSource renders. The
  // longer capture averages the bursty squitter duty cycle down to a
  // stable band power.
  bands.push_back({"adsb-1090", 1090e6, adsb::kPpmSampleRateHz, 0.1});
  // The five testbed downlink centres at the LTE search rate. Clean fleet
  // devices carry no cell waveform sources, so these captures are pure
  // noise floor — any consistent rise is a rogue transmitter.
  for (double mhz : {731.0, 1970.0, 2145.0, 2660.0, 2680.0})
    bands.push_back({"cell-" + std::to_string(static_cast<int>(mhz)), mhz * 1e6,
                     cellular::kSearchRateHz, 0.02});
  return bands;
}

}  // namespace speccal::scenario
