// RF-level adversary scenario pack.
//
// Each adversary is a real SignalSource attached to a victim node's
// simulated front end, so the attack enters through the same render path
// as every legitimate signal — link budget, obstructions, antenna pattern,
// fading and ADC quantization all apply. Nothing downstream of the SDR is
// told an attack is present; the anomaly detector (calib/anomaly.hpp) has
// to find it in the measurements, exactly as a deployed fleet would.
//
// The pack covers the interference taxonomy a crowd-sourced spectrum
// network worries about (DESIGN.md §16):
//   * kWidebandJammer — 148 MHz of shaped noise burying five of the six
//     Figure-4 ATSC channels at once.
//   * kSweptJammer    — a stepping chirp that dwells on each UHF channel
//     in turn (1 ms dwell, 5 ms cycle), the classic sweeper signature:
//     several channels raised, none coherent.
//   * kSpuriousCw     — a bare carrier parked inside channel 33, the
//     "birdie" of a faulty LO or an unshielded clock harmonic.
//   * kIntermodPair   — the two third-order products 2f1-f2 / 2f2-f1 of a
//     passive-intermod source, landing in channels 14 and 36 (parents at
//     517.31 / 561.31 MHz, outside every measured channel).
//   * kGhostAdsb      — a constellation of CRC-valid DF17 aircraft that do
//     not exist, transmitted through the normal 1090ES modulator at
//     spoofed positions (an SDR spoofer on a rooftop).
//   * kRoguePss       — an LTE cell that is not in the tower database,
//     broadcasting a standards-correct PSS on a carrier downlink.
//
// AdversaryProfile scripts which fleet node hears which adversaries, from
// a built-in name or an inline JSON document (the fault-profile
// convention, sdr/fault.hpp), and is fully seeded: the same profile + the
// same fleet produce bit-identical attacks. Profiles compose with fault
// profiles — a node can be both flaky and jammed.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "calib/pipeline.hpp"
#include "sdr/sim.hpp"

namespace speccal::scenario {

enum class AdversaryKind : std::uint8_t {
  kWidebandJammer,
  kSweptJammer,
  kSpuriousCw,
  kIntermodPair,
  kGhostAdsb,
  kRoguePss,
};

[[nodiscard]] const char* to_string(AdversaryKind kind) noexcept;

/// One scripted attack on one node. Geometry and power default per kind
/// (eirp_dbm = NaN, range_m = 0 select the built-in tuning, which is
/// sized to clear the detector's residual threshold through every testbed
/// site's obstruction map without pinning the ADC).
struct AdversarySpec {
  AdversaryKind kind = AdversaryKind::kSpuriousCw;
  /// Transmit EIRP [dBm]. For kGhostAdsb this is the per-aircraft
  /// transponder power. NaN = kind default.
  double eirp_dbm = std::numeric_limits<double>::quiet_NaN();
  /// Emitter distance from the testbed origin [m]; 0 = kind default.
  /// (kGhostAdsb ignores it: the ghost fleet is placed 2-10 km out.)
  double range_m = 0.0;
  /// Bearing from the testbed origin. The default sits in the rooftop's
  /// open sector and the window's field of view.
  double azimuth_deg = 270.0;
};

/// Per-fleet adversary script. Node indices refer to positions in the
/// fleet job list, as in sdr::FaultProfile.
struct AdversaryProfile {
  std::string name = "none";
  std::uint64_t seed = 1;

  struct NodeAdversaries {
    std::size_t index = 0;
    std::vector<AdversarySpec> adversaries;
  };
  std::vector<NodeAdversaries> nodes;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }

  /// Throws std::invalid_argument naming the field (the shared
  /// config-validation convention, DESIGN.md §13). make_adversary_profile()
  /// calls this on every profile it returns.
  void validate() const;

  [[nodiscard]] const std::vector<AdversarySpec>* adversaries_for(
      std::size_t node_index) const noexcept;

  /// Fresh RF sources realizing this node's scripted attacks (empty vector
  /// when the node is not scripted). Waveform state is derived from the
  /// *profile* seed — deterministic per (profile, node index), independent
  /// of the node's own seed and of which worker thread builds the device.
  /// Feed the result to scenario::make_owned_node's extra_sources overload.
  [[nodiscard]] std::vector<std::shared_ptr<sdr::SignalSource>> sources_for(
      std::size_t node_index) const;
};

/// Resolve `--anomaly-profile` input: a built-in name or, when the string
/// starts with '{', an inline JSON document:
///   {"name":"custom","seed":7,"nodes":[{"index":3,"adversaries":[
///     {"kind":"spurious-cw","eirp_dbm":30,"range_m":150,"azimuth_deg":270}]}]}
/// Built-ins: "none", "jammer", "swept", "cw", "intermod", "ghost-adsb",
/// "rogue-pss" (one victim each) and "mixed" (six victims, all kinds, node
/// indices < 20 so any fleet of 20+ works). Throws std::invalid_argument
/// on an unknown name or malformed document.
[[nodiscard]] AdversaryProfile make_adversary_profile(
    std::string_view name_or_json);

/// The watchlist the anomaly scan stage should capture alongside the TV
/// sweep: 1090ES (at the decoder's 2 Msps, where the ADS-B source renders)
/// plus the five testbed downlink centres at the LTE search rate. Labels
/// follow the "adsb-*" / "cell-*" convention the anomaly detector's
/// band-typing rules key on.
[[nodiscard]] std::vector<calib::WatchBand> standard_watchlist();

}  // namespace speccal::scenario
