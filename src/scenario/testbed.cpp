#include "scenario/testbed.hpp"

#include <stdexcept>

#include "airtraffic/adsb_source.hpp"
#include "cellular/bands.hpp"
#include "tv/channels.hpp"
#include "util/units.hpp"

namespace speccal::scenario {

using namespace util::literals;  // _MHz, _km

std::string site_name(Site site) {
  switch (site) {
    case Site::kRooftop: return "rooftop";
    case Site::kWindow: return "behind-window";
    case Site::kIndoor: return "indoor";
  }
  return "?";
}

geo::Geodetic testbed_origin() noexcept {
  // Urban block, Berkeley-like latitude.
  return geo::Geodetic{37.8716, -122.2727, 16.0};
}

namespace {
/// Open sector shared by the rooftop view and the window orientation.
constexpr double kOpenStartDeg = 235.0;
constexpr double kOpenEndDeg = 335.0;     // rooftop: 100 degrees open to the west
constexpr double kWindowStartDeg = 250.0;
constexpr double kWindowEndDeg = 290.0;   // window: 40 degree slice of the same
}  // namespace

SiteSetup make_site(Site site, std::uint64_t seed) {
  SiteSetup setup;
  setup.site = site;
  setup.antenna = std::make_shared<sdr::AntennaModel>(sdr::AntennaModel::wideband_700_2700());
  setup.fading = std::make_shared<prop::FadingModel>(seed, 3.0, 1.5);
  setup.obstructions = std::make_shared<prop::ObstructionMap>();

  const geo::Geodetic origin = testbed_origin();
  switch (site) {
    case Site::kRooftop: {
      // 6th-floor rooftop: ~20 m up, open to the west, structures elsewhere.
      setup.position = geo::destination(origin, 0.0, 10.0);
      setup.position.alt_m = 20.0;
      prop::Screen structures;
      structures.sector = {kOpenEndDeg, kOpenStartDeg};  // wraps through north
      structures.loss_at_1ghz_db = 38.0;
      structures.loss_slope_db_per_decade = 8.0;
      structures.max_elevation_deg = 35.0;  // overhead aircraft clear the screens
      structures.label = "rooftop structures";
      setup.obstructions->add_screen(structures);
      break;
    }
    case Site::kWindow: {
      // 5th floor behind a coated window facing the open sector.
      setup.position = geo::destination(origin, 90.0, 20.0);
      setup.position.alt_m = 16.0;
      prop::Screen glass;
      glass.sector = {kWindowStartDeg, kWindowEndDeg};
      glass.loss_at_1ghz_db = 10.0;
      glass.loss_slope_db_per_decade = 40.0;  // low-E coating: brutal above 2 GHz
      glass.label = "coated window";
      setup.obstructions->add_screen(glass);
      prop::Screen walls;
      walls.sector = {kWindowEndDeg, kWindowStartDeg};  // everything else
      walls.loss_at_1ghz_db = 38.0;
      // VHF diffracts around and penetrates masonry far better than L/S
      // band; the steep slope keeps sub-600 MHz usable (paper conclusion)
      // while ADS-B and mid-band stay blocked.
      walls.loss_slope_db_per_decade = 35.0;
      walls.label = "building walls";
      setup.obstructions->add_screen(walls);
      break;
    }
    case Site::kIndoor: {
      // 5th-floor interior, >= 8 m from any window.
      setup.position = geo::destination(origin, 180.0, 15.0);
      setup.position.alt_m = 16.0;
      setup.obstructions->set_omni_loss(34.0, 30.0);
      break;
    }
  }
  return setup;
}

cellular::CellDatabase make_cell_database() {
  const geo::Geodetic origin = testbed_origin();
  cellular::CellDatabase db;

  // Paper Figure 2/3: five towers, 500-1000 m out, downlink centres
  // 731 / 1970 / 2145 / 2660 / 2680 MHz. All sit in the rooftop's open
  // sector; towers 4 and 5 fall outside the window's narrow view.
  struct TowerPlan {
    int band;
    double freq_hz;
    double azimuth_deg;
    double range_m;
    double eirp_dbm;
    const char* op;
  };
  const TowerPlan plans[] = {
      {12, 731_MHz, 250.0, 900.0, 62.0, "CarrierA"},   // tower 1, low band
      {2, 1970_MHz, 268.0, 800.0, 61.0, "CarrierB"},   // tower 2
      {4, 2145_MHz, 285.0, 600.0, 61.0, "CarrierA"},   // tower 3
      {7, 2660_MHz, 310.0, 700.0, 60.0, "CarrierC"},   // tower 4
      {7, 2680_MHz, 322.0, 1000.0, 60.0, "CarrierC"},  // tower 5
  };
  std::uint64_t id = 1;
  for (const auto& plan : plans) {
    const auto earfcn = cellular::dl_freq_to_earfcn(plan.band, plan.freq_hz);
    if (!earfcn) throw std::logic_error("testbed tower frequency outside band");
    geo::Geodetic pos = geo::destination(origin, plan.azimuth_deg, plan.range_m);
    pos.alt_m = 32.0;  // macro tower radiation centre
    db.add(cellular::make_cell(id, plan.op, plan.band, *earfcn, pos, plan.eirp_dbm,
                               10e6, static_cast<int>(100 + id)));
    ++id;
  }
  return db;
}

std::vector<sdr::EmitterConfig> make_tv_stations() {
  const geo::Geodetic origin = testbed_origin();

  // Paper Figure 4 frequencies: 213 (ch 13), 473 (ch 14), 521 (ch 22),
  // 545 (ch 26), 587 (ch 33), 605 (ch 36) MHz. The 521 MHz tower sits in
  // the window's field of view — the Figure-4 anomaly.
  struct StationPlan {
    int channel;
    double azimuth_deg;
    double range_m;
    double erp_dbm;
  };
  // All stations sit in the rooftop's open west sector (the paper's
  // rooftop is the best TV site); only channel 22 also falls inside the
  // window's narrow view.
  const StationPlan plans[] = {
      {13, 240.0, 35_km, 83.0},  // 213 MHz VHF
      {14, 300.0, 40_km, 80.0},  // 473 MHz
      {22, 270.0, 30_km, 80.0},  // 521 MHz — inside the window sector
      {26, 325.0, 45_km, 80.0},  // 545 MHz
      {33, 242.0, 50_km, 81.0},  // 587 MHz
      {36, 308.0, 38_km, 80.0},  // 605 MHz
  };
  std::vector<sdr::EmitterConfig> out;
  std::uint64_t id = 100;
  for (const auto& plan : plans) {
    sdr::EmitterConfig cfg;
    cfg.emitter_id = id++;
    cfg.position = geo::destination(origin, plan.azimuth_deg, plan.range_m);
    cfg.position.alt_m = 250.0;  // broadcast mast on high terrain
    cfg.carrier_hz = tv::channel_center_hz(plan.channel).value();
    cfg.bandwidth_hz = 5.38e6;  // 8VSB occupied bandwidth
    cfg.eirp_dbm = plan.erp_dbm;
    cfg.link.model = prop::PathModel::kTwoSlope;
    cfg.link.n1 = 2.0;
    cfg.link.n2 = 3.5;
    cfg.link.breakpoint_m = 10e3;
    cfg.pilot_offset_hz = tv::kPilotOffsetFromCenterHz;
    cfg.pilot_rel_db = tv::kPilotRelDb;
    out.push_back(cfg);
  }
  return out;
}

std::shared_ptr<airtraffic::SkySimulator> make_sky(std::uint64_t seed,
                                                   std::size_t aircraft_count) {
  airtraffic::SkyConfig config;
  geo::Geodetic center = testbed_origin();
  center.alt_m = 0.0;
  config.center = center;
  config.radius_m = 120_km;
  config.aircraft_count = aircraft_count;
  return std::make_shared<airtraffic::SkySimulator>(config, seed);
}

calib::WorldModel make_world(std::uint64_t seed, std::size_t aircraft_count) {
  calib::WorldModel world;
  world.sky = make_sky(seed, aircraft_count);
  world.ground_truth_latency_s = 10.0;
  world.cells = make_cell_database();
  world.tv_channels = make_tv_stations();
  world.seed = seed;
  return world;
}

std::unique_ptr<sdr::SimulatedSdr> make_node(const SiteSetup& site,
                                             const calib::WorldModel& world,
                                             std::uint64_t seed) {
  auto device = std::make_unique<sdr::SimulatedSdr>(
      sdr::SimulatedSdr::bladerf_like_info(), site.rx_environment(),
      util::Rng(seed));
  if (world.sky)
    device->add_source(std::make_shared<airtraffic::AdsbSignalSource>(world.sky));
  // Emitter waveforms are transmitter state: they must derive from the
  // *world* seed (one shared sky/tower reality), never the per-node seed —
  // otherwise two nodes of one fleet would hear different "broadcasts" from
  // the same physical tower and fleet-consensus residuals would compare
  // noise against noise. Only the device RNG (thermal noise, quantization
  // dither) above is per-node.
  std::uint64_t stream = 1;
  for (const auto& emitter : world.tv_channels)
    device->add_source(std::make_shared<sdr::FixedEmitterSource>(
        emitter, util::Rng(world.seed).fork(stream++)));
  return device;
}

namespace {

/// Forwarding device that keeps the SiteSetup alive alongside the inner
/// SimulatedSdr (which borrows the setup's obstruction/antenna/fading
/// models through raw pointers).
class OwnedNode final : public sdr::Device {
 public:
  OwnedNode(SiteSetup setup, std::unique_ptr<sdr::SimulatedSdr> sdr)
      : setup_(std::move(setup)), sdr_(std::move(sdr)) {}

  [[nodiscard]] sdr::DeviceInfo info() const override { return sdr_->info(); }
  [[nodiscard]] geo::Geodetic position() const override { return sdr_->position(); }
  [[nodiscard]] sdr::SimControl* sim_control() noexcept override { return sdr_.get(); }
  bool tune(double f_hz, double rate_hz) override { return sdr_->tune(f_hz, rate_hz); }
  void set_gain_mode(sdr::GainMode mode) override { sdr_->set_gain_mode(mode); }
  void set_gain_db(double gain_db) override { sdr_->set_gain_db(gain_db); }
  [[nodiscard]] double gain_db() const override { return sdr_->gain_db(); }
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override {
    return sdr_->capture(count);
  }
  [[nodiscard]] double stream_time_s() const override { return sdr_->stream_time_s(); }
  [[nodiscard]] double center_freq_hz() const override { return sdr_->center_freq_hz(); }
  [[nodiscard]] double sample_rate_hz() const override { return sdr_->sample_rate_hz(); }

 private:
  SiteSetup setup_;
  std::unique_ptr<sdr::SimulatedSdr> sdr_;
};

}  // namespace

std::unique_ptr<sdr::Device> make_owned_node(Site site,
                                             const calib::WorldModel& world,
                                             std::uint64_t seed) {
  SiteSetup setup = make_site(site, seed);
  auto sdr = make_node(setup, world, seed);
  return std::make_unique<OwnedNode>(std::move(setup), std::move(sdr));
}

std::unique_ptr<sdr::Device> make_owned_node(
    Site site, const calib::WorldModel& world, std::uint64_t seed,
    const std::vector<std::shared_ptr<sdr::SignalSource>>& extra_sources) {
  SiteSetup setup = make_site(site, seed);
  auto sdr = make_node(setup, world, seed);
  for (const auto& source : extra_sources)
    if (source) sdr->add_source(source);
  return std::make_unique<OwnedNode>(std::move(setup), std::move(sdr));
}

std::vector<int> figure4_channels() { return {13, 14, 22, 26, 33, 36}; }

}  // namespace speccal::scenario
