#include "monitor/rem.hpp"

#include <cmath>

#include "util/units.hpp"

namespace speccal::monitor {

bool RadioEnvironmentMap::ingest(NodeObservation observation) {
  if (!observation.band_usable || observation.trust_weight < config_.min_trust) {
    ++rejected_;
    return false;
  }
  observations_.push_back(std::move(observation));
  return true;
}

std::optional<RemEstimate> RadioEnvironmentMap::estimate(
    const geo::Geodetic& where) const {
  double weight_sum = 0.0;
  double power_sum_db = 0.0;
  std::size_t contributors = 0;
  for (const auto& obs : observations_) {
    const double d = geo::haversine_m(where, obs.position);
    if (d > config_.max_range_m) continue;
    // IDW with a 1 m floor so a co-located node does not blow up.
    const double w =
        obs.trust_weight / std::pow(std::max(d, 1.0), config_.idw_exponent);
    weight_sum += w;
    // Interpolate in the dB domain: received-power fields are log-normal
    // (shadowing), and a linear-milliwatt mean would let a single strong
    // reading mask every poisoned weak one.
    power_sum_db += w * obs.power_dbm;
    ++contributors;
  }
  if (contributors == 0 || weight_sum <= 0.0) return std::nullopt;
  RemEstimate out;
  out.power_dbm = power_sum_db / weight_sum;
  out.total_weight = weight_sum;
  out.contributors = contributors;
  return out;
}

}  // namespace speccal::monitor
