#include "monitor/scanner.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/goertzel.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace speccal::monitor {

namespace {
[[nodiscard]] double to_dbfs(double linear) noexcept {
  return linear > 1e-20 ? 10.0 * std::log10(linear) : -200.0;
}

/// Sub-segments averaged by the comb: enough chi-squared degrees of freedom
/// that noise teeth sit within ~1 dB of each other, keeping the contrast
/// test far from its threshold on vacant hops.
constexpr std::size_t kGateSubSegments = 8;

/// Goertzel comb contrast test over the dwell prefix. True when the loudest
/// tooth clears the low-quantile tooth by min_snr_db.
[[nodiscard]] bool comb_detects_signal(std::span<const dsp::Sample> capture,
                                       const ScanGateConfig& gate, double fs) {
  const std::size_t bins = std::max<std::size_t>(4, gate.comb_bins);
  const std::size_t seg = capture.size() / kGateSubSegments;
  if (seg == 0) return true;  // too short to judge; run the full path

  std::vector<double> freqs(bins);
  for (std::size_t k = 0; k < bins; ++k)
    freqs[k] = fs * ((static_cast<double>(k) + 0.5) / static_cast<double>(bins) - 0.5);
  dsp::Goertzel comb(freqs, fs);

  std::vector<double> teeth(bins, 0.0);
  for (std::size_t s = 0; s < kGateSubSegments; ++s) {
    comb.reset();
    comb.feed(capture.subspan(s * seg, seg));
    for (std::size_t k = 0; k < bins; ++k) teeth[k] += comb.power(k);
  }

  std::vector<double> sorted = teeth;
  std::sort(sorted.begin(), sorted.end());
  const double quantile = std::clamp(gate.floor_quantile, 0.0, 1.0);
  const auto idx = std::min(bins - 1,
                            static_cast<std::size_t>(quantile * static_cast<double>(bins)));
  const double reference = std::max(sorted[idx], 1e-30);
  return sorted.back() >= util::db_to_ratio(gate.min_snr_db) * reference;
}

/// Flat white-noise PSD from the capture's mean power. Parseval-consistent
/// with the Welch estimate for a noise-only hop: the bins sum to the mean
/// power, so stitched band_power and percentile_floor read the same values
/// the full estimate would have produced.
void synthesize_flat_psd(std::span<const dsp::Sample> capture,
                         const dsp::WelchConfig& welch, double fs,
                         dsp::WelchResult& out) {
  const std::size_t seg = welch.segment_size;
  const std::size_t n = capture.size();
  const double mean_power =
      n > 0 ? dsp::simd::sum_power(capture.data(), n) / static_cast<double>(n) : 0.0;
  out.psd.assign(seg, mean_power / static_cast<double>(seg));
  out.bin_width_hz = fs / static_cast<double>(seg);
  const auto hop_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seg) * (1.0 - welch.overlap)));
  out.segments_averaged = n >= seg ? (n - seg) / hop_len + 1 : 0;
}
}  // namespace

double SweepResult::band_power_dbfs(double low_hz, double high_hz) const noexcept {
  double total = 0.0;
  bool covered = false;
  for (const auto& hop : hops) {
    if (!hop.tune_ok || hop.psd.psd.empty()) continue;
    const double fs = hop.psd.bin_width_hz * static_cast<double>(hop.psd.psd.size());
    const double lo = std::max(low_hz, hop.center_hz - fs / 2.0) - hop.center_hz;
    const double hi = std::min(high_hz, hop.center_hz + fs / 2.0) - hop.center_hz;
    if (hi <= lo) continue;
    total += dsp::band_power(hop.psd, fs, lo, hi);
    covered = true;
  }
  return covered ? to_dbfs(total) : -200.0;
}

double SweepResult::overall_floor_dbfs() const noexcept {
  std::vector<double> floors;
  for (const auto& hop : hops)
    if (hop.tune_ok) floors.push_back(hop.noise_floor_dbfs);
  if (floors.empty()) return -200.0;
  const auto mid = floors.begin() + static_cast<std::ptrdiff_t>(floors.size() / 2);
  std::nth_element(floors.begin(), mid, floors.end());
  return *mid;
}

SweepResult SpectrumScanner::sweep(sdr::Device& device, double start_hz,
                                   double stop_hz) const {
  SweepResult out;
  out.start_hz = start_hz;
  out.stop_hz = stop_hz;
  if (stop_hz <= start_hz) return out;

  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.gain_db);

  const double usable = config_.usable_fraction * config_.sample_rate_hz;
  const auto samples_per_hop =
      static_cast<std::size_t>(config_.dwell_s * config_.sample_rate_hz);

  // One estimator for the whole sweep: the FFT plan comes from the shared
  // cache and the segment scratch is reused hop to hop, so the per-hop PSD
  // allocates only its output bins.
  dsp::WelchEstimator welch(config_.welch);

  for (double center = start_hz + usable / 2.0; center - usable / 2.0 < stop_hz;
       center += usable) {
    HopResult hop;
    hop.center_hz = center;
    hop.tune_ok = device.tune(center, config_.sample_rate_hz);
    if (hop.tune_ok) {
      const dsp::Buffer capture = device.capture(samples_per_hop);
      // Presence pre-check: vacant hops short-circuit the Welch estimate
      // and report a Parseval-consistent flat PSD (DESIGN.md §14).
      bool run_welch = true;
      if (config_.gate.enabled) {
        static obs::Counter& gate_pass =
            obs::Registry::global().counter("speccal_gate_scan_pass_total");
        static obs::Counter& gate_skip =
            obs::Registry::global().counter("speccal_gate_scan_skip_total");
        const auto prefix = static_cast<std::size_t>(
            std::clamp(config_.gate.gate_fraction, 0.0, 1.0) *
            static_cast<double>(capture.size()));
        if (comb_detects_signal(std::span<const dsp::Sample>(capture).first(prefix),
                                config_.gate, config_.sample_rate_hz)) {
          gate_pass.add();
        } else {
          gate_skip.add();
          hop.gated = true;
          run_welch = false;
          synthesize_flat_psd(capture, config_.welch, config_.sample_rate_hz,
                              hop.psd);
        }
      }
      if (run_welch)
        welch.estimate_into(capture, config_.sample_rate_hz, hop.psd);
      hop.noise_floor_dbfs =
          to_dbfs(dsp::percentile_floor(hop.psd, config_.floor_quantile));
    }
    out.hops.push_back(std::move(hop));
  }
  return out;
}

}  // namespace speccal::monitor
