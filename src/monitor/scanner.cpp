#include "monitor/scanner.hpp"

#include <algorithm>
#include <cmath>

namespace speccal::monitor {

namespace {
[[nodiscard]] double to_dbfs(double linear) noexcept {
  return linear > 1e-20 ? 10.0 * std::log10(linear) : -200.0;
}
}  // namespace

double SweepResult::band_power_dbfs(double low_hz, double high_hz) const noexcept {
  double total = 0.0;
  bool covered = false;
  for (const auto& hop : hops) {
    if (!hop.tune_ok || hop.psd.psd.empty()) continue;
    const double fs = hop.psd.bin_width_hz * static_cast<double>(hop.psd.psd.size());
    const double lo = std::max(low_hz, hop.center_hz - fs / 2.0) - hop.center_hz;
    const double hi = std::min(high_hz, hop.center_hz + fs / 2.0) - hop.center_hz;
    if (hi <= lo) continue;
    total += dsp::band_power(hop.psd, fs, lo, hi);
    covered = true;
  }
  return covered ? to_dbfs(total) : -200.0;
}

double SweepResult::overall_floor_dbfs() const noexcept {
  std::vector<double> floors;
  for (const auto& hop : hops)
    if (hop.tune_ok) floors.push_back(hop.noise_floor_dbfs);
  if (floors.empty()) return -200.0;
  const auto mid = floors.begin() + static_cast<std::ptrdiff_t>(floors.size() / 2);
  std::nth_element(floors.begin(), mid, floors.end());
  return *mid;
}

SweepResult SpectrumScanner::sweep(sdr::Device& device, double start_hz,
                                   double stop_hz) const {
  SweepResult out;
  out.start_hz = start_hz;
  out.stop_hz = stop_hz;
  if (stop_hz <= start_hz) return out;

  device.set_gain_mode(sdr::GainMode::kManual);
  device.set_gain_db(config_.gain_db);

  const double usable = config_.usable_fraction * config_.sample_rate_hz;
  const auto samples_per_hop =
      static_cast<std::size_t>(config_.dwell_s * config_.sample_rate_hz);

  // One estimator for the whole sweep: the FFT plan comes from the shared
  // cache and the segment scratch is reused hop to hop, so the per-hop PSD
  // allocates only its output bins.
  dsp::WelchEstimator welch(config_.welch);

  for (double center = start_hz + usable / 2.0; center - usable / 2.0 < stop_hz;
       center += usable) {
    HopResult hop;
    hop.center_hz = center;
    hop.tune_ok = device.tune(center, config_.sample_rate_hz);
    if (hop.tune_ok) {
      const dsp::Buffer capture = device.capture(samples_per_hop);
      welch.estimate_into(capture, config_.sample_rate_hz, hop.psd);
      hop.noise_floor_dbfs =
          to_dbfs(dsp::percentile_floor(hop.psd, config_.floor_quantile));
    }
    out.hops.push_back(std::move(hop));
  }
  return out;
}

}  // namespace speccal::monitor
