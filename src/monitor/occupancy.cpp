#include "monitor/occupancy.hpp"

#include <cmath>

#include "util/units.hpp"

namespace speccal::monitor {

std::vector<ChannelObservation> detect_occupancy(const SweepResult& sweep,
                                                 const std::vector<Channel>& channels,
                                                 const OccupancyConfig& config) {
  std::vector<ChannelObservation> out;
  out.reserve(channels.size());
  for (const auto& channel : channels) {
    ChannelObservation obs;
    obs.channel = channel;
    obs.power_dbfs = sweep.band_power_dbfs(channel.low_hz, channel.high_hz);

    // Expected power of an *empty* channel: per-bin floor times the number
    // of bins the channel spans.
    double floor_linear = 0.0;
    for (const auto& hop : sweep.hops) {
      if (!hop.tune_ok || hop.psd.psd.empty()) continue;
      const double fs =
          hop.psd.bin_width_hz * static_cast<double>(hop.psd.psd.size());
      const double lo = std::max(channel.low_hz, hop.center_hz - fs / 2.0);
      const double hi = std::min(channel.high_hz, hop.center_hz + fs / 2.0);
      if (hi <= lo) continue;
      const double bins = (hi - lo) / hop.psd.bin_width_hz;
      floor_linear += util::db_to_ratio(hop.noise_floor_dbfs) * bins;
    }
    obs.floor_dbfs = floor_linear > 0.0 ? util::ratio_to_db(floor_linear) : -200.0;

    if (obs.power_dbfs > -200.0 && obs.floor_dbfs > -200.0) {
      obs.excess_db = obs.power_dbfs - obs.floor_dbfs;
      obs.occupied = obs.excess_db >= config.detection_margin_db;
    }
    out.push_back(std::move(obs));
  }
  return out;
}

AutocorrOccupancyEstimate estimate_occupancy_autocorr(
    std::span<const dsp::Sample> capture, const AutocorrOccupancyConfig& config) {
  AutocorrOccupancyEstimate out;
  out.rho = dsp::lag_autocorrelation(capture, config.lag);
  out.power_dbfs = dsp::mean_power_dbfs(capture);
  out.occupied = out.rho >= config.occupied_threshold;
  return out;
}

void OccupancyTracker::ingest(const SweepResult& sweep) {
  const auto observations = detect_occupancy(sweep, channels_, config_);
  for (std::size_t i = 0; i < observations.size(); ++i)
    if (observations[i].occupied) ++occupied_counts_[i];
  ++sweeps_;
}

double OccupancyTracker::duty_cycle(std::size_t index) const noexcept {
  if (index >= occupied_counts_.size() || sweeps_ == 0) return 0.0;
  return static_cast<double>(occupied_counts_[index]) /
         static_cast<double>(sweeps_);
}

}  // namespace speccal::monitor
