// Channel occupancy detection over spectrum sweeps.
//
// The regulatory use cases the paper opens with — interference hunting,
// enforcement, whitespace planning — reduce to "how occupied is each
// channel, where, and when". Energy detection against a robustly-estimated
// noise floor, repeated over time, yields per-channel duty cycles.
#pragma once

#include <string>
#include <vector>

#include "monitor/scanner.hpp"

namespace speccal::monitor {

/// One logical channel to watch.
struct Channel {
  std::string label;
  double low_hz = 0.0;
  double high_hz = 0.0;
};

struct OccupancyConfig {
  /// A channel counts as occupied when its band power exceeds the expected
  /// empty-channel power (floor * bins) by this margin.
  double detection_margin_db = 6.0;
};

struct ChannelObservation {
  Channel channel;
  double power_dbfs = -200.0;
  double floor_dbfs = -200.0;   // expected empty-channel power
  double excess_db = 0.0;       // power above the floor
  bool occupied = false;
};

/// Energy-detect every channel in one sweep.
[[nodiscard]] std::vector<ChannelObservation> detect_occupancy(
    const SweepResult& sweep, const std::vector<Channel>& channels,
    const OccupancyConfig& config = {});

/// Duty-cycle bookkeeping across repeated sweeps.
class OccupancyTracker {
 public:
  explicit OccupancyTracker(std::vector<Channel> channels,
                            OccupancyConfig config = {})
      : channels_(std::move(channels)), config_(config),
        occupied_counts_(channels_.size(), 0) {}

  void ingest(const SweepResult& sweep);

  /// Fraction of ingested sweeps in which channel `index` was occupied.
  [[nodiscard]] double duty_cycle(std::size_t index) const noexcept;

  [[nodiscard]] std::size_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] const std::vector<Channel>& channels() const noexcept {
    return channels_;
  }

 private:
  std::vector<Channel> channels_;
  OccupancyConfig config_;
  std::vector<std::size_t> occupied_counts_;
  std::size_t sweeps_ = 0;
};

}  // namespace speccal::monitor
