// Channel occupancy detection over spectrum sweeps.
//
// The regulatory use cases the paper opens with — interference hunting,
// enforcement, whitespace planning — reduce to "how occupied is each
// channel, where, and when". Energy detection against a robustly-estimated
// noise floor, repeated over time, yields per-channel duty cycles.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dsp/iq.hpp"
#include "monitor/scanner.hpp"

namespace speccal::monitor {

/// One logical channel to watch.
struct Channel {
  std::string label;
  double low_hz = 0.0;
  double high_hz = 0.0;
};

struct OccupancyConfig {
  /// A channel counts as occupied when its band power exceeds the expected
  /// empty-channel power (floor * bins) by this margin.
  double detection_margin_db = 6.0;
};

struct ChannelObservation {
  Channel channel;
  double power_dbfs = -200.0;
  double floor_dbfs = -200.0;   // expected empty-channel power
  double excess_db = 0.0;       // power above the floor
  bool occupied = false;
};

/// Energy-detect every channel in one sweep.
[[nodiscard]] std::vector<ChannelObservation> detect_occupancy(
    const SweepResult& sweep, const std::vector<Channel>& channels,
    const OccupancyConfig& config = {});

/// Autocorrelation-based occupancy estimate — the cheap second opinion from
/// the USRP scanning-receiver literature, independent of the Welch-PSD path.
///
/// Works on the raw time-domain capture of one channel (tuned to the
/// channel center, sample rate covering the channel): white noise
/// decorrelates at one sample, so rho = |R(1)|/R(0) sits near 0 on a vacant
/// channel; any signal narrower than the capture bandwidth keeps adjacent
/// samples correlated (ATSC in an 8 Msps capture holds rho ~ 0.4, a CW tone
/// rho ~ 1). One O(N) pass, no FFT plan, no PSD — which is exactly why the
/// anomaly detector uses it to cross-check PSD residuals: a sensor whose
/// spectral path is lying still has to produce time-domain samples whose
/// correlation structure matches.
struct AutocorrOccupancyConfig {
  /// Correlation lag in samples (1 = adjacent-sample).
  std::size_t lag = 1;
  /// rho at or above this reads as occupied. The default splits the vacant
  /// extreme (rho ~ 1/sqrt(N), < 0.01 for any realistic capture) from the
  /// weakest occupied case the Welch path would also flag (a band-limited
  /// signal at detection-margin SNR holds rho >= ~0.25).
  double occupied_threshold = 0.15;
};

struct AutocorrOccupancyEstimate {
  double rho = 0.0;          // |R(lag)| / R(0), in [0, 1]
  double power_dbfs = -200.0;
  bool occupied = false;
};

/// Estimate occupancy of one captured channel from its lag autocorrelation.
[[nodiscard]] AutocorrOccupancyEstimate estimate_occupancy_autocorr(
    std::span<const dsp::Sample> capture,
    const AutocorrOccupancyConfig& config = {});

/// Duty-cycle bookkeeping across repeated sweeps.
class OccupancyTracker {
 public:
  explicit OccupancyTracker(std::vector<Channel> channels,
                            OccupancyConfig config = {})
      : channels_(std::move(channels)), config_(config),
        occupied_counts_(channels_.size(), 0) {}

  void ingest(const SweepResult& sweep);

  /// Fraction of ingested sweeps in which channel `index` was occupied.
  [[nodiscard]] double duty_cycle(std::size_t index) const noexcept;

  [[nodiscard]] std::size_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] const std::vector<Channel>& channels() const noexcept {
    return channels_;
  }

 private:
  std::vector<Channel> channels_;
  OccupancyConfig config_;
  std::vector<std::size_t> occupied_counts_;
  std::size_t sweeps_ = 0;
};

}  // namespace speccal::monitor
