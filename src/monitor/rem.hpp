// Radio Environment Map — the cloud-side aggregation the crowd feeds.
//
// Nodes upload per-channel power observations; the map interpolates a power
// surface over space. This is where calibration pays off operationally:
// each observation is weighted by the node's trust score and discarded
// entirely when the node's calibration says the band or direction is not
// usable — untrusted or siting-blinded sensors would otherwise poison the
// map (the failure mode the paper's introduction warns about).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/wgs84.hpp"

namespace speccal::monitor {

/// One node's report of one channel.
struct NodeObservation {
  std::string node_id;
  geo::Geodetic position;
  double channel_low_hz = 0.0;
  double channel_high_hz = 0.0;
  double power_dbm = -200.0;
  /// Calibration outputs attached to the observation:
  double trust_weight = 1.0;   // 0..1 (trust score / 100)
  bool band_usable = true;     // node can actually monitor this band
};

struct RemConfig {
  /// Inverse-distance-weighting exponent.
  double idw_exponent = 2.0;
  /// Observations beyond this range do not influence a query point.
  double max_range_m = 30e3;
  /// Minimum trust for an observation to be admitted at all.
  double min_trust = 0.3;
};

struct RemEstimate {
  double power_dbm = -200.0;
  double total_weight = 0.0;       // confidence proxy
  std::size_t contributors = 0;
};

/// Trust-weighted inverse-distance power map for one channel.
class RadioEnvironmentMap {
 public:
  explicit RadioEnvironmentMap(RemConfig config = {}) noexcept : config_(config) {}

  /// Add an observation; silently drops unusable-band or low-trust reports
  /// (returns whether it was admitted).
  bool ingest(NodeObservation observation);

  /// Interpolated power at a location; nullopt when nothing in range.
  [[nodiscard]] std::optional<RemEstimate> estimate(const geo::Geodetic& where) const;

  [[nodiscard]] std::size_t size() const noexcept { return observations_.size(); }
  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

 private:
  RemConfig config_;
  std::vector<NodeObservation> observations_;
  std::size_t rejected_ = 0;
};

}  // namespace speccal::monitor
