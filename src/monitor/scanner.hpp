// Spectrum sweep service — the product a sensor node sells (§2).
//
// "Each sensor node comprises a software-defined radio capable of capturing
//  wireless signals across a wide frequency range ... The host may perform
//  various processing tasks on the I/Q data, such as signal detection or
//  computing the Fast Fourier Transform, before transmitting the data to
//  the cloud."
//
// SpectrumScanner hops a Device across a frequency span, estimates a Welch
// PSD per hop, and assembles a stitched spectrum snapshot with an estimated
// noise floor — the payload a node uploads.
#pragma once

#include <vector>

#include "dsp/welch.hpp"
#include "sdr/device.hpp"

namespace speccal::monitor {

/// Per-hop presence pre-check (DESIGN.md §14): a Goertzel comb of
/// `comb_bins` teeth spread across the hop bandwidth, averaged over a few
/// sub-segments of the dwell prefix, decides whether anything in the hop
/// rises above its own low-quantile tooth. Hops with no contrast
/// short-circuit the Welch estimate and synthesize a flat PSD from the
/// capture's mean power (Parseval-consistent, so stitched band power and
/// floor statistics are unchanged for white-noise hops). Limitations are
/// inherent to a contrast detector: a narrowband tone parked exactly
/// between two teeth, or a signal flat across the *entire* hop, reads as a
/// raised floor — disable the gate for adversarial survey work. Skip rates
/// are published as speccal_gate_scan_{pass,skip}_total.
struct ScanGateConfig {
  bool enabled = true;
  /// Comb teeth spread evenly across the hop bandwidth (>= 4).
  std::size_t comb_bins = 16;
  /// Pass when the loudest tooth clears the low-quantile tooth by this.
  double min_snr_db = 6.0;
  /// Fraction of the dwell the comb inspects.
  double gate_fraction = 0.25;
  /// Quantile of the tooth powers used as the contrast reference; low, so
  /// a signal covering most teeth still compares against true noise teeth.
  double floor_quantile = 0.15;
};

struct ScanConfig {
  double sample_rate_hz = 8e6;
  /// Usable bandwidth per hop (skip the filter roll-off at the edges).
  double usable_fraction = 0.8;
  double dwell_s = 0.01;
  double gain_db = 30.0;
  dsp::WelchConfig welch;
  /// Quantile used for the per-hop noise-floor estimate. Low enough that a
  /// hop mostly filled by one wideband signal still reads its true floor.
  double floor_quantile = 0.15;
  /// Presence pre-check that lets vacant hops skip the Welch estimate.
  ScanGateConfig gate;
};

/// PSD of one tuner hop.
struct HopResult {
  double center_hz = 0.0;
  bool tune_ok = false;
  dsp::WelchResult psd;
  double noise_floor_dbfs = -200.0;  // low-quantile bin estimate
  /// True when the presence pre-check found no contrast and the PSD was
  /// synthesized flat from the capture's mean power instead of Welch.
  bool gated = false;
};

/// A stitched wideband snapshot.
struct SweepResult {
  double start_hz = 0.0;
  double stop_hz = 0.0;
  std::vector<HopResult> hops;

  /// Integrated power [dBFS] in [low_hz, high_hz] (absolute frequencies).
  /// Returns -200 when the band was not covered by any successful hop.
  [[nodiscard]] double band_power_dbfs(double low_hz, double high_hz) const noexcept;

  /// Median of the per-hop floors [dBFS per bin].
  [[nodiscard]] double overall_floor_dbfs() const noexcept;
};

class SpectrumScanner {
 public:
  explicit SpectrumScanner(ScanConfig config = {}) noexcept : config_(config) {}

  /// Sweep [start_hz, stop_hz]; hops are placed every
  /// usable_fraction * sample_rate. Hops the device cannot tune are
  /// recorded with tune_ok = false (a calibration-relevant failure).
  [[nodiscard]] SweepResult sweep(sdr::Device& device, double start_hz,
                                  double stop_hz) const;

  [[nodiscard]] const ScanConfig& config() const noexcept { return config_; }

 private:
  ScanConfig config_;
};

}  // namespace speccal::monitor
