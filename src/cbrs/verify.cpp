#include "cbrs/verify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "prop/pathloss.hpp"

namespace speccal::cbrs {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kVerified: return "verified";
    case Verdict::kFlagged: return "flagged";
    case Verdict::kRejected: return "rejected";
  }
  return "?";
}

namespace {

/// Invert the urban log-distance model: distance at which a cell with this
/// EIRP would produce the measured wideband power.
[[nodiscard]] double range_from_rssi(double rssi_dbm, double eirp_dbm, double freq_hz,
                                     double exponent) noexcept {
  constexpr double kReferenceM = 100.0;
  const double loss = eirp_dbm - rssi_dbm;
  const double ref_loss = prop::free_space_path_loss_db(kReferenceM, freq_hz);
  const double decades = (loss - ref_loss) / (10.0 * exponent);
  return kReferenceM * std::pow(10.0, std::max(0.0, decades));
}

}  // namespace

VerificationResult CbsdVerifier::verify(const CbsdRegistration& registration,
                                        const calib::CalibrationReport& report) const {
  VerificationResult out;
  int violations = 0;
  int warnings = 0;

  const bool evidence_indoor = report.classification.indoor();
  const bool evidence_confident = report.classification.confidence >= 0.4;

  // --- 1. indoor/outdoor claim ------------------------------------------
  if (evidence_confident && registration.indoor_deployment != evidence_indoor) {
    std::ostringstream os;
    os << "reports " << (registration.indoor_deployment ? "indoor" : "outdoor")
       << " deployment but calibration indicates "
       << calib::to_string(report.classification.type);
    // Claiming indoor while actually outdoor is conservative (lower power);
    // claiming outdoor while actually indoor games the EIRP rules.
    if (!registration.indoor_deployment && evidence_indoor) {
      out.findings.push_back({true, os.str()});
      ++violations;
    } else {
      out.findings.push_back({false, os.str() + " (conservative misreport)"});
      ++warnings;
    }
  } else {
    out.findings.push_back({false, "indoor/outdoor status consistent with evidence"});
  }

  // --- 2. category feasibility --------------------------------------------
  if (registration.category == Category::kB && evidence_indoor &&
      evidence_confident) {
    out.findings.push_back(
        {true, "Category B requires a professional outdoor installation; "
               "evidence indicates an indoor siting"});
    ++violations;
  }
  if (registration.category == Category::kA && !registration.indoor_deployment &&
      registration.antenna_height_m > kCatAMaxOutdoorHeightM) {
    std::ostringstream os;
    os << "Category A outdoor antenna height " << registration.antenna_height_m
       << " m exceeds the " << kCatAMaxOutdoorHeightM << " m limit";
    out.findings.push_back({true, os.str()});
    ++violations;
  }

  // --- 3. reported location vs RSRP ranging -----------------------------
  std::vector<double> inconsistencies;
  for (const auto& meas : report.cell_scan) {
    if (!meas.decoded) continue;
    const double geometric_m =
        geo::haversine_m(registration.reported_position, meas.cell.position);
    const double ranged_m = range_from_rssi(meas.rssi_dbm, meas.cell.eirp_dbm,
                                            meas.cell.dl_freq_hz,
                                            config_.ranging_exponent);
    inconsistencies.push_back(std::fabs(ranged_m - geometric_m));
    // Obstruction inflates the ranged distance, never deflates it, so only
    // a ranged distance far *below* geometry indicts the claimed location.
    if (geometric_m > config_.location_tolerance_factor * ranged_m &&
        geometric_m - ranged_m > 2000.0) {
      std::ostringstream os;
      os << "tower " << meas.cell.cell_id << " (" << meas.cell.dl_freq_hz / 1e6
         << " MHz) is received " << static_cast<int>(geometric_m / 1000.0)
         << " km strong for the reported coordinates (ranging suggests ~"
         << static_cast<int>(ranged_m / 1000.0) << " km)";
      out.findings.push_back({true, os.str()});
      ++violations;
    }
  }
  if (!inconsistencies.empty()) {
    std::sort(inconsistencies.begin(), inconsistencies.end());
    out.location_inconsistency_m = inconsistencies[inconsistencies.size() / 2];
  }

  // --- 4. trust carryover -------------------------------------------------
  if (report.trust.score < 40.0) {
    out.findings.push_back(
        {true, "underlying sensor calibration flags the node as untrustworthy"});
    ++violations;
  }

  // --- verdict + EIRP recommendation ---------------------------------------
  out.verdict = violations > 0
                    ? (violations >= 2 ? Verdict::kRejected : Verdict::kFlagged)
                    : Verdict::kVerified;

  const double category_cap = registration.category == Category::kB
                                  ? kCatBMaxEirpDbm
                                  : kCatAMaxEirpDbm;
  double cap = category_cap;
  // Power policy follows the *evidence*, not the claim.
  if (evidence_indoor) cap = kCatAMaxEirpDbm - config_.indoor_penalty_db;
  if (out.verdict == Verdict::kRejected) cap = -1e9;  // deny
  out.recommended_eirp_dbm = std::min(cap, registration.max_eirp_dbm);
  if (out.verdict == Verdict::kRejected) out.recommended_eirp_dbm = -1e9;
  return out;
}

}  // namespace speccal::cbrs
