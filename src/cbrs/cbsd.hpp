// CBRS (Citizens Broadband Radio Service, 3550-3700 MHz) device records.
//
// §3.3 of the paper: "every CBRS modem is required to self-report its
// location, indoor/outdoor status, installation situation, and other
// relevant information. The methodologies proposed in this paper provide
// valuable insights that can aid in the development of an automatic
// verification system to validate the reported information."
//
// These are the self-reported registration parameters (FCC Part 96 /
// WInnForum SAS-CBSD), the inputs the verification engine checks.
#pragma once

#include <string>

#include "geo/wgs84.hpp"

namespace speccal::cbrs {

/// Device category per Part 96.
enum class Category {
  kA,  // <= 30 dBm/10 MHz EIRP; indoor, or outdoor with antenna <= 6 m HAAT
  kB,  // <= 47 dBm/10 MHz EIRP; professional outdoor installation only
};

[[nodiscard]] inline std::string to_string(Category cat) {
  return cat == Category::kA ? "Category A" : "Category B";
}

/// Part 96 EIRP caps [dBm per 10 MHz].
inline constexpr double kCatAMaxEirpDbm = 30.0;
inline constexpr double kCatBMaxEirpDbm = 47.0;
/// Category A outdoor installations must keep the antenna below this height.
inline constexpr double kCatAMaxOutdoorHeightM = 6.0;

/// Self-reported registration record (subset of the SAS registration
/// message relevant to siting verification).
struct CbsdRegistration {
  std::string cbsd_id;
  Category category = Category::kA;
  geo::Geodetic reported_position;    // claimed install coordinates
  double antenna_height_m = 3.0;      // claimed height above ground
  bool indoor_deployment = true;      // claimed indoor/outdoor status
  double antenna_gain_dbi = 0.0;
  double max_eirp_dbm = 30.0;         // requested operating EIRP
};

}  // namespace speccal::cbrs
