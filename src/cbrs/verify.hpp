// Automatic verification of CBSD self-reports from calibration evidence —
// the §3.3 application of the paper's techniques.
//
// Given a device's registration record and a CalibrationReport produced at
// (or co-located with) the device, the engine checks:
//   * indoor/outdoor claim  vs the installation classification,
//   * category feasibility  (Category B requires professional outdoor),
//   * reported location     vs RSRP-ranged distances to decoded towers,
//   * siting quality        vs the requested EIRP (an indoor device must
//                           not be granted outdoor-class power),
// and recommends a grant decision with an EIRP cap.
#pragma once

#include <string>
#include <vector>

#include "calib/pipeline.hpp"
#include "cbrs/cbsd.hpp"

namespace speccal::cbrs {

enum class Verdict {
  kVerified,   // claims consistent with evidence
  kFlagged,    // inconsistencies; manual review / reduced grant
  kRejected,   // claims contradicted; deny grant
};

[[nodiscard]] std::string to_string(Verdict verdict);

struct VerificationFinding {
  bool violation = false;  // true = contradiction, false = informational
  std::string description;
};

struct VerificationResult {
  Verdict verdict = Verdict::kVerified;
  std::vector<VerificationFinding> findings;
  /// EIRP the SAS should authorize given the verified siting [dBm/10MHz].
  double recommended_eirp_dbm = kCatAMaxEirpDbm;
  /// Median absolute inconsistency between RSRP-ranged and geometric tower
  /// distances [m] (large = reported coordinates are implausible).
  double location_inconsistency_m = 0.0;
};

struct VerifierConfig {
  /// Reported coordinates are implausible when the median ranging
  /// disagreement exceeds this factor of the geometric distance.
  double location_tolerance_factor = 3.0;
  /// Path-loss exponent used to invert RSRP into distance.
  double ranging_exponent = 2.9;
  /// Indoor devices get this EIRP haircut relative to the category cap.
  double indoor_penalty_db = 10.0;
};

class CbsdVerifier {
 public:
  explicit CbsdVerifier(VerifierConfig config = {}) noexcept : config_(config) {}

  [[nodiscard]] VerificationResult verify(const CbsdRegistration& registration,
                                          const calib::CalibrationReport& report) const;

  [[nodiscard]] const VerifierConfig& config() const noexcept { return config_; }

 private:
  VerifierConfig config_;
};

}  // namespace speccal::cbrs
