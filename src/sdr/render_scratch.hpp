// Per-source reusable render buffers for the simulated capture hot path.
//
// Every FixedEmitterSource::render used to allocate two fresh dsp::Buffers
// per capture; at fleet scale that is two heap round-trips per source per
// hop. RenderScratch owns those buffers instead: pools grow monotonically
// to the largest block ever requested and are reused verbatim afterwards,
// so steady-state captures perform zero heap allocations. The stats
// counters let tests assert exactly that (grow_events stops moving after
// the first capture per tuning).
//
// Ownership rule: one RenderScratch per SignalSource, owned by the source.
// Not thread-safe — the fleet engine gives every worker its own device and
// source graph, so no pool is ever shared across threads (DESIGN.md
// "Capture-path performance").
#pragma once

#include <cstddef>
#include <span>

#include "dsp/iq.hpp"
#include "obs/metrics.hpp"

namespace speccal::sdr {

class RenderScratch {
 public:
  struct Stats {
    std::size_t requests = 0;     // spans handed out since construction
    std::size_t grow_events = 0;  // requests that had to (re)allocate
    std::size_t bytes_reserved = 0;
  };

  /// White-noise staging buffer (pre-filter).
  [[nodiscard]] std::span<dsp::Sample> white(std::size_t n) { return grab(white_, n); }
  /// Shaped-output buffer (post-filter).
  [[nodiscard]] std::span<dsp::Sample> shaped(std::size_t n) { return grab(shaped_, n); }

  [[nodiscard]] Stats stats() const noexcept {
    return {requests_, grow_events_,
            (white_.capacity() + shaped_.capacity()) * sizeof(dsp::Sample)};
  }

 private:
  [[nodiscard]] std::span<dsp::Sample> grab(dsp::Buffer& pool, std::size_t n) {
    ++requests_;
    if (pool.capacity() < n) {
      ++grow_events_;
      // Fleet-wide twin of the per-instance counter: steady-state captures
      // keep this flat, so movement means a pool is being re-grown.
      static obs::Counter& grows = obs::Registry::global().counter(
          "speccal_sdr_render_grow_events_total");
      grows.add();
    }
    if (pool.size() < n) pool.resize(n);
    return {pool.data(), n};
  }

  dsp::Buffer white_;
  dsp::Buffer shaped_;
  std::size_t requests_ = 0;
  std::size_t grow_events_ = 0;
};

}  // namespace speccal::sdr
