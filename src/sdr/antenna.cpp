#include "sdr/antenna.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace speccal::sdr {

AntennaModel::AntennaModel(std::string name, std::vector<ResponsePoint> response,
                           double rolloff_db_per_octave)
    : name_(std::move(name)), response_(std::move(response)),
      rolloff_db_per_octave_(rolloff_db_per_octave) {
  if (response_.empty())
    throw std::invalid_argument("AntennaModel: empty frequency response");
  if (!std::is_sorted(response_.begin(), response_.end(),
                      [](const auto& a, const auto& b) { return a.freq_hz < b.freq_hz; }))
    throw std::invalid_argument("AntennaModel: response must be sorted by frequency");
}

AntennaModel AntennaModel::isotropic() {
  return AntennaModel("isotropic", {{1e6, 0.0}, {100e9, 0.0}}, 0.0);
}

AntennaModel AntennaModel::wideband_700_2700() {
  return AntennaModel("wideband-700-2700",
                      {
                          {200e6, -8.0},   // usable but poor below rating
                          {500e6, -3.0},
                          {700e6, 2.0},    // rated band starts
                          {1090e6, 2.5},   // tuned near ADS-B
                          {1800e6, 2.0},
                          {2700e6, 1.5},   // rated band ends
                          {3500e6, -6.0},  // degrading
                      },
                      15.0);
}

AntennaModel AntennaModel::attenuated(const AntennaModel& base, double extra_loss_db) {
  AntennaModel out = base;
  out.name_ = base.name_ + "+loss";
  for (auto& p : out.response_) p.gain_dbi -= extra_loss_db;
  return out;
}

double AntennaModel::gain_dbi(double freq_hz, double azimuth_deg) const noexcept {
  double gain;
  if (freq_hz <= response_.front().freq_hz) {
    const double octaves = std::log2(response_.front().freq_hz / std::max(freq_hz, 1e6));
    gain = response_.front().gain_dbi - rolloff_db_per_octave_ * octaves;
  } else if (freq_hz >= response_.back().freq_hz) {
    const double octaves = std::log2(freq_hz / response_.back().freq_hz);
    gain = response_.back().gain_dbi - rolloff_db_per_octave_ * octaves;
  } else {
    // Linear interpolation in log-frequency.
    auto upper = std::lower_bound(
        response_.begin(), response_.end(), freq_hz,
        [](const ResponsePoint& p, double f) { return p.freq_hz < f; });
    auto lower = upper - 1;
    const double t = (std::log10(freq_hz) - std::log10(lower->freq_hz)) /
                     (std::log10(upper->freq_hz) - std::log10(lower->freq_hz));
    gain = lower->gain_dbi + t * (upper->gain_dbi - lower->gain_dbi);
  }

  if (directional_) {
    // Cardioid-like: gain falls smoothly from peak azimuth to the back.
    const double delta = util::angular_distance_deg(azimuth_deg, peak_azimuth_deg_);
    const double back_fraction = (1.0 - std::cos(util::deg_to_rad(delta))) / 2.0;
    gain -= front_to_back_db_ * back_fraction;
  }
  return gain;
}

void AntennaModel::set_directional(double peak_azimuth_deg, double front_to_back_db) noexcept {
  directional_ = true;
  peak_azimuth_deg_ = peak_azimuth_deg;
  front_to_back_db_ = front_to_back_db;
}

}  // namespace speccal::sdr
