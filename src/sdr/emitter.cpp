#include "sdr/emitter.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/nco.hpp"
#include "util/units.hpp"

namespace speccal::sdr {

double FixedEmitterSource::received_power_dbm(const RxEnvironment& rx) const noexcept {
  prop::LinkInput link;
  link.transmitter = config_.position;
  link.receiver = rx.position;
  link.freq_hz = config_.carrier_hz;
  link.tx_power_dbm = config_.eirp_dbm;
  link.emitter_id = config_.emitter_id;
  if (rx.antenna != nullptr) {
    const double az = geo::bearing_deg(rx.position, config_.position);
    link.rx_antenna_gain_dbi = rx.antenna->gain_dbi(config_.carrier_hz, az);
  }
  return prop::evaluate_link(link, config_.link, rx.obstructions, rx.fading)
      .rx_power_dbm;
}

void FixedEmitterSource::render(const CaptureContext& ctx,
                                std::span<dsp::Sample> accum) {
  // Channel placement in baseband.
  const double offset = config_.carrier_hz - ctx.center_freq_hz;
  const double low = offset - config_.bandwidth_hz / 2.0;
  const double high = offset + config_.bandwidth_hz / 2.0;
  // Entirely outside the capture? Nothing to add.
  if (high < -ctx.sample_rate_hz / 2.0 || low > ctx.sample_rate_hz / 2.0) return;

  const double rx_power_dbm = received_power_dbm(*ctx.rx);
  const double target_mw = util::dbm_to_watts(rx_power_dbm) * 1e3;
  if (target_mw < 1e-18) return;

  // (Re)design the channel shaping taps for the current tuning.
  const double clipped_low = std::max(low, -ctx.sample_rate_hz / 2.0 * 0.98);
  const double clipped_high = std::min(high, ctx.sample_rate_hz / 2.0 * 0.98);
  if (clipped_high <= clipped_low) return;
  const FilterKey key{ctx.sample_rate_hz, clipped_low, clipped_high};
  if (shaper_taps_.empty() || !(key == filter_key_)) {
    shaper_taps_ =
        dsp::design_bandpass(ctx.sample_rate_hz, clipped_low, clipped_high, 127);
    direct_shaper_.reset();
    fft_shaper_.reset();
    filter_key_ = key;
    ++shaper_rebuilds_;
  }

  const std::size_t n = accum.size();
  if (n == 0) return;

  // White noise -> channel shape. The filter is primed with taps-1 extra
  // leading samples so the warm-up transient never reaches the output (or
  // the power normalization): only steady-state samples are emitted, and
  // the block is normalized to the exact target power afterwards, so the
  // filter's gain shape does not matter.
  const std::size_t prime = shaper_taps_.size() - 1;
  const std::size_t total = n + prime;
  auto white = scratch_.white(total);
  for (auto& s : white)
    s = dsp::Sample(static_cast<float>(rng_.normal()), static_cast<float>(rng_.normal()));
  auto shaped = scratch_.shaped(total);

  // Crossover: block convolution wins for long filters on full capture
  // buffers; tiny blocks stay on the direct path.
  if (dsp::prefer_fft_convolution(shaper_taps_.size(), total)) {
    if (fft_shaper_ == nullptr)
      fft_shaper_ = std::make_unique<dsp::FftConvolver>(shaper_taps_);
    else
      fft_shaper_->reset();
    fft_shaper_->filter_into(white, shaped);
  } else {
    if (direct_shaper_ == nullptr)
      direct_shaper_ = std::make_unique<dsp::FirFilter>(shaper_taps_);
    else
      direct_shaper_->reset();
    direct_shaper_->filter_into(white, shaped);
  }
  const auto steady = shaped.subspan(prime, n);

  double fraction_in_band = 1.0;
  if (config_.pilot_offset_hz) fraction_in_band = 1.0 - util::db_to_ratio(config_.pilot_rel_db);

  const double shaped_power = dsp::mean_power(steady);
  if (shaped_power <= 0.0) return;
  const float scale =
      static_cast<float>(std::sqrt(target_mw * fraction_in_band / shaped_power));
  for (std::size_t i = 0; i < n; ++i) accum[i] += steady[i] * scale;

  // Pilot tone (ATSC-style), placed relative to the carrier.
  if (config_.pilot_offset_hz) {
    const double pilot_freq = offset + *config_.pilot_offset_hz;
    if (pilot_freq > -ctx.sample_rate_hz / 2.0 && pilot_freq < ctx.sample_rate_hz / 2.0) {
      const double pilot_mw = target_mw * util::db_to_ratio(config_.pilot_rel_db);
      const float amp = static_cast<float>(std::sqrt(pilot_mw));
      dsp::Nco nco(pilot_freq, ctx.sample_rate_hz);
      // Deterministic start phase tied to capture time keeps renders
      // continuous across adjacent buffers.
      nco.set_phase(2.0 * util::kPi * std::fmod(pilot_freq * ctx.start_time_s, 1.0));
      nco.add_tone(accum.first(n), amp);
    }
  }
}

}  // namespace speccal::sdr
