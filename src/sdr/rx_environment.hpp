// Receiver-side environment: what surrounds a (simulated) node.
//
// Split out of sdr/sim.hpp so that model-level consumers — the cellular
// scanner, link-budget expectations — can describe a receiver site without
// pulling in the full simulated front end.
#pragma once

#include "geo/wgs84.hpp"
#include "prop/fading.hpp"
#include "prop/obstruction.hpp"
#include "sdr/antenna.hpp"

namespace speccal::sdr {

/// Receiver-side environment shared by all sources rendering into one node.
struct RxEnvironment {
  geo::Geodetic position;
  const prop::ObstructionMap* obstructions = nullptr;  // may be null (open site)
  const prop::FadingModel* fading = nullptr;           // may be null (no fading)
  const AntennaModel* antenna = nullptr;               // may be null (isotropic)
};

}  // namespace speccal::sdr
