#include "sdr/sim.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "prop/pathloss.hpp"
#include "util/units.hpp"

namespace speccal::sdr {

SimulatedSdr::SimulatedSdr(DeviceInfo info, RxEnvironment rx, util::Rng rng)
    : info_(std::move(info)), rx_(rx), rng_(rng) {}

DeviceInfo SimulatedSdr::bladerf_like_info() {
  DeviceInfo d;
  d.driver = "sim-bladerf";
  d.min_freq_hz = 70e6;
  d.max_freq_hz = 6e9;
  d.max_sample_rate_hz = 61.44e6;
  d.noise_figure_db = 7.0;
  d.full_scale_input_dbm = -10.0;
  d.adc_bits = 12;
  return d;
}

void SimulatedSdr::add_source(std::shared_ptr<SignalSource> source) {
  sources_.push_back(std::move(source));
}

bool SimulatedSdr::tune(double center_freq_hz, double sample_rate_hz) {
  tuned_ok_ = center_freq_hz >= info_.min_freq_hz && center_freq_hz <= info_.max_freq_hz &&
              sample_rate_hz > 0.0 && sample_rate_hz <= info_.max_sample_rate_hz;
  // The synthesizer locks to (1 + ppm/1e6) * requested; the device still
  // *reports* the requested frequency (real hardware does not know its own
  // reference error). The world renders relative to the actual LO, so every
  // signal appears shifted by -ppm * f / 1e6 in the capture.
  center_freq_hz_ = center_freq_hz;
  actual_center_freq_hz_ = center_freq_hz * (1.0 + info_.lo_error_ppm * 1e-6);
  sample_rate_hz_ = sample_rate_hz;
  return tuned_ok_;
}

dsp::Buffer SimulatedSdr::capture(std::size_t count) {
  dsp::Buffer buf(count);
  capture_into(buf);
  return buf;
}

void SimulatedSdr::capture_into(std::span<dsp::Sample> out) {
  const std::size_t count = out.size();
  // Two relaxed atomic adds per capture block — the whole per-capture cost
  // of the observability layer on this path (bench/obs_overhead pins it).
  static obs::Counter& captures =
      obs::Registry::global().counter("speccal_sdr_captures_total");
  static obs::Counter& samples =
      obs::Registry::global().counter("speccal_sdr_samples_total");
  captures.add();
  samples.add(count);
  std::fill(out.begin(), out.end(), dsp::Sample{0.0f, 0.0f});
  if (tuned_ok_) {
    CaptureContext ctx;
    ctx.center_freq_hz = actual_center_freq_hz_;
    ctx.sample_rate_hz = sample_rate_hz_;
    ctx.start_time_s = stream_time_s_;
    ctx.sample_count = count;
    ctx.rx = &rx_;
    for (auto& src : sources_) src->render(ctx, out);
    if (info_.frontend_loss_db != 0.0) {
      const float atten =
          static_cast<float>(util::db_to_amplitude(-info_.frontend_loss_db));
      for (auto& s : out) s *= atten;
    }
  }
  add_thermal_noise(out);

  double gain = gain_db_;
  if (gain_mode_ == GainMode::kAgc) {
    // Measure antenna-port power (sqrt-mW units -> dBm) and pick the gain
    // that puts it at the AGC target.
    const double power_dbm = dsp::mean_power_dbfs(out);  // dB rel. 1 mW here
    gain = agc_target_dbfs_ + info_.full_scale_input_dbm - power_dbm;
    gain = std::clamp(gain, 0.0, 70.0);
    gain_db_ = gain;  // expose what the AGC chose
  }

  // sqrt-mW -> full-scale units.
  const float scale =
      static_cast<float>(util::db_to_amplitude(gain - info_.full_scale_input_dbm));
  for (auto& s : out) s *= scale;

  quantize(out);
  stream_time_s_ += static_cast<double>(count) / sample_rate_hz_;
}

void SimulatedSdr::add_thermal_noise(std::span<dsp::Sample> buf) {
  // Noise power over the capture bandwidth (complex baseband: B = fs).
  const double noise_dbm =
      prop::noise_floor_dbm(sample_rate_hz_, info_.noise_figure_db);
  // Per-component std dev so that E|n|^2 equals the noise power in mW.
  const double sigma = std::sqrt(util::dbm_to_watts(noise_dbm) * 1e3 / 2.0);
  for (auto& s : buf)
    s += dsp::Sample(static_cast<float>(rng_.normal(0.0, sigma)),
                     static_cast<float>(rng_.normal(0.0, sigma)));
}

void SimulatedSdr::quantize(std::span<dsp::Sample> buf) noexcept {
  const double levels = static_cast<double>(1 << (info_.adc_bits - 1));
  auto q = [&](float v) {
    const double clipped = std::clamp(static_cast<double>(v), -1.0, 1.0);
    return static_cast<float>(std::round(clipped * levels) / levels);
  };
  for (auto& s : buf) s = dsp::Sample(q(s.real()), q(s.imag()));
}

}  // namespace speccal::sdr
