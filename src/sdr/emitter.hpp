// Generic fixed terrestrial emitter rendered as band-limited noise.
//
// Scrambled digital broadcast signals (8VSB, OFDM downlinks) are
// statistically white inside their channel mask; for power measurements —
// which is what the paper's frequency-response technique performs — a
// band-shaped Gaussian process with the correct received power and an
// optional pilot tone is an accurate stand-in. The emitter computes its
// received power through the shared link-budget machinery, so obstruction
// and antenna effects appear exactly as they would for a real signal.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dsp/convolver.hpp"
#include "dsp/fir.hpp"
#include "geo/wgs84.hpp"
#include "prop/linkbudget.hpp"
#include "sdr/render_scratch.hpp"
#include "sdr/sim.hpp"
#include "util/rng.hpp"

namespace speccal::sdr {

struct EmitterConfig {
  std::uint64_t emitter_id = 0;
  geo::Geodetic position;
  double carrier_hz = 600e6;     // channel centre
  double bandwidth_hz = 6e6;     // occupied bandwidth
  double eirp_dbm = 70.0;
  prop::LinkParams link;         // large-scale model for this service
  /// Pilot tone offset from the carrier/centre frequency (ATSC 8VSB:
  /// -2.690559 MHz, i.e. 309.441 kHz above the 6 MHz channel's lower
  /// edge — tv::kPilotOffsetFromCenterHz); nullopt disables the pilot.
  std::optional<double> pilot_offset_hz;
  /// Pilot power relative to total signal power [dB] (ATSC: ~ -11.3 dB).
  double pilot_rel_db = -11.3;
};

class FixedEmitterSource final : public SignalSource {
 public:
  FixedEmitterSource(EmitterConfig config, util::Rng rng) noexcept
      : config_(config), rng_(rng) {}

  void render(const CaptureContext& ctx, std::span<dsp::Sample> accum) override;

  [[nodiscard]] const EmitterConfig& config() const noexcept { return config_; }

  /// Received total in-channel power [dBm] at the given receiver
  /// environment — the model-level answer the waveform realizes.
  [[nodiscard]] double received_power_dbm(const RxEnvironment& rx) const noexcept;

  /// Times the channel shaper was (re)designed — one per distinct tuning
  /// (filter-key cache; see tests).
  [[nodiscard]] std::size_t shaper_rebuilds() const noexcept { return shaper_rebuilds_; }

  /// Render-buffer pool statistics (zero-allocation assertions in tests).
  [[nodiscard]] RenderScratch::Stats render_scratch_stats() const noexcept {
    return scratch_.stats();
  }
  /// Bytes reserved inside the FFT convolver's scratch (0 until the FFT
  /// path has run; monotone afterwards).
  [[nodiscard]] std::size_t convolver_scratch_bytes() const noexcept {
    return fft_shaper_ ? fft_shaper_->scratch_capacity_bytes() : 0;
  }

 private:
  EmitterConfig config_;
  util::Rng rng_;
  // Cached channel-shaping filter, rebuilt when the tuning changes. The
  // taps are designed once per tuning; the direct and FFT engines are
  // built lazily from them (the per-render crossover heuristic picks one).
  struct FilterKey {
    double sample_rate_hz = 0.0;
    double low_hz = 0.0;
    double high_hz = 0.0;
    bool operator==(const FilterKey&) const = default;
  };
  FilterKey filter_key_;
  std::vector<std::complex<double>> shaper_taps_;
  std::unique_ptr<dsp::FirFilter> direct_shaper_;
  std::unique_ptr<dsp::FftConvolver> fft_shaper_;
  RenderScratch scratch_;
  std::size_t shaper_rebuilds_ = 0;
};

}  // namespace speccal::sdr
