#include "sdr/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"

namespace speccal::sdr {

namespace {

obs::Counter& injected_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("speccal_fault_injected_total");
  return c;
}

[[noreturn]] void throw_injected(FaultOp op, FaultKind kind, std::uint64_t index) {
  throw std::runtime_error(std::string("injected fault: ") + to_string(op) +
                           " op " + std::to_string(index) + " (" +
                           to_string(kind) + ")");
}

}  // namespace

const char* to_string(FaultOp op) noexcept {
  switch (op) {
    case FaultOp::kCapture: return "capture";
    case FaultOp::kTune: return "tune";
    case FaultOp::kGain: return "gain";
  }
  return "?";
}

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kShortRead: return "short_read";
    case FaultKind::kNanBurst: return "nan";
    case FaultKind::kSaturate: return "saturate";
    case FaultKind::kStall: return "stall";
    case FaultKind::kTuneRefuse: return "tune_refuse";
    case FaultKind::kGainDriftDb: return "gain_drift";
  }
  return "?";
}

FaultInjectingDevice::FaultInjectingDevice(std::unique_ptr<Device> inner,
                                           std::vector<FaultSpec> schedule,
                                           std::uint64_t seed,
                                           std::string node_label)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      node_label_(std::move(node_label)),
      rng_(seed) {
  if (inner_ == nullptr)
    throw std::invalid_argument("FaultInjectingDevice: inner device is null");
}

const FaultSpec* FaultInjectingDevice::match(FaultOp op, std::uint64_t index) {
  for (const FaultSpec& spec : schedule_) {
    if (spec.op != op) continue;
    if (index < spec.first) continue;
    if (spec.count >= 0 &&
        index >= spec.first + static_cast<std::uint64_t>(spec.count))
      continue;
    if (spec.probability < 1.0 && !rng_.chance(spec.probability)) continue;
    return &spec;
  }
  return nullptr;
}

void FaultInjectingDevice::note_injection(const FaultSpec& spec,
                                          std::uint64_t index) {
  ++injected_;
  injected_counter().add();
  obs::EventLog::global().log(
      obs::EventSeverity::kWarning, "fault_injected", node_label_, {},
      {obs::SpanArg::str("op", to_string(spec.op)),
       obs::SpanArg::str("kind", to_string(spec.kind)),
       obs::SpanArg::integer("op_index", static_cast<std::int64_t>(index))});
}

bool FaultInjectingDevice::tune(double center_freq_hz, double sample_rate_hz) {
  const std::uint64_t index = tune_ops_++;
  if (const FaultSpec* spec = match(FaultOp::kTune, index)) {
    note_injection(*spec, index);
    if (spec->kind == FaultKind::kThrow)
      throw_injected(FaultOp::kTune, spec->kind, index);
    // kTuneRefuse (and any misdirected kind): the PLL refuses to lock. The
    // inner device is left untouched so its previous tuning stays valid.
    return false;
  }
  return inner_->tune(center_freq_hz, sample_rate_hz);
}

void FaultInjectingDevice::set_gain_db(double gain_db) {
  const std::uint64_t index = gain_ops_++;
  if (const FaultSpec* spec = match(FaultOp::kGain, index);
      spec != nullptr && spec->kind == FaultKind::kGainDriftDb) {
    note_injection(*spec, index);
    inner_->set_gain_db(gain_db + spec->param);
    reported_gain_db_ = gain_db;  // the silent lie: report what was asked
    gain_lie_active_ = true;
    return;
  }
  gain_lie_active_ = false;
  inner_->set_gain_db(gain_db);
}

double FaultInjectingDevice::gain_db() const {
  return gain_lie_active_ ? reported_gain_db_ : inner_->gain_db();
}

dsp::Buffer FaultInjectingDevice::capture(std::size_t count) {
  const std::uint64_t index = capture_ops_++;
  const FaultSpec* spec = match(FaultOp::kCapture, index);
  if (spec == nullptr) return inner_->capture(count);
  note_injection(*spec, index);
  switch (spec->kind) {
    case FaultKind::kThrow:
      throw_injected(FaultOp::kCapture, spec->kind, index);
    case FaultKind::kStall: {
      const double stall_s = std::max(0.0, spec->param);
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
      stalled_s_ += stall_s;
      throw_injected(FaultOp::kCapture, spec->kind, index);
    }
    case FaultKind::kShortRead: {
      dsp::Buffer buf = inner_->capture(count);
      const double frac = std::clamp(spec->param, 0.0, 1.0);
      buf.resize(static_cast<std::size_t>(static_cast<double>(buf.size()) * frac));
      return buf;
    }
    case FaultKind::kNanBurst: {
      dsp::Buffer buf = inner_->capture(count);
      const float nan = std::numeric_limits<float>::quiet_NaN();
      std::fill(buf.begin(), buf.end(), dsp::Sample{nan, nan});
      return buf;
    }
    case FaultKind::kSaturate: {
      dsp::Buffer buf = inner_->capture(count);
      std::fill(buf.begin(), buf.end(), dsp::Sample{1.0f, 1.0f});
      return buf;
    }
    default:
      return inner_->capture(count);  // tune/gain kinds never reach here
  }
}

void FaultInjectingDevice::capture_into(std::span<dsp::Sample> out) {
  const std::uint64_t index = capture_ops_++;
  const FaultSpec* spec = match(FaultOp::kCapture, index);
  if (spec == nullptr) {
    inner_->capture_into(out);
    return;
  }
  note_injection(*spec, index);
  switch (spec->kind) {
    case FaultKind::kThrow:
      throw_injected(FaultOp::kCapture, spec->kind, index);
    case FaultKind::kStall: {
      const double stall_s = std::max(0.0, spec->param);
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
      stalled_s_ += stall_s;
      throw_injected(FaultOp::kCapture, spec->kind, index);
    }
    case FaultKind::kShortRead: {
      // Only the head of the buffer is written; the tail keeps whatever the
      // caller had there (stale samples) — the nastiest real-world variant.
      const double frac = std::clamp(spec->param, 0.0, 1.0);
      const auto n =
          static_cast<std::size_t>(static_cast<double>(out.size()) * frac);
      inner_->capture_into(out.subspan(0, n));
      return;
    }
    case FaultKind::kNanBurst: {
      inner_->capture_into(out);
      const float nan = std::numeric_limits<float>::quiet_NaN();
      std::fill(out.begin(), out.end(), dsp::Sample{nan, nan});
      return;
    }
    case FaultKind::kSaturate: {
      inner_->capture_into(out);
      std::fill(out.begin(), out.end(), dsp::Sample{1.0f, 1.0f});
      return;
    }
    default:
      inner_->capture_into(out);
      return;
  }
}

// --- Profiles ---------------------------------------------------------------

const std::vector<FaultSpec>* FaultProfile::faults_for(
    std::size_t node_index) const noexcept {
  for (const NodeFaults& n : nodes)
    if (n.index == node_index && !n.faults.empty()) return &n.faults;
  return nullptr;
}

void FaultProfile::validate() const {
  if (retry_max_attempts < 1)
    throw std::invalid_argument("FaultProfile.retry_max_attempts must be >= 1");
  if (initial_backoff_s < 0.0)
    throw std::invalid_argument("FaultProfile.initial_backoff_s must be >= 0");
  if (stage_deadline_s < 0.0)
    throw std::invalid_argument("FaultProfile.stage_deadline_s must be >= 0");
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const auto where = [n](std::size_t f) {
      return "FaultProfile.nodes[" + std::to_string(n) + "].faults[" +
             std::to_string(f) + "]";
    };
    for (std::size_t f = 0; f < nodes[n].faults.size(); ++f) {
      const FaultSpec& spec = nodes[n].faults[f];
      if (spec.probability < 0.0 || spec.probability > 1.0)
        throw std::invalid_argument(where(f) +
                                    ".probability must be in [0, 1]");
      if (spec.kind == FaultKind::kShortRead &&
          (spec.param < 0.0 || spec.param > 1.0))
        throw std::invalid_argument(
            where(f) + ".param (short-read fraction) must be in [0, 1]");
      if (spec.kind == FaultKind::kStall && spec.param < 0.0)
        throw std::invalid_argument(where(f) +
                                    ".param (stall seconds) must be >= 0");
    }
  }
}

std::unique_ptr<Device> FaultProfile::wrap(std::unique_ptr<Device> device,
                                           std::size_t node_index,
                                           std::string node_label) const {
  const std::vector<FaultSpec>* faults = faults_for(node_index);
  if (faults == nullptr) return device;
  // Per-node injector seed: stable function of the profile seed and the
  // node index, so probabilistic faults are reproducible per node no matter
  // which worker thread builds the device.
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ull * (node_index + 1));
  const std::uint64_t node_seed = util::splitmix64(state);
  return std::make_unique<FaultInjectingDevice>(std::move(device), *faults,
                                                node_seed,
                                                std::move(node_label));
}

namespace {

/// Minimal JSON reader for fault profiles only. The library's JSON support
/// is deliberately write-only (util/json.hpp); operator-supplied chaos
/// profiles are the one place a parse is required, so this stays a private,
/// schema-sized subset: objects, arrays, strings (no \u escapes), numbers,
/// booleans. Anything else is a hard std::invalid_argument.
class ProfileParser {
 public:
  explicit ProfileParser(std::string_view text) : text_(text) {}

  FaultProfile parse() {
    FaultProfile profile;
    profile.name = "custom";
    profile.expected_quarantined_nodes = 0;
    skip_ws();
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "name") profile.name = parse_string();
      else if (key == "seed") profile.seed = static_cast<std::uint64_t>(parse_number());
      else if (key == "retry_max_attempts") profile.retry_max_attempts = static_cast<int>(parse_number());
      else if (key == "initial_backoff_s") profile.initial_backoff_s = parse_number();
      else if (key == "stage_deadline_s") profile.stage_deadline_s = parse_number();
      else if (key == "expected_quarantined_nodes") profile.expected_quarantined_nodes = static_cast<std::size_t>(parse_number());
      else if (key == "nodes") parse_nodes(profile);
      else fail("unknown profile key '" + key + "'");
      skip_ws();
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after profile");
    return profile;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("fault profile: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') fail("escapes are not supported in fault profiles");
      out.push_back(c);
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return v;
  }

  FaultOp parse_op() {
    const std::string s = parse_string();
    if (s == "capture") return FaultOp::kCapture;
    if (s == "tune") return FaultOp::kTune;
    if (s == "gain") return FaultOp::kGain;
    fail("unknown op '" + s + "' (capture|tune|gain)");
  }

  FaultKind parse_kind() {
    const std::string s = parse_string();
    if (s == "throw") return FaultKind::kThrow;
    if (s == "short_read") return FaultKind::kShortRead;
    if (s == "nan") return FaultKind::kNanBurst;
    if (s == "saturate") return FaultKind::kSaturate;
    if (s == "stall") return FaultKind::kStall;
    if (s == "tune_refuse") return FaultKind::kTuneRefuse;
    if (s == "gain_drift") return FaultKind::kGainDriftDb;
    fail("unknown kind '" + s +
         "' (throw|short_read|nan|saturate|stall|tune_refuse|gain_drift)");
  }

  FaultSpec parse_fault() {
    FaultSpec spec;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "op") spec.op = parse_op();
      else if (key == "kind") spec.kind = parse_kind();
      else if (key == "first") spec.first = static_cast<std::uint64_t>(parse_number());
      else if (key == "count") spec.count = static_cast<std::int64_t>(parse_number());
      else if (key == "param") spec.param = parse_number();
      else if (key == "probability") spec.probability = parse_number();
      else fail("unknown fault key '" + key + "'");
      skip_ws();
    }
    return spec;
  }

  void parse_nodes(FaultProfile& profile) {
    expect('[');
    if (try_consume(']')) return;
    for (;;) {
      FaultProfile::NodeFaults node;
      expect('{');
      bool first = true;
      while (!try_consume('}')) {
        if (!first) expect(',');
        first = false;
        const std::string key = parse_string();
        expect(':');
        if (key == "index") {
          node.index = static_cast<std::size_t>(parse_number());
        } else if (key == "faults") {
          expect('[');
          if (!try_consume(']')) {
            for (;;) {
              node.faults.push_back(parse_fault());
              if (try_consume(']')) break;
              expect(',');
            }
          }
        } else {
          fail("unknown node key '" + key + "'");
        }
        skip_ws();
      }
      profile.nodes.push_back(std::move(node));
      if (try_consume(']')) return;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// "flaky20": scripted for a 20-node fleet. Three transient nodes whose
/// first two captures throw (recover on retry 3), one dead node whose every
/// capture throws (quarantined). Everyone else untouched — their reports
/// must stay bitwise identical to a fault-free run.
FaultProfile flaky20_profile() {
  FaultProfile profile;
  profile.name = "flaky20";
  profile.seed = 20;
  profile.retry_max_attempts = 4;
  profile.initial_backoff_s = 0.01;
  profile.expected_quarantined_nodes = 1;
  const FaultSpec transient{FaultOp::kCapture, FaultKind::kThrow, 0, 2, 0.0, 1.0};
  const FaultSpec dead{FaultOp::kCapture, FaultKind::kThrow, 0, -1, 0.0, 1.0};
  profile.nodes.push_back({2, {transient}});
  profile.nodes.push_back({5, {dead}});
  profile.nodes.push_back({7, {transient}});
  profile.nodes.push_back({12, {transient}});
  return profile;
}

/// "chaos": flaky20 plus silent data corruption — a deaf tuner, a NaN
/// spewer, a saturated front end and a gain liar. Only the dead node
/// quarantines; the corrupted nodes complete with degraded, low-trust
/// reports (the calibration layer's job is to notice).
FaultProfile chaos_profile() {
  FaultProfile profile = flaky20_profile();
  profile.name = "chaos";
  profile.seed = 1337;
  profile.nodes.push_back(
      {9, {FaultSpec{FaultOp::kTune, FaultKind::kTuneRefuse, 0, -1, 0.0, 1.0}}});
  profile.nodes.push_back(
      {14, {FaultSpec{FaultOp::kCapture, FaultKind::kNanBurst, 0, -1, 0.0, 1.0}}});
  profile.nodes.push_back(
      {17, {FaultSpec{FaultOp::kCapture, FaultKind::kSaturate, 0, -1, 0.0, 0.5},
            FaultSpec{FaultOp::kGain, FaultKind::kGainDriftDb, 0, -1, 6.0, 1.0}}});
  return profile;
}

}  // namespace

FaultProfile make_fault_profile(std::string_view name_or_json) {
  const auto validated = [](FaultProfile profile) {
    profile.validate();
    return profile;
  };
  // Inline JSON document?
  const auto non_ws = name_or_json.find_first_not_of(" \t\r\n");
  if (non_ws != std::string_view::npos && name_or_json[non_ws] == '{')
    return validated(ProfileParser(name_or_json).parse());

  if (name_or_json == "none") return FaultProfile{};
  if (name_or_json == "flaky20") return validated(flaky20_profile());
  if (name_or_json == "chaos") return validated(chaos_profile());
  throw std::invalid_argument(
      "unknown fault profile '" + std::string(name_or_json) +
      "' (built-ins: none, flaky20, chaos; or an inline JSON document)");
}

}  // namespace speccal::sdr
