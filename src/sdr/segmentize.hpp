// Producer side of the Electrosense+ split: record any Device's captures
// as wire segments.
//
// `SegmentizingDevice` is a transparent decorator (like FaultInjectingDevice
// with an empty schedule): every call forwards to the wrapped device
// unchanged, and every capture's samples + tuner state are additionally
// encoded through a net::SegmentWriter and handed to a sink — typically
// `queue.push(...)` feeding a decode farm. Because the decorator never
// perturbs the wrapped device, the producer's own calibration run doubles
// as the in-process baseline for the bitwise round-trip gate.
//
// The end-of-stream marker is emitted by finish(), or by the destructor if
// finish() was never called — the fleet engine destroys each node's device
// at finalize, which is exactly when its stream is complete.
#pragma once

#include <functional>
#include <memory>

#include "net/segment.hpp"
#include "sdr/device.hpp"

namespace speccal::sdr {

/// Decorator recording every capture of `inner` as wire segments. Not
/// thread-safe (like Device itself: one device per fleet worker).
class SegmentizingDevice final : public Device {
 public:
  using Sink = std::function<void(net::Segment&&)>;

  /// Validates `config` (throws std::invalid_argument naming the field).
  /// `sink` receives every encoded segment, on whichever thread drives the
  /// device.
  SegmentizingDevice(std::unique_ptr<Device> inner, net::SegmentWriterConfig config,
                     std::uint32_t stream_id, Sink sink);

  /// Emits the end-of-stream marker if finish() was never called.
  ~SegmentizingDevice() override;

  /// Emit the end-of-stream marker. Idempotent; called implicitly by the
  /// destructor.
  void finish();

  // Device interface --------------------------------------------------------
  [[nodiscard]] DeviceInfo info() const override { return inner_->info(); }
  [[nodiscard]] geo::Geodetic position() const override { return inner_->position(); }
  [[nodiscard]] SimControl* sim_control() noexcept override {
    return inner_->sim_control();
  }
  bool tune(double center_freq_hz, double sample_rate_hz) override {
    return inner_->tune(center_freq_hz, sample_rate_hz);
  }
  void set_gain_mode(GainMode mode) override { inner_->set_gain_mode(mode); }
  void set_gain_db(double gain_db) override { inner_->set_gain_db(gain_db); }
  [[nodiscard]] double gain_db() const override { return inner_->gain_db(); }
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override;
  void capture_into(std::span<dsp::Sample> out) override;
  [[nodiscard]] double stream_time_s() const override {
    return inner_->stream_time_s();
  }
  [[nodiscard]] double center_freq_hz() const override {
    return inner_->center_freq_hz();
  }
  [[nodiscard]] double sample_rate_hz() const override {
    return inner_->sample_rate_hz();
  }

  [[nodiscard]] Device& inner() noexcept { return *inner_; }
  [[nodiscard]] const net::SegmentWriter& writer() const noexcept { return writer_; }

 private:
  void record(double timestamp_s, std::span<const dsp::Sample> samples);

  std::unique_ptr<Device> inner_;
  net::SegmentWriter writer_;
  Sink sink_;
  bool finished_ = false;
};

}  // namespace speccal::sdr
