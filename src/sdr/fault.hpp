// Fault injection for SDR devices — the chaos layer.
//
// Crowd-sourced deployments (Electrosense, RadioHound) report sensor
// flakiness as the dominant operational cost: cheap SDRs stall mid-stream,
// refuse tunes after thermal drift, return short or garbage buffers, and
// silently misreport gain. `FaultInjectingDevice` reproduces exactly those
// failure modes on top of any `sdr::Device`, driven by a *scriptable,
// seeded* schedule so every chaos run is deterministic: same wrapped
// device + same schedule + same seed => the same faults fire at the same
// operation indices, and the calibration output is bit-for-bit repeatable.
//
// With an empty schedule the decorator is transparent (wrapped == unwrapped,
// bitwise) — tests/test_faults.cpp locks that property — so it can sit
// permanently in a fleet factory and only the scripted nodes misbehave.
//
// `FaultProfile` packages a fleet's worth of schedules (plus the retry
// policy knobs the calibration engine should run with) and parses from a
// built-in name ("flaky20", "chaos") or an inline JSON document, which is
// what `fleet_audit --fault-profile=...` feeds through.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sdr/device.hpp"
#include "util/rng.hpp"

namespace speccal::sdr {

/// Which device operation a fault spec targets. Each operation kind has its
/// own monotonically increasing call index (the schedule's time axis):
/// capture() and capture_into() share the kCapture counter.
enum class FaultOp : std::uint8_t {
  kCapture,  // capture() / capture_into()
  kTune,     // tune()
  kGain,     // set_gain_db()
};

/// Fault taxonomy (DESIGN.md §11). Capture kinds apply to kCapture ops,
/// kTuneRefuse/kThrow to kTune ops, kGainDriftDb to kGain ops.
enum class FaultKind : std::uint8_t {
  kThrow,       // the call throws std::runtime_error (driver I/O error)
  kShortRead,   // only `param` fraction of the samples arrive; the tail of a
                // caller-owned buffer is left untouched (stale data)
  kNanBurst,    // buffer filled with NaN samples (DC-spike / DSP poison)
  kSaturate,    // buffer pinned at ADC full scale (strong interferer / clip)
  kStall,       // sleeps `param` seconds, then throws — a hung stream read
                // surfaced by the driver watchdog (how SoapySDR timeouts look)
  kTuneRefuse,  // tune() returns false (PLL refuses to lock)
  kGainDriftDb, // set_gain_db applies a silent `param` dB offset while
                // gain_db() keeps reporting the requested value (the lie the
                // calibration pipeline exists to catch)
};

[[nodiscard]] const char* to_string(FaultOp op) noexcept;
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One scripted fault: fires on ops `[first, first + count)` of the
/// targeted kind (count < 0 = forever), optionally gated by a seeded
/// Bernoulli roll. The first matching spec in schedule order wins.
struct FaultSpec {
  FaultOp op = FaultOp::kCapture;
  FaultKind kind = FaultKind::kThrow;
  std::uint64_t first = 0;   // 0-based op index where the window opens
  std::int64_t count = 1;    // ops affected; negative = persistent
  double param = 0.0;        // fraction (kShortRead), seconds (kStall),
                             // dB (kGainDriftDb); unused otherwise
  double probability = 1.0;  // < 1.0: rolled per matching op on the
                             // device's seeded Rng (deterministic)
};

/// Decorator that forwards every Device call to `inner`, injecting the
/// scheduled faults. Not thread-safe (like Device itself: one device per
/// fleet worker).
class FaultInjectingDevice final : public Device {
 public:
  /// `node_label` tags this device's injection events in the obs::EventLog
  /// journal (empty = unattributed; the op counters still tick).
  FaultInjectingDevice(std::unique_ptr<Device> inner,
                       std::vector<FaultSpec> schedule,
                       std::uint64_t seed = 0, std::string node_label = {});

  // Device interface --------------------------------------------------------
  [[nodiscard]] DeviceInfo info() const override { return inner_->info(); }
  [[nodiscard]] geo::Geodetic position() const override { return inner_->position(); }
  [[nodiscard]] SimControl* sim_control() noexcept override {
    return inner_->sim_control();
  }
  bool tune(double center_freq_hz, double sample_rate_hz) override;
  void set_gain_mode(GainMode mode) override { inner_->set_gain_mode(mode); }
  void set_gain_db(double gain_db) override;
  [[nodiscard]] double gain_db() const override;
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override;
  void capture_into(std::span<dsp::Sample> out) override;
  [[nodiscard]] double stream_time_s() const override {
    return inner_->stream_time_s();
  }
  [[nodiscard]] double center_freq_hz() const override {
    return inner_->center_freq_hz();
  }
  [[nodiscard]] double sample_rate_hz() const override {
    return inner_->sample_rate_hz();
  }

  // Chaos bookkeeping -------------------------------------------------------
  [[nodiscard]] Device& inner() noexcept { return *inner_; }
  [[nodiscard]] std::uint64_t injected_count() const noexcept { return injected_; }
  [[nodiscard]] std::uint64_t capture_ops() const noexcept { return capture_ops_; }
  [[nodiscard]] std::uint64_t tune_ops() const noexcept { return tune_ops_; }
  /// Wall time spent inside injected kStall faults [s].
  [[nodiscard]] double stalled_s() const noexcept { return stalled_s_; }

 private:
  /// First spec whose window (and probability roll) covers op index `index`.
  [[nodiscard]] const FaultSpec* match(FaultOp op, std::uint64_t index);
  void note_injection(const FaultSpec& spec, std::uint64_t index);

  std::unique_ptr<Device> inner_;
  std::vector<FaultSpec> schedule_;
  std::string node_label_;
  util::Rng rng_;
  std::uint64_t capture_ops_ = 0;
  std::uint64_t tune_ops_ = 0;
  std::uint64_t gain_ops_ = 0;
  std::uint64_t injected_ = 0;
  double stalled_s_ = 0.0;
  double reported_gain_db_ = 0.0;
  bool gain_lie_active_ = false;
};

/// Per-fleet fault script plus the retry knobs a chaos run should use.
/// Node indices refer to positions in the fleet job list.
struct FaultProfile {
  std::string name = "none";
  std::uint64_t seed = 1;
  /// Retry policy the calibration engine should adopt for this profile.
  int retry_max_attempts = 4;
  double initial_backoff_s = 0.01;
  double stage_deadline_s = 0.0;  // 0 = no per-stage deadline
  /// Self-check target for chaos smoke runs: how many nodes the schedule is
  /// designed to quarantine (fleet_audit exits nonzero on a mismatch).
  std::size_t expected_quarantined_nodes = 0;

  struct NodeFaults {
    std::size_t index = 0;
    std::vector<FaultSpec> faults;
  };
  std::vector<NodeFaults> nodes;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  /// Throws std::invalid_argument naming the field (e.g.
  /// "FaultProfile.retry_max_attempts must be >= 1") on out-of-range values
  /// — the shared config-validation convention (DESIGN.md §13).
  /// make_fault_profile() calls this on every profile it returns.
  void validate() const;
  [[nodiscard]] const std::vector<FaultSpec>* faults_for(
      std::size_t node_index) const noexcept;
  /// Wrap `device` in a FaultInjectingDevice when node `node_index` has
  /// scripted faults; returns it unchanged (no decorator) otherwise.
  /// `node_label` (typically the claims node id) attributes the injection
  /// events in the journal.
  [[nodiscard]] std::unique_ptr<Device> wrap(std::unique_ptr<Device> device,
                                             std::size_t node_index,
                                             std::string node_label = {}) const;
};

/// Resolve `--fault-profile` input: a built-in name ("none", "flaky20",
/// "chaos") or, when the string starts with '{', an inline JSON document:
///   {"name":"custom","seed":7,"retry_max_attempts":4,"stage_deadline_s":0,
///    "initial_backoff_s":0.01,"expected_quarantined_nodes":1,
///    "nodes":[{"index":5,"faults":[{"op":"capture","kind":"throw",
///              "first":0,"count":-1,"param":0,"probability":1}]}]}
/// Throws std::invalid_argument on an unknown name or malformed document.
[[nodiscard]] FaultProfile make_fault_profile(std::string_view name_or_json);

}  // namespace speccal::sdr
