#include "sdr/replay.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace speccal::sdr {

ReplayDevice::ReplayDevice(DeviceInfo info, geo::Geodetic position,
                           std::shared_ptr<const std::vector<CaptureRecord>> records,
                           std::optional<RxEnvironment> rx)
    : info_(std::move(info)),
      position_(position),
      records_(std::move(records)),
      rx_(rx) {
  if (!records_) {
    throw std::invalid_argument("ReplayDevice.records must not be null");
  }
}

bool ReplayDevice::tune(double center_freq_hz, double sample_rate_hz) {
  // Same acceptance rule as SimulatedSdr::tune, driven by the same
  // DeviceInfo — a tune the producer's device refused is refused here too,
  // so the replayed pipeline skips the same captures.
  const bool ok = center_freq_hz >= info_.min_freq_hz &&
                  center_freq_hz <= info_.max_freq_hz && sample_rate_hz > 0.0 &&
                  sample_rate_hz <= info_.max_sample_rate_hz;
  center_freq_hz_ = center_freq_hz;
  sample_rate_hz_ = sample_rate_hz;
  return ok;
}

const CaptureRecord& ReplayDevice::expect(std::size_t count) {
  if (next_ >= records_->size()) {
    throw std::runtime_error(
        "ReplayDevice: capture requested after " + std::to_string(next_) +
        " records were exhausted (replayed pipeline diverged from recording)");
  }
  const CaptureRecord& rec = (*records_)[next_];
  if (rec.center_freq_hz != center_freq_hz_ || rec.sample_rate_hz != sample_rate_hz_ ||
      rec.samples.size() != count || rec.timestamp_s != stream_time_s_) {
    throw std::runtime_error(
        "ReplayDevice: record " + std::to_string(next_) + " mismatch: recorded (" +
        std::to_string(rec.center_freq_hz) + " Hz, " +
        std::to_string(rec.sample_rate_hz) + " sps, " +
        std::to_string(rec.samples.size()) + " samples, t=" +
        std::to_string(rec.timestamp_s) + ") vs requested (" +
        std::to_string(center_freq_hz_) + " Hz, " + std::to_string(sample_rate_hz_) +
        " sps, " + std::to_string(count) + " samples, t=" +
        std::to_string(stream_time_s_) + ")");
  }
  return rec;
}

dsp::Buffer ReplayDevice::capture(std::size_t count) {
  dsp::Buffer buf(count);
  capture_into(buf);
  return buf;
}

void ReplayDevice::capture_into(std::span<dsp::Sample> out) {
  if (out.empty()) return;  // zero-sample captures record nothing
  const CaptureRecord& rec = expect(out.size());
  std::copy(rec.samples.begin(), rec.samples.end(), out.begin());
  // Adopt the recorded gain: identical to the set value in manual mode, and
  // the AGC-chosen gain when the producer ran AGC (SimulatedSdr exposes the
  // chosen gain after capture the same way).
  gain_db_ = rec.gain_db;
  ++next_;
  stream_time_s_ += static_cast<double>(out.size()) / sample_rate_hz_;
}

}  // namespace speccal::sdr
