// SDR device abstraction.
//
// The calibration pipeline talks only to this interface; the repository
// ships `SimulatedSdr`, and a hardware-backed implementation (BladeRF,
// RTL-SDR, ...) could be added without touching the pipeline. The interface
// mirrors the subset of SoapySDR-style functionality the paper's
// measurements require: tune, set gain or AGC, stream I/Q.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>

#include "dsp/iq.hpp"
#include "geo/wgs84.hpp"

namespace speccal::sdr {

struct RxEnvironment;  // sdr/sim.hpp — simulation-side receiver surroundings

enum class GainMode {
  kManual,  // paper's TV measurement: fixed gain so readings are comparable
  kAgc,     // automatic gain control
};

/// Static capabilities reported by a device (what an operator *claims*
/// versus what the calibration pipeline verifies).
struct DeviceInfo {
  std::string driver;
  double min_freq_hz = 0.0;
  double max_freq_hz = 0.0;
  double max_sample_rate_hz = 0.0;
  double noise_figure_db = 7.0;
  double full_scale_input_dbm = 0.0;  // input power that hits ADC full scale at 0 dB gain
  int adc_bits = 12;
  /// Reference-oscillator error [parts per million]. Cheap SDR TCXOs are a
  /// few ppm off; at 1 GHz each ppm shifts the tuned frequency by 1 kHz.
  /// The LO calibration module (calib/lo_calibration.hpp) estimates this
  /// from broadcast pilots, like kalibrate-rtl does from GSM.
  double lo_error_ppm = 0.0;
  /// Loss between antenna port and LNA [dB] — a damaged feedline or
  /// corroded connector. Attenuates every received signal (but not the
  /// receiver's own thermal noise); invisible to link-budget expectations,
  /// which is exactly why the calibration has to detect it empirically.
  double frontend_loss_db = 0.0;
};

/// Narrow capability interface for simulation-backed devices.
///
/// Model-level calibration stages (link-budget survey fidelity, the
/// srsUE-style cell scan) need the ground-truth receiver surroundings and
/// the ability to skip stream time between measurement windows — things a
/// real SDR cannot provide. Callers obtain this surface through
/// `Device::sim_control()` and must degrade gracefully when it is null.
class SimControl {
 public:
  virtual ~SimControl() = default;

  /// Ground-truth surroundings (obstructions, fading, antenna) of the
  /// simulated receiver.
  [[nodiscard]] virtual const RxEnvironment& rx_environment() const noexcept = 0;

  /// Jump the stream clock (e.g. skip between measurement windows).
  virtual void advance_time(double seconds) noexcept = 0;
};

class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual DeviceInfo info() const = 0;

  /// Geodetic position of the node. Real hardware reads GPS; the survey
  /// joins receptions against ground truth queried around this point.
  [[nodiscard]] virtual geo::Geodetic position() const = 0;

  /// Capability query: the simulation control surface, or nullptr when the
  /// device is real hardware.
  [[nodiscard]] virtual SimControl* sim_control() noexcept { return nullptr; }

  /// Tune the front end. Returns false if the device cannot reach
  /// `center_freq_hz` or `sample_rate_hz` (pipeline records the failure).
  virtual bool tune(double center_freq_hz, double sample_rate_hz) = 0;

  virtual void set_gain_mode(GainMode mode) = 0;
  virtual void set_gain_db(double gain_db) = 0;
  [[nodiscard]] virtual double gain_db() const = 0;

  /// Capture `count` I/Q samples starting at the device's current stream
  /// time. Advances stream time by count / sample_rate.
  [[nodiscard]] virtual dsp::Buffer capture(std::size_t count) = 0;

  /// Capture into a caller-owned buffer — the zero-allocation path for
  /// streaming measurement loops that reuse one block. Semantics match
  /// capture(out.size()). The default adapter falls back to capture();
  /// devices with a native scatter path (SimulatedSdr, real streaming
  /// drivers) override it.
  virtual void capture_into(std::span<dsp::Sample> out) {
    const dsp::Buffer buf = capture(out.size());
    std::copy(buf.begin(), buf.end(), out.begin());
  }

  /// Current stream time [s] since device creation.
  [[nodiscard]] virtual double stream_time_s() const = 0;

  [[nodiscard]] virtual double center_freq_hz() const = 0;
  [[nodiscard]] virtual double sample_rate_hz() const = 0;
};

}  // namespace speccal::sdr
