#include "sdr/segmentize.hpp"

#include <utility>

namespace speccal::sdr {

SegmentizingDevice::SegmentizingDevice(std::unique_ptr<Device> inner,
                                       net::SegmentWriterConfig config,
                                       std::uint32_t stream_id, Sink sink)
    : inner_(std::move(inner)),
      writer_(config, stream_id),
      sink_(std::move(sink)) {}

SegmentizingDevice::~SegmentizingDevice() {
  try {
    finish();
  } catch (...) {
    // A destructor must not throw; a sink failing during teardown just
    // truncates the stream (the farm reports the missing end-of-stream).
  }
}

void SegmentizingDevice::finish() {
  if (finished_) return;
  finished_ = true;
  net::CaptureMeta meta;
  meta.center_freq_hz = inner_->center_freq_hz();
  meta.sample_rate_hz = inner_->sample_rate_hz();
  meta.gain_db = inner_->gain_db();
  meta.timestamp_s = inner_->stream_time_s();
  writer_.finish(meta, sink_);
}

void SegmentizingDevice::record(double timestamp_s,
                                std::span<const dsp::Sample> samples) {
  net::CaptureMeta meta;
  meta.center_freq_hz = inner_->center_freq_hz();
  meta.sample_rate_hz = inner_->sample_rate_hz();
  // Gain is read *after* the capture so an AGC-chosen gain is recorded;
  // the replay device adopts it the same way.
  meta.gain_db = inner_->gain_db();
  meta.timestamp_s = timestamp_s;
  writer_.write_capture(meta, samples, sink_);
}

dsp::Buffer SegmentizingDevice::capture(std::size_t count) {
  const double start_s = inner_->stream_time_s();
  dsp::Buffer buf = inner_->capture(count);
  record(start_s, buf);
  return buf;
}

void SegmentizingDevice::capture_into(std::span<dsp::Sample> out) {
  const double start_s = inner_->stream_time_s();
  inner_->capture_into(out);
  record(start_s, out);
}

}  // namespace speccal::sdr
