// Simulated SDR front end and the emitter plug-in interface.
//
// `SimulatedSdr` renders the RF world into I/Q buffers:
//   1. every registered SignalSource adds its contribution (already carrying
//      link-budget amplitude) in sqrt-milliwatt units,
//   2. thermal noise (kTB * NF over the capture bandwidth) is added,
//   3. gain (manual or AGC) maps antenna-port power to ADC full scale,
//   4. the ADC quantizes and clips.
// Sample amplitude convention: during accumulation 1.0 = sqrt(1 mW), so a
// source received at P dBm renders with RMS amplitude 10^(P/20) relative to
// 1 mW. After gain g dB, the recorded dBFS of a signal equals
// P_dBm + g - full_scale_input_dbm.
#pragma once

#include <memory>
#include <vector>

#include "dsp/iq.hpp"
#include "geo/wgs84.hpp"
#include "sdr/device.hpp"
#include "sdr/rx_environment.hpp"
#include "util/rng.hpp"

namespace speccal::sdr {

/// Parameters of one capture request handed to each source.
struct CaptureContext {
  double center_freq_hz = 0.0;
  double sample_rate_hz = 0.0;
  double start_time_s = 0.0;
  std::size_t sample_count = 0;
  const RxEnvironment* rx = nullptr;
};

/// A transmitter (or population of transmitters) that can render its
/// antenna-port contribution into a capture buffer.
class SignalSource {
 public:
  virtual ~SignalSource() = default;

  /// Add this source's samples into `accum` (size = ctx.sample_count).
  /// Implementations must handle being entirely out of band (no-op).
  virtual void render(const CaptureContext& ctx, std::span<dsp::Sample> accum) = 0;
};

/// Software model of a wide-band receiver (defaults match a BladeRF-class
/// device: 70 MHz - 6 GHz, 61.44 Msps max, 12-bit ADC).
class SimulatedSdr final : public Device, public SimControl {
 public:
  SimulatedSdr(DeviceInfo info, RxEnvironment rx, util::Rng rng);

  /// Convenience: BladeRF-like defaults.
  [[nodiscard]] static DeviceInfo bladerf_like_info();

  void add_source(std::shared_ptr<SignalSource> source);

  // Device interface -------------------------------------------------------
  [[nodiscard]] DeviceInfo info() const override { return info_; }
  [[nodiscard]] geo::Geodetic position() const override { return rx_.position; }
  [[nodiscard]] SimControl* sim_control() noexcept override { return this; }
  bool tune(double center_freq_hz, double sample_rate_hz) override;
  void set_gain_mode(GainMode mode) override { gain_mode_ = mode; }
  void set_gain_db(double gain_db) override { gain_db_ = gain_db; }
  [[nodiscard]] double gain_db() const override { return gain_db_; }
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override;
  /// Native zero-allocation capture: renders, adds noise, gains and
  /// quantizes entirely inside `out` (sources reuse their own
  /// RenderScratch pools, so steady-state calls never touch the heap).
  void capture_into(std::span<dsp::Sample> out) override;
  [[nodiscard]] double stream_time_s() const override { return stream_time_s_; }
  [[nodiscard]] double center_freq_hz() const override { return center_freq_hz_; }
  [[nodiscard]] double sample_rate_hz() const override { return sample_rate_hz_; }

  // SimControl interface ---------------------------------------------------
  [[nodiscard]] const RxEnvironment& rx_environment() const noexcept override {
    return rx_;
  }
  void advance_time(double seconds) noexcept override { stream_time_s_ += seconds; }

  // Simulation extras ------------------------------------------------------
  /// AGC target output power [dBFS].
  void set_agc_target_dbfs(double dbfs) noexcept { agc_target_dbfs_ = dbfs; }

 private:
  void add_thermal_noise(std::span<dsp::Sample> buf);
  void quantize(std::span<dsp::Sample> buf) noexcept;

  DeviceInfo info_;
  RxEnvironment rx_;
  util::Rng rng_;
  std::vector<std::shared_ptr<SignalSource>> sources_;

  double center_freq_hz_ = 100e6;        // what the caller asked for
  double actual_center_freq_hz_ = 100e6;  // where the (imperfect) LO locked
  double sample_rate_hz_ = 2.4e6;
  double gain_db_ = 30.0;
  GainMode gain_mode_ = GainMode::kManual;
  double agc_target_dbfs_ = -12.0;
  double stream_time_s_ = 0.0;
  bool tuned_ok_ = true;
};

}  // namespace speccal::sdr
