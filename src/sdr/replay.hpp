// Backend side of the Electrosense+ split: replay recorded captures.
//
// `ReplayDevice` is an sdr::Device that serves a pre-decoded sequence of
// CaptureRecords instead of rendering an RF world. It mirrors
// SimulatedSdr's observable contract exactly — tune() applies the same
// DeviceInfo range check, capture() advances stream time by count / rate,
// advance_time() jumps the clock — so a calibration pipeline run over a
// ReplayDevice makes the same decisions (tune successes, stage order,
// timestamps) as the producer run that recorded the stream. With float32
// segments the served samples are bitwise the producer's, which is what
// makes the decode farm's round-trip reports bitwise-identical.
//
// Every capture is verified against the next record (frequency, rate,
// count, timestamp); a mismatch means the replayed pipeline diverged from
// the recording and throws rather than silently calibrating on the wrong
// samples.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sdr/device.hpp"
#include "sdr/rx_environment.hpp"

namespace speccal::sdr {

/// One reconstructed device capture: the tuner state recorded on the wire
/// plus the decoded samples.
struct CaptureRecord {
  double center_freq_hz = 0.0;
  double sample_rate_hz = 0.0;
  double gain_db = 0.0;
  double timestamp_s = 0.0;  // producer stream time at capture start
  dsp::Buffer samples;
};

/// Device serving recorded captures in order. Not thread-safe (one device
/// per fleet worker, like every other Device).
class ReplayDevice final : public Device, public SimControl {
 public:
  /// `records` is shared so a fleet job factory can hand the same decoded
  /// stream to a device without copying sample data. `rx` enables the
  /// SimControl surface (model-only stages need the receiver surroundings);
  /// the models it points into must outlive the device.
  ReplayDevice(DeviceInfo info, geo::Geodetic position,
               std::shared_ptr<const std::vector<CaptureRecord>> records,
               std::optional<RxEnvironment> rx = std::nullopt);

  // Device interface --------------------------------------------------------
  [[nodiscard]] DeviceInfo info() const override { return info_; }
  [[nodiscard]] geo::Geodetic position() const override { return position_; }
  [[nodiscard]] SimControl* sim_control() noexcept override {
    return rx_ ? this : nullptr;
  }
  bool tune(double center_freq_hz, double sample_rate_hz) override;
  void set_gain_mode(GainMode mode) override { gain_mode_ = mode; }
  void set_gain_db(double gain_db) override { gain_db_ = gain_db; }
  [[nodiscard]] double gain_db() const override { return gain_db_; }
  [[nodiscard]] dsp::Buffer capture(std::size_t count) override;
  void capture_into(std::span<dsp::Sample> out) override;
  [[nodiscard]] double stream_time_s() const override { return stream_time_s_; }
  [[nodiscard]] double center_freq_hz() const override { return center_freq_hz_; }
  [[nodiscard]] double sample_rate_hz() const override { return sample_rate_hz_; }

  // SimControl interface ----------------------------------------------------
  [[nodiscard]] const RxEnvironment& rx_environment() const noexcept override {
    return *rx_;
  }
  void advance_time(double seconds) noexcept override { stream_time_s_ += seconds; }

  // Replay bookkeeping ------------------------------------------------------
  [[nodiscard]] std::size_t records_consumed() const noexcept { return next_; }
  [[nodiscard]] std::size_t records_remaining() const noexcept {
    return records_->size() - next_;
  }

 private:
  /// Next record, verified against the current tuner state and `count`.
  /// Throws std::runtime_error on divergence or exhaustion.
  [[nodiscard]] const CaptureRecord& expect(std::size_t count);

  DeviceInfo info_;
  geo::Geodetic position_;
  std::shared_ptr<const std::vector<CaptureRecord>> records_;
  std::optional<RxEnvironment> rx_;
  std::size_t next_ = 0;

  double center_freq_hz_ = 100e6;
  double sample_rate_hz_ = 2.4e6;
  double gain_db_ = 30.0;
  GainMode gain_mode_ = GainMode::kManual;
  double stream_time_s_ = 0.0;
};

}  // namespace speccal::sdr
