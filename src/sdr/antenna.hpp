// Receive antenna model: gain versus frequency and azimuth.
//
// The paper's node uses a wide-band antenna rated 700-2700 MHz; outside the
// rated band the gain rolls off steeply, which is exactly the kind of
// sensor limitation the calibration system must expose (a node claiming
// "100 MHz - 6 GHz" with this antenna would fail the frequency sweep).
#pragma once

#include <string>
#include <vector>

namespace speccal::sdr {

/// Piecewise-linear (in log-frequency) gain response plus an optional
/// azimuthal pattern.
class AntennaModel {
 public:
  struct ResponsePoint {
    double freq_hz;
    double gain_dbi;
  };

  /// `response` must be sorted by frequency and non-empty; gain beyond the
  /// first/last point rolls off by `rolloff_db_per_octave`.
  AntennaModel(std::string name, std::vector<ResponsePoint> response,
               double rolloff_db_per_octave = 12.0);

  /// Ideal isotropic antenna (0 dBi everywhere) for unit tests.
  [[nodiscard]] static AntennaModel isotropic();

  /// The paper's wide-band whip: ~2 dBi across 700-2700 MHz, usable but
  /// degraded down to ~200 MHz and up to ~3.5 GHz, steep roll-off beyond.
  [[nodiscard]] static AntennaModel wideband_700_2700();

  /// A deliberately broken antenna (e.g. damaged cable): flat extra loss.
  [[nodiscard]] static AntennaModel attenuated(const AntennaModel& base, double extra_loss_db);

  /// Gain [dBi] at `freq_hz` toward `azimuth_deg`.
  [[nodiscard]] double gain_dbi(double freq_hz, double azimuth_deg = 0.0) const noexcept;

  /// Add a cardioid-style directional pattern: `peak_azimuth_deg` keeps the
  /// full gain; the back direction loses `front_to_back_db`.
  void set_directional(double peak_azimuth_deg, double front_to_back_db) noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double min_rated_hz() const noexcept { return response_.front().freq_hz; }
  [[nodiscard]] double max_rated_hz() const noexcept { return response_.back().freq_hz; }

 private:
  std::string name_;
  std::vector<ResponsePoint> response_;
  double rolloff_db_per_octave_;
  bool directional_ = false;
  double peak_azimuth_deg_ = 0.0;
  double front_to_back_db_ = 0.0;
};

}  // namespace speccal::sdr
