#include "geo/sector.hpp"

#include <cmath>
#include <sstream>

#include "util/units.hpp"

namespace speccal::geo {

using util::wrap_degrees;

double Sector::width_deg() const noexcept {
  const double s = wrap_degrees(start_deg);
  const double e = wrap_degrees(end_deg);
  if (s == e) return 360.0;
  return e > s ? e - s : 360.0 - s + e;
}

bool Sector::contains(double azimuth_deg) const noexcept {
  const double a = wrap_degrees(azimuth_deg);
  const double s = wrap_degrees(start_deg);
  const double e = wrap_degrees(end_deg);
  if (s == e) return true;  // full circle
  if (s < e) return a >= s && a < e;
  return a >= s || a < e;  // wraps through north
}

double Sector::center_deg() const noexcept {
  return wrap_degrees(wrap_degrees(start_deg) + width_deg() / 2.0);
}

bool SectorSet::contains(double azimuth_deg) const noexcept {
  for (const auto& s : sectors_)
    if (s.contains(azimuth_deg)) return true;
  return false;
}

namespace {
constexpr double kSampleStepDeg = 0.25;
constexpr int kSampleCount = static_cast<int>(360.0 / kSampleStepDeg);
}  // namespace

double SectorSet::coverage_deg() const noexcept {
  if (sectors_.empty()) return 0.0;
  int covered = 0;
  for (int i = 0; i < kSampleCount; ++i)
    if (contains(i * kSampleStepDeg)) ++covered;
  return covered * kSampleStepDeg;
}

std::string SectorSet::to_string() const {
  if (sectors_.empty()) return "(none)";
  std::ostringstream os;
  for (std::size_t i = 0; i < sectors_.size(); ++i) {
    if (i) os << " U ";
    os << '[' << wrap_degrees(sectors_[i].start_deg) << ", "
       << wrap_degrees(sectors_[i].end_deg) << ')';
  }
  return os.str();
}

double coverage_similarity(const SectorSet& a, const SectorSet& b) noexcept {
  int inter = 0;
  int uni = 0;
  for (int i = 0; i < kSampleCount; ++i) {
    const double az = i * kSampleStepDeg;
    const bool in_a = a.contains(az);
    const bool in_b = b.contains(az);
    if (in_a && in_b) ++inter;
    if (in_a || in_b) ++uni;
  }
  if (uni == 0) return 1.0;  // both empty: identical
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace speccal::geo
