#include "geo/wgs84.hpp"

#include <cmath>

#include "util/units.hpp"

namespace speccal::geo {

using util::deg_to_rad;
using util::rad_to_deg;

namespace {
/// Prime-vertical radius of curvature at geodetic latitude `lat_rad`.
[[nodiscard]] double prime_vertical_radius(double lat_rad) noexcept {
  const double s = std::sin(lat_rad);
  return kSemiMajorAxisM / std::sqrt(1.0 - kEccentricitySq * s * s);
}
}  // namespace

Ecef to_ecef(const Geodetic& g) noexcept {
  const double lat = deg_to_rad(g.lat_deg);
  const double lon = deg_to_rad(g.lon_deg);
  const double n = prime_vertical_radius(lat);
  const double cos_lat = std::cos(lat);
  return Ecef{
      (n + g.alt_m) * cos_lat * std::cos(lon),
      (n + g.alt_m) * cos_lat * std::sin(lon),
      (n * (1.0 - kEccentricitySq) + g.alt_m) * std::sin(lat),
  };
}

Geodetic to_geodetic(const Ecef& p) noexcept {
  const double lon = std::atan2(p.y, p.x);
  const double rho = std::hypot(p.x, p.y);
  // Bowring-style fixed-point iteration on latitude.
  double lat = std::atan2(p.z, rho * (1.0 - kEccentricitySq));
  double alt = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double n = prime_vertical_radius(lat);
    alt = rho / std::cos(lat) - n;
    lat = std::atan2(p.z, rho * (1.0 - kEccentricitySq * n / (n + alt)));
  }
  return Geodetic{rad_to_deg(lat), rad_to_deg(lon), alt};
}

Enu to_enu(const Geodetic& reference, const Geodetic& target) noexcept {
  const Ecef ref = to_ecef(reference);
  const Ecef tgt = to_ecef(target);
  const double dx = tgt.x - ref.x;
  const double dy = tgt.y - ref.y;
  const double dz = tgt.z - ref.z;
  const double lat = deg_to_rad(reference.lat_deg);
  const double lon = deg_to_rad(reference.lon_deg);
  const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
  const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);
  return Enu{
      -sin_lon * dx + cos_lon * dy,
      -sin_lat * cos_lon * dx - sin_lat * sin_lon * dy + cos_lat * dz,
      cos_lat * cos_lon * dx + cos_lat * sin_lon * dy + sin_lat * dz,
  };
}

Geodetic from_enu(const Geodetic& reference, const Enu& local) noexcept {
  const double lat = deg_to_rad(reference.lat_deg);
  const double lon = deg_to_rad(reference.lon_deg);
  const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
  const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);
  const Ecef ref = to_ecef(reference);
  const Ecef p{
      ref.x - sin_lon * local.east - sin_lat * cos_lon * local.north +
          cos_lat * cos_lon * local.up,
      ref.y + cos_lon * local.east - sin_lat * sin_lon * local.north +
          cos_lat * sin_lon * local.up,
      ref.z + cos_lat * local.north + sin_lat * local.up,
  };
  return to_geodetic(p);
}

double haversine_m(const Geodetic& a, const Geodetic& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kMeanRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double slant_range_m(const Geodetic& a, const Geodetic& b) noexcept {
  const Enu v = to_enu(a, b);
  return std::sqrt(v.east * v.east + v.north * v.north + v.up * v.up);
}

double bearing_deg(const Geodetic& from, const Geodetic& to) noexcept {
  const Enu v = to_enu(from, to);
  return util::wrap_degrees(rad_to_deg(std::atan2(v.east, v.north)));
}

double elevation_deg(const Geodetic& observer, const Geodetic& target) noexcept {
  const Enu v = to_enu(observer, target);
  const double horizontal = std::hypot(v.east, v.north);
  return rad_to_deg(std::atan2(v.up, horizontal));
}

Geodetic destination(const Geodetic& start, double bearing, double distance_m) noexcept {
  const double ang = distance_m / kMeanRadiusM;
  const double brg = deg_to_rad(bearing);
  const double lat1 = deg_to_rad(start.lat_deg);
  const double lon1 = deg_to_rad(start.lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                                std::cos(lat1) * std::sin(ang) * std::cos(brg));
  const double lon2 =
      lon1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  Geodetic out{rad_to_deg(lat2), rad_to_deg(lon2), start.alt_m};
  if (out.lon_deg > 180.0) out.lon_deg -= 360.0;
  if (out.lon_deg < -180.0) out.lon_deg += 360.0;
  return out;
}

double radio_horizon_m(double h1_m, double h2_m) noexcept {
  // d = sqrt(2 k R h) with k = 4/3 effective Earth radius factor.
  constexpr double kEffectiveRadius = kMeanRadiusM * 4.0 / 3.0;
  auto leg = [](double h) {
    return h <= 0.0 ? 0.0 : std::sqrt(2.0 * kEffectiveRadius * h);
  };
  return leg(h1_m) + leg(h2_m);
}

}  // namespace speccal::geo
