// WGS-84 geodesy: coordinate types and the conversions the simulators need.
//
// The air-traffic simulator keeps aircraft in geodetic coordinates; the
// propagation code needs ranges and bearings relative to a sensor; the CPR
// codec needs raw lat/lon. Everything here is double precision (sub-metre
// accuracy over the 100 km ranges the paper uses).
#pragma once

#include <array>

namespace speccal::geo {

/// WGS-84 ellipsoid constants.
inline constexpr double kSemiMajorAxisM = 6378137.0;
inline constexpr double kFlattening = 1.0 / 298.257223563;
inline constexpr double kSemiMinorAxisM = kSemiMajorAxisM * (1.0 - kFlattening);
inline constexpr double kEccentricitySq = kFlattening * (2.0 - kFlattening);

/// Mean Earth radius [m] used by the spherical (haversine) approximations.
inline constexpr double kMeanRadiusM = 6371008.8;

/// Geodetic position: latitude/longitude in degrees, altitude in metres
/// above the ellipsoid.
struct Geodetic {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;
};

/// Earth-centred Earth-fixed Cartesian coordinates [m].
struct Ecef {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Local East-North-Up coordinates [m] relative to a reference point.
struct Enu {
  double east = 0.0;
  double north = 0.0;
  double up = 0.0;
};

/// Convert geodetic to ECEF (closed form).
[[nodiscard]] Ecef to_ecef(const Geodetic& g) noexcept;

/// Convert ECEF to geodetic (Bowring's iteration; converges in 2-3 steps).
[[nodiscard]] Geodetic to_geodetic(const Ecef& p) noexcept;

/// ENU coordinates of `target` in the tangent frame at `reference`.
[[nodiscard]] Enu to_enu(const Geodetic& reference, const Geodetic& target) noexcept;

/// Inverse of to_enu.
[[nodiscard]] Geodetic from_enu(const Geodetic& reference, const Enu& local) noexcept;

/// Great-circle surface distance [m] (haversine on the mean sphere).
[[nodiscard]] double haversine_m(const Geodetic& a, const Geodetic& b) noexcept;

/// 3-D slant range [m] including the altitude difference.
[[nodiscard]] double slant_range_m(const Geodetic& a, const Geodetic& b) noexcept;

/// Initial great-circle bearing [deg, 0..360) from `from` towards `to`.
/// 0 = true north, 90 = east.
[[nodiscard]] double bearing_deg(const Geodetic& from, const Geodetic& to) noexcept;

/// Elevation angle [deg] of `target` seen from `observer` (positive = above
/// the local horizontal plane).
[[nodiscard]] double elevation_deg(const Geodetic& observer, const Geodetic& target) noexcept;

/// Point reached by travelling `distance_m` along `bearing` from `start`
/// on the great circle, keeping `start`'s altitude.
[[nodiscard]] Geodetic destination(const Geodetic& start, double bearing_deg,
                                   double distance_m) noexcept;

/// Radio horizon distance [m] for antenna heights `h1_m`, `h2_m` with
/// standard 4/3-Earth refraction. ADS-B reception beyond this is impossible
/// regardless of obstructions.
[[nodiscard]] double radio_horizon_m(double h1_m, double h2_m) noexcept;

}  // namespace speccal::geo
