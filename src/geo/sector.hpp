// Azimuth sectors: angular intervals on the compass circle.
//
// Obstruction maps and field-of-view estimates are expressed as sets of
// sectors. A sector can wrap through north (e.g. [330, 30) covers 60 deg).
#pragma once

#include <string>
#include <vector>

namespace speccal::geo {

/// Half-open angular interval [start, end) in compass degrees; may wrap 0.
/// A sector with start == end is interpreted as the full circle.
struct Sector {
  double start_deg = 0.0;
  double end_deg = 0.0;

  /// Angular width in degrees (0 < width <= 360).
  [[nodiscard]] double width_deg() const noexcept;

  /// True if azimuth (any real number, wrapped) falls inside.
  [[nodiscard]] bool contains(double azimuth_deg) const noexcept;

  /// Centre azimuth of the sector.
  [[nodiscard]] double center_deg() const noexcept;
};

/// Union of sectors with set-style queries. Keeps the input sectors as
/// given (no normalization) — membership is tested per sector.
class SectorSet {
 public:
  SectorSet() = default;
  explicit SectorSet(std::vector<Sector> sectors) : sectors_(std::move(sectors)) {}

  void add(Sector s) { sectors_.push_back(s); }

  [[nodiscard]] bool contains(double azimuth_deg) const noexcept;

  /// Total covered width in degrees, counting overlaps once (computed by
  /// 0.25-degree sampling — exact enough for FoV summaries).
  [[nodiscard]] double coverage_deg() const noexcept;

  [[nodiscard]] const std::vector<Sector>& sectors() const noexcept { return sectors_; }
  [[nodiscard]] bool empty() const noexcept { return sectors_.empty(); }

  /// Human-readable like "[250, 350) U [10, 30)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Sector> sectors_;
};

/// Jaccard-style overlap between two sector sets in [0, 1]
/// (sampled at 0.25-degree resolution). 1 = identical coverage.
[[nodiscard]] double coverage_similarity(const SectorSet& a, const SectorSet& b) noexcept;

}  // namespace speccal::geo
