// Tests: field-of-view estimation (sector histogram and KNN).
#include <gtest/gtest.h>

#include "calib/fov.hpp"
#include "util/rng.hpp"

namespace cal = speccal::calib;
namespace g = speccal::geo;

namespace {

/// Build a synthetic survey: aircraft on a ring at `range_km`, received
/// exactly when their azimuth falls in `open`.
cal::SurveyResult ring_survey(const g::SectorSet& open, double range_km,
                              double step_deg = 5.0) {
  cal::SurveyResult survey;
  std::uint32_t icao = 1;
  for (double az = 0.0; az < 360.0; az += step_deg) {
    cal::AirplaneObservation obs;
    obs.icao = icao++;
    obs.azimuth_deg = az;
    obs.range_km = range_km;
    obs.received = open.contains(az);
    obs.messages = obs.received ? 10 : 0;
    survey.observations.push_back(obs);
  }
  return survey;
}

const g::SectorSet kWestOpen({{235.0, 335.0}});

}  // namespace

TEST(FovSectors, RecoversOpenSector) {
  const auto survey = ring_survey(kWestOpen, 60.0);
  const auto est = cal::estimate_fov_sectors(survey);
  EXPECT_GT(cal::fov_accuracy(est, kWestOpen), 0.9);
  EXPECT_NEAR(est.open_fraction_deg, 100.0 / 360.0, 0.05);
  EXPECT_TRUE(est.open_sectors.contains(280.0));
  EXPECT_FALSE(est.open_sectors.contains(90.0));
}

TEST(FovSectors, NearFieldObservationsCarryNoInformation) {
  // Everything inside near_field_km is received regardless of direction
  // (the paper's <20 km effect); the estimator must ignore those points.
  cal::SurveyResult survey = ring_survey(kWestOpen, 60.0);
  // Add a full ring of received aircraft at 10 km.
  g::SectorSet everywhere({{0.0, 0.0}});
  auto near_ring = ring_survey(everywhere, 10.0);
  for (auto& obs : near_ring.observations) obs.icao += 1000;
  survey.observations.insert(survey.observations.end(),
                             near_ring.observations.begin(),
                             near_ring.observations.end());

  const auto est = cal::estimate_fov_sectors(survey);
  EXPECT_GT(cal::fov_accuracy(est, kWestOpen), 0.9);
  EXPECT_EQ(est.usable_observations, 72u);  // only the 60 km ring
}

TEST(FovSectors, EmptyBinsInterpolateFromNeighbours) {
  // Traffic only in two bins, one open one closed; the gaps must borrow
  // verdicts instead of defaulting to blocked.
  cal::SurveyResult survey;
  for (int i = 0; i < 5; ++i) {
    cal::AirplaneObservation received;
    received.icao = static_cast<std::uint32_t>(100 + i);
    received.azimuth_deg = 45.0;
    received.range_km = 70.0;
    received.received = true;
    survey.observations.push_back(received);
    cal::AirplaneObservation missed;
    missed.icao = static_cast<std::uint32_t>(200 + i);
    missed.azimuth_deg = 225.0;
    missed.range_km = 70.0;
    missed.received = false;
    survey.observations.push_back(missed);
  }
  const auto est = cal::estimate_fov_sectors(survey);
  std::size_t interpolated = 0;
  for (const auto& bin : est.bins) interpolated += bin.interpolated ? 1 : 0;
  EXPECT_GT(interpolated, 20u);
  EXPECT_TRUE(est.open_sectors.contains(45.0));
  EXPECT_FALSE(est.open_sectors.contains(225.0));
  // Azimuths near the open evidence lean open.
  EXPECT_TRUE(est.open_sectors.contains(60.0));
}

TEST(FovSectors, NoUsableObservationsMeansClosed) {
  cal::SurveyResult empty;
  const auto est = cal::estimate_fov_sectors(empty);
  EXPECT_EQ(est.usable_observations, 0u);
  EXPECT_DOUBLE_EQ(est.open_fraction_deg, 0.0);
}

TEST(FovSectors, FullyOpenSky) {
  const auto survey = ring_survey(g::SectorSet({{0.0, 0.0}}), 60.0);
  const auto est = cal::estimate_fov_sectors(survey);
  EXPECT_GT(est.open_fraction_deg, 0.99);
}

TEST(FovKnn, RecoversOpenSector) {
  const auto survey = ring_survey(kWestOpen, 60.0, 3.0);
  const auto est = cal::estimate_fov_knn(survey);
  EXPECT_GT(cal::fov_accuracy(est, kWestOpen), 0.88);
}

TEST(FovKnn, HandlesSparseNoisyTraffic) {
  // 20 aircraft at random azimuths, labels from geometry plus a couple of
  // contradictions; KNN should still get the majority of the circle right.
  speccal::util::Rng rng(42);
  cal::SurveyResult survey;
  for (int i = 0; i < 20; ++i) {
    cal::AirplaneObservation obs;
    obs.icao = static_cast<std::uint32_t>(i + 1);
    obs.azimuth_deg = rng.uniform(0.0, 360.0);
    obs.range_km = rng.uniform(30.0, 90.0);
    obs.received = kWestOpen.contains(obs.azimuth_deg);
    survey.observations.push_back(obs);
  }
  // One flipped label (fade / lucky multipath).
  survey.observations[3].received = !survey.observations[3].received;
  const auto est = cal::estimate_fov_knn(survey);
  EXPECT_GT(cal::fov_accuracy(est, kWestOpen), 0.6);
}

TEST(FovKnn, FartherReceptionsWeighMore) {
  // A single far reception against a single nearer miss at the same
  // azimuth: the far reception is stronger evidence of openness.
  cal::SurveyResult survey;
  cal::AirplaneObservation far_rx;
  far_rx.icao = 1;
  far_rx.azimuth_deg = 100.0;
  far_rx.range_km = 95.0;
  far_rx.received = true;
  cal::AirplaneObservation near_miss;
  near_miss.icao = 2;
  near_miss.azimuth_deg = 100.0;
  near_miss.range_km = 30.0;
  near_miss.received = false;
  survey.observations = {far_rx, near_miss};
  cal::FovConfig cfg;
  cfg.knn_k = 2;
  const auto est = cal::estimate_fov_knn(survey, cfg);
  EXPECT_TRUE(est.open_sectors.contains(100.0));
}

TEST(FovKnn, EmptySurveyClosed) {
  const auto est = cal::estimate_fov_knn(cal::SurveyResult{});
  EXPECT_DOUBLE_EQ(est.open_fraction_deg, 0.0);
}

TEST(FovAccuracy, SelfSimilarityIsOne) {
  const auto survey = ring_survey(kWestOpen, 50.0);
  const auto est = cal::estimate_fov_sectors(survey);
  EXPECT_DOUBLE_EQ(cal::fov_accuracy(est, est.open_sectors), 1.0);
}
