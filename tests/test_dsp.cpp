// Unit tests: DSP primitives (FFT, windows, FIR, moving average, NCO, PRBS).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <set>

#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/plan.hpp"
#include "dsp/iq.hpp"
#include "dsp/nco.hpp"
#include "dsp/prbs.hpp"
#include "dsp/window.hpp"
#include "util/rng.hpp"

namespace d = speccal::dsp;

namespace {
/// Brute-force DFT reference.
std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += x[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}
}  // namespace

// ------------------------------------------------------------------ fft ----

TEST(Fft, MatchesDirectDft) {
  speccal::util::Rng rng(5);
  std::vector<std::complex<double>> x(64);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto want = dft(x);
  auto got = x;
  d::PlanCache::shared().plan_f64(got.size())->forward(got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-9);
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-9);
  }
}

TEST(Fft, InverseRoundTrip) {
  speccal::util::Rng rng(6);
  std::vector<std::complex<double>> x(256);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto back = x;
  const auto plan = d::PlanCache::shared().plan_f64(back.size());
  plan->forward(back);
  plan->inverse(back);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalIdentity) {
  // The paper's power-measurement principle: time power == spectral power.
  speccal::util::Rng rng(7);
  std::vector<std::complex<double>> x(512);
  double time_power = 0.0;
  for (auto& v : x) {
    v = {rng.normal(), rng.normal()};
    time_power += std::norm(v);
  }
  auto spectrum = x;
  d::PlanCache::shared().plan_f64(spectrum.size())->forward(spectrum);
  double freq_power = 0.0;
  for (const auto& v : spectrum) freq_power += std::norm(v);
  EXPECT_NEAR(freq_power / static_cast<double>(x.size()), time_power,
              time_power * 1e-10);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)d::PlanCache::shared().plan_f64(100), std::invalid_argument);
  EXPECT_FALSE(d::is_power_of_two(0));
  EXPECT_TRUE(d::is_power_of_two(1));
  EXPECT_TRUE(d::is_power_of_two(4096));
  EXPECT_FALSE(d::is_power_of_two(4097));
}

TEST(Fft, PowerSpectrumToneLandsInBin) {
  constexpr double fs = 1e6;
  constexpr std::size_t n = 1024;
  constexpr double tone = 250e3;  // exactly bin 256
  std::vector<std::complex<float>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * tone * static_cast<double>(i) / fs;
    x[i] = {static_cast<float>(std::cos(ph)), static_cast<float>(std::sin(ph))};
  }
  const auto ps = d::SpectrumEstimator(n).estimate(x);
  const std::size_t bin = d::bin_for_frequency(tone, fs, ps.size());
  EXPECT_EQ(bin, 256u);
  EXPECT_NEAR(ps[bin], 1.0, 1e-3);  // full-scale tone -> 1.0
  EXPECT_LT(ps[bin + 5], 1e-6);
}

TEST(Fft, BinForNegativeFrequency) {
  EXPECT_EQ(d::bin_for_frequency(-1000.0, 1024000.0, 1024), 1023u);
  EXPECT_EQ(d::bin_for_frequency(0.0, 1e6, 512), 0u);
}

// -------------------------------------------------------------- windows ----

TEST(Window, KnownShapes) {
  const auto hann = d::make_window(d::WindowType::kHann, 5);
  EXPECT_NEAR(hann[0], 0.0, 1e-12);
  EXPECT_NEAR(hann[2], 1.0, 1e-12);
  EXPECT_NEAR(hann[4], 0.0, 1e-12);
  const auto rect = d::make_window(d::WindowType::kRectangular, 8);
  for (double v : rect) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, SymmetryAll) {
  for (auto type : {d::WindowType::kHann, d::WindowType::kHamming,
                    d::WindowType::kBlackman, d::WindowType::kBlackmanHarris}) {
    const auto w = d::make_window(type, 33);
    for (std::size_t i = 0; i < w.size(); ++i)
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

TEST(Window, PowerAndSum) {
  const auto w = d::make_window(d::WindowType::kHamming, 64);
  EXPECT_GT(d::window_sum(w), 0.0);
  EXPECT_GT(d::window_power(w), 0.0);
  EXPECT_LE(d::window_power(w), d::window_sum(w));  // all coefficients <= 1
}

// ------------------------------------------------------------------ fir ----

TEST(Fir, LowpassUnityDcSteepStop) {
  const auto taps = d::design_lowpass(1e6, 100e3, 101);
  double dc = 0.0;
  for (double t : taps) dc += t;
  EXPECT_NEAR(dc, 1.0, 1e-12);

  std::vector<std::complex<double>> ctaps(taps.begin(), taps.end());
  d::FirFilter f(ctaps);
  EXPECT_NEAR(f.magnitude_at(0.0, 1e6), 1.0, 1e-6);
  EXPECT_NEAR(f.magnitude_at(50e3, 1e6), 1.0, 0.05);       // pass band
  EXPECT_LT(f.magnitude_at(250e3, 1e6), 0.01);             // stop band
}

TEST(Fir, DesignValidation) {
  EXPECT_THROW(d::design_lowpass(1e6, 600e3, 31), std::invalid_argument);
  EXPECT_THROW(d::design_lowpass(1e6, -1.0, 31), std::invalid_argument);
  EXPECT_THROW(d::design_lowpass(1e6, 100e3, 2), std::invalid_argument);
  EXPECT_THROW(d::design_bandpass(1e6, 200e3, 100e3, 31), std::invalid_argument);
}

TEST(Fir, BandpassSelectsBand) {
  const auto taps = d::design_bandpass(8e6, 1e6, 2e6, 129);
  d::FirFilter f(taps);
  EXPECT_NEAR(f.magnitude_at(1.5e6, 8e6), 1.0, 0.05);   // centre
  EXPECT_LT(f.magnitude_at(-1.5e6, 8e6), 0.02);          // image side rejected
  EXPECT_LT(f.magnitude_at(3.5e6, 8e6), 0.02);
  EXPECT_LT(f.magnitude_at(0.0, 8e6), 0.05);
}

TEST(Fir, StreamingMatchesBlock) {
  const auto taps = d::design_bandpass(1e6, -100e3, 100e3, 31);
  speccal::util::Rng rng(8);
  std::vector<std::complex<float>> x(500);
  for (auto& v : x)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};

  d::FirFilter whole(taps);
  const auto want = whole.filter(x);

  d::FirFilter chunked(taps);
  std::vector<std::complex<float>> got;
  chunked.process(std::span(x).subspan(0, 123), got);
  chunked.process(std::span(x).subspan(123, 200), got);
  chunked.process(std::span(x).subspan(323), got);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), 1e-5);
    EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-5);
  }
}

TEST(Fir, ResetClearsState) {
  const auto taps = d::design_lowpass(1e6, 100e3, 15);
  std::vector<std::complex<double>> ctaps(taps.begin(), taps.end());
  d::FirFilter f(ctaps);
  std::vector<std::complex<float>> ones(20, {1.0f, 0.0f});
  const auto first = f.filter(ones);
  f.reset();
  const auto second = f.filter(ones);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_NEAR(first[i].real(), second[i].real(), 1e-9);
}

// ------------------------------------------------------- moving average ----

TEST(MovingAverage, ExactOverWindow) {
  d::MovingAverage avg(4);
  EXPECT_DOUBLE_EQ(avg.push(1.0), 1.0);       // partial means while filling
  EXPECT_DOUBLE_EQ(avg.push(2.0), 1.5);
  EXPECT_DOUBLE_EQ(avg.push(3.0), 2.0);
  EXPECT_DOUBLE_EQ(avg.push(4.0), 2.5);
  EXPECT_TRUE(avg.full());
  EXPECT_DOUBLE_EQ(avg.push(5.0), 3.5);       // window is now {2,3,4,5}
}

TEST(MovingAverage, LongRunNoDrift) {
  d::MovingAverage avg(1000);
  double last = 0.0;
  for (int i = 0; i < 100000; ++i) last = avg.push(0.125);
  EXPECT_NEAR(last, 0.125, 1e-12);
}

TEST(MovingAverage, RejectsZeroLengthAndResets) {
  EXPECT_THROW(d::MovingAverage(0), std::invalid_argument);
  d::MovingAverage avg(3);
  (void)avg.push(9.0);
  avg.reset();
  EXPECT_DOUBLE_EQ(avg.value(), 0.0);
  EXPECT_FALSE(avg.full());
}

// ------------------------------------------------------------------ nco ----

TEST(Nco, GeneratesRequestedFrequency) {
  constexpr double fs = 1e6;
  constexpr double f0 = 125e3;
  d::Nco nco(f0, fs);
  std::vector<std::complex<float>> x(1024);
  for (auto& v : x) v = nco.next();
  const auto ps = d::SpectrumEstimator(x.size()).estimate(x);
  const std::size_t want_bin = d::bin_for_frequency(f0, fs, ps.size());
  std::size_t best = 0;
  for (std::size_t k = 1; k < ps.size(); ++k)
    if (ps[k] > ps[best]) best = k;
  EXPECT_EQ(best, want_bin);
}

TEST(Nco, MixAddScalesAmplitude) {
  d::Nco nco(0.0, 1e6);  // DC oscillator = pure gain
  std::vector<std::complex<float>> in(8, {1.0f, 0.0f});
  std::vector<std::complex<float>> accum(8, {0.5f, 0.0f});
  nco.mix_add(in, 2.0f, accum);
  for (const auto& v : accum) EXPECT_NEAR(v.real(), 2.5f, 1e-6);
}

// ----------------------------------------------------------------- prbs ----

TEST(Prbs, Prbs9FullPeriod) {
  auto lfsr = d::make_prbs9();
  std::set<std::uint32_t> states;
  for (int i = 0; i < 511; ++i) {
    states.insert(lfsr.state());
    (void)lfsr.next_bit();
  }
  EXPECT_EQ(states.size(), 511u);          // maximal length
  EXPECT_EQ(lfsr.state(), d::make_prbs9().state());  // back to start
}

TEST(Prbs, BalancedBits) {
  auto lfsr = d::make_prbs15();
  int ones = 0;
  constexpr int kN = 32767;
  for (int i = 0; i < kN; ++i) ones += static_cast<int>(lfsr.next_bit());
  EXPECT_EQ(ones, 16384);  // maximal LFSR: 2^(n-1) ones per period
}

TEST(Prbs, ZeroSeedCoerced) {
  d::Lfsr lfsr((1u << 0) | (1u << 4), 9, 0);
  EXPECT_NE(lfsr.state(), 0u);
  (void)lfsr.next_bit();
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Prbs, NextBitsPacksMsbFirst) {
  auto a = d::make_prbs9(5);
  auto b = d::make_prbs9(5);
  std::uint32_t packed = a.next_bits(8);
  std::uint32_t manual = 0;
  for (int i = 0; i < 8; ++i) manual = (manual << 1) | b.next_bit();
  EXPECT_EQ(packed, manual);
}

// ------------------------------------------------------------------- iq ----

TEST(Iq, MeanPowerAndDbfs) {
  d::Buffer buf(100, {1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(d::mean_power(buf), 1.0);
  EXPECT_NEAR(d::mean_power_dbfs(buf), 0.0, 1e-9);
  d::Buffer quiet(10, {0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(d::mean_power_dbfs(quiet), -200.0);
  EXPECT_DOUBLE_EQ(d::mean_power({}), 0.0);
}
