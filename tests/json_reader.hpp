// Minimal recursive-descent JSON reader for test assertions.
//
// The library itself is write-only by design (util/json.hpp keeps the
// parser dependency out of the build); tests, however, need to prove that
// what JsonWriter / Registry::write_json / TraceSession::write_chrome_trace
// emit actually parses and round-trips. This header is that proof: a strict
// RFC 8259 subset parser — objects, arrays, strings (all escapes incl.
// \uXXXX surrogate pairs), numbers, booleans, null — that throws
// std::runtime_error with a byte offset on any malformed input.
//
// Test-only: never link this into the library.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace speccal::testjson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data{
      nullptr};

  [[nodiscard]] bool is_null() const { return data.index() == 0; }
  [[nodiscard]] bool is_bool() const { return data.index() == 1; }
  [[nodiscard]] bool is_number() const { return data.index() == 2; }
  [[nodiscard]] bool is_string() const { return data.index() == 3; }
  [[nodiscard]] bool is_array() const { return data.index() == 4; }
  [[nodiscard]] bool is_object() const { return data.index() == 5; }

  [[nodiscard]] bool boolean() const { return std::get<bool>(data); }
  [[nodiscard]] double number() const { return std::get<double>(data); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(data);
  }
  [[nodiscard]] const Array& array() const { return std::get<Array>(data); }
  [[nodiscard]] const Object& object() const { return std::get<Object>(data); }

  /// Object member access; throws std::out_of_range when missing.
  [[nodiscard]] const Value& at(const std::string& key) const {
    return object().at(key);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_reader: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value{parse_string()};
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Value{true};
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Value{false};
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Value{nullptr};
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(obj)};
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(arr)};
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (!consume_literal("\\u")) fail("lone high surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return Value{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document; throws std::runtime_error on any error.
[[nodiscard]] inline Value parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace speccal::testjson
