// Tests: the ADS-B survey procedure (§3.1) in both fidelity modes.
#include <gtest/gtest.h>

#include "airtraffic/adsb_source.hpp"
#include "calib/survey.hpp"
#include "prop/obstruction.hpp"
#include "sdr/antenna.hpp"

namespace cal = speccal::calib;
namespace at = speccal::airtraffic;
namespace g = speccal::geo;
namespace s = speccal::sdr;
using speccal::util::Rng;

namespace {

constexpr g::Geodetic kSensor{37.87, -122.27, 15.0};

/// Handcrafted sky: one strong close aircraft east, one far aircraft west,
/// one beyond the ground-truth radius.
std::shared_ptr<at::SkySimulator> tiny_sky() {
  std::vector<at::AircraftSpec> fleet;
  at::AircraftSpec close_east;
  close_east.icao = 0x000001;
  close_east.callsign = "EAST";
  close_east.start = g::destination(kSensor, 90.0, 15e3);
  close_east.start.alt_m = 8000.0;
  close_east.ground_speed_kt = 300.0;
  close_east.track_deg = 0.0;
  close_east.position_phase_s = 0.05;
  close_east.velocity_phase_s = 0.22;
  close_east.ident_phase_s = 0.8;
  fleet.push_back(close_east);

  at::AircraftSpec far_west = close_east;
  far_west.icao = 0x000002;
  far_west.callsign = "WEST";
  far_west.start = g::destination(kSensor, 270.0, 80e3);
  far_west.start.alt_m = 11000.0;
  far_west.position_phase_s = 0.15;
  far_west.velocity_phase_s = 0.37;
  far_west.ident_phase_s = 2.3;
  fleet.push_back(far_west);

  at::AircraftSpec outside = close_east;
  outside.icao = 0x000003;
  outside.callsign = "OUT";
  outside.start = g::destination(kSensor, 0.0, 115e3);
  outside.start.alt_m = 12000.0;
  outside.position_phase_s = 0.29;
  outside.velocity_phase_s = 0.44;
  outside.ident_phase_s = 3.7;
  fleet.push_back(outside);

  return std::make_shared<at::SkySimulator>(kSensor, std::move(fleet));
}

struct NodeFixture {
  std::shared_ptr<at::SkySimulator> sky = tiny_sky();
  s::AntennaModel antenna = s::AntennaModel::isotropic();
  std::shared_ptr<speccal::prop::ObstructionMap> obstructions;
  std::unique_ptr<s::SimulatedSdr> device;
  std::unique_ptr<at::GroundTruthService> gt;

  explicit NodeFixture(std::shared_ptr<speccal::prop::ObstructionMap> obs = nullptr)
      : obstructions(std::move(obs)) {
    s::RxEnvironment rx;
    rx.position = kSensor;
    rx.antenna = &antenna;
    rx.obstructions = obstructions.get();
    device = std::make_unique<s::SimulatedSdr>(s::SimulatedSdr::bladerf_like_info(),
                                               rx, Rng(77));
    device->add_source(std::make_shared<at::AdsbSignalSource>(sky));
    gt = std::make_unique<at::GroundTruthService>(*sky, 0.0);
  }
};

}  // namespace

TEST(Survey, WaveformModeSeesBothAircraftInRadius) {
  NodeFixture fix;
  cal::SurveyConfig cfg;
  cfg.duration_s = 3.0;
  cfg.ground_truth_query_at_s = 1.5;
  cal::AdsbSurvey survey(cfg);
  const auto result = survey.run(*fix.device, *fix.sky, *fix.gt);

  ASSERT_EQ(result.observations.size(), 2u);  // OUT is beyond 100 km
  EXPECT_EQ(result.received_count(), 2u);
  EXPECT_EQ(result.unmatched_receptions, 0u);  // OUT cleared by extended query
  EXPECT_GT(result.total_frames_decoded, 10u);
  for (const auto& obs : result.observations) {
    EXPECT_GT(obs.messages, 0u);
    EXPECT_GT(obs.best_rssi_dbfs, -200.0);
  }
}

TEST(Survey, ObservationGeometryMatchesGroundTruth) {
  NodeFixture fix;
  cal::SurveyConfig cfg;
  cfg.duration_s = 2.0;
  cfg.ground_truth_query_at_s = 1.0;
  const auto result = cal::AdsbSurvey(cfg).run(*fix.device, *fix.sky, *fix.gt);
  for (const auto& obs : result.observations) {
    if (obs.icao == 1) {
      EXPECT_NEAR(obs.azimuth_deg, 90.0, 2.0);
      EXPECT_NEAR(obs.range_km, 15.0, 2.0);
      EXPECT_EQ(obs.callsign, "EAST");
    } else if (obs.icao == 2) {
      EXPECT_NEAR(obs.azimuth_deg, 270.0, 2.0);
      EXPECT_NEAR(obs.range_km, 80.0, 2.0);
    }
  }
}

TEST(Survey, ObstructionCreatesMisses) {
  auto wall = std::make_shared<speccal::prop::ObstructionMap>();
  speccal::prop::Screen screen;
  screen.sector = {180.0, 360.0};  // block the west half
  screen.loss_at_1ghz_db = 45.0;
  screen.loss_slope_db_per_decade = 0.0;
  wall->set_leakage_ceiling_db(45.0);
  wall->add_screen(screen);
  NodeFixture fix(wall);

  cal::SurveyConfig cfg;
  cfg.duration_s = 3.0;
  cfg.ground_truth_query_at_s = 1.5;
  const auto result = cal::AdsbSurvey(cfg).run(*fix.device, *fix.sky, *fix.gt);
  ASSERT_EQ(result.observations.size(), 2u);
  for (const auto& obs : result.observations) {
    if (obs.icao == 1) EXPECT_TRUE(obs.received) << "east should pass";
    if (obs.icao == 2) EXPECT_FALSE(obs.received) << "west 80 km blocked";
  }
}

TEST(Survey, LinkBudgetModeAgreesWithWaveform) {
  // Both fidelity levels must tell the same macro story on the tiny sky.
  auto wall = std::make_shared<speccal::prop::ObstructionMap>();
  speccal::prop::Screen screen;
  screen.sector = {180.0, 360.0};
  screen.loss_at_1ghz_db = 45.0;
  wall->add_screen(screen);

  cal::SurveyConfig cfg;
  cfg.duration_s = 3.0;
  cfg.ground_truth_query_at_s = 1.5;

  NodeFixture wf(wall);
  auto wf_result = cal::AdsbSurvey(cfg).run(*wf.device, *wf.sky, *wf.gt);

  cfg.fidelity = cal::Fidelity::kLinkBudget;
  NodeFixture lb(wall);
  auto lb_result = cal::AdsbSurvey(cfg).run(*lb.device, *lb.sky, *lb.gt);

  ASSERT_EQ(wf_result.observations.size(), lb_result.observations.size());
  for (std::size_t i = 0; i < wf_result.observations.size(); ++i) {
    EXPECT_EQ(wf_result.observations[i].received, lb_result.observations[i].received)
        << "icao " << wf_result.observations[i].icao;
  }
}

TEST(Survey, LinkBudgetModeIsDeterministic) {
  cal::SurveyConfig cfg;
  cfg.fidelity = cal::Fidelity::kLinkBudget;
  cfg.duration_s = 5.0;
  NodeFixture a, b;
  const auto ra = cal::AdsbSurvey(cfg).run(*a.device, *a.sky, *a.gt);
  const auto rb = cal::AdsbSurvey(cfg).run(*b.device, *b.sky, *b.gt);
  EXPECT_EQ(ra.total_frames_decoded, rb.total_frames_decoded);
  EXPECT_EQ(ra.received_count(), rb.received_count());
}

TEST(Survey, DecodedPositionsMatchTruth) {
  NodeFixture fix;
  cal::SurveyConfig cfg;
  cfg.duration_s = 3.0;
  cfg.ground_truth_query_at_s = 1.5;
  const auto result = cal::AdsbSurvey(cfg).run(*fix.device, *fix.sky, *fix.gt);
  int checked = 0;
  for (const auto& obs : result.observations) {
    if (!obs.decoded_position) continue;
    // Ground truth has zero latency here; aircraft move <1 km in the gap
    // between fix time and query time.
    EXPECT_LT(g::haversine_m(obs.position, *obs.decoded_position), 2000.0);
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

TEST(Survey, CountersConsistent) {
  NodeFixture fix;
  cal::SurveyConfig cfg;
  cfg.duration_s = 2.0;
  cfg.ground_truth_query_at_s = 1.0;
  const auto result = cal::AdsbSurvey(cfg).run(*fix.device, *fix.sky, *fix.gt);
  EXPECT_EQ(result.received_count() + result.missed_count(),
            result.observations.size());
  EXPECT_DOUBLE_EQ(result.duration_s, 2.0);
  EXPECT_LE(result.frames_crc_repaired, result.total_frames_decoded);
}
