// Integration tests: the full calibration pipeline on the paper testbed.
//
// The surveys here run in link-budget fidelity (fast, same macro outcomes
// as the waveform path — asserted separately in test_calib_survey); one
// test exercises the full waveform pipeline on a short window.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/testbed.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;

namespace {

cal::PipelineConfig fast_config() {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 30.0;
  return cfg;
}

cal::NodeClaims honest_claims(const std::string& id, bool outdoor, bool omni) {
  cal::NodeClaims claims;
  claims.node_id = id;
  claims.min_freq_hz = 100e6;
  claims.max_freq_hz = 6e9;
  claims.claims_outdoor = outdoor;
  claims.claims_omnidirectional = omni;
  return claims;
}

cal::CalibrationReport calibrate_site(sc::Site site, const cal::NodeClaims& claims,
                                      std::uint64_t seed = 2023,
                                      cal::PipelineConfig cfg = fast_config()) {
  const auto world = sc::make_world(seed);
  const auto setup = sc::make_site(site, seed);
  auto device = sc::make_node(setup, world, seed);
  cal::CalibrationPipeline pipeline(world, cfg);
  return pipeline.calibrate(*device, claims);
}

}  // namespace

TEST(Pipeline, RooftopReproducesPaperShape) {
  const auto report = calibrate_site(
      sc::Site::kRooftop, honest_claims("rooftop", true, false));
  // Figure 1(a): many aircraft received, far ones only in the west.
  EXPECT_GT(report.survey.received_count(), 8u);
  EXPECT_TRUE(report.fov.open_sectors.contains(280.0));
  EXPECT_FALSE(report.fov.open_sectors.contains(90.0));
  // Figure 3: all five towers decodable from the rooftop.
  std::size_t decoded = 0;
  for (const auto& m : report.cell_scan) decoded += m.decoded ? 1 : 0;
  EXPECT_EQ(decoded, 5u);
  // Outdoor verdict, honest claims -> no violations.
  EXPECT_FALSE(report.classification.indoor());
  EXPECT_EQ(report.trust.violations(), 0u);
  EXPECT_GT(report.trust.score, 80.0);
}

TEST(Pipeline, WindowReproducesPaperShape) {
  const auto report =
      calibrate_site(sc::Site::kWindow, honest_claims("window", false, false));
  // Figure 1(b): narrow field of view.
  EXPECT_LT(report.fov.open_fraction_deg, 0.3);
  EXPECT_GT(report.fov.open_fraction_deg, 0.03);
  // Figure 3: towers 1-3 decodable, towers 4-5 (2660/2680 MHz) lost.
  std::map<int, bool> by_freq;
  for (const auto& m : report.cell_scan)
    by_freq[static_cast<int>(m.cell.dl_freq_hz / 1e6)] = m.decoded;
  EXPECT_TRUE(by_freq[731]);
  EXPECT_TRUE(by_freq[1970]);
  EXPECT_TRUE(by_freq[2145]);
  EXPECT_FALSE(by_freq[2660]);
  EXPECT_FALSE(by_freq[2680]);
  // Indoor-ish verdict.
  EXPECT_TRUE(report.classification.indoor());
}

TEST(Pipeline, IndoorReproducesPaperShape) {
  const auto report =
      calibrate_site(sc::Site::kIndoor, honest_claims("indoor", false, false));
  // Figure 1(c): only close aircraft, little to no usable FoV.
  EXPECT_LT(report.survey.received_count(), 10u);
  EXPECT_LT(report.fov.open_fraction_deg, 0.1);
  // Figure 3: only the 731 MHz tower survives the walls.
  std::map<int, bool> by_freq;
  for (const auto& m : report.cell_scan)
    by_freq[static_cast<int>(m.cell.dl_freq_hz / 1e6)] = m.decoded;
  EXPECT_TRUE(by_freq[731]);
  EXPECT_FALSE(by_freq[1970]);
  EXPECT_FALSE(by_freq[2145]);
  EXPECT_FALSE(by_freq[2660]);
  EXPECT_FALSE(by_freq[2680]);
  EXPECT_EQ(report.classification.type, cal::InstallationType::kIndoorDeep);
}

TEST(Pipeline, Figure4AnomalyWindowSeesCh22Strong) {
  const auto rooftop = calibrate_site(
      sc::Site::kRooftop, honest_claims("rooftop", true, false));
  const auto window =
      calibrate_site(sc::Site::kWindow, honest_claims("window", false, false));

  auto reading = [](const cal::CalibrationReport& r, int ch) {
    for (const auto& reading : r.tv_readings)
      if (reading.rf_channel == ch) return reading.power_dbfs;
    return -999.0;
  };
  // Channel 22 (521 MHz): window ~= rooftop (tower inside the window FoV).
  EXPECT_NEAR(reading(window, 22), reading(rooftop, 22), 4.0);
  // The other channels drop substantially behind the window.
  EXPECT_LT(reading(window, 14), reading(rooftop, 14) - 10.0);
  EXPECT_LT(reading(window, 33), reading(rooftop, 33) - 10.0);
}

TEST(Pipeline, FalseClaimsLowerTrust) {
  const auto honest =
      calibrate_site(sc::Site::kIndoor, honest_claims("honest", false, false));
  const auto liar =
      calibrate_site(sc::Site::kIndoor, honest_claims("liar", true, true));
  EXPECT_GT(honest.trust.score, liar.trust.score + 20.0);
  EXPECT_GE(liar.trust.violations(), 2u);
}

TEST(Pipeline, TrustOrderingAcrossSites) {
  // With identical (maximal) claims, the rooftop node is the most trusted
  // and the indoor node the least.
  const auto claims = honest_claims("n", true, true);
  const auto rooftop = calibrate_site(sc::Site::kRooftop, claims);
  const auto window = calibrate_site(sc::Site::kWindow, claims);
  const auto indoor = calibrate_site(sc::Site::kIndoor, claims);
  EXPECT_GT(rooftop.trust.score, indoor.trust.score);
  EXPECT_GE(window.trust.violations(), 1u);
}

TEST(Pipeline, JsonReportIsWellFormed) {
  const auto report = calibrate_site(
      sc::Site::kWindow, honest_claims("json-node", false, false));
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"node_id\"", "\"survey\"", "\"field_of_view\"", "\"cell_scan\"",
        "\"tv_sweep\"", "\"frequency_response\"", "\"classification\"", "\"trust\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // Balanced braces/brackets outside string literals (no parser by design).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;          // skip escaped character
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Pipeline, RegistryRanksAndFilters) {
  cal::NodeRegistry registry;
  registry.record(calibrate_site(sc::Site::kRooftop,
                                 honest_claims("rooftop", true, false)));
  registry.record(calibrate_site(sc::Site::kWindow,
                                 honest_claims("window", true, true)));
  registry.record(calibrate_site(sc::Site::kIndoor,
                                 honest_claims("indoor", true, true)));
  EXPECT_EQ(registry.size(), 3u);
  const auto ranked = registry.ranked_by_trust();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked.front(), "rooftop");

  // Mid-band monitoring toward the west: rooftop qualifies.
  const auto usable = registry.usable_for(2145e6, 280.0);
  EXPECT_NE(std::find(usable.begin(), usable.end(), "rooftop"), usable.end());
  EXPECT_EQ(std::find(usable.begin(), usable.end(), "indoor"), usable.end());

  EXPECT_NE(registry.find("window"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(Pipeline, WaveformFidelityEndToEnd) {
  // Full physical pipeline on a short window: the macro shape holds.
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kWaveform;
  cfg.survey.duration_s = 6.0;
  cfg.survey.ground_truth_query_at_s = 3.0;
  const auto report = calibrate_site(
      sc::Site::kRooftop, honest_claims("wf", true, false), 2023, cfg);
  EXPECT_GT(report.survey.total_frames_decoded, 100u);
  EXPECT_GT(report.survey.received_count(), 5u);
  EXPECT_TRUE(report.fov.open_sectors.contains(280.0));
  EXPECT_FALSE(report.classification.indoor());
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a = calibrate_site(sc::Site::kWindow, honest_claims("d", false, false));
  const auto b = calibrate_site(sc::Site::kWindow, honest_claims("d", false, false));
  EXPECT_EQ(a.survey.received_count(), b.survey.received_count());
  EXPECT_DOUBLE_EQ(a.trust.score, b.trust.score);
  ASSERT_EQ(a.tv_readings.size(), b.tv_readings.size());
  for (std::size_t i = 0; i < a.tv_readings.size(); ++i)
    EXPECT_DOUBLE_EQ(a.tv_readings[i].power_dbfs, b.tv_readings[i].power_dbfs);
}

TEST(Pipeline, HardwareAndLoFieldsPopulated) {
  const auto report = calibrate_site(
      sc::Site::kRooftop, honest_claims("hw", true, false));
  // Healthy simulated node: no fault, reference within a fraction of a ppm.
  EXPECT_TRUE(report.hardware.healthy());
  EXPECT_FALSE(report.hardware.notes.empty());
  ASSERT_TRUE(report.lo_calibration.usable());
  EXPECT_NEAR(report.lo_calibration.ppm, 0.0, 0.3);
  EXPECT_GE(report.lo_calibration.valid_count, 3u);
}
