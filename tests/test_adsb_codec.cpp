// Unit tests: Mode S CRC, CPR, altitude, callsign, DF17 frame codec.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "adsb/altitude.hpp"
#include "adsb/callsign.hpp"
#include "adsb/cpr.hpp"
#include "adsb/crc.hpp"
#include "adsb/frame.hpp"
#include "adsb/io.hpp"
#include "util/rng.hpp"

namespace a = speccal::adsb;

// ------------------------------------------------------------------ crc ----

TEST(Crc, AttachedParityValidates) {
  speccal::util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint8_t, 14> frame{};
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    a::attach_crc(frame);
    EXPECT_TRUE(a::check_crc(frame));
  }
}

TEST(Crc, DetectsEverySingleBitError) {
  std::array<std::uint8_t, 14> frame{};
  frame[0] = 0x8D;
  frame[1] = 0xAB;
  a::attach_crc(frame);
  for (int bit = 0; bit < 112; ++bit) {
    auto corrupted = frame;
    corrupted[static_cast<std::size_t>(bit) / 8] ^=
        static_cast<std::uint8_t>(0x80u >> (bit % 8));
    EXPECT_FALSE(a::check_crc(corrupted)) << "bit " << bit;
  }
}

class CrcRepair : public ::testing::TestWithParam<int> {};

TEST_P(CrcRepair, RepairsSingleBitAtAnyPosition) {
  const int bit = GetParam();
  std::array<std::uint8_t, 14> frame{};
  frame[0] = 0x8D;
  frame[3] = 0x42;
  a::attach_crc(frame);
  auto corrupted = frame;
  corrupted[static_cast<std::size_t>(bit) / 8] ^=
      static_cast<std::uint8_t>(0x80u >> (bit % 8));
  const auto fixed = a::repair_frame(corrupted, 1);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->size(), 1u);
  EXPECT_EQ((*fixed)[0], bit);
  EXPECT_EQ(corrupted, frame);
}

INSTANTIATE_TEST_SUITE_P(AllBytesSampled, CrcRepair,
                         ::testing::Values(0, 7, 8, 31, 55, 56, 87, 88, 100, 111));

TEST(Crc, RepairsTwoBitErrors) {
  std::array<std::uint8_t, 14> frame{};
  frame[0] = 0x8D;
  frame[5] = 0x99;
  a::attach_crc(frame);
  auto corrupted = frame;
  corrupted[2] ^= 0x10;
  corrupted[9] ^= 0x01;
  EXPECT_FALSE(a::repair_frame(corrupted, 1).has_value());  // 1-bit budget fails
  auto two = corrupted;
  const auto fixed = a::repair_frame(two, 2);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->size(), 2u);
  EXPECT_EQ(two, frame);
}

TEST(Crc, CleanFrameRepairsToNothing) {
  std::array<std::uint8_t, 14> frame{};
  a::attach_crc(frame);
  auto copy = frame;
  const auto fixed = a::repair_frame(copy, 2);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_TRUE(fixed->empty());
}

TEST(Crc, LinearityOfSyndromes) {
  // crc(a ^ b) == crc(a) ^ crc(b): the property syndrome repair relies on.
  speccal::util::Rng rng(33);
  std::vector<std::uint8_t> x(14), y(14), z(14);
  for (std::size_t i = 0; i < 14; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    y[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    z[i] = x[i] ^ y[i];
  }
  EXPECT_EQ(a::crc24(z), a::crc24(x) ^ a::crc24(y));
}

// ------------------------------------------------------------- altitude ----

class AltitudeRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(AltitudeRoundTrip, QuantizedTo25Feet) {
  const double alt = GetParam();
  const auto decoded = a::decode_altitude_ft(a::encode_altitude_ft(alt));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NEAR(*decoded, alt, 12.5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AltitudeRoundTrip,
                         ::testing::Values(-1000.0, 0.0, 1000.0, 2500.0, 10000.0,
                                           35000.0, 41000.0, 50175.0));

TEST(Altitude, ClampsOutOfRange) {
  EXPECT_NEAR(a::decode_altitude_ft(a::encode_altitude_ft(99999.0)).value(), 50175.0, 25.0);
  EXPECT_NEAR(a::decode_altitude_ft(a::encode_altitude_ft(-5000.0)).value(), -1000.0, 25.0);
}

TEST(Altitude, RejectsUnavailableAndInvalidGillham) {
  EXPECT_FALSE(a::decode_altitude_ft(0).has_value());
  // Q = 0 with all C bits zero: invalid Gillham 100-ft sub-code.
  EXPECT_FALSE(a::decode_altitude_ft(0b010000000000).has_value());  // A1 only
}

class GillhamRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GillhamRoundTrip, QuantizedTo100Feet) {
  const double alt = GetParam();
  const std::uint16_t ac12 = a::encode_altitude_gillham_ft(alt);
  EXPECT_EQ(ac12 & (1u << 4), 0u);  // Q stays clear
  const auto decoded = a::decode_altitude_ft(ac12);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NEAR(*decoded, alt, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Ladder, GillhamRoundTrip,
                         ::testing::Values(-1200.0, -500.0, 0.0, 700.0, 1500.0,
                                           5000.0, 12300.0, 30000.0, 50000.0,
                                           99900.0, 126700.0));

TEST(Altitude, GillhamDenseSweepRoundTrips) {
  // Every 100 ft rung from -1200 to 20000 ft must survive the Gray coding.
  for (double alt = -1200.0; alt <= 20000.0; alt += 100.0) {
    const auto decoded = a::decode_altitude_ft(a::encode_altitude_gillham_ft(alt));
    ASSERT_TRUE(decoded.has_value()) << alt;
    EXPECT_NEAR(*decoded, alt, 0.5) << alt;
  }
}

TEST(Altitude, UnitConversions) {
  EXPECT_NEAR(a::feet_to_m(10000.0), 3048.0, 1e-9);
  EXPECT_NEAR(a::m_to_feet(a::feet_to_m(12345.0)), 12345.0, 1e-9);
}

// ------------------------------------------------------------- callsign ----

TEST(Callsign, RoundTripTypical) {
  for (const std::string cs : {"UAL123", "N12345", "DLH400", "A", "SWA1234"}) {
    EXPECT_EQ(a::decode_callsign(a::encode_callsign(cs)), cs);
  }
}

TEST(Callsign, LowercaseNormalizedAndPadded) {
  EXPECT_EQ(a::decode_callsign(a::encode_callsign("ual1")), "UAL1");
  EXPECT_EQ(a::decode_callsign(a::encode_callsign("")), "");
}

TEST(Callsign, UnsupportedCharactersBecomeSpace) {
  EXPECT_EQ(a::decode_callsign(a::encode_callsign("AB-1")), "AB 1");
}

// ------------------------------------------------------------------ cpr ----

TEST(Cpr, NlKnownValues) {
  // Reference values from ICAO Doc 9871 / The 1090 MHz Riddle.
  EXPECT_EQ(a::cpr_nl(0.0), 59);
  EXPECT_EQ(a::cpr_nl(10.0), 59);
  EXPECT_EQ(a::cpr_nl(10.5), 58);
  EXPECT_EQ(a::cpr_nl(37.87), 47);   // testbed latitude (NL=47 band: 36.85-38.41)
  EXPECT_EQ(a::cpr_nl(59.0), 30);    // NL=30 band: 58.84-59.95
  EXPECT_EQ(a::cpr_nl(86.9), 2);
  EXPECT_EQ(a::cpr_nl(87.5), 1);
  EXPECT_EQ(a::cpr_nl(-37.87), 47);  // symmetric
}

class CprGlobalRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CprGlobalRoundTrip, EvenOddPairRecoversPosition) {
  const auto [lat, lon] = GetParam();
  const auto even = a::cpr_encode(lat, lon, false);
  const auto odd = a::cpr_encode(lat, lon, true);
  const auto fix = a::cpr_global_decode(even, odd, true);
  ASSERT_TRUE(fix.has_value());
  // Airborne CPR resolution is ~5 m; allow generous slack.
  EXPECT_NEAR(fix->lat_deg, lat, 1e-4);
  EXPECT_NEAR(fix->lon_deg, lon, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    WorldGrid, CprGlobalRoundTrip,
    ::testing::Values(std::make_tuple(37.87, -122.27), std::make_tuple(0.01, 0.01),
                      std::make_tuple(51.5, -0.12), std::make_tuple(-33.87, 151.2),
                      std::make_tuple(35.68, 139.69), std::make_tuple(64.1, -21.9),
                      std::make_tuple(-54.8, -68.3), std::make_tuple(1.35, 103.99),
                      std::make_tuple(45.0, 179.5), std::make_tuple(-0.5, -179.5)));

TEST(Cpr, LocalDecodeTracksMovement) {
  const double ref_lat = 37.87, ref_lon = -122.27;
  // Aircraft ~50 km north-east of the reference.
  const double lat = ref_lat + 0.3, lon = ref_lon + 0.4;
  const auto msg = a::cpr_encode(lat, lon, true);
  const auto fix = a::cpr_local_decode(msg, ref_lat, ref_lon);
  EXPECT_NEAR(fix.lat_deg, lat, 1e-4);
  EXPECT_NEAR(fix.lon_deg, lon, 1e-4);
}

TEST(Cpr, GlobalDecodeUsesMostRecentParity) {
  // Aircraft moving: even at position A, odd at position B slightly north.
  const double lat = 40.0, lon = -100.0;
  const auto even = a::cpr_encode(lat, lon, false);
  const auto odd = a::cpr_encode(lat + 0.01, lon, true);
  const auto newer_odd = a::cpr_global_decode(even, odd, true);
  const auto newer_even = a::cpr_global_decode(even, odd, false);
  ASSERT_TRUE(newer_odd && newer_even);
  EXPECT_NEAR(newer_odd->lat_deg, lat + 0.01, 2e-3);
  EXPECT_NEAR(newer_even->lat_deg, lat, 2e-3);
}

TEST(Cpr, EncodedFieldsAre17Bits) {
  speccal::util::Rng rng(35);
  for (int i = 0; i < 200; ++i) {
    const double lat = rng.uniform(-85.0, 85.0);
    const double lon = rng.uniform(-180.0, 180.0);
    const auto enc = a::cpr_encode(lat, lon, rng.chance(0.5));
    EXPECT_LT(enc.lat, 131072u);
    EXPECT_LT(enc.lon, 131072u);
  }
}

// ----------------------------------------------------------------- frame ----

TEST(Frame, PositionRoundTrip) {
  const auto raw = a::build_position_frame(0xA1B2C3, 37.87, -122.27, 35000.0, false);
  EXPECT_TRUE(a::check_crc(raw));
  const auto frame = a::parse_frame(raw);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->icao, 0xA1B2C3u);
  EXPECT_EQ(frame->type_code, 11);
  ASSERT_TRUE(frame->has_position());
  const auto& pos = std::get<a::PositionPayload>(frame->payload);
  EXPECT_FALSE(pos.cpr.odd);
  EXPECT_NEAR(a::decode_altitude_ft(pos.ac12).value(), 35000.0, 12.5);
  // Verify the embedded CPR against a direct encode.
  const auto want = a::cpr_encode(37.87, -122.27, false);
  EXPECT_EQ(pos.cpr.lat, want.lat);
  EXPECT_EQ(pos.cpr.lon, want.lon);
}

class VelocityRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(VelocityRoundTrip, SpeedTrackAndClimbRecovered) {
  const auto [speed, track, vrate] = GetParam();
  const auto raw = a::build_velocity_frame(0xABCDEF, speed, track, vrate);
  EXPECT_TRUE(a::check_crc(raw));
  const auto frame = a::parse_frame(raw);
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(frame->has_velocity());
  const auto& vel = std::get<a::VelocityPayload>(frame->payload);
  EXPECT_NEAR(vel.ground_speed_kt, speed, 1.5);
  if (speed > 1.0) {
    const double err = std::fabs(std::remainder(vel.track_deg - track, 360.0));
    EXPECT_LT(err, 1.0) << "track " << vel.track_deg << " vs " << track;
  }
  EXPECT_NEAR(vel.vertical_rate_fpm, vrate, 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VelocityRoundTrip,
    ::testing::Values(std::make_tuple(450.0, 0.0, 0.0),
                      std::make_tuple(250.0, 90.0, 1500.0),
                      std::make_tuple(380.0, 222.5, -1800.0),
                      std::make_tuple(120.0, 359.0, 600.0),
                      std::make_tuple(500.0, 135.0, -2500.0)));

TEST(Frame, IdentRoundTrip) {
  const auto raw = a::build_ident_frame(0x123456, "UAL42");
  EXPECT_TRUE(a::check_crc(raw));
  const auto frame = a::parse_frame(raw);
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(frame->has_ident());
  EXPECT_EQ(std::get<a::IdentPayload>(frame->payload).callsign, "UAL42");
}

TEST(Frame, RejectsNonDf17) {
  a::RawFrame raw{};
  raw[0] = 0x20;  // DF4
  EXPECT_FALSE(a::parse_frame(raw).has_value());
}

TEST(Frame, IcaoMaskedTo24Bits) {
  const auto raw = a::build_ident_frame(0xFF123456, "X");
  const auto frame = a::parse_frame(raw);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->icao, 0x123456u);
}

// ------------------------------------------------------- surface & DF11 ----

TEST(CprSurface, LocalRoundTrip) {
  const double lat = 37.6213, lon = -122.3790;  // an airport surface
  for (bool odd : {false, true}) {
    const auto enc = a::cpr_surface_encode(lat, lon, odd);
    const auto fix = a::cpr_surface_local_decode(enc, 37.62, -122.38);
    // Surface CPR resolution is ~1.25 m; allow generous slack.
    EXPECT_NEAR(fix.lat_deg, lat, 5e-5);
    EXPECT_NEAR(fix.lon_deg, lon, 5e-5);
  }
}

TEST(CprSurface, FinerThanAirborne) {
  // Surface zones are a quarter the size: the same position quantizes with
  // ~4x less error than the airborne grid.
  const double lat = 37.6213477, lon = -122.3790893;
  const auto air = a::cpr_local_decode(a::cpr_encode(lat, lon, false), 37.62, -122.38);
  const auto surf =
      a::cpr_surface_local_decode(a::cpr_surface_encode(lat, lon, false), 37.62, -122.38);
  EXPECT_LE(std::fabs(surf.lat_deg - lat), std::fabs(air.lat_deg - lat) + 1e-9);
}

class MovementRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(MovementRoundTrip, QuantizedPerDo260) {
  const double speed = GetParam();
  const auto code = a::encode_movement_kt(speed);
  const auto decoded = a::decode_movement_kt(code);
  ASSERT_TRUE(decoded.has_value());
  // Quantization step grows with speed; accept the local step size.
  const double step = speed < 2 ? 0.25 : speed < 15 ? 0.5 : speed < 70 ? 1.0
                      : speed < 100 ? 2.0 : 5.0;
  EXPECT_NEAR(*decoded, speed, step);
}

INSTANTIATE_TEST_SUITE_P(Speeds, MovementRoundTrip,
                         ::testing::Values(0.0, 0.5, 1.5, 5.0, 14.5, 30.0, 69.0,
                                           85.0, 120.0, 174.0));

TEST(Movement, EdgeCodes) {
  EXPECT_FALSE(a::decode_movement_kt(0).has_value());    // no information
  EXPECT_FALSE(a::decode_movement_kt(125).has_value());  // reserved
  EXPECT_DOUBLE_EQ(a::decode_movement_kt(1).value(), 0.0);
  EXPECT_EQ(a::encode_movement_kt(500.0), 124);          // >= 175 kt saturates
  EXPECT_DOUBLE_EQ(a::decode_movement_kt(124).value(), 175.0);
}

TEST(Frame, SurfaceRoundTrip) {
  const auto raw =
      a::build_surface_frame(0xABC123, 37.6213, -122.3790, 12.0, 270.0, false);
  EXPECT_TRUE(a::check_crc(raw));
  const auto frame = a::parse_frame(raw);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type_code, 7);
  ASSERT_TRUE(frame->has_surface());
  const auto& surf = std::get<a::SurfacePayload>(frame->payload);
  ASSERT_TRUE(surf.ground_speed_kt.has_value());
  EXPECT_NEAR(*surf.ground_speed_kt, 12.0, 0.5);
  ASSERT_TRUE(surf.track_deg.has_value());
  EXPECT_NEAR(*surf.track_deg, 270.0, 3.0);
  const auto fix = a::cpr_surface_local_decode(surf.cpr, 37.62, -122.38);
  EXPECT_NEAR(fix.lat_deg, 37.6213, 1e-4);
  EXPECT_NEAR(fix.lon_deg, -122.3790, 1e-4);
}

TEST(AllCall, RoundTrip) {
  const auto raw = a::build_all_call(0xDEF456, 5);
  EXPECT_TRUE(a::check_crc(raw));
  const auto parsed = a::parse_all_call(raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->icao, 0xDEF456u);
  EXPECT_EQ(parsed->capability, 5);
}

TEST(AllCall, RejectsOtherFormats) {
  a::ShortFrame raw{};
  raw[0] = 0x20;  // DF4
  EXPECT_FALSE(a::parse_all_call(raw).has_value());
}

// ------------------------------------------------------------ io formats ----

TEST(AvrFormat, LongFrameRoundTrip) {
  const auto frame = a::build_position_frame(0x4840D6, 52.25, 3.92, 38000.0, false);
  const std::string line = a::to_avr(frame);
  EXPECT_EQ(line.front(), '*');
  EXPECT_EQ(line.back(), ';');
  EXPECT_EQ(line.size(), 30u);
  const auto parsed = a::from_avr(line);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(std::holds_alternative<a::RawFrame>(*parsed));
  EXPECT_EQ(std::get<a::RawFrame>(*parsed), frame);
}

TEST(AvrFormat, ShortFrameRoundTrip) {
  const auto frame = a::build_all_call(0xABCDEF);
  const auto parsed = a::from_avr(a::to_avr(frame));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(std::holds_alternative<a::ShortFrame>(*parsed));
  EXPECT_EQ(std::get<a::ShortFrame>(*parsed), frame);
}

TEST(AvrFormat, ToleratesWhitespaceRejectsGarbage) {
  const auto frame = a::build_all_call(0x111111);
  EXPECT_TRUE(a::from_avr("  " + a::to_avr(frame) + "\r\n").has_value());
  EXPECT_FALSE(a::from_avr("").has_value());
  EXPECT_FALSE(a::from_avr("*8D;").has_value());                 // wrong length
  EXPECT_FALSE(a::from_avr("*8D4840D6202CC371C32CE0576G98;").has_value());  // bad hex
  EXPECT_FALSE(a::from_avr("8D4840D6202CC371C32CE0576098").has_value());    // no framing
}

TEST(SbsFormat, FieldsPerMessageType) {
  const std::uint32_t icao = 0x4840D6;
  a::AircraftState track;
  track.icao = icao;
  track.callsign = "KLM1023";
  track.position = speccal::geo::Geodetic{52.25, 3.92, a::feet_to_m(38000.0)};

  const auto ident = a::parse_frame(a::build_ident_frame(icao, "KLM1023"));
  ASSERT_TRUE(ident.has_value());
  const std::string msg1 = a::to_sbs(*ident, &track, 12.5);
  EXPECT_EQ(msg1.rfind("MSG,1,", 0), 0u);
  EXPECT_NE(msg1.find("4840D6"), std::string::npos);
  EXPECT_NE(msg1.find("KLM1023"), std::string::npos);

  const auto pos = a::parse_frame(
      a::build_position_frame(icao, 52.25, 3.92, 38000.0, false));
  ASSERT_TRUE(pos.has_value());
  const std::string msg3 = a::to_sbs(*pos, &track, 13.0);
  EXPECT_EQ(msg3.rfind("MSG,3,", 0), 0u);
  EXPECT_NE(msg3.find("38000"), std::string::npos);   // altitude column
  EXPECT_NE(msg3.find("52.25"), std::string::npos);   // resolved latitude

  const auto vel = a::parse_frame(a::build_velocity_frame(icao, 430.0, 95.0, -640.0));
  ASSERT_TRUE(vel.has_value());
  const std::string msg4 = a::to_sbs(*vel, &track, 13.5);
  EXPECT_EQ(msg4.rfind("MSG,4,", 0), 0u);
  EXPECT_NE(msg4.find("430"), std::string::npos);
  EXPECT_NE(msg4.find("-640"), std::string::npos);
}

TEST(AvrFormat, FuzzNeverCrashes) {
  speccal::util::Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 40));
    for (std::size_t i = 0; i < len; ++i)
      line.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    // Must not crash; if it parses, re-encoding must reproduce the hex.
    const auto parsed = a::from_avr(line);
    if (parsed.has_value()) {
      const std::string out = std::holds_alternative<a::RawFrame>(*parsed)
                                  ? a::to_avr(std::get<a::RawFrame>(*parsed))
                                  : a::to_avr(std::get<a::ShortFrame>(*parsed));
      // Compare case-insensitively against the trimmed input.
      std::string trimmed = line;
      trimmed.erase(0, trimmed.find('*'));
      for (auto& ch : trimmed) ch = static_cast<char>(std::toupper(ch));
      EXPECT_EQ(out, trimmed);
    }
  }
}

TEST(Cpr, NlBoundaryLatitudesDecode) {
  // Latitudes straddling NL transition boundaries are where CPR decoders
  // break; the even/odd pair from one position must still decode.
  for (double lat : {10.46, 10.48, 36.84, 36.86, 58.83, 58.85, 86.5, 86.6}) {
    const auto even = a::cpr_encode(lat, -50.0, false);
    const auto odd = a::cpr_encode(lat, -50.0, true);
    const auto fix = a::cpr_global_decode(even, odd, false);
    ASSERT_TRUE(fix.has_value()) << lat;
    EXPECT_NEAR(fix->lat_deg, lat, 1e-4) << lat;
    // Longitude resolution degrades with zone width: at 86.5 deg only
    // NL=2-3 zones remain, so the 17-bit step is ~1e-3 degrees.
    const double lon_tol = 360.0 / a::cpr_nl(lat) / 131072.0 + 1e-5;
    EXPECT_NEAR(fix->lon_deg, -50.0, lon_tol) << lat;
  }
}

TEST(Cpr, StalePairAcrossZonesRejected) {
  // Even and odd messages from positions in different NL bands must be
  // refused rather than mis-decoded (the DO-260 consistency check).
  const auto even = a::cpr_encode(36.0, -100.0, false);   // NL = 48 band
  const auto odd = a::cpr_encode(39.0, -100.0, true);     // NL = 46 band
  EXPECT_FALSE(a::cpr_global_decode(even, odd, true).has_value());
}
