// Unit tests: util (rng, units, table, json).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "json_reader.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace u = speccal::util;
namespace tj = speccal::testjson;

// ---------------------------------------------------------------- units ----

TEST(Units, DbRatioRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 27.5}) {
    EXPECT_NEAR(u::ratio_to_db(u::db_to_ratio(db)), db, 1e-12);
  }
}

TEST(Units, DbmWattsKnownValues) {
  EXPECT_NEAR(u::watts_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(u::watts_to_dbm(0.001), 0.0, 1e-12);
  EXPECT_NEAR(u::dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(u::dbm_to_watts(-30.0), 1e-6, 1e-18);
}

TEST(Units, AmplitudeDb) {
  EXPECT_NEAR(u::amplitude_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(u::db_to_amplitude(6.0206), 2.0, 1e-3);
}

TEST(Units, ThermalNoiseMinus174PerHz) {
  EXPECT_NEAR(u::thermal_noise_dbm(1.0), -173.975, 0.01);
  EXPECT_NEAR(u::thermal_noise_dbm(1e6), -113.975, 0.01);
}

TEST(Units, PowerSumDb) {
  // Two equal powers add 3 dB.
  EXPECT_NEAR(u::power_sum_db(-90.0, -90.0), -86.99, 0.01);
  // A much weaker signal changes nothing measurable.
  EXPECT_NEAR(u::power_sum_db(-50.0, -120.0), -50.0, 1e-4);
}

TEST(Units, WrapDegrees) {
  EXPECT_DOUBLE_EQ(u::wrap_degrees(0.0), 0.0);
  EXPECT_DOUBLE_EQ(u::wrap_degrees(360.0), 0.0);
  EXPECT_DOUBLE_EQ(u::wrap_degrees(-90.0), 270.0);
  EXPECT_DOUBLE_EQ(u::wrap_degrees(725.0), 5.0);
}

TEST(Units, AngularDistance) {
  EXPECT_DOUBLE_EQ(u::angular_distance_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(u::angular_distance_deg(0.0, 180.0), 180.0);
  EXPECT_DOUBLE_EQ(u::angular_distance_deg(90.0, 90.0), 0.0);
  EXPECT_DOUBLE_EQ(u::angular_distance_deg(-10.0, 10.0), 20.0);
}

TEST(Units, WavelengthAt1090MHz) {
  EXPECT_NEAR(u::wavelength_m(1090e6), 0.275, 0.001);
}

TEST(Units, FrequencyLiterals) {
  using namespace u::literals;
  EXPECT_DOUBLE_EQ(1_GHz, 1e9);
  EXPECT_DOUBLE_EQ(731_MHz, 731e6);
  EXPECT_DOUBLE_EQ(1.5_MHz, 1.5e6);
  EXPECT_DOUBLE_EQ(100_km, 100e3);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicFromSeed) {
  u::Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool any_diff = false;
  u::Rng a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2.next() != c.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  u::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  u::Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  u::Rng rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

TEST(Rng, PoissonMean) {
  u::Rng rng(13);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double acc = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) acc += rng.poisson(mean);
    EXPECT_NEAR(acc / kN, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(Rng, ExponentialMean) {
  u::Rng rng(17);
  double acc = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(2.0);
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST(Rng, ChanceEdges) {
  u::Rng rng(19);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkIndependentAndStable) {
  u::Rng parent(21);
  u::Rng childA = parent.fork(1);
  u::Rng childA2 = parent.fork(1);
  u::Rng childB = parent.fork(2);
  EXPECT_EQ(childA.next(), childA2.next());       // same stream id -> same stream
  EXPECT_NE(childA.next(), childB.next());        // different ids diverge
  // Forking does not advance the parent.
  u::Rng parent2(21);
  (void)parent2.fork(1);
  u::Rng parent3(21);
  EXPECT_EQ(parent2.next(), parent3.next());
}

TEST(Rng, WorksWithStdShuffleConcept) {
  static_assert(std::uniform_random_bit_generator<u::Rng>);
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignsAndCounts) {
  u::Table t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(u::Table({}), std::invalid_argument);
  u::Table t({"x"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvQuoting) {
  u::Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Table, FormatFixed) {
  EXPECT_EQ(u::format_fixed(-93.456, 1), "-93.5");
  EXPECT_EQ(u::format_fixed(std::nan(""), 1), "-");
  EXPECT_EQ(u::format_fixed(std::nan(""), 1, "n/a"), "n/a");
}

TEST(Table, AsciiBar) {
  EXPECT_EQ(u::ascii_bar(10.0, 0.0, 10.0, 4), "####");
  EXPECT_EQ(u::ascii_bar(0.0, 0.0, 10.0, 4), "");
  EXPECT_EQ(u::ascii_bar(5.0, 0.0, 10.0, 4), "##");
  EXPECT_EQ(u::ascii_bar(99.0, 0.0, 10.0, 4), "####");  // clamped
}

// ----------------------------------------------------------------- json ----

TEST(Json, ObjectWithMixedValues) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_object();
  w.key("s");
  w.value("text");
  w.key("n");
  w.value(-12.5);
  w.key("i");
  w.value(42);
  w.key("b");
  w.value(true);
  w.key("z");
  w.null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"s":"text","n":-12.5,"i":42,"b":true,"z":null})");
}

TEST(Json, NestedArrays) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_array();
  w.value(1);
  w.begin_array();
  w.value(2);
  w.end_array();
  w.value(3);
  w.end_array();
  EXPECT_EQ(os.str(), "[1,[2],3]");
}

TEST(Json, EscapesControlCharacters) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.value("a\"b\\c\nd\te");
  EXPECT_EQ(os.str(), R"("a\"b\\c\nd\te")");
}

TEST(Json, NanBecomesNull) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.value(std::nan(""));
  EXPECT_EQ(os.str(), "null");
}

TEST(Json, EscapingRoundTripsThroughAParser) {
  // Every byte a span name or node id could carry must survive
  // write -> parse unchanged (the Chrome trace and metrics exports depend
  // on this; tests/json_reader.hpp is the independent reader).
  std::string nasty = "quote\" backslash\\ slash/ tab\t nl\n cr\r bs\b ff\f";
  for (char c = 1; c < 0x20; ++c) nasty.push_back(c);  // every control byte
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_object();
  w.key(nasty);
  w.value(nasty);
  w.end_object();
  const tj::Value doc = tj::parse(os.str());
  ASSERT_TRUE(doc.has(nasty));
  EXPECT_EQ(doc.at(nasty).str(), nasty);
}

TEST(Json, Utf8PassesThroughUnmangled) {
  // Multi-byte UTF-8 must not be escaped byte-by-byte: emit raw, re-read
  // identical. (Node ids are operator-chosen strings.)
  const std::string utf8 = "n\xC3\xB8de-\xE2\x82\xAC-\xF0\x9F\x93\xA1";
  std::ostringstream os;
  u::JsonWriter w(os);
  w.value(utf8);
  EXPECT_NE(os.str().find(utf8), std::string::npos);
  EXPECT_EQ(tj::parse(os.str()).str(), utf8);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  // JSON has no Inf/NaN literal; emitting them raw would poison every
  // downstream parser, so the writer substitutes null.
  for (double v : {std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN()}) {
    std::ostringstream os;
    u::JsonWriter w(os);
    w.value(v);
    EXPECT_EQ(os.str(), "null");
    EXPECT_TRUE(tj::parse(os.str()).is_null());
  }
}

TEST(Json, NumbersRoundTrip) {
  std::ostringstream os;
  u::JsonWriter w(os);
  w.begin_array();
  w.value(-12.5);
  w.value(1e-9);
  w.value(std::int64_t{-9007199254740993});  // beyond double's exact range
  w.value(0);
  w.end_array();
  const tj::Value doc = tj::parse(os.str());
  ASSERT_EQ(doc.array().size(), 4u);
  EXPECT_DOUBLE_EQ(doc.array()[0].number(), -12.5);
  EXPECT_DOUBLE_EQ(doc.array()[1].number(), 1e-9);
  EXPECT_DOUBLE_EQ(doc.array()[3].number(), 0.0);
}

TEST(Json, RejectsProtocolErrors) {
  {
    std::ostringstream os;
    u::JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    std::ostringstream os;
    u::JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    std::ostringstream os;
    u::JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
}
