// Unit tests: plan-based FFT engine (FftPlan, PlanCache, ScratchArena,
// SpectrumEstimator, WelchEstimator) and the bin_for_frequency contract.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <numbers>
#include <thread>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/plan.hpp"
#include "dsp/welch.hpp"
#include "util/rng.hpp"

namespace d = speccal::dsp;
using speccal::util::Rng;

namespace {

/// Brute-force DFT reference.
template <typename Real>
std::vector<std::complex<Real>> dft(const std::vector<std::complex<Real>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<Real>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += std::complex<double>(x[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = {static_cast<Real>(acc.real()), static_cast<Real>(acc.imag())};
  }
  return out;
}

std::vector<std::complex<float>> noise_block(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<float>> x(n);
  for (auto& v : x)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return x;
}

}  // namespace

// ----------------------------------------------------------------- plans ----

TEST(FftPlan, DoublePlanMatchesDirectDft) {
  Rng rng(11);
  std::vector<std::complex<double>> x(128);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto want = dft(x);
  auto got = x;
  d::FftPlanD plan(x.size());
  plan.forward(got);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-9);
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-9);
  }
}

TEST(FftPlan, FloatPlanMatchesDirectDft) {
  const auto x = noise_block(256, 12);
  const auto want = dft(x);
  auto got = x;
  d::FftPlan plan(x.size());
  plan.forward(got);
  // Float-native transform: errors scale with sqrt(n) * eps_f ~ 1e-5.
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 2e-4);
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 2e-4);
  }
}

TEST(FftPlan, InverseRoundTripFloat) {
  const auto x = noise_block(1024, 13);
  auto work = x;
  d::FftPlan plan(x.size());
  plan.forward(work);
  plan.inverse(work);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(work[i].real(), x[i].real(), 1e-3);
    EXPECT_NEAR(work[i].imag(), x[i].imag(), 1e-3);
  }
}

TEST(FftPlan, CachedPlanMatchesFreshPlan) {
  Rng rng(14);
  std::vector<std::complex<double>> x(512);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto via_cache = x;
  d::PlanCache::shared().plan_f64(x.size())->forward(via_cache);
  auto via_plan = x;
  d::FftPlanD(x.size()).forward(via_plan);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_DOUBLE_EQ(via_plan[k].real(), via_cache[k].real());
    EXPECT_DOUBLE_EQ(via_plan[k].imag(), via_cache[k].imag());
  }
}

TEST(FftPlan, SizeOneAndValidation) {
  d::FftPlan one(1);
  std::vector<std::complex<float>> x(1, {3.0f, -2.0f});
  one.forward(x);
  EXPECT_FLOAT_EQ(x[0].real(), 3.0f);
  EXPECT_FLOAT_EQ(x[0].imag(), -2.0f);

  EXPECT_THROW(d::FftPlan(0), std::invalid_argument);
  EXPECT_THROW(d::FftPlan(100), std::invalid_argument);
  d::FftPlan plan(64);
  std::vector<std::complex<float>> wrong(32);
  EXPECT_THROW(plan.forward(wrong), std::invalid_argument);
}

// ----------------------------------------------------------------- cache ----

TEST(PlanCache, SharesPlansAndCountsHits) {
  auto& cache = d::PlanCache::shared();
  cache.clear();
  const auto a = cache.plan_f32(2048);
  const auto b = cache.plan_f32(2048);
  EXPECT_EQ(a.get(), b.get());  // same immutable plan, shared
  const auto c = cache.plan_f64(2048);  // distinct precision, distinct plan
  EXPECT_EQ(c->size(), 2048u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.plans, 2u);

  cache.clear();
  EXPECT_EQ(cache.stats().plans, 0u);
  EXPECT_EQ(a->size(), 2048u);  // outstanding handles survive clear()
}

TEST(PlanCache, ConcurrentLookupsYieldOnePlan) {
  auto& cache = d::PlanCache::shared();
  cache.clear();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const d::FftPlan>> got(kThreads);
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        for (int i = 0; i < 50; ++i) got[static_cast<std::size_t>(t)] = cache.plan_f32(4096);
      });
  }
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[0].get(), got[static_cast<std::size_t>(t)].get());
  EXPECT_EQ(cache.stats().misses, 1u);
}

// ----------------------------------------------------------------- arena ----

TEST(ScratchArena, ReusesWithoutRegrowth) {
  d::ScratchArena arena;
  auto s1 = arena.complex_f32(4096);
  EXPECT_EQ(s1.size(), 4096u);
  const auto cap = arena.capacity_bytes();
  for (int i = 0; i < 100; ++i) {
    auto s = arena.complex_f32(4096);
    EXPECT_EQ(s.size(), 4096u);
  }
  EXPECT_EQ(arena.capacity_bytes(), cap);  // steady state: no growth
  auto smaller = arena.real_f64(16);
  EXPECT_EQ(smaller.size(), 16u);
}

// ------------------------------------------------------------- estimator ----

TEST(SpectrumEstimator, ZeroPadsAndWindowTailIsUnity) {
  // 1000 samples into a 1024-point plan with a 600-entry window: entries
  // beyond the window count as 1.0 and the input tail is zero-padded.
  // Reference computed by hand from the plan: window, pad, transform, then
  // coherent-gain-corrected power |X[k]|^2 / (sum w_i^2 * block_len).
  const auto x = noise_block(1000, 16);
  const std::vector<double> window(600, 0.5);
  d::SpectrumEstimator est(1024, window);
  const auto got = est.estimate(x);

  std::vector<std::complex<float>> padded(1024);
  double window_power = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float w = i < window.size() ? static_cast<float>(window[i]) : 1.0f;
    window_power += static_cast<double>(w) * static_cast<double>(w);
    padded[i] = x[i] * w;
  }
  d::PlanCache::shared().plan_f32(1024)->forward(padded);
  const double scale = 1.0 / (window_power * static_cast<double>(x.size()));
  ASSERT_EQ(got.size(), padded.size());
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_DOUBLE_EQ(got[k], static_cast<double>(std::norm(padded[k])) * scale);
}

TEST(SpectrumEstimator, ValidationNamesParameter) {
  EXPECT_THROW(d::SpectrumEstimator(1000), std::invalid_argument);
  try {
    d::SpectrumEstimator est(1000);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fft_size"), std::string::npos);
  }
  const std::vector<double> window(2048, 1.0);
  EXPECT_THROW(d::SpectrumEstimator(1024, window), std::invalid_argument);

  d::SpectrumEstimator est(1024);
  const auto too_long = noise_block(2048, 17);
  std::vector<double> out;
  EXPECT_THROW(est.estimate(too_long, out), std::invalid_argument);
}

// ----------------------------------------------------------------- welch ----

TEST(WelchEstimator, PlanReuseBitwiseIdenticalToFreshEstimator) {
  const auto x = noise_block(65536, 18);
  d::WelchConfig config;
  config.segment_size = 1024;
  config.overlap = 0.5;

  const auto fresh = d::WelchEstimator(config).estimate(x, 8e6);

  d::WelchEstimator est(config);
  d::WelchResult reused;
  for (int pass = 0; pass < 3; ++pass) est.estimate_into(x, 8e6, reused);

  ASSERT_EQ(reused.psd.size(), fresh.psd.size());
  EXPECT_EQ(reused.segments_averaged, fresh.segments_averaged);
  EXPECT_EQ(0, std::memcmp(reused.psd.data(), fresh.psd.data(),
                           reused.psd.size() * sizeof(double)));
}

TEST(WelchEstimator, BlockShorterThanSegmentIsEmpty) {
  d::WelchConfig config;
  config.segment_size = 1024;
  d::WelchEstimator est(config);
  const auto tiny = noise_block(1023, 19);
  const auto result = est.estimate(tiny, 1e6);
  EXPECT_TRUE(result.psd.empty());
  EXPECT_EQ(result.segments_averaged, 0u);
  EXPECT_DOUBLE_EQ(result.bin_width_hz, 1e6 / 1024.0);
}

TEST(WelchEstimator, OverlapZeroUsesDisjointSegments) {
  d::WelchConfig config;
  config.segment_size = 256;
  config.overlap = 0.0;
  const auto x = noise_block(256 * 10 + 100, 20);
  const auto result = d::WelchEstimator(config).estimate(x, 1e6);
  EXPECT_EQ(result.segments_averaged, 10u);  // trailing partial discarded
}

TEST(WelchEstimator, OverlapNearOneStillAdvances) {
  d::WelchConfig config;
  config.segment_size = 256;
  config.overlap = 0.99;  // hop clamps to floor(256 * 0.01) = 2 samples
  const auto x = noise_block(1024, 21);
  const auto result = d::WelchEstimator(config).estimate(x, 1e6);
  EXPECT_EQ(result.segments_averaged, (1024u - 256u) / 2u + 1u);

  // Even a hop that would round to zero advances by >= 1 sample.
  d::WelchConfig extreme;
  extreme.segment_size = 4;
  extreme.overlap = 0.99;
  const auto small = noise_block(16, 22);
  const auto r2 = d::WelchEstimator(extreme).estimate(small, 1e6);
  EXPECT_EQ(r2.segments_averaged, 13u);
}

TEST(WelchEstimator, ValidationNamesParameter) {
  d::WelchConfig bad;
  bad.segment_size = 1000;
  try {
    d::WelchEstimator est(bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("segment_size"), std::string::npos);
  }

  bad.segment_size = 1024;
  for (double overlap : {-0.1, 1.0, 1.5, std::nan("")}) {
    bad.overlap = overlap;
    EXPECT_THROW(d::WelchEstimator{bad}, std::invalid_argument) << overlap;
  }
  bad.overlap = 0.99;
  EXPECT_NO_THROW(d::WelchEstimator{bad});
  bad.overlap = 0.0;
  EXPECT_NO_THROW(d::WelchEstimator{bad});
}

// ---------------------------------------------------- bin_for_frequency ----

TEST(BinForFrequency, BinCentresMapExactly) {
  constexpr double fs = 1.024e6;
  constexpr std::size_t n = 1024;
  constexpr double res = fs / static_cast<double>(n);
  EXPECT_EQ(d::bin_for_frequency(0.0, fs, n), 0u);
  for (std::size_t k = 1; k < n / 2; ++k) {
    EXPECT_EQ(d::bin_for_frequency(static_cast<double>(k) * res, fs, n), k);
    EXPECT_EQ(d::bin_for_frequency(-static_cast<double>(k) * res, fs, n), n - k);
  }
}

TEST(BinForFrequency, NyquistBothSignsMapToMiddleBin) {
  constexpr double fs = 1e6;
  constexpr std::size_t n = 512;
  EXPECT_EQ(d::bin_for_frequency(fs / 2.0, fs, n), n / 2);
  EXPECT_EQ(d::bin_for_frequency(-fs / 2.0, fs, n), n / 2);
}

TEST(BinForFrequency, EdgesBelongToHigherFrequencyBin) {
  constexpr double fs = 1.024e6;
  constexpr std::size_t n = 1024;
  constexpr double res = fs / static_cast<double>(n);
  // Positive edge between bins 9 and 10.
  EXPECT_EQ(d::bin_for_frequency(9.5 * res, fs, n), 10u);
  // Negative edge between bins -10 and -9: the higher (less negative)
  // frequency wins. The pre-fix lround tie-away-from-zero sent this to
  // bin n-10 — inconsistent with the positive side.
  EXPECT_EQ(d::bin_for_frequency(-9.5 * res, fs, n), n - 9);
  // The edge just below DC belongs to the DC bin.
  EXPECT_EQ(d::bin_for_frequency(-0.5 * res, fs, n), 0u);
  // The edge just below +Nyquist belongs to the Nyquist bin.
  EXPECT_EQ(d::bin_for_frequency((static_cast<double>(n) / 2.0 - 0.5) * res, fs, n),
            n / 2);
}

TEST(BinForFrequency, AliasesBeyondNyquistAndDegenerateInputs) {
  constexpr double fs = 1e6;
  constexpr std::size_t n = 256;
  constexpr double res = fs / static_cast<double>(n);
  // One full sample rate aliases back to DC; fs + k*res to bin k.
  EXPECT_EQ(d::bin_for_frequency(fs, fs, n), 0u);
  EXPECT_EQ(d::bin_for_frequency(fs + 3.0 * res, fs, n), 3u);
  EXPECT_EQ(d::bin_for_frequency(-fs - 3.0 * res, fs, n), n - 3);
  // Degenerate parameters are defined, not UB.
  EXPECT_EQ(d::bin_for_frequency(1e3, fs, 0), 0u);
  EXPECT_EQ(d::bin_for_frequency(1e3, 0.0, n), 0u);
  EXPECT_EQ(d::bin_for_frequency(1e3, -1.0, n), 0u);
}
