// Tests: calib::HealthMonitor — per-node health scores from fault history
// plus consensus divergence against the fleet's per-band medians.
//
// Locks the contracts DESIGN.md §15 documents:
//   * separation guarantee: on a chaos run every faulted node scores
//     strictly below every clean node (the default weights make clean-node
//     penalties top out at 15 while any fault costs at least 20);
//   * golden health JSON schema (v1) — exact key sets;
//   * clean-run annotate() is a byte-for-byte no-op on the reports, which
//     preserves the fleet's bitwise parallel==serial invariant.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "calib/fleet.hpp"
#include "calib/health.hpp"
#include "json_reader.hpp"
#include "obs/metrics.hpp"
#include "scenario/testbed.hpp"
#include "sdr/fault.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace sdr = speccal::sdr;
namespace obs = speccal::obs;
namespace tj = speccal::testjson;

namespace {

constexpr std::uint64_t kSeed = 77;

cal::PipelineConfig chaos_config() {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  cfg.retry.max_attempts = 4;
  cfg.retry.quarantine = true;
  return cfg;
}

std::vector<cal::FleetJob> fleet_jobs(const cal::WorldModel& world,
                                      std::size_t count,
                                      const sdr::FaultProfile& profile) {
  std::vector<cal::FleetJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto site = static_cast<sc::Site>(i % 3);
    cal::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.claims_outdoor = site == sc::Site::kRooftop;
    job.claims.claims_omnidirectional = false;
    job.make_device = [&world, &profile, site, i]() {
      return profile.wrap(sc::make_owned_node(site, world, kSeed), i,
                          "node-" + std::to_string(i));
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// One calibrated 20-node registry, with or without the flaky20 chaos
/// profile, shared across the tests in this file.
cal::RunConfig chaos_run(const sdr::FaultProfile& profile) {
  cal::RunConfig run;
  run.pipeline = chaos_config();
  run.retry = run.pipeline.retry;
  if (profile.retry_max_attempts > 0)
    run.retry.max_attempts = profile.retry_max_attempts;
  if (profile.initial_backoff_s > 0.0)
    run.retry.initial_backoff_s = profile.initial_backoff_s;
  run.executor.threads = 2;
  return run;
}

cal::NodeRegistry& registry_for(bool chaos) {
  static cal::NodeRegistry clean_registry;
  static cal::NodeRegistry chaos_registry;
  static bool ran = false;
  if (!ran) {
    ran = true;
    const auto world = sc::make_world(kSeed);
    const auto profile = sdr::make_fault_profile("flaky20");
    const sdr::FaultProfile no_faults;
    for (const bool use_faults : {false, true}) {
      cal::FleetCalibrator calibrator(world, chaos_run(profile));
      const auto summary = calibrator.run(
          fleet_jobs(world, 20, use_faults ? profile : no_faults),
          use_faults ? chaos_registry : clean_registry);
      EXPECT_EQ(summary.failed, 0u);
    }
  }
  return chaos ? chaos_registry : clean_registry;
}

std::string report_json(const cal::CalibrationReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

}  // namespace

// --- config validation ------------------------------------------------------

TEST(HealthConfig, ValidateNamesTheOffendingField) {
  cal::HealthConfig cfg;
  EXPECT_NO_THROW(cfg.validate());

  cfg.retry_penalty = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.divergence_full_scale_db = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_band_population = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Weight layouts that break the separation guarantee are rejected: the
  // clean-node penalty ceiling must stay under the smallest fault penalty.
  cfg = {};
  cfg.crc_penalty_max = 15.0;
  cfg.divergence_penalty_max = 5.0;  // 15 + 5 >= retry_penalty (20)
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(cal::HealthMonitor bad(cfg), std::invalid_argument);
}

// --- scoring on the flaky20 chaos fleet -------------------------------------

TEST(HealthMonitor, Flaky20FaultedNodesScoreStrictlyBelowEveryCleanNode) {
  const cal::HealthMonitor monitor;
  const cal::HealthReport health = monitor.evaluate(registry_for(true));
  ASSERT_EQ(health.nodes.size(), 20u);

  // flaky20 scripts nodes 2, 7, 12 as transient (recover on retry) and
  // node 5 as dead (every capture throws -> quarantined stage).
  const std::set<std::string> faulted{"node-2", "node-5", "node-7", "node-12"};
  double worst_clean = 101.0, best_faulted = -1.0;
  for (const auto& n : health.nodes) {
    if (faulted.count(n.node_id)) {
      best_faulted = std::max(best_faulted, n.score);
      EXPECT_TRUE(n.unhealthy) << n.node_id;
      EXPECT_FALSE(n.aborted);
    } else {
      worst_clean = std::min(worst_clean, n.score);
      EXPECT_TRUE(n.recovered_stages == 0 && n.quarantined_stages == 0)
          << n.node_id;
      EXPECT_FALSE(n.unhealthy) << n.node_id;
    }
  }
  EXPECT_LT(best_faulted, worst_clean);  // the separation guarantee
  EXPECT_LE(best_faulted, 80.0);
  EXPECT_GE(worst_clean, 85.0);
  EXPECT_EQ(health.unhealthy_count, faulted.size());

  // Worst-first ordering with the quarantined node at the very top, and
  // node-id tiebreaks keeping equal scores deterministic.
  EXPECT_EQ(health.nodes.front().node_id, "node-5");
  EXPECT_GE(health.nodes.front().quarantined_stages, 1);
  for (std::size_t k = 1; k < health.nodes.size(); ++k) {
    const auto& prev = health.nodes[k - 1];
    const auto& cur = health.nodes[k];
    EXPECT_TRUE(prev.score < cur.score ||
                (prev.score == cur.score && prev.node_id < cur.node_id));
  }

  // find() resolves ids and misses return null.
  ASSERT_NE(health.find("node-5"), nullptr);
  EXPECT_EQ(health.find("node-5")->node_id, "node-5");
  EXPECT_EQ(health.find("nope"), nullptr);
}

TEST(HealthMonitor, CleanFleetScoresHighAndFlagsNothing) {
  const cal::HealthMonitor monitor;
  const cal::HealthReport health = monitor.evaluate(registry_for(false));
  ASSERT_EQ(health.nodes.size(), 20u);
  EXPECT_EQ(health.unhealthy_count, 0u);
  for (const auto& n : health.nodes) {
    EXPECT_GE(n.score, 85.0) << n.node_id;
    EXPECT_FALSE(n.unhealthy);
    EXPECT_DOUBLE_EQ(n.fault_penalty, 0.0);
  }
}

// --- golden health JSON schema (v1) -----------------------------------------

TEST(HealthMonitor, GoldenHealthJsonSchema) {
  const cal::HealthMonitor monitor;
  const cal::HealthReport health = monitor.evaluate(registry_for(true));
  std::ostringstream os;
  health.write_json(os);
  const auto doc = tj::parse(os.str());

  std::set<std::string> top_keys;
  for (const auto& [k, v] : doc.object()) top_keys.insert(k);
  const std::set<std::string> expected_top{
      "schema_version", "unhealthy_threshold", "unhealthy_count", "nodes"};
  EXPECT_EQ(top_keys, expected_top);  // schema lock: exactly these fields
  EXPECT_EQ(doc.at("schema_version").number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("unhealthy_threshold").number(),
                   monitor.config().unhealthy_threshold);
  EXPECT_EQ(doc.at("unhealthy_count").number(), 4.0);

  const auto& nodes = doc.at("nodes").array();
  ASSERT_EQ(nodes.size(), 20u);
  const std::set<std::string> expected_node{
      "node",           "score",
      "unhealthy",      "aborted",
      "recovered_stages", "quarantined_stages",
      "crc_repair_rate", "divergence_db",
      "penalties"};
  const std::set<std::string> expected_penalties{"fault", "crc", "divergence"};
  double prev_score = -1.0;
  for (const auto& n : nodes) {
    std::set<std::string> keys;
    for (const auto& [k, v] : n.object()) keys.insert(k);
    EXPECT_EQ(keys, expected_node);
    std::set<std::string> pkeys;
    for (const auto& [k, v] : n.at("penalties").object()) pkeys.insert(k);
    EXPECT_EQ(pkeys, expected_penalties);
    EXPECT_GE(n.at("score").number(), prev_score);  // worst-first order
    prev_score = n.at("score").number();
  }
  EXPECT_EQ(nodes.front().at("node").str(), "node-5");
  EXPECT_TRUE(nodes.front().at("unhealthy").boolean());
}

// --- gauge publication ------------------------------------------------------

TEST(HealthMonitor, PublishesPerNodeGauges) {
  const cal::HealthMonitor monitor;
  const cal::HealthReport health = monitor.evaluate(registry_for(true));
  obs::Registry reg;  // isolated registry: exact values, no cross-test noise
  monitor.publish(health, reg);

  for (const auto& n : health.nodes)
    EXPECT_DOUBLE_EQ(
        reg.gauge("speccal_node_health", {{"node", n.node_id}}).value(),
        n.score)
        << n.node_id;
  EXPECT_DOUBLE_EQ(reg.gauge("speccal_health_unhealthy_nodes").value(), 4.0);
  EXPECT_EQ(reg.size(), health.nodes.size() + 1);
}

// --- annotate: flagged nodes gain a finding, clean runs stay bitwise --------

TEST(HealthMonitor, AnnotateTouchesOnlyUnhealthyNodes) {
  // Fresh registries (the shared ones must stay unannotated for the other
  // tests): one clean, one chaos, built the same way as registry_for().
  const auto world = sc::make_world(kSeed);
  const auto profile = sdr::make_fault_profile("flaky20");
  const sdr::FaultProfile no_faults;
  const cal::RunConfig run = chaos_run(profile);

  cal::NodeRegistry clean;
  {
    cal::FleetCalibrator calibrator(world, run);
    (void)calibrator.run(fleet_jobs(world, 20, no_faults), clean);
  }
  const cal::HealthMonitor monitor;

  // Clean fleet: nothing is flagged, so annotate must not change a byte of
  // any report — the bitwise parallel==serial invariant survives health
  // monitoring being switched on.
  std::vector<std::string> before;
  clean.for_each_report([&](const cal::CalibrationReport& r) {
    before.push_back(report_json(r));
  });
  monitor.annotate(clean, monitor.evaluate(clean));
  std::size_t i = 0;
  clean.for_each_report([&](const cal::CalibrationReport& r) {
    EXPECT_EQ(report_json(r), before[i++]) << r.claims.node_id;
  });

  // Chaos fleet: exactly the unhealthy nodes gain one kWarning finding.
  cal::NodeRegistry chaos;
  {
    cal::FleetCalibrator calibrator(world, run);
    (void)calibrator.run(fleet_jobs(world, 20, profile), chaos);
  }
  const cal::HealthReport health = monitor.evaluate(chaos);
  monitor.annotate(chaos, health);
  chaos.for_each_report([&](const cal::CalibrationReport& r) {
    std::size_t health_findings = 0;
    for (const auto& f : r.trust.findings)
      if (f.severity == cal::Severity::kWarning &&
          f.description.find("health score") != std::string::npos)
        ++health_findings;
    const auto* h = health.find(r.claims.node_id);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(health_findings, h->unhealthy ? 1u : 0u) << r.claims.node_id;
  });
}
