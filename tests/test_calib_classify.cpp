// Tests: installation classification from fused evidence (§3.2 deduction).
#include <gtest/gtest.h>

#include "calib/classify.hpp"

namespace cal = speccal::calib;
namespace c = speccal::cellular;
namespace g = speccal::geo;

namespace {

cal::FovEstimate fov_with(double open_fraction, g::SectorSet sectors = {}) {
  cal::FovEstimate est;
  est.open_fraction_deg = open_fraction;
  est.open_sectors = std::move(sectors);
  est.usable_observations = 40;
  return est;
}

cal::FrequencyResponseReport freq_with(double low_atten, std::size_t low_rx,
                                       double mid_atten, std::size_t mid_rx,
                                       double slope) {
  cal::FrequencyResponseReport report;
  cal::BandQuality low;
  low.band_class = c::SpectrumClass::kLowBand;
  low.sources_total = 3;
  low.sources_received = low_rx;
  low.mean_attenuation_db = low_atten;
  low.usable = low_rx > 0 && low_atten < 20.0;
  cal::BandQuality mid;
  mid.band_class = c::SpectrumClass::kMidBand;
  mid.sources_total = 4;
  mid.sources_received = mid_rx;
  mid.mean_attenuation_db = mid_atten;
  mid.usable = mid_rx > 0 && mid_atten < 20.0;
  report.bands = {low, mid};
  report.attenuation_slope_db_per_decade = slope;
  report.mean_attenuation_db = (low_atten + mid_atten) / 2.0;
  return report;
}

}  // namespace

TEST(Classify, RooftopShapeIsOutdoor) {
  const auto cls = cal::classify_installation(
      fov_with(0.9, g::SectorSet({{0.0, 0.0}})), freq_with(1.0, 3, 1.0, 4, 0.0));
  EXPECT_EQ(cls.type, cal::InstallationType::kOutdoorOpen);
  EXPECT_FALSE(cls.indoor());
  EXPECT_GT(cls.confidence, 0.4);
  EXPECT_FALSE(cls.rationale.empty());
}

TEST(Classify, ScreenedRooftopIsOutdoorPartial) {
  const auto cls = cal::classify_installation(
      fov_with(0.4, g::SectorSet({{235.0, 335.0}})), freq_with(2.0, 3, 1.0, 4, -2.0));
  EXPECT_EQ(cls.type, cal::InstallationType::kOutdoorPartial);
  EXPECT_FALSE(cls.indoor());
}

TEST(Classify, WindowShape) {
  // Narrow FoV, mid band attenuated but alive, rising slope.
  const auto cls = cal::classify_installation(
      fov_with(0.11, g::SectorSet({{250.0, 290.0}})), freq_with(8.0, 3, 22.0, 3, 15.0));
  EXPECT_EQ(cls.type, cal::InstallationType::kIndoorWindow);
  EXPECT_TRUE(cls.indoor());
}

TEST(Classify, DeepIndoorShape) {
  // No FoV, mid band dead, steep slope.
  const auto cls = cal::classify_installation(fov_with(0.0),
                                              freq_with(18.0, 2, 0.0, 0, 30.0));
  EXPECT_EQ(cls.type, cal::InstallationType::kIndoorDeep);
  EXPECT_TRUE(cls.indoor());
  EXPECT_GT(cls.confidence, 0.3);
}

TEST(Classify, RationaleMentionsKeyEvidence) {
  const auto cls = cal::classify_installation(fov_with(0.0),
                                              freq_with(18.0, 2, 0.0, 0, 30.0));
  bool mentions_fov = false, mentions_midband = false;
  for (const auto& reason : cls.rationale) {
    mentions_fov |= reason.find("field of view") != std::string::npos;
    mentions_midband |= reason.find("mid-band") != std::string::npos;
  }
  EXPECT_TRUE(mentions_fov);
  EXPECT_TRUE(mentions_midband);
}

TEST(Classify, NamesAreHumanReadable) {
  EXPECT_EQ(cal::to_string(cal::InstallationType::kOutdoorOpen), "outdoor (open sky)");
  EXPECT_EQ(cal::to_string(cal::InstallationType::kIndoorWindow), "indoor (behind window)");
  EXPECT_FALSE(cal::to_string(cal::InstallationType::kOutdoorPartial).empty());
  EXPECT_FALSE(cal::to_string(cal::InstallationType::kIndoorDeep).empty());
}

TEST(Classify, ConfidenceBounded) {
  for (double frac : {0.0, 0.11, 0.4, 0.9}) {
    const auto cls =
        cal::classify_installation(fov_with(frac), freq_with(10.0, 2, 15.0, 2, 5.0));
    EXPECT_GE(cls.confidence, 0.0);
    EXPECT_LE(cls.confidence, 1.0);
  }
}
