// Unit tests: overlap-save FFT convolver equivalence, streaming semantics,
// the direct-vs-FFT crossover heuristic, and the allocation-free FIR path.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "dsp/convolver.hpp"
#include "dsp/fir.hpp"
#include "util/rng.hpp"

namespace d = speccal::dsp;
using speccal::util::Rng;

namespace {

std::vector<std::complex<float>> noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<float>> out(n);
  for (auto& v : out)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  return out;
}

float max_abs_error(std::span<const std::complex<float>> a,
                    std::span<const std::complex<float>> b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace

// ----------------------------------------------------------- equivalence ----

TEST(FftConvolver, MatchesFirFilterWithinDocumentedTolerance) {
  // The contract from convolver.hpp: unit-RMS input, per-sample error
  // within kConvolverEquivalenceTolerance of the double-accumulation
  // direct convolution.
  for (const std::size_t taps_count : {127u, 33u}) {
    const auto taps = d::design_bandpass(8e6, -2.0e6, 2.4e6, taps_count);
    const auto in = noise(8192, 7);

    d::FirFilter direct(taps);
    std::vector<std::complex<float>> want(in.size());
    direct.filter_into(in, want);

    d::FftConvolver conv(taps);
    const auto got = conv.filter(in);

    EXPECT_LE(max_abs_error(want, got), d::kConvolverEquivalenceTolerance)
        << "taps=" << taps_count;
  }
}

TEST(FftConvolver, StreamingMatchesOneShot) {
  const auto taps = d::design_bandpass(8e6, -1.5e6, 1.5e6, 127);
  const auto in = noise(4096, 11);

  d::FftConvolver one_shot(taps);
  const auto want = one_shot.filter(in);

  // Feed the same stream in awkward chunk sizes, including chunks smaller
  // than the filter history.
  d::FftConvolver streamed(taps);
  std::vector<std::complex<float>> got(in.size());
  const std::size_t chunks[] = {1, 100, 63, 1000, 17, 2915};
  std::size_t pos = 0;
  for (std::size_t c : chunks) {
    streamed.filter_into(std::span(in).subspan(pos, c),
                         std::span(got).subspan(pos, c));
    pos += c;
  }
  ASSERT_EQ(pos, in.size());

  // Identical algorithm either way, but block boundaries move, so compare
  // within the equivalence tolerance rather than bitwise.
  EXPECT_LE(max_abs_error(want, got), d::kConvolverEquivalenceTolerance);
}

TEST(FftConvolver, ResetClearsHistory) {
  const auto taps = d::design_bandpass(8e6, -1.0e6, 1.0e6, 63);
  const auto in = noise(1024, 13);

  d::FftConvolver conv(taps);
  const auto first = conv.filter(in);
  conv.reset();
  const auto again = conv.filter(in);
  EXPECT_EQ(max_abs_error(first, again), 0.0f);  // bitwise: same blocks
}

TEST(FftConvolver, SteadyStateScratchStopsGrowing) {
  const auto taps = d::design_bandpass(8e6, -2.0e6, 2.0e6, 127);
  const auto in = noise(16384, 17);
  std::vector<std::complex<float>> out(in.size());

  d::FftConvolver conv(taps);
  conv.filter_into(in, out);
  const std::size_t after_first = conv.scratch_capacity_bytes();
  EXPECT_GT(after_first, 0u);
  for (int i = 0; i < 5; ++i) conv.filter_into(in, out);
  EXPECT_EQ(conv.scratch_capacity_bytes(), after_first);
}

TEST(FftConvolver, ValidatesArguments) {
  const auto taps = d::design_bandpass(8e6, -1.0e6, 1.0e6, 63);
  EXPECT_THROW(d::FftConvolver(std::span<const std::complex<double>>{}),
               std::invalid_argument);
  EXPECT_THROW(d::FftConvolver(taps, 100), std::invalid_argument);  // not 2^k
  EXPECT_THROW(d::FftConvolver(taps, 32), std::invalid_argument);   // < taps
  d::FftConvolver conv(taps);
  const auto in = noise(64, 19);
  std::vector<std::complex<float>> short_out(32);
  EXPECT_THROW(conv.filter_into(in, short_out), std::invalid_argument);
}

// -------------------------------------------------------------- crossover ----

TEST(Crossover, LongFiltersOnCaptureBlocksPreferFft) {
  EXPECT_TRUE(d::prefer_fft_convolution(127, 65536));
  EXPECT_TRUE(d::prefer_fft_convolution(127, 4096));
  EXPECT_TRUE(d::prefer_fft_convolution(255, 16384));
}

TEST(Crossover, ShortFiltersAndTinyBlocksStayDirect) {
  EXPECT_FALSE(d::prefer_fft_convolution(7, 65536));
  EXPECT_FALSE(d::prefer_fft_convolution(3, 64));
  // Block shorter than the filter: overlap-save cannot amortize.
  EXPECT_FALSE(d::prefer_fft_convolution(127, 64));
}

// ------------------------------------------------------- FirFilter into ----

TEST(FirFilter, FilterIntoMatchesProcessBitwise) {
  const auto taps = d::design_bandpass(8e6, -2.0e6, 2.0e6, 63);
  const auto in = noise(2048, 23);

  d::FirFilter a(taps);
  std::vector<std::complex<float>> via_process;
  a.process(in, via_process);

  d::FirFilter b(taps);
  std::vector<std::complex<float>> via_into(in.size());
  b.filter_into(in, via_into);

  ASSERT_EQ(via_process.size(), via_into.size());
  for (std::size_t i = 0; i < via_into.size(); ++i)
    EXPECT_EQ(via_process[i], via_into[i]) << "sample " << i;
}

TEST(FirFilter, FilterIntoCarriesStateAcrossCalls) {
  const auto taps = d::design_bandpass(8e6, -2.0e6, 2.0e6, 63);
  const auto in = noise(512, 29);

  d::FirFilter whole(taps);
  std::vector<std::complex<float>> want(in.size());
  whole.filter_into(in, want);

  d::FirFilter split(taps);
  std::vector<std::complex<float>> got(in.size());
  split.filter_into(std::span(in).first(100), std::span(got).first(100));
  split.filter_into(std::span(in).subspan(100), std::span(got).subspan(100));
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(want[i], got[i]);
}
