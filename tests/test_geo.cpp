// Unit tests: WGS-84 geodesy and azimuth sectors.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/sector.hpp"
#include "geo/wgs84.hpp"
#include "util/units.hpp"

namespace g = speccal::geo;

// --------------------------------------------------------------- geodesy ----

TEST(Wgs84, EcefKnownPoint) {
  // Equator / prime meridian at sea level -> (a, 0, 0).
  const g::Ecef p = g::to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(p.x, g::kSemiMajorAxisM, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  EXPECT_NEAR(p.z, 0.0, 1e-6);
  // North pole -> (0, 0, b).
  const g::Ecef n = g::to_ecef({90.0, 0.0, 0.0});
  EXPECT_NEAR(n.x, 0.0, 1e-3);
  EXPECT_NEAR(n.z, g::kSemiMinorAxisM, 1e-3);
}

class EcefRoundTrip : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EcefRoundTrip, Inverts) {
  const auto [lat, lon, alt] = GetParam();
  const g::Geodetic in{lat, lon, alt};
  const g::Geodetic out = g::to_geodetic(g::to_ecef(in));
  EXPECT_NEAR(out.lat_deg, lat, 1e-8);
  EXPECT_NEAR(out.lon_deg, lon, 1e-8);
  EXPECT_NEAR(out.alt_m, alt, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EcefRoundTrip,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(37.87, -122.27, 20.0),
                      std::make_tuple(-33.9, 151.2, 100.0),
                      std::make_tuple(60.0, 10.0, 10000.0),
                      std::make_tuple(-80.0, -170.0, 5000.0),
                      std::make_tuple(45.0, 179.9, 0.0),
                      std::make_tuple(5.0, 0.1, 12000.0)));

TEST(Wgs84, EnuRoundTrip) {
  const g::Geodetic ref{37.87, -122.27, 16.0};
  const g::Enu local{1234.0, -567.0, 890.0};
  const g::Geodetic p = g::from_enu(ref, local);
  const g::Enu back = g::to_enu(ref, p);
  EXPECT_NEAR(back.east, local.east, 1e-3);
  EXPECT_NEAR(back.north, local.north, 1e-3);
  EXPECT_NEAR(back.up, local.up, 1e-3);
}

TEST(Wgs84, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const double d = g::haversine_m({37.0, -122.0, 0}, {38.0, -122.0, 0});
  EXPECT_NEAR(d, 111.2e3, 0.5e3);
}

TEST(Wgs84, SlantRangeIncludesAltitude) {
  const g::Geodetic ground{37.87, -122.27, 0.0};
  g::Geodetic above = ground;
  above.alt_m = 10000.0;
  EXPECT_NEAR(g::slant_range_m(ground, above), 10000.0, 1.0);
  // Pythagorean mix of 3-4-5 (30 km ground, 40 km up is unphysical for
  // aircraft but exercises the math).
  const g::Geodetic east = g::destination(ground, 90.0, 30000.0);
  g::Geodetic east_up = east;
  east_up.alt_m = 40000.0;
  EXPECT_NEAR(g::slant_range_m(ground, east_up), 50000.0, 100.0);
}

TEST(Wgs84, BearingCardinalDirections) {
  const g::Geodetic origin{37.0, -122.0, 0.0};
  for (double want : {0.0, 90.0, 180.0, 270.0}) {
    const double got = g::bearing_deg(origin, g::destination(origin, want, 10e3));
    EXPECT_LT(speccal::util::angular_distance_deg(got, want), 0.1) << want;
  }
}

class DestinationRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DestinationRoundTrip, DistanceAndBearingRecovered) {
  const auto [bearing, distance] = GetParam();
  const g::Geodetic origin{37.87, -122.27, 0.0};
  const g::Geodetic dest = g::destination(origin, bearing, distance);
  EXPECT_NEAR(g::haversine_m(origin, dest), distance, distance * 1e-3 + 0.5);
  EXPECT_NEAR(g::bearing_deg(origin, dest), bearing, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DestinationRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 45.0, 137.0, 250.0, 359.0),
                       ::testing::Values(1e3, 25e3, 100e3)));

TEST(Wgs84, ElevationAngle) {
  const g::Geodetic obs{37.87, -122.27, 0.0};
  g::Geodetic target = g::destination(obs, 90.0, 10000.0);
  target.alt_m = 10000.0;
  EXPECT_NEAR(g::elevation_deg(obs, target), 45.0, 0.5);
  target.alt_m = 0.0;
  EXPECT_NEAR(g::elevation_deg(obs, target), 0.0, 0.5);
}

TEST(Wgs84, RadioHorizon) {
  // ~412 km for a 10 km altitude transmitter against a ground receiver.
  EXPECT_NEAR(g::radio_horizon_m(1.0, 10000.0) / 1e3, 416.5, 5.0);
  EXPECT_DOUBLE_EQ(g::radio_horizon_m(0.0, 0.0), 0.0);
  EXPECT_GT(g::radio_horizon_m(20.0, 10000.0), g::radio_horizon_m(1.0, 10000.0));
}

// --------------------------------------------------------------- sectors ----

TEST(Sector, WidthAndContains) {
  const g::Sector s{30.0, 90.0};
  EXPECT_DOUBLE_EQ(s.width_deg(), 60.0);
  EXPECT_TRUE(s.contains(30.0));
  EXPECT_TRUE(s.contains(89.9));
  EXPECT_FALSE(s.contains(90.0));  // half-open
  EXPECT_FALSE(s.contains(200.0));
  EXPECT_DOUBLE_EQ(s.center_deg(), 60.0);
}

TEST(Sector, WrapsThroughNorth) {
  const g::Sector s{330.0, 30.0};
  EXPECT_DOUBLE_EQ(s.width_deg(), 60.0);
  EXPECT_TRUE(s.contains(350.0));
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(29.0));
  EXPECT_FALSE(s.contains(30.0));
  EXPECT_FALSE(s.contains(180.0));
  EXPECT_DOUBLE_EQ(s.center_deg(), 0.0);
}

TEST(Sector, FullCircle) {
  const g::Sector s{0.0, 0.0};
  EXPECT_DOUBLE_EQ(s.width_deg(), 360.0);
  EXPECT_TRUE(s.contains(123.4));
}

TEST(SectorSet, CoverageCountsOverlapsOnce) {
  g::SectorSet set({{0.0, 90.0}, {45.0, 135.0}});
  EXPECT_NEAR(set.coverage_deg(), 135.0, 1.0);
  EXPECT_TRUE(set.contains(100.0));
  EXPECT_FALSE(set.contains(200.0));
}

TEST(SectorSet, EmptyAndToString) {
  g::SectorSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.coverage_deg(), 0.0);
  EXPECT_EQ(empty.to_string(), "(none)");
  g::SectorSet one({{10.0, 20.0}});
  EXPECT_EQ(one.to_string(), "[10, 20)");
}

TEST(SectorSet, SimilarityProperties) {
  const g::SectorSet a({{0.0, 90.0}});
  const g::SectorSet b({{0.0, 90.0}});
  const g::SectorSet c({{90.0, 180.0}});
  const g::SectorSet half({{0.0, 45.0}});
  EXPECT_DOUBLE_EQ(g::coverage_similarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(g::coverage_similarity(a, c), 0.0);
  EXPECT_NEAR(g::coverage_similarity(a, half), 0.5, 0.01);
  // Both empty: identical by convention.
  EXPECT_DOUBLE_EQ(g::coverage_similarity(g::SectorSet{}, g::SectorSet{}), 1.0);
}
