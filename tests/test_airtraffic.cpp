// Unit tests: aircraft kinematics, sky simulator, ground truth, ADS-B source.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <span>

#include "adsb/crc.hpp"
#include "adsb/frame.hpp"
#include "adsb/ppm.hpp"
#include "airtraffic/adsb_source.hpp"
#include "airtraffic/groundtruth.hpp"
#include "airtraffic/sky.hpp"
#include "sdr/antenna.hpp"

namespace at = speccal::airtraffic;
namespace g = speccal::geo;
namespace a = speccal::adsb;
namespace d = speccal::dsp;

namespace {
at::SkyConfig small_sky_config() {
  at::SkyConfig cfg;
  cfg.center = {37.87, -122.27, 0.0};
  cfg.radius_m = 100e3;
  cfg.aircraft_count = 12;
  return cfg;
}
}  // namespace

TEST(Aircraft, StraightLineMotion) {
  at::AircraftSpec spec;
  spec.start = {37.87, -122.27, 10000.0};
  spec.track_deg = 90.0;
  spec.ground_speed_kt = 450.0;
  const auto at60 = at::aircraft_at(spec, 60.0);
  // 450 kt = 231.5 m/s -> ~13.9 km east in a minute.
  EXPECT_NEAR(g::haversine_m(spec.start, at60.position), 450.0 * 0.514444 * 60.0, 50.0);
  EXPECT_NEAR(g::bearing_deg(spec.start, at60.position), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(at60.position.alt_m, 10000.0);
}

TEST(Aircraft, VerticalRateChangesAltitude) {
  at::AircraftSpec spec;
  spec.start = {37.87, -122.27, 5000.0};
  spec.ground_speed_kt = 300.0;
  spec.vertical_rate_fpm = 1200.0;  // 1200 ft/min = 6.096 m/s
  const auto at100 = at::aircraft_at(spec, 100.0);
  EXPECT_NEAR(at100.position.alt_m, 5000.0 + 1200.0 * 0.3048 / 60.0 * 100.0, 0.5);
  // Altitude never goes below ground.
  spec.vertical_rate_fpm = -10000.0;
  EXPECT_GE(at::aircraft_at(spec, 600.0).position.alt_m, 0.0);
}

TEST(Sky, DeterministicFromSeed) {
  const at::SkySimulator sky1(small_sky_config(), 99);
  const at::SkySimulator sky2(small_sky_config(), 99);
  const at::SkySimulator sky3(small_sky_config(), 100);
  ASSERT_EQ(sky1.fleet().size(), sky2.fleet().size());
  for (std::size_t i = 0; i < sky1.fleet().size(); ++i) {
    EXPECT_EQ(sky1.fleet()[i].icao, sky2.fleet()[i].icao);
    EXPECT_DOUBLE_EQ(sky1.fleet()[i].start.lat_deg, sky2.fleet()[i].start.lat_deg);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < sky1.fleet().size(); ++i)
    any_diff |= sky1.fleet()[i].icao != sky3.fleet()[i].icao;
  EXPECT_TRUE(any_diff);
}

TEST(Sky, FleetRespectsConfigBounds) {
  const auto cfg = small_sky_config();
  const at::SkySimulator sky(cfg, 7);
  EXPECT_EQ(sky.fleet().size(), cfg.aircraft_count);
  std::set<std::uint32_t> icaos;
  for (const auto& spec : sky.fleet()) {
    EXPECT_LE(g::haversine_m(cfg.center, spec.start), cfg.radius_m + 1.0);
    EXPECT_GE(spec.ground_speed_kt, cfg.min_speed_kt);
    EXPECT_LE(spec.ground_speed_kt, cfg.max_speed_kt);
    EXPECT_GE(spec.tx_power_dbm, 48.0);  // 75 W floor
    EXPECT_LE(spec.tx_power_dbm, 57.5);  // 500 W ceiling
    icaos.insert(spec.icao);
  }
  EXPECT_EQ(icaos.size(), cfg.aircraft_count);  // unique addresses
}

TEST(Sky, SquitterRatesMatchDo260) {
  const at::SkySimulator sky(small_sky_config(), 11);
  const auto events = sky.events_between(0.0, 10.0);
  // Per aircraft: 2 Hz position + 2 Hz velocity + 0.2 Hz ident + 1 Hz
  // DF11 acquisition squitter = 5.2 msg/s.
  const double expected = 12 * 10.0 * 5.2;
  EXPECT_NEAR(static_cast<double>(events.size()), expected, expected * 0.1);
  // Sorted by time.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time_s, events[i].time_s);
  // All frames carry valid CRC (short frames over their 7 bytes).
  for (const auto& ev : events)
    EXPECT_TRUE(a::check_crc(
        std::span<const std::uint8_t>(ev.frame.data(), ev.bit_count / 8)));
}

TEST(Sky, EventWindowsPartitionCleanly) {
  const at::SkySimulator sky(small_sky_config(), 13);
  const auto whole = sky.events_between(0.0, 4.0);
  const auto first = sky.events_between(0.0, 2.0);
  const auto second = sky.events_between(2.0, 4.0);
  EXPECT_EQ(whole.size(), first.size() + second.size());
  for (const auto& ev : first) EXPECT_LT(ev.time_s, 2.0);
  for (const auto& ev : second) EXPECT_GE(ev.time_s, 2.0);
}

TEST(Sky, PositionFramesAlternateParity) {
  at::AircraftSpec spec;
  spec.icao = 0x123456;
  spec.callsign = "TEST";
  spec.start = {37.9, -122.3, 9000.0};
  spec.ground_speed_kt = 400.0;
  const at::SkySimulator sky({37.87, -122.27, 0.0}, {spec});
  int even = 0, odd = 0;
  for (const auto& ev : sky.events_between(0.0, 10.0)) {
    if (ev.bit_count != 112) continue;  // skip DF11 acquisition squitters
    const auto frame = a::parse_frame(ev.frame);
    ASSERT_TRUE(frame.has_value());
    if (!frame->has_position()) continue;
    const auto& pos = std::get<a::PositionPayload>(frame->payload);
    (pos.cpr.odd ? odd : even)++;
  }
  EXPECT_NEAR(even, odd, 2);
  EXPECT_GT(even, 5);
}

TEST(GroundTruth, LatencyShiftsReportedPositions) {
  at::AircraftSpec spec;
  spec.icao = 0xAAAAAA;
  spec.start = {37.87, -122.27, 10000.0};
  spec.track_deg = 0.0;
  spec.ground_speed_kt = 400.0;
  const at::SkySimulator sky({37.87, -122.27, 0.0}, {spec});

  const at::GroundTruthService instant(sky, 0.0);
  const at::GroundTruthService delayed(sky, 10.0);
  const auto now = instant.query({37.87, -122.27, 0.0}, 100e3, 60.0);
  const auto late = delayed.query({37.87, -122.27, 0.0}, 100e3, 60.0);
  ASSERT_EQ(now.size(), 1u);
  ASSERT_EQ(late.size(), 1u);
  // 10 s at 400 kt is ~2.06 km of staleness — the paper's 2.5 km bound.
  const double gap = g::haversine_m(now[0].position, late[0].position);
  EXPECT_NEAR(gap, 400.0 * 0.514444 * 10.0, 30.0);
  EXPECT_DOUBLE_EQ(late[0].report_age_s, 10.0);
}

TEST(GroundTruth, RadiusFilters) {
  at::AircraftSpec near_ac;
  near_ac.icao = 1;
  near_ac.start = g::destination({37.87, -122.27, 0.0}, 90.0, 50e3);
  near_ac.start.alt_m = 9000.0;
  at::AircraftSpec far_ac;
  far_ac.icao = 2;
  far_ac.start = g::destination({37.87, -122.27, 0.0}, 90.0, 150e3);
  far_ac.start.alt_m = 9000.0;
  const at::SkySimulator sky({37.87, -122.27, 0.0}, {near_ac, far_ac});
  const at::GroundTruthService gt(sky, 0.0);
  const auto rec = gt.query({37.87, -122.27, 0.0}, 100e3, 0.0);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].icao, 1u);
}

TEST(AdsbSource, RendersFramesThatDecode) {
  at::AircraftSpec spec;
  spec.icao = 0xBBCCDD;
  spec.callsign = "SRC1";
  spec.start = g::destination({37.87, -122.27, 0.0}, 45.0, 30e3);
  spec.start.alt_m = 10000.0;
  spec.ground_speed_kt = 400.0;
  spec.tx_power_dbm = 54.0;
  // Stagger the three squitter streams as real transponders do; with all
  // phases zero the position/velocity/ident frames would collide on-air.
  spec.position_phase_s = 0.05;
  spec.velocity_phase_s = 0.21;
  spec.ident_phase_s = 0.41;
  auto sky = std::make_shared<at::SkySimulator>(g::Geodetic{37.87, -122.27, 0.0},
                                                std::vector<at::AircraftSpec>{spec});
  at::AdsbSignalSource source(sky);

  const auto antenna = speccal::sdr::AntennaModel::isotropic();
  speccal::sdr::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  rx.antenna = &antenna;

  speccal::sdr::CaptureContext ctx;
  ctx.center_freq_hz = a::kAdsbFreqHz;
  ctx.sample_rate_hz = a::kPpmSampleRateHz;
  ctx.start_time_s = 0.0;
  ctx.sample_count = 2'000'000;  // one second
  ctx.rx = &rx;

  d::Buffer buf(ctx.sample_count, {0.0f, 0.0f});
  source.render(ctx, buf);
  const auto dets = a::PpmDemodulator{}.process(buf);
  // ~5.2 messages expected in one second; all from our aircraft.
  EXPECT_GE(dets.size(), 4u);
  bool saw_short = false;
  for (const auto& det : dets) {
    if (det.long_frame()) {
      const auto frame = a::parse_frame(det.frame);
      ASSERT_TRUE(frame.has_value());
      EXPECT_EQ(frame->icao, 0xBBCCDDu);
    } else {
      const auto all_call = a::parse_all_call(det.short_frame());
      ASSERT_TRUE(all_call.has_value());
      EXPECT_EQ(all_call->icao, 0xBBCCDDu);
      saw_short = true;
    }
  }
  EXPECT_TRUE(saw_short);  // the 1 Hz DF11 stream is on the air too
}

TEST(AdsbSource, SilentWhenTunedElsewhere) {
  auto sky = std::make_shared<at::SkySimulator>(small_sky_config(), 17);
  at::AdsbSignalSource source(sky);
  speccal::sdr::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  speccal::sdr::CaptureContext ctx;
  ctx.center_freq_hz = 600e6;  // not 1090
  ctx.sample_rate_hz = a::kPpmSampleRateHz;
  ctx.sample_count = 10000;
  ctx.rx = &rx;
  d::Buffer buf(ctx.sample_count, {0.0f, 0.0f});
  source.render(ctx, buf);
  for (const auto& v : buf) EXPECT_EQ(std::norm(v), 0.0f);
}
