// Tests: the parallel fleet calibration engine and the thread-safe
// NodeRegistry. Designed to run clean under ThreadSanitizer (the CI TSan
// job builds exactly this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>

#include "calib/fleet.hpp"
#include "scenario/testbed.hpp"

namespace cal = speccal::calib;
namespace sc = speccal::scenario;
namespace sdr = speccal::sdr;

namespace {

constexpr std::uint64_t kSeed = 2023;

cal::PipelineConfig fast_config() {
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  cfg.survey.duration_s = 10.0;
  return cfg;
}

std::vector<cal::FleetJob> seeded_fleet(const cal::WorldModel& world,
                                        std::size_t count) {
  std::vector<cal::FleetJob> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto site = static_cast<sc::Site>(i % 3);
    cal::FleetJob job;
    job.claims.node_id = "node-" + std::to_string(i);
    job.claims.claims_outdoor = site == sc::Site::kRooftop;
    job.claims.claims_omnidirectional = false;
    job.make_device = [&world, site]() {
      return sc::make_owned_node(site, world, kSeed);
    };
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// A device that refuses every tune request (dead front end / wrong
/// daughterboard) but otherwise behaves; exercises tune-failure isolation
/// through the device-agnostic interface.
class UntunableDevice final : public sdr::Device {
 public:
  [[nodiscard]] sdr::DeviceInfo info() const override {
    sdr::DeviceInfo info = sdr::SimulatedSdr::bladerf_like_info();
    info.driver = "untunable";
    return info;
  }
  [[nodiscard]] speccal::geo::Geodetic position() const override {
    return sc::testbed_origin();
  }
  bool tune(double, double) override { return false; }
  void set_gain_mode(sdr::GainMode) override {}
  void set_gain_db(double gain_db) override { gain_db_ = gain_db; }
  [[nodiscard]] double gain_db() const override { return gain_db_; }
  [[nodiscard]] speccal::dsp::Buffer capture(std::size_t count) override {
    stream_time_s_ += static_cast<double>(count) / 2e6;
    return speccal::dsp::Buffer(count);  // silence
  }
  [[nodiscard]] double stream_time_s() const override { return stream_time_s_; }
  [[nodiscard]] double center_freq_hz() const override { return 100e6; }
  [[nodiscard]] double sample_rate_hz() const override { return 2e6; }

 private:
  double gain_db_ = 0.0;
  double stream_time_s_ = 0.0;
};

}  // namespace

TEST(Fleet, ParallelMatchesSerialBitwise) {
  const auto world = sc::make_world(kSeed);

  auto run_with = [&](unsigned threads) {
    cal::RunConfig run;
    run.pipeline = fast_config();
    run.executor.threads = threads;
    cal::FleetCalibrator calibrator(world, run);
    cal::NodeRegistry registry;
    const auto summary = calibrator.run(seeded_fleet(world, 9), registry);
    EXPECT_EQ(summary.calibrated, 9u);
    EXPECT_EQ(summary.failed, 0u);
    std::vector<double> scores;
    registry.for_each_report([&](const cal::CalibrationReport& r) {
      scores.push_back(r.trust.score);
    });
    return scores;
  };

  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.size(), parallel.size());
  // Bitwise, not approximate: same seeds, same devices, no shared state.
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           serial.size() * sizeof(double)));
}

TEST(Fleet, BrokenNodeIsIsolatedNotFatal) {
  const auto world = sc::make_world(kSeed);

  auto jobs = seeded_fleet(world, 4);
  // Node 4: tunes always refused. The model-level survey throws (no sim
  // control), every tv tune fails — but the batch must complete.
  cal::FleetJob broken;
  broken.claims.node_id = "broken-untunable";
  broken.make_device = [] {
    return std::unique_ptr<sdr::Device>(new UntunableDevice);
  };
  jobs.push_back(std::move(broken));
  // Node 5: factory itself explodes.
  cal::FleetJob doa;
  doa.claims.node_id = "broken-doa";
  doa.make_device = []() -> std::unique_ptr<sdr::Device> {
    throw std::runtime_error("usb enumeration failed");
  };
  jobs.push_back(std::move(doa));

  cal::RunConfig run;
  run.pipeline = fast_config();
  run.executor.threads = 3;
  cal::FleetConfig cfg;
  std::atomic<int> progress_calls{0};
  cfg.on_progress = [&](const cal::FleetProgress&) { ++progress_calls; };
  cal::FleetCalibrator calibrator(world, run, cfg);
  cal::NodeRegistry registry;
  const auto summary = calibrator.run(std::move(jobs), registry);

  EXPECT_EQ(summary.total, 6u);
  EXPECT_EQ(summary.calibrated, 6u);  // every node got a report
  EXPECT_EQ(summary.skipped, 0u);
  EXPECT_EQ(progress_calls.load(), 6);
  EXPECT_EQ(registry.size(), 6u);

  // The healthy nodes are untouched by their broken neighbours.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto* report = registry.find("node-" + std::to_string(i));
    ASSERT_NE(report, nullptr);
    EXPECT_FALSE(report->aborted());
    EXPECT_GT(report->trust.score, 0.0);
  }

  // The factory failure is flagged with zero trust and a violation.
  const auto* doa_report = registry.find("broken-doa");
  ASSERT_NE(doa_report, nullptr);
  EXPECT_TRUE(doa_report->aborted());
  EXPECT_NE(doa_report->abort_reason.find("usb enumeration"), std::string::npos);
  EXPECT_EQ(doa_report->trust.score, 0.0);
  EXPECT_GE(doa_report->trust.violations(), 1u);
  EXPECT_EQ(summary.failed, 2u);

  // The untunable node also aborted (link-budget fidelity needs sim
  // control) — and its abort report still ranks below every healthy node.
  const auto* untunable = registry.find("broken-untunable");
  ASSERT_NE(untunable, nullptr);
  EXPECT_TRUE(untunable->aborted());
  const auto ranking = registry.ranked_by_trust();
  EXPECT_EQ(ranking.size(), 6u);
  EXPECT_GT(registry.find(ranking.front())->trust.score, 0.0);

  // Aborted reports still export valid JSON (abort_reason included).
  std::ostringstream os;
  doa_report->write_json(os);
  EXPECT_NE(os.str().find("\"aborted\":true"), std::string::npos);
  EXPECT_NE(os.str().find("usb enumeration"), std::string::npos);
}

TEST(Fleet, UntunableDeviceCompletesUnderWaveformFidelity) {
  // Waveform fidelity works on any Device; refused tunes must degrade to a
  // completed (not aborted) report that the trust layer tears apart.
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline = fast_config();
  run.pipeline.survey.fidelity = cal::Fidelity::kWaveform;
  run.pipeline.survey.duration_s = 0.25;  // keep the waveform window cheap
  run.executor.threads = 1;

  cal::FleetJob job;
  job.claims.node_id = "untunable-waveform";
  job.claims.claims_outdoor = true;
  job.claims.claims_omnidirectional = true;
  job.make_device = [] {
    return std::unique_ptr<sdr::Device>(new UntunableDevice);
  };

  cal::FleetCalibrator calibrator(world, run);
  cal::NodeRegistry registry;
  std::vector<cal::FleetJob> jobs;
  jobs.push_back(std::move(job));
  const auto summary = calibrator.run(std::move(jobs), registry);

  EXPECT_EQ(summary.calibrated, 1u);
  EXPECT_EQ(summary.failed, 0u);
  const auto* report = registry.find("untunable-waveform");
  ASSERT_NE(report, nullptr);
  EXPECT_FALSE(report->aborted());
  // A deaf receiver hears nothing: no receptions, no usable TV channels,
  // and the claimed capabilities come back as violations.
  EXPECT_EQ(report->survey.received_count(), 0u);
  for (const auto& reading : report->tv_readings) EXPECT_FALSE(reading.tune_ok);
  EXPECT_GE(report->trust.violations(), 1u);
  EXPECT_LT(report->trust.score, 70.0);
}

TEST(Fleet, CancellationSkipsQueuedJobs) {
  const auto world = sc::make_world(kSeed);

  // The progress callback cancels the engine it reports on: a batch that
  // stops itself after two nodes.
  cal::FleetCalibrator* self = nullptr;
  cal::RunConfig run;
  run.pipeline = fast_config();
  run.executor.threads = 1;  // deterministic: exactly two nodes complete
  cal::FleetConfig cfg;
  cfg.on_progress = [&self](const cal::FleetProgress& p) {
    if (p.completed == 2) self->request_cancel();
  };
  cal::FleetCalibrator engine(world, run, cfg);
  self = &engine;
  cal::NodeRegistry registry;
  const auto summary = engine.run(seeded_fleet(world, 6), registry);

  EXPECT_EQ(summary.calibrated, 2u);
  EXPECT_EQ(summary.skipped, 4u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Fleet, StageMetricsAggregateAcrossFleet) {
  const auto world = sc::make_world(kSeed);
  cal::RunConfig run;
  run.pipeline = fast_config();
  run.executor.threads = 2;
  cal::FleetCalibrator calibrator(world, run);
  cal::NodeRegistry registry;
  const auto summary = calibrator.run(seeded_fleet(world, 6), registry);

  ASSERT_FALSE(summary.stage_stats.rows.empty());
  bool saw_survey = false;
  for (const auto& row : summary.stage_stats.rows) {
    EXPECT_EQ(row.nodes, 6u);
    EXPECT_GE(row.p90_ms, row.p50_ms);
    EXPECT_GE(row.max_ms, row.p90_ms);
    if (row.stage == cal::Stage::kSurvey) {
      saw_survey = true;
      EXPECT_GT(row.frames_decoded, 0u);
    }
  }
  EXPECT_TRUE(saw_survey);

  // Per-node metrics surface in the JSON export.
  std::ostringstream os;
  registry.find("node-0")->write_json(os);
  EXPECT_NE(os.str().find("\"stage_metrics\""), std::string::npos);
  EXPECT_NE(os.str().find("\"total_wall_ms\""), std::string::npos);
}

TEST(Fleet, RegistryHammeredFromManyThreads) {
  // Writers record fresh reports while readers rank, query, find and
  // iterate; run under TSan in CI to prove the locking.
  cal::NodeRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kReportsPerWriter = 50;
  std::atomic<bool> stop{false};

  auto make_report = [](int writer, int i) {
    cal::CalibrationReport report;
    report.claims.node_id =
        "w" + std::to_string(writer) + "-" + std::to_string(i % 10);
    report.trust.score = static_cast<double>((writer * 31 + i) % 101);
    return report;
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kReportsPerWriter; ++i)
        registry.record(make_report(w, i));
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::size_t touched = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto ranked = registry.ranked_by_trust();
        for (const auto& id : ranked)
          if (registry.find(id) != nullptr) ++touched;
        (void)registry.usable_for(700e6, std::nullopt);
        registry.for_each_report(
            [&](const cal::CalibrationReport& rep) { touched += rep.aborted(); });
        (void)registry.size();
      }
      EXPECT_GE(touched, 0u);
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(registry.size(), kWriters * 10u);  // ids wrap modulo 10
  const auto ranked = registry.ranked_by_trust();
  EXPECT_EQ(ranked.size(), registry.size());
}
