// Tests: the reconstructed paper testbed.
#include <gtest/gtest.h>

#include "scenario/testbed.hpp"
#include "tv/channels.hpp"

namespace sc = speccal::scenario;
namespace g = speccal::geo;

TEST(Testbed, FiveTowersMatchPaperFigure2) {
  const auto db = sc::make_cell_database();
  ASSERT_EQ(db.cells().size(), 5u);
  // Downlink centres from the paper: 731/1970/2145/2660/2680 MHz.
  std::vector<double> freqs;
  for (const auto& cell : db.cells()) freqs.push_back(cell.dl_freq_hz / 1e6);
  std::sort(freqs.begin(), freqs.end());
  const std::vector<double> want = {731, 1970, 2145, 2660, 2680};
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_DOUBLE_EQ(freqs[i], want[i]);
  // "All of these towers are 500 to 1000 meters from the experiment site."
  const auto origin = sc::testbed_origin();
  for (const auto& cell : db.cells()) {
    const double d = g::haversine_m(origin, cell.position);
    EXPECT_GE(d, 450.0);
    EXPECT_LE(d, 1100.0);
  }
}

TEST(Testbed, TvStationsMatchPaperFigure4) {
  const auto stations = sc::make_tv_stations();
  ASSERT_EQ(stations.size(), 6u);
  std::vector<double> freqs;
  for (const auto& st : stations) freqs.push_back(st.carrier_hz / 1e6);
  std::sort(freqs.begin(), freqs.end());
  const std::vector<double> want = {213, 473, 521, 545, 587, 605};
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_DOUBLE_EQ(freqs[i], want[i]);
  // "up to 50 km away"
  const auto origin = sc::testbed_origin();
  for (const auto& st : stations)
    EXPECT_LE(g::haversine_m(origin, st.position), 51e3);
  EXPECT_EQ(sc::figure4_channels().size(), 6u);
}

TEST(Testbed, SiteObstructionShapes) {
  const auto rooftop = sc::make_site(sc::Site::kRooftop);
  const auto window = sc::make_site(sc::Site::kWindow);
  const auto indoor = sc::make_site(sc::Site::kIndoor);

  // Rooftop: open to the west at 1090 MHz, blocked to the east.
  EXPECT_LT(rooftop.obstructions->loss_db(280.0, 5.0, 1090e6), 1.0);
  EXPECT_GT(rooftop.obstructions->loss_db(90.0, 5.0, 1090e6), 20.0);
  // ... but overhead aircraft clear the screens.
  EXPECT_LT(rooftop.obstructions->loss_db(90.0, 50.0, 1090e6), 1.0);

  // Window: light loss through the glass sector, heavy elsewhere; the
  // glass gets much worse with frequency (coating).
  const double glass_low = window.obstructions->loss_db(270.0, 2.0, 600e6);
  const double glass_high = window.obstructions->loss_db(270.0, 2.0, 2600e6);
  EXPECT_LT(glass_low, 8.0);
  EXPECT_GT(glass_high, 15.0);
  EXPECT_GT(window.obstructions->loss_db(90.0, 2.0, 1090e6), 25.0);

  // Indoor: omnidirectional loss, no open direction.
  for (double az : {0.0, 90.0, 180.0, 270.0})
    EXPECT_GT(indoor.obstructions->loss_db(az, 2.0, 1090e6), 20.0);

  // Paper: "700 MHz signals can penetrate buildings much better".
  EXPECT_LT(indoor.obstructions->loss_db(0.0, 2.0, 731e6),
            indoor.obstructions->loss_db(0.0, 2.0, 1970e6) - 8.0);
}

TEST(Testbed, SitesShareTheBlock) {
  const auto origin = sc::testbed_origin();
  for (auto site : {sc::Site::kRooftop, sc::Site::kWindow, sc::Site::kIndoor}) {
    const auto setup = sc::make_site(site);
    EXPECT_LT(g::haversine_m(origin, setup.position), 100.0);
  }
  EXPECT_GT(sc::make_site(sc::Site::kRooftop).position.alt_m,
            sc::make_site(sc::Site::kWindow).position.alt_m);
}

TEST(Testbed, SiteNames) {
  EXPECT_EQ(sc::site_name(sc::Site::kRooftop), "rooftop");
  EXPECT_EQ(sc::site_name(sc::Site::kWindow), "behind-window");
  EXPECT_EQ(sc::site_name(sc::Site::kIndoor), "indoor");
}

TEST(Testbed, Ch22StationInsideWindowSector) {
  // The Figure-4 anomaly requires the 521 MHz tower inside the window FoV.
  const auto window = sc::make_site(sc::Site::kWindow);
  const auto origin = sc::testbed_origin();
  for (const auto& st : sc::make_tv_stations()) {
    if (std::abs(st.carrier_hz - 521e6) > 1.0) continue;
    const double az = g::bearing_deg(window.position, st.position);
    EXPECT_LT(window.obstructions->loss_db(az, 0.5, st.carrier_hz), 5.0);
  }
  (void)origin;
}

TEST(Testbed, WorldAndNodeWiring) {
  const auto world = sc::make_world(7, 10);
  EXPECT_NE(world.sky, nullptr);
  EXPECT_EQ(world.sky->fleet().size(), 10u);
  EXPECT_EQ(world.cells.cells().size(), 5u);
  EXPECT_EQ(world.tv_channels.size(), 6u);
  EXPECT_DOUBLE_EQ(world.ground_truth_latency_s, 10.0);

  const auto site = sc::make_site(sc::Site::kRooftop, 7);
  const auto node = sc::make_node(site, world, 7);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->info().driver, "sim-bladerf");
  EXPECT_EQ(node->rx_environment().obstructions, site.obstructions.get());
}

TEST(Testbed, SkyDeterministicAcrossCalls) {
  const auto sky1 = sc::make_sky(123, 20);
  const auto sky2 = sc::make_sky(123, 20);
  ASSERT_EQ(sky1->fleet().size(), sky2->fleet().size());
  for (std::size_t i = 0; i < sky1->fleet().size(); ++i)
    EXPECT_EQ(sky1->fleet()[i].icao, sky2->fleet()[i].icao);
}
