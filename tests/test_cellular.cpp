// Unit tests: 3GPP band tables, cell database, srsUE-like scanner.
#include <gtest/gtest.h>

#include <cmath>

#include "cellular/bands.hpp"
#include "cellular/scanner.hpp"
#include "cellular/tower.hpp"
#include "prop/pathloss.hpp"

namespace c = speccal::cellular;
namespace g = speccal::geo;

// ---------------------------------------------------------------- bands ----

TEST(Bands, KnownEarfcnConversions) {
  // Band 12: F_DL = 729 + 0.1*(N - 5010); the testbed's 731 MHz is 5030.
  EXPECT_DOUBLE_EQ(c::earfcn_to_dl_freq_hz(5030).value(), 731e6);
  // Band 2: 1930 + 0.1*(N - 600); 1970 MHz -> 1000.
  EXPECT_DOUBLE_EQ(c::earfcn_to_dl_freq_hz(1000).value(), 1970e6);
  // Band 4: 2110 + 0.1*(N - 1950); 2145 MHz -> 2300.
  EXPECT_DOUBLE_EQ(c::earfcn_to_dl_freq_hz(2300).value(), 2145e6);
  // Band 7: 2620 + 0.1*(N - 2750); 2660 -> 3150, 2680 -> 3350.
  EXPECT_DOUBLE_EQ(c::earfcn_to_dl_freq_hz(3150).value(), 2660e6);
  EXPECT_DOUBLE_EQ(c::earfcn_to_dl_freq_hz(3350).value(), 2680e6);
}

class EarfcnRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EarfcnRoundTrip, FreqToEarfcnInverts) {
  const int band = GetParam();
  for (const auto& info : c::lte_bands()) {
    if (info.band != band) continue;
    const double mid = (info.dl_low_hz + info.dl_high_hz) / 2.0;
    const auto earfcn = c::dl_freq_to_earfcn(band, mid);
    ASSERT_TRUE(earfcn.has_value());
    EXPECT_NEAR(c::earfcn_to_dl_freq_hz(*earfcn).value(), mid, 50e3);
  }
}

INSTANTIATE_TEST_SUITE_P(CommonBands, EarfcnRoundTrip,
                         ::testing::Values(2, 4, 5, 7, 12, 13, 30, 41, 48, 66, 71));

TEST(Bands, BandForEarfcnBoundaries) {
  // Band 12 spans EARFCN [5010, 5180) for its 17 MHz block.
  EXPECT_EQ(c::band_for_earfcn(5010).value().band, 12);
  EXPECT_EQ(c::band_for_earfcn(5179).value().band, 12);
  EXPECT_EQ(c::band_for_earfcn(5180).value().band, 13);
  EXPECT_FALSE(c::band_for_earfcn(999999).has_value());
}

TEST(Bands, OutOfBandFrequencyRejected) {
  EXPECT_FALSE(c::dl_freq_to_earfcn(12, 900e6).has_value());
  EXPECT_FALSE(c::dl_freq_to_earfcn(999, 731e6).has_value());
}

TEST(Bands, SpectrumClassification) {
  EXPECT_EQ(c::classify_frequency(617e6), c::SpectrumClass::kLowBand);
  EXPECT_EQ(c::classify_frequency(1970e6), c::SpectrumClass::kMidBand);
  EXPECT_EQ(c::classify_frequency(3600e6), c::SpectrumClass::kHighBand);
  EXPECT_EQ(c::classify_frequency(28e9), c::SpectrumClass::kMmWave);
  EXPECT_FALSE(c::to_string(c::SpectrumClass::kLowBand).empty());
}

// ----------------------------------------------------------------- cells ----

namespace {
c::Cell test_cell(std::uint64_t id, double az, double range_m, int band,
                  std::uint32_t earfcn) {
  g::Geodetic pos = g::destination({37.87, -122.27, 0.0}, az, range_m);
  pos.alt_m = 30.0;
  return c::make_cell(id, "Op", band, earfcn, pos, 62.0, 10e6, 100);
}
}  // namespace

TEST(Cells, MakeCellValidatesEarfcn) {
  EXPECT_NO_THROW(test_cell(1, 0.0, 1000.0, 12, 5030));
  EXPECT_THROW(test_cell(2, 0.0, 1000.0, 12, 1000), std::invalid_argument);
  const auto cell = test_cell(3, 0.0, 1000.0, 2, 1000);
  EXPECT_DOUBLE_EQ(cell.dl_freq_hz, 1970e6);
  EXPECT_EQ(cell.resource_blocks(), 50);  // 10 MHz
}

TEST(Cells, ResourceBlockTable) {
  auto cell = test_cell(1, 0.0, 1000.0, 12, 5030);
  cell.bandwidth_hz = 1.4e6;
  EXPECT_EQ(cell.resource_blocks(), 6);
  cell.bandwidth_hz = 5e6;
  EXPECT_EQ(cell.resource_blocks(), 25);
  cell.bandwidth_hz = 20e6;
  EXPECT_EQ(cell.resource_blocks(), 100);
}

TEST(Cells, DatabaseQueries) {
  c::CellDatabase db;
  db.add(test_cell(1, 0.0, 500.0, 12, 5030));
  db.add(test_cell(2, 90.0, 2000.0, 2, 1000));
  db.add(test_cell(3, 180.0, 50e3, 7, 3150));

  const auto near = db.near({37.87, -122.27, 0.0}, 10e3);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0].cell_id, 1u);  // nearest first
  EXPECT_EQ(near[1].cell_id, 2u);

  EXPECT_EQ(db.in_band(7).size(), 1u);
  EXPECT_TRUE(db.by_id(3).has_value());
  EXPECT_FALSE(db.by_id(99).has_value());
}

// --------------------------------------------------------------- scanner ----

namespace {
speccal::sdr::RxEnvironment open_rx() {
  speccal::sdr::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  return rx;
}
}  // namespace

TEST(Scanner, RsrpIsRssiMinusResourceElements) {
  const auto cell = test_cell(1, 90.0, 800.0, 2, 1000);
  const c::CellScanner scanner;
  const auto meas = scanner.measure(cell, open_rx());
  // 50 RB * 12 subcarriers = 600 REs -> 27.8 dB below wideband power.
  EXPECT_NEAR(meas.rssi_dbm - meas.rsrp_dbm, 10.0 * std::log10(600.0), 1e-6);
  EXPECT_TRUE(meas.decoded);  // 800 m from a macro: easily decodable
}

TEST(Scanner, SensitivityFloorCreatesMissingBars) {
  // Paper Figure 3: a missing bar is a failed sync. Put the cell behind a
  // massive obstruction and the scanner must fail even though the maths
  // still yields a (very low) RSRP.
  const auto cell = test_cell(1, 90.0, 800.0, 7, 3150);
  speccal::prop::ObstructionMap wall;
  wall.set_omni_loss(40.0, 10.0);
  wall.set_leakage_ceiling_db(60.0);
  auto rx = open_rx();
  rx.obstructions = &wall;

  c::ScanConfig config;
  config.min_rsrp_dbm = -95.0;
  const c::CellScanner scanner(config);
  const auto blocked = scanner.measure(cell, rx);
  const auto clear = scanner.measure(cell, open_rx());
  EXPECT_TRUE(clear.decoded);
  EXPECT_FALSE(blocked.decoded);
  EXPECT_LT(blocked.rsrp_dbm, clear.rsrp_dbm - 30.0);
}

TEST(Scanner, LowBandPenetratesWhereMidBandDies) {
  // The paper's central §3.2 observation, reproduced at scanner level.
  speccal::prop::ObstructionMap building;
  building.set_omni_loss(34.0, 30.0);  // indoor site profile
  auto rx = open_rx();
  rx.obstructions = &building;

  const auto low = test_cell(1, 250.0, 900.0, 12, 5030);   // 731 MHz
  const auto mid = test_cell(2, 268.0, 800.0, 2, 1000);    // 1970 MHz
  const c::CellScanner scanner;
  EXPECT_TRUE(scanner.measure(low, rx).decoded);
  EXPECT_FALSE(scanner.measure(mid, rx).decoded);
}

TEST(Scanner, ScanPreservesOrder) {
  c::CellDatabase db;
  db.add(test_cell(1, 0.0, 500.0, 12, 5030));
  db.add(test_cell(2, 90.0, 700.0, 2, 1000));
  const c::CellScanner scanner;
  const auto results = scanner.scan(db.cells(), open_rx());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].cell.cell_id, 1u);
  EXPECT_EQ(results[1].cell.cell_id, 2u);
}

TEST(Scanner, AntennaGainShiftsRsrp) {
  const auto cell = test_cell(1, 90.0, 800.0, 2, 1000);
  const auto iso = speccal::sdr::AntennaModel::isotropic();
  const auto broken = speccal::sdr::AntennaModel::attenuated(iso, 15.0);
  auto rx_good = open_rx();
  rx_good.antenna = &iso;
  auto rx_bad = open_rx();
  rx_bad.antenna = &broken;
  const c::CellScanner scanner;
  EXPECT_NEAR(scanner.measure(cell, rx_good).rsrp_dbm -
                  scanner.measure(cell, rx_bad).rsrp_dbm,
              15.0, 1e-6);
}

// ---------------------------------------------------------- PSS waveform ----

#include "cellular/pss.hpp"
#include "dsp/iq.hpp"
#include "util/rng.hpp"

using speccal::util::Rng;

TEST(Pss, SequencesAreConstantModulusAndDistinct) {
  for (int nid2 = 0; nid2 < 3; ++nid2) {
    const auto d = c::pss_sequence(nid2);
    for (const auto& v : d) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  }
  // Cross-correlation between different roots is far below autocorrelation.
  const auto a = c::pss_sequence(0);
  const auto b = c::pss_sequence(1);
  std::complex<double> cross{}, self{};
  for (std::size_t n = 0; n < a.size(); ++n) {
    cross += a[n] * std::conj(b[n]);
    self += a[n] * std::conj(a[n]);
  }
  EXPECT_LT(std::abs(cross), 0.3 * std::abs(self));
  EXPECT_THROW(c::pss_sequence(3), std::invalid_argument);
}

TEST(Pss, TimeDomainUnitPower) {
  for (int nid2 = 0; nid2 < 3; ++nid2) {
    const auto wave = c::pss_time_domain(nid2);
    ASSERT_EQ(wave.size(), c::kPssFftSize);
    double power = 0.0;
    for (const auto& v : wave) power += std::norm(v);
    EXPECT_NEAR(power / static_cast<double>(wave.size()), 1.0, 1e-6);
  }
}

namespace {
/// Synthetic capture: PSS bursts every half frame + white noise.
std::vector<std::complex<float>> synthetic_pss_capture(int nid2, double pss_amp,
                                                       double noise_sigma,
                                                       std::size_t offset,
                                                       std::uint64_t seed) {
  const auto period = static_cast<std::size_t>(c::kPssPeriodS * c::kSearchRateHz);
  std::vector<std::complex<float>> capture(4 * period);
  Rng rng(seed);
  for (auto& v : capture)
    v = {static_cast<float>(rng.normal(0.0, noise_sigma)),
         static_cast<float>(rng.normal(0.0, noise_sigma))};
  const auto wave = c::pss_time_domain(nid2);
  for (std::size_t start = offset; start + wave.size() <= capture.size();
       start += period)
    for (std::size_t n = 0; n < wave.size(); ++n)
      capture[start + n] += wave[n] * static_cast<float>(pss_amp);
  return capture;
}
}  // namespace

TEST(Pss, SearchFindsRootAndTiming) {
  for (int nid2 = 0; nid2 < 3; ++nid2) {
    const auto capture = synthetic_pss_capture(nid2, 1.0, 0.5, 1234, 51);
    const auto det = c::pss_search(capture);
    EXPECT_EQ(det.nid2, nid2);
    EXPECT_EQ(det.timing_offset, 1234u);
    EXPECT_GT(det.metric, 0.3);
    EXPECT_NEAR(det.cfo_hz, 0.0, 800.0);
  }
}

TEST(Pss, NoiseOnlyStaysBelowThreshold) {
  std::vector<std::complex<float>> capture(4 * 9600);
  Rng rng(52);
  for (auto& v : capture)
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
  const auto det = c::pss_search(capture);
  EXPECT_LT(det.metric, c::PssSearchConfig{}.detection_threshold);
}

TEST(Pss, SelfInterferenceLimitedCellStillDetected) {
  // PSS at the in-carrier power ratio (62 of 600 REs) buried in the rest
  // of the grid: per-symbol SNR ~ -10 dB; combining must still clear the
  // detection threshold.
  const double grid_sigma = std::sqrt(600.0 / 62.0 / 2.0);  // per component
  const auto capture = synthetic_pss_capture(1, 1.0, grid_sigma, 4321, 53);
  const auto det = c::pss_search(capture);
  EXPECT_EQ(det.nid2, 1);
  EXPECT_GT(det.metric, c::PssSearchConfig{}.detection_threshold);
}

namespace {
std::unique_ptr<speccal::sdr::SimulatedSdr> pss_world_device(
    const c::CellDatabase& db, const speccal::sdr::RxEnvironment& rx,
    std::uint64_t seed) {
  auto device = std::make_unique<speccal::sdr::SimulatedSdr>(
      speccal::sdr::SimulatedSdr::bladerf_like_info(), rx, Rng(seed));
  speccal::prop::LinkParams link;
  link.model = speccal::prop::PathModel::kLogDistance;
  link.exponent = 2.9;
  for (const auto& cell : db.cells())
    device->add_source(std::make_shared<c::CellSignalSource>(
        cell, link, Rng(seed).fork(cell.cell_id)));
  return device;
}
}  // namespace

TEST(Pss, WaveformSearchFindsEveryModelDecodableCell) {
  // The model scanner's "decoded" floor represents the full srsUE chain
  // (PSS+SSS+PBCH); raw PSS correlation is the easier problem, so every
  // model-decodable cell must also be PSS-detectable. Deeply obstructed
  // cells (below the thermal floor) must not be.
  c::CellDatabase db;
  db.add(test_cell(1, 250.0, 900.0, 12, 5030));
  db.add(test_cell(2, 268.0, 800.0, 2, 1000));

  speccal::prop::ObstructionMap dungeon;
  // Deep enough that the carriers land below the 1.92 MHz thermal floor
  // (~-104 dBm): raw PSS correlation legitimately detects anything above it.
  dungeon.set_omni_loss(85.0, 10.0);
  dungeon.set_leakage_ceiling_db(120.0);

  const auto rx_open = open_rx();
  auto rx_buried = open_rx();
  rx_buried.obstructions = &dungeon;

  auto open_device = pss_world_device(db, rx_open, 71);
  const auto open_results = c::waveform_cell_search(*open_device, db.cells());
  ASSERT_EQ(open_results.size(), 2u);
  const c::CellScanner scanner;
  for (const auto& [cell, det] : open_results) {
    EXPECT_TRUE(scanner.measure(cell, rx_open).decoded);
    EXPECT_TRUE(det.detected) << cell.cell_id;
    EXPECT_EQ(det.nid2, static_cast<int>(cell.pci % 3));
  }

  auto buried_device = pss_world_device(db, rx_buried, 72);
  for (const auto& [cell, det] :
       c::waveform_cell_search(*buried_device, db.cells())) {
    EXPECT_FALSE(scanner.measure(cell, rx_buried).decoded);
    EXPECT_FALSE(det.detected) << cell.cell_id;
  }
}

TEST(Pss, CfoFromLoErrorEstimated) {
  c::CellDatabase db;
  db.add(test_cell(1, 90.0, 800.0, 2, 1000));  // 1970 MHz
  auto info = speccal::sdr::SimulatedSdr::bladerf_like_info();
  info.lo_error_ppm = 2.0;  // ~3.9 kHz at 1970 MHz
  const auto rx = open_rx();
  auto device = std::make_unique<speccal::sdr::SimulatedSdr>(info, rx, Rng(73));
  speccal::prop::LinkParams link;
  link.model = speccal::prop::PathModel::kLogDistance;
  link.exponent = 2.9;
  device->add_source(std::make_shared<c::CellSignalSource>(db.cells()[0], link, Rng(74)));

  const auto results = c::waveform_cell_search(*device, db.cells());
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].second.detected);
  // LO high by 2 ppm -> signal appears ~3.9 kHz low. The split-correlation
  // estimate is coarse (half-sample timing error biases it by ~2 kHz) —
  // enough to seed a real UE's fine-CFO loop, so assert sign and ballpark.
  EXPECT_LT(results[0].second.cfo_hz, -1500.0);
  EXPECT_NEAR(results[0].second.cfo_hz, -2e-6 * 1970e6, 2500.0);
}
