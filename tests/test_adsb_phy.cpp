// Unit tests: PPM physical layer and the streaming decoder.
#include <gtest/gtest.h>

#include <cmath>

#include "adsb/altitude.hpp"
#include "adsb/decoder.hpp"
#include "adsb/ppm.hpp"
#include "util/rng.hpp"

namespace a = speccal::adsb;
namespace d = speccal::dsp;

namespace {
void add_noise(d::Buffer& buf, double sigma, std::uint64_t seed) {
  speccal::util::Rng rng(seed);
  for (auto& s : buf)
    s += d::Sample(static_cast<float>(rng.normal(0.0, sigma)),
                   static_cast<float>(rng.normal(0.0, sigma)));
}
}  // namespace

TEST(Ppm, EnvelopeStructure) {
  const auto frame = a::build_ident_frame(0xAAAAAA, "TEST");
  const auto env = a::ppm_envelope(frame);
  ASSERT_EQ(env.size(), a::kFrameSamples);
  // Preamble pulses at 0, 2, 7, 9; quiet elsewhere in the first 16.
  for (std::size_t i : {0u, 2u, 7u, 9u}) EXPECT_EQ(env[i], 1.0f) << i;
  for (std::size_t i : {1u, 3u, 4u, 5u, 6u, 8u, 10u, 11u, 12u, 13u, 14u, 15u})
    EXPECT_EQ(env[i], 0.0f) << i;
  // Each data bit occupies exactly one of its two half-slots.
  for (std::size_t bit = 0; bit < a::kLongFrameBits; ++bit) {
    const std::size_t base = a::kPreambleSamples + 2 * bit;
    EXPECT_EQ(env[base] + env[base + 1], 1.0f) << "bit " << bit;
  }
}

TEST(Ppm, CleanRoundTrip) {
  const auto frame = a::build_position_frame(0xC0FFEE, 37.9, -122.3, 30000.0, true);
  d::Buffer buf(1000, {0.0f, 0.0f});
  a::modulate_into(frame, 0.05, 1.0, 0.0, 300, buf);
  add_noise(buf, 1e-4, 1);
  const auto dets = a::PpmDemodulator{}.process(buf);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].frame, frame);
  EXPECT_EQ(dets[0].sample_index, 300u);
  EXPECT_EQ(dets[0].repaired_bits, 0);
  // RSSI of a 0.05-amplitude pulse train: 20 log10(0.05) = -26 dBFS.
  EXPECT_NEAR(dets[0].rssi_dbfs, -26.0, 1.0);
}

TEST(Ppm, SurvivesCarrierOffset) {
  const auto frame = a::build_ident_frame(0xBEEF01, "CFO1");
  for (double cfo : {-80e3, -20e3, 20e3, 80e3}) {
    d::Buffer buf(600, {0.0f, 0.0f});
    a::modulate_into(frame, 0.1, 0.0, cfo, 100, buf);
    add_noise(buf, 1e-4, 2);
    const auto dets = a::PpmDemodulator{}.process(buf);
    ASSERT_EQ(dets.size(), 1u) << "cfo " << cfo;
    EXPECT_EQ(dets[0].frame, frame);
  }
}

TEST(Ppm, DecodesMultipleFrames) {
  d::Buffer buf(4000, {0.0f, 0.0f});
  const auto f1 = a::build_ident_frame(0x111111, "ONE");
  const auto f2 = a::build_ident_frame(0x222222, "TWO");
  const auto f3 = a::build_ident_frame(0x333333, "THREE");
  a::modulate_into(f1, 0.05, 0.1, 1e3, 200, buf);
  a::modulate_into(f2, 0.08, 0.2, -2e3, 1500, buf);
  a::modulate_into(f3, 0.03, 0.3, 0.0, 3000, buf);
  add_noise(buf, 1e-4, 3);
  const auto dets = a::PpmDemodulator{}.process(buf);
  ASSERT_EQ(dets.size(), 3u);
  EXPECT_EQ(dets[0].frame, f1);
  EXPECT_EQ(dets[1].frame, f2);
  EXPECT_EQ(dets[2].frame, f3);
}

TEST(Ppm, DecodeDegradesGracefullyWithSnr) {
  // Frame decode rate should fall from ~1 to ~0 as noise rises past the
  // signal level — the soft threshold the survey relies on.
  const auto frame = a::build_ident_frame(0x777777, "SNR");
  auto rate_at_sigma = [&](double sigma) {
    int decoded = 0;
    constexpr int kTrials = 40;
    for (int t = 0; t < kTrials; ++t) {
      d::Buffer buf(400, {0.0f, 0.0f});
      a::modulate_into(frame, 0.01, 0.0, 0.0, 50, buf);
      add_noise(buf, sigma, 100 + static_cast<std::uint64_t>(t));
      const auto dets = a::PpmDemodulator{}.process(buf);
      decoded += (dets.size() == 1 && dets[0].frame == frame) ? 1 : 0;
    }
    return decoded / static_cast<double>(kTrials);
  };
  EXPECT_GT(rate_at_sigma(0.0005), 0.95);  // SNR ~23 dB (per pulse)
  EXPECT_LT(rate_at_sigma(0.02), 0.05);    // signal buried
}

TEST(Ppm, NoFalseDecodesOnPureNoise) {
  d::Buffer buf(200000);
  add_noise(buf, 0.01, 5);
  const auto dets = a::PpmDemodulator{}.process(buf);
  EXPECT_TRUE(dets.empty());
}

TEST(Ppm, RepairDisabledRejectsCorruptedFrames) {
  const auto frame = a::build_ident_frame(0x445566, "FIX");
  d::Buffer clean(500, {0.0f, 0.0f});
  a::modulate_into(frame, 0.1, 0.0, 0.0, 100, clean);
  // Erase one data pulse: creates exactly one sliced bit error.
  const std::size_t bad_bit = 40;
  const std::size_t base = 100 + a::kPreambleSamples + 2 * bad_bit;
  clean[base] = {0.0f, 0.0f};
  clean[base + 1] = {0.0f, 0.0f};
  add_noise(clean, 5e-4, 6);

  a::DemodConfig no_repair;
  no_repair.max_crc_repair_bits = 0;
  EXPECT_TRUE(a::PpmDemodulator{no_repair}.process(clean).empty());

  a::DemodConfig with_repair;
  with_repair.max_crc_repair_bits = 1;
  const auto dets = a::PpmDemodulator{with_repair}.process(clean);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].frame, frame);
  EXPECT_EQ(dets[0].repaired_bits, 1);
}

TEST(Ppm, SignedOffsetClipsCleanly) {
  const auto frame = a::build_ident_frame(0x888888, "EDGE");
  d::Buffer head(100, {0.0f, 0.0f});
  // Frame starts 50 samples before this buffer: only its tail lands here.
  a::modulate_into_signed(frame, 0.1, 0.0, 0.0, -50, head);
  double energy = 0.0;
  for (const auto& s : head) energy += std::norm(s);
  EXPECT_GT(energy, 0.0);
  // And rendering entirely before the buffer adds nothing.
  d::Buffer empty(100, {0.0f, 0.0f});
  a::modulate_into_signed(frame, 0.1, 0.0, 0.0, -5000, empty);
  for (const auto& s : empty) EXPECT_EQ(std::norm(s), 0.0f);
}

// ---------------------------------------------------------------- decoder ----

TEST(Decoder, TracksAircraftAcrossMessageTypes) {
  a::Decoder decoder;
  d::Buffer buf(6000, {0.0f, 0.0f});
  const std::uint32_t icao = 0xA0B1C2;
  a::modulate_into(a::build_position_frame(icao, 37.9, -122.3, 32000.0, false),
                   0.05, 0.0, 0.0, 100, buf);
  a::modulate_into(a::build_position_frame(icao, 37.9, -122.3, 32000.0, true),
                   0.05, 0.0, 0.0, 2000, buf);
  a::modulate_into(a::build_velocity_frame(icao, 440.0, 85.0, -500.0), 0.05, 0.0,
                   0.0, 4000, buf);
  a::modulate_into(a::build_ident_frame(icao, "TRK1"), 0.05, 0.0, 0.0, 5500, buf);
  add_noise(buf, 1e-4, 7);

  const auto frames = decoder.feed(buf, 0.0);
  EXPECT_EQ(frames.size(), 4u);
  const auto* ac = decoder.find(icao);
  ASSERT_NE(ac, nullptr);
  EXPECT_EQ(ac->message_count, 4u);
  EXPECT_EQ(ac->callsign, "TRK1");
  ASSERT_TRUE(ac->position.has_value());
  EXPECT_NEAR(ac->position->lat_deg, 37.9, 1e-3);
  EXPECT_NEAR(ac->position->lon_deg, -122.3, 1e-3);
  EXPECT_NEAR(ac->position->alt_m, a::feet_to_m(32000.0), 10.0);
  ASSERT_TRUE(ac->ground_speed_kt.has_value());
  EXPECT_NEAR(*ac->ground_speed_kt, 440.0, 2.0);
  EXPECT_TRUE(ac->credible());
}

TEST(Decoder, FrameSpanningChunkBoundaryStillDecodes) {
  const std::uint32_t icao = 0xD1D2D3;
  const auto frame = a::build_ident_frame(icao, "SPLIT");
  d::Buffer whole(2000, {0.0f, 0.0f});
  // Place the frame so it straddles the split point at sample 1000.
  a::modulate_into(frame, 0.05, 0.0, 0.0, 900, whole);
  add_noise(whole, 1e-4, 8);

  a::Decoder decoder;
  const d::Buffer first(whole.begin(), whole.begin() + 1000);
  const d::Buffer second(whole.begin() + 1000, whole.end());
  auto f1 = decoder.feed(first, 0.0);
  auto f2 = decoder.feed(second, 1000.0 / a::kPpmSampleRateHz);
  EXPECT_EQ(f1.size() + f2.size(), 1u);
  EXPECT_NE(decoder.find(icao), nullptr);
}

TEST(Decoder, PruneForgetsStaleAircraft) {
  a::Decoder decoder;
  d::Buffer buf(600, {0.0f, 0.0f});
  a::modulate_into(a::build_ident_frame(0xEEEEEE, "OLD"), 0.05, 0.0, 0.0, 100, buf);
  add_noise(buf, 1e-4, 9);
  (void)decoder.feed(buf, 0.0);
  ASSERT_EQ(decoder.aircraft().size(), 1u);
  decoder.prune(60.0);
  EXPECT_EQ(decoder.aircraft().size(), 1u);   // within timeout
  decoder.prune(500.0);
  EXPECT_TRUE(decoder.aircraft().empty());    // beyond timeout
}

TEST(Decoder, ResetClearsEverything) {
  a::Decoder decoder;
  d::Buffer buf(600, {0.0f, 0.0f});
  a::modulate_into(a::build_ident_frame(0xABABAB, "RST"), 0.05, 0.0, 0.0, 50, buf);
  add_noise(buf, 1e-4, 10);
  (void)decoder.feed(buf, 0.0);
  EXPECT_EQ(decoder.total_frames(), 1u);
  decoder.reset();
  EXPECT_EQ(decoder.total_frames(), 0u);
  EXPECT_TRUE(decoder.aircraft().empty());
}

TEST(Decoder, CredibilityPolicy) {
  a::AircraftState ac;
  ac.message_count = 1;
  ac.clean_message_count = 0;
  EXPECT_FALSE(ac.credible());  // one repaired frame: could be noise
  ac.clean_message_count = 1;
  EXPECT_TRUE(ac.credible());
  ac.clean_message_count = 0;
  ac.message_count = 2;
  EXPECT_TRUE(ac.credible());
}

// ------------------------------------------------------ property sweeps ----

class ModemRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModemRoundTrip, RandomFramesSurviveTheAir) {
  // Property: any frame the builders can produce survives modulation,
  // additive noise at comfortable SNR, demodulation and parsing with all
  // fields intact.
  speccal::util::Rng rng(GetParam());
  const auto icao = static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFFFF));
  const double lat = rng.uniform(-60.0, 60.0);
  const double lon = rng.uniform(-179.0, 179.0);
  const double alt = rng.uniform(1000.0, 45000.0);
  const double speed = rng.uniform(80.0, 500.0);
  const double track = rng.uniform(0.0, 360.0);
  const double vrate = rng.uniform(-3000.0, 3000.0);

  d::Buffer buf(2000, {0.0f, 0.0f});
  a::modulate_into(a::build_position_frame(icao, lat, lon, alt, false), 0.05,
                   rng.uniform(0.0, 6.28), rng.uniform(-50e3, 50e3), 100, buf);
  a::modulate_into(a::build_velocity_frame(icao, speed, track, vrate), 0.05,
                   rng.uniform(0.0, 6.28), rng.uniform(-50e3, 50e3), 800, buf);
  add_noise(buf, 2e-3, GetParam() ^ 0xabc);

  const auto dets = a::PpmDemodulator{}.process(buf);
  ASSERT_EQ(dets.size(), 2u) << "seed " << GetParam();
  const auto pos = a::parse_frame(dets[0].frame);
  const auto vel = a::parse_frame(dets[1].frame);
  ASSERT_TRUE(pos && pos->has_position());
  ASSERT_TRUE(vel && vel->has_velocity());
  EXPECT_EQ(pos->icao, icao);
  const auto& p = std::get<a::PositionPayload>(pos->payload);
  const auto fix = a::cpr_local_decode(p.cpr, lat + 0.01, lon - 0.01);
  EXPECT_NEAR(fix.lat_deg, lat, 1e-3);
  EXPECT_NEAR(fix.lon_deg, lon, 1e-3);
  EXPECT_NEAR(a::decode_altitude_ft(p.ac12).value(), alt, 12.5);
  const auto& v = std::get<a::VelocityPayload>(vel->payload);
  EXPECT_NEAR(v.ground_speed_kt, speed, 1.5);
  EXPECT_NEAR(v.vertical_rate_fpm, vrate, 64.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModemRoundTrip,
                         ::testing::Range<std::uint64_t>(1000, 1020));
