// Tests: frequency-response fusion (§3.2).
#include <gtest/gtest.h>

#include "calib/freqresp.hpp"
#include "calib/hardware.hpp"

namespace cal = speccal::calib;
namespace c = speccal::cellular;

namespace {
cal::BandMeasurement meas(double freq_hz, double expected_dbm,
                          std::optional<double> measured_dbm,
                          cal::SignalKind kind = cal::SignalKind::kCellular) {
  cal::BandMeasurement m;
  m.kind = kind;
  m.freq_hz = freq_hz;
  m.expected_dbm = expected_dbm;
  m.measured_dbm = measured_dbm;
  return m;
}
}  // namespace

TEST(FreqResp, CleanNodeHasZeroAttenuationEverywhere) {
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -50.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -60.0),
      meas(1970e6, -65.0, -65.0),
      meas(2680e6, -70.0, -70.0),
  });
  EXPECT_NEAR(report.mean_attenuation_db, 0.0, 1e-9);
  EXPECT_NEAR(report.attenuation_slope_db_per_decade, 0.0, 1e-6);
  for (const auto& band : report.bands) {
    EXPECT_TRUE(band.usable);
    EXPECT_EQ(band.sources_received, band.sources_total);
  }
}

TEST(FreqResp, IndoorShapeRisingSlopeAndDeadMidBand) {
  // Low band attenuated ~15 dB, mid band lost entirely: the paper's
  // indoor signature.
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -60.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -78.0),
      meas(1970e6, -65.0, std::nullopt),
      meas(2145e6, -66.0, std::nullopt),
      meas(2680e6, -70.0, std::nullopt),
  });
  EXPECT_GT(report.attenuation_slope_db_per_decade, 10.0);
  const cal::BandQuality* low = nullptr;
  const cal::BandQuality* mid = nullptr;
  for (const auto& band : report.bands) {
    if (band.band_class == c::SpectrumClass::kLowBand) low = &band;
    if (band.band_class == c::SpectrumClass::kMidBand) mid = &band;
  }
  ASSERT_NE(low, nullptr);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->sources_received, 0u);
  EXPECT_FALSE(mid->usable);
  EXPECT_GT(low->sources_received, 0u);
}

TEST(FreqResp, LostSourcesGetPenaltyAttenuation) {
  cal::FrequencyResponseConfig cfg;
  cfg.lost_penalty_db = 50.0;
  const auto report = cal::evaluate_frequency_response(
      {meas(1970e6, -65.0, std::nullopt)}, cfg);
  EXPECT_NEAR(report.mean_attenuation_db, 50.0, 1e-9);
}

TEST(FreqResp, MeasuredAboveExpectedClampsToZero) {
  // Constructive fading can make measured exceed expected; attenuation
  // must not go negative.
  const auto report =
      cal::evaluate_frequency_response({meas(731e6, -60.0, -55.0)});
  EXPECT_DOUBLE_EQ(report.mean_attenuation_db, 0.0);
}

TEST(FreqResp, UsableThresholds) {
  cal::FrequencyResponseConfig cfg;
  cfg.degraded_threshold_db = 20.0;
  cfg.usable_fraction = 0.5;
  // Two mid-band sources: one fine, one degraded -> exactly at the 50%
  // usable fraction.
  const auto report = cal::evaluate_frequency_response(
      {meas(1970e6, -65.0, -70.0), meas(2145e6, -66.0, -96.0)}, cfg);
  ASSERT_EQ(report.bands.size(), 1u);
  EXPECT_TRUE(report.bands[0].usable);
  // Both degraded -> unusable.
  const auto bad = cal::evaluate_frequency_response(
      {meas(1970e6, -65.0, -95.0), meas(2145e6, -66.0, -96.0)}, cfg);
  EXPECT_FALSE(bad.bands[0].usable);
}

TEST(FreqResp, WorstAttenuationTracked) {
  const auto report = cal::evaluate_frequency_response(
      {meas(1970e6, -65.0, -70.0), meas(2145e6, -66.0, -90.0)});
  ASSERT_EQ(report.bands.size(), 1u);
  EXPECT_NEAR(report.bands[0].worst_attenuation_db, 24.0, 1e-9);
  EXPECT_NEAR(report.bands[0].mean_attenuation_db, (5.0 + 24.0) / 2.0, 1e-9);
}

TEST(FreqResp, BandsSortedByClass) {
  const auto report = cal::evaluate_frequency_response({
      meas(3600e6, -70.0, -70.0),
      meas(731e6, -60.0, -60.0),
      meas(1970e6, -65.0, -65.0),
  });
  ASSERT_EQ(report.bands.size(), 3u);
  EXPECT_EQ(report.bands[0].band_class, c::SpectrumClass::kLowBand);
  EXPECT_EQ(report.bands[1].band_class, c::SpectrumClass::kMidBand);
  EXPECT_EQ(report.bands[2].band_class, c::SpectrumClass::kHighBand);
}

TEST(FreqResp, SignalKindNames) {
  EXPECT_EQ(cal::to_string(cal::SignalKind::kAdsb), "ADS-B");
  EXPECT_EQ(cal::to_string(cal::SignalKind::kCellular), "cellular");
  EXPECT_EQ(cal::to_string(cal::SignalKind::kTv), "TV");
}

TEST(FreqResp, EmptyInputIsNeutral) {
  const auto report = cal::evaluate_frequency_response({});
  EXPECT_TRUE(report.bands.empty());
  EXPECT_DOUBLE_EQ(report.mean_attenuation_db, 0.0);
  EXPECT_DOUBLE_EQ(report.attenuation_slope_db_per_decade, 0.0);
}

// ------------------------------------------------------ hardware diagnosis ----

namespace {
speccal::calib::FovEstimate wide_fov() {
  speccal::calib::FovEstimate fov;
  fov.open_fraction_deg = 0.9;
  fov.open_sectors = speccal::geo::SectorSet({{0.0, 0.0}});
  return fov;
}
}  // namespace

TEST(Hardware, HealthyNodeCleanDiagnosis) {
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -51.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -61.5),
      meas(1970e6, -65.0, -66.0),
      meas(2680e6, -70.0, -70.5),
  });
  const auto diag = speccal::calib::diagnose_hardware(report, wide_fov());
  EXPECT_TRUE(diag.healthy());
}

TEST(Hardware, CableFaultIsFlatLoss) {
  // 11 dB everywhere, every direction open: that is plumbing, not siting.
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -61.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -71.5),
      meas(1970e6, -65.0, -76.0),
      meas(2680e6, -70.0, -80.5),
  });
  const auto diag = speccal::calib::diagnose_hardware(report, wide_fov());
  EXPECT_TRUE(diag.cable_fault_suspected);
  EXPECT_NEAR(diag.estimated_cable_loss_db, 11.0, 1.0);
  EXPECT_FALSE(diag.antenna_band_mismatch);
}

TEST(Hardware, IndoorSitingIsNotACableFault) {
  // Rising slope + narrow FoV: the indoor signature must not be blamed on
  // the cable.
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -60.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -78.0),
      meas(1970e6, -65.0, -95.0),
      meas(2680e6, -70.0, std::nullopt),
  });
  speccal::calib::FovEstimate narrow;
  narrow.open_fraction_deg = 0.05;
  const auto diag = speccal::calib::diagnose_hardware(report, narrow);
  EXPECT_FALSE(diag.cable_fault_suspected);
}

TEST(Hardware, NarrowAntennaDetected) {
  // Healthy 470-2200 MHz, deaf at 213 MHz and 2680 MHz despite open sky:
  // the antenna does not cover the claimed range.
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -75.0, cal::SignalKind::kTv),   // deaf (edge)
      meas(473e6, -55.0, -56.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -61.0),
      meas(1970e6, -65.0, -66.5),
      meas(2680e6, -70.0, -94.0),                        // deaf (edge)
  });
  const auto diag = speccal::calib::diagnose_hardware(report, wide_fov());
  EXPECT_TRUE(diag.antenna_band_mismatch);
  ASSERT_EQ(diag.deaf_frequencies_hz.size(), 2u);
  EXPECT_FALSE(diag.cable_fault_suspected);
}

TEST(Hardware, ScatteredDeafnessIsSiting) {
  // A deaf source in the middle of healthy ones is an obstruction toward
  // that source, not an antenna problem.
  const auto report = cal::evaluate_frequency_response({
      meas(213e6, -50.0, -51.0, cal::SignalKind::kTv),
      meas(731e6, -60.0, -85.0),  // deaf, but mid-spectrum
      meas(1970e6, -65.0, -66.0),
      meas(2680e6, -70.0, -71.0),
  });
  const auto diag = speccal::calib::diagnose_hardware(report, wide_fov());
  EXPECT_FALSE(diag.antenna_band_mismatch);
}

TEST(Hardware, NoDataNoDiagnosis) {
  const auto report = cal::evaluate_frequency_response({
      meas(1970e6, -65.0, std::nullopt),
  });
  const auto diag = speccal::calib::diagnose_hardware(report, wide_fov());
  EXPECT_TRUE(diag.healthy());
  EXPECT_FALSE(diag.notes.empty());
}
