// Unit tests: propagation models, obstruction maps, fading, link budget.
#include <gtest/gtest.h>

#include <cmath>

#include "prop/fading.hpp"
#include "prop/linkbudget.hpp"
#include "prop/obstruction.hpp"
#include "prop/pathloss.hpp"

namespace p = speccal::prop;
namespace g = speccal::geo;

// ------------------------------------------------------------- path loss ----

TEST(PathLoss, FreeSpaceKnownValue) {
  // FSPL(1 km, 1 GHz) = 92.45 dB (classic textbook value).
  EXPECT_NEAR(p::free_space_path_loss_db(1000.0, 1e9), 92.45, 0.05);
  // 20 dB per decade of distance.
  EXPECT_NEAR(p::free_space_path_loss_db(10e3, 1e9) -
                  p::free_space_path_loss_db(1e3, 1e9),
              20.0, 1e-9);
  // 20 dB per decade of frequency.
  EXPECT_NEAR(p::free_space_path_loss_db(1e3, 10e9) -
                  p::free_space_path_loss_db(1e3, 1e9),
              20.0, 1e-9);
}

TEST(PathLoss, FreeSpaceClampsTinyDistance) {
  EXPECT_DOUBLE_EQ(p::free_space_path_loss_db(0.0, 1e9),
                   p::free_space_path_loss_db(1.0, 1e9));
}

TEST(PathLoss, LogDistanceExceedsFreeSpaceForUrbanExponent) {
  for (double d : {500.0, 2e3, 20e3}) {
    EXPECT_GT(p::log_distance_path_loss_db(d, 2e9, 3.0),
              p::free_space_path_loss_db(d, 2e9) - 0.5)
        << d;
  }
  // Exponent 2 at the reference distance equals free space exactly.
  EXPECT_NEAR(p::log_distance_path_loss_db(100.0, 1e9, 2.0, 100.0),
              p::free_space_path_loss_db(100.0, 1e9), 1e-9);
}

TEST(PathLoss, TwoSlopeContinuousAtBreakpoint) {
  const double just_below = p::two_slope_path_loss_db(4999.0, 600e6, 2.0, 3.5, 5000.0);
  const double just_above = p::two_slope_path_loss_db(5001.0, 600e6, 2.0, 3.5, 5000.0);
  EXPECT_NEAR(just_below, just_above, 0.05);
  // Far slope is steeper: 3.5 * 10 dB/decade beyond the breakpoint.
  const double at_bp = p::two_slope_path_loss_db(5e3, 600e6, 2.0, 3.5, 5e3);
  const double at_10bp = p::two_slope_path_loss_db(50e3, 600e6, 2.0, 3.5, 5e3);
  EXPECT_NEAR(at_10bp - at_bp, 35.0, 0.1);
}

TEST(PathLoss, MonotonicInDistance) {
  double prev = 0.0;
  for (double d = 200.0; d < 100e3; d *= 1.7) {
    const double v = p::two_slope_path_loss_db(d, 600e6, 2.0, 3.5, 10e3);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(PathLoss, BuildingEntryRisesWithFrequency) {
  // The core physical effect the paper exploits: low band penetrates.
  const double at_700m = p::building_entry_loss_db(700e6, p::BuildingClass::kTraditional);
  const double at_2g = p::building_entry_loss_db(2.0e9, p::BuildingClass::kTraditional);
  const double at_6g = p::building_entry_loss_db(6.0e9, p::BuildingClass::kTraditional);
  EXPECT_LT(at_700m, at_2g);
  EXPECT_LT(at_2g, at_6g);
  // ITU P.2109 median at 1 GHz, traditional: ~12.6 dB.
  EXPECT_NEAR(p::building_entry_loss_db(1e9, p::BuildingClass::kTraditional), 12.64, 0.1);
  // Thermally-efficient buildings lose much more.
  EXPECT_GT(p::building_entry_loss_db(2e9, p::BuildingClass::kThermallyEfficient),
            at_2g + 5.0);
}

TEST(PathLoss, WindowPenetrationMildAndRising) {
  const double low = p::window_penetration_loss_db(600e6);
  const double high = p::window_penetration_loss_db(3e9);
  EXPECT_GT(low, 0.0);
  EXPECT_LT(low, 10.0);
  EXPECT_GT(high, low);
}

TEST(PathLoss, NoiseFloor) {
  // kTB over 2 MHz with 7 dB NF: about -104 dBm.
  EXPECT_NEAR(p::noise_floor_dbm(2e6, 7.0), -104.0, 0.2);
  EXPECT_NEAR(p::noise_floor_dbm(2e6, 0.0) - p::noise_floor_dbm(2e6, 7.0), -7.0, 1e-9);
}

// ----------------------------------------------------------- obstruction ----

TEST(Obstruction, ScreenAppliesInsideSectorOnly) {
  p::ObstructionMap map;
  p::Screen screen;
  screen.sector = {90.0, 180.0};
  screen.loss_at_1ghz_db = 20.0;
  screen.loss_slope_db_per_decade = 0.0;
  map.add_screen(screen);
  EXPECT_NEAR(map.loss_db(135.0, 0.0, 1e9), 20.0, 1e-9);
  EXPECT_NEAR(map.loss_db(45.0, 0.0, 1e9), 0.0, 1e-9);
  EXPECT_NEAR(map.loss_db(181.0, 0.0, 1e9), 0.0, 1e-9);
}

TEST(Obstruction, ElevationEscapesScreen) {
  p::ObstructionMap map;
  p::Screen screen;
  screen.sector = {0.0, 0.0};  // whole horizon
  screen.loss_at_1ghz_db = 25.0;
  screen.max_elevation_deg = 30.0;
  map.add_screen(screen);
  EXPECT_GT(map.loss_db(10.0, 10.0, 1e9), 20.0);
  EXPECT_NEAR(map.loss_db(10.0, 45.0, 1e9), 0.0, 1e-9);  // overhead ray clears
}

TEST(Obstruction, FrequencySlope) {
  p::Screen screen;
  screen.loss_at_1ghz_db = 20.0;
  screen.loss_slope_db_per_decade = 10.0;
  EXPECT_NEAR(screen.loss_db(1e9), 20.0, 1e-9);
  EXPECT_NEAR(screen.loss_db(10e9), 30.0, 1e-9);
  EXPECT_NEAR(screen.loss_db(100e6), 10.0, 1e-9);
  // Never negative.
  EXPECT_DOUBLE_EQ(screen.loss_db(1e7), 0.0);
}

TEST(Obstruction, LeakageCeilingCapsTotalLoss) {
  p::ObstructionMap map;
  map.set_omni_loss(40.0, 0.0);
  p::Screen screen;
  screen.sector = {0.0, 180.0};
  screen.loss_at_1ghz_db = 40.0;
  map.add_screen(screen);
  map.set_leakage_ceiling_db(45.0);
  EXPECT_DOUBLE_EQ(map.loss_db(90.0, 0.0, 1e9), 45.0);   // 80 capped to 45
  EXPECT_DOUBLE_EQ(map.loss_db(270.0, 0.0, 1e9), 40.0);  // below the cap
}

TEST(Obstruction, ClearSectorsRecoverGeometry) {
  p::ObstructionMap map;
  p::Screen screen;
  screen.sector = {0.0, 270.0};  // open only [270, 360)
  screen.loss_at_1ghz_db = 30.0;
  map.add_screen(screen);
  const auto clear = map.clear_sectors(1e9, 10.0);
  EXPECT_NEAR(clear.coverage_deg(), 90.0, 1.5);
  EXPECT_TRUE(clear.contains(300.0));
  EXPECT_FALSE(clear.contains(100.0));
}

TEST(Obstruction, ClearSectorsFullCircleWhenOpen) {
  p::ObstructionMap map;
  const auto clear = map.clear_sectors(1e9);
  EXPECT_NEAR(clear.coverage_deg(), 360.0, 0.5);
}

TEST(Obstruction, ObstructedSectorsThreshold) {
  p::ObstructionMap map;
  p::Screen weak;
  weak.sector = {0.0, 90.0};
  weak.loss_at_1ghz_db = 5.0;
  p::Screen strong;
  strong.sector = {180.0, 270.0};
  strong.loss_at_1ghz_db = 30.0;
  map.add_screen(weak);
  map.add_screen(strong);
  const auto blocked = map.obstructed_sectors(1e9, 10.0);
  EXPECT_FALSE(blocked.contains(45.0));
  EXPECT_TRUE(blocked.contains(225.0));
}

// ----------------------------------------------------------------- fading ----

TEST(Fading, DeterministicAndSeedDependent) {
  p::FadingModel a(1, 4.0, 2.0), a2(1, 4.0, 2.0), b(2, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(a.shadowing_db(7, 123.0, 5000.0), a2.shadowing_db(7, 123.0, 5000.0));
  EXPECT_NE(a.shadowing_db(7, 123.0, 5000.0), b.shadowing_db(7, 123.0, 5000.0));
  EXPECT_DOUBLE_EQ(a.fast_fading_db(7, 42), a2.fast_fading_db(7, 42));
}

TEST(Fading, SpatiallyCorrelatedBuckets) {
  p::FadingModel m(3, 4.0, 2.0);
  // Same 2-degree / 1-km bucket -> identical shadowing.
  EXPECT_DOUBLE_EQ(m.shadowing_db(1, 100.2, 5100.0), m.shadowing_db(1, 100.9, 5900.0));
  // Different bucket -> (almost surely) different.
  EXPECT_NE(m.shadowing_db(1, 100.2, 5100.0), m.shadowing_db(1, 140.0, 80000.0));
}

TEST(Fading, ZeroSigmaIsZero) {
  p::FadingModel m(4, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(m.shadowing_db(1, 10.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(m.fast_fading_db(1, 5), 0.0);
}

TEST(Fading, MomentsMatchSigma) {
  p::FadingModel m(5, 4.0, 2.0);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = m.fast_fading_db(99, static_cast<std::uint64_t>(i));
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / kN), 2.0, 0.1);
}

// ------------------------------------------------------------ link budget ----

TEST(LinkBudget, ComposesTerms) {
  const g::Geodetic rx{37.87, -122.27, 10.0};
  g::Geodetic tx = g::destination(rx, 90.0, 10e3);
  tx.alt_m = 5000.0;

  p::LinkInput in;
  in.transmitter = tx;
  in.receiver = rx;
  in.freq_hz = 1090e6;
  in.tx_power_dbm = 54.0;
  in.rx_antenna_gain_dbi = 2.0;

  p::LinkParams params;  // free space
  const auto clear = p::evaluate_link(in, params, nullptr, nullptr);
  EXPECT_NEAR(clear.rx_power_dbm,
              54.0 + 2.0 - p::free_space_path_loss_db(clear.distance_m, 1090e6), 1e-9);
  EXPECT_NEAR(clear.azimuth_deg, 90.0, 0.5);
  EXPECT_GT(clear.elevation_deg, 20.0);
  EXPECT_FALSE(clear.beyond_radio_horizon);

  // Obstruction subtracts exactly its loss.
  p::ObstructionMap map;
  p::Screen screen;
  screen.sector = {45.0, 135.0};
  screen.loss_at_1ghz_db = 17.0;
  screen.loss_slope_db_per_decade = 0.0;
  map.add_screen(screen);
  const auto blocked = p::evaluate_link(in, params, &map, nullptr);
  EXPECT_NEAR(clear.rx_power_dbm - blocked.rx_power_dbm, 17.0, 1e-9);
}

TEST(LinkBudget, BeyondHorizonPenalized) {
  const g::Geodetic rx{37.87, -122.27, 2.0};
  g::Geodetic tx = g::destination(rx, 0.0, 450e3);  // past horizon for 10 km alt
  tx.alt_m = 10e3;
  p::LinkInput in;
  in.transmitter = tx;
  in.receiver = rx;
  in.freq_hz = 1090e6;
  in.tx_power_dbm = 57.0;
  const auto res = p::evaluate_link(in, {}, nullptr, nullptr);
  EXPECT_TRUE(res.beyond_radio_horizon);
  // 60 dB beyond-horizon knife: undecodable in practice.
  EXPECT_LT(res.rx_power_dbm, -130.0);
}

TEST(LinkBudget, ModelSelectionMatters) {
  const g::Geodetic rx{37.87, -122.27, 10.0};
  g::Geodetic tx = g::destination(rx, 180.0, 20e3);
  tx.alt_m = 50.0;
  p::LinkInput in;
  in.transmitter = tx;
  in.receiver = rx;
  in.freq_hz = 600e6;
  in.tx_power_dbm = 80.0;

  p::LinkParams fs;
  fs.model = p::PathModel::kFreeSpace;
  p::LinkParams urban;
  urban.model = p::PathModel::kLogDistance;
  urban.exponent = 3.2;
  EXPECT_GT(p::evaluate_link(in, fs, nullptr, nullptr).rx_power_dbm,
            p::evaluate_link(in, urban, nullptr, nullptr).rx_power_dbm + 10.0);
}

TEST(PathLoss, HataUrbanKnownValue) {
  // Textbook check: 900 MHz, 5 km, hb = 50 m, hm = 1.5 m => ~146 dB.
  const double loss = p::hata_urban_path_loss_db(5e3, 900e6, 50.0, 1.5);
  EXPECT_NEAR(loss, 146.0, 2.0);
  // Exceeds free space massively (urban clutter).
  EXPECT_GT(loss, p::free_space_path_loss_db(5e3, 900e6) + 30.0);
}

TEST(PathLoss, HataMonotonicAndOrdered) {
  double prev = 0.0;
  for (double d = 1e3; d <= 20e3; d *= 1.5) {
    const double v = p::hata_urban_path_loss_db(d, 900e6, 50.0, 1.5);
    EXPECT_GT(v, prev);
    prev = v;
  }
  // Suburban < urban at identical geometry; taller base antenna helps.
  EXPECT_LT(p::hata_suburban_path_loss_db(5e3, 900e6, 50.0, 1.5),
            p::hata_urban_path_loss_db(5e3, 900e6, 50.0, 1.5));
  EXPECT_LT(p::hata_urban_path_loss_db(5e3, 900e6, 100.0, 1.5),
            p::hata_urban_path_loss_db(5e3, 900e6, 30.0, 1.5));
}

TEST(PathLoss, HataClampsOutOfEnvelope) {
  // Inputs outside the empirical envelope clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(p::hata_urban_path_loss_db(100.0, 900e6, 50.0, 1.5),
                   p::hata_urban_path_loss_db(1000.0, 900e6, 50.0, 1.5));
  EXPECT_DOUBLE_EQ(p::hata_urban_path_loss_db(5e3, 3e9, 50.0, 1.5),
                   p::hata_urban_path_loss_db(5e3, 1.5e9, 50.0, 1.5));
}
