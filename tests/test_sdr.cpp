// Unit tests: antenna model, simulated SDR front end, fixed emitters.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/plan.hpp"
#include "prop/pathloss.hpp"
#include "sdr/antenna.hpp"
#include "dsp/nco.hpp"
#include "sdr/emitter.hpp"
#include "sdr/sim.hpp"
#include "util/units.hpp"

namespace s = speccal::sdr;
namespace d = speccal::dsp;
namespace g = speccal::geo;
using speccal::util::Rng;

// -------------------------------------------------------------- antenna ----

TEST(Antenna, IsotropicIsFlat) {
  const auto iso = s::AntennaModel::isotropic();
  for (double f : {100e6, 1e9, 6e9})
    for (double az : {0.0, 90.0, 275.0}) EXPECT_DOUBLE_EQ(iso.gain_dbi(f, az), 0.0);
}

TEST(Antenna, WidebandInterpolatesAndRollsOff) {
  const auto ant = s::AntennaModel::wideband_700_2700();
  // Inside the rated band: near the tabulated values.
  EXPECT_NEAR(ant.gain_dbi(1090e6), 2.5, 0.5);
  EXPECT_NEAR(ant.gain_dbi(700e6), 2.0, 0.1);
  // Below and above: steep roll-off, monotone with distance from band.
  EXPECT_LT(ant.gain_dbi(100e6), -20.0);
  EXPECT_LT(ant.gain_dbi(100e6), ant.gain_dbi(200e6));
  EXPECT_LT(ant.gain_dbi(6e9), ant.gain_dbi(3.5e9));
}

TEST(Antenna, ValidationRejectsBadTables) {
  EXPECT_THROW(s::AntennaModel("bad", {}), std::invalid_argument);
  EXPECT_THROW(s::AntennaModel("bad", {{2e9, 0.0}, {1e9, 0.0}}), std::invalid_argument);
}

TEST(Antenna, DirectionalPattern) {
  auto ant = s::AntennaModel::isotropic();
  ant.set_directional(90.0, 20.0);
  EXPECT_NEAR(ant.gain_dbi(1e9, 90.0), 0.0, 1e-9);    // boresight
  EXPECT_NEAR(ant.gain_dbi(1e9, 270.0), -20.0, 1e-9); // back
  const double side = ant.gain_dbi(1e9, 180.0);
  EXPECT_LT(side, 0.0);
  EXPECT_GT(side, -20.0);
}

TEST(Antenna, AttenuatedVariant) {
  const auto base = s::AntennaModel::wideband_700_2700();
  const auto broken = s::AntennaModel::attenuated(base, 12.0);
  EXPECT_NEAR(base.gain_dbi(1e9) - broken.gain_dbi(1e9), 12.0, 1e-9);
}

// ----------------------------------------------------------------- sdr -----

namespace {
s::RxEnvironment open_site() {
  static const auto antenna = s::AntennaModel::isotropic();
  s::RxEnvironment rx;
  rx.position = {37.87, -122.27, 10.0};
  rx.antenna = &antenna;
  return rx;
}
}  // namespace

TEST(SimulatedSdr, TuneRespectsLimits) {
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(1));
  EXPECT_TRUE(dev.tune(1090e6, 2e6));
  EXPECT_FALSE(dev.tune(10e6, 2e6));    // below 70 MHz
  EXPECT_FALSE(dev.tune(7e9, 2e6));     // above 6 GHz
  EXPECT_FALSE(dev.tune(1e9, 100e6));   // above max sample rate
}

TEST(SimulatedSdr, NoiseFloorMatchesKtbPlusNf) {
  auto info = s::SimulatedSdr::bladerf_like_info();
  info.noise_figure_db = 7.0;
  s::SimulatedSdr dev(info, open_site(), Rng(2));
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(40.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  const auto buf = dev.capture(200000);
  const double measured_dbfs = d::mean_power_dbfs(buf);
  // Expected: kTB(2 MHz) + NF + gain - full_scale = -104 + 40 + 10 = -54 dBFS.
  const double expected =
      speccal::prop::noise_floor_dbm(2e6, 7.0) + 40.0 - info.full_scale_input_dbm;
  EXPECT_NEAR(measured_dbfs, expected, 0.5);
}

TEST(SimulatedSdr, GainMapsDbmToDbfs) {
  // A tone source with a known received power must appear at
  // P_dBm + gain - full_scale dBFS.
  struct ToneSource final : s::SignalSource {
    double power_dbm;
    explicit ToneSource(double p) : power_dbm(p) {}
    void render(const s::CaptureContext&, std::span<d::Sample> accum) override {
      const float amp = static_cast<float>(speccal::util::db_to_amplitude(power_dbm));
      for (auto& v : accum) v += d::Sample(amp, 0.0f);
    }
  };
  auto info = s::SimulatedSdr::bladerf_like_info();
  s::SimulatedSdr dev(info, open_site(), Rng(3));
  dev.add_source(std::make_shared<ToneSource>(-60.0));
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(30.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  const auto buf = dev.capture(100000);
  EXPECT_NEAR(d::mean_power_dbfs(buf), -60.0 + 30.0 + 10.0, 0.5);
}

TEST(SimulatedSdr, AgcHitsTarget) {
  struct ToneSource final : s::SignalSource {
    void render(const s::CaptureContext&, std::span<d::Sample> accum) override {
      const float amp = static_cast<float>(speccal::util::db_to_amplitude(-50.0));
      for (auto& v : accum) v += d::Sample(amp, 0.0f);
    }
  };
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(4));
  dev.add_source(std::make_shared<ToneSource>());
  dev.set_gain_mode(s::GainMode::kAgc);
  dev.set_agc_target_dbfs(-12.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  const auto buf = dev.capture(50000);
  EXPECT_NEAR(d::mean_power_dbfs(buf), -12.0, 1.0);
}

TEST(SimulatedSdr, AdcClipsAtFullScale) {
  struct LoudSource final : s::SignalSource {
    void render(const s::CaptureContext&, std::span<d::Sample> accum) override {
      for (auto& v : accum) v += d::Sample(100.0f, -100.0f);
    }
  };
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(5));
  dev.add_source(std::make_shared<LoudSource>());
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(0.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  for (const auto& v : dev.capture(100)) {
    EXPECT_LE(std::fabs(v.real()), 1.0f);
    EXPECT_LE(std::fabs(v.imag()), 1.0f);
  }
}

TEST(SimulatedSdr, StreamClockAdvances) {
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(6));
  ASSERT_TRUE(dev.tune(1e9, 1e6));
  EXPECT_DOUBLE_EQ(dev.stream_time_s(), 0.0);
  (void)dev.capture(500000);
  EXPECT_NEAR(dev.stream_time_s(), 0.5, 1e-9);
  dev.advance_time(2.0);
  EXPECT_NEAR(dev.stream_time_s(), 2.5, 1e-9);
}

TEST(SimulatedSdr, OutOfRangeTuneYieldsNoiseOnly) {
  struct ToneSource final : s::SignalSource {
    void render(const s::CaptureContext&, std::span<d::Sample> accum) override {
      for (auto& v : accum) v += d::Sample(0.1f, 0.0f);
    }
  };
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(7));
  dev.add_source(std::make_shared<ToneSource>());
  dev.set_gain_db(0.0);
  EXPECT_FALSE(dev.tune(10e9, 2e6));
  const auto buf = dev.capture(10000);
  EXPECT_LT(d::mean_power_dbfs(buf), -60.0);  // just the noise floor
}

// -------------------------------------------------------------- emitter ----

TEST(Emitter, ReceivedPowerAppearsInCapture) {
  s::EmitterConfig cfg;
  cfg.emitter_id = 9;
  cfg.position = g::destination({37.87, -122.27, 10.0}, 90.0, 20e3);
  cfg.position.alt_m = 200.0;
  cfg.carrier_hz = 521e6;
  cfg.bandwidth_hz = 5.38e6;
  cfg.eirp_dbm = 80.0;
  cfg.link.model = speccal::prop::PathModel::kFreeSpace;

  auto source = std::make_shared<s::FixedEmitterSource>(cfg, Rng(11));
  const auto rx = open_site();
  const double want_dbm = source->received_power_dbm(rx);

  auto info = s::SimulatedSdr::bladerf_like_info();
  s::SimulatedSdr dev(info, rx, Rng(12));
  dev.add_source(source);
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(20.0);
  ASSERT_TRUE(dev.tune(521e6, 8e6));
  const auto buf = dev.capture(100000);
  // Signal dominates the floor here, so total power ~= signal power.
  EXPECT_NEAR(d::mean_power_dbfs(buf), want_dbm + 20.0 + 10.0, 1.0);
}

TEST(Emitter, SilentWhenOutOfBand) {
  s::EmitterConfig cfg;
  cfg.position = g::destination({37.87, -122.27, 10.0}, 0.0, 5e3);
  cfg.carrier_hz = 521e6;
  cfg.eirp_dbm = 90.0;
  auto source = std::make_shared<s::FixedEmitterSource>(cfg, Rng(13));

  s::CaptureContext ctx;
  ctx.center_freq_hz = 700e6;  // channel nowhere near the capture
  ctx.sample_rate_hz = 8e6;
  ctx.sample_count = 1000;
  const auto rx = open_site();
  ctx.rx = &rx;
  d::Buffer buf(1000, {0.0f, 0.0f});
  source->render(ctx, buf);
  for (const auto& v : buf) EXPECT_EQ(std::norm(v), 0.0f);
}

TEST(Emitter, PilotToneVisibleInSpectrum) {
  s::EmitterConfig cfg;
  cfg.emitter_id = 14;
  cfg.position = g::destination({37.87, -122.27, 10.0}, 90.0, 10e3);
  cfg.position.alt_m = 150.0;
  cfg.carrier_hz = 521e6;
  cfg.bandwidth_hz = 5.38e6;
  cfg.eirp_dbm = 85.0;
  cfg.link.model = speccal::prop::PathModel::kFreeSpace;
  cfg.pilot_offset_hz = -2690559.0;  // ATSC pilot relative to centre

  auto source = std::make_shared<s::FixedEmitterSource>(cfg, Rng(15));
  s::CaptureContext ctx;
  ctx.center_freq_hz = 521e6;
  ctx.sample_rate_hz = 8e6;
  ctx.sample_count = 1 << 14;
  const auto rx = open_site();
  ctx.rx = &rx;
  d::Buffer buf(ctx.sample_count, {0.0f, 0.0f});
  source->render(ctx, buf);

  const auto ps = d::SpectrumEstimator(buf.size()).estimate(buf);
  const std::size_t pilot_bin =
      d::bin_for_frequency(*cfg.pilot_offset_hz, 8e6, ps.size());
  // The pilot bin should clearly exceed the median in-band bin.
  const std::size_t mid_bin = d::bin_for_frequency(1e6, 8e6, ps.size());
  EXPECT_GT(ps[pilot_bin], ps[mid_bin] * 5.0);
}

TEST(SimulatedSdr, FrontendLossAttenuatesSignalNotNoise) {
  struct ToneSource final : s::SignalSource {
    void render(const s::CaptureContext&, std::span<d::Sample> accum) override {
      const float amp = static_cast<float>(speccal::util::db_to_amplitude(-50.0));
      for (auto& v : accum) v += d::Sample(amp, 0.0f);
    }
  };
  auto info = s::SimulatedSdr::bladerf_like_info();
  info.frontend_loss_db = 10.0;
  s::SimulatedSdr dev(info, open_site(), Rng(41));
  dev.add_source(std::make_shared<ToneSource>());
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(30.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  // Signal arrives 10 dB down: -60 dBm effective -> -20 dBFS.
  EXPECT_NEAR(d::mean_power_dbfs(dev.capture(100000)), -60.0 + 30.0 + 10.0, 0.5);

  // The receiver's own thermal floor is NOT attenuated (it originates
  // after the lossy cable).
  s::SimulatedSdr quiet(info, open_site(), Rng(42));
  quiet.set_gain_mode(s::GainMode::kManual);
  quiet.set_gain_db(40.0);
  ASSERT_TRUE(quiet.tune(1e9, 2e6));
  const double floor = d::mean_power_dbfs(quiet.capture(100000));
  EXPECT_NEAR(floor, speccal::prop::noise_floor_dbm(2e6, 7.0) + 40.0 + 10.0, 0.5);
}

namespace {
s::EmitterConfig tv_emitter_config(bool pilot) {
  s::EmitterConfig cfg;
  cfg.emitter_id = 77;
  cfg.position = g::destination({37.87, -122.27, 10.0}, 90.0, 15e3);
  cfg.position.alt_m = 180.0;
  cfg.carrier_hz = 521e6;
  cfg.bandwidth_hz = 5.38e6;
  cfg.eirp_dbm = 82.0;
  cfg.link.model = speccal::prop::PathModel::kFreeSpace;
  if (pilot) cfg.pilot_offset_hz = -2690559.0;
  return cfg;
}

s::CaptureContext tv_capture_ctx(const s::RxEnvironment& rx, std::size_t n,
                                 double start_time_s = 0.0) {
  s::CaptureContext ctx;
  ctx.center_freq_hz = 521e6;
  ctx.sample_rate_hz = 8e6;
  ctx.sample_count = n;
  ctx.start_time_s = start_time_s;
  ctx.rx = &rx;
  return ctx;
}
}  // namespace

TEST(Emitter, RenderedPowerMatchesLinkBudgetWithinTenthDb) {
  // Regression for the warm-up-transient bias: the 127-tap shaper's
  // leading transient used to be included in the normalization, skewing
  // short-buffer power. The filter is now primed, so every rendered
  // buffer — short ones included — carries the link-budget power.
  const auto rx = open_site();
  for (const std::size_t n : {512u, 2048u, 65536u}) {
    s::FixedEmitterSource source(tv_emitter_config(false), Rng(31));
    const double want_dbm = source.received_power_dbm(rx);
    const double target_mw = speccal::util::dbm_to_watts(want_dbm) * 1e3;

    const auto ctx = tv_capture_ctx(rx, n);
    d::Buffer buf(n, {0.0f, 0.0f});
    source.render(ctx, buf);
    const double got_mw = d::mean_power(buf);
    EXPECT_NEAR(10.0 * std::log10(got_mw / target_mw), 0.0, 0.1) << "n=" << n;
  }
}

TEST(Emitter, OutOfBandEarlyExitLeavesAccumulatorUntouched) {
  s::FixedEmitterSource source(tv_emitter_config(false), Rng(33));
  const auto rx = open_site();
  auto ctx = tv_capture_ctx(rx, 1000);
  ctx.center_freq_hz = 700e6;  // channel nowhere near the capture

  // Pre-load the accumulator: the early exit must not even rescale it.
  const d::Sample sentinel{0.25f, -0.75f};
  d::Buffer buf(1000, sentinel);
  source.render(ctx, buf);
  for (const auto& v : buf) EXPECT_EQ(v, sentinel);
  EXPECT_EQ(source.shaper_rebuilds(), 0u);  // never got as far as a design
}

TEST(Emitter, PilotPhaseContinuousAcrossAdjacentBuffers) {
  auto cfg = tv_emitter_config(true);
  cfg.pilot_rel_db = -3.0;  // strong pilot so the noise averages out
  s::FixedEmitterSource source(cfg, Rng(35));
  const auto rx = open_site();

  constexpr std::size_t n = 1 << 14;
  constexpr double fs = 8e6;
  const double pilot_freq = *cfg.pilot_offset_hz;  // centred capture

  // Render two adjacent buffers (start times n/fs apart) and measure the
  // pilot's phase in each by correlating against the absolute-time
  // reference e^{j 2 pi f t}. Continuity => both phases agree.
  double phases[2] = {0.0, 0.0};
  for (int b = 0; b < 2; ++b) {
    const double t0 = static_cast<double>(b) * static_cast<double>(n) / fs;
    d::Buffer buf(n, {0.0f, 0.0f});
    source.render(tv_capture_ctx(rx, n, t0), buf);
    std::complex<double> corr{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double t = t0 + static_cast<double>(i) / fs;
      const double ph = 2.0 * speccal::util::kPi * pilot_freq * t;
      corr += std::complex<double>(buf[i].real(), buf[i].imag()) *
              std::complex<double>(std::cos(ph), -std::sin(ph));
    }
    phases[b] = std::atan2(corr.imag(), corr.real());
  }
  double diff = phases[1] - phases[0];
  while (diff > speccal::util::kPi) diff -= 2.0 * speccal::util::kPi;
  while (diff < -speccal::util::kPi) diff += 2.0 * speccal::util::kPi;
  EXPECT_NEAR(diff, 0.0, 0.15);
}

TEST(Emitter, ShaperRebuildsOnlyOnRetune) {
  s::FixedEmitterSource source(tv_emitter_config(false), Rng(37));
  const auto rx = open_site();
  d::Buffer buf(4096, {0.0f, 0.0f});

  source.render(tv_capture_ctx(rx, buf.size()), buf);
  source.render(tv_capture_ctx(rx, buf.size(), 0.01), buf);
  EXPECT_EQ(source.shaper_rebuilds(), 1u);  // same tuning: cached taps

  auto retuned = tv_capture_ctx(rx, buf.size());
  retuned.sample_rate_hz = 10e6;
  source.render(retuned, buf);
  EXPECT_EQ(source.shaper_rebuilds(), 2u);

  auto shifted = tv_capture_ctx(rx, buf.size());
  shifted.center_freq_hz = 523e6;  // moves the band edges in baseband
  source.render(shifted, buf);
  EXPECT_EQ(source.shaper_rebuilds(), 3u);

  source.render(tv_capture_ctx(rx, buf.size()), buf);
  EXPECT_EQ(source.shaper_rebuilds(), 4u);  // back to the original key
}

TEST(SimulatedSdr, SteadyStateCaptureIsAllocationFree) {
  // Acceptance check: after the first capture per tuning, repeated
  // captures grow no pool — neither the source's RenderScratch nor the
  // convolver's arena.
  auto source =
      std::make_shared<s::FixedEmitterSource>(tv_emitter_config(true), Rng(39));
  s::SimulatedSdr dev(s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(40));
  dev.add_source(source);
  dev.set_gain_mode(s::GainMode::kManual);
  dev.set_gain_db(20.0);
  ASSERT_TRUE(dev.tune(521e6, 8e6));

  d::Buffer buf(65536);
  dev.capture_into(buf);  // first capture: pools grow, filter is designed
  const auto warm = source->render_scratch_stats();
  const std::size_t warm_conv_bytes = source->convolver_scratch_bytes();
  EXPECT_GT(warm.grow_events, 0u);
  EXPECT_GT(warm.bytes_reserved, 0u);

  for (int i = 0; i < 8; ++i) dev.capture_into(buf);
  const auto steady = source->render_scratch_stats();
  EXPECT_EQ(steady.grow_events, warm.grow_events);
  EXPECT_EQ(steady.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(source->convolver_scratch_bytes(), warm_conv_bytes);
  EXPECT_GT(steady.requests, warm.requests);  // pools were actually reused
  EXPECT_EQ(source->shaper_rebuilds(), 1u);
}

TEST(SimulatedSdr, CaptureIntoMatchesCapturePipeline) {
  // Same device state + same RNG seed => identical samples either way.
  auto make_dev = [](std::uint64_t seed) {
    auto dev = std::make_unique<s::SimulatedSdr>(
        s::SimulatedSdr::bladerf_like_info(), open_site(), Rng(seed));
    dev->add_source(
        std::make_shared<s::FixedEmitterSource>(tv_emitter_config(true), Rng(45)));
    dev->set_gain_mode(s::GainMode::kManual);
    dev->set_gain_db(20.0);
    return dev;
  };
  auto a = make_dev(44);
  ASSERT_TRUE(a->tune(521e6, 8e6));
  const auto via_capture = a->capture(10000);

  auto b = make_dev(44);
  ASSERT_TRUE(b->tune(521e6, 8e6));
  d::Buffer via_into(10000);
  b->capture_into(via_into);

  ASSERT_EQ(via_capture.size(), via_into.size());
  for (std::size_t i = 0; i < via_into.size(); ++i)
    EXPECT_EQ(via_capture[i], via_into[i]) << "sample " << i;
}

TEST(SimulatedSdr, LoErrorShiftsReceivedTone) {
  // A tone source pinned at an absolute RF frequency appears offset in the
  // capture when the reference is off.
  struct RfTone final : s::SignalSource {
    void render(const s::CaptureContext& ctx, std::span<d::Sample> accum) override {
      speccal::dsp::Nco nco(1e9 - ctx.center_freq_hz, ctx.sample_rate_hz);
      for (auto& v : accum) v += nco.next() * 0.05f;
    }
  };
  auto info = s::SimulatedSdr::bladerf_like_info();
  info.lo_error_ppm = 10.0;  // at 1 GHz: 10 kHz shift
  s::SimulatedSdr dev(info, open_site(), Rng(43));
  dev.add_source(std::make_shared<RfTone>());
  dev.set_gain_db(30.0);
  ASSERT_TRUE(dev.tune(1e9, 2e6));
  const auto buf = dev.capture(1 << 16);
  const auto ps = d::SpectrumEstimator(buf.size()).estimate(buf);
  std::size_t best = 0;
  for (std::size_t k = 1; k < ps.size(); ++k)
    if (ps[k] > ps[best]) best = k;
  double freq = static_cast<double>(best) * 2e6 / static_cast<double>(ps.size());
  if (freq >= 1e6) freq -= 2e6;
  EXPECT_NEAR(freq, -10e3, 100.0);  // shifted down by ppm * f
}
