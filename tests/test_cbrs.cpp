// Tests: CBRS self-report verification (§3.3).
#include <gtest/gtest.h>

#include "cbrs/verify.hpp"
#include "scenario/testbed.hpp"

namespace cb = speccal::cbrs;
namespace cal = speccal::calib;
namespace sc = speccal::scenario;

namespace {

cal::CalibrationReport calibrate(sc::Site site) {
  const auto world = sc::make_world(2023);
  const auto setup = sc::make_site(site, 2023);
  auto device = sc::make_node(setup, world, 2023);
  cal::NodeClaims claims;
  claims.node_id = sc::site_name(site);
  cal::PipelineConfig cfg;
  cfg.survey.fidelity = cal::Fidelity::kLinkBudget;
  return cal::CalibrationPipeline(world, cfg).calibrate(*device, claims);
}

cb::CbsdRegistration registration_at(sc::Site site, bool indoor_claim,
                                     cb::Category category) {
  cb::CbsdRegistration reg;
  reg.cbsd_id = sc::site_name(site);
  reg.category = category;
  reg.reported_position = sc::make_site(site, 2023).position;
  reg.antenna_height_m = 3.0;
  reg.indoor_deployment = indoor_claim;
  reg.max_eirp_dbm = category == cb::Category::kB ? cb::kCatBMaxEirpDbm
                                                  : cb::kCatAMaxEirpDbm;
  return reg;
}

}  // namespace

TEST(Cbrs, HonestIndoorDeviceVerified) {
  const auto report = calibrate(sc::Site::kIndoor);
  const auto reg = registration_at(sc::Site::kIndoor, true, cb::Category::kA);
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_EQ(result.verdict, cb::Verdict::kVerified);
  // Indoor siting gets the indoor EIRP haircut.
  EXPECT_LE(result.recommended_eirp_dbm, cb::kCatAMaxEirpDbm - 9.0);
}

TEST(Cbrs, OutdoorClaimFromIndoorSiteRejectedOrFlagged) {
  const auto report = calibrate(sc::Site::kIndoor);
  const auto reg = registration_at(sc::Site::kIndoor, false, cb::Category::kA);
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_NE(result.verdict, cb::Verdict::kVerified);
  bool flagged = false;
  for (const auto& f : result.findings)
    flagged |= f.violation && f.description.find("outdoor") != std::string::npos;
  EXPECT_TRUE(flagged);
  // Power policy follows the evidence: still the indoor cap (or denial).
  EXPECT_LE(result.recommended_eirp_dbm, cb::kCatAMaxEirpDbm - 9.0);
}

TEST(Cbrs, CategoryBRequiresOutdoor) {
  const auto report = calibrate(sc::Site::kWindow);  // classified indoor
  auto reg = registration_at(sc::Site::kWindow, false, cb::Category::kB);
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_EQ(result.verdict, cb::Verdict::kRejected);
  EXPECT_LT(result.recommended_eirp_dbm, 0.0);  // grant denied
}

TEST(Cbrs, RooftopOutdoorDeviceVerified) {
  const auto report = calibrate(sc::Site::kRooftop);
  auto reg = registration_at(sc::Site::kRooftop, false, cb::Category::kA);
  reg.antenna_height_m = 5.0;  // within the Cat A outdoor limit
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_EQ(result.verdict, cb::Verdict::kVerified);
  EXPECT_NEAR(result.recommended_eirp_dbm, cb::kCatAMaxEirpDbm, 1e-9);
}

TEST(Cbrs, CatAOutdoorHeightLimit) {
  const auto report = calibrate(sc::Site::kRooftop);
  auto reg = registration_at(sc::Site::kRooftop, false, cb::Category::kA);
  reg.antenna_height_m = 12.0;  // exceeds 6 m Cat A outdoor limit
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_NE(result.verdict, cb::Verdict::kVerified);
}

TEST(Cbrs, FalseLocationCaughtByRanging) {
  // Device is physically at the rooftop but reports coordinates 30 km away:
  // the towers it decodes loudly would be far from the claimed spot.
  const auto report = calibrate(sc::Site::kRooftop);
  auto reg = registration_at(sc::Site::kRooftop, false, cb::Category::kA);
  reg.reported_position =
      speccal::geo::destination(reg.reported_position, 135.0, 30e3);
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_NE(result.verdict, cb::Verdict::kVerified);
  bool ranging_finding = false;
  for (const auto& f : result.findings)
    ranging_finding |= f.violation && f.description.find("ranging") != std::string::npos;
  EXPECT_TRUE(ranging_finding);
  EXPECT_GT(result.location_inconsistency_m, 10e3);
}

TEST(Cbrs, ConservativeMisreportOnlyWarns) {
  // Claiming indoor while actually outdoor lowers the device's own power:
  // not a violation, but noted.
  const auto report = calibrate(sc::Site::kRooftop);
  const auto reg = registration_at(sc::Site::kRooftop, true, cb::Category::kA);
  const auto result = cb::CbsdVerifier{}.verify(reg, report);
  EXPECT_EQ(result.verdict, cb::Verdict::kVerified);
  bool noted = false;
  for (const auto& f : result.findings)
    noted |= !f.violation && f.description.find("conservative") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(Cbrs, Strings) {
  EXPECT_EQ(cb::to_string(cb::Verdict::kVerified), "verified");
  EXPECT_EQ(cb::to_string(cb::Verdict::kFlagged), "flagged");
  EXPECT_EQ(cb::to_string(cb::Verdict::kRejected), "rejected");
  EXPECT_EQ(cb::to_string(cb::Category::kA), "Category A");
  EXPECT_EQ(cb::to_string(cb::Category::kB), "Category B");
}
